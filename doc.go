// Package hydra is a reproduction of "Hydra: Scale-out FHE Accelerator
// Architecture for Secure Deep Learning on FPGA" (HPCA 2025): a functional
// RNS-CKKS implementation (internal/ring, internal/ckks, internal/hefloat),
// an analytic model of the Hydra/FAB/Poseidon accelerator cards and their
// interconnects (internal/hw), the paper's task decomposition and mapping
// strategies for CNN and LLM inference including multi-card bootstrapping
// (internal/mapping), a discrete-event simulator of the scale-out system
// with the Procedure 1 synchronization mechanism (internal/task,
// internal/sim), a binary instruction format for host preloading
// (internal/isa), a concurrent goroutine executor of the synchronization
// protocol (internal/runtime), a functional multi-card runtime operating on
// real ciphertexts (internal/cluster), the evaluation benchmarks
// (internal/model), and generators for every table and figure of the
// paper's evaluation section (internal/experiments).
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for measured vs
// published results. The root-level benchmarks in bench_test.go regenerate
// each table and figure; cmd/hydrasim prints them.
package hydra
