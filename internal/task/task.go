// Package task defines the instruction model of the Hydra scale-out system:
// per-card computation and communication task queues, the SAC/CAR dependence
// classes of Procedure 1, and step-level grouping per Procedure 2. Mapping
// strategies (internal/mapping) emit Programs; the simulator (internal/sim)
// executes them.
package task

import (
	"fmt"

	"hydra/internal/fheop"
)

// Compute is one entry of a card's computation task queue: a fused batch of
// CKKS operations. A task with WaitRecv >= 0 is data-dependent (CT_d in the
// paper's terminology): it waits for the finish signal of that receive task
// in the same card's communication queue. WaitRecv == -1 marks a
// data-independent task (CT_i).
type Compute struct {
	Ops      fheop.Counts // operations fused into this task
	Limbs    int          // RNS limb count the operations run at
	WaitRecv int          // communication-queue index of the receive this task waits on, or -1
	Label    string       // procedure attribution (e.g. "ConvBN", "Boot")
	// EnergyScale derates the dynamic energy of this task (1 = nominal).
	// Procedures that rotate a scratchpad-resident operand thousands of
	// times (PCMM/CCMM) move far less off-chip data than the per-op roofline
	// assumes.
	EnergyScale float64
	seq         int // global creation order, used on cards without a DTU
}

// CommKind distinguishes the communication queue entries.
type CommKind int

// Communication task kinds.
const (
	Send CommKind = iota
	Recv
)

// Comm is one entry of a card's communication task queue. A Send with
// WaitCompute >= 0 is Send-After-Compute: it fires only once that
// computation-queue entry finishes. Peers lists the destination cards
// (len > 1 = broadcast through the switch). A Recv names its source in Peers
// and is paired with the matching Send through Tag.
type Comm struct {
	Kind        CommKind
	Peers       []int
	Bytes       float64
	WaitCompute int // computation-queue index the send waits on, or -1
	Tag         int // pairs a send with its receive(s)
	Label       string
	seq         int
}

// Program is the full multi-card instruction stream: a sequence of steps
// (Procedure 2 units — e.g. one CNN layer or one bootstrap phase), each
// holding per-card computation and communication queues. Cards are numbered
// globally; CardsPerServer fixes the server boundaries.
type Program struct {
	Cards          int
	CardsPerServer int
	Steps          []*Step
}

// Step is one Procedure 2 scheduling unit: all cards run their queues, and a
// barrier (the completion signal to the host) separates it from the next step.
type Step struct {
	Name    string
	Compute [][]Compute // [card][index]
	Comm    [][]Comm    // [card][index]
}

// Handle identifies a computation task inside a step during construction.
type Handle struct {
	Card, Index int
}

// Builder constructs Programs with automatic tag assignment and SAC/CAR
// wiring.
type Builder struct {
	prog        *Program
	cur         *Step
	nextTag     int
	nextSeq     int
	energyScale float64
}

// NewBuilder starts a program over cards cards grouped into servers of
// cardsPerServer.
func NewBuilder(cards, cardsPerServer int) *Builder {
	if cards <= 0 || cardsPerServer <= 0 {
		panic("task: cards and cardsPerServer must be positive")
	}
	return &Builder{prog: &Program{Cards: cards, CardsPerServer: cardsPerServer}, energyScale: 1}
}

// SetEnergyScale sets the dynamic-energy derating applied to subsequently
// emitted computation tasks (1 = nominal).
func (b *Builder) SetEnergyScale(v float64) {
	if v <= 0 {
		v = 1
	}
	b.energyScale = v
}

// Step opens a new scheduling step; subsequent emissions go into it.
func (b *Builder) Step(name string) *Builder {
	b.cur = &Step{
		Name:    name,
		Compute: make([][]Compute, b.prog.Cards),
		Comm:    make([][]Comm, b.prog.Cards),
	}
	b.prog.Steps = append(b.prog.Steps, b.cur)
	return b
}

func (b *Builder) step() *Step {
	if b.cur == nil {
		b.Step("main")
	}
	return b.cur
}

// Compute appends a data-independent computation task to card's queue.
func (b *Builder) Compute(card int, ops fheop.Counts, limbs int, label string) Handle {
	return b.computeTask(card, ops, limbs, -1, label)
}

// ComputeAfterRecv appends a computation task that waits for the given
// receive (CAR).
func (b *Builder) ComputeAfterRecv(card int, recvIdx int, ops fheop.Counts, limbs int, label string) Handle {
	return b.computeTask(card, ops, limbs, recvIdx, label)
}

func (b *Builder) computeTask(card int, ops fheop.Counts, limbs, waitRecv int, label string) Handle {
	s := b.step()
	if card < 0 || card >= b.prog.Cards {
		panic(fmt.Sprintf("task: card %d out of range", card))
	}
	if limbs <= 0 {
		panic("task: limbs must be positive")
	}
	s.Compute[card] = append(s.Compute[card], Compute{
		Ops: ops, Limbs: limbs, WaitRecv: waitRecv, Label: label,
		EnergyScale: b.energyScale, seq: b.nextSeq,
	})
	b.nextSeq++
	return Handle{Card: card, Index: len(s.Compute[card]) - 1}
}

// Send emits a transfer of bytes from card `from` to each card in `to`
// (one broadcast when len(to) > 1), firing after the computation task `after`
// finishes (pass a Handle with Index -1, or FromStart, for a data-independent
// send). It returns the communication-queue index of the matching receive on
// each destination card, for use with ComputeAfterRecv.
func (b *Builder) Send(from int, after Handle, to []int, bytes float64, label string) []int {
	s := b.step()
	if len(to) == 0 {
		panic("task: send needs at least one destination")
	}
	for _, dst := range to {
		if dst == from {
			panic("task: send to self")
		}
		if dst < 0 || dst >= b.prog.Cards {
			panic(fmt.Sprintf("task: destination %d out of range", dst))
		}
	}
	if after.Card != from && after.Index >= 0 {
		panic("task: SAC dependency must be on the sending card")
	}
	tag := b.nextTag
	b.nextTag++
	s.Comm[from] = append(s.Comm[from], Comm{
		Kind: Send, Peers: append([]int(nil), to...), Bytes: bytes,
		WaitCompute: after.Index, Tag: tag, Label: label, seq: b.nextSeq,
	})
	b.nextSeq++
	recvIdx := make([]int, len(to))
	for i, dst := range to {
		s.Comm[dst] = append(s.Comm[dst], Comm{
			Kind: Recv, Peers: []int{from}, Bytes: bytes,
			WaitCompute: -1, Tag: tag, Label: label, seq: b.nextSeq,
		})
		b.nextSeq++
		recvIdx[i] = len(s.Comm[dst]) - 1
	}
	return recvIdx
}

// FromStart is the Handle for sends with no computation dependence.
var FromStart = Handle{Card: -1, Index: -1}

// LastCompute returns a handle to the most recent computation task emitted on
// card within the current step. It panics if the card has none.
func (b *Builder) LastCompute(card int) Handle {
	s := b.step()
	if len(s.Compute[card]) == 0 {
		panic(fmt.Sprintf("task: card %d has no computation tasks in the current step", card))
	}
	return Handle{Card: card, Index: len(s.Compute[card]) - 1}
}

// Build finalizes and returns the program.
func (b *Builder) Build() *Program { return b.prog }

// Seq exposes the creation order (used by the simulator for cards without an
// independent communication unit, where both queues serialize on one engine).
func (c Compute) Seq() int { return c.seq }

// Seq exposes the creation order of a communication task.
func (c Comm) Seq() int { return c.seq }

// WithSeq returns a copy carrying the given creation-order sequence number.
// Used by decoders (internal/isa) reconstructing programs from the wire.
func (c Compute) WithSeq(v int) Compute { c.seq = v; return c }

// WithSeq returns a copy carrying the given creation-order sequence number.
func (c Comm) WithSeq(v int) Comm { c.seq = v; return c }

// Validate checks structural invariants of a program: paired tags, in-range
// dependencies.
func (p *Program) Validate() error {
	for si, st := range p.Steps {
		sendTag := map[int]int{}  // tag -> expected receivers
		recvTag := map[int]bool{} // tag seen by a recv
		for card := 0; card < p.Cards; card++ {
			for i, c := range st.Compute[card] {
				if c.WaitRecv >= len(st.Comm[card]) {
					return fmt.Errorf("task: step %d card %d compute %d waits on missing recv %d", si, card, i, c.WaitRecv)
				}
				if c.WaitRecv >= 0 && st.Comm[card][c.WaitRecv].Kind != Recv {
					return fmt.Errorf("task: step %d card %d compute %d waits on a non-recv", si, card, i)
				}
			}
			for i, c := range st.Comm[card] {
				switch c.Kind {
				case Send:
					if c.WaitCompute >= len(st.Compute[card]) {
						return fmt.Errorf("task: step %d card %d send %d waits on missing compute %d", si, card, i, c.WaitCompute)
					}
					sendTag[c.Tag] = len(c.Peers)
				case Recv:
					recvTag[c.Tag] = true
				}
			}
		}
		for tag := range sendTag {
			if !recvTag[tag] {
				return fmt.Errorf("task: step %d send tag %d has no receiver", si, tag)
			}
		}
		for tag := range recvTag {
			if _, ok := sendTag[tag]; !ok {
				return fmt.Errorf("task: step %d recv tag %d has no sender", si, tag)
			}
		}
	}
	return nil
}

// TotalOps sums the operation counts across the whole program.
func (p *Program) TotalOps() fheop.Counts {
	var total fheop.Counts
	for _, st := range p.Steps {
		for _, queue := range st.Compute {
			for _, c := range queue {
				total = total.Add(c.Ops)
			}
		}
	}
	return total
}

// TotalBytes sums the bytes sent across the whole program (broadcasts count
// once per destination).
func (p *Program) TotalBytes() float64 {
	total := 0.0
	for _, st := range p.Steps {
		for _, queue := range st.Comm {
			for _, c := range queue {
				if c.Kind == Send {
					total += c.Bytes * float64(len(c.Peers))
				}
			}
		}
	}
	return total
}
