package task

import (
	"testing"

	"hydra/internal/fheop"
)

func TestBuilderQueuesAndTags(t *testing.T) {
	b := NewBuilder(3, 8)
	b.Step("layer")
	h0 := b.Compute(0, fheop.Of(fheop.Rotation, 2), 18, "A")
	if h0 != (Handle{Card: 0, Index: 0}) {
		t.Fatalf("handle %v", h0)
	}
	recvs := b.Send(0, h0, []int{1, 2}, 123, "x")
	if len(recvs) != 2 || recvs[0] != 0 || recvs[1] != 0 {
		t.Fatalf("recv indices %v", recvs)
	}
	p := b.Build()
	st := p.Steps[0]
	if st.Comm[0][0].Kind != Send || len(st.Comm[0][0].Peers) != 2 {
		t.Fatalf("send entry %+v", st.Comm[0][0])
	}
	if st.Comm[1][0].Kind != Recv || st.Comm[1][0].Peers[0] != 0 {
		t.Fatalf("recv entry %+v", st.Comm[1][0])
	}
	if st.Comm[1][0].Tag != st.Comm[0][0].Tag || st.Comm[2][0].Tag != st.Comm[0][0].Tag {
		t.Fatal("broadcast tags should match")
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestImplicitStep(t *testing.T) {
	b := NewBuilder(1, 1)
	b.Compute(0, fheop.Of(fheop.HAdd, 1), 5, "A")
	p := b.Build()
	if len(p.Steps) != 1 || p.Steps[0].Name != "main" {
		t.Fatalf("implicit step missing: %+v", p.Steps)
	}
}

func TestSeqMonotone(t *testing.T) {
	b := NewBuilder(2, 2)
	b.Step("s")
	b.Compute(0, fheop.Of(fheop.HAdd, 1), 5, "A")
	b.Send(0, FromStart, []int{1}, 1, "x")
	b.Compute(1, fheop.Of(fheop.HAdd, 1), 5, "B")
	p := b.Build()
	st := p.Steps[0]
	if !(st.Compute[0][0].Seq() < st.Comm[0][0].Seq() &&
		st.Comm[0][0].Seq() < st.Comm[1][0].Seq() &&
		st.Comm[1][0].Seq() < st.Compute[1][0].Seq()) {
		t.Fatal("sequence numbers not monotone in creation order")
	}
}

func TestLastCompute(t *testing.T) {
	b := NewBuilder(2, 2)
	b.Step("s")
	b.Compute(0, fheop.Of(fheop.HAdd, 1), 5, "A")
	h2 := b.Compute(0, fheop.Of(fheop.HAdd, 2), 5, "A")
	if got := b.LastCompute(0); got != h2 {
		t.Fatalf("LastCompute %v, want %v", got, h2)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("LastCompute on empty card should panic")
		}
	}()
	b.LastCompute(1)
}

func TestValidateDetectsCorruption(t *testing.T) {
	mk := func() *Program {
		b := NewBuilder(2, 2)
		b.Step("s")
		h := b.Compute(0, fheop.Of(fheop.HAdd, 1), 5, "A")
		b.Send(0, h, []int{1}, 1, "x")
		return b.Build()
	}
	// Orphan the receive by changing its tag.
	p := mk()
	p.Steps[0].Comm[1][0].Tag = 999
	if err := p.Validate(); err == nil {
		t.Fatal("expected tag mismatch error")
	}
	// Dangling SAC dependency.
	p = mk()
	p.Steps[0].Comm[0][0].WaitCompute = 7
	if err := p.Validate(); err == nil {
		t.Fatal("expected dangling SAC error")
	}
	// CAR pointing at a send.
	p = mk()
	p.Steps[0].Compute[0] = append(p.Steps[0].Compute[0], Compute{WaitRecv: 0, Limbs: 5})
	if err := p.Validate(); err == nil {
		t.Fatal("expected CAR-on-send error")
	}
}

func TestEnergyScaleDefaultsAndOverride(t *testing.T) {
	b := NewBuilder(1, 1)
	b.Step("s")
	b.Compute(0, fheop.Of(fheop.HAdd, 1), 5, "A")
	b.SetEnergyScale(0.5)
	b.Compute(0, fheop.Of(fheop.HAdd, 1), 5, "A")
	b.SetEnergyScale(0) // invalid resets to 1
	b.Compute(0, fheop.Of(fheop.HAdd, 1), 5, "A")
	q := b.Build().Steps[0].Compute[0]
	if q[0].EnergyScale != 1 || q[1].EnergyScale != 0.5 || q[2].EnergyScale != 1 {
		t.Fatalf("energy scales %v %v %v", q[0].EnergyScale, q[1].EnergyScale, q[2].EnergyScale)
	}
}

func TestTotalsAcrossSteps(t *testing.T) {
	b := NewBuilder(2, 2)
	b.Step("one")
	h := b.Compute(0, fheop.Of(fheop.Rotation, 3), 5, "A")
	b.Send(0, h, []int{1}, 10, "x")
	b.Step("two")
	b.Compute(1, fheop.Of(fheop.Rotation, 4), 5, "B")
	h2 := b.Compute(0, fheop.Of(fheop.PMult, 1), 5, "C")
	b.Send(0, h2, []int{1}, 5, "y")
	p := b.Build()
	ops := p.TotalOps()
	if ops.Get(fheop.Rotation) != 7 || ops.Get(fheop.PMult) != 1 {
		t.Fatalf("op totals %v", ops)
	}
	if p.TotalBytes() != 15 {
		t.Fatalf("byte total %g", p.TotalBytes())
	}
}
