package sim

import (
	"math"
	"testing"

	"hydra/internal/fheop"
	"hydra/internal/task"
)

func rotOnly(n int) fheop.Counts { return fheop.Of(fheop.Rotation, n) }

func TestSingleCardSerialCompute(t *testing.T) {
	cfg := HydraConfig()
	b := task.NewBuilder(1, 8)
	b.Step("s")
	b.Compute(0, rotOnly(3), 18, "A")
	b.Compute(0, rotOnly(2), 18, "A")
	res, err := Run(b.Build(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	rotT := cfg.Card.OpTime(fheop.Rotation, 18, cfg.Scheme)
	want := 5 * rotT
	if math.Abs(res.Makespan-want)/want > 1e-9 {
		t.Fatalf("makespan %g, want %g", res.Makespan, want)
	}
	if res.OpTotals.Get(fheop.Rotation) != 5 {
		t.Fatalf("op totals %v", res.OpTotals)
	}
	if res.ExposedComm() != 0 {
		t.Fatalf("no comm expected, exposed %g", res.ExposedComm())
	}
}

func TestTwoCardsRunInParallel(t *testing.T) {
	cfg := HydraConfig()
	b := task.NewBuilder(2, 8)
	b.Step("s")
	b.Compute(0, rotOnly(4), 18, "A")
	b.Compute(1, rotOnly(4), 18, "A")
	res, err := Run(b.Build(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	rotT := cfg.Card.OpTime(fheop.Rotation, 18, cfg.Scheme)
	if math.Abs(res.Makespan-4*rotT)/rotT > 1e-9 {
		t.Fatalf("parallel makespan %g, want %g", res.Makespan, 4*rotT)
	}
}

func TestSendAfterComputeAndCAR(t *testing.T) {
	cfg := HydraConfig()
	bytes := 1e6
	b := task.NewBuilder(2, 8)
	b.Step("s")
	c0 := b.Compute(0, rotOnly(1), 18, "A")
	recvs := b.Send(0, c0, []int{1}, bytes, "x")
	b.ComputeAfterRecv(1, recvs[0], fheop.Of(fheop.HAdd, 1), 18, "B")
	res, err := Run(b.Build(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	rotT := cfg.Card.OpTime(fheop.Rotation, 18, cfg.Scheme)
	haddT := cfg.Card.OpTime(fheop.HAdd, 18, cfg.Scheme)
	xfer := cfg.Network.SendTime(bytes, 0, []int{1}, 8) + cfg.Network.RecvTime(bytes, 0, 1, 8)
	want := rotT + xfer + haddT
	if math.Abs(res.Makespan-want)/want > 1e-6 {
		t.Fatalf("makespan %g, want %g", res.Makespan, want)
	}
	if res.BytesSent != bytes {
		t.Fatalf("bytes sent %g", res.BytesSent)
	}
}

func TestCommOverlapsCompute(t *testing.T) {
	// Sender keeps computing while its DTU transfers: total time should be
	// compute-bound when the next subtask outlasts the transfer (Fig. 2).
	cfg := HydraConfig()
	bytes := 1e5 // small transfer
	b := task.NewBuilder(2, 8)
	b.Step("s")
	c0 := b.Compute(0, rotOnly(8), 18, "conv")
	b.Send(0, c0, []int{1}, bytes, "o1")
	b.Compute(0, rotOnly(8), 18, "conv") // runs concurrently with the send
	b.Compute(1, rotOnly(16), 18, "conv")
	res, err := Run(b.Build(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	rotT := cfg.Card.OpTime(fheop.Rotation, 18, cfg.Scheme)
	want := 16 * rotT
	if math.Abs(res.Makespan-want)/want > 1e-3 {
		t.Fatalf("overlapped makespan %g, want compute-bound %g", res.Makespan, want)
	}
}

func TestNoOverlapSerializes(t *testing.T) {
	// Cards without an independent comm engine stall during transfers.
	cfg := FABConfig()
	cfg.Overlap = false
	bytes := 50e6
	b := task.NewBuilder(2, 8)
	b.Step("s")
	c0 := b.Compute(0, rotOnly(2), 18, "A")
	b.Send(0, c0, []int{1}, bytes, "x")
	b.Compute(0, rotOnly(2), 18, "A")
	res, err := Run(b.Build(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	rotT := cfg.Card.OpTime(fheop.Rotation, 18, cfg.Scheme)
	xfer := cfg.Network.SendTime(bytes, 0, []int{1}, 8)
	want := 4*rotT + xfer
	if res.Makespan < want*(1-1e-6) {
		t.Fatalf("serialized makespan %g, want >= %g", res.Makespan, want)
	}
}

func TestBroadcastCheaperThanUnicastsOnHydra(t *testing.T) {
	cfg := HydraConfig()
	bytes := 20e6
	mk := func(broadcast bool) float64 {
		b := task.NewBuilder(8, 8)
		b.Step("s")
		c0 := b.Compute(0, rotOnly(1), 18, "A")
		if broadcast {
			b.Send(0, c0, []int{1, 2, 3, 4, 5, 6, 7}, bytes, "bc")
		} else {
			for dst := 1; dst < 8; dst++ {
				b.Send(0, c0, []int{dst}, bytes, "uc")
			}
		}
		res, err := Run(b.Build(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.Makespan
	}
	if bc, uc := mk(true), mk(false); bc >= uc {
		t.Fatalf("broadcast %g should beat unicasts %g", bc, uc)
	}
}

func TestStepBarrier(t *testing.T) {
	cfg := HydraConfig()
	b := task.NewBuilder(2, 8)
	b.Step("one")
	b.Compute(0, rotOnly(4), 18, "A")
	b.Step("two")
	b.Compute(1, rotOnly(4), 18, "B")
	res, err := Run(b.Build(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	rotT := cfg.Card.OpTime(fheop.Rotation, 18, cfg.Scheme)
	// The barrier between steps prevents card 1 from starting early.
	if math.Abs(res.Makespan-8*rotT)/rotT > 1e-9 {
		t.Fatalf("barrier makespan %g, want %g", res.Makespan, 8*rotT)
	}
	if len(res.Steps) != 2 || res.Steps[0].Name != "one" {
		t.Fatalf("steps %+v", res.Steps)
	}
	spans := res.StepSpanByName()
	if len(spans) != 2 {
		t.Fatalf("span names %v", spans)
	}
}

func TestValidateCatchesBadPrograms(t *testing.T) {
	b := task.NewBuilder(2, 8)
	b.Step("s")
	b.ComputeAfterRecv(0, 3, rotOnly(1), 18, "A") // recv 3 does not exist
	if _, err := Run(b.Build(), HydraConfig()); err == nil {
		t.Fatal("expected validation error")
	}
}

func TestBuilderPanics(t *testing.T) {
	cases := []func(){
		func() { task.NewBuilder(0, 8) },
		func() {
			b := task.NewBuilder(2, 8)
			b.Step("s")
			b.Compute(5, rotOnly(1), 18, "A")
		},
		func() {
			b := task.NewBuilder(2, 8)
			b.Step("s")
			b.Compute(0, rotOnly(1), 0, "A")
		},
		func() {
			b := task.NewBuilder(2, 8)
			b.Step("s")
			b.Send(0, task.FromStart, []int{0}, 1, "self")
		},
		func() {
			b := task.NewBuilder(2, 8)
			b.Step("s")
			b.Send(0, task.FromStart, nil, 1, "none")
		},
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestTraceCollection(t *testing.T) {
	cfg := HydraConfig()
	cfg.CollectTrace = true
	b := task.NewBuilder(2, 8)
	b.Step("s")
	c0 := b.Compute(0, rotOnly(2), 18, "A")
	b.Send(0, c0, []int{1}, 1e6, "x")
	res, err := Run(b.Build(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	kinds := map[string]int{}
	for _, ev := range res.Trace {
		kinds[ev.Kind]++
		if ev.End < ev.Start || ev.End > res.Makespan+1e-12 {
			t.Fatalf("bad trace event %+v (makespan %g)", ev, res.Makespan)
		}
	}
	if kinds["compute"] != 1 || kinds["send"] != 1 || kinds["recv"] != 1 {
		t.Fatalf("trace kinds %v", kinds)
	}
	// Without the flag, no trace is collected.
	cfg.CollectTrace = false
	res2, err := Run(b.Build(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Trace) != 0 {
		t.Fatal("trace collected without the flag")
	}
}

func TestEnergyAccounting(t *testing.T) {
	cfg := HydraConfig()
	b := task.NewBuilder(2, 8)
	b.Step("s")
	c0 := b.Compute(0, rotOnly(10), 18, "A")
	b.Send(0, c0, []int{1}, 1e6, "x")
	res, err := Run(b.Build(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.EnergyByUnit["NTT"] <= 0 || res.EnergyByUnit["HBM"] <= 0 {
		t.Fatalf("missing compute/memory energy: %v", res.EnergyByUnit)
	}
	if res.EnergyByUnit["Comm"] <= 0 || res.EnergyByUnit["Static"] <= 0 {
		t.Fatalf("missing comm/static energy: %v", res.EnergyByUnit)
	}
	if res.TotalEnergy() <= res.EnergyByUnit["NTT"] {
		t.Fatal("total energy should exceed any single unit")
	}
	// Fig. 7: DTU/NIC energy is a sub-1% contributor.
	if res.EnergyByUnit["Comm"] > 0.01*res.TotalEnergy() {
		t.Fatalf("comm energy share too large: %v", res.EnergyByUnit)
	}
}

func TestSendAfterRemoteComputePanics(t *testing.T) {
	b := task.NewBuilder(2, 8)
	b.Step("s")
	c0 := b.Compute(0, rotOnly(1), 18, "A")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for cross-card SAC dependency")
		}
	}()
	b.Send(1, c0, []int{0}, 1, "x")
}

func TestProgramTotals(t *testing.T) {
	b := task.NewBuilder(2, 8)
	b.Step("s")
	c0 := b.Compute(0, fheop.Of(fheop.Rotation, 2, fheop.PMult, 3), 18, "A")
	b.Send(0, c0, []int{1}, 7, "x")
	p := b.Build()
	ops := p.TotalOps()
	if ops.Get(fheop.Rotation) != 2 || ops.Get(fheop.PMult) != 3 {
		t.Fatalf("totals %v", ops)
	}
	if p.TotalBytes() != 7 {
		t.Fatalf("bytes %g", p.TotalBytes())
	}
}

func TestHandshakeOrdering(t *testing.T) {
	// The sender must wait for the receiver's ready signal: if the receiver
	// is busy computing before its recv task, the send is delayed.
	cfg := HydraConfig()
	bytes := 1e6
	b := task.NewBuilder(2, 8)
	b.Step("s")
	c0 := b.Compute(0, fheop.Of(fheop.HAdd, 1), 18, "A")
	// Receiver computes a long task first; its recv (and thus the handshake)
	// only happens afterwards because CAR forces queue consumption order.
	b.Compute(1, rotOnly(20), 18, "B")
	recvs := b.Send(0, c0, []int{1}, bytes, "x")
	b.ComputeAfterRecv(1, recvs[0], fheop.Of(fheop.HAdd, 1), 18, "C")
	res, err := Run(b.Build(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	rotT := cfg.Card.OpTime(fheop.Rotation, 18, cfg.Scheme)
	haddT := cfg.Card.OpTime(fheop.HAdd, 18, cfg.Scheme)
	if res.Makespan < 20*rotT+haddT {
		t.Fatalf("makespan %g should include the receiver's compute plus the CAR task", res.Makespan)
	}
}

func TestRunOnIdentityMatchesRun(t *testing.T) {
	cfg := HydraConfig()
	b := task.NewBuilder(4, 8)
	b.Step("s")
	for c := 0; c < 4; c++ {
		h := b.Compute(c, rotOnly(3), 18, "A")
		peers := []int{}
		for p := 0; p < 4; p++ {
			if p != c {
				peers = append(peers, p)
			}
		}
		b.Send(c, h, peers, 1e6, "x")
	}
	p := b.Build()
	base, err := Run(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	placed, err := RunOn(p, cfg, Placement{Cards: []int{0, 1, 2, 3}, CardsPerServer: 8})
	if err != nil {
		t.Fatal(err)
	}
	if base.Makespan != placed.Makespan {
		t.Fatalf("identity placement changed the makespan: %g vs %g", base.Makespan, placed.Makespan)
	}
}

func TestRunOnServerSpanSlowsTransfers(t *testing.T) {
	// The same two-card program placed inside one server vs. across a server
	// boundary: the cross-server placement pays the slower inter-server links,
	// so its makespan must be strictly larger.
	cfg := HydraConfig()
	b := task.NewBuilder(2, 2)
	b.Step("s")
	c0 := b.Compute(0, fheop.Of(fheop.HAdd, 1), 18, "A")
	recvs := b.Send(0, c0, []int{1}, 8e6, "x")
	b.ComputeAfterRecv(1, recvs[0], fheop.Of(fheop.HAdd, 1), 18, "B")
	p := b.Build()

	local, err := RunOn(p, cfg, Placement{Cards: []int{8, 9}, CardsPerServer: 8})
	if err != nil {
		t.Fatal(err)
	}
	spanning, err := RunOn(p, cfg, Placement{Cards: []int{7, 8}, CardsPerServer: 8})
	if err != nil {
		t.Fatal(err)
	}
	if spanning.Makespan <= local.Makespan {
		t.Fatalf("cross-server placement should be slower: local %g, spanning %g", local.Makespan, spanning.Makespan)
	}
}

func TestRunOnRejectsBadPlacements(t *testing.T) {
	cfg := HydraConfig()
	b := task.NewBuilder(2, 2)
	b.Step("s")
	b.Compute(0, rotOnly(1), 18, "A")
	p := b.Build()
	bad := []Placement{
		{Cards: []int{0}, CardsPerServer: 8},     // wrong arity
		{Cards: []int{0, 0}, CardsPerServer: 8},  // duplicate physical card
		{Cards: []int{0, -1}, CardsPerServer: 8}, // negative card
		{Cards: []int{0, 1}, CardsPerServer: 0},  // bad server width
	}
	for i, pl := range bad {
		if _, err := RunOn(p, cfg, pl); err == nil {
			t.Fatalf("placement %d should have been rejected", i)
		}
	}
}
