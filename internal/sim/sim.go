// Package sim executes Hydra task programs on a discrete-event model of the
// scale-out system: per-card computation and communication engines with the
// hardware handshake of Procedure 1 (ready/finish signals, Send-After-Compute
// and Compute-After-Receive dependences), switch-based point-to-point and
// broadcast transfers, step barriers per Procedure 2, and cards without a DTU
// (FAB-style) whose communication serializes with their computation.
package sim

import (
	"fmt"
	"math"
	"sort"

	"hydra/internal/fheop"
	"hydra/internal/hw"
	"hydra/internal/task"
)

// Config describes the machine a program runs on.
type Config struct {
	Scheme  hw.SchemeParams
	Card    hw.CardProfile
	Network hw.NetworkProfile
	// DMAConfigLatency is the receive-side configuration time before the
	// ready signal is handshaked back to the sender (Procedure 1 steps 5-6).
	DMAConfigLatency float64
	// Overlap reports whether communication proceeds concurrently with
	// computation (Hydra's DTU). When false (FAB), each card's two queues
	// serialize on one engine in program order.
	Overlap bool
	// CollectTrace records per-task start/end times in Result.Trace
	// (memory-proportional to the task count; off by default).
	CollectTrace bool
}

// TraceEvent is one scheduled task occurrence. The JSON tags are the wire
// shape of `hydrasim -trace-json`.
type TraceEvent struct {
	Card  int     `json:"card"`
	Kind  string  `json:"kind"` // "compute", "send" or "recv"
	Label string  `json:"label"`
	Start float64 `json:"start"`
	End   float64 `json:"end"`
}

// HydraConfig returns the standard Hydra machine configuration.
func HydraConfig() Config {
	return Config{
		Scheme:           hw.PaperScheme(),
		Card:             hw.HydraCard(),
		Network:          hw.HydraNetwork(),
		DMAConfigLatency: 0.5e-6,
		Overlap:          true,
	}
}

// FABConfig returns the FAB multi-card machine configuration: host-relayed
// transfers (PCIe + LAN with a host round trip per dependency). DMA to the
// host proceeds concurrently with the FPGA kernels, but every transfer pays
// the host-managed path, which is what erodes FAB's scalability (Fig. 8).
func FABConfig() Config {
	return Config{
		Scheme:           hw.PaperScheme(),
		Card:             hw.FABCard(),
		Network:          hw.FABNetwork(),
		DMAConfigLatency: 5e-6, // host-mediated descriptor setup
		Overlap:          true,
	}
}

// StepStat summarizes one program step.
type StepStat struct {
	Name       string
	Span       float64 // wall-clock duration of the step
	ComputeMax float64 // largest per-card compute busy time in the step
	CommBytes  float64
}

// Exposed returns the communication time not hidden behind computation.
func (s StepStat) Exposed() float64 {
	e := s.Span - s.ComputeMax
	if e < 0 {
		return 0
	}
	return e
}

// Result is the outcome of a simulation.
type Result struct {
	Makespan    float64
	ComputeBusy []float64 // per card
	CommBusy    []float64 // per card (sender side)
	BytesSent   float64
	Steps       []StepStat

	// EnergyByUnit aggregates Joules per contributor: NTT, MA, MM, Auto,
	// HBM, Comm, Static.
	EnergyByUnit map[string]float64

	// OpTotals counts the CKKS operations executed.
	OpTotals fheop.Counts

	// Trace holds per-task timings when Config.CollectTrace is set.
	Trace []TraceEvent
}

// TotalEnergy sums the energy contributions.
func (r *Result) TotalEnergy() float64 {
	t := 0.0
	for _, v := range r.EnergyByUnit {
		t += v
	}
	return t
}

// MaxComputeBusy returns the largest per-card compute time.
func (r *Result) MaxComputeBusy() float64 {
	m := 0.0
	for _, v := range r.ComputeBusy {
		if v > m {
			m = v
		}
	}
	return m
}

// ExposedComm returns the wall-clock time not covered by the busiest card's
// computation — the communication overhead of Figs. 8 and 9(c).
func (r *Result) ExposedComm() float64 {
	e := r.Makespan - r.MaxComputeBusy()
	if e < 0 {
		return 0
	}
	return e
}

// CommShare returns ExposedComm as a fraction of the makespan.
func (r *Result) CommShare() float64 {
	if r.Makespan == 0 {
		return 0
	}
	return r.ExposedComm() / r.Makespan
}

// StepSpanByName aggregates step wall times by step name.
func (r *Result) StepSpanByName() map[string]float64 {
	m := map[string]float64{}
	for _, s := range r.Steps {
		m[s.Name] += s.Span
	}
	return m
}

// Placement maps a program's logical cards onto a subset of a physical
// fleet. Cards[i] names the physical card running logical card i; the
// physical identities matter only for network timing, because transfers
// between cards of the same physical server ride the in-server switch while
// transfers crossing a server boundary pay the inter-server links.
// CardsPerServer is the physical fleet's server width (which may differ from
// the program's own CardsPerServer, fixed when the program was built for a
// standalone machine of exactly its size).
type Placement struct {
	Cards          []int
	CardsPerServer int
	// Batch is the number of interchangeable jobs sharing this execution as
	// one batched run (continuous batching in the serving layer). 0 and 1
	// mean a private run. b > 1 dilates the run's time line by the
	// amortization factor a + (1-a)*b, where a = Card.BatchAmortFrac is the
	// fraction of a single run that batching amortizes (pipeline fill,
	// evaluation-key loads, per-limb setup); traffic and dynamic energy
	// scale with b, since the batch moves every job's data.
	Batch int
}

// identity is the trivial placement: logical card i on physical card i.
func identity(p *task.Program) Placement {
	ids := make([]int, p.Cards)
	for i := range ids {
		ids[i] = i
	}
	return Placement{Cards: ids, CardsPerServer: p.CardsPerServer}
}

func (pl Placement) validate(p *task.Program) error {
	if len(pl.Cards) != p.Cards {
		return fmt.Errorf("sim: placement has %d cards for a %d-card program", len(pl.Cards), p.Cards)
	}
	if pl.CardsPerServer <= 0 {
		return fmt.Errorf("sim: placement needs a positive CardsPerServer, got %d", pl.CardsPerServer)
	}
	if pl.Batch < 0 {
		return fmt.Errorf("sim: placement batch must be non-negative, got %d", pl.Batch)
	}
	seen := map[int]bool{}
	for _, c := range pl.Cards {
		if c < 0 {
			return fmt.Errorf("sim: negative physical card %d in placement", c)
		}
		if seen[c] {
			return fmt.Errorf("sim: physical card %d appears twice in placement", c)
		}
		seen[c] = true
	}
	return nil
}

// phys maps a slice of logical card IDs to their physical identities.
func (pl Placement) phys(logical []int) []int {
	out := make([]int, len(logical))
	for i, c := range logical {
		out[i] = pl.Cards[c]
	}
	return out
}

// Run executes the program on the configured machine.
func Run(p *task.Program, cfg Config) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return RunOn(p, cfg, identity(p))
}

// RunOn executes the program with its logical cards placed on a subset of a
// larger physical fleet per pl. The serving layer uses this to cost the same
// job program differently depending on where the scheduler lands it: a
// placement confined to one server sees only in-server switch hops, while a
// placement spanning servers pays inter-server transfers.
func RunOn(p *task.Program, cfg Config, pl Placement) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Card.Validate(); err != nil {
		return nil, err
	}
	if err := pl.validate(p); err != nil {
		return nil, err
	}
	res := &Result{
		ComputeBusy:  make([]float64, p.Cards),
		CommBusy:     make([]float64, p.Cards),
		EnergyByUnit: map[string]float64{},
	}
	now := 0.0
	for _, st := range p.Steps {
		stat, err := runStep(st, p, cfg, pl, now, res)
		if err != nil {
			return nil, fmt.Errorf("sim: step %q: %w", st.Name, err)
		}
		res.Steps = append(res.Steps, stat)
		now += stat.Span
	}
	if pl.Batch > 1 {
		now = scaleForBatch(res, now, pl.Batch, cfg.Card.BatchAmortFrac)
	}
	res.Makespan = now
	res.EnergyByUnit["Static"] = cfg.Card.IdlePowerW * res.Makespan * float64(p.Cards)
	return res, nil
}

// RunBatchOn executes the program as a batched run carrying `batch`
// interchangeable jobs (same program, different data), per pl's card set.
// Equivalent to RunOn with pl.Batch set; the explicit form reads better in
// pricing code. The returned Result is the whole batch: divide Makespan by
// batch for the effective per-job cost.
func RunBatchOn(p *task.Program, cfg Config, pl Placement, batch int) (*Result, error) {
	pl.Batch = batch
	return RunOn(p, cfg, pl)
}

// batchFactor is the batched-run time dilation: a batch of b interchangeable
// jobs takes t*(a + (1-a)*b), where t is the single-run time and a is the
// amortizable fraction of t (BatchAmortFrac). a = 0 means no amortization
// (b jobs cost b runs); a = 1 means the batch rides entirely on the first
// job's schedule. HydraCard's a = 0.38 reproduces the measured 1.50x
// kernel-level speedup at batch 8: 8/(0.38 + 0.62*8) = 1.498.
func batchFactor(b int, a float64) float64 {
	if b <= 1 {
		return 1
	}
	return a + (1-a)*float64(b)
}

// scaleForBatch turns a single-run result into the batched-run result: time
// quantities dilate by batchFactor, traffic and the dynamic energy accrued
// so far scale with the jobs carried. OpTotals and the trace keep the
// single-run schedule (the batch replays it, it does not reshape it).
func scaleForBatch(res *Result, makespan float64, batch int, amortFrac float64) float64 {
	f := batchFactor(batch, amortFrac)
	b := float64(batch)
	for i := range res.Steps {
		res.Steps[i].Span *= f
		res.Steps[i].ComputeMax *= f
		res.Steps[i].CommBytes *= b
	}
	for c := range res.ComputeBusy {
		res.ComputeBusy[c] *= f
		res.CommBusy[c] *= f
	}
	res.BytesSent *= b
	for unit := range res.EnergyByUnit {
		res.EnergyByUnit[unit] *= b
	}
	return makespan * f
}

// node kinds in the step dependency graph.
const (
	nodeCompute = iota
	nodeRecvReady
	nodeCommDone // send completion or receive completion
)

type node struct {
	kind     int
	card     int
	index    int // queue index
	duration float64
	time     float64 // completion time (filled by the scheduler)
	preds    []int
	succs    []int
	indeg    int
}

func runStep(st *task.Step, p *task.Program, cfg Config, pl Placement, start float64, res *Result) (StepStat, error) {
	// --- Node construction -------------------------------------------------
	var nodes []node
	add := func(n node) int {
		nodes = append(nodes, n)
		return len(nodes) - 1
	}
	compID := make([][]int, p.Cards)
	readyID := make([][]int, p.Cards)
	doneID := make([][]int, p.Cards)

	opTime := opTimeCache(cfg)
	for card := 0; card < p.Cards; card++ {
		compID[card] = make([]int, len(st.Compute[card]))
		for i, c := range st.Compute[card] {
			compID[card][i] = add(node{kind: nodeCompute, card: card, index: i, duration: opTime(c.Ops, c.Limbs)})
		}
		readyID[card] = make([]int, len(st.Comm[card]))
		doneID[card] = make([]int, len(st.Comm[card]))
		for j, c := range st.Comm[card] {
			switch c.Kind {
			case task.Recv:
				readyID[card][j] = add(node{kind: nodeRecvReady, card: card, index: j, duration: cfg.DMAConfigLatency})
				doneID[card][j] = add(node{kind: nodeCommDone, card: card, index: j})
			case task.Send:
				readyID[card][j] = -1
				doneID[card][j] = add(node{kind: nodeCommDone, card: card, index: j})
			}
		}
	}

	addEdge := func(from, to int) {
		nodes[to].preds = append(nodes[to].preds, from)
		nodes[from].succs = append(nodes[from].succs, to)
		nodes[to].indeg++
	}

	// Map a comm task to the node that gates its start.
	commStartNode := func(card, j int) int {
		if st.Comm[card][j].Kind == task.Recv {
			return readyID[card][j]
		}
		return doneID[card][j]
	}

	// Locate receives by tag for send pairing.
	type recvRef struct{ card, index int }
	recvByTag := map[int][]recvRef{}
	for card := 0; card < p.Cards; card++ {
		for j, c := range st.Comm[card] {
			if c.Kind == task.Recv {
				recvByTag[c.Tag] = append(recvByTag[c.Tag], recvRef{card, j})
			}
		}
	}

	// Queue-order edges. The computation queue is strictly serial. The DTU's
	// TX and RX engines are full duplex: sends chain on sends; receive
	// configurations chain on configurations (multi-channel DMA setup), and
	// arrivals drain through the port in order.
	for card := 0; card < p.Cards; card++ {
		for i := 1; i < len(compID[card]); i++ {
			addEdge(compID[card][i-1], compID[card][i])
		}
		lastSend, lastRecv := -1, -1
		for j, c := range st.Comm[card] {
			if c.Kind == task.Send {
				if lastSend >= 0 {
					addEdge(doneID[card][lastSend], doneID[card][j])
				}
				lastSend = j
			} else {
				if lastRecv >= 0 {
					addEdge(readyID[card][lastRecv], readyID[card][j])
					addEdge(doneID[card][lastRecv], doneID[card][j])
				}
				lastRecv = j
			}
		}
	}

	// SAC / CAR / transfer edges.
	for card := 0; card < p.Cards; card++ {
		for i, c := range st.Compute[card] {
			if c.WaitRecv >= 0 {
				addEdge(doneID[card][c.WaitRecv], compID[card][i])
			}
		}
		for j, c := range st.Comm[card] {
			if c.Kind != task.Send {
				continue
			}
			send := doneID[card][j]
			if c.WaitCompute >= 0 {
				addEdge(compID[card][c.WaitCompute], send)
			}
			refs := recvByTag[c.Tag]
			for _, ref := range refs {
				addEdge(readyID[ref.card][ref.index], send) // handshake: ready before send
				addEdge(send, doneID[ref.card][ref.index])  // data arrival
				// Receiver-port drain time (store-and-forward).
				nodes[doneID[ref.card][ref.index]].duration =
					cfg.Network.RecvTime(c.Bytes, pl.Cards[card], pl.Cards[ref.card], pl.CardsPerServer)
			}
			// Sender-side injection occupancy.
			nodes[send].duration = cfg.Network.SendTime(c.Bytes, pl.Cards[card], pl.phys(c.Peers), pl.CardsPerServer)
		}
	}

	// Serialization edges for cards without an independent comm engine:
	// every task (both queues) chains in creation order.
	if !cfg.Overlap {
		for card := 0; card < p.Cards; card++ {
			type seqNode struct {
				seq         int
				start, done int
			}
			var order []seqNode
			for i, c := range st.Compute[card] {
				order = append(order, seqNode{c.Seq(), compID[card][i], compID[card][i]})
			}
			for j, c := range st.Comm[card] {
				order = append(order, seqNode{c.Seq(), commStartNode(card, j), doneID[card][j]})
			}
			sort.Slice(order, func(a, b int) bool { return order[a].seq < order[b].seq })
			for k := 1; k < len(order); k++ {
				addEdge(order[k-1].done, order[k].start)
			}
		}
	}

	// --- Kahn scheduling ---------------------------------------------------
	queue := make([]int, 0, len(nodes))
	for id := range nodes {
		if nodes[id].indeg == 0 {
			queue = append(queue, id)
		}
	}
	processed := 0
	for len(queue) > 0 {
		id := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		n := &nodes[id]
		t := start
		for _, pid := range n.preds {
			if nodes[pid].time > t {
				t = nodes[pid].time
			}
		}
		n.time = t + n.duration
		processed++
		for _, sid := range n.succs {
			nodes[sid].indeg--
			if nodes[sid].indeg == 0 {
				queue = append(queue, sid)
			}
		}
	}
	if processed != len(nodes) {
		return StepStat{}, fmt.Errorf("dependency cycle (deadlock) detected: %d of %d tasks runnable", processed, len(nodes))
	}

	// --- Statistics and energy ----------------------------------------------
	stat := StepStat{Name: st.Name}
	end := start
	computeBusy := make([]float64, p.Cards)
	for id := range nodes {
		n := &nodes[id]
		if n.time > end {
			end = n.time
		}
		switch n.kind {
		case nodeCompute:
			computeBusy[n.card] += n.duration
			res.ComputeBusy[n.card] += n.duration
			if cfg.CollectTrace {
				res.Trace = append(res.Trace, TraceEvent{
					Card: n.card, Kind: "compute",
					Label: st.Compute[n.card][n.index].Label,
					Start: n.time - n.duration, End: n.time,
				})
			}
		case nodeCommDone:
			c := st.Comm[n.card][n.index]
			if c.Kind == task.Send {
				res.CommBusy[n.card] += n.duration
				bytes := c.Bytes * float64(len(c.Peers))
				res.BytesSent += bytes
				stat.CommBytes += bytes
				res.EnergyByUnit["Comm"] += bytes * cfg.Card.EnergyNIC
			}
			if cfg.CollectTrace {
				kind := "send"
				if c.Kind == task.Recv {
					kind = "recv"
				}
				res.Trace = append(res.Trace, TraceEvent{
					Card: n.card, Kind: kind, Label: c.Label,
					Start: n.time - n.duration, End: n.time,
				})
			}
		}
	}
	for card := 0; card < p.Cards; card++ {
		if computeBusy[card] > stat.ComputeMax {
			stat.ComputeMax = computeBusy[card]
		}
		for _, c := range st.Compute[card] {
			accumulateOpEnergy(res, cfg, c.Ops, c.Limbs, c.EnergyScale)
			res.OpTotals = res.OpTotals.Add(c.Ops)
		}
	}
	stat.Span = end - start
	if stat.Span < 0 || math.IsNaN(stat.Span) {
		return StepStat{}, fmt.Errorf("invalid step span %v", stat.Span)
	}
	return stat, nil
}

// opTimeCache memoizes per-(op,limbs) latencies for the step.
func opTimeCache(cfg Config) func(fheop.Counts, int) float64 {
	type key struct {
		op    fheop.Op
		limbs int
	}
	cache := map[key]float64{}
	return func(ops fheop.Counts, limbs int) float64 {
		total := 0.0
		for _, op := range fheop.Ops() {
			n := ops.Get(op)
			if n == 0 {
				continue
			}
			k := key{op, limbs}
			t, ok := cache[k]
			if !ok {
				t = cfg.Card.OpTime(op, limbs, cfg.Scheme)
				cache[k] = t
			}
			total += float64(n) * t
		}
		return total
	}
}

var energyUnits = []string{"NTT", "MA", "MM", "Auto", "HBM"}

func accumulateOpEnergy(res *Result, cfg Config, ops fheop.Counts, limbs int, scale float64) {
	if scale <= 0 {
		scale = 1
	}
	for _, op := range fheop.Ops() {
		n := ops.Get(op)
		if n == 0 {
			continue
		}
		parts := cfg.Card.EnergyByUnit(op, limbs, cfg.Scheme)
		for _, u := range energyUnits {
			res.EnergyByUnit[u] += scale * float64(n) * parts[u]
		}
	}
}
