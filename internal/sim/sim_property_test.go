package sim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"hydra/internal/fheop"
	"hydra/internal/task"
)

// randomValidProgram builds a structurally valid program (same generator
// family as the isa package's) to property-test the scheduler.
func randomValidProgram(seed int64) *task.Program {
	rng := rand.New(rand.NewSource(seed))
	cards := 1 + rng.Intn(6)
	b := task.NewBuilder(cards, cards)
	steps := 1 + rng.Intn(3)
	for s := 0; s < steps; s++ {
		b.Step("s")
		lastCompute := make(map[int]task.Handle)
		nTasks := 1 + rng.Intn(12)
		for i := 0; i < nTasks; i++ {
			card := rng.Intn(cards)
			if rng.Intn(3) > 0 || len(lastCompute) == 0 || cards == 1 {
				ops := fheop.Of(fheop.Op(rng.Intn(int(fheop.Rotation)+1)), 1+rng.Intn(5))
				lastCompute[card] = b.Compute(card, ops, 1+rng.Intn(28), "L")
				continue
			}
			var from int
			for c := range lastCompute {
				from = c
				break
			}
			var dsts []int
			for c := 0; c < cards; c++ {
				if c != from && rng.Intn(2) == 0 {
					dsts = append(dsts, c)
				}
			}
			if len(dsts) == 0 {
				dsts = []int{(from + 1) % cards}
			}
			recvs := b.Send(from, lastCompute[from], dsts, float64(1+rng.Intn(1e7)), "x")
			if rng.Intn(2) == 0 {
				dst := dsts[0]
				lastCompute[dst] = b.ComputeAfterRecv(dst, recvs[0], fheop.Of(fheop.HAdd, 1), 1+rng.Intn(28), "L")
			}
		}
	}
	return b.Build()
}

func TestSchedulerInvariants(t *testing.T) {
	for _, overlap := range []bool{true, false} {
		cfg := HydraConfig()
		if !overlap {
			cfg = FABConfig()
			cfg.Overlap = false
		}
		f := func(seed int64) bool {
			p := randomValidProgram(seed)
			res, err := Run(p, cfg)
			if err != nil {
				return false
			}
			// Makespan covers the busiest card's computation.
			if res.Makespan+1e-12 < res.MaxComputeBusy() {
				return false
			}
			// Step spans sum to the makespan (barrier semantics).
			sum := 0.0
			for _, st := range res.Steps {
				if st.Span < 0 {
					return false
				}
				sum += st.Span
			}
			if diff := sum - res.Makespan; diff > 1e-9 || diff < -1e-9 {
				return false
			}
			// Op totals match the program.
			if res.OpTotals != p.TotalOps() {
				return false
			}
			// Bytes match.
			if res.BytesSent != p.TotalBytes() {
				return false
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
			t.Fatalf("overlap=%v: %v", overlap, err)
		}
	}
}

func TestSchedulerDeterminism(t *testing.T) {
	f := func(seed int64) bool {
		p := randomValidProgram(seed)
		a, err := Run(p, HydraConfig())
		if err != nil {
			return false
		}
		b, err := Run(p, HydraConfig())
		if err != nil {
			return false
		}
		return a.Makespan == b.Makespan && a.BytesSent == b.BytesSent
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestOverlapNeverSlower(t *testing.T) {
	// With identical cards and network, the full-duplex DTU machine is never
	// slower than the serialized one.
	f := func(seed int64) bool {
		p := randomValidProgram(seed)
		with := HydraConfig()
		without := HydraConfig()
		without.Overlap = false
		a, err := Run(p, with)
		if err != nil {
			return false
		}
		b, err := Run(p, without)
		if err != nil {
			return false
		}
		return a.Makespan <= b.Makespan+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
