package fhir

// Cost is the static operation-count model the pass pipeline optimizes. It
// counts the expensive primitives of the paper's cost model: keyswitches
// (each rotation, relinearization, and conjugation), digit decompositions
// (the RNS decomposition feeding a keyswitch — shared across hoisted
// rotations), ModDowns (the P·Q → Q basis drop — deferred by the
// extended-basis folds), rescales, and plaintext multiplications.
type Cost struct {
	KeySwitch int `json:"keyswitch"`
	Decomp    int `json:"decomp"`
	ModDown   int `json:"moddown"`
	Rescale   int `json:"rescale"`
	PMult     int `json:"pmult"`
	Values    int `json:"values"`
}

// Measure computes the static cost of a program.
//
// Per-op accounting:
//
//	Rotate      1 keyswitch, 1 ModDown; 1 decomposition unless tier-A
//	            hoisted (then one decomposition per Hoist group)
//	Conjugate   1 keyswitch, 1 decomposition, 1 ModDown
//	Relin       1 keyswitch, 1 decomposition, 1 ModDown
//	RotBasket   1 decomposition, one keyswitch per nonzero rotation,
//	            no ModDown (results stay in the extended basis)
//	DiagMac     n plaintext mults, 1 ModDown (the deferred one)
//	RotSum      1 decomposition, one keyswitch per nonzero rotation, 1 ModDown
//	MulPlain,
//	MulConst    1 plaintext mult
//	Rescale     1 rescale
func Measure(p *Program) Cost {
	var c Cost
	c.Values = len(p.Values)
	hoistGroups := map[int]bool{}
	for _, v := range p.Values {
		switch v.Op {
		case OpRotate:
			c.KeySwitch++
			c.ModDown++
			if v.Hoist == 0 {
				c.Decomp++
			} else {
				hoistGroups[v.Hoist] = true
			}
		case OpConjugate, OpRelin:
			c.KeySwitch++
			c.Decomp++
			c.ModDown++
		case OpRotBasket:
			c.Decomp++
			for _, r := range v.Rots {
				if r != 0 {
					c.KeySwitch++
				}
			}
		case OpDiagMac:
			c.PMult += len(v.Rots)
			c.ModDown++
		case OpRotSum:
			c.Decomp++
			c.ModDown++
			for _, r := range v.Rots {
				if r != 0 {
					c.KeySwitch++
				}
			}
		case OpMulPlain, OpMulConst:
			c.PMult++
		case OpRescale:
			c.Rescale++
		}
	}
	c.Decomp += len(hoistGroups)
	return c
}
