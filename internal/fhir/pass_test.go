package fhir

import (
	"strings"
	"testing"
)

func countOp(p *Program, op Op) int {
	n := 0
	for _, v := range p.Values {
		if v.Op == op {
			n++
		}
	}
	return n
}

func onesPlain(b *Builder, key string) *Plain {
	return b.Plain(key, func(slots int) ([]complex128, error) {
		vals := make([]complex128, slots)
		for i := range vals {
			vals[i] = 1
		}
		return vals, nil
	})
}

// buildBSGS writes a BSGS linear transform the way a frontend would: for each
// giant step, an inner fold of plaintext-multiplied baby rotations, rotated by
// the giant step and accumulated. Rotations are re-emitted per (group, baby)
// pair — exactly the redundancy CSE and Hoist exist to remove.
func buildBSGS(t *testing.T, slots, bs, gs int) *Program {
	t.Helper()
	b := NewBuilder(slots)
	x := b.Input("x")
	var acc *Value
	for g := 0; g < gs; g++ {
		var inner *Value
		for j := 0; j < bs; j++ {
			term := b.MulPlain(b.Rotate(x, j), onesPlain(b, ""))
			if inner == nil {
				inner = term
			} else {
				inner = b.Add(inner, term)
			}
		}
		rotated := b.Rotate(inner, g*bs)
		if acc == nil {
			acc = rotated
		} else {
			acc = b.Add(acc, rotated)
		}
	}
	b.Output(acc)
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestLegalizeLazyVsEagerRescales(t *testing.T) {
	build := func() *Program {
		b := NewBuilder(8)
		x := b.Input("x")
		a := b.MulPlain(x, onesPlain(b, "a"))
		c := b.MulPlain(x, onesPlain(b, "c"))
		b.Output(b.Add(a, c))
		p, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	lazy, err := Legalize(build(), LegalizeOptions{Levels: 3})
	if err != nil {
		t.Fatal(err)
	}
	eager, err := Legalize(build(), LegalizeOptions{Levels: 3, Eager: true})
	if err != nil {
		t.Fatal(err)
	}
	if got := countOp(lazy, OpRescale); got != 1 {
		t.Errorf("lazy placement: %d rescales, want 1 (defer through the add)\n%s", got, lazy)
	}
	if got := countOp(eager, OpRescale); got != 2 {
		t.Errorf("eager placement: %d rescales, want 2\n%s", got, eager)
	}
	if lazy.Output.Pend != 0 || lazy.Output.Degree != 1 {
		t.Errorf("output facts pend=%d degree=%d, want 0/1", lazy.Output.Pend, lazy.Output.Degree)
	}
	if lazy.Output.Level != 2 {
		t.Errorf("output level %d, want 2 (one rescale off a 3-level budget)", lazy.Output.Level)
	}
}

func TestLegalizeLevelAlignment(t *testing.T) {
	b := NewBuilder(8)
	x := b.Input("x")
	deep := b.Mul(b.MulPlain(x, onesPlain(b, "p")), x) // costs a level
	b.Output(b.Add(deep, x))                           // x must drop to deep's level
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	lp, err := Legalize(p, LegalizeOptions{Levels: 4})
	if err != nil {
		t.Fatal(err)
	}
	if got := countOp(lp, OpModSwitch); got == 0 {
		t.Errorf("no modswitch inserted for the level-skewed add\n%s", lp)
	}
	if err := lp.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestLegalizeDepthExhausted(t *testing.T) {
	b := NewBuilder(8)
	x := b.Input("x")
	y := x
	for i := 0; i < 3; i++ {
		y = b.Mul(y, y)
	}
	b.Output(y)
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Legalize(p, LegalizeOptions{Levels: 2}); err == nil ||
		!strings.Contains(err.Error(), "modulus chain exhausted") {
		t.Fatalf("want modulus-chain-exhausted error, got %v", err)
	}
	if _, err := Legalize(p, LegalizeOptions{Levels: 4}); err != nil {
		t.Fatalf("4 levels should suffice for depth 3: %v", err)
	}
}

func TestCSEMergesRotationsAndPlains(t *testing.T) {
	b := NewBuilder(8)
	x := b.Input("x")
	r1 := b.emit(&Value{Op: OpRotate, Args: []*Value{x}, K: 1})
	r2 := b.emit(&Value{Op: OpRotate, Args: []*Value{x}, K: 1})
	m1 := b.MulPlain(r1, onesPlain(b, "w"))
	m2 := b.MulPlain(r2, onesPlain(b, "w")) // same key, distinct Plain object
	b.Output(b.Add(m1, m2))
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	cp := CSE(p)
	if got := countOp(cp, OpRotate); got != 1 {
		t.Errorf("%d rotates after CSE, want 1\n%s", got, cp)
	}
	if got := countOp(cp, OpMulPlain); got != 1 {
		t.Errorf("%d mulplains after CSE, want 1 (same plaintext key)\n%s", got, cp)
	}
	if cp.Output.Op != OpAdd {
		t.Errorf("output op %s, want add (x+x, not merged: adds differ by operand identity only)", cp.Output.Op)
	}
}

func TestCSEKeylessPlainsNeverMerge(t *testing.T) {
	b := NewBuilder(8)
	x := b.Input("x")
	m1 := b.MulPlain(x, onesPlain(b, ""))
	m2 := b.MulPlain(x, onesPlain(b, ""))
	b.Output(b.Add(m1, m2))
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if got := countOp(CSE(p), OpMulPlain); got != 2 {
		t.Errorf("%d mulplains after CSE, want 2 (keyless plains have unique identity)", got)
	}
}

func TestLazyRelinFoldsSums(t *testing.T) {
	b := NewBuilder(8)
	x, y, z := b.Input("x"), b.Input("y"), b.Input("z")
	s := b.Sum(b.Mul(x, y), b.Mul(y, z), b.Mul(x, z))
	b.Output(s)
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	lp, err := Legalize(p, LegalizeOptions{Levels: 3})
	if err != nil {
		t.Fatal(err)
	}
	if got := countOp(lp, OpRelin); got != 3 {
		t.Fatalf("legalized program has %d relins, want 3", got)
	}
	rp := LazyRelin(lp)
	if got := countOp(rp, OpRelin); got != 1 {
		t.Errorf("%d relins after LazyRelin, want 1 (one keyswitch for the whole sum)\n%s", got, rp)
	}
	if err := rp.Validate(); err != nil {
		t.Fatal(err)
	}
	if rp.Output.Degree != 1 || rp.Output.Pend != 0 {
		t.Errorf("output degree=%d pend=%d, want 1/0", rp.Output.Degree, rp.Output.Pend)
	}
}

func TestLazyRelinKeepsSharedRelins(t *testing.T) {
	b := NewBuilder(8)
	x, y := b.Input("x"), b.Input("y")
	m := b.Mul(x, y)             // relin result used twice
	s := b.Add(m, b.Rotate(m, 1))
	b.Output(s)
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	lp, err := Legalize(p, LegalizeOptions{Levels: 3})
	if err != nil {
		t.Fatal(err)
	}
	rp := LazyRelin(lp)
	if got := countOp(rp, OpRelin); got != 1 {
		t.Errorf("%d relins, want the shared one kept as-is", got)
	}
	if got := countOp(rp, OpAdd); got != 1 {
		t.Errorf("%d adds, want 1", got)
	}
	for _, v := range rp.Values {
		if v.Op == OpAdd && v.Degree != 1 {
			t.Errorf("add rewritten to degree-2 despite the relin having two consumers")
		}
	}
}

func TestHoistRotSum(t *testing.T) {
	b := NewBuilder(8)
	x := b.Input("x")
	s := b.Sum(x, b.Rotate(x, 1), b.Rotate(x, 2), b.Rotate(x, 4))
	b.Output(s)
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	lp, err := Legalize(p, LegalizeOptions{Levels: 2})
	if err != nil {
		t.Fatal(err)
	}
	hp := Hoist(lp)
	if got := countOp(hp, OpRotSum); got != 1 {
		t.Fatalf("%d rotsums, want 1\n%s", got, hp)
	}
	if got := countOp(hp, OpRotate); got != 0 {
		t.Errorf("%d standalone rotates survive, want 0\n%s", got, hp)
	}
	var rs *Value
	for _, v := range hp.Values {
		if v.Op == OpRotSum {
			rs = v
		}
	}
	wantRots := []int{0, 1, 2, 4}
	if len(rs.Rots) != len(wantRots) {
		t.Fatalf("rotsum rots %v, want %v", rs.Rots, wantRots)
	}
	for i, r := range wantRots {
		if rs.Rots[i] != r {
			t.Fatalf("rotsum rots %v, want %v", rs.Rots, wantRots)
		}
	}
	c := Measure(hp)
	if c.Decomp != 1 || c.ModDown != 1 || c.KeySwitch != 3 {
		t.Errorf("cost %+v, want 1 decomp / 1 moddown / 3 keyswitches", c)
	}
}

func TestHoistBSGS(t *testing.T) {
	p := buildBSGS(t, 16, 4, 4)
	opt, err := Compile(p, Options{Levels: 3})
	if err != nil {
		t.Fatal(err)
	}
	naive, err := CompileNaive(buildBSGS(t, 16, 4, 4), 3)
	if err != nil {
		t.Fatal(err)
	}
	if got := countOp(opt, OpRotBasket); got != 1 {
		t.Errorf("%d baskets, want 1 (baby steps share one decomposition)\n%s", got, opt)
	}
	if got := countOp(opt, OpDiagMac); got != 4 {
		t.Errorf("%d diagmacs, want 4 (one per giant step)\n%s", got, opt)
	}
	co, cn := Measure(opt), Measure(naive)
	// Naive: 4 groups × 3 nonzero babies + 3 giants = 15 keyswitches.
	// Optimized: 3 basket rotations + 3 giants = 6.
	if cn.KeySwitch != 15 {
		t.Errorf("naive keyswitches %d, want 15", cn.KeySwitch)
	}
	if co.KeySwitch != 6 {
		t.Errorf("optimized keyswitches %d, want 6\n%s", co.KeySwitch, opt)
	}
	if reduction := 1 - float64(co.KeySwitch)/float64(cn.KeySwitch); reduction < 0.20 {
		t.Errorf("keyswitch reduction %.0f%%, want >= 20%%", reduction*100)
	}
	if co.ModDown >= cn.ModDown {
		t.Errorf("moddowns not reduced: %d vs naive %d", co.ModDown, cn.ModDown)
	}
	if err := opt.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestHoistSkipsMultiUseLeaves(t *testing.T) {
	b := NewBuilder(8)
	x := b.Input("x")
	r := b.Rotate(x, 1)
	s := b.Sum(x, r, b.Rotate(x, 2))
	b.Output(b.Add(s, b.MulPlain(r, onesPlain(b, "w")))) // r used twice
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	lp, err := Legalize(p, LegalizeOptions{Levels: 2})
	if err != nil {
		t.Fatal(err)
	}
	hp := Hoist(lp)
	if err := hp.Validate(); err != nil {
		t.Fatalf("%v\n%s", err, hp)
	}
	// r has two consumers so it cannot fold into a RotSum; only {x, rot 2}
	// remain, one rotation short of a group.
	if got := countOp(hp, OpRotSum); got != 0 {
		t.Errorf("%d rotsums, want 0 (shared rotation must survive)\n%s", got, hp)
	}
	for _, v := range hp.Values {
		if v.Op == OpRotate && v.K == 1 {
			return
		}
	}
	t.Errorf("shared rotate-by-1 vanished\n%s", hp)
}

func TestHoistTierAAnnotation(t *testing.T) {
	// Two rotations of one source that cannot fold (each feeds a Mul, not an
	// add tree) still share a decomposition via the Hoist group annotation.
	b := NewBuilder(8)
	x, y := b.Input("x"), b.Input("y")
	a := b.Mul(b.Rotate(x, 1), y)
	c := b.Mul(b.Rotate(x, 2), y)
	b.Output(b.Mul(a, c))
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	opt, err := Compile(p, Options{Levels: 4})
	if err != nil {
		t.Fatal(err)
	}
	groups := map[int]int{}
	for _, v := range opt.Values {
		if v.Op == OpRotate && v.Hoist != 0 {
			groups[v.Hoist]++
		}
	}
	if len(groups) != 1 {
		t.Fatalf("hoist groups %v, want one group of 2", groups)
	}
	for _, n := range groups {
		if n != 2 {
			t.Errorf("group size %d, want 2", n)
		}
	}
	c2 := Measure(opt)
	if c2.Decomp >= Measure(opt).KeySwitch+1 {
		t.Errorf("tier-A grouping saved no decompositions: %+v", c2)
	}
}

func TestPipelineInvariants(t *testing.T) {
	p := buildBSGS(t, 16, 2, 2)
	opt, err := Compile(p, Options{Levels: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !opt.Legal {
		t.Error("compiled program lost Legal")
	}
	rots, conj := opt.Rotations()
	if conj {
		t.Error("no conjugations in this program")
	}
	if len(rots) == 0 {
		t.Error("no rotations reported")
	}
	for _, r := range rots {
		if r == 0 {
			t.Error("rotation 0 reported")
		}
	}
}

func TestBuilderErrors(t *testing.T) {
	b := NewBuilder(8)
	if _, err := b.Build(); err == nil {
		t.Error("Build without output should fail")
	}
	b2 := NewBuilder(8)
	x := b2.Input("x")
	b2.MulPlain(x, nil)
	b2.Output(x)
	if _, err := b2.Build(); err == nil {
		t.Error("nil plaintext should fail at Build")
	}
}
