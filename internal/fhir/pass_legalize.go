package fhir

import "fmt"

// LegalizeOptions configure rescale/level placement.
type LegalizeOptions struct {
	// Levels is the level every input arrives at (the depth budget).
	Levels int
	// Eager closes every pending rescale immediately after the operation
	// that opened it — the naive placement. The default (lazy) placement
	// defers rescales through additions and rotations and closes them only
	// where an operation requires canonical-scale operands (multiplicative
	// ops and the output), matching the accumulate-then-rescale idiom of the
	// hand-tuned evaluator procedures and saving one Rescale per fold.
	Eager bool
}

// Legalize computes the (level, pend, degree) fact for every value and
// inserts the Rescale and ModSwitch operations that make the program
// executable: binary operations receive level-aligned, scale-matched
// operands, multiplicative operations receive canonical-scale operands, and
// the output leaves at the canonical scale. It returns a new program (the
// input is unchanged) with Legal set, or an error if the program exceeds the
// depth budget or violates degree rules.
func Legalize(p *Program, opts LegalizeOptions) (*Program, error) {
	if opts.Levels <= 0 {
		return nil, fmt.Errorf("fhir: legalize needs a positive level budget")
	}
	l := &legalizer{opts: opts}
	rep := make(map[*Value]*Value, len(p.Values))
	for _, v := range p.Values {
		nv, err := l.lower(v, rep)
		if err != nil {
			return nil, fmt.Errorf("fhir: legalize v%d (%s): %w", v.ID, v.Op, err)
		}
		rep[v] = nv
	}
	out, err := l.canonical(rep[p.Output])
	if err != nil {
		return nil, fmt.Errorf("fhir: legalize output: %w", err)
	}
	if out.Degree != 1 {
		return nil, fmt.Errorf("fhir: output has degree %d, want 1 (missing relinearization)", out.Degree)
	}
	np := &Program{Slots: p.Slots, Values: l.vals, Output: out, Legal: true, InputLevel: opts.Levels}
	return dce(np), nil
}

type legalizer struct {
	opts LegalizeOptions
	vals []*Value
}

func (l *legalizer) emit(v *Value) *Value {
	v.ID = len(l.vals)
	l.vals = append(l.vals, v)
	return v
}

// rescale closes one pending product on a.
func (l *legalizer) rescale(a *Value) (*Value, error) {
	if a.Level == 0 {
		return nil, fmt.Errorf("modulus chain exhausted (rescale at level 0); raise the level budget")
	}
	if a.Pend == 0 {
		return nil, fmt.Errorf("rescale below the canonical scale")
	}
	return l.emit(&Value{Op: OpRescale, Args: []*Value{a}, Level: a.Level - 1, Pend: a.Pend - 1, Degree: a.Degree}), nil
}

// canonical rescales a down to the canonical scale (pend 0).
func (l *legalizer) canonical(a *Value) (*Value, error) {
	var err error
	for a.Pend > 0 {
		if a, err = l.rescale(a); err != nil {
			return nil, err
		}
	}
	return a, nil
}

// drop mod-switches a down to the given level.
func (l *legalizer) drop(a *Value, level int) *Value {
	if a.Level == level {
		return a
	}
	return l.emit(&Value{Op: OpModSwitch, Args: []*Value{a}, K: a.Level - level,
		Level: level, Pend: a.Pend, Degree: a.Degree})
}

// match prepares two operands for a binary addition: equal pend (rescaling
// the higher), then equal level (mod-switching the higher).
func (l *legalizer) match(a, b *Value) (*Value, *Value, error) {
	var err error
	for a.Pend > b.Pend {
		if a, err = l.rescale(a); err != nil {
			return nil, nil, err
		}
	}
	for b.Pend > a.Pend {
		if b, err = l.rescale(b); err != nil {
			return nil, nil, err
		}
	}
	if a.Level > b.Level {
		a = l.drop(a, b.Level)
	} else if b.Level > a.Level {
		b = l.drop(b, a.Level)
	}
	return a, b, nil
}

// settle applies the eager policy: close every pending rescale right away.
func (l *legalizer) settle(a *Value) (*Value, error) {
	if !l.opts.Eager {
		return a, nil
	}
	return l.canonical(a)
}

func (l *legalizer) lower(v *Value, rep map[*Value]*Value) (*Value, error) {
	args := make([]*Value, len(v.Args))
	for i, a := range v.Args {
		args[i] = rep[a]
	}
	deg1 := func(vs ...*Value) error {
		for _, a := range vs {
			if a.Degree != 1 {
				return fmt.Errorf("operand v%d has degree %d, want 1", a.ID, a.Degree)
			}
		}
		return nil
	}
	switch v.Op {
	case OpInput:
		return l.emit(&Value{Op: OpInput, Name: v.Name, Level: l.opts.Levels, Degree: 1}), nil

	case OpAdd, OpSub:
		a, b := args[0], args[1]
		if a.Degree != b.Degree {
			return nil, fmt.Errorf("degree mismatch: %d vs %d", a.Degree, b.Degree)
		}
		a, b, err := l.match(a, b)
		if err != nil {
			return nil, err
		}
		return l.emit(&Value{Op: v.Op, Args: []*Value{a, b},
			Level: a.Level, Pend: a.Pend, Degree: a.Degree}), nil

	case OpNeg:
		a := args[0]
		if err := deg1(a); err != nil {
			return nil, err
		}
		return l.emit(&Value{Op: v.Op, Args: []*Value{a}, Const: v.Const,
			Level: a.Level, Pend: a.Pend, Degree: 1}), nil

	case OpAddConst:
		// The constant is encoded as an integer at the operand's live scale;
		// a deferred scale of Δ² overflows that encoding, so AddConst always
		// takes a canonical-scale operand.
		a, err := l.canonical(args[0])
		if err != nil {
			return nil, err
		}
		if err := deg1(a); err != nil {
			return nil, err
		}
		return l.emit(&Value{Op: OpAddConst, Args: []*Value{a}, Const: v.Const,
			Level: a.Level, Pend: 0, Degree: 1}), nil

	case OpRotate, OpConjugate:
		a := args[0]
		if err := deg1(a); err != nil {
			return nil, err
		}
		return l.emit(&Value{Op: v.Op, Args: []*Value{a}, K: v.K,
			Level: a.Level, Pend: a.Pend, Degree: 1}), nil

	case OpMulConst, OpMulPlain:
		a, err := l.canonical(args[0])
		if err != nil {
			return nil, err
		}
		if err := deg1(a); err != nil {
			return nil, err
		}
		nv := l.emit(&Value{Op: v.Op, Args: []*Value{a}, Const: v.Const, Plain: v.Plain,
			Level: a.Level, Pend: 1, Degree: 1})
		return l.settle(nv)

	case OpMul:
		a, err := l.canonical(args[0])
		if err != nil {
			return nil, err
		}
		b, err := l.canonical(args[1])
		if err != nil {
			return nil, err
		}
		if err := deg1(a, b); err != nil {
			return nil, err
		}
		if a.Level > b.Level {
			a = l.drop(a, b.Level)
		} else if b.Level > a.Level {
			b = l.drop(b, a.Level)
		}
		return l.emit(&Value{Op: OpMul, Args: []*Value{a, b},
			Level: a.Level, Pend: 1, Degree: 2}), nil

	case OpRelin:
		a := args[0]
		if a.Degree != 2 {
			return nil, fmt.Errorf("relinearization of a degree-%d value", a.Degree)
		}
		nv := l.emit(&Value{Op: OpRelin, Args: []*Value{a},
			Level: a.Level, Pend: a.Pend, Degree: 1})
		return l.settle(nv)

	case OpRescale:
		return l.rescale(args[0])

	case OpModSwitch:
		return l.drop(args[0], args[0].Level-v.K), nil

	case OpRotBasket, OpDiagMac, OpRotSum:
		return nil, fmt.Errorf("fused op reached legalization; run Hoist after Legalize")

	default:
		return nil, fmt.Errorf("unknown op %d", int(v.Op))
	}
}
