package fhir

import (
	"fmt"

	"hydra/internal/ckks"
	"hydra/internal/cluster"
)

// LowerCluster compiles a legalized program into per-card instruction
// streams for the functional cluster runtime. The cluster instruction set is
// deliberately primitive — degree-1 ciphertexts, relinearized CMult, no
// extended basis — so the optimized IR forms de-optimize on the way down:
//
//   - Mul lowers to the relinearized OpCMult and the IR's Relin becomes a
//     copy (relinearization is linear, so eagerly relinearizing each product
//     of a lazy sum agrees with the deferred form up to keyswitch noise);
//   - RotBasket/DiagMac/RotSum expand back into rotate/pmult/add chains,
//     with rotations de-duplicated per card;
//   - ModSwitch becomes a copy: every cluster op aligns operand levels
//     itself, and plaintext operands are encoded at the IR's fact level, so
//     the modulus chain re-converges at each multiplication.
//
// The partition mirrors LowerTask: output terms round-robin over cards, each
// card computing the closure of its share, partials sent to card 0 and
// folded there. The result lands in register "out" on card 0. The caller
// preloads every input ciphertext, under its input name, on every card.
func LowerCluster(p *Program, enc *ckks.Encoder, cards int) ([][]cluster.Instr, error) {
	if !p.Legal {
		return nil, fmt.Errorf("fhir: LowerCluster needs a legalized program")
	}
	if cards <= 0 {
		return nil, fmt.Errorf("fhir: card count %d must be positive", cards)
	}
	terms, wrappers := outputTerms(p)
	progs := make([][]cluster.Instr, cards)
	used := 0
	for ci := 0; ci < cards && ci < len(terms); ci++ {
		var mine []*Value
		for ti := ci; ti < len(terms); ti += cards {
			mine = append(mine, terms[ti])
		}
		cc := &clusterCard{p: p, enc: enc, reg: map[*Value]string{}, rotCache: map[string]string{}}
		for _, v := range closure(p, mine) {
			if err := cc.lower(v); err != nil {
				return nil, fmt.Errorf("fhir: cluster card %d, v%d (%s): %w", ci, v.ID, v.Op, err)
			}
		}
		acc := cc.reg[mine[0]]
		for _, t := range mine[1:] {
			acc = cc.fold(cluster.OpAdd, acc, cc.reg[t])
		}
		if ci == 0 {
			cc.ins = append(cc.ins, cluster.Instr{Op: cluster.OpCopy, Dst: "partial0", Src1: acc})
		} else {
			cc.ins = append(cc.ins, cluster.Instr{Op: cluster.OpSend, Src1: acc, Peer: 0, Tag: ci})
		}
		progs[ci] = cc.ins
		used++
	}
	// Card 0 folds the peers' partials after running its own share, then
	// re-applies the peeled output canonicalization (Rescale chain; a peeled
	// ModSwitch needs no instruction — cluster ops align levels themselves).
	if used > 0 {
		acc := clusterOut(progs, used)
		for _, w := range wrappers {
			if w.Op == OpRescale {
				progs[0] = append(progs[0], cluster.Instr{Op: cluster.OpRescale, Dst: "out", Src1: acc})
				acc = "out"
			}
		}
		if acc != "out" {
			progs[0] = append(progs[0], cluster.Instr{Op: cluster.OpCopy, Dst: "out", Src1: acc})
		}
	}
	return progs, nil
}

// clusterOut appends the receive-and-add aggregation to card 0's stream and
// returns the register holding the folded partial.
func clusterOut(progs [][]cluster.Instr, used int) string {
	acc := "partial0"
	for peer := 1; peer < used; peer++ {
		r := fmt.Sprintf("recv%d", peer)
		progs[0] = append(progs[0], cluster.Instr{Op: cluster.OpRecv, Dst: r, Tag: peer})
		dst := fmt.Sprintf("agg%d", peer)
		progs[0] = append(progs[0], cluster.Instr{Op: cluster.OpAdd, Dst: dst, Src1: acc, Src2: r})
		acc = dst
	}
	return acc
}

type clusterCard struct {
	p        *Program
	enc      *ckks.Encoder
	ins      []cluster.Instr
	reg      map[*Value]string
	rotCache map[string]string // "srcReg@k" -> register holding the rotation
	tmp      int
}

func (c *clusterCard) fresh() string {
	c.tmp++
	return fmt.Sprintf("t%d", c.tmp)
}

func (c *clusterCard) fold(op cluster.OpCode, a, b string) string {
	dst := c.fresh()
	c.ins = append(c.ins, cluster.Instr{Op: op, Dst: dst, Src1: a, Src2: b})
	return dst
}

func (c *clusterCard) rotate(srcReg string, k int) string {
	if k == 0 {
		return srcReg
	}
	key := fmt.Sprintf("%s@%d", srcReg, k)
	if r, ok := c.rotCache[key]; ok {
		return r
	}
	dst := c.fresh()
	c.ins = append(c.ins, cluster.Instr{Op: cluster.OpRotate, Dst: dst, Src1: srcReg, Imm: k})
	c.rotCache[key] = dst
	return dst
}

func (c *clusterCard) encode(pl *Plain, level int) (*ckks.Plaintext, error) {
	vals, err := pl.Values(c.p.Slots)
	if err != nil {
		return nil, err
	}
	return c.enc.EncodeAtLevel(vals, c.enc.Params().DefaultScale(), level)
}

func (c *clusterCard) lower(v *Value) error {
	dst := fmt.Sprintf("v%d", v.ID)
	emit := func(ins cluster.Instr) {
		ins.Dst = dst
		c.ins = append(c.ins, ins)
		c.reg[v] = dst
	}
	arg := func(i int) string { return c.reg[v.Args[i]] }
	switch v.Op {
	case OpInput:
		c.reg[v] = v.Name // preloaded by the host
	case OpAdd:
		emit(cluster.Instr{Op: cluster.OpAdd, Src1: arg(0), Src2: arg(1)})
	case OpSub:
		emit(cluster.Instr{Op: cluster.OpSub, Src1: arg(0), Src2: arg(1)})
	case OpNeg:
		emit(cluster.Instr{Op: cluster.OpNeg, Src1: arg(0)})
	case OpAddConst:
		emit(cluster.Instr{Op: cluster.OpAddConst, Src1: arg(0), Const: v.Const})
	case OpMulConst:
		// No unrescaled mul-by-const instruction: encode the constant as a
		// plaintext vector at the operand's fact level. The IR's own Rescale
		// follows separately, exactly as for MulPlain.
		pl := &Plain{Values: func(slots int) ([]complex128, error) {
			out := make([]complex128, slots)
			for i := range out {
				out[i] = complex(v.Const, 0)
			}
			return out, nil
		}}
		pt, err := c.encode(pl, v.Args[0].Level)
		if err != nil {
			return err
		}
		emit(cluster.Instr{Op: cluster.OpPMult, Src1: arg(0), Plain: pt})
	case OpMulPlain:
		pt, err := c.encode(v.Plain, v.Args[0].Level)
		if err != nil {
			return err
		}
		emit(cluster.Instr{Op: cluster.OpPMult, Src1: arg(0), Plain: pt})
	case OpMul:
		emit(cluster.Instr{Op: cluster.OpCMult, Src1: arg(0), Src2: arg(1)})
	case OpRelin, OpModSwitch, OpRotBasket:
		c.reg[v] = arg(0)
	case OpRescale:
		emit(cluster.Instr{Op: cluster.OpRescale, Src1: arg(0)})
	case OpRotate:
		emit(cluster.Instr{Op: cluster.OpRotate, Src1: arg(0), Imm: v.K})
	case OpConjugate:
		emit(cluster.Instr{Op: cluster.OpConjugate, Src1: arg(0)})
	case OpDiagMac:
		src := arg(0) // the basket collapsed to its source register
		var acc string
		for j, k := range v.Rots {
			pt, err := c.encode(v.Plains[j], v.Level)
			if err != nil {
				return err
			}
			term := c.fresh()
			c.ins = append(c.ins, cluster.Instr{Op: cluster.OpPMult, Dst: term, Src1: c.rotate(src, k), Plain: pt})
			if acc == "" {
				acc = term
			} else {
				acc = c.fold(cluster.OpAdd, acc, term)
			}
		}
		c.ins = append(c.ins, cluster.Instr{Op: cluster.OpCopy, Dst: dst, Src1: acc})
		c.reg[v] = dst
	case OpRotSum:
		var acc string
		for _, k := range v.Rots {
			term := c.rotate(arg(0), k)
			if acc == "" {
				acc = term
			} else {
				acc = c.fold(cluster.OpAdd, acc, term)
			}
		}
		c.ins = append(c.ins, cluster.Instr{Op: cluster.OpCopy, Dst: dst, Src1: acc})
		c.reg[v] = dst
	default:
		return fmt.Errorf("op %s is not lowered", v.Op)
	}
	return nil
}
