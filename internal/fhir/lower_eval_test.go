package fhir

import (
	"math"
	"math/rand"
	"testing"

	"hydra/internal/ckks"
)

// testEnv is one keyed CKKS context sized for a program pair.
type testEnv struct {
	params *ckks.Parameters
	enc    *ckks.Encoder
	eval   *ckks.Evaluator
	dec    *ckks.Decryptor
	encr   *ckks.Encryptor
}

func newTestEnv(t *testing.T, logN, levels int, rots []int, conjugate bool) *testEnv {
	t.Helper()
	params := ckks.TestParameters(logN, levels)
	kg := ckks.NewKeyGenerator(params, 1)
	sk := kg.GenSecretKey()
	pk := kg.GenPublicKey(sk)
	rlk := kg.GenRelinearizationKey(sk)
	rtks := kg.GenRotationKeys(sk, rots, conjugate)
	return &testEnv{
		params: params,
		enc:    ckks.NewEncoder(params),
		eval:   ckks.NewEvaluator(params, rlk, rtks),
		dec:    ckks.NewDecryptor(params, sk),
		encr:   ckks.NewEncryptor(params, pk, 2),
	}
}

func (te *testEnv) encryptAll(t *testing.T, inputs map[string][]complex128, level int) map[string]*ckks.Ciphertext {
	t.Helper()
	out := map[string]*ckks.Ciphertext{}
	for name, vals := range inputs {
		pt, err := te.enc.EncodeAtLevel(vals, te.params.DefaultScale(), level)
		if err != nil {
			t.Fatal(err)
		}
		out[name] = te.encr.Encrypt(pt)
	}
	return out
}

func (te *testEnv) decryptSlots(ct *ckks.Ciphertext) []complex128 {
	return te.enc.Decode(te.dec.Decrypt(ct))
}

func maxErr(a, b []complex128) float64 {
	m := 0.0
	for i := range a {
		if d := math.Hypot(real(a[i]-b[i]), imag(a[i]-b[i])); d > m {
			m = d
		}
	}
	return m
}

func randVec(rng *rand.Rand, n int) []complex128 {
	out := make([]complex128, n)
	for i := range out {
		out[i] = complex(rng.Float64()*2-1, rng.Float64()*2-1)
	}
	return out
}

// unionRotations collects the rotation keys two compiled variants of one
// source program need between them.
func unionRotations(ps ...*Program) (rots []int, conjugate bool) {
	set := map[int]bool{}
	for _, p := range ps {
		rs, conj := p.Rotations()
		conjugate = conjugate || conj
		for _, r := range rs {
			set[r] = true
		}
	}
	for r := range set {
		rots = append(rots, r)
	}
	return rots, conjugate
}

// runDifferential compiles src both ways, evaluates both on ciphertexts, and
// checks each against the exact plaintext interpretation.
func runDifferential(t *testing.T, src func() *Program, levels int, tol float64) {
	t.Helper()
	opt, err := Compile(src(), Options{Levels: levels})
	if err != nil {
		t.Fatal(err)
	}
	naive, err := CompileNaive(src(), levels)
	if err != nil {
		t.Fatal(err)
	}
	rots, conj := unionRotations(opt, naive)
	logN := 5
	for (1 << (logN - 1)) < opt.Slots {
		logN++
	}
	te := newTestEnv(t, logN, levels, rots, conj)
	if te.params.Slots() != opt.Slots {
		t.Fatalf("slot mismatch: params %d, program %d", te.params.Slots(), opt.Slots)
	}

	rng := rand.New(rand.NewSource(7))
	plainIn := map[string][]complex128{}
	for _, in := range opt.Inputs() {
		plainIn[in.Name] = randVec(rng, opt.Slots)
	}
	want, err := Interpret(src(), plainIn)
	if err != nil {
		t.Fatal(err)
	}

	ctx := EvalContext{Eval: te.eval, Enc: te.enc}
	for name, p := range map[string]*Program{"optimized": opt, "naive": naive} {
		cts := te.encryptAll(t, plainIn, levels)
		out, err := Evaluate(p, ctx, cts)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got := te.decryptSlots(out)
		if e := maxErr(got, want); e > tol {
			t.Errorf("%s disagrees with the interpreter: max slot error %.3g > %.3g\n%s", name, e, tol, p)
		}
	}
}

func TestEvaluateBSGSDifferential(t *testing.T) {
	runDifferential(t, func() *Program { return buildBSGS(t, 16, 4, 4) }, 3, 1e-4)
}

func TestEvaluateRotSumDifferential(t *testing.T) {
	runDifferential(t, func() *Program {
		b := NewBuilder(16)
		x := b.Input("x")
		b.Output(b.Sum(x, b.Rotate(x, 1), b.Rotate(x, 2), b.Rotate(x, 4), b.Rotate(x, 8)))
		p, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		return p
	}, 2, 1e-5)
}

func TestEvaluateLazyRelinDifferential(t *testing.T) {
	runDifferential(t, func() *Program {
		b := NewBuilder(16)
		x, y, z := b.Input("x"), b.Input("y"), b.Input("z")
		s := b.Sum(b.Mul(x, y), b.Mul(y, z), b.Mul(b.Rotate(x, 1), z))
		b.Output(s)
		p, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		return p
	}, 3, 1e-4)
}

func TestEvaluateMixedDifferential(t *testing.T) {
	runDifferential(t, func() *Program {
		b := NewBuilder(16)
		x, y := b.Input("x"), b.Input("y")
		a := b.AddConst(b.MulConst(x, 0.5), 0.25)
		c := b.Sub(b.Conjugate(y), b.Neg(b.Rotate(x, 3)))
		m := b.Mul(a, c)
		w := b.MulPlain(b.Rotate(m, 2), b.PlainVec("w", []complex128{
			1, 2, 3, 4, 5, 6, 7, 8, 1, 2, 3, 4, 5, 6, 7, 8,
		}))
		b.Output(b.Add(w, b.Mul(a, a)))
		p, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		return p
	}, 4, 1e-3)
}
