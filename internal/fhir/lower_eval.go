package fhir

import (
	"fmt"

	"hydra/internal/ckks"
)

// EvalContext carries the CKKS machinery a program executes against. The
// evaluator must hold a relinearization key if the program multiplies
// ciphertexts, and rotation keys covering Program.Rotations().
type EvalContext struct {
	Eval *ckks.Evaluator
	Enc  *ckks.Encoder
}

// Evaluate executes a legalized program on the functional CKKS evaluator.
// Inputs maps input names to ciphertexts, each at the program's InputLevel
// and canonical scale. Fused ops lower onto the extended-basis machinery:
// RotBasket → RotateHoistedExt, DiagMac → EncodeExtAtLevel +
// MulPlainExtAccBatch + one ModDownExt, RotSum → AddExtAcc folds; tier-A
// hoist groups share one RotateHoisted decomposition.
func Evaluate(p *Program, ctx EvalContext, inputs map[string]*ckks.Ciphertext) (*ckks.Ciphertext, error) {
	if !p.Legal {
		return nil, fmt.Errorf("fhir: Evaluate needs a legalized program")
	}
	if ctx.Eval == nil || ctx.Enc == nil {
		return nil, fmt.Errorf("fhir: Evaluate needs an evaluator and an encoder")
	}
	e := &evalLowering{
		p: p, ctx: ctx, inputs: inputs,
		deg1:    map[*Value]*ckks.Ciphertext{},
		deg2:    map[*Value]*ckks.Ciphertext2{},
		baskets: map[*Value]map[int]*ckks.ExtCiphertext{},
		hoisted: map[int]map[int]*ckks.Ciphertext{},
	}
	defer e.releaseBaskets()
	for _, v := range p.Values {
		if err := e.lower(v); err != nil {
			return nil, fmt.Errorf("fhir: evaluate v%d (%s): %w", v.ID, v.Op, err)
		}
	}
	out, ok := e.deg1[p.Output]
	if !ok {
		return nil, fmt.Errorf("fhir: output v%d did not lower to a degree-1 ciphertext", p.Output.ID)
	}
	return out, nil
}

type evalLowering struct {
	p      *Program
	ctx    EvalContext
	inputs map[string]*ckks.Ciphertext

	deg1    map[*Value]*ckks.Ciphertext
	deg2    map[*Value]*ckks.Ciphertext2
	baskets map[*Value]map[int]*ckks.ExtCiphertext
	hoisted map[int]map[int]*ckks.Ciphertext // tier-A group id -> rot -> result
}

// releaseBaskets returns every surviving extended-basis row to the ring pool.
// Basket entries are read, never consumed (only the DiagMac accumulator is),
// so they are all still live here.
func (e *evalLowering) releaseBaskets() {
	for _, basket := range e.baskets {
		for _, ext := range basket {
			e.ctx.Eval.ReleaseExt(ext)
		}
	}
}

func (e *evalLowering) ct(v *Value) (*ckks.Ciphertext, error) {
	if ct, ok := e.deg1[v]; ok {
		return ct, nil
	}
	return nil, fmt.Errorf("operand v%d has no degree-1 result", v.ID)
}

func (e *evalLowering) encodePlain(pt *Plain, level int) (*ckks.Plaintext, error) {
	vals, err := pt.Values(e.p.Slots)
	if err != nil {
		return nil, err
	}
	return e.ctx.Enc.EncodeAtLevel(vals, e.ctx.Eval.Params().DefaultScale(), level)
}

// hoistGroup materializes a tier-A group on first touch: one RotateHoisted
// call covering every rotation in the group.
func (e *evalLowering) hoistGroup(v *Value) (map[int]*ckks.Ciphertext, error) {
	if m, ok := e.hoisted[v.Hoist]; ok {
		return m, nil
	}
	src, err := e.ct(v.Args[0])
	if err != nil {
		return nil, err
	}
	var rots []int
	for _, w := range e.p.Values {
		if w.Op == OpRotate && w.Hoist == v.Hoist {
			rots = append(rots, w.K)
		}
	}
	m := e.ctx.Eval.RotateHoisted(src, rots)
	e.hoisted[v.Hoist] = m
	return m, nil
}

func (e *evalLowering) lower(v *Value) error {
	ev := e.ctx.Eval
	switch v.Op {
	case OpInput:
		ct, ok := e.inputs[v.Name]
		if !ok {
			return fmt.Errorf("missing input %q", v.Name)
		}
		if ct.Level() != v.Level {
			return fmt.Errorf("input %q at level %d, program expects %d", v.Name, ct.Level(), v.Level)
		}
		e.deg1[v] = ct

	case OpAdd, OpSub:
		if v.Degree == 2 {
			a, aok := e.deg2[v.Args[0]]
			b, bok := e.deg2[v.Args[1]]
			if !aok || !bok {
				return fmt.Errorf("degree-2 add over non-degree-2 operands")
			}
			if v.Op == OpSub {
				return fmt.Errorf("degree-2 subtraction is not lowered")
			}
			e.deg2[v] = ev.Add2(a, b)
			return nil
		}
		a, err := e.ct(v.Args[0])
		if err != nil {
			return err
		}
		b, err := e.ct(v.Args[1])
		if err != nil {
			return err
		}
		if v.Op == OpAdd {
			e.deg1[v] = ev.Add(a, b)
		} else {
			e.deg1[v] = ev.Sub(a, b)
		}

	case OpNeg:
		a, err := e.ct(v.Args[0])
		if err != nil {
			return err
		}
		e.deg1[v] = ev.Neg(a)

	case OpAddConst:
		a, err := e.ct(v.Args[0])
		if err != nil {
			return err
		}
		e.deg1[v] = ev.AddConst(a, v.Const)

	case OpMulConst:
		a, err := e.ct(v.Args[0])
		if err != nil {
			return err
		}
		e.deg1[v] = ev.MulByConst(a, v.Const)

	case OpMulPlain:
		a, err := e.ct(v.Args[0])
		if err != nil {
			return err
		}
		pt, err := e.encodePlain(v.Plain, a.Level())
		if err != nil {
			return err
		}
		e.deg1[v] = ev.MulPlain(a, pt)

	case OpMul:
		a, err := e.ct(v.Args[0])
		if err != nil {
			return err
		}
		b, err := e.ct(v.Args[1])
		if err != nil {
			return err
		}
		e.deg2[v] = ev.MulNoRelin(a, b)

	case OpRelin:
		ct2, ok := e.deg2[v.Args[0]]
		if !ok {
			return fmt.Errorf("relinearization of a non-degree-2 operand")
		}
		e.deg1[v] = ev.Relinearize(ct2)

	case OpRescale:
		a, err := e.ct(v.Args[0])
		if err != nil {
			return err
		}
		e.deg1[v] = ev.Rescale(a)

	case OpModSwitch:
		if ct2, ok := e.deg2[v.Args[0]]; ok {
			out := ct2.CopyNew()
			out.DropLevel(v.K)
			e.deg2[v] = out
			return nil
		}
		a, err := e.ct(v.Args[0])
		if err != nil {
			return err
		}
		out := a.CopyNew()
		out.DropLevel(v.K)
		e.deg1[v] = out

	case OpRotate:
		if v.Hoist != 0 {
			m, err := e.hoistGroup(v)
			if err != nil {
				return err
			}
			e.deg1[v] = m[v.K]
			return nil
		}
		a, err := e.ct(v.Args[0])
		if err != nil {
			return err
		}
		e.deg1[v] = ev.Rotate(a, v.K)

	case OpConjugate:
		a, err := e.ct(v.Args[0])
		if err != nil {
			return err
		}
		e.deg1[v] = ev.Conjugate(a)

	case OpRotBasket:
		a, err := e.ct(v.Args[0])
		if err != nil {
			return err
		}
		e.baskets[v] = ev.RotateHoistedExt(a, v.Rots)

	case OpDiagMac:
		basket, ok := e.baskets[v.Args[0]]
		if !ok {
			return fmt.Errorf("diagmac over a non-basket operand")
		}
		xs := make([]*ckks.ExtCiphertext, len(v.Rots))
		pts := make([]*ckks.ExtPlaintext, len(v.Rots))
		var srcScale float64
		for i, k := range v.Rots {
			ext, ok := basket[k]
			if !ok {
				return fmt.Errorf("basket has no rotation %d", k)
			}
			xs[i] = ext
			srcScale = ext.Scale
			vals, err := v.Plains[i].Values(e.p.Slots)
			if err != nil {
				return err
			}
			pts[i], err = e.ctx.Enc.EncodeExtAtLevel(vals, ev.Params().DefaultScale(), v.Level)
			if err != nil {
				return err
			}
		}
		acc := ev.NewExtAccumulator(v.Level, srcScale*ev.Params().DefaultScale())
		ev.MulPlainExtAccBatch(xs, pts, acc)
		e.deg1[v] = ev.ModDownExt(acc)

	case OpRotSum:
		a, err := e.ct(v.Args[0])
		if err != nil {
			return err
		}
		exts := ev.RotateHoistedExt(a, v.Rots)
		acc := ev.NewExtAccumulator(a.Level(), a.Scale)
		for _, k := range v.Rots {
			ev.AddExtAcc(exts[k], acc)
		}
		for _, ext := range exts {
			ev.ReleaseExt(ext)
		}
		e.deg1[v] = ev.ModDownExt(acc)

	default:
		return fmt.Errorf("op %s is not lowered", v.Op)
	}
	return nil
}
