package fhir

// LazyRelin defers relinearization through additions: a sum of relinearized
// products Add(Relin(x), Relin(y)) becomes Relin(Add(x, y)) — the addition
// runs on the degree-2 tensors and the whole sum pays one keyswitch. Applied
// to a k-term inner product (the CCMM iteration, attention scores) this
// replaces k relinearizations with one. The rewrite only fires when both
// relinearizations have a single consumer (otherwise the degree-1 result is
// still needed elsewhere) and repeats to fixpoint so left-folded sums
// collapse fully. A ModSwitch between the Relin and the Add (inserted by
// Legalize to align levels) is pulled through onto the degree-2 value.
//
// Relinearization is linear, so the rewrite is exact up to keyswitch noise:
// one keyswitch of a sum instead of the sum of keyswitches. It requires a
// legalized program and preserves all facts.
func LazyRelin(p *Program) *Program {
	for {
		np, changed := lazyRelinOnce(p)
		p = np
		if !changed {
			return p
		}
	}
}

// peelRelin recognizes Relin(m) or ModSwitch(Relin(m)) with single uses all
// the way down, returning the degree-2 value and the level drop to reapply.
func peelRelin(v *Value, uses map[*Value]int) (m *Value, drop int, ok bool) {
	drop = 0
	if v.Op == OpModSwitch && uses[v] == 1 {
		drop = v.K
		v = v.Args[0]
	}
	if v.Op != OpRelin || uses[v] != 1 {
		return nil, 0, false
	}
	return v.Args[0], drop, true
}

func lazyRelinOnce(p *Program) (*Program, bool) {
	uses := p.uses()
	rep := make(map[*Value]*Value, len(p.Values))
	out := &Program{Slots: p.Slots, Legal: p.Legal, InputLevel: p.InputLevel}
	emit := func(v *Value) *Value {
		v.ID = len(out.Values)
		out.Values = append(out.Values, v)
		return v
	}
	clone := func(v *Value, args []*Value) *Value {
		return emit(&Value{Op: v.Op, Args: args, K: v.K, Const: v.Const, Plain: v.Plain,
			Rots: v.Rots, Plains: v.Plains, Name: v.Name,
			Level: v.Level, Pend: v.Pend, Degree: v.Degree, Hoist: v.Hoist})
	}
	// reDrop reapplies a level drop onto the degree-2 operand.
	reDrop := func(m *Value, drop int) *Value {
		if drop == 0 {
			return m
		}
		return emit(&Value{Op: OpModSwitch, Args: []*Value{m}, K: drop,
			Level: m.Level - drop, Pend: m.Pend, Degree: m.Degree})
	}
	changed := false
	for _, v := range p.Values {
		args := make([]*Value, len(v.Args))
		for i, a := range v.Args {
			args[i] = rep[a]
		}
		if v.Op == OpAdd && v.Degree == 1 {
			mx, dropX, okX := peelRelin(v.Args[0], uses)
			my, dropY, okY := peelRelin(v.Args[1], uses)
			if okX && okY {
				x := reDrop(rep[mx], dropX)
				y := reDrop(rep[my], dropY)
				sum := emit(&Value{Op: OpAdd, Args: []*Value{x, y},
					Level: v.Level, Pend: x.Pend, Degree: 2})
				rep[v] = emit(&Value{Op: OpRelin, Args: []*Value{sum},
					Level: v.Level, Pend: v.Pend, Degree: 1})
				changed = true
				continue
			}
		}
		rep[v] = clone(v, args)
	}
	out.Output = rep[p.Output]
	return dce(out), changed
}
