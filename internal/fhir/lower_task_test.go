package fhir

import (
	"bytes"
	"math"
	"testing"

	"hydra/internal/fheop"
	"hydra/internal/hw"
	"hydra/internal/isa"
	"hydra/internal/sim"
	"hydra/internal/task"
)

func totalOps(tp *task.Program) fheop.Counts {
	var c fheop.Counts
	for _, st := range tp.Steps {
		for _, q := range st.Compute {
			for _, t := range q {
				c = c.Add(t.Ops)
			}
		}
	}
	return c
}

func TestLowerTaskSchedulesAndSims(t *testing.T) {
	opt, err := Compile(buildBSGS(t, 16, 4, 4), Options{Levels: 3})
	if err != nil {
		t.Fatal(err)
	}
	tp, err := BuildTaskProgram(opt, hw.PaperScheme(), 4, 2, "bsgs")
	if err != nil {
		t.Fatal(err)
	}
	bin, err := isa.Marshal(tp)
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := isa.Unmarshal(bin)
	if err != nil {
		t.Fatal(err)
	}
	bin2, err := isa.Marshal(decoded)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bin, bin2) {
		t.Fatal("isa round trip not byte-stable")
	}
	res, err := sim.Run(decoded, sim.HydraConfig())
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(res.Makespan) || math.IsInf(res.Makespan, 0) || res.Makespan <= 0 {
		t.Fatalf("makespan %v not finite and positive", res.Makespan)
	}
}

func TestLowerTaskKeySwitchReduction(t *testing.T) {
	opt, err := Compile(buildBSGS(t, 16, 4, 4), Options{Levels: 3})
	if err != nil {
		t.Fatal(err)
	}
	naive, err := CompileNaive(buildBSGS(t, 16, 4, 4), 3)
	if err != nil {
		t.Fatal(err)
	}
	scheme := hw.PaperScheme()
	otp, err := BuildTaskProgram(opt, scheme, 1, 1, "opt")
	if err != nil {
		t.Fatal(err)
	}
	ntp, err := BuildTaskProgram(naive, scheme, 1, 1, "naive")
	if err != nil {
		t.Fatal(err)
	}
	ks := func(c fheop.Counts) int {
		return c[fheop.Rotation] + c[fheop.KeySwitch] + c[fheop.CMult] + c[fheop.Conjugate]
	}
	ko, kn := ks(totalOps(otp)), ks(totalOps(ntp))
	if reduction := 1 - float64(ko)/float64(kn); reduction < 0.20 {
		t.Errorf("task-level keyswitch reduction %.0f%% (%d vs %d), want >= 20%%", reduction*100, ko, kn)
	}
}

func TestLowerTaskMultiCardSplitsTerms(t *testing.T) {
	opt, err := Compile(buildBSGS(t, 16, 4, 4), Options{Levels: 3})
	if err != nil {
		t.Fatal(err)
	}
	tp, err := BuildTaskProgram(opt, hw.PaperScheme(), 4, 2, "bsgs")
	if err != nil {
		t.Fatal(err)
	}
	st := tp.Steps[0]
	busy := 0
	for card := 0; card < tp.Cards; card++ {
		if len(st.Compute[card]) > 0 {
			busy++
		}
	}
	if busy < 2 {
		t.Errorf("only %d cards busy; the term partition should engage several", busy)
	}
	sends := 0
	for card := 0; card < tp.Cards; card++ {
		for _, c := range st.Comm[card] {
			if c.Kind == task.Send {
				sends++
			}
		}
	}
	if sends == 0 {
		t.Error("no aggregation sends emitted for a multi-card lowering")
	}
}
