package fhir

import "hydra/internal/cluster"

func newCluster(te *testEnv, cards int) *cluster.Cluster {
	return cluster.New(te.params, te.eval, cards)
}
