package fhir

import "fmt"

// Builder constructs Programs. It is the only way user code creates IR:
// every constructor checks degrees at build time, folds trivial identities
// (rotation by zero), and keeps the value list topologically ordered by
// construction. Scales and levels are not the builder's concern — Legalize
// places Rescale/ModSwitch later, so frontends write the mathematical
// structure and the pipeline derives the modulus-chain protocol.
type Builder struct {
	slots    int
	vals     []*Value
	output   *Value
	nextUID  int
	inputs   map[string]*Value
	firstErr error
}

// NewBuilder starts a program over the given slot count.
func NewBuilder(slots int) *Builder {
	if slots <= 0 {
		panic("fhir: slot count must be positive")
	}
	return &Builder{slots: slots, inputs: map[string]*Value{}}
}

func (b *Builder) errf(format string, args ...any) {
	if b.firstErr == nil {
		b.firstErr = fmt.Errorf(format, args...)
	}
}

func (b *Builder) emit(v *Value) *Value {
	v.ID = len(b.vals)
	b.vals = append(b.vals, v)
	return v
}

// Input declares (or returns the existing) named ciphertext input.
func (b *Builder) Input(name string) *Value {
	if v, ok := b.inputs[name]; ok {
		return v
	}
	v := b.emit(&Value{Op: OpInput, Name: name})
	b.inputs[name] = v
	return v
}

// Plain wraps a deterministic slot-vector generator as a plaintext operand.
// Two Plains with the same non-empty key are treated as identical by CSE.
func (b *Builder) Plain(key string, gen func(slots int) ([]complex128, error)) *Plain {
	b.nextUID++
	return &Plain{Key: key, Values: gen, uid: b.nextUID}
}

// PlainVec wraps a fixed slot vector as a plaintext operand.
func (b *Builder) PlainVec(key string, vals []complex128) *Plain {
	cp := append([]complex128(nil), vals...)
	return b.Plain(key, func(int) ([]complex128, error) { return cp, nil })
}

// Add returns a + y. Degrees must match (degree-2 additions only arise from
// the lazy-relinearization pass, but the builder permits them for tests).
func (b *Builder) Add(a, y *Value) *Value { return b.binop(OpAdd, a, y) }

// Sub returns a - y.
func (b *Builder) Sub(a, y *Value) *Value { return b.binop(OpSub, a, y) }

func (b *Builder) binop(op Op, a, y *Value) *Value {
	if a == nil || y == nil {
		b.errf("fhir: %s of nil value", op)
		return a
	}
	return b.emit(&Value{Op: op, Args: []*Value{a, y}})
}

// Neg returns -a.
func (b *Builder) Neg(a *Value) *Value {
	return b.emit(&Value{Op: OpNeg, Args: []*Value{a}})
}

// AddConst returns a + c.
func (b *Builder) AddConst(a *Value, c float64) *Value {
	return b.emit(&Value{Op: OpAddConst, Args: []*Value{a}, Const: c})
}

// MulConst returns a · c. The constant is encoded at the default scale, so
// the result carries a pending rescale.
func (b *Builder) MulConst(a *Value, c float64) *Value {
	return b.emit(&Value{Op: OpMulConst, Args: []*Value{a}, Const: c})
}

// MulPlain returns a ⊙ pt. The result carries a pending rescale.
func (b *Builder) MulPlain(a *Value, pt *Plain) *Value {
	if pt == nil {
		b.errf("fhir: MulPlain with nil plaintext")
		return a
	}
	return b.emit(&Value{Op: OpMulPlain, Args: []*Value{a}, Plain: pt})
}

// Mul returns a · y relinearized: it emits the degree-2 tensor product and
// the relinearization as separate values, so the lazy-relinearization pass
// can pull the keyswitch through later additions.
func (b *Builder) Mul(a, y *Value) *Value {
	t := b.emit(&Value{Op: OpMul, Args: []*Value{a, y}})
	return b.emit(&Value{Op: OpRelin, Args: []*Value{t}})
}

// Rotate rotates slots left by k. Rotation by zero is the identity and
// returns a unchanged.
func (b *Builder) Rotate(a *Value, k int) *Value {
	if k == 0 {
		return a
	}
	return b.emit(&Value{Op: OpRotate, Args: []*Value{a}, K: k})
}

// Conjugate conjugates every slot.
func (b *Builder) Conjugate(a *Value) *Value {
	return b.emit(&Value{Op: OpConjugate, Args: []*Value{a}})
}

// Sum folds the given values with Add, left to right.
func (b *Builder) Sum(vs ...*Value) *Value {
	if len(vs) == 0 {
		b.errf("fhir: Sum of no values")
		return nil
	}
	acc := vs[0]
	for _, v := range vs[1:] {
		acc = b.Add(acc, v)
	}
	return acc
}

// Output designates the program result.
func (b *Builder) Output(v *Value) { b.output = v }

// Build finalizes the program and validates its structure.
func (b *Builder) Build() (*Program, error) {
	if b.firstErr != nil {
		return nil, b.firstErr
	}
	if b.output == nil {
		return nil, fmt.Errorf("fhir: no output designated")
	}
	p := &Program{Slots: b.slots, Values: b.vals, Output: b.output}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}
