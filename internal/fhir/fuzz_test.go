package fhir

import (
	"math/rand"
	"sync"
	"testing"

	"hydra/internal/ckks"
)

// fuzzEnv is built once per process: key generation dominates the cost of a
// fuzz execution, and every generated program draws from the same fixed
// rotation set, so one keyed environment serves all of them.
var (
	fuzzOnce sync.Once
	fuzzCtx  *testEnv
)

const (
	fuzzLogN   = 4 // 8 slots
	fuzzLevels = 4
)

var fuzzRots = []int{1, 2, 3}

func fuzzEnv() *testEnv {
	fuzzOnce.Do(func() {
		params := ckks.TestParameters(fuzzLogN, fuzzLevels)
		kg := ckks.NewKeyGenerator(params, 1)
		sk := kg.GenSecretKey()
		pk := kg.GenPublicKey(sk)
		rlk := kg.GenRelinearizationKey(sk)
		rtks := kg.GenRotationKeys(sk, fuzzRots, true)
		fuzzCtx = &testEnv{
			params: params,
			enc:    ckks.NewEncoder(params),
			eval:   ckks.NewEvaluator(params, rlk, rtks),
			dec:    ckks.NewDecryptor(params, sk),
			encr:   ckks.NewEncryptor(params, pk, 2),
		}
	})
	return fuzzCtx
}

// genProgram decodes a byte string into a random DAG over two inputs: each
// byte picks an operation and (implicitly) its operands from the value
// stack. Returns nil when the bytes make no program.
func genProgram(data []byte, slots int) *Program {
	b := NewBuilder(slots)
	stack := []*Value{b.Input("x"), b.Input("y")}
	pick := func(sel byte) *Value { return stack[int(sel)%len(stack)] }
	muls := 0
	for i := 0; i+2 < len(data) && len(stack) < 24; i += 3 {
		op, s0, s1 := data[i], data[i+1], data[i+2]
		a, c := pick(s0), pick(s1)
		var v *Value
		switch op % 10 {
		case 0:
			v = b.Add(a, c)
		case 1:
			v = b.Sub(a, c)
		case 2:
			v = b.Neg(a)
		case 3:
			v = b.AddConst(a, float64(int(s1)%7-3)/4)
		case 4:
			v = b.MulConst(a, float64(int(s1)%9-4)/8)
		case 5:
			v = b.MulPlain(a, b.Plain("", func(slots int) ([]complex128, error) {
				rng := rand.New(rand.NewSource(int64(s1)))
				return randVec(rng, slots), nil
			}))
		case 6:
			// Depth is the scarce resource: cap ciphertext products so most
			// generated programs fit the level budget.
			if muls >= 3 {
				v = b.Add(a, c)
			} else {
				muls++
				v = b.Mul(a, c)
			}
		case 7:
			v = b.Rotate(a, fuzzRots[int(s1)%len(fuzzRots)])
		case 8:
			v = b.Conjugate(a)
		case 9:
			// Re-use an existing value as a second consumer (exercises the
			// single-use guards of LazyRelin and Hoist).
			v = b.Add(a, pick(s0+s1))
		}
		stack = append(stack, v)
	}
	b.Output(stack[len(stack)-1])
	p, err := b.Build()
	if err != nil {
		return nil
	}
	return p
}

// FuzzIRPasses is the differential fuzzer of the pass pipeline: for every
// generated DAG, the fully optimized program and the naive eager program must
// both equal the exact plaintext interpretation within CKKS noise tolerance
// when run on real ciphertexts.
func FuzzIRPasses(f *testing.F) {
	// Seed corpus: shapes that exercise each pass.
	f.Add([]byte{0, 0, 1})                                              // one add
	f.Add([]byte{7, 0, 0, 7, 0, 1, 7, 0, 2, 0, 2, 3, 0, 5, 4})         // rotation fold (Hoist RotSum)
	f.Add([]byte{5, 0, 7, 5, 1, 9, 0, 2, 3})                           // plaintext MACs (CSE + DiagMac)
	f.Add([]byte{6, 0, 1, 6, 1, 0, 0, 2, 3})                           // sum of products (LazyRelin)
	f.Add([]byte{4, 0, 5, 3, 2, 1, 8, 1, 0, 1, 3, 2})                  // consts + conjugate
	f.Add([]byte{7, 0, 1, 5, 2, 4, 7, 0, 2, 5, 3, 8, 0, 4, 5, 9, 1, 2}) // shared-use guard
	f.Fuzz(func(t *testing.T, data []byte) {
		src := genProgram(data, 1<<(fuzzLogN-1))
		if src == nil {
			return
		}
		opt, err := Compile(src, Options{Levels: fuzzLevels})
		if err != nil {
			return // exceeded the depth budget: not a pipeline bug
		}
		naive, err := CompileNaive(src, fuzzLevels)
		if err != nil {
			return
		}
		te := fuzzEnv()
		rng := rand.New(rand.NewSource(3))
		plainIn := map[string][]complex128{
			"x": randVec(rng, src.Slots),
			"y": randVec(rng, src.Slots),
		}
		want, err := Interpret(src, plainIn)
		if err != nil {
			t.Fatal(err)
		}
		// Bound the output magnitude: noise tolerance below assumes O(1)
		// slot values, and deep random DAGs can amplify.
		for _, w := range want {
			if real(w) > 1e3 || real(w) < -1e3 || imag(w) > 1e3 || imag(w) < -1e3 {
				return
			}
		}
		ctx := EvalContext{Eval: te.eval, Enc: te.enc}
		for name, p := range map[string]*Program{"optimized": opt, "naive": naive} {
			cts := te.encryptAll(t, plainIn, fuzzLevels)
			out, err := Evaluate(p, ctx, cts)
			if err != nil {
				t.Fatalf("%s: evaluate: %v\nprogram:\n%s", name, err, p)
			}
			got := te.decryptSlots(out)
			if e := maxErr(got, want); e > 1e-2 {
				t.Fatalf("%s diverges from the interpreter: max slot error %.3g\nsource:\n%s\ncompiled:\n%s",
					name, e, src, p)
			}
		}
	})
}
