package fhir

import (
	"fmt"
	"math/cmplx"
)

// Interpret executes a program exactly on plaintext slot vectors — the
// numeric oracle the differential tests and the fuzzer compare every lowering
// against. It works on legalized and unlegalized programs alike: Rescale,
// ModSwitch, and Relin are identities over exact arithmetic, and the fused
// forms compute the sums their extended-basis lowerings approximate.
func Interpret(p *Program, inputs map[string][]complex128) ([]complex128, error) {
	rot := func(x []complex128, k int) []complex128 {
		n := len(x)
		out := make([]complex128, n)
		for i := range x {
			out[i] = x[((i+k)%n+n)%n]
		}
		return out
	}
	vals := map[*Value][]complex128{}
	for _, v := range p.Values {
		arg := func(i int) []complex128 { return vals[v.Args[i]] }
		switch v.Op {
		case OpInput:
			in, ok := inputs[v.Name]
			if !ok {
				return nil, fmt.Errorf("fhir: interpret: missing input %q", v.Name)
			}
			if len(in) != p.Slots {
				return nil, fmt.Errorf("fhir: interpret: input %q has %d slots, want %d", v.Name, len(in), p.Slots)
			}
			vals[v] = in
		case OpAdd, OpSub, OpMul:
			a, b := arg(0), arg(1)
			out := make([]complex128, p.Slots)
			for i := range out {
				switch v.Op {
				case OpAdd:
					out[i] = a[i] + b[i]
				case OpSub:
					out[i] = a[i] - b[i]
				case OpMul:
					out[i] = a[i] * b[i]
				}
			}
			vals[v] = out
		case OpNeg:
			out := make([]complex128, p.Slots)
			for i, x := range arg(0) {
				out[i] = -x
			}
			vals[v] = out
		case OpAddConst:
			out := make([]complex128, p.Slots)
			for i, x := range arg(0) {
				out[i] = x + complex(v.Const, 0)
			}
			vals[v] = out
		case OpMulConst:
			out := make([]complex128, p.Slots)
			for i, x := range arg(0) {
				out[i] = x * complex(v.Const, 0)
			}
			vals[v] = out
		case OpMulPlain:
			pt, err := v.Plain.Values(p.Slots)
			if err != nil {
				return nil, err
			}
			out := make([]complex128, p.Slots)
			for i, x := range arg(0) {
				out[i] = x * pt[i]
			}
			vals[v] = out
		case OpRelin, OpRescale, OpRotBasket:
			vals[v] = arg(0)
		case OpModSwitch:
			vals[v] = arg(0)
		case OpRotate:
			vals[v] = rot(arg(0), v.K)
		case OpConjugate:
			out := make([]complex128, p.Slots)
			for i, x := range arg(0) {
				out[i] = cmplx.Conj(x)
			}
			vals[v] = out
		case OpDiagMac:
			src := arg(0) // the basket passes its source through
			out := make([]complex128, p.Slots)
			for j, k := range v.Rots {
				pt, err := v.Plains[j].Values(p.Slots)
				if err != nil {
					return nil, err
				}
				r := rot(src, k)
				for i := range out {
					out[i] += r[i] * pt[i]
				}
			}
			vals[v] = out
		case OpRotSum:
			src := arg(0)
			out := make([]complex128, p.Slots)
			for _, k := range v.Rots {
				r := rot(src, k)
				for i := range out {
					out[i] += r[i]
				}
			}
			vals[v] = out
		default:
			return nil, fmt.Errorf("fhir: interpret: unknown op %s", v.Op)
		}
	}
	return vals[p.Output], nil
}
