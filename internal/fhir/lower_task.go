package fhir

import (
	"fmt"

	"hydra/internal/fheop"
	"hydra/internal/hw"
	"hydra/internal/task"
)

// opCounts converts one IR value into the fheop vocabulary the scheduler
// dispatches and the accelerator model costs.
//
// The CMult entry of the cost model bundles the tensor product with its
// relinearization keyswitch, so the split Mul/Relin form the IR uses maps
// back as follows: a Mul whose relinearization follows directly is one
// CMult (and the Relin itself is free); a Mul kept at degree 2 by the
// lazy-relinearization pass is charged the three component products as
// PMults, and the one deferred Relin of the fold is the KeySwitch it
// actually costs. The fused extended-basis forms keep their per-rotation
// keyswitches (Rotation) — what they save at runtime is decompositions and
// ModDowns, which the static op vocabulary does not price.
func opCounts(v *Value, relinFused, mulFused map[*Value]bool) fheop.Counts {
	nonzero := func(rots []int) int {
		n := 0
		for _, r := range rots {
			if r != 0 {
				n++
			}
		}
		return n
	}
	switch v.Op {
	case OpAdd, OpSub, OpNeg, OpAddConst:
		return fheop.Of(fheop.HAdd, 1)
	case OpMulConst, OpMulPlain:
		return fheop.Of(fheop.PMult, 1)
	case OpMul:
		if mulFused[v] {
			return fheop.Of(fheop.CMult, 1)
		}
		return fheop.Of(fheop.PMult, 3)
	case OpRelin:
		if relinFused[v] {
			return fheop.Counts{}
		}
		return fheop.Of(fheop.KeySwitch, 1)
	case OpRescale:
		return fheop.Of(fheop.Rescale, 1)
	case OpRotate:
		return fheop.Of(fheop.Rotation, 1)
	case OpConjugate:
		return fheop.Of(fheop.Conjugate, 1)
	case OpRotBasket:
		return fheop.Of(fheop.Rotation, nonzero(v.Rots))
	case OpDiagMac:
		return fheop.Of(fheop.PMult, len(v.Rots), fheop.HAdd, len(v.Rots)-1)
	case OpRotSum:
		return fheop.Of(fheop.Rotation, nonzero(v.Rots), fheop.HAdd, len(v.Rots)-1)
	default: // OpInput, OpModSwitch: no accelerator work
		return fheop.Counts{}
	}
}

// fusionSets classifies Mul/Relin pairs: a Relin directly over a Mul is
// fused into that Mul's CMult.
func fusionSets(p *Program) (relinFused, mulFused map[*Value]bool) {
	relinFused = map[*Value]bool{}
	mulFused = map[*Value]bool{}
	for _, v := range p.Values {
		if v.Op == OpRelin && v.Args[0].Op == OpMul {
			relinFused[v] = true
			mulFused[v.Args[0]] = true
		}
	}
	return
}

// outputTerms splits the output's addition tree into its top-level terms —
// the parallel units the card partition distributes. Unary wrappers that
// distribute over addition (the Rescale/ModSwitch chain Legalize appends to
// canonicalize the output) are peeled first and returned outermost-last, to
// be re-applied on the aggregating card. A non-add output is a single term.
func outputTerms(p *Program) (terms, wrappers []*Value) {
	out := p.Output
	for out.Op == OpRescale || out.Op == OpModSwitch {
		wrappers = append([]*Value{out}, wrappers...)
		out = out.Args[0]
	}
	var walk func(v *Value)
	walk = func(v *Value) {
		if v.Op == OpAdd && v.Degree == 1 {
			walk(v.Args[0])
			walk(v.Args[1])
			return
		}
		terms = append(terms, v)
	}
	walk(out)
	return terms, wrappers
}

// closure returns every value reachable from the given roots, in program
// order.
func closure(p *Program, roots []*Value) []*Value {
	in := map[*Value]bool{}
	var mark func(v *Value)
	mark = func(v *Value) {
		if in[v] {
			return
		}
		in[v] = true
		for _, a := range v.Args {
			mark(a)
		}
	}
	for _, r := range roots {
		mark(r)
	}
	var out []*Value
	for _, v := range p.Values {
		if in[v] {
			out = append(out, v)
		}
	}
	return out
}

// LowerTask emits a legalized program into the builder's current step as a
// multi-card task-queue schedule, Hydra's static compilation target:
//
//   - the output addition tree is split into its terms, dealt round-robin
//     over the cards;
//   - each card computes the full closure of its terms (shared subtrees are
//     recomputed per card — the uniform-baby-step choice of the paper's BSGS
//     mapping, which trades duplicate compute for zero redistribution) and
//     folds them locally;
//   - partial sums aggregate pairwise to the first card in a tree,
//     log2(cards) rounds of send + receive-and-add, as in Fig. 3(d).
//
// The result lands on cards[0]. Card count must be a power of two.
func LowerTask(p *Program, b *task.Builder, scheme hw.SchemeParams, cards []int, label string) error {
	if !p.Legal {
		return fmt.Errorf("fhir: LowerTask needs a legalized program")
	}
	nc := len(cards)
	if nc == 0 || nc&(nc-1) != 0 {
		return fmt.Errorf("fhir: card count %d must be a positive power of two", nc)
	}
	relinFused, mulFused := fusionSets(p)
	limbs := p.InputLevel + 1
	bytes := float64(scheme.CiphertextBytes(p.Output.Level + 1))

	terms, wrappers := outputTerms(p)
	partials := make([]task.Handle, 0, nc)
	active := make([]int, 0, nc)
	for ci := 0; ci < nc && ci < len(terms); ci++ {
		var mine []*Value
		for ti := ci; ti < len(terms); ti += nc {
			mine = append(mine, terms[ti])
		}
		ops := fheop.Counts{}
		for _, v := range closure(p, mine) {
			ops = ops.Add(opCounts(v, relinFused, mulFused))
		}
		if len(mine) > 1 {
			ops = ops.Add(fheop.Of(fheop.HAdd, len(mine)-1))
		}
		partials = append(partials, b.Compute(cards[ci], ops, limbs, label))
		active = append(active, cards[ci])
	}

	// Pairwise tree aggregation onto cards[0].
	n := len(active)
	for n > 1 {
		half := (n + 1) / 2
		for i := half; i < n; i++ {
			recvs := b.Send(active[i], partials[i], []int{active[i-half]}, bytes, label)
			partials[i-half] = b.ComputeAfterRecv(active[i-half], recvs[0],
				fheop.Of(fheop.HAdd, 1), limbs, label)
		}
		n = half
	}
	// Re-apply the peeled output canonicalization on the aggregating card.
	wrapOps := fheop.Counts{}
	for _, w := range wrappers {
		wrapOps = wrapOps.Add(opCounts(w, nil, nil))
	}
	if wrapOps != (fheop.Counts{}) {
		b.Compute(cards[0], wrapOps, limbs, label)
	}
	return nil
}

// BuildTaskProgram is the one-shot form of LowerTask: it opens a step named
// after the label, lowers the program over cards 0..cards-1, validates, and
// returns the task program.
func BuildTaskProgram(p *Program, scheme hw.SchemeParams, cards, cardsPerServer int, label string) (*task.Program, error) {
	b := task.NewBuilder(cards, cardsPerServer)
	b.Step(label)
	ids := make([]int, cards)
	for i := range ids {
		ids[i] = i
	}
	if err := LowerTask(p, b, scheme, ids, label); err != nil {
		return nil, err
	}
	tp := b.Build()
	if err := tp.Validate(); err != nil {
		return nil, err
	}
	return tp, nil
}
