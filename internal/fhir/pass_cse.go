package fhir

import "fmt"

// CSE merges structurally identical values: same operation, same (already
// merged) operands, same attributes. Its main payoff on FHE programs is
// rotation reuse — a BSGS transform written naively re-rotates the input once
// per (group, baby-step) pair, and CSE collapses those to one rotation per
// baby step, which is what makes the Hoist pass's shared decomposition worth
// one decomposition total. Plaintext operands merge through their Keys;
// keyless plaintexts never merge. Add and Mul are treated as commutative.
func CSE(p *Program) *Program {
	rep := make(map[*Value]*Value, len(p.Values))
	byKey := map[string]*Value{}
	out := &Program{Slots: p.Slots, Legal: p.Legal, InputLevel: p.InputLevel}
	emit := func(v *Value) *Value {
		v.ID = len(out.Values)
		out.Values = append(out.Values, v)
		return v
	}
	for _, v := range p.Values {
		args := make([]*Value, len(v.Args))
		for i, a := range v.Args {
			args[i] = rep[a]
		}
		key := cseKey(v, args)
		if w, ok := byKey[key]; ok {
			rep[v] = w
			continue
		}
		nv := emit(&Value{Op: v.Op, Args: args, K: v.K, Const: v.Const, Plain: v.Plain,
			Rots: v.Rots, Plains: v.Plains, Name: v.Name,
			Level: v.Level, Pend: v.Pend, Degree: v.Degree, Hoist: v.Hoist})
		byKey[key] = nv
		rep[v] = nv
	}
	out.Output = rep[p.Output]
	return dce(out)
}

func cseKey(v *Value, args []*Value) string {
	a0, a1 := -1, -1
	if len(args) > 0 {
		a0 = args[0].ID
	}
	if len(args) > 1 {
		a1 = args[1].ID
	}
	// Commutative ops: normalize operand order.
	if (v.Op == OpAdd || v.Op == OpMul) && a1 < a0 {
		a0, a1 = a1, a0
	}
	key := fmt.Sprintf("%d|%d,%d|%d|%x|%s", int(v.Op), a0, a1, v.K, v.Const, v.Name)
	if v.Plain != nil {
		key += "|" + v.Plain.cseKey()
	}
	if len(v.Rots) > 0 {
		key += fmt.Sprintf("|%v", v.Rots)
	}
	for _, pt := range v.Plains {
		key += "|" + pt.cseKey()
	}
	return key
}
