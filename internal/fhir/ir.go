// Package fhir is the FHE program compiler: an SSA-ish intermediate
// representation over ciphertext values with a typed builder API, a pass
// pipeline, and lowerings to the functional CKKS evaluator, the task/ISA
// scheduling model, and the functional cluster runtime.
//
// Hydra compiles networks offline into statically scheduled programs; this
// package is that compilation step as a real compiler. A Program is a
// topologically ordered DAG of Values. Each Value carries the (level, scale,
// degree) facts of the ciphertext it denotes — the same lattice hydra-lint's
// levelscale check tracks over hand-written evaluator code — and the pass
// pipeline turns a naively expressed program into the double-hoisted,
// lazily relinearized form the hand-tuned hefloat procedures use:
//
//	CSE         merges structurally identical rotations and plaintext muls
//	Legalize    inserts Rescale/ModSwitch to satisfy per-op level and scale
//	            constraints (lazily in the optimized pipeline, eagerly in
//	            the naive one) and computes the fact lattice
//	LazyRelin   defers relinearization through additions, folding sums of
//	            degree-2 tensor products into a single keyswitch
//	Hoist       merges rotations sharing a digit decomposition into one
//	            extended-basis fold (RotBasket/DiagMac/RotSum), deferring
//	            all but one ModDown per fold
//	DCE         drops values unreachable from the output
//
// The scale lattice is tracked as an integer count of pending (unclosed)
// products: a value with Pend = 0 sits at the canonical scale Δ, Pend = 1 at
// ≈ Δ², and so on. Rescale decrements Pend. Two values may be added when
// their Pend matches — the runtime scales then agree within the evaluator's
// relative tolerance, because every prime of the chain is within 2⁻³² of Δ.
package fhir

import (
	"fmt"
	"sort"
)

// Op enumerates IR operations. The first group is what the Builder emits;
// Rescale/ModSwitch are inserted by Legalize; the fused extended-basis forms
// (RotBasket, DiagMac, RotSum) are introduced by the Hoist pass.
type Op int

// IR operations.
const (
	OpInput     Op = iota // named ciphertext input
	OpAdd                 // Args[0] + Args[1] (degrees must match)
	OpSub                 // Args[0] - Args[1]
	OpNeg                 // -Args[0]
	OpAddConst            // Args[0] + Const
	OpMulConst            // Args[0] · Const (const encoded at the default scale; raises Pend)
	OpMulPlain            // Args[0] ⊙ Plain (raises Pend)
	OpMul                 // Args[0] · Args[1]: degree-2 tensor product, no relinearization
	OpRelin               // degree-2 → degree-1 keyswitch
	OpRescale             // drop the top modulus, Pend - 1
	OpModSwitch           // drop K levels without rounding (level alignment)
	OpRotate              // rotate slots left by K
	OpConjugate           // conjugate every slot
	OpRotBasket           // hoisted: Args[0] rotated by every r in Rots, one shared decomposition, results left in the extended basis
	OpDiagMac             // Args[0] must be a RotBasket: ModDown(Σ_j basket[Rots[j]] ⊙ Plains[j]), one deferred ModDown for the whole fold
	OpRotSum              // Σ_{r ∈ Rots} rotate(Args[0], r) through one extended-basis accumulator and one ModDown
)

var opNames = [...]string{
	"input", "add", "sub", "neg", "addconst", "mulconst", "mulplain", "mul",
	"relin", "rescale", "modswitch", "rotate", "conjugate", "rotbasket",
	"diagmac", "rotsum",
}

func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", int(o))
}

// Plain is a plaintext operand: a deterministic slot-vector generator plus a
// structural identity. Two Plains with the same non-empty Key are assumed to
// generate the same vector (CSE merges through them); a Plain with an empty
// Key is never merged.
type Plain struct {
	Key    string
	Values func(slots int) ([]complex128, error)

	uid int // builder-assigned fallback identity for keyless plaintexts
}

func (p *Plain) cseKey() string {
	if p.Key != "" {
		return p.Key
	}
	return fmt.Sprintf("#%d", p.uid)
}

// Value is one SSA value: an operation over earlier values, plus the
// ciphertext facts Legalize computes for it. Values are immutable once their
// program is built; passes construct rewritten programs rather than mutating
// in place.
type Value struct {
	ID   int
	Op   Op
	Args []*Value

	K      int      // rotation amount (OpRotate), levels dropped (OpModSwitch)
	Const  float64  // scalar operand (OpAddConst, OpMulConst)
	Plain  *Plain   // plaintext operand (OpMulPlain)
	Rots   []int    // rotation sets (OpRotBasket, OpRotSum, OpDiagMac baby indices)
	Plains []*Plain // per-rotation plaintexts (OpDiagMac)
	Name   string   // input name (OpInput)

	// Facts, valid once Legalize has run (Program.Legal).
	Level  int
	Pend   int // unclosed products: scale ≈ Δ^(1+Pend)
	Degree int

	// Hoist is the shared-decomposition group this rotation belongs to
	// (tier-A hoisting: the lowering decomposes the source once per group).
	// Zero means ungrouped.
	Hoist int
}

// Program is a topologically ordered value DAG with one designated output.
type Program struct {
	Slots  int
	Values []*Value
	Output *Value
	// Legal reports that the facts on every value are valid: Legalize ran
	// and no structural rewrite has happened since.
	Legal bool
	// InputLevel is the level Legalize assumed for every input.
	InputLevel int
}

// Inputs returns the program's input values in definition order.
func (p *Program) Inputs() []*Value {
	var ins []*Value
	for _, v := range p.Values {
		if v.Op == OpInput {
			ins = append(ins, v)
		}
	}
	return ins
}

// uses returns the number of consumers of each value (the output counts as
// one extra use, so a use count of 1 on the output's operand still means
// "single consumer").
func (p *Program) uses() map[*Value]int {
	n := make(map[*Value]int, len(p.Values))
	for _, v := range p.Values {
		for _, a := range v.Args {
			n[a]++
		}
	}
	if p.Output != nil {
		n[p.Output]++
	}
	return n
}

// dce returns the program restricted to values reachable from the output,
// preserving relative order and renumbering IDs densely.
func dce(p *Program) *Program {
	live := map[*Value]bool{}
	var mark func(v *Value)
	mark = func(v *Value) {
		if live[v] {
			return
		}
		live[v] = true
		for _, a := range v.Args {
			mark(a)
		}
	}
	if p.Output != nil {
		mark(p.Output)
	}
	out := &Program{Slots: p.Slots, Output: p.Output, Legal: p.Legal, InputLevel: p.InputLevel}
	for _, v := range p.Values {
		if live[v] {
			v.ID = len(out.Values)
			out.Values = append(out.Values, v)
		}
	}
	return out
}

// DCE removes values unreachable from the output.
func DCE(p *Program) *Program { return dce(p) }

// Validate checks structural invariants: topological order, argument arity,
// and fused-op well-formedness. It does not require facts.
func (p *Program) Validate() error {
	if p.Output == nil {
		return fmt.Errorf("fhir: program has no output")
	}
	seen := map[*Value]bool{}
	arity := func(v *Value, n int) error {
		if len(v.Args) != n {
			return fmt.Errorf("fhir: v%d (%s) has %d args, want %d", v.ID, v.Op, len(v.Args), n)
		}
		return nil
	}
	for i, v := range p.Values {
		if v.ID != i {
			return fmt.Errorf("fhir: v%d stored at index %d", v.ID, i)
		}
		for _, a := range v.Args {
			if !seen[a] {
				return fmt.Errorf("fhir: v%d (%s) uses v%d before its definition", v.ID, v.Op, a.ID)
			}
		}
		var err error
		switch v.Op {
		case OpInput:
			err = arity(v, 0)
			if err == nil && v.Name == "" {
				err = fmt.Errorf("fhir: v%d input has no name", v.ID)
			}
		case OpAdd, OpSub, OpMul:
			err = arity(v, 2)
		case OpNeg, OpAddConst, OpMulConst, OpMulPlain, OpRelin, OpRescale, OpModSwitch, OpRotate, OpConjugate:
			err = arity(v, 1)
			if err == nil && v.Op == OpMulPlain && v.Plain == nil {
				err = fmt.Errorf("fhir: v%d mulplain has no plaintext", v.ID)
			}
		case OpRotBasket, OpRotSum:
			err = arity(v, 1)
			if err == nil && len(v.Rots) == 0 {
				err = fmt.Errorf("fhir: v%d %s has no rotations", v.ID, v.Op)
			}
		case OpDiagMac:
			err = arity(v, 1)
			switch {
			case err != nil:
			case v.Args[0].Op != OpRotBasket:
				err = fmt.Errorf("fhir: v%d diagmac source is %s, want rotbasket", v.ID, v.Args[0].Op)
			case len(v.Rots) == 0 || len(v.Rots) != len(v.Plains):
				err = fmt.Errorf("fhir: v%d diagmac has %d rotations and %d plaintexts", v.ID, len(v.Rots), len(v.Plains))
			}
		default:
			err = fmt.Errorf("fhir: v%d has unknown op %d", v.ID, int(v.Op))
		}
		if err != nil {
			return err
		}
		seen[v] = true
	}
	if !seen[p.Output] {
		return fmt.Errorf("fhir: output value is not in the program")
	}
	return nil
}

// Rotations returns every rotation index the program uses (for key
// generation), sorted, excluding 0, plus whether conjugation keys are needed.
func (p *Program) Rotations() (rots []int, conjugate bool) {
	set := map[int]bool{}
	for _, v := range p.Values {
		switch v.Op {
		case OpRotate:
			if v.K != 0 {
				set[v.K] = true
			}
		case OpConjugate:
			conjugate = true
		case OpRotBasket, OpRotSum, OpDiagMac:
			for _, r := range v.Rots {
				if r != 0 {
					set[r] = true
				}
			}
		}
	}
	rots = make([]int, 0, len(set))
	for r := range set {
		rots = append(rots, r)
	}
	sort.Ints(rots)
	return rots, conjugate
}

// String renders the program in a compact single-line-per-value form, used
// by tests and the compiler driver's -dump flag.
func (p *Program) String() string {
	out := ""
	for _, v := range p.Values {
		out += fmt.Sprintf("v%d = %s", v.ID, v.Op)
		for _, a := range v.Args {
			out += fmt.Sprintf(" v%d", a.ID)
		}
		switch v.Op {
		case OpInput:
			out += " " + v.Name
		case OpRotate:
			out += fmt.Sprintf(" by %d", v.K)
		case OpModSwitch:
			out += fmt.Sprintf(" drop %d", v.K)
		case OpAddConst, OpMulConst:
			out += fmt.Sprintf(" %g", v.Const)
		case OpMulPlain:
			out += " " + v.Plain.cseKey()
		case OpRotBasket, OpRotSum, OpDiagMac:
			out += fmt.Sprintf(" %v", v.Rots)
		}
		if p.Legal {
			out += fmt.Sprintf("  [L%d P%d d%d]", v.Level, v.Pend, v.Degree)
		}
		if v == p.Output {
			out += "  <- output"
		}
		out += "\n"
	}
	return out
}
