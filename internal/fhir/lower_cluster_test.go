package fhir

import (
	"context"
	"math/rand"
	"testing"
)

// runClusterDifferential compiles src both ways and executes each on the
// functional cluster runtime, comparing the decrypted result against the
// exact interpretation. Relinearization is eager on the cluster (its CMult
// is relinearized), so the comparison tolerance absorbs keyswitch noise.
func runClusterDifferential(t *testing.T, src func() *Program, levels, cards int, tol float64) {
	t.Helper()
	opt, err := Compile(src(), Options{Levels: levels})
	if err != nil {
		t.Fatal(err)
	}
	naive, err := CompileNaive(src(), levels)
	if err != nil {
		t.Fatal(err)
	}
	rots, conj := unionRotations(opt, naive)
	logN := 5
	for (1 << (logN - 1)) < opt.Slots {
		logN++
	}
	te := newTestEnv(t, logN, levels, rots, conj)

	rng := rand.New(rand.NewSource(11))
	plainIn := map[string][]complex128{}
	for _, in := range opt.Inputs() {
		plainIn[in.Name] = randVec(rng, opt.Slots)
	}
	want, err := Interpret(src(), plainIn)
	if err != nil {
		t.Fatal(err)
	}

	for name, p := range map[string]*Program{"optimized": opt, "naive": naive} {
		progs, err := LowerCluster(p, te.enc, cards)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		cl := newCluster(te, cards)
		cts := te.encryptAll(t, plainIn, levels)
		for card := 0; card < cards; card++ {
			for inName, ct := range cts {
				cl.Load(card, inName, ct)
			}
		}
		if err := cl.Run(context.Background(), progs); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		out, err := cl.Get(0, "out")
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got := te.decryptSlots(out)
		if e := maxErr(got, want); e > tol {
			t.Errorf("%s on cluster disagrees with the interpreter: max slot error %.3g > %.3g", name, e, tol)
		}
	}
}

func TestClusterBSGSDifferential(t *testing.T) {
	runClusterDifferential(t, func() *Program { return buildBSGS(t, 16, 4, 4) }, 3, 2, 1e-4)
}

func TestClusterLazyRelinDifferential(t *testing.T) {
	runClusterDifferential(t, func() *Program {
		b := NewBuilder(16)
		x, y, z := b.Input("x"), b.Input("y"), b.Input("z")
		b.Output(b.Sum(b.Mul(x, y), b.Mul(y, z), b.Mul(b.Rotate(x, 1), z)))
		p, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		return p
	}, 3, 1, 1e-4)
}

func TestClusterSingleCard(t *testing.T) {
	runClusterDifferential(t, func() *Program {
		b := NewBuilder(16)
		x := b.Input("x")
		b.Output(b.Sum(x, b.Rotate(x, 1), b.Rotate(x, 2)))
		p, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		return p
	}, 2, 1, 1e-5)
}
