package fhir

import "sort"

// Hoist merges rotations that share a digit decomposition into extended-basis
// folds — the compiler form of the double-hoisting optimization (PR 5's
// RotateHoistedExt machinery) that turns rotation reuse into a pure
// scheduling decision.
//
// Tier B (ext-basis folds) restructures addition trees:
//
//   - a fold of single-use MulPlain(Rotate(src, k), pt) leaves sharing one
//     source becomes RotBasket(src) feeding a DiagMac — the source is
//     decomposed once, every rotation stays in the P·Q basis, the
//     plaintext MACs run there, and the whole fold pays one ModDown
//     (exactly hefloat's TransformPlan.Apply giant step);
//   - a fold of single-use Rotate(src, k) leaves (with or without the
//     identity term src) becomes a RotSum — one decomposition, one ModDown.
//
// Tier A (shared decomposition) annotates the rotations that survive tier B:
// rotations of the same source are grouped (Value.Hoist), and the lowering
// decomposes the source once per group (RotateHoisted), paying one ModDown
// per rotation but one decomposition per group.
//
// Hoist requires a legalized program; a tree's leaves all carry the same
// (level, pend) facts, so every fused value's facts follow directly.
func Hoist(p *Program) *Program {
	h := &hoister{
		p:         p,
		uses:      p.uses(),
		consumers: map[*Value][]*Value{},
		rep:       map[*Value]*Value{},
		baskets:   map[*Value]*Value{},
		basketRot: map[*Value]map[int]bool{},
	}
	for _, v := range p.Values {
		for _, a := range v.Args {
			h.consumers[a] = append(h.consumers[a], v)
		}
	}
	h.planTrees()
	out := &Program{Slots: p.Slots, Legal: p.Legal, InputLevel: p.InputLevel}
	h.out = out
	for _, v := range p.Values {
		if root, ok := h.roots[v]; ok {
			h.rep[v] = h.emitTree(root)
			continue
		}
		if h.claimed[v] {
			// Consumed into a fused form; reachable occurrences were
			// rewritten through rep, so emit nothing. (A claimed value is
			// never referenced outside its tree — planTrees guarantees it.)
			continue
		}
		args := make([]*Value, len(v.Args))
		for i, a := range v.Args {
			args[i] = h.rep[a]
		}
		h.rep[v] = h.emit(&Value{Op: v.Op, Args: args, K: v.K, Const: v.Const, Plain: v.Plain,
			Rots: v.Rots, Plains: v.Plains, Name: v.Name,
			Level: v.Level, Pend: v.Pend, Degree: v.Degree, Hoist: v.Hoist})
	}
	out.Output = h.rep[p.Output]
	out = dce(out)
	annotateSharedDecomp(out)
	return out
}

// treePlan is one addition tree scheduled for restructuring.
type treePlan struct {
	root   *Value
	leaves []*Value // in-order leaf occurrences
	// macGroups and rotGroups index leaves by fold membership.
	macGroups []*macGroup
	rotGroups []*rotGroup
	claimed   map[*Value]bool // leaves consumed by a fold
}

type macGroup struct {
	src    *Value // shared rotation source (pre-rewrite)
	ks     []int
	plains []*Plain
}

type rotGroup struct {
	src      *Value
	ks       []int // includes 0 when the identity term participates
	identity bool
}

type hoister struct {
	p         *Program
	uses      map[*Value]int
	consumers map[*Value][]*Value
	rep       map[*Value]*Value
	out       *Program

	roots   map[*Value]*treePlan
	claimed map[*Value]bool // values consumed by some fused form (tree-internal)

	baskets   map[*Value]*Value       // rewritten src -> emitted RotBasket
	basketRot map[*Value]map[int]bool // rewritten src -> rotation set
}

func (h *hoister) emit(v *Value) *Value {
	v.ID = len(h.out.Values)
	h.out.Values = append(h.out.Values, v)
	return v
}

// treeMember reports whether v is an internal node of an addition tree when
// reached from a parent add: a degree-1 add consumed exactly once.
func (h *hoister) treeMember(v *Value) bool {
	return v.Op == OpAdd && v.Degree == 1 && h.uses[v] == 1
}

// planTrees finds every maximal addition tree and decides its folds.
func (h *hoister) planTrees() {
	h.roots = map[*Value]*treePlan{}
	h.claimed = map[*Value]bool{}
	for _, v := range h.p.Values {
		if v.Op != OpAdd || v.Degree != 1 {
			continue
		}
		// Roots: adds whose single consumer is not itself a tree-internal add.
		// (The output counts as a use but has no consumer value.)
		if h.uses[v] == 1 && len(h.consumers[v]) == 1 {
			c := h.consumers[v][0]
			if c.Op == OpAdd && c.Degree == 1 {
				continue
			}
		}
		plan := h.planTree(v)
		if plan != nil {
			h.roots[v] = plan
		}
	}
}

func (h *hoister) planTree(root *Value) *treePlan {
	plan := &treePlan{root: root, claimed: map[*Value]bool{}}
	internal := []*Value{}
	var walk func(v *Value)
	walk = func(v *Value) {
		for _, a := range v.Args {
			if h.treeMember(a) {
				internal = append(internal, a)
				walk(a)
			} else {
				plan.leaves = append(plan.leaves, a)
			}
		}
	}
	walk(root)
	if len(plan.leaves) < 3 {
		return nil // folds need at least two merged rotations to pay off
	}
	// A value appearing as more than one leaf carries multiplicity the fused
	// forms cannot express; exclude it from folding.
	mult := map[*Value]int{}
	for _, l := range plan.leaves {
		mult[l]++
	}

	macBySrc := map[*Value]*macGroup{}
	rotBySrc := map[*Value]*rotGroup{}
	var macOrder, rotOrder []*Value
	for _, leaf := range plan.leaves {
		if mult[leaf] > 1 {
			continue
		}
		switch {
		case leaf.Op == OpMulPlain && h.uses[leaf] == 1:
			src, k := leaf.Args[0], 0
			if src.Op == OpRotate {
				src, k = src.Args[0], leaf.Args[0].K
			}
			g := macBySrc[src]
			if g == nil {
				g = &macGroup{src: src}
				macBySrc[src] = g
				macOrder = append(macOrder, src)
			}
			g.ks = append(g.ks, k)
			g.plains = append(g.plains, leaf.Plain)
		case leaf.Op == OpRotate && h.uses[leaf] == 1:
			src := leaf.Args[0]
			g := rotBySrc[src]
			if g == nil {
				g = &rotGroup{src: src}
				rotBySrc[src] = g
				rotOrder = append(rotOrder, src)
			}
			g.ks = append(g.ks, leaf.K)
		}
	}
	// The identity term of a rotation sum: a leaf that IS the source of a
	// rotation group joins it as rotation 0.
	for _, leaf := range plan.leaves {
		if mult[leaf] > 1 {
			continue
		}
		if g, ok := rotBySrc[leaf]; ok && !g.identity {
			g.identity = true
			g.ks = append(g.ks, 0)
		}
	}

	claim := func(leaf *Value) {
		plan.claimed[leaf] = true
		// Claimed single-use leaves (and, for MulPlains over single-use
		// rotations, the rotation beneath) disappear from the program.
		if h.uses[leaf] == 1 {
			h.claimed[leaf] = true
			if leaf.Op == OpMulPlain && leaf.Args[0].Op == OpRotate && h.uses[leaf.Args[0]] == 1 {
				h.claimed[leaf.Args[0]] = true
			}
		}
	}
	for _, src := range macOrder {
		g := macBySrc[src]
		if len(g.ks) < 2 {
			continue
		}
		plan.macGroups = append(plan.macGroups, g)
		for _, leaf := range plan.leaves {
			if leaf.Op == OpMulPlain && h.uses[leaf] == 1 && mult[leaf] == 1 && macLeafSrc(leaf) == src {
				claim(leaf)
			}
		}
	}
	for _, src := range rotOrder {
		g := rotBySrc[src]
		if len(g.ks)-boolToInt(g.identity) < 2 {
			continue
		}
		sort.Ints(g.ks)
		plan.rotGroups = append(plan.rotGroups, g)
		for _, leaf := range plan.leaves {
			if mult[leaf] > 1 {
				continue
			}
			if leaf.Op == OpRotate && h.uses[leaf] == 1 && leaf.Args[0] == src {
				claim(leaf)
			}
			if g.identity && leaf == src {
				plan.claimed[leaf] = true // the source value itself stays live for the basket
			}
		}
	}
	if len(plan.macGroups) == 0 && len(plan.rotGroups) == 0 {
		return nil
	}
	// Internal adds of a restructured tree are replaced wholesale.
	for _, v := range internal {
		h.claimed[v] = true
	}
	return plan
}

func macLeafSrc(leaf *Value) *Value {
	if leaf.Args[0].Op == OpRotate {
		return leaf.Args[0].Args[0]
	}
	return leaf.Args[0]
}

// basketFor returns (emitting on demand) the RotBasket over the rewritten
// source covering the given rotations. Baskets are shared across folds: a
// multi-group BSGS transform pays one decomposition for all its giant steps.
func (h *hoister) basketFor(src *Value, ks []int) *Value {
	rotSet := h.basketRot[src]
	if rotSet == nil {
		rotSet = map[int]bool{}
		h.basketRot[src] = rotSet
	}
	for _, k := range ks {
		rotSet[k] = true
	}
	rots := make([]int, 0, len(rotSet))
	for k := range rotSet {
		rots = append(rots, k)
	}
	sort.Ints(rots)
	b := h.baskets[src]
	if b == nil {
		b = h.emit(&Value{Op: OpRotBasket, Args: []*Value{src}, Rots: rots,
			Level: src.Level, Pend: src.Pend, Degree: 1})
		h.baskets[src] = b
	} else {
		// Widen the existing basket in place; it is topologically before
		// every consumer either way.
		b.Rots = rots
	}
	return b
}

// emitTree materializes the restructured tree: fused folds plus the
// unclaimed leaves, combined left to right.
func (h *hoister) emitTree(plan *treePlan) *Value {
	var terms []*Value
	for _, g := range plan.macGroups {
		src := h.rep[g.src]
		basket := h.basketFor(src, g.ks)
		terms = append(terms, h.emit(&Value{Op: OpDiagMac, Args: []*Value{basket},
			Rots: append([]int(nil), g.ks...), Plains: append([]*Plain(nil), g.plains...),
			Level: src.Level, Pend: src.Pend + 1, Degree: 1}))
	}
	for _, g := range plan.rotGroups {
		src := h.rep[g.src]
		terms = append(terms, h.emit(&Value{Op: OpRotSum, Args: []*Value{src},
			Rots: append([]int(nil), g.ks...),
			Level: src.Level, Pend: src.Pend, Degree: 1}))
	}
	seen := map[*Value]bool{}
	for _, leaf := range plan.leaves {
		if plan.claimed[leaf] && !seen[leaf] {
			seen[leaf] = true
			continue
		}
		terms = append(terms, h.rep[leaf])
	}
	acc := terms[0]
	for _, t := range terms[1:] {
		acc = h.emit(&Value{Op: OpAdd, Args: []*Value{acc, t},
			Level: plan.root.Level, Pend: plan.root.Pend, Degree: 1})
	}
	return acc
}

// annotateSharedDecomp is tier A: surviving rotations grouped by source share
// one digit decomposition (the lowering uses RotateHoisted per group).
func annotateSharedDecomp(p *Program) {
	groups := map[*Value][]*Value{}
	for _, v := range p.Values {
		if v.Op == OpRotate {
			groups[v.Args[0]] = append(groups[v.Args[0]], v)
		}
	}
	id := 0
	for _, v := range p.Values {
		rots := groups[v]
		if len(rots) < 2 {
			continue
		}
		id++
		for _, r := range rots {
			r.Hoist = id
		}
	}
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}
