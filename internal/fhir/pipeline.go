package fhir

import "fmt"

// Options configure the pass pipeline. The zero value (plus a Levels budget)
// runs every optimization; the Disable knobs exist for ablation studies
// (cmd/hydra-compile reports per-pass deltas) and for debugging.
type Options struct {
	// Levels is the modulus-chain depth every input arrives at.
	Levels int
	// DisableCSE skips common-subexpression elimination.
	DisableCSE bool
	// DisableLazyRelin skips relinearization deferral.
	DisableLazyRelin bool
	// DisableHoist skips rotation hoisting (both tiers).
	DisableHoist bool
}

// Compile runs the optimizing pipeline:
//
//	CSE → Legalize(lazy) → LazyRelin → Hoist → DCE
//
// CSE runs first so Legalize sees each shared rotation once. Legalize runs
// before LazyRelin and Hoist because both passes match on facts (degrees,
// single-use relinearizations at aligned levels) that only exist after
// placement. Hoist runs last: LazyRelin shrinks addition trees of products
// first, and the trees Hoist restructures are what remains.
func Compile(p *Program, opts Options) (*Program, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if !opts.DisableCSE {
		p = CSE(p)
	}
	p, err := Legalize(p, LegalizeOptions{Levels: opts.Levels})
	if err != nil {
		return nil, err
	}
	if !opts.DisableLazyRelin {
		p = LazyRelin(p)
	}
	if !opts.DisableHoist {
		p = Hoist(p)
	}
	p = dce(p)
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("fhir: pipeline produced an invalid program: %w", err)
	}
	return p, nil
}

// CompileNaive runs only eager legalization — every rescale closed
// immediately, every relinearization in place, every rotation standalone.
// This is the baseline the differential tests and the compile benchmark
// compare against.
func CompileNaive(p *Program, levels int) (*Program, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return Legalize(p, LegalizeOptions{Levels: levels, Eager: true})
}
