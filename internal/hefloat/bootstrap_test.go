package hefloat

import (
	"math"
	"math/cmplx"
	"testing"

	"hydra/internal/ckks"
)

// bootParams builds a bootstrapping-capable parameter set: N = 512, a 50-bit
// base modulus, a deep 45-bit chain, and a sparse secret.
func bootEnv(t testing.TB) (*ckks.Parameters, *ckks.Encoder, *ckks.Encryptor, *ckks.Decryptor, *ckks.Evaluator, *Bootstrapper) {
	t.Helper()
	logQ := []int{50}
	for i := 0; i < 17; i++ {
		logQ = append(logQ, 45)
	}
	params, err := ckks.NewParameters(ckks.ParametersLiteral{
		LogN:  9,
		LogQ:  logQ,
		LogP:  55,
		Scale: 1 << 45,
	})
	if err != nil {
		t.Fatal(err)
	}
	kg := ckks.NewKeyGenerator(params, 1)
	sk := kg.GenSecretKeySparse(32)
	pk := kg.GenPublicKey(sk)
	rlk := kg.GenRelinearizationKey(sk)
	opts := BootstrapperOptions{K: 16}
	rtks := kg.GenRotationKeys(sk, BootstrapRotations(params, opts), true)
	enc := ckks.NewEncoder(params)
	eval := ckks.NewEvaluator(params, rlk, rtks)
	bt, err := NewBootstrapper(params, enc, eval, opts)
	if err != nil {
		t.Fatal(err)
	}
	return params, enc, ckks.NewEncryptor(params, pk, 2), ckks.NewDecryptor(params, sk), eval, bt
}

func TestBootstrapRefreshesLevelAndMessage(t *testing.T) {
	if testing.Short() {
		t.Skip("bootstrapping in short mode")
	}
	params, enc, encr, decr, _, bt := bootEnv(t)
	vals := make([]complex128, params.Slots())
	for i := range vals {
		vals[i] = complex(0.4*math.Sin(float64(i)), 0.3*math.Cos(float64(i)/2))
	}
	pt, err := enc.EncodeAtLevel(vals, params.DefaultScale(), 0)
	if err != nil {
		t.Fatal(err)
	}
	ct := encr.Encrypt(pt)
	if ct.Level() != 0 {
		t.Fatalf("input level %d", ct.Level())
	}
	out, err := bt.Bootstrap(ct)
	if err != nil {
		t.Fatal(err)
	}
	if out.Level() < 2 {
		t.Fatalf("bootstrap output level %d too low to be useful", out.Level())
	}
	got := enc.Decode(decr.Decrypt(out))
	maxErr := 0.0
	for i := range vals {
		if e := cmplx.Abs(got[i] - vals[i]); e > maxErr {
			maxErr = e
		}
	}
	if maxErr > 0.02 {
		t.Fatalf("bootstrap error %g too large (slot0 got %v want %v)", maxErr, got[0], vals[0])
	}
	t.Logf("bootstrap: level 0 -> %d, max error %.2e", out.Level(), maxErr)
}

func TestBootstrapThenCompute(t *testing.T) {
	if testing.Short() {
		t.Skip("bootstrapping in short mode")
	}
	params, enc, encr, decr, eval, bt := bootEnv(t)
	vals := make([]complex128, params.Slots())
	for i := range vals {
		vals[i] = complex(0.3*math.Cos(float64(i)), 0)
	}
	pt, err := enc.EncodeAtLevel(vals, params.DefaultScale(), 0)
	if err != nil {
		t.Fatal(err)
	}
	ct := encr.Encrypt(pt)
	out, err := bt.Bootstrap(ct)
	if err != nil {
		t.Fatal(err)
	}
	// The refreshed ciphertext supports further multiplication — the whole
	// point of bootstrapping.
	sq := eval.Rescale(eval.MulRelin(out, out))
	got := enc.Decode(decr.Decrypt(sq))
	maxErr := 0.0
	for i := range vals {
		want := vals[i] * vals[i]
		if e := cmplx.Abs(got[i] - want); e > maxErr {
			maxErr = e
		}
	}
	if maxErr > 0.03 {
		t.Fatalf("post-bootstrap square error %g", maxErr)
	}
}

func TestBootstrapRejectsBadInput(t *testing.T) {
	if testing.Short() {
		t.Skip("bootstrapping in short mode")
	}
	params, enc, encr, _, _, bt := bootEnv(t)
	pt, _ := enc.Encode(make([]complex128, params.Slots()))
	ct := encr.Encrypt(pt) // top level, not level 0
	if _, err := bt.Bootstrap(ct); err == nil {
		t.Fatal("expected error for non-level-0 input")
	}
}

func TestInvertEmbeddingRecoversCoefficients(t *testing.T) {
	params := ckks.TestParameters(6, 2)
	enc := ckks.NewEncoder(params)
	a, b, err := probeEmbedding(params, enc)
	if err != nil {
		t.Fatal(err)
	}
	p, q, r, s, err := invertEmbedding(a, b)
	if err != nil {
		t.Fatal(err)
	}
	n := params.Slots()
	// Pick arbitrary real coefficient halves, map through A,B, and verify
	// the inverse blocks recover them.
	c0 := make([]complex128, n)
	c1 := make([]complex128, n)
	for i := 0; i < n; i++ {
		c0[i] = complex(math.Sin(float64(i)), 0)
		c1[i] = complex(math.Cos(float64(i)*1.3), 0)
	}
	z := make([]complex128, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			z[i] += a[i][j]*c0[j] + b[i][j]*c1[j]
		}
	}
	for i := 0; i < n; i++ {
		var rec0, rec1 complex128
		for j := 0; j < n; j++ {
			rec0 += p[i][j]*z[j] + q[i][j]*cmplx.Conj(z[j])
			rec1 += r[i][j]*z[j] + s[i][j]*cmplx.Conj(z[j])
		}
		if cmplx.Abs(rec0-c0[i]) > 1e-6 || cmplx.Abs(rec1-c1[i]) > 1e-6 {
			t.Fatalf("coefficient recovery failed at %d: %v vs %v, %v vs %v", i, rec0, c0[i], rec1, c1[i])
		}
	}
}

func TestRaiseModulusSemantics(t *testing.T) {
	params := ckks.TestParameters(8, 4)
	kg := ckks.NewKeyGenerator(params, 3)
	sk := kg.GenSecretKeySparse(16)
	pk := kg.GenPublicKey(sk)
	enc := ckks.NewEncoder(params)
	encr := ckks.NewEncryptor(params, pk, 4)
	decr := ckks.NewDecryptor(params, sk)
	eval := ckks.NewEvaluator(params, nil, nil)

	vals := make([]complex128, params.Slots())
	for i := range vals {
		vals[i] = complex(0.25, 0)
	}
	pt, _ := enc.EncodeAtLevel(vals, params.DefaultScale(), 0)
	ct := encr.Encrypt(pt)
	raised := eval.RaiseModulus(ct)
	if raised.Level() != params.MaxLevel() {
		t.Fatalf("raised level %d, want %d", raised.Level(), params.MaxLevel())
	}
	// Decrypting the raised ciphertext and reducing centered mod q0 must
	// recover the message: the raise only adds q0·I(X).
	got := enc.Decode(decr.Decrypt(ct))
	for i := range vals {
		if cmplx.Abs(got[i]-vals[i]) > 1e-5 {
			t.Fatalf("baseline decode broken at %d", i)
		}
	}
}

func TestEvalSineAccuracy(t *testing.T) {
	if testing.Short() {
		t.Skip("bootstrapping in short mode")
	}
	params, enc, encr, decr, _, bt := bootEnv(t)
	// Slot values mimic the post-C2S distribution: integers plus a small
	// fractional message part.
	vals := make([]complex128, params.Slots())
	for i := range vals {
		vals[i] = complex(float64(i%7-3)+0.01*float64(i%5), 0)
	}
	pt, err := enc.EncodeAtLevel(vals, params.DefaultScale(), params.MaxLevel()-1)
	if err != nil {
		t.Fatal(err)
	}
	ct := encr.Encrypt(pt)
	s, err := bt.evalSine(ct)
	if err != nil {
		t.Fatal(err)
	}
	got := enc.Decode(decr.Decrypt(s))
	for i := range vals {
		want := complex(math.Sin(2*math.Pi*real(vals[i])), 0)
		if cmplx.Abs(got[i]-want) > 5e-3 {
			t.Fatalf("sine error at %d: got %v want %v", i, got[i], want)
		}
	}
}
