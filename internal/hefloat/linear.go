// Package hefloat provides homomorphic linear algebra and polynomial
// evaluation on top of the ckks package: plaintext-matrix × ciphertext-vector
// products in diagonal form (naive and Baby-Step Giant-Step), and polynomial
// evaluation in Horner and power-tree form.
//
// These are the client-side counterparts of the computations Hydra schedules
// across cards (FC layers, the DFT matrices inside bootstrapping, and the
// Chebyshev/Taylor polynomials of non-linear layers), and they validate the
// FHE-operation counts the performance model charges for those procedures.
package hefloat

import (
	"fmt"
	"sort"

	"hydra/internal/ckks"
	"hydra/internal/ring"
)

// runConcurrent executes independent ciphertext-level tasks on the shared
// limb-pool (see internal/ring), returning the first error. Results are
// written to caller-owned slots, so completion order never affects output.
func runConcurrent(fns ...func() error) error {
	errs := make([]error, len(fns))
	tasks := make([]func(), len(fns))
	for i, fn := range fns {
		i, fn := i, fn
		tasks[i] = func() { errs[i] = fn() }
	}
	ring.RunTasks(tasks...)
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// LinearTransform is a plaintext square matrix held in diagonal form:
// Diags[d][j] = M[j][(j+d) mod dim]. Only non-zero diagonals are stored.
type LinearTransform struct {
	Dim   int
	Diags map[int][]complex128
}

// NewLinearTransform converts a dense dim×dim matrix to diagonal form,
// dropping all-zero diagonals.
func NewLinearTransform(m [][]complex128) (*LinearTransform, error) {
	dim := len(m)
	if dim == 0 {
		return nil, fmt.Errorf("hefloat: empty matrix")
	}
	for _, row := range m {
		if len(row) != dim {
			return nil, fmt.Errorf("hefloat: matrix is not square")
		}
	}
	lt := &LinearTransform{Dim: dim, Diags: map[int][]complex128{}}
	for d := 0; d < dim; d++ {
		diag := make([]complex128, dim)
		nonZero := false
		for j := 0; j < dim; j++ {
			diag[j] = m[j][(j+d)%dim]
			if diag[j] != 0 {
				nonZero = true
			}
		}
		if nonZero {
			lt.Diags[d] = diag
		}
	}
	return lt, nil
}

// Rotations returns the rotation indices needed by the naive evaluation.
func (lt *LinearTransform) Rotations() []int {
	rots := make([]int, 0, len(lt.Diags))
	for d := range lt.Diags {
		if d != 0 {
			rots = append(rots, d)
		}
	}
	return rots
}

// RotationsBSGS returns the rotation indices needed by EvaluateBSGS with the
// given baby-step count.
func (lt *LinearTransform) RotationsBSGS(bs int) []int {
	set := map[int]bool{}
	for d := range lt.Diags {
		j := d % bs
		g := d - j
		if j != 0 {
			set[j] = true
		}
		if g != 0 {
			set[g] = true
		}
	}
	rots := make([]int, 0, len(set))
	for r := range set {
		rots = append(rots, r)
	}
	return rots
}

// Evaluate applies the transform naively: one rotation and one plaintext
// multiplication per non-zero diagonal (the upper path of Fig. 3(d) in the
// paper). The vector occupies the first Dim slots, repeated so rotations
// wrap correctly (Dim must divide the slot count and the caller must have
// replicated the vector; for Dim == slots no replication is needed).
func (lt *LinearTransform) Evaluate(eval *ckks.Evaluator, enc *ckks.Encoder, ct *ckks.Ciphertext) (*ckks.Ciphertext, error) {
	// Diagonals are independent rotate-multiply units (one parallel unit
	// each in the paper's Table I recipe); run them concurrently and fold
	// in sorted order for bit-determinism.
	ds := make([]int, 0, len(lt.Diags))
	for d := range lt.Diags {
		ds = append(ds, d)
	}
	sort.Ints(ds)
	terms := make([]*ckks.Ciphertext, len(ds))
	fns := make([]func() error, len(ds))
	for di, d := range ds {
		di, d := di, d
		fns[di] = func() error {
			rotated := eval.Rotate(ct, d)
			pt, err := enc.EncodeAtLevel(lt.Diags[d], eval.Params().DefaultScale(), rotated.Level())
			if err != nil {
				return err
			}
			terms[di] = eval.MulPlain(rotated, pt)
			return nil
		}
	}
	if err := runConcurrent(fns...); err != nil {
		return nil, err
	}
	var acc *ckks.Ciphertext
	for _, term := range terms {
		if acc == nil {
			acc = term // freshly built above; safe to mutate as the accumulator
		} else {
			eval.AddAcc(term, acc)
		}
	}
	if acc == nil {
		return nil, fmt.Errorf("hefloat: transform has no non-zero diagonals")
	}
	return eval.Rescale(acc), nil
}

// EvaluateBSGS applies the transform with the Baby-Step Giant-Step algorithm:
// bs baby rotations of the input are shared across all giant steps, reducing
// rotations from |Diags| to roughly bs + |Diags|/bs (Section III-B of the
// paper; giant-step results are rotated once after accumulation).
func (lt *LinearTransform) EvaluateBSGS(eval *ckks.Evaluator, enc *ckks.Encoder, ct *ckks.Ciphertext, bs int) (*ckks.Ciphertext, error) {
	if bs <= 0 {
		return nil, fmt.Errorf("hefloat: baby-step count must be positive, got %d", bs)
	}
	// Group diagonals by giant step g = d - d%bs.
	groups := map[int][]int{}
	for d := range lt.Diags {
		g := d - d%bs
		groups[g] = append(groups[g], d)
	}
	// Baby steps: all needed rotations of the input, computed with a single
	// hoisted decomposition (the digit decomposition is shared across the
	// rotations, the optimization BSGS exists to exploit).
	needed := map[int]bool{}
	for d := range lt.Diags {
		needed[d%bs] = true
	}
	var rotList []int
	for j := range needed {
		rotList = append(rotList, j)
	}
	baby := eval.RotateHoisted(ct, rotList)
	babyOf := func(j int) *ckks.Ciphertext { return baby[j] }

	// Giant steps are independent: evaluate them concurrently on the shared
	// pool and fold the per-group results in sorted order, so parallel and
	// serial execution produce bit-identical ciphertexts.
	gs := make([]int, 0, len(groups))
	for g := range groups {
		gs = append(gs, g)
	}
	sort.Ints(gs)
	inners := make([]*ckks.Ciphertext, len(gs))
	fns := make([]func() error, len(gs))
	for gi, g := range gs {
		gi, g := gi, g
		fns[gi] = func() error {
			ds := append([]int(nil), groups[g]...)
			sort.Ints(ds)
			// inner = Σ_j diag_{g+j} rotated by -g, times baby_j.
			var inner *ckks.Ciphertext
			for _, d := range ds {
				j := d - g
				diag := lt.Diags[d]
				// Pre-rotate the diagonal right by g so the single giant-step
				// rotation at the end lands it correctly.
				shifted := make([]complex128, lt.Dim)
				for t := 0; t < lt.Dim; t++ {
					shifted[t] = diag[(t+lt.Dim-g%lt.Dim)%lt.Dim]
				}
				pt, err := enc.EncodeAtLevel(shifted, eval.Params().DefaultScale(), ct.Level())
				if err != nil {
					return err
				}
				// First diagonal creates the accumulator; the rest fold in
				// through the fused multiply-accumulate kernel, one pass per
				// term instead of a multiply pass plus an add pass.
				if inner == nil {
					inner = eval.MulPlain(babyOf(j), pt)
				} else {
					eval.MulPlainAcc(babyOf(j), pt, inner)
				}
			}
			if g != 0 {
				inner = eval.Rotate(inner, g)
			}
			inners[gi] = inner
			return nil
		}
	}
	if err := runConcurrent(fns...); err != nil {
		return nil, err
	}
	var acc *ckks.Ciphertext
	for _, inner := range inners {
		if acc == nil {
			acc = inner // fresh per-group result; safe to mutate in place
		} else {
			eval.AddAcc(inner, acc)
		}
	}
	if acc == nil {
		return nil, fmt.Errorf("hefloat: transform has no non-zero diagonals")
	}
	return eval.Rescale(acc), nil
}
