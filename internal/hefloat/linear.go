// Package hefloat provides homomorphic linear algebra and polynomial
// evaluation on top of the ckks package: plaintext-matrix × ciphertext-vector
// products in diagonal form (naive and Baby-Step Giant-Step), and polynomial
// evaluation in Horner and power-tree form.
//
// These are the client-side counterparts of the computations Hydra schedules
// across cards (FC layers, the DFT matrices inside bootstrapping, and the
// Chebyshev/Taylor polynomials of non-linear layers), and they validate the
// FHE-operation counts the performance model charges for those procedures.
package hefloat

import (
	"fmt"
	"sort"
	"sync"

	"hydra/internal/ckks"
	"hydra/internal/ring"
)

// runConcurrent executes independent ciphertext-level tasks on the shared
// limb-pool (see internal/ring), returning the first error. Results are
// written to caller-owned slots, so completion order never affects output.
func runConcurrent(fns ...func() error) error {
	errs := make([]error, len(fns))
	tasks := make([]func(), len(fns))
	for i, fn := range fns {
		i, fn := i, fn
		tasks[i] = func() { errs[i] = fn() }
	}
	ring.RunTasks(tasks...)
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// LinearTransform is a plaintext square matrix held in diagonal form:
// Diags[d][j] = M[j][(j+d) mod dim]. Only non-zero diagonals are stored.
//
// The zero value of the embedded cache is ready to use: compiled plans
// (pre-shifted, pre-encoded diagonal plaintexts keyed by baby-step count,
// level and scale) are built on first use and reused across evaluations,
// including concurrent ones.
type LinearTransform struct {
	Dim   int
	Diags map[int][]complex128

	mu    sync.Mutex
	plans map[planKey]*TransformPlan
	naive map[planKey]*naivePlan
}

// planKey identifies one compiled evaluation of a transform. The parameter
// set participates so a transform shared between contexts cannot alias plans
// with incompatible moduli.
type planKey struct {
	params *ckks.Parameters
	bs     int // 0 for the naive (non-BSGS) plan
	level  int
	scale  float64
}

// NewLinearTransform converts a dense dim×dim matrix to diagonal form,
// dropping all-zero diagonals.
func NewLinearTransform(m [][]complex128) (*LinearTransform, error) {
	dim := len(m)
	if dim == 0 {
		return nil, fmt.Errorf("hefloat: empty matrix")
	}
	for _, row := range m {
		if len(row) != dim {
			return nil, fmt.Errorf("hefloat: matrix is not square")
		}
	}
	lt := &LinearTransform{Dim: dim, Diags: map[int][]complex128{}}
	for d := 0; d < dim; d++ {
		diag := make([]complex128, dim)
		nonZero := false
		for j := 0; j < dim; j++ {
			diag[j] = m[j][(j+d)%dim]
			if diag[j] != 0 {
				nonZero = true
			}
		}
		if nonZero {
			lt.Diags[d] = diag
		}
	}
	return lt, nil
}

// Rotations returns the rotation indices needed by the naive evaluation,
// sorted for reproducible key generation.
func (lt *LinearTransform) Rotations() []int {
	rots := make([]int, 0, len(lt.Diags))
	for d := range lt.Diags {
		if d != 0 {
			rots = append(rots, d)
		}
	}
	sort.Ints(rots)
	return rots
}

// RotationsBSGS returns the rotation indices needed by EvaluateBSGS with the
// given baby-step count, sorted for reproducible key generation.
func (lt *LinearTransform) RotationsBSGS(bs int) []int {
	set := map[int]bool{}
	for d := range lt.Diags {
		j := d % bs
		g := d - j
		if j != 0 {
			set[j] = true
		}
		if g != 0 {
			set[g] = true
		}
	}
	rots := make([]int, 0, len(set))
	for r := range set {
		rots = append(rots, r)
	}
	sort.Ints(rots)
	return rots
}

// ShiftedDiag returns diagonal d pre-rotated right by g so the single
// giant-step rotation at the end of BSGS lands it correctly. Exported for
// engines that re-derive the BSGS grouping outside this package (the
// conformance harness's cluster lowering encodes the same pre-shifted
// diagonals as per-card plaintext operands).
func (lt *LinearTransform) ShiftedDiag(d, g int) []complex128 {
	diag := lt.Diags[d]
	if g == 0 {
		return diag
	}
	shifted := make([]complex128, lt.Dim)
	for t := 0; t < lt.Dim; t++ {
		shifted[t] = diag[(t+lt.Dim-g%lt.Dim)%lt.Dim]
	}
	return shifted
}

// naivePlan caches the per-diagonal plaintexts of the naive Evaluate path at
// one (level, scale), sorted by diagonal index.
type naivePlan struct {
	ds  []int
	pts []*ckks.Plaintext
}

func (lt *LinearTransform) naiveFor(enc *ckks.Encoder, level int, scale float64) (*naivePlan, error) {
	key := planKey{params: enc.Params(), bs: 0, level: level, scale: scale}
	lt.mu.Lock()
	defer lt.mu.Unlock()
	if p, ok := lt.naive[key]; ok {
		return p, nil
	}
	ds := make([]int, 0, len(lt.Diags))
	for d := range lt.Diags {
		ds = append(ds, d)
	}
	sort.Ints(ds)
	p := &naivePlan{ds: ds, pts: make([]*ckks.Plaintext, len(ds))}
	for di, d := range ds {
		pt, err := enc.EncodeAtLevel(lt.Diags[d], scale, level)
		if err != nil {
			return nil, err
		}
		p.pts[di] = pt
	}
	if lt.naive == nil {
		lt.naive = map[planKey]*naivePlan{}
	}
	lt.naive[key] = p
	return p, nil
}

// Evaluate applies the transform naively: one rotation and one plaintext
// multiplication per non-zero diagonal (the upper path of Fig. 3(d) in the
// paper). The vector occupies the first Dim slots, repeated so rotations
// wrap correctly (Dim must divide the slot count and the caller must have
// replicated the vector; for Dim == slots no replication is needed). The
// diagonal plaintexts are encoded once per (level, scale) and cached.
func (lt *LinearTransform) Evaluate(eval *ckks.Evaluator, enc *ckks.Encoder, ct *ckks.Ciphertext) (*ckks.Ciphertext, error) {
	if len(lt.Diags) == 0 {
		return nil, fmt.Errorf("hefloat: transform has no non-zero diagonals")
	}
	plan, err := lt.naiveFor(enc, ct.Level(), eval.Params().DefaultScale())
	if err != nil {
		return nil, err
	}
	// Diagonals are independent rotate-multiply units (one parallel unit
	// each in the paper's Table I recipe); run them concurrently and fold
	// in sorted order for bit-determinism.
	terms := make([]*ckks.Ciphertext, len(plan.ds))
	fns := make([]func() error, len(plan.ds))
	for di, d := range plan.ds {
		di, d := di, d
		fns[di] = func() error {
			terms[di] = eval.MulPlain(eval.Rotate(ct, d), plan.pts[di])
			return nil
		}
	}
	if err := runConcurrent(fns...); err != nil {
		return nil, err
	}
	acc := terms[0] // freshly built above; safe to mutate as the accumulator
	for _, term := range terms[1:] {
		eval.AddAcc(term, acc)
	}
	return eval.Rescale(acc), nil
}

// TransformPlan is a compiled BSGS evaluation of a LinearTransform: every
// diagonal pre-shifted by its giant step and pre-encoded into an
// extended-basis NTT-domain plaintext at a fixed (level, scale), plus the
// deduplicated, sorted baby-step rotation list. Plans are immutable after
// Compile and safe to Apply concurrently; steady-state evaluation through a
// plan encodes nothing.
type TransformPlan struct {
	BS    int
	Level int
	Scale float64

	params *ckks.Parameters
	rots   []int // sorted baby-step rotations (includes 0 when diagonal d ≡ 0 mod BS exists)
	groups []planGroup
}

// planGroup is one giant step: the baby indices j and matching pre-shifted
// plaintexts whose inner product is rotated by g.
type planGroup struct {
	g   int
	js  []int
	pts []*ckks.ExtPlaintext
}

// Compile pre-shifts and pre-encodes every diagonal for a BSGS evaluation
// with bs baby steps at the given level and scale. The encodes run
// concurrently on the shared limb pool.
func (lt *LinearTransform) Compile(enc *ckks.Encoder, bs, level int, scale float64) (*TransformPlan, error) {
	if bs <= 0 {
		return nil, fmt.Errorf("hefloat: baby-step count must be positive, got %d", bs)
	}
	if len(lt.Diags) == 0 {
		return nil, fmt.Errorf("hefloat: transform has no non-zero diagonals")
	}
	byGiant := map[int][]int{}
	rotSet := map[int]bool{}
	for d := range lt.Diags {
		g := d - d%bs
		byGiant[g] = append(byGiant[g], d)
		rotSet[d%bs] = true
	}
	gs := make([]int, 0, len(byGiant))
	for g := range byGiant {
		gs = append(gs, g)
	}
	sort.Ints(gs)

	p := &TransformPlan{BS: bs, Level: level, Scale: scale, params: enc.Params()}
	p.rots = make([]int, 0, len(rotSet))
	for j := range rotSet {
		p.rots = append(p.rots, j)
	}
	sort.Ints(p.rots)

	p.groups = make([]planGroup, len(gs))
	var fns []func() error
	for gi, g := range gs {
		ds := append([]int(nil), byGiant[g]...)
		sort.Ints(ds)
		grp := planGroup{g: g, js: make([]int, len(ds)), pts: make([]*ckks.ExtPlaintext, len(ds))}
		for ti, d := range ds {
			grp.js[ti] = d - g
			gi, ti, d, g := gi, ti, d, g
			fns = append(fns, func() (err error) {
				p.groups[gi].pts[ti], err = enc.EncodeExtAtLevel(lt.ShiftedDiag(d, g), scale, level)
				return err
			})
		}
		p.groups[gi] = grp
	}
	if err := runConcurrent(fns...); err != nil {
		return nil, err
	}
	return p, nil
}

// planFor returns the cached plan for (bs, level, scale), compiling it on
// first use. Concurrent callers serialize on the compile and then share the
// immutable result.
func (lt *LinearTransform) planFor(enc *ckks.Encoder, bs, level int, scale float64) (*TransformPlan, error) {
	key := planKey{params: enc.Params(), bs: bs, level: level, scale: scale}
	lt.mu.Lock()
	defer lt.mu.Unlock()
	if p, ok := lt.plans[key]; ok {
		return p, nil
	}
	p, err := lt.Compile(enc, bs, level, scale)
	if err != nil {
		return nil, err
	}
	if lt.plans == nil {
		lt.plans = map[planKey]*TransformPlan{}
	}
	lt.plans[key] = p
	return p, nil
}

// Apply evaluates the compiled plan on ct with double-hoisted keyswitching:
// the baby rotations share one digit decomposition and stay in the extended
// P·Q basis, each giant step folds its inner product there and pays a single
// ModDown (plus one rotation whose output is folded back into the extended
// basis), and one final ModDown closes the evaluation — instead of a ModDown
// pair per rotation on the reference path. ct may sit at or below the plan's
// compile level.
func (p *TransformPlan) Apply(eval *ckks.Evaluator, ct *ckks.Ciphertext) (*ckks.Ciphertext, error) {
	if eval.Params() != p.params {
		return nil, fmt.Errorf("hefloat: plan compiled for a different parameter set")
	}
	if ct.Level() > p.Level {
		return nil, fmt.Errorf("hefloat: plan compiled at level %d cannot evaluate a level-%d ciphertext", p.Level, ct.Level())
	}
	// Baby steps: one hoisted decomposition, all results left in the
	// extended basis with their ModDown deferred.
	baby := eval.RotateHoistedExt(ct, p.rots)

	// Giant steps are independent: evaluate them concurrently on the shared
	// pool and fold the per-group results in sorted order, so parallel and
	// serial execution produce bit-identical ciphertexts.
	exts := make([]*ckks.ExtCiphertext, len(p.groups))
	fns := make([]func() error, len(p.groups))
	for gi := range p.groups {
		gi, grp := gi, &p.groups[gi]
		fns[gi] = func() error {
			acc := eval.NewExtAccumulator(ct.Level(), ct.Scale*p.Scale)
			// One batched fold per giant step: every diagonal of the group
			// streams through each accumulator row while it stays hot,
			// instead of one full accumulator walk per diagonal.
			xs := make([]*ckks.ExtCiphertext, len(grp.js))
			for ti, j := range grp.js {
				xs[ti] = baby[j]
			}
			eval.MulPlainExtAccBatch(xs, grp.pts, acc)
			if grp.g != 0 {
				// The group's only ModDown; the giant rotation re-enters the
				// extended basis so the final fold stays deferred.
				acc = eval.RotateExt(eval.ModDownExt(acc), grp.g)
			}
			exts[gi] = acc
			return nil
		}
	}
	if err := runConcurrent(fns...); err != nil {
		return nil, err
	}
	for _, rot := range p.rots {
		eval.ReleaseExt(baby[rot])
	}
	acc := exts[0]
	for _, e := range exts[1:] {
		eval.AddExtAcc(e, acc)
		eval.ReleaseExt(e)
	}
	return eval.Rescale(eval.ModDownExt(acc)), nil
}

// EvaluateBSGS applies the transform with the Baby-Step Giant-Step algorithm:
// bs baby rotations of the input are shared across all giant steps, reducing
// rotations from |Diags| to roughly bs + |Diags|/bs (Section III-B of the
// paper). The evaluation is compiled on first use — diagonals pre-shifted and
// pre-encoded, keyed by (bs, level, scale) — and runs double-hoisted through
// the cached plan; see TransformPlan.Apply. EvaluateBSGSReference keeps the
// per-rotation path for differential testing.
func (lt *LinearTransform) EvaluateBSGS(eval *ckks.Evaluator, enc *ckks.Encoder, ct *ckks.Ciphertext, bs int) (*ckks.Ciphertext, error) {
	plan, err := lt.planFor(enc, bs, ct.Level(), eval.Params().DefaultScale())
	if err != nil {
		return nil, err
	}
	return plan.Apply(eval, ct)
}

// EvaluateBSGSReference is the single-hoisted BSGS evaluation: every giant
// step pays a full keyswitch (accumulate + ModDown) for its rotation and the
// diagonals are re-encoded per call. It is the reference implementation the
// differential tests pin the plan-cached double-hoisted path against.
func (lt *LinearTransform) EvaluateBSGSReference(eval *ckks.Evaluator, enc *ckks.Encoder, ct *ckks.Ciphertext, bs int) (*ckks.Ciphertext, error) {
	if bs <= 0 {
		return nil, fmt.Errorf("hefloat: baby-step count must be positive, got %d", bs)
	}
	// Group diagonals by giant step g = d - d%bs.
	groups := map[int][]int{}
	for d := range lt.Diags {
		g := d - d%bs
		groups[g] = append(groups[g], d)
	}
	// Baby steps: all needed rotations of the input, computed with a single
	// hoisted decomposition (the digit decomposition is shared across the
	// rotations, the optimization BSGS exists to exploit). The rotation list
	// is sorted so scratch reuse and benchmarks are reproducible run-to-run.
	needed := map[int]bool{}
	for d := range lt.Diags {
		needed[d%bs] = true
	}
	rotList := make([]int, 0, len(needed))
	for j := range needed {
		rotList = append(rotList, j)
	}
	sort.Ints(rotList)
	baby := eval.RotateHoisted(ct, rotList)

	// Giant steps are independent: evaluate them concurrently on the shared
	// pool and fold the per-group results in sorted order, so parallel and
	// serial execution produce bit-identical ciphertexts.
	gs := make([]int, 0, len(groups))
	for g := range groups {
		gs = append(gs, g)
	}
	sort.Ints(gs)
	inners := make([]*ckks.Ciphertext, len(gs))
	fns := make([]func() error, len(gs))
	for gi, g := range gs {
		gi, g := gi, g
		fns[gi] = func() error {
			ds := append([]int(nil), groups[g]...)
			sort.Ints(ds)
			// inner = Σ_j diag_{g+j} rotated by -g, times baby_j.
			var inner *ckks.Ciphertext
			for _, d := range ds {
				pt, err := enc.EncodeAtLevel(lt.ShiftedDiag(d, g), eval.Params().DefaultScale(), ct.Level())
				if err != nil {
					return err
				}
				// First diagonal creates the accumulator; the rest fold in
				// through the fused multiply-accumulate kernel, one pass per
				// term instead of a multiply pass plus an add pass.
				if inner == nil {
					inner = eval.MulPlain(baby[d-g], pt)
				} else {
					eval.MulPlainAcc(baby[d-g], pt, inner)
				}
			}
			if g != 0 {
				inner = eval.Rotate(inner, g)
			}
			inners[gi] = inner
			return nil
		}
	}
	if err := runConcurrent(fns...); err != nil {
		return nil, err
	}
	var acc *ckks.Ciphertext
	for _, inner := range inners {
		if acc == nil {
			acc = inner // fresh per-group result; safe to mutate in place
		} else {
			eval.AddAcc(inner, acc)
		}
	}
	if acc == nil {
		return nil, fmt.Errorf("hefloat: transform has no non-zero diagonals")
	}
	return eval.Rescale(acc), nil
}
