package hefloat

import (
	"testing"

	"hydra/internal/ckks"
)

func benchEnv(b *testing.B, logN, levels int, rots []int) *testEnv {
	b.Helper()
	return newEnv(b, logN, levels, rots)
}

func BenchmarkLinearTransformNaive(b *testing.B) {
	env := benchEnv(b, 9, 3, allRotations(1<<8))
	lt, _ := NewLinearTransform(seqMatrix(env.params.Slots()))
	pt, _ := env.enc.Encode(make([]complex128, env.params.Slots()))
	ct := env.encr.Encrypt(pt)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lt.Evaluate(env.eval, env.enc, ct); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLinearTransformBSGS(b *testing.B) {
	env := benchEnv(b, 9, 3, allRotations(1<<8))
	lt, _ := NewLinearTransform(seqMatrix(env.params.Slots()))
	pt, _ := env.enc.Encode(make([]complex128, env.params.Slots()))
	ct := env.encr.Encrypt(pt)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lt.EvaluateBSGS(env.eval, env.enc, ct, 16); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPCMM(b *testing.B) {
	env := benchEnv(b, 5, 3, PCMMRotations(4))
	k := matK(env)
	x := seqRealMatrix(k, 0.1)
	w := seqRealMatrix(k, 0.9)
	pt, _ := PackMatrix(env.enc, x, env.params.MaxLevel(), env.params.DefaultScale())
	ct := env.encr.Encrypt(pt)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := PCMM(env.eval, env.enc, ct, w); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCCMM(b *testing.B) {
	k := 4
	env := benchEnv(b, 5, 6, CCMMRotations(k))
	x := seqRealMatrix(k, 0.1)
	z := seqRealMatrix(k, 0.9)
	ptX, _ := PackMatrix(env.enc, x, env.params.MaxLevel(), env.params.DefaultScale())
	ptZ, _ := PackMatrix(env.enc, z, env.params.MaxLevel(), env.params.DefaultScale())
	ctX := env.encr.Encrypt(ptX)
	ctZ := env.encr.Encrypt(ptZ)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := CCMM(env.eval, env.enc, ctX, ctZ); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPolynomialTree(b *testing.B) {
	env := benchEnv(b, 10, 7, nil)
	pt, _ := env.enc.Encode(make([]complex128, env.params.Slots()))
	ct := env.encr.Encrypt(pt)
	coeffs := make([]float64, 60)
	for i := range coeffs {
		coeffs[i] = 1.0 / float64(i+1)
	}
	poly := Polynomial{Coeffs: coeffs}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := EvaluateTree(env.eval, ct, poly); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBootstrap(b *testing.B) {
	var bt *Bootstrapper
	var params *ckks.Parameters
	var enc *ckks.Encoder
	var encr *ckks.Encryptor
	params, enc, encr, _, _, bt = bootEnv(b)
	pt, _ := enc.EncodeAtLevel(make([]complex128, params.Slots()), params.DefaultScale(), 0)
	ct := encr.Encrypt(pt)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bt.Bootstrap(ct); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLinearTransformBSGSReference is the single-hoisted per-rotation
// ModDown path EvaluateBSGS replaced; keeping it benchmarked pins the
// ablation the double-hoisting EXPERIMENTS.md tables quote.
func BenchmarkLinearTransformBSGSReference(b *testing.B) {
	env := benchEnv(b, 9, 3, allRotations(1<<8))
	lt, _ := NewLinearTransform(seqMatrix(env.params.Slots()))
	pt, _ := env.enc.Encode(make([]complex128, env.params.Slots()))
	ct := env.encr.Encrypt(pt)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lt.EvaluateBSGSReference(env.eval, env.enc, ct, 16); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPCMMCompiled measures the weights-resident steady state: the
// transform is built and its plan compiled once, so each iteration is pure
// evaluation — the recurring cost of the paper's PCMM recipe.
func BenchmarkPCMMCompiled(b *testing.B) {
	env := benchEnv(b, 5, 3, PCMMRotations(4))
	k := matK(env)
	x := seqRealMatrix(k, 0.1)
	w := seqRealMatrix(k, 0.9)
	pt, _ := PackMatrix(env.enc, x, env.params.MaxLevel(), env.params.DefaultScale())
	ct := env.encr.Encrypt(pt)
	lt, err := NewPCMMTransform(w, env.params.Slots())
	if err != nil {
		b.Fatal(err)
	}
	if _, err := lt.EvaluateBSGS(env.eval, env.enc, ct, env.params.Slots()); err != nil {
		b.Fatal(err) // warm compile: the plan cache is populated before timing
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lt.EvaluateBSGS(env.eval, env.enc, ct, env.params.Slots()); err != nil {
			b.Fatal(err)
		}
	}
}
