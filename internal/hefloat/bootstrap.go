package hefloat

import (
	"fmt"
	"math"
	"math/cmplx"
	"sort"

	"hydra/internal/ckks"
	"hydra/internal/ring"
)

// Bootstrapper implements functional CKKS bootstrapping — the procedure
// whose multi-card mapping Section III-B of the paper designs. A level-0
// ciphertext is refreshed to a high level through the paper's Fig. 3(b)
// pipeline:
//
//	ModRaise:    re-express the ciphertext at the top modulus; it now
//	             decrypts to m + q0·I(X) for a small integer polynomial I.
//	CoeffToSlot: move the coefficients of m + q0·I into the slots with two
//	             homomorphic linear transforms (the DFT of Fig. 3(c)),
//	             scaled by 1/q0 so slots hold u = m/q0 + I.
//	EvaExp+DAF:  evaluate sin(2πu)/(2π) ≈ u − I = m/q0 with a small-angle
//	             Taylor polynomial followed by double-angle iterations.
//	SlotToCoeff: move the cleaned values back to coefficients, folding the
//	             q0/(2π) correction into the transform.
//
// The embedding matrices are obtained by probing this library's own encoder
// and inverting the resulting linear system, so the construction is
// self-validating rather than hand-derived.
type Bootstrapper struct {
	params *ckks.Parameters
	enc    *ckks.Encoder
	eval   *ckks.Evaluator

	ltP, ltQ, ltR, ltS *LinearTransform // CoeffToSlot (×Δ/q0)
	ltA, ltB           *LinearTransform // SlotToCoeff (×q0/(2πΔ))
	bs                 int              // BSGS baby steps for the transforms

	K         int // bound on |I| coefficients
	DAFIters  int
	TaylorDeg int

	referenceBSGS bool // route the DFT transforms through EvaluateBSGSReference
}

// BootstrapperOptions tune the bootstrapper.
type BootstrapperOptions struct {
	K         int // bound on the ModRaise overflow (default 16; needs a sparse secret)
	TaylorDeg int // degree of the small-angle sine polynomial (default 7)
	BabySteps int // BSGS baby steps for the DFT transforms (default ~sqrt(slots))
	// ReferenceBSGS evaluates the six DFT transforms through the
	// single-hoisted EvaluateBSGSReference path instead of the plan-cached
	// double-hoisted one, and skips plan precompilation. Differential-testing
	// hook: the conformance harness's reference engine bootstraps through it.
	ReferenceBSGS bool
}

// BootstrapRotations returns the rotation indices the bootstrapper's
// transforms need (generate keys for these plus conjugation).
func BootstrapRotations(params *ckks.Parameters, opts BootstrapperOptions) []int {
	bs := opts.babySteps(params.Slots())
	set := map[int]bool{}
	for j := 1; j < bs; j++ {
		set[j] = true
	}
	for g := bs; g < params.Slots(); g += bs {
		set[g] = true
	}
	rots := make([]int, 0, len(set))
	for r := range set {
		rots = append(rots, r)
	}
	sort.Ints(rots)
	return rots
}

func (o BootstrapperOptions) babySteps(slots int) int {
	if o.BabySteps > 0 {
		return o.BabySteps
	}
	bs := 1
	for bs*bs < slots {
		bs <<= 1
	}
	return bs
}

// NewBootstrapper probes the encoder, inverts the embedding system and
// prepares the four CoeffToSlot and two SlotToCoeff transforms.
func NewBootstrapper(params *ckks.Parameters, enc *ckks.Encoder, eval *ckks.Evaluator, opts BootstrapperOptions) (*Bootstrapper, error) {
	if params.Slots()*2 != params.N() {
		return nil, fmt.Errorf("hefloat: bootstrapping requires full slot packing")
	}
	if opts.K == 0 {
		opts.K = 16
	}
	if opts.TaylorDeg == 0 {
		opts.TaylorDeg = 7
	}
	bt := &Bootstrapper{
		params: params, enc: enc, eval: eval,
		K: opts.K, TaylorDeg: opts.TaylorDeg,
		bs:            opts.babySteps(params.Slots()),
		referenceBSGS: opts.ReferenceBSGS,
	}
	// Double-angle iterations: bring 2π(K+1) under a comfortable small angle.
	target := 0.5
	r := 0
	for 2*math.Pi*float64(opts.K+1)/math.Pow(2, float64(r)) > target {
		r++
	}
	bt.DAFIters = r

	a, b, err := probeEmbedding(params, enc)
	if err != nil {
		return nil, err
	}
	p, q, rr, s, err := invertEmbedding(a, b)
	if err != nil {
		return nil, err
	}
	q0 := float64(params.Q()[0])
	delta := params.DefaultScale()
	fIn := delta / q0
	fOut := q0 / (2 * math.Pi * delta)
	scaleMat := func(m [][]complex128, f complex128) [][]complex128 {
		out := make([][]complex128, len(m))
		for i := range m {
			out[i] = make([]complex128, len(m[i]))
			for j := range m[i] {
				out[i][j] = m[i][j] * f
			}
		}
		return out
	}
	mk := func(m [][]complex128) (*LinearTransform, error) { return NewLinearTransform(m) }
	if bt.ltP, err = mk(scaleMat(p, complex(fIn, 0))); err != nil {
		return nil, err
	}
	if bt.ltQ, err = mk(scaleMat(q, complex(fIn, 0))); err != nil {
		return nil, err
	}
	if bt.ltR, err = mk(scaleMat(rr, complex(fIn, 0))); err != nil {
		return nil, err
	}
	if bt.ltS, err = mk(scaleMat(s, complex(fIn, 0))); err != nil {
		return nil, err
	}
	if bt.ltA, err = mk(scaleMat(a, complex(fOut, 0))); err != nil {
		return nil, err
	}
	if bt.ltB, err = mk(scaleMat(b, complex(fOut, 0))); err != nil {
		return nil, err
	}
	// Precompile the four CoeffToSlot plans at the ModRaise level so even the
	// first Bootstrap call encodes nothing for C2S. The SlotToCoeff plans
	// compile on first use (their input level depends on the sine-evaluation
	// depth) and are cached thereafter, so steady-state Bootstrap calls
	// encode no diagonal at all. The reference path encodes per call by
	// design, so it has nothing to precompile.
	if bt.referenceBSGS {
		return bt, nil
	}
	top := len(params.Q()) - 1
	compile := func(lt *LinearTransform) func() error {
		return func() (err error) {
			_, err = lt.planFor(enc, bt.bs, top, delta)
			return err
		}
	}
	if err := runConcurrent(compile(bt.ltP), compile(bt.ltQ), compile(bt.ltR), compile(bt.ltS)); err != nil {
		return nil, err
	}
	return bt, nil
}

// applyDFT routes one of the six bootstrap transforms through the configured
// BSGS path (plan-cached double-hoisted by default, single-hoisted reference
// when the bootstrapper was built with ReferenceBSGS).
func (bt *Bootstrapper) applyDFT(lt *LinearTransform, ct *ckks.Ciphertext) (*ckks.Ciphertext, error) {
	if bt.referenceBSGS {
		return lt.EvaluateBSGSReference(bt.eval, bt.enc, ct, bt.bs)
	}
	return lt.EvaluateBSGS(bt.eval, bt.enc, ct, bt.bs)
}

// CoeffToSlotTransforms exposes the four CoeffToSlot transforms (with the
// Δ/q0 factor folded in), in the pairing Bootstrap uses: u0 = P·z + Q·conj(z),
// u1 = R·z + S·conj(z). Exported so external engines (the conformance
// harness's cluster lowering) can re-emit the same pipeline.
func (bt *Bootstrapper) CoeffToSlotTransforms() (p, q, r, s *LinearTransform) {
	return bt.ltP, bt.ltQ, bt.ltR, bt.ltS
}

// SlotToCoeffTransforms exposes the two SlotToCoeff transforms (with the
// q0/(2πΔ) factor folded in): out = A·w0 + B·w1.
func (bt *Bootstrapper) SlotToCoeffTransforms() (a, b *LinearTransform) {
	return bt.ltA, bt.ltB
}

// BabySteps reports the BSGS baby-step count the six transforms run with.
func (bt *Bootstrapper) BabySteps() int { return bt.bs }

// SineSchedule reports the sine-evaluation schedule: the Taylor degree of the
// small-angle pair and the number of double-angle iterations. The pre-scale
// angle is θ = 2π/2^dafIters.
func (bt *Bootstrapper) SineSchedule() (taylorDeg, dafIters int) {
	return bt.TaylorDeg, bt.DAFIters
}

// probeEmbedding recovers the matrices A, B with slots = A·(c0/Δ) + B·(c1/Δ)
// for coefficient halves c0, c1, by decoding unit-coefficient polynomials.
func probeEmbedding(params *ckks.Parameters, enc *ckks.Encoder) (a, b [][]complex128, err error) {
	n := params.Slots()
	nn := params.N()
	r := params.RingQP()
	delta := params.DefaultScale()
	a = make([][]complex128, n)
	b = make([][]complex128, n)
	for i := range a {
		a[i] = make([]complex128, n)
		b[i] = make([]complex128, n)
	}
	for j := 0; j < nn; j++ {
		poly := r.NewPoly(0)
		for i := range poly.Coeffs {
			poly.Coeffs[i][j] = ring.Reduce(uint64(delta), r.Moduli[i])
		}
		r.NTT(poly)
		col := enc.Decode(&ckks.Plaintext{Value: poly, Scale: delta})
		for i := 0; i < n; i++ {
			if j < n {
				a[i][j] = col[i]
			} else {
				b[i][j-n] = col[i]
			}
		}
	}
	return a, b, nil
}

// invertEmbedding solves [c0; c1] = [[P,Q],[R,S]]·[z; conj(z)] given
// z = A·c0 + B·c1, by inverting the stacked 2n×2n complex system.
func invertEmbedding(a, b [][]complex128) (p, q, r, s [][]complex128, err error) {
	n := len(a)
	m := 2 * n
	// M = [[A, B], [conj(A), conj(B)]], augmented with the identity.
	aug := make([][]complex128, m)
	for i := 0; i < m; i++ {
		aug[i] = make([]complex128, 2*m)
		for j := 0; j < n; j++ {
			if i < n {
				aug[i][j] = a[i][j]
				aug[i][j+n] = b[i][j]
			} else {
				aug[i][j] = cmplx.Conj(a[i-n][j])
				aug[i][j+n] = cmplx.Conj(b[i-n][j])
			}
		}
		aug[i][m+i] = 1
	}
	// Gaussian elimination with partial pivoting.
	for col := 0; col < m; col++ {
		piv := col
		for row := col + 1; row < m; row++ {
			if cmplx.Abs(aug[row][col]) > cmplx.Abs(aug[piv][col]) {
				piv = row
			}
		}
		if cmplx.Abs(aug[piv][col]) < 1e-12 {
			return nil, nil, nil, nil, fmt.Errorf("hefloat: embedding system is singular at column %d", col)
		}
		aug[col], aug[piv] = aug[piv], aug[col]
		inv := 1 / aug[col][col]
		for j := col; j < 2*m; j++ {
			aug[col][j] *= inv
		}
		for row := 0; row < m; row++ {
			if row == col || aug[row][col] == 0 {
				continue
			}
			f := aug[row][col]
			for j := col; j < 2*m; j++ {
				aug[row][j] -= f * aug[col][j]
			}
		}
	}
	block := func(r0, c0 int) [][]complex128 {
		out := make([][]complex128, n)
		for i := range out {
			out[i] = make([]complex128, n)
			for j := range out[i] {
				out[i][j] = aug[r0+i][m+c0+j]
			}
		}
		return out
	}
	return block(0, 0), block(0, n), block(n, 0), block(n, n), nil
}

// Bootstrap refreshes a level-0 ciphertext to a high level.
func (bt *Bootstrapper) Bootstrap(ct *ckks.Ciphertext) (*ckks.Ciphertext, error) {
	if ct.Level() != 0 {
		return nil, fmt.Errorf("hefloat: bootstrap expects a level-0 ciphertext, got level %d", ct.Level())
	}
	eval := bt.eval

	// ModRaise.
	raised := eval.RaiseModulus(ct)

	// CoeffToSlot: u0 holds the first coefficient half over q0, u1 the second.
	// The four transforms (and later the two sine branches and the two
	// SlotToCoeff transforms) are independent, mirroring the multi-card C2S
	// mapping of Section III-B: they run concurrently on the shared pool.
	conj := eval.Conjugate(raised)
	var pz, qz, rz, sz *ckks.Ciphertext
	err := runConcurrent(
		func() (err error) { pz, err = bt.applyDFT(bt.ltP, raised); return },
		func() (err error) { qz, err = bt.applyDFT(bt.ltQ, conj); return },
		func() (err error) { rz, err = bt.applyDFT(bt.ltR, raised); return },
		func() (err error) { sz, err = bt.applyDFT(bt.ltS, conj); return },
	)
	if err != nil {
		return nil, err
	}
	u0 := eval.Add(pz, qz)
	u1 := eval.Add(rz, sz)

	// EvaExp + double-angle: w ≈ sin(2π u).
	var w0, w1 *ckks.Ciphertext
	err = runConcurrent(
		func() (err error) { w0, err = bt.evalSine(u0); return },
		func() (err error) { w1, err = bt.evalSine(u1); return },
	)
	if err != nil {
		return nil, err
	}

	// SlotToCoeff with the q0/(2π) correction folded in.
	var z0, z1 *ckks.Ciphertext
	err = runConcurrent(
		func() (err error) { z0, err = bt.applyDFT(bt.ltA, w0); return },
		func() (err error) { z1, err = bt.applyDFT(bt.ltB, w1); return },
	)
	if err != nil {
		return nil, err
	}
	out := addAligned(eval, z0, z1)
	// Report the canonical scale: the pipeline's folded constants are exact,
	// so the tracked scale is correct by construction.
	return out, nil
}

// evalSine evaluates sin(2πx) via a small-angle Taylor pair and DAFIters
// double-angle iterations.
func (bt *Bootstrapper) evalSine(u *ckks.Ciphertext) (*ckks.Ciphertext, error) {
	theta := 2 * math.Pi / math.Pow(2, float64(bt.DAFIters))
	deg := bt.TaylorDeg
	// Pre-scale the argument (y = θ·u) so the Taylor coefficients are O(1)
	// and survive fixed-point encoding.
	y := bt.eval.Rescale(bt.eval.MulByConst(u, theta))
	sinCoeffs := make([]float64, deg+1) // odd series up to y^deg
	cosCoeffs := make([]float64, deg+2) // even series up to y^(deg+1)
	fact := 1.0
	for i := 0; i <= deg+1; i++ {
		if i > 0 {
			fact *= float64(i)
		}
		term := 1 / fact
		sign := 1.0
		if i%4 >= 2 {
			sign = -1
		}
		if i%2 == 1 {
			if i <= deg {
				sinCoeffs[i] = sign * term
			}
		} else if i <= deg+1 {
			cosCoeffs[i] = sign * term
		}
	}
	s, err := EvaluateTree(bt.eval, y, Polynomial{Coeffs: sinCoeffs})
	if err != nil {
		return nil, err
	}
	c, err := EvaluateTree(bt.eval, y, Polynomial{Coeffs: cosCoeffs})
	if err != nil {
		return nil, err
	}
	for i := 0; i < bt.DAFIters; i++ {
		sc := bt.eval.Rescale(bt.eval.MulRelin(s, c))
		ss := bt.eval.Rescale(bt.eval.MulRelin(s, s))
		s = bt.eval.Add(sc, sc) // sin(2x) = 2 sin x cos x
		negss2 := bt.eval.Neg(bt.eval.Add(ss, ss))
		c = bt.eval.AddConst(negss2, 1) // cos(2x) = 1 - 2 sin²x
	}
	return s, nil
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
