package hefloat

import (
	"math"
	"math/cmplx"
	"testing"

	"hydra/internal/ckks"
)

type testEnv struct {
	params *ckks.Parameters
	enc    *ckks.Encoder
	encr   *ckks.Encryptor
	decr   *ckks.Decryptor
	eval   *ckks.Evaluator
}

func newEnv(t testing.TB, logN, levels int, rotations []int) *testEnv {
	t.Helper()
	params := ckks.TestParameters(logN, levels)
	kg := ckks.NewKeyGenerator(params, 1)
	sk := kg.GenSecretKey()
	pk := kg.GenPublicKey(sk)
	rlk := kg.GenRelinearizationKey(sk)
	rtks := kg.GenRotationKeys(sk, rotations, false)
	return &testEnv{
		params: params,
		enc:    ckks.NewEncoder(params),
		encr:   ckks.NewEncryptor(params, pk, 2),
		decr:   ckks.NewDecryptor(params, sk),
		eval:   ckks.NewEvaluator(params, rlk, rtks),
	}
}

func seqMatrix(dim int) [][]complex128 {
	m := make([][]complex128, dim)
	for i := range m {
		m[i] = make([]complex128, dim)
		for j := range m[i] {
			m[i][j] = complex(float64((i*dim+j)%7)-3, 0)
		}
	}
	return m
}

func applyPlain(m [][]complex128, v []complex128) []complex128 {
	out := make([]complex128, len(m))
	for i := range m {
		for j := range m[i] {
			out[i] += m[i][j] * v[j]
		}
	}
	return out
}

func maxAbsErr(got, want []complex128) float64 {
	m := 0.0
	for i := range want {
		if e := cmplx.Abs(got[i] - want[i]); e > m {
			m = e
		}
	}
	return m
}

func allRotations(dim int) []int {
	rots := make([]int, 0, dim)
	for d := 1; d < dim; d++ {
		rots = append(rots, d)
	}
	return rots
}

func TestLinearTransformValidation(t *testing.T) {
	if _, err := NewLinearTransform(nil); err == nil {
		t.Fatal("expected error for empty matrix")
	}
	if _, err := NewLinearTransform([][]complex128{{1, 2}, {3}}); err == nil {
		t.Fatal("expected error for ragged matrix")
	}
}

func TestLinearTransformDiagonals(t *testing.T) {
	m := [][]complex128{{1, 2}, {3, 4}}
	lt, err := NewLinearTransform(m)
	if err != nil {
		t.Fatal(err)
	}
	if lt.Diags[0][0] != 1 || lt.Diags[0][1] != 4 {
		t.Fatalf("main diagonal wrong: %v", lt.Diags[0])
	}
	if lt.Diags[1][0] != 2 || lt.Diags[1][1] != 3 {
		t.Fatalf("off diagonal wrong: %v", lt.Diags[1])
	}
}

func TestLinearTransformNaive(t *testing.T) {
	env := newEnv(t, 9, 3, allRotations(1<<8))
	dim := env.params.Slots()
	m := seqMatrix(dim)
	lt, err := NewLinearTransform(m)
	if err != nil {
		t.Fatal(err)
	}
	v := make([]complex128, dim)
	for i := range v {
		v[i] = complex(math.Sin(float64(i)), 0)
	}
	pt, _ := env.enc.Encode(v)
	ct := env.encr.Encrypt(pt)
	res, err := lt.Evaluate(env.eval, env.enc, ct)
	if err != nil {
		t.Fatal(err)
	}
	got := env.enc.Decode(env.decr.Decrypt(res))
	want := applyPlain(m, v)
	if e := maxAbsErr(got, want); e > 1e-2 {
		t.Fatalf("naive transform error %g", e)
	}
}

func TestLinearTransformBSGSMatchesNaive(t *testing.T) {
	env := newEnv(t, 9, 3, allRotations(1<<8))
	dim := env.params.Slots()
	m := seqMatrix(dim)
	lt, err := NewLinearTransform(m)
	if err != nil {
		t.Fatal(err)
	}
	v := make([]complex128, dim)
	for i := range v {
		v[i] = complex(math.Cos(float64(i)/3), 0)
	}
	pt, _ := env.enc.Encode(v)
	ct := env.encr.Encrypt(pt)
	want := applyPlain(m, v)
	for _, bs := range []int{4, 16} {
		res, err := lt.EvaluateBSGS(env.eval, env.enc, ct, bs)
		if err != nil {
			t.Fatal(err)
		}
		got := env.enc.Decode(env.decr.Decrypt(res))
		if e := maxAbsErr(got, want); e > 1e-2 {
			t.Fatalf("bs=%d: BSGS error %g", bs, e)
		}
	}
}

func TestBSGSRotationCount(t *testing.T) {
	// BSGS should need ~bs+gs rotations instead of dim-1.
	dim := 64
	m := seqMatrix(dim)
	lt, err := NewLinearTransform(m)
	if err != nil {
		t.Fatal(err)
	}
	naive := len(lt.Rotations())
	bsgs := len(lt.RotationsBSGS(8))
	if naive != dim-1 {
		t.Fatalf("naive rotations = %d, want %d", naive, dim-1)
	}
	if bsgs >= naive || bsgs > 8+dim/8 {
		t.Fatalf("BSGS rotations = %d, not an improvement over %d", bsgs, naive)
	}
}

func TestEvaluateBSGSRejectsBadBS(t *testing.T) {
	env := newEnv(t, 6, 2, nil)
	lt, _ := NewLinearTransform(seqMatrix(env.params.Slots()))
	pt, _ := env.enc.Encode(make([]complex128, env.params.Slots()))
	ct := env.encr.Encrypt(pt)
	if _, err := lt.EvaluateBSGS(env.eval, env.enc, ct, 0); err == nil {
		t.Fatal("expected error for bs=0")
	}
}

func testPolyOn(t *testing.T, p Polynomial, levels int, tol float64, tree bool) {
	t.Helper()
	env := newEnv(t, 10, levels, nil)
	slots := env.params.Slots()
	vals := make([]complex128, slots)
	for i := range vals {
		vals[i] = complex(float64(i%17)/17.0-0.5, 0)
	}
	pt, _ := env.enc.Encode(vals)
	ct := env.encr.Encrypt(pt)
	var res *ckks.Ciphertext
	var err error
	if tree {
		res, err = EvaluateTree(env.eval, ct, p)
	} else {
		res, err = EvaluateHorner(env.eval, ct, p)
	}
	if err != nil {
		t.Fatal(err)
	}
	got := env.enc.Decode(env.decr.Decrypt(res))
	want := make([]complex128, slots)
	for i := range vals {
		want[i] = complex(p.EvalFloat(real(vals[i])), 0)
	}
	if e := maxAbsErr(got, want); e > tol {
		t.Fatalf("poly deg %d error %g > %g", p.Degree(), e, tol)
	}
}

func TestEvaluateHornerDeg3(t *testing.T) {
	testPolyOn(t, Polynomial{Coeffs: []float64{0.5, -1, 0.25, 2}}, 5, 1e-2, false)
}

func TestEvaluateTreeDeg3(t *testing.T) {
	testPolyOn(t, Polynomial{Coeffs: []float64{0.5, -1, 0.25, 2}}, 5, 1e-2, true)
}

func TestEvaluateTreeDeg7(t *testing.T) {
	testPolyOn(t, Polynomial{Coeffs: []float64{0.1, 0.2, -0.3, 0.4, -0.5, 0.6, -0.7, 0.8}}, 6, 1e-2, true)
}

func TestEvaluateTreeSparse(t *testing.T) {
	// Polynomial with zero sub-blocks exercises the nil-branch handling.
	testPolyOn(t, Polynomial{Coeffs: []float64{0, 0, 0, 0, 0, 0, 0, 1.5}}, 6, 1e-2, true)
	testPolyOn(t, Polynomial{Coeffs: []float64{0.7, 0, 0, 0, 0, 0, 0, 0, 1}}, 7, 1e-2, true)
}

func TestEvaluateTreeMatchesHorner(t *testing.T) {
	p := Polynomial{Coeffs: []float64{0.3, -0.6, 0.2, 0.1, -0.4}}
	env := newEnv(t, 10, 7, nil)
	slots := env.params.Slots()
	vals := make([]complex128, slots)
	for i := range vals {
		vals[i] = complex(float64(i%11)/11.0-0.5, 0)
	}
	pt, _ := env.enc.Encode(vals)
	ct := env.encr.Encrypt(pt)
	a, err := EvaluateHorner(env.eval, ct, p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := EvaluateTree(env.eval, ct, p)
	if err != nil {
		t.Fatal(err)
	}
	ga := env.enc.Decode(env.decr.Decrypt(a))
	gb := env.enc.Decode(env.decr.Decrypt(b))
	if e := maxAbsErr(ga, gb); e > 1e-2 {
		t.Fatalf("tree and Horner disagree by %g", e)
	}
}

func TestPolyDepth(t *testing.T) {
	cases := []struct {
		deg, depth int
	}{{1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4}, {59, 6}}
	for _, c := range cases {
		p := Polynomial{Coeffs: make([]float64, c.deg+1)}
		if got := p.Depth(); got != c.depth {
			t.Fatalf("deg %d: depth = %d, want %d", c.deg, got, c.depth)
		}
	}
}

func TestEvaluateErrors(t *testing.T) {
	env := newEnv(t, 8, 2, nil)
	pt, _ := env.enc.Encode(make([]complex128, env.params.Slots()))
	ct := env.encr.Encrypt(pt)
	if _, err := EvaluateHorner(env.eval, ct, Polynomial{Coeffs: []float64{1}}); err == nil {
		t.Fatal("expected degree error")
	}
	deep := Polynomial{Coeffs: make([]float64, 20)}
	deep.Coeffs[19] = 1
	if _, err := EvaluateHorner(env.eval, ct, deep); err == nil {
		t.Fatal("expected level error")
	}
	if _, err := EvaluateTree(env.eval, ct, Polynomial{Coeffs: []float64{1}}); err == nil {
		t.Fatal("expected degree error (tree)")
	}
	deepTree := Polynomial{Coeffs: make([]float64, 1<<8)}
	deepTree.Coeffs[(1<<8)-1] = 1
	if _, err := EvaluateTree(env.eval, ct, deepTree); err == nil {
		t.Fatal("expected level error (tree)")
	}
}
