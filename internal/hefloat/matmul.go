package hefloat

import (
	"fmt"
	"sync"

	"hydra/internal/ckks"
)

// Encrypted matrix multiplication in the style the paper's LLM benchmarks
// use (Section III-A, following the non-interactive transformer inference
// construction): a k×k matrix is packed column-major into the slots of one
// ciphertext (column c occupies slots [c·k, (c+1)·k)), and
//
//   - PCMM (plaintext-ciphertext matrix multiplication) costs one rotation
//     and one plaintext multiplication per column diagonal — the Table I
//     recipe of 1 Rotation + 1 PMult per parallel unit;
//   - CCMM (ciphertext-ciphertext) additionally extracts and replicates the
//     scalar diagonals of the encrypted right operand, costing ~log2(k)
//     rotations, two plaintext masks and one ciphertext multiplication per
//     diagonal — matching Table I's rotation-heavy CCMM recipe.

// PackMatrix encodes a k×k real matrix column-major into a plaintext; k²
// must equal the slot count so column rotations wrap cyclically.
func PackMatrix(enc *ckks.Encoder, m [][]float64, level int, scale float64) (*ckks.Plaintext, error) {
	k := len(m)
	slots := enc.Params().Slots()
	if k*k != slots {
		return nil, fmt.Errorf("hefloat: matrix size %d² must equal slot count %d", k, slots)
	}
	vals := make([]complex128, slots)
	for c := 0; c < k; c++ {
		for r := 0; r < k; r++ {
			vals[c*k+r] = complex(m[r][c], 0)
		}
	}
	return enc.EncodeAtLevel(vals, scale, level)
}

// UnpackMatrix decodes a column-major packed k×k matrix.
func UnpackMatrix(enc *ckks.Encoder, pt *ckks.Plaintext, k int) [][]float64 {
	vals := enc.Decode(pt)
	m := make([][]float64, k)
	for r := range m {
		m[r] = make([]float64, k)
	}
	for c := 0; c < k; c++ {
		for r := 0; r < k; r++ {
			m[r][c] = real(vals[c*k+r])
		}
	}
	return m
}

// PCMMRotations returns the rotation indices PCMM needs for k×k matrices.
func PCMMRotations(k int) []int {
	rots := make([]int, 0, k-1)
	for d := 1; d < k; d++ {
		rots = append(rots, d*k)
	}
	return rots
}

// NewPCMMTransform builds the linear transform of Y = X·W over the
// column-major packing: diagonal d·k carries the mask replicating
// W[(c+d) mod k][c] down column c. Hold the result across calls so repeated
// products against the same W reuse its compiled plan (the weights-resident
// pattern of the paper's PCMM recipe).
func NewPCMMTransform(w [][]float64, slots int) (*LinearTransform, error) {
	k := len(w)
	if k*k != slots {
		return nil, fmt.Errorf("hefloat: matrix size %d² must equal slot count %d", k, slots)
	}
	lt := &LinearTransform{Dim: slots, Diags: map[int][]complex128{}}
	for d := 0; d < k; d++ {
		mask := make([]complex128, slots)
		nonZero := false
		for c := 0; c < k; c++ {
			wv := complex(w[(c+d)%k][c], 0)
			for r := 0; r < k; r++ {
				mask[c*k+r] = wv
			}
			if wv != 0 {
				nonZero = true
			}
		}
		if nonZero {
			lt.Diags[d*k] = mask
		}
	}
	return lt, nil
}

// PCMM computes Y = X·W for an encrypted column-packed X and a plaintext W:
// column c of the product is Σ_d W[(c+d) mod k][c] · X[:,(c+d) mod k], so
// each diagonal d contributes one column rotation of X (by d·k slots) and
// one multiplication with the plaintext mask carrying the matching W
// entries. All column rotations are baby steps of one double-hoisted BSGS
// evaluation (one digit decomposition and one deferred ModDown pair for the
// whole product); callers reusing a weight matrix should hold a
// NewPCMMTransform and EvaluateBSGS it directly to also reuse the compiled
// plan.
func PCMM(eval *ckks.Evaluator, enc *ckks.Encoder, ctX *ckks.Ciphertext, w [][]float64) (*ckks.Ciphertext, error) {
	slots := eval.Params().Slots()
	lt, err := NewPCMMTransform(w, slots)
	if err != nil {
		return nil, err
	}
	if len(lt.Diags) == 0 {
		// All-zero weights: the product is the zero ciphertext at the same
		// scale budget as the general path.
		pt, err := enc.EncodeAtLevel(nil, eval.Params().DefaultScale(), ctX.Level())
		if err != nil {
			return nil, err
		}
		return eval.Rescale(eval.MulPlain(ctX, pt)), nil
	}
	return lt.EvaluateBSGS(eval, enc, ctX, slots)
}

// CCMMRotations returns the rotation indices CCMM needs for k×k matrices:
// the σ/τ pre-transforms may touch any diagonal, and the per-iteration
// shifts (d·k, d and d-k mod k²) all fall in the same range.
func CCMMRotations(k int) []int {
	rots := make([]int, 0, k*k-1)
	for d := 1; d < k*k; d++ {
		rots = append(rots, d)
	}
	return rots
}

// CCMMSigma builds the σ pre-transform of the E2DM-style matrix product:
// σ(A)[r][c] = A[r][(r+c) mod k], as a dense permutation over the
// column-major packing. Exported so reference implementations and lowerings
// outside this package (the conformance harness) evaluate the identical
// permutation.
func CCMMSigma(k int) [][]complex128 {
	n := k * k
	m := make([][]complex128, n)
	for i := range m {
		m[i] = make([]complex128, n)
	}
	for c := 0; c < k; c++ {
		for r := 0; r < k; r++ {
			out := c*k + r
			in := ((r+c)%k)*k + r
			m[out][in] = 1
		}
	}
	return m
}

// CCMMTau builds the τ pre-transform: τ(B)[r][c] = B[(r+c) mod k][c].
func CCMMTau(k int) [][]complex128 {
	n := k * k
	m := make([][]complex128, n)
	for i := range m {
		m[i] = make([]complex128, n)
	}
	for c := 0; c < k; c++ {
		for r := 0; r < k; r++ {
			out := c*k + r
			in := c*k + (r+c)%k
			m[out][in] = 1
		}
	}
	return m
}

// CCMMMasks returns the ψ_d selection mask vectors of CCMM iteration d over
// the column-major k×k packing: main selects the rows r < k-d that come from
// rotation d, wrap the wrap-around rows from rotation d-k. For d == 0 main is
// the all-ones mask and wrap is nil. Exported alongside CCMMSigma/CCMMTau so
// external engines can replay the identical iteration structure.
func CCMMMasks(k, d int) (main, wrap []complex128) {
	slots := k * k
	main = make([]complex128, slots)
	if d == 0 {
		for i := range main {
			main[i] = 1
		}
		return main, nil
	}
	wrap = make([]complex128, slots)
	for c := 0; c < k; c++ {
		for r := 0; r < k; r++ {
			if r < k-d {
				main[c*k+r] = 1
			} else {
				wrap[c*k+r] = 1
			}
		}
	}
	return main, wrap
}

// ccmmLTs caches the σ/τ pre-transforms per matrix dimension: they are pure
// permutation matrices independent of the parameter set, and each carries
// its own per-parameter compiled plans, so repeated CCMM calls encode
// nothing for the pre-transforms.
var ccmmLTs sync.Map // k -> *ccmmPair

type ccmmPair struct {
	once       sync.Once
	sigma, tau *LinearTransform
	err        error
}

func ccmmTransforms(k int) (sigma, tau *LinearTransform, err error) {
	v, _ := ccmmLTs.LoadOrStore(k, &ccmmPair{})
	pair := v.(*ccmmPair)
	pair.once.Do(func() {
		pair.sigma, pair.err = NewLinearTransform(CCMMSigma(k))
		if pair.err == nil {
			pair.tau, pair.err = NewLinearTransform(CCMMTau(k))
		}
	})
	return pair.sigma, pair.tau, pair.err
}

// ccmmMaskKey identifies the ψ_d selection masks for one iteration of one
// CCMM shape at one (level, scale).
type ccmmMaskKey struct {
	params *ckks.Parameters
	k, d   int
	level  int
	scale  float64
}

var ccmmMasks sync.Map // ccmmMaskKey -> [2]*ckks.Plaintext (main, wrap; d == 0 holds the all-ones mask in main)

func ccmmMaskPts(enc *ckks.Encoder, k, d, level int, scale float64) (ptMain, ptWrap *ckks.Plaintext, err error) {
	key := ccmmMaskKey{params: enc.Params(), k: k, d: d, level: level, scale: scale}
	if v, ok := ccmmMasks.Load(key); ok {
		pts := v.([2]*ckks.Plaintext)
		return pts[0], pts[1], nil
	}
	maskMain, maskWrap := CCMMMasks(k, d)
	if ptMain, err = enc.EncodeAtLevel(maskMain, scale, level); err != nil {
		return nil, nil, err
	}
	if maskWrap != nil {
		if ptWrap, err = enc.EncodeAtLevel(maskWrap, scale, level); err != nil {
			return nil, nil, err
		}
	}
	ccmmMasks.Store(key, [2]*ckks.Plaintext{ptMain, ptWrap})
	return ptMain, ptWrap, nil
}

// CCMM computes Y = X·Z for two encrypted column-packed k×k matrices with
// the E2DM-style algorithm the paper's CCMM recipe reflects: two one-time
// diagonal pre-transforms σ(X) and τ(Z), then k iterations, each combining a
// clean column rotation of σ(X) with a masked in-column row shift of τ(Z)
// and one ciphertext-ciphertext multiplication:
//
//	Y = Σ_d φ_d(σ(X)) ⊙ ψ_d(τ(Z)),
//	φ_d: column shift by d (one rotation), ψ_d: row shift by d (two masked
//	rotations), so each unit is rotation-heavy with a single CMult, matching
//	Table I's CCMM row.
//
// The pre-transforms run as double-hoisted all-baby BSGS evaluations through
// cached plans, the per-iteration selection masks are encoded once and
// cached, and the φ_d/ψ_d rotations are hoisted onto one digit decomposition
// per operand.
func CCMM(eval *ckks.Evaluator, enc *ckks.Encoder, ctX, ctZ *ckks.Ciphertext) (*ckks.Ciphertext, error) {
	slots := eval.Params().Slots()
	k := 1
	for k*k < slots {
		k++
	}
	if k*k != slots {
		return nil, fmt.Errorf("hefloat: slot count %d is not a perfect square", slots)
	}
	scale := eval.Params().DefaultScale()

	sigma, tau, err := ccmmTransforms(k)
	if err != nil {
		return nil, err
	}
	var a, b *ckks.Ciphertext
	err = runConcurrent(
		func() (err error) { a, err = sigma.EvaluateBSGS(eval, enc, ctX, slots); return },
		func() (err error) { b, err = tau.EvaluateBSGS(eval, enc, ctZ, slots); return },
	)
	if err != nil {
		return nil, err
	}

	// One hoisted decomposition per operand covers every iteration's
	// rotations: the column shifts of a and both row-shift pieces of b.
	aRots := make([]int, 0, k-1)
	bRots := make([]int, 0, 2*(k-1))
	for d := 1; d < k; d++ {
		aRots = append(aRots, d*k)
		bRots = append(bRots, d, d-k)
	}
	arot := eval.RotateHoisted(a, aRots)
	brot := eval.RotateHoisted(b, bRots)

	var acc *ckks.Ciphertext
	for d := 0; d < k; d++ {
		// φ_d: shift the columns of a left by d (clean slot rotation).
		ad := a
		if d != 0 {
			ad = arot[d*k]
		}
		// ψ_d: shift the rows of b up by d within each column: slots with
		// row index r < k-d come from rotation d, the wrap-around rows from
		// rotation d-k; two masks select the pieces.
		ptMain, ptWrap, err := ccmmMaskPts(enc, k, d, b.Level(), scale)
		if err != nil {
			return nil, err
		}
		var bd *ckks.Ciphertext
		if d == 0 {
			bd = eval.Rescale(eval.MulPlain(b, ptMain))
		} else {
			main := eval.MulPlain(brot[d], ptMain)
			wrap := eval.MulPlain(brot[d-k], ptWrap)
			bd = eval.Rescale(eval.Add(main, wrap))
		}
		aligned := ad.CopyNew()
		if aligned.Level() > bd.Level() {
			aligned.DropLevel(aligned.Level() - bd.Level())
		}
		term := eval.MulRelin(aligned, bd)
		if acc == nil {
			acc = term // fresh MulRelin output; safe to mutate in place
		} else {
			eval.AddAcc(term, acc)
		}
	}
	return eval.Rescale(acc), nil
}
