package hefloat

import (
	"fmt"

	"hydra/internal/ckks"
)

// Encrypted matrix multiplication in the style the paper's LLM benchmarks
// use (Section III-A, following the non-interactive transformer inference
// construction): a k×k matrix is packed column-major into the slots of one
// ciphertext (column c occupies slots [c·k, (c+1)·k)), and
//
//   - PCMM (plaintext-ciphertext matrix multiplication) costs one rotation
//     and one plaintext multiplication per column diagonal — the Table I
//     recipe of 1 Rotation + 1 PMult per parallel unit;
//   - CCMM (ciphertext-ciphertext) additionally extracts and replicates the
//     scalar diagonals of the encrypted right operand, costing ~log2(k)
//     rotations, two plaintext masks and one ciphertext multiplication per
//     diagonal — matching Table I's rotation-heavy CCMM recipe.

// PackMatrix encodes a k×k real matrix column-major into a plaintext; k²
// must equal the slot count so column rotations wrap cyclically.
func PackMatrix(enc *ckks.Encoder, m [][]float64, level int, scale float64) (*ckks.Plaintext, error) {
	k := len(m)
	slots := enc.Params().Slots()
	if k*k != slots {
		return nil, fmt.Errorf("hefloat: matrix size %d² must equal slot count %d", k, slots)
	}
	vals := make([]complex128, slots)
	for c := 0; c < k; c++ {
		for r := 0; r < k; r++ {
			vals[c*k+r] = complex(m[r][c], 0)
		}
	}
	return enc.EncodeAtLevel(vals, scale, level)
}

// UnpackMatrix decodes a column-major packed k×k matrix.
func UnpackMatrix(enc *ckks.Encoder, pt *ckks.Plaintext, k int) [][]float64 {
	vals := enc.Decode(pt)
	m := make([][]float64, k)
	for r := range m {
		m[r] = make([]float64, k)
	}
	for c := 0; c < k; c++ {
		for r := 0; r < k; r++ {
			m[r][c] = real(vals[c*k+r])
		}
	}
	return m
}

// PCMMRotations returns the rotation indices PCMM needs for k×k matrices.
func PCMMRotations(k int) []int {
	rots := make([]int, 0, k-1)
	for d := 1; d < k; d++ {
		rots = append(rots, d*k)
	}
	return rots
}

// PCMM computes Y = X·W for an encrypted column-packed X and a plaintext W:
// column c of the product is Σ_d W[(c+d) mod k][c] · X[:,(c+d) mod k], so
// each diagonal d contributes one column rotation of X (by d·k slots) and
// one multiplication with the plaintext mask carrying the matching W
// entries.
func PCMM(eval *ckks.Evaluator, enc *ckks.Encoder, ctX *ckks.Ciphertext, w [][]float64) (*ckks.Ciphertext, error) {
	k := len(w)
	slots := eval.Params().Slots()
	if k*k != slots {
		return nil, fmt.Errorf("hefloat: matrix size %d² must equal slot count %d", k, slots)
	}
	scale := eval.Params().DefaultScale()
	var acc *ckks.Ciphertext
	for d := 0; d < k; d++ {
		mask := make([]complex128, slots)
		for c := 0; c < k; c++ {
			wv := complex(w[(c+d)%k][c], 0)
			for r := 0; r < k; r++ {
				mask[c*k+r] = wv
			}
		}
		pt, err := enc.EncodeAtLevel(mask, scale, ctX.Level())
		if err != nil {
			return nil, err
		}
		rotated := ctX
		if d != 0 {
			rotated = eval.Rotate(ctX, d*k)
		}
		// Fused multiply-accumulate after the first diagonal seeds acc.
		if acc == nil {
			acc = eval.MulPlain(rotated, pt)
		} else {
			eval.MulPlainAcc(rotated, pt, acc)
		}
	}
	return eval.Rescale(acc), nil
}

// CCMMRotations returns the rotation indices CCMM needs for k×k matrices:
// the σ/τ pre-transforms may touch any diagonal, and the per-iteration
// shifts (d·k, d and d-k mod k²) all fall in the same range.
func CCMMRotations(k int) []int {
	rots := make([]int, 0, k*k-1)
	for d := 1; d < k*k; d++ {
		rots = append(rots, d)
	}
	return rots
}

// ccmmSigma builds the σ pre-transform of the E2DM-style matrix product:
// σ(A)[r][c] = A[r][(r+c) mod k], as a dense permutation over the
// column-major packing.
func ccmmSigma(k int) [][]complex128 {
	n := k * k
	m := make([][]complex128, n)
	for i := range m {
		m[i] = make([]complex128, n)
	}
	for c := 0; c < k; c++ {
		for r := 0; r < k; r++ {
			out := c*k + r
			in := ((r+c)%k)*k + r
			m[out][in] = 1
		}
	}
	return m
}

// ccmmTau builds the τ pre-transform: τ(B)[r][c] = B[(r+c) mod k][c].
func ccmmTau(k int) [][]complex128 {
	n := k * k
	m := make([][]complex128, n)
	for i := range m {
		m[i] = make([]complex128, n)
	}
	for c := 0; c < k; c++ {
		for r := 0; r < k; r++ {
			out := c*k + r
			in := c*k + (r+c)%k
			m[out][in] = 1
		}
	}
	return m
}

// CCMM computes Y = X·Z for two encrypted column-packed k×k matrices with
// the E2DM-style algorithm the paper's CCMM recipe reflects: two one-time
// diagonal pre-transforms σ(X) and τ(Z), then k iterations, each combining a
// clean column rotation of σ(X) with a masked in-column row shift of τ(Z)
// and one ciphertext-ciphertext multiplication:
//
//	Y = Σ_d φ_d(σ(X)) ⊙ ψ_d(τ(Z)),
//	φ_d: column shift by d (one rotation), ψ_d: row shift by d (two masked
//	rotations), so each unit is rotation-heavy with a single CMult, matching
//	Table I's CCMM row.
func CCMM(eval *ckks.Evaluator, enc *ckks.Encoder, ctX, ctZ *ckks.Ciphertext) (*ckks.Ciphertext, error) {
	slots := eval.Params().Slots()
	k := 1
	for k*k < slots {
		k++
	}
	if k*k != slots {
		return nil, fmt.Errorf("hefloat: slot count %d is not a perfect square", slots)
	}
	scale := eval.Params().DefaultScale()

	sigma, err := NewLinearTransform(ccmmSigma(k))
	if err != nil {
		return nil, err
	}
	tau, err := NewLinearTransform(ccmmTau(k))
	if err != nil {
		return nil, err
	}
	a, err := sigma.Evaluate(eval, enc, ctX)
	if err != nil {
		return nil, err
	}
	b, err := tau.Evaluate(eval, enc, ctZ)
	if err != nil {
		return nil, err
	}

	var acc *ckks.Ciphertext
	for d := 0; d < k; d++ {
		// φ_d: shift the columns of a left by d (clean slot rotation).
		ad := a
		if d != 0 {
			ad = eval.Rotate(a, d*k)
		}
		// ψ_d: shift the rows of b up by d within each column: slots with
		// row index r < k-d come from rotation d, the wrap-around rows from
		// rotation d-k; two masks select the pieces.
		var bd *ckks.Ciphertext
		if d == 0 {
			bd = b.CopyNew()
			one := make([]complex128, slots)
			for i := range one {
				one[i] = 1
			}
			pt, err := enc.EncodeAtLevel(one, scale, bd.Level())
			if err != nil {
				return nil, err
			}
			bd = eval.Rescale(eval.MulPlain(bd, pt))
		} else {
			maskMain := make([]complex128, slots)
			maskWrap := make([]complex128, slots)
			for c := 0; c < k; c++ {
				for r := 0; r < k; r++ {
					if r < k-d {
						maskMain[c*k+r] = 1
					} else {
						maskWrap[c*k+r] = 1
					}
				}
			}
			ptMain, err := enc.EncodeAtLevel(maskMain, scale, b.Level())
			if err != nil {
				return nil, err
			}
			ptWrap, err := enc.EncodeAtLevel(maskWrap, scale, b.Level())
			if err != nil {
				return nil, err
			}
			main := eval.MulPlain(eval.Rotate(b, d), ptMain)
			wrap := eval.MulPlain(eval.Rotate(b, d-k), ptWrap)
			bd = eval.Rescale(eval.Add(main, wrap))
		}
		aligned := ad.CopyNew()
		if aligned.Level() > bd.Level() {
			aligned.DropLevel(aligned.Level() - bd.Level())
		}
		term := eval.MulRelin(aligned, bd)
		if acc == nil {
			acc = term // fresh MulRelin output; safe to mutate in place
		} else {
			eval.AddAcc(term, acc)
		}
	}
	return eval.Rescale(acc), nil
}
