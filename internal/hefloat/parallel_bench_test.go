package hefloat

import (
	"math"
	"testing"

	"hydra/internal/ring"
)

// BenchmarkBootstrapSmall times a full bootstrap at the small test parameter
// set (LogN 9, 17-level chain) in forced-serial and default-parallel pool
// modes. Bootstrapping exercises every parallelized path at once: the BSGS
// linear transforms, hoisted rotations, keyswitching, rescaling, and the
// concurrent C2S/S2C branch evaluation.
func BenchmarkBootstrapSmall(b *testing.B) {
	params, enc, encr, _, _, bt := bootEnv(b)
	vals := make([]complex128, params.Slots())
	for i := range vals {
		vals[i] = complex(0.4*math.Sin(float64(i)), 0.3*math.Cos(float64(i)/2))
	}
	pt, err := enc.EncodeAtLevel(vals, params.DefaultScale(), 0)
	if err != nil {
		b.Fatal(err)
	}
	ct := encr.Encrypt(pt)
	for _, mode := range []struct {
		name   string
		serial bool
	}{{"serial", true}, {"parallel", false}} {
		b.Run(mode.name, func(b *testing.B) {
			ring.SetSerial(mode.serial)
			defer ring.SetSerial(false)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := bt.Bootstrap(ct); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
