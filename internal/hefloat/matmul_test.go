package hefloat

import (
	"math"
	"testing"
)

func matK(env *testEnv) int {
	k := 1
	for k*k < env.params.Slots() {
		k++
	}
	return k
}

func seqRealMatrix(k int, seed float64) [][]float64 {
	m := make([][]float64, k)
	for r := range m {
		m[r] = make([]float64, k)
		for c := range m[r] {
			m[r][c] = math.Sin(seed + float64(r*k+c))
		}
	}
	return m
}

func matMulPlain(a, b [][]float64) [][]float64 {
	k := len(a)
	out := make([][]float64, k)
	for r := range out {
		out[r] = make([]float64, k)
		for c := 0; c < k; c++ {
			for j := 0; j < k; j++ {
				out[r][c] += a[r][j] * b[j][c]
			}
		}
	}
	return out
}

func maxMatErr(got, want [][]float64) float64 {
	m := 0.0
	for r := range want {
		for c := range want[r] {
			if e := math.Abs(got[r][c] - want[r][c]); e > m {
				m = e
			}
		}
	}
	return m
}

func TestPackUnpackMatrix(t *testing.T) {
	env := newEnv(t, 5, 2, nil) // slots 16 → k = 4
	k := matK(env)
	m := seqRealMatrix(k, 0.3)
	pt, err := PackMatrix(env.enc, m, env.params.MaxLevel(), env.params.DefaultScale())
	if err != nil {
		t.Fatal(err)
	}
	back := UnpackMatrix(env.enc, pt, k)
	if e := maxMatErr(back, m); e > 1e-8 {
		t.Fatalf("pack/unpack error %g", e)
	}
}

func TestPackMatrixRejectsWrongSize(t *testing.T) {
	env := newEnv(t, 5, 2, nil)
	if _, err := PackMatrix(env.enc, seqRealMatrix(3, 0), env.params.MaxLevel(), 1<<45); err == nil {
		t.Fatal("expected size error")
	}
}

func TestPCMM(t *testing.T) {
	env := newEnv(t, 5, 3, PCMMRotations(4))
	k := matK(env)
	x := seqRealMatrix(k, 0.1)
	w := seqRealMatrix(k, 1.7)
	pt, err := PackMatrix(env.enc, x, env.params.MaxLevel(), env.params.DefaultScale())
	if err != nil {
		t.Fatal(err)
	}
	ct := env.encr.Encrypt(pt)
	res, err := PCMM(env.eval, env.enc, ct, w)
	if err != nil {
		t.Fatal(err)
	}
	got := UnpackMatrix(env.enc, env.decr.Decrypt(res), k)
	want := matMulPlain(x, w)
	if e := maxMatErr(got, want); e > 1e-3 {
		t.Fatalf("PCMM error %g", e)
	}
}

func TestPCMMRotationBudget(t *testing.T) {
	// One rotation per diagonal (Table I: 1 Rotation, 1 PMult per unit).
	if got := len(PCMMRotations(8)); got != 7 {
		t.Fatalf("PCMM needs %d rotations for k=8, want 7", got)
	}
}

func TestCCMM(t *testing.T) {
	k := 4
	env := newEnv(t, 5, 6, CCMMRotations(k))
	x := seqRealMatrix(k, 0.4)
	z := seqRealMatrix(k, 2.9)
	ptX, err := PackMatrix(env.enc, x, env.params.MaxLevel(), env.params.DefaultScale())
	if err != nil {
		t.Fatal(err)
	}
	ptZ, err := PackMatrix(env.enc, z, env.params.MaxLevel(), env.params.DefaultScale())
	if err != nil {
		t.Fatal(err)
	}
	ctX := env.encr.Encrypt(ptX)
	ctZ := env.encr.Encrypt(ptZ)
	res, err := CCMM(env.eval, env.enc, ctX, ctZ)
	if err != nil {
		t.Fatal(err)
	}
	got := UnpackMatrix(env.enc, env.decr.Decrypt(res), k)
	want := matMulPlain(x, z)
	if e := maxMatErr(got, want); e > 1e-2 {
		t.Fatalf("CCMM error %g", e)
	}
}

func TestCCMMThenPCMMChain(t *testing.T) {
	// (X·Z)·W — a CCMM feeding a PCMM, as in an attention block.
	k := 4
	env := newEnv(t, 5, 8, CCMMRotations(k))
	x := seqRealMatrix(k, 0.2)
	z := seqRealMatrix(k, 1.1)
	w := seqRealMatrix(k, 2.2)
	ptX, _ := PackMatrix(env.enc, x, env.params.MaxLevel(), env.params.DefaultScale())
	ptZ, _ := PackMatrix(env.enc, z, env.params.MaxLevel(), env.params.DefaultScale())
	ctX := env.encr.Encrypt(ptX)
	ctZ := env.encr.Encrypt(ptZ)
	xz, err := CCMM(env.eval, env.enc, ctX, ctZ)
	if err != nil {
		t.Fatal(err)
	}
	res, err := PCMM(env.eval, env.enc, xz, w)
	if err != nil {
		t.Fatal(err)
	}
	got := UnpackMatrix(env.enc, env.decr.Decrypt(res), k)
	want := matMulPlain(matMulPlain(x, z), w)
	if e := maxMatErr(got, want); e > 5e-2 {
		t.Fatalf("chained matmul error %g", e)
	}
}

func TestSigmaTauPermutations(t *testing.T) {
	k := 4
	sig := CCMMSigma(k)
	tau := CCMMTau(k)
	// Each row of a permutation matrix has exactly one 1.
	for _, m := range [][][]complex128{sig, tau} {
		for r := range m {
			ones := 0
			for c := range m[r] {
				if m[r][c] == 1 {
					ones++
				} else if m[r][c] != 0 {
					t.Fatal("non-binary entry")
				}
			}
			if ones != 1 {
				t.Fatalf("row %d has %d ones", r, ones)
			}
		}
	}
}
