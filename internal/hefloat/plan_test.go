package hefloat

import (
	"fmt"
	"sync"
	"testing"

	"hydra/internal/ckks"
	"hydra/internal/ring"
)

// encryptVec is a small helper shared by the plan tests.
func encryptVec(t *testing.T, env *testEnv, vals []complex128) *ckks.Ciphertext {
	t.Helper()
	pt, err := env.enc.Encode(vals)
	if err != nil {
		t.Fatal(err)
	}
	return env.encr.Encrypt(pt)
}

// The double-hoisted plan-cached path and the per-rotation reference path
// must decrypt to the same result within the suite's noise tolerance.
func TestEvaluateBSGSMatchesReference(t *testing.T) {
	const dim = 16
	for _, bs := range []int{2, 4, 8, dim} {
		t.Run(fmt.Sprintf("bs=%d", bs), func(t *testing.T) {
			env := newEnv(t, 5, 3, allRotations(dim))
			m := seqMatrix(dim)
			lt, err := NewLinearTransform(m)
			if err != nil {
				t.Fatal(err)
			}
			vals := make([]complex128, dim)
			for i := range vals {
				vals[i] = complex(float64(i%5)-2, float64(i%3)-1)
			}
			ct := encryptVec(t, env, vals)

			got, err := lt.EvaluateBSGS(env.eval, env.enc, ct, bs)
			if err != nil {
				t.Fatal(err)
			}
			want, err := lt.EvaluateBSGSReference(env.eval, env.enc, ct, bs)
			if err != nil {
				t.Fatal(err)
			}
			gotVals := env.enc.Decode(env.decr.Decrypt(got))
			wantVals := env.enc.Decode(env.decr.Decrypt(want))
			if e := maxAbsErr(gotVals, wantVals); e > 1e-2 {
				t.Fatalf("double-hoisted path differs from reference by %g", e)
			}
			// Both must also match the plaintext product.
			expect := applyPlain(m, vals)
			if e := maxAbsErr(gotVals, expect); e > 1e-2 {
				t.Fatalf("double-hoisted path off plaintext product by %g", e)
			}
		})
	}
}

// Noise regression: the deferred-ModDown path performs strictly fewer
// roundings than the reference (one per giant step instead of one per
// rotation), so its error against the plaintext product must stay within
// the seed tolerance the reference path was accepted at.
func TestEvaluateBSGSNoiseBudget(t *testing.T) {
	const dim, bs = 16, 4
	env := newEnv(t, 5, 3, allRotations(dim))
	m := seqMatrix(dim)
	lt, err := NewLinearTransform(m)
	if err != nil {
		t.Fatal(err)
	}
	vals := make([]complex128, dim)
	for i := range vals {
		vals[i] = complex(float64((i*3)%7)/3-1, float64(i%4)/2-1)
	}
	ct := encryptVec(t, env, vals)
	out, err := lt.EvaluateBSGS(env.eval, env.enc, ct, bs)
	if err != nil {
		t.Fatal(err)
	}
	got := env.enc.Decode(env.decr.Decrypt(out))
	if e := maxAbsErr(got, applyPlain(m, vals)); e > 1e-2 {
		t.Fatalf("double-hoisted BSGS noise %g exceeds the seed budget 1e-2", e)
	}
}

// Compile keys plans by (bs, level, scale): a level or scale change must miss
// the cache and produce a fresh plan, while repeated lookups share one.
func TestTransformPlanCacheInvalidation(t *testing.T) {
	const dim = 16
	env := newEnv(t, 5, 3, allRotations(dim))
	lt, err := NewLinearTransform(seqMatrix(dim))
	if err != nil {
		t.Fatal(err)
	}
	scale := env.params.DefaultScale()

	p1, err := lt.planFor(env.enc, 4, 3, scale)
	if err != nil {
		t.Fatal(err)
	}
	if p2, _ := lt.planFor(env.enc, 4, 3, scale); p2 != p1 {
		t.Fatal("identical (bs, level, scale) must share one compiled plan")
	}
	if pl, _ := lt.planFor(env.enc, 4, 2, scale); pl == p1 {
		t.Fatal("level change must invalidate the plan cache")
	}
	if ps, _ := lt.planFor(env.enc, 4, 3, scale*2); ps == p1 {
		t.Fatal("scale change must invalidate the plan cache")
	}
	if pb, _ := lt.planFor(env.enc, 8, 3, scale); pb == p1 {
		t.Fatal("baby-step change must invalidate the plan cache")
	}

	// A plan compiled at a high level evaluates lower-level ciphertexts
	// (the encoded diagonals truncate), but never the other way around.
	vals := make([]complex128, dim)
	vals[1] = 2
	ct := encryptVec(t, env, vals)
	low := env.eval.Rescale(env.eval.MulPlain(ct, mustEncode(t, env, vals, ct.Level())))
	if _, err := p1.Apply(env.eval, low); err != nil {
		t.Fatalf("high-level plan must evaluate lower-level ciphertext: %v", err)
	}
	lowPlan, err := lt.planFor(env.enc, 4, low.Level(), scale)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := lowPlan.Apply(env.eval, ct); err == nil {
		t.Fatal("low-level plan must reject a higher-level ciphertext")
	}
}

func mustEncode(t *testing.T, env *testEnv, vals []complex128, level int) *ckks.Plaintext {
	t.Helper()
	pt, err := env.enc.EncodeAtLevel(vals, env.params.DefaultScale(), level)
	if err != nil {
		t.Fatal(err)
	}
	return pt
}

// Many goroutines race EvaluateBSGS on one LinearTransform: the first caller
// compiles the shared plan, everyone else reuses it, and every result must
// decrypt identically (the plan is immutable and Apply is deterministic).
// Run under -race in CI.
func TestEvaluateBSGSConcurrentSharedPlan(t *testing.T) {
	const dim, bs, workers = 16, 4, 8
	env := newEnv(t, 5, 3, allRotations(dim))
	m := seqMatrix(dim)
	lt, err := NewLinearTransform(m)
	if err != nil {
		t.Fatal(err)
	}
	vals := make([]complex128, dim)
	for i := range vals {
		vals[i] = complex(float64(i)/8-1, 0)
	}
	ct := encryptVec(t, env, vals)

	outs := make([]*ckks.Ciphertext, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			outs[w], errs[w] = lt.EvaluateBSGS(env.eval, env.enc, ct, bs)
		}()
	}
	wg.Wait()
	plan, err := lt.planFor(env.enc, bs, ct.Level(), env.params.DefaultScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.rots) == 0 {
		t.Fatal("compiled plan has no baby rotations")
	}
	want := env.enc.Decode(env.decr.Decrypt(outs[0]))
	for w := 0; w < workers; w++ {
		if errs[w] != nil {
			t.Fatalf("worker %d: %v", w, errs[w])
		}
		got := env.enc.Decode(env.decr.Decrypt(outs[w]))
		if e := maxAbsErr(got, want); e != 0 {
			t.Fatalf("worker %d result differs from worker 0 by %g; shared plan must be deterministic", w, e)
		}
	}
	if e := maxAbsErr(want, applyPlain(m, vals)); e > 1e-2 {
		t.Fatalf("concurrent shared-plan result off plaintext product by %g", e)
	}
}

// Serial and parallel scheduling of the plan-cached path must agree bitwise,
// extending the PR-1 differential harness to the double-hoisted evaluator.
func TestEvaluateBSGSParallelSerialBitIdentical(t *testing.T) {
	old := ring.MaxWorkers()
	ring.SetMaxWorkers(4)
	defer ring.SetMaxWorkers(old)
	defer ring.SetSerial(false)

	const dim, bs = 16, 4
	env := newEnv(t, 5, 3, allRotations(dim))
	lt, err := NewLinearTransform(seqMatrix(dim))
	if err != nil {
		t.Fatal(err)
	}
	vals := make([]complex128, dim)
	for i := range vals {
		vals[i] = complex(float64(i%3), float64(i%2))
	}
	ct := encryptVec(t, env, vals)

	run := func() *ckks.Ciphertext {
		out, err := lt.EvaluateBSGS(env.eval, env.enc, ct, bs)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	ring.SetSerial(true)
	want := run()
	ring.SetSerial(false)
	got := run()
	if want.Scale != got.Scale {
		t.Fatalf("scale %g vs %g", want.Scale, got.Scale)
	}
	if !want.C0.Equal(got.C0) || !want.C1.Equal(got.C1) {
		t.Fatal("parallel plan evaluation differs bitwise from serial")
	}
}

// PCMM's all-baby plan and CCMM's cached pre-transforms ride the same cache;
// repeated calls must stay correct (stale plan state would corrupt them).
func TestMatmulRepeatedCallsStable(t *testing.T) {
	const k = 4
	env := newEnv(t, 5, 6, CCMMRotations(k))
	x := [][]float64{{1, 2, 0, -1}, {0, 1, 3, 2}, {2, -2, 1, 0}, {1, 0, 0, 1}}
	z := [][]float64{{0, 1, 1, 0}, {2, 0, -1, 1}, {1, 1, 0, -2}, {0, 3, 1, 1}}
	scale := env.params.DefaultScale()
	ptX, err := PackMatrix(env.enc, x, env.params.MaxLevel(), scale)
	if err != nil {
		t.Fatal(err)
	}
	ptZ, err := PackMatrix(env.enc, z, env.params.MaxLevel(), scale)
	if err != nil {
		t.Fatal(err)
	}
	ctX := env.encr.Encrypt(ptX)
	ctZ := env.encr.Encrypt(ptZ)

	want := make([][]float64, k)
	for r := range want {
		want[r] = make([]float64, k)
		for c := 0; c < k; c++ {
			for i := 0; i < k; i++ {
				want[r][c] += x[r][i] * z[i][c]
			}
		}
	}
	for pass := 0; pass < 2; pass++ {
		out, err := CCMM(env.eval, env.enc, ctX, ctZ)
		if err != nil {
			t.Fatal(err)
		}
		got := UnpackMatrix(env.enc, env.decr.Decrypt(out), k)
		for r := 0; r < k; r++ {
			for c := 0; c < k; c++ {
				if d := got[r][c] - want[r][c]; d > 1e-2 || d < -1e-2 {
					t.Fatalf("pass %d: CCMM[%d][%d] = %g, want %g", pass, r, c, got[r][c], want[r][c])
				}
			}
		}
	}
}
