package hefloat

import (
	"fmt"

	"hydra/internal/ckks"
)

// Polynomial is a real polynomial c[0] + c[1]x + … + c[deg]x^deg.
type Polynomial struct {
	Coeffs []float64
}

// Degree returns the polynomial degree.
func (p Polynomial) Degree() int { return len(p.Coeffs) - 1 }

// EvalFloat evaluates p at a plaintext point (reference for tests).
func (p Polynomial) EvalFloat(x float64) float64 {
	acc := 0.0
	for i := len(p.Coeffs) - 1; i >= 0; i-- {
		acc = acc*x + p.Coeffs[i]
	}
	return acc
}

// Depth returns the multiplicative depth consumed by EvaluateTree.
func (p Polynomial) Depth() int {
	d := 0
	for 1<<d < p.Degree()+1 {
		d++
	}
	return d
}

// EvaluateHorner evaluates p on ct by Horner's rule: deg sequential
// ciphertext multiplications (depth = deg). Simple but deep; used as the
// reference implementation.
func EvaluateHorner(eval *ckks.Evaluator, ct *ckks.Ciphertext, p Polynomial) (*ckks.Ciphertext, error) {
	deg := p.Degree()
	if deg < 1 {
		return nil, fmt.Errorf("hefloat: polynomial degree must be >= 1")
	}
	if ct.Level() < deg+1 {
		return nil, fmt.Errorf("hefloat: level %d insufficient for Horner degree %d", ct.Level(), deg)
	}
	acc := eval.Rescale(eval.MulByConst(ct, p.Coeffs[deg]))
	acc = eval.AddConst(acc, p.Coeffs[deg-1])
	for i := deg - 2; i >= 0; i-- {
		acc = eval.Rescale(eval.MulRelin(acc, ct))
		acc = eval.AddConst(acc, p.Coeffs[i])
	}
	return acc, nil
}

// EvaluateTree evaluates p on ct with the power-tree method the paper's
// Alg. 1 distributes across cards: compute x^2, x^4, …, x^(2^k) (the tree
// spine), form all odd-power building blocks, and combine sub-polynomials
// pairwise. Depth is ceil(log2(deg+1)) instead of deg.
//
// The recursion splits p(x) = lo(x) + x^(2^(k-1))·hi(x) at the largest power
// of two below deg+1, mirroring Fig. 3(a).
func EvaluateTree(eval *ckks.Evaluator, ct *ckks.Ciphertext, p Polynomial) (*ckks.Ciphertext, error) {
	deg := p.Degree()
	if deg < 1 {
		return nil, fmt.Errorf("hefloat: polynomial degree must be >= 1")
	}
	depth := p.Depth()
	if ct.Level() < depth+1 {
		return nil, fmt.Errorf("hefloat: level %d insufficient for tree depth %d", ct.Level(), depth)
	}
	// Powers x^(2^i), shared by all sub-polynomials (the nodes Alg. 1 assigns
	// to low-numbered cards).
	pows := []*ckks.Ciphertext{ct}
	for 1<<len(pows) <= deg {
		prev := pows[len(pows)-1]
		pows = append(pows, eval.Rescale(eval.MulRelin(prev, prev)))
	}
	out := evalTreeRec(eval, pows, p.Coeffs)
	return out, nil
}

// evalTreeRec evaluates the polynomial with the given coefficients using the
// precomputed binary powers. Returns nil for an all-zero polynomial.
func evalTreeRec(eval *ckks.Evaluator, pows []*ckks.Ciphertext, coeffs []float64) *ckks.Ciphertext {
	// Base case: degree <= 1.
	if len(coeffs) <= 2 {
		var acc *ckks.Ciphertext
		if len(coeffs) == 2 && coeffs[1] != 0 {
			acc = eval.Rescale(eval.MulByConst(pows[0], coeffs[1]))
		}
		if coeffs[0] != 0 {
			if acc == nil {
				acc = eval.Rescale(eval.MulByConst(pows[0], 0)) // zero ciphertext at matching level
			}
			acc = eval.AddConst(acc, coeffs[0])
		}
		return acc
	}
	// Split at the largest power of two strictly below len(coeffs).
	split := 1
	for split*2 < len(coeffs) {
		split *= 2
	}
	k := 0
	for 1<<k != split {
		k++
	}
	lo := evalTreeRec(eval, pows, coeffs[:split])
	hi := evalTreeRec(eval, pows, coeffs[split:])
	if hi == nil {
		return lo
	}
	term := eval.Rescale(eval.MulRelin(hi, pows[k]))
	if lo == nil {
		return term
	}
	// Align scales: term went through one more rescale than lo may have.
	return addAligned(eval, lo, term)
}

// AddAligned adds two ciphertexts that went through rescaling chains of
// different depth, spending a corrective constant multiplication on the
// shallower operand to land both on one scale. Exported for the functional
// cluster runtime.
func AddAligned(eval *ckks.Evaluator, a, b *ckks.Ciphertext) *ckks.Ciphertext {
	return addAligned(eval, a, b)
}

// addAligned adds two ciphertexts that went through rescaling chains of
// different depth. The shallower (higher-level) operand is multiplied by 1.0
// encoded at a corrective scale and rescaled once, landing it exactly on the
// deeper operand's scale; remaining spare levels are then dropped.
func addAligned(eval *ckks.Evaluator, a, b *ckks.Ciphertext) *ckks.Ciphertext {
	// Ensure a is the deeper (lower-level) operand.
	if a.Level() > b.Level() {
		a, b = b, a
	}
	targetLevel := a.Level()
	if a.Level() == b.Level() && !scalesClose(a.Scale, b.Scale) {
		// No spare level on either side: spend one level on b's corrective
		// multiply and drop a to match.
		targetLevel--
		a = a.CopyNew()
		a.DropLevel(1)
	}
	b = matchScaleLevel(eval, b, a.Scale, targetLevel)
	return eval.Add(a, b)
}

// matchScaleLevel brings ct to the target scale and level. ct must be at a
// level strictly above target when its scale differs from targetScale.
func matchScaleLevel(eval *ckks.Evaluator, ct *ckks.Ciphertext, targetScale float64, targetLevel int) *ckks.Ciphertext {
	if !scalesClose(ct.Scale, targetScale) {
		if ct.Level() <= targetLevel {
			panic("hefloat: cannot align scales without a spare level")
		}
		q := eval.Params().Q()[ct.Level()]
		corrective := float64(q) * targetScale / ct.Scale
		ct = eval.Rescale(eval.MulByConstWithScale(ct, 1.0, corrective))
	}
	if ct.Level() > targetLevel {
		ct = ct.CopyNew()
		ct.DropLevel(ct.Level() - targetLevel)
	}
	return ct
}

func scalesClose(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= 1e-6*b
}
