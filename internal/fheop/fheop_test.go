package fheop

import (
	"testing"
	"testing/quick"
)

func TestOpStrings(t *testing.T) {
	want := map[Op]string{
		HAdd: "HAdd", PMult: "PMult", CMult: "CMult", Rescale: "Rescale",
		KeySwitch: "KeySwitch", Rotation: "Rotation", Conjugate: "Conjugate",
	}
	for op, s := range want {
		if op.String() != s {
			t.Fatalf("%d: got %q want %q", op, op.String(), s)
		}
	}
	if Op(99).String() != "Op(99)" {
		t.Fatalf("unknown op formatting: %q", Op(99).String())
	}
	if len(Ops()) != int(numOps) {
		t.Fatalf("Ops() returned %d entries", len(Ops()))
	}
}

func TestBasicOpStrings(t *testing.T) {
	want := map[BasicOp]string{NTT: "NTT", MA: "MA", MM: "MM", Auto: "Auto"}
	for op, s := range want {
		if op.String() != s {
			t.Fatalf("%d: got %q want %q", op, op.String(), s)
		}
	}
	if BasicOp(42).String() != "BasicOp(42)" {
		t.Fatalf("unknown basic op formatting: %q", BasicOp(42).String())
	}
	if len(BasicOps()) != 4 {
		t.Fatalf("BasicOps() returned %d entries", len(BasicOps()))
	}
}

func TestOfAndAccessors(t *testing.T) {
	c := Of(Rotation, 8, PMult, 2, HAdd, 7)
	if c.Get(Rotation) != 8 || c.Get(PMult) != 2 || c.Get(HAdd) != 7 {
		t.Fatalf("counts wrong: %v", c)
	}
	if c.Total() != 17 {
		t.Fatalf("total %d", c.Total())
	}
	// Repeated keys accumulate.
	c2 := Of(HAdd, 1, HAdd, 2)
	if c2.Get(HAdd) != 3 {
		t.Fatalf("accumulation failed: %v", c2)
	}
}

func TestOfPanics(t *testing.T) {
	cases := []func(){
		func() { Of(Rotation) },
		func() { Of("Rotation", 1) },
		func() { Of(Rotation, "1") },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestCountsAlgebraProperties(t *testing.T) {
	add := func(a, b Counts) bool {
		sum := a.Add(b)
		for i := range sum {
			if sum[i] != a[i]+b[i] {
				return false
			}
		}
		// Commutativity.
		return sum == b.Add(a)
	}
	if err := quick.Check(add, nil); err != nil {
		t.Fatal(err)
	}
	scale := func(a Counts, n uint8) bool {
		s := a.Scale(int(n))
		for i := range s {
			if s[i] != a[i]*int(n) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(scale, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCountsString(t *testing.T) {
	var zero Counts
	if zero.String() != "∅" {
		t.Fatalf("zero counts: %q", zero.String())
	}
	c := Of(Rotation, 2)
	if c.String() != "Rotation×2" {
		t.Fatalf("counts string: %q", c.String())
	}
}

func TestBasicCountsAlgebra(t *testing.T) {
	var a BasicCounts
	a[NTT] = 3
	a[MM] = 2
	b := a.Scale(2)
	if b.Get(NTT) != 6 || b.Get(MM) != 4 {
		t.Fatalf("scale wrong: %v", b)
	}
	c := a.Add(b)
	if c.Get(NTT) != 9 {
		t.Fatalf("add wrong: %v", c)
	}
}
