// Package fheop defines the vocabulary of FHE operations that the Hydra
// scheduler dispatches and the accelerator model costs: the CKKS operation
// set (HAdd, PMult, CMult, Rescale, KeySwitch, Rotation) and the four basic
// hardware operators they decompose into (NTT, modular add, modular mul,
// automorphism), mirroring Section IV-A of the paper.
package fheop

import "fmt"

// Op identifies a CKKS-level operation.
type Op int

// CKKS-level operations. CMult includes the tensor product and its
// relinearization key switch; Rotation includes its key switch. Rescale is
// charged separately, as in Table I of the paper.
const (
	HAdd Op = iota
	PMult
	CMult
	Rescale
	KeySwitch
	Rotation
	Conjugate
	numOps
)

// String returns the operation mnemonic.
func (o Op) String() string {
	switch o {
	case HAdd:
		return "HAdd"
	case PMult:
		return "PMult"
	case CMult:
		return "CMult"
	case Rescale:
		return "Rescale"
	case KeySwitch:
		return "KeySwitch"
	case Rotation:
		return "Rotation"
	case Conjugate:
		return "Conjugate"
	default:
		return fmt.Sprintf("Op(%d)", int(o))
	}
}

// Ops lists all CKKS-level operations.
func Ops() []Op {
	out := make([]Op, numOps)
	for i := range out {
		out[i] = Op(i)
	}
	return out
}

// Counts is a multiset of CKKS-level operations, e.g. the recipe of one
// parallel unit of a ConvBN layer (8 Rotations, 2 PMults, 7 HAdds).
type Counts [numOps]int

// Of builds a Counts from (op, n) pairs.
func Of(pairs ...interface{}) Counts {
	if len(pairs)%2 != 0 {
		panic("fheop: Of requires (op, count) pairs")
	}
	var c Counts
	for i := 0; i < len(pairs); i += 2 {
		op, ok1 := pairs[i].(Op)
		n, ok2 := pairs[i+1].(int)
		if !ok1 || !ok2 {
			panic("fheop: Of requires (Op, int) pairs")
		}
		c[op] += n
	}
	return c
}

// Add returns the element-wise sum of two count vectors.
func (c Counts) Add(o Counts) Counts {
	for i := range c {
		c[i] += o[i]
	}
	return c
}

// Scale returns the count vector multiplied by n.
func (c Counts) Scale(n int) Counts {
	for i := range c {
		c[i] *= n
	}
	return c
}

// Total returns the total number of operations.
func (c Counts) Total() int {
	t := 0
	for _, n := range c {
		t += n
	}
	return t
}

// Get returns the count for op.
func (c Counts) Get(op Op) int { return c[op] }

// String formats the non-zero entries.
func (c Counts) String() string {
	s := ""
	for i, n := range c {
		if n == 0 {
			continue
		}
		if s != "" {
			s += " "
		}
		s += fmt.Sprintf("%s×%d", Op(i), n)
	}
	if s == "" {
		return "∅"
	}
	return s
}

// BasicOp identifies one of the four hardware compute units of a Hydra card.
type BasicOp int

// The four basic operators (Fig. 4 of the paper).
const (
	NTT  BasicOp = iota
	MA           // modular addition
	MM           // modular multiplication
	Auto         // automorphism (data permutation)
	numBasicOps
)

// String returns the unit mnemonic.
func (b BasicOp) String() string {
	switch b {
	case NTT:
		return "NTT"
	case MA:
		return "MA"
	case MM:
		return "MM"
	case Auto:
		return "Auto"
	default:
		return fmt.Sprintf("BasicOp(%d)", int(b))
	}
}

// BasicOps lists the four basic operators.
func BasicOps() []BasicOp {
	return []BasicOp{NTT, MA, MM, Auto}
}

// BasicCounts counts invocations of each basic operator, where one NTT unit
// invocation is a full length-N transform of one RNS limb and one MA/MM/Auto
// invocation is one pass over the N coefficients of one limb.
type BasicCounts [numBasicOps]int

// Add returns the element-wise sum.
func (b BasicCounts) Add(o BasicCounts) BasicCounts {
	for i := range b {
		b[i] += o[i]
	}
	return b
}

// Scale multiplies all counts by n.
func (b BasicCounts) Scale(n int) BasicCounts {
	for i := range b {
		b[i] *= n
	}
	return b
}

// Get returns the count for the basic operator.
func (b BasicCounts) Get(op BasicOp) int { return b[op] }
