package runtime

import (
	"context"
	"errors"
	stdruntime "runtime"
	"sync/atomic"
	"testing"
	"time"

	"hydra/internal/fheop"
	"hydra/internal/hw"
	"hydra/internal/mapping"
	"hydra/internal/task"
)

func execute(t *testing.T, p *task.Program, opts Options) *Stats {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	stats, err := Execute(ctx, p, opts)
	if err != nil {
		t.Fatal(err)
	}
	return stats
}

func TestSimplePipeline(t *testing.T) {
	b := task.NewBuilder(2, 2)
	b.Step("s")
	h := b.Compute(0, fheop.Of(fheop.Rotation, 1), 18, "A")
	recvs := b.Send(0, h, []int{1}, 100, "x")
	b.ComputeAfterRecv(1, recvs[0], fheop.Of(fheop.HAdd, 1), 18, "B")
	stats := execute(t, b.Build(), Options{})
	if stats.ComputeTasks != 2 || stats.Sends != 1 || stats.Receives != 1 || stats.BytesMoved != 100 {
		t.Fatalf("stats %+v", stats)
	}
}

func TestComputeOrderAndDependences(t *testing.T) {
	// Card 1's dependent task must observe card 0's result.
	b := task.NewBuilder(2, 2)
	b.Step("s")
	h := b.Compute(0, fheop.Of(fheop.Rotation, 1), 18, "produce")
	recvs := b.Send(0, h, []int{1}, 1, "x")
	b.ComputeAfterRecv(1, recvs[0], fheop.Of(fheop.HAdd, 1), 18, "consume")

	var produced, consumedAfterProduce atomic.Bool
	execute(t, b.Build(), Options{
		OnCompute: func(card int, c task.Compute) error {
			switch c.Label {
			case "produce":
				produced.Store(true)
			case "consume":
				consumedAfterProduce.Store(produced.Load())
			}
			return nil
		},
	})
	if !consumedAfterProduce.Load() {
		t.Fatal("CAR task ran before its producer")
	}
}

func TestStepBarrierOrdering(t *testing.T) {
	// All step-one tasks complete before any step-two task starts.
	b := task.NewBuilder(4, 4)
	b.Step("one")
	for c := 0; c < 4; c++ {
		b.Compute(c, fheop.Of(fheop.HAdd, 1), 18, "one")
	}
	b.Step("two")
	for c := 0; c < 4; c++ {
		b.Compute(c, fheop.Of(fheop.HAdd, 1), 18, "two")
	}
	var oneDone atomic.Int32
	var violation atomic.Bool
	execute(t, b.Build(), Options{
		OnCompute: func(card int, c task.Compute) error {
			switch c.Label {
			case "one":
				oneDone.Add(1)
			case "two":
				if oneDone.Load() != 4 {
					violation.Store(true)
				}
			}
			return nil
		},
	})
	if violation.Load() {
		t.Fatal("step barrier violated")
	}
}

func TestBroadcastDeliversToAll(t *testing.T) {
	b := task.NewBuilder(8, 8)
	b.Step("s")
	h := b.Compute(0, fheop.Of(fheop.Rotation, 1), 18, "A")
	b.Send(0, h, []int{1, 2, 3, 4, 5, 6, 7}, 10, "bc")
	stats := execute(t, b.Build(), Options{})
	if stats.Receives != 7 || stats.BytesMoved != 70 {
		t.Fatalf("stats %+v", stats)
	}
}

func TestMappedProgramsExecute(t *testing.T) {
	// Real mapping-generated programs (conv ring broadcast, BSGS mat-vec,
	// Algorithm 1 and a cooperative bootstrap) must run to completion under
	// the concurrent Procedure 1 engines — deadlock-freedom by execution.
	scheme := hw.PaperScheme()
	emit := []struct {
		name string
		fn   func(*mapping.Context) error
	}{
		{"conv", func(c *mapping.Context) error {
			return c.DistributeBroadcast(64, mapping.ConvBNUnit, 8, "ConvBN")
		}},
		{"gather", func(c *mapping.Context) error {
			return c.DistributeGather(64, mapping.ConvBNUnit, 8, "ConvBN")
		}},
		{"matvec", func(c *mapping.Context) error {
			return c.MatVec(mapping.MatVecOptions{BS: 4, GS: 32}, "FC")
		}},
		{"matvec-star", func(c *mapping.Context) error {
			return c.MatVec(mapping.MatVecOptions{BS: 4, GS: 32, StarAggregation: true}, "FC")
		}},
		{"matvec-distbs", func(c *mapping.Context) error {
			return c.MatVec(mapping.MatVecOptions{BS: 8, GS: 32, DistributedBS: true}, "FC")
		}},
		{"poly", func(c *mapping.Context) error {
			return c.PolyEval(59, "ReLU")
		}},
		{"boot", func(c *mapping.Context) error {
			times := mapping.OpTimesFor(hw.HydraCard(), scheme, 25, 1e-3)
			opts := mapping.DefaultBootstrapOptions(scheme, len(c.Cards), times)
			return c.Bootstrap(opts, "Boot")
		}},
	}
	for _, e := range emit {
		for _, cards := range []int{2, 8} {
			b := task.NewBuilder(cards, cards)
			ctx := mapping.NewContext(b, scheme, cards)
			if err := e.fn(ctx); err != nil {
				t.Fatalf("%s/%d: %v", e.name, cards, err)
			}
			p := b.Build()
			stats := execute(t, p, Options{})
			if stats.ComputeTasks == 0 {
				t.Fatalf("%s/%d: nothing executed", e.name, cards)
			}
			want := p.TotalBytes()
			if stats.BytesMoved != want {
				t.Fatalf("%s/%d: moved %g bytes, want %g", e.name, cards, stats.BytesMoved, want)
			}
		}
	}
}

func TestComputeErrorAborts(t *testing.T) {
	b := task.NewBuilder(2, 2)
	b.Step("s")
	h := b.Compute(0, fheop.Of(fheop.Rotation, 1), 18, "A")
	recvs := b.Send(0, h, []int{1}, 1, "x")
	b.ComputeAfterRecv(1, recvs[0], fheop.Of(fheop.HAdd, 1), 18, "B")
	boom := errors.New("boom")
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_, err := Execute(ctx, b.Build(), Options{
		OnCompute: func(card int, c task.Compute) error {
			if c.Label == "A" {
				return boom
			}
			return nil
		},
	})
	if !errors.Is(err, boom) {
		t.Fatalf("got %v, want wrapped boom", err)
	}
}

func TestDeadlockDetection(t *testing.T) {
	// A receive with no matching send never completes; the context timeout
	// surfaces it as an abort. Build the broken program by corrupting a
	// valid one after construction — Validate would otherwise refuse it, so
	// bypass Execute's validation path via a send whose compute never runs:
	// instead, craft a circular wait: card 0 computes after recv from 1,
	// card 1 sends only after its own compute which waits on recv from 0.
	b := task.NewBuilder(2, 2)
	b.Step("s")
	// Card 0: recv r0 (from 1) gates compute c0; send s0 (after c0) to 1.
	// Card 1: recv r1 (from 0) gates compute c1; send s1 (after c1) to 0.
	// Emission order requires handles; build manually below.
	h0 := b.Compute(0, fheop.Of(fheop.HAdd, 1), 18, "c0") // placeholder, rewired below
	h1 := b.Compute(1, fheop.Of(fheop.HAdd, 1), 18, "c1")
	r0 := b.Send(1, h1, []int{0}, 1, "s1") // recv index on card 0
	r1 := b.Send(0, h0, []int{1}, 1, "s0") // recv index on card 1
	p := b.Build()
	// Rewire: c0 waits on r0 (s1's data), c1 waits on r1 (s0's data) — a
	// cycle: c0 → s0 → r1 → c1 → s1 → r0 → c0.
	p.Steps[0].Compute[0][0].WaitRecv = r0[0]
	p.Steps[0].Compute[1][0].WaitRecv = r1[0]

	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	_, err := Execute(ctx, p, Options{})
	if err == nil {
		t.Fatal("expected deadlock abort")
	}
}

func TestStatsAccumulateAcrossSteps(t *testing.T) {
	b := task.NewBuilder(2, 2)
	b.Step("one")
	h := b.Compute(0, fheop.Of(fheop.HAdd, 1), 18, "A")
	b.Send(0, h, []int{1}, 5, "x")
	b.Step("two")
	h2 := b.Compute(1, fheop.Of(fheop.HAdd, 1), 18, "B")
	b.Send(1, h2, []int{0}, 7, "y")
	stats := execute(t, b.Build(), Options{})
	if stats.Sends != 2 || stats.BytesMoved != 12 {
		t.Fatalf("stats %+v", stats)
	}
}

// TestCancelMidStepWithInflightSends cancels an execution while transfers
// are parked in flight: card 0's transmit engine has delivered one message
// and is awaiting the ready handshake for the next, because card 1's receive
// engine is stalled inside OnTransfer. Execute must unwind every engine and
// report the abort; the goroutine census proves nothing leaked. This is the
// serving layer's per-job timeout path (serve cancels a job whose deadline
// passed while its cards are mid-handshake).
func TestCancelMidStepWithInflightSends(t *testing.T) {
	before := stdruntime.NumGoroutine()

	b := task.NewBuilder(2, 2)
	b.Step("s")
	// Eight dependent transfers: each send waits on a compute, each receive
	// gates a compute on card 1 (CAR), so both queues are busy when the
	// cancellation lands.
	for i := 0; i < 8; i++ {
		h := b.Compute(0, fheop.Of(fheop.Rotation, 1), 18, "A")
		recvs := b.Send(0, h, []int{1}, 1e6, "x")
		b.ComputeAfterRecv(1, recvs[0], fheop.Of(fheop.HAdd, 1), 18, "B")
	}
	p := b.Build()

	ctx, cancel := context.WithCancel(context.Background())
	entered := make(chan struct{})
	hold := make(chan struct{})
	var enteredOnce atomic.Bool
	opts := Options{
		OnTransfer: func(from, to int, bytes float64) error {
			// Stall the first delivery so later sends park in flight
			// (awaiting ready signals that will never be configured).
			if enteredOnce.CompareAndSwap(false, true) {
				close(entered)
				<-hold
			}
			return nil
		},
	}
	done := make(chan error, 1)
	go func() {
		_, err := Execute(ctx, p, opts)
		done <- err
	}()
	<-entered // transfer 0 delivered, engines busy, sends 1..7 in flight
	cancel()
	// The receive engine is blocked inside the hook, not on the context;
	// release it after the cancellation so the abort must propagate through
	// the handshake chains, not through the hook.
	close(hold)
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("expected an abort error from the cancelled execution")
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("want context.Canceled in the chain, got: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Execute ignored the mid-step cancellation")
	}
	// All engines (3 per card), the barrier goroutine and the executor must
	// be gone; allow the runtime a moment to reap them.
	deadline := time.Now().Add(5 * time.Second)
	for stdruntime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if now := stdruntime.NumGoroutine(); now > before {
		t.Fatalf("goroutine leak after cancelled execution: %d before, %d after", before, now)
	}
}

// TestCancelBeforeStepRunsNothing: a context cancelled before Execute starts
// must abort on the first step without invoking any hooks.
func TestCancelBeforeStepRunsNothing(t *testing.T) {
	b := task.NewBuilder(2, 2)
	b.Step("s")
	h := b.Compute(0, fheop.Of(fheop.Rotation, 1), 18, "A")
	recvs := b.Send(0, h, []int{1}, 1, "x")
	b.ComputeAfterRecv(1, recvs[0], fheop.Of(fheop.HAdd, 1), 18, "B")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var computes atomic.Int64
	_, err := Execute(ctx, b.Build(), Options{
		OnCompute: func(card int, c task.Compute) error { computes.Add(1); return nil },
	})
	if err == nil {
		t.Fatal("expected an abort error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got: %v", err)
	}
}
