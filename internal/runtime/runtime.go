// Package runtime executes Hydra task programs concurrently: every card gets
// a computation engine, a transmit engine and a receive engine (goroutines),
// wired together exactly as Procedure 1 of the paper prescribes — receive
// tasks configure and hand a ready signal to their sender, sends wait for the
// producing computation's finish signal and the receivers' ready signals,
// data-dependent computations wait for their receive's completion signal.
// Steps are separated by the Procedure 2 barrier (all queues drained, cards
// signal the host).
//
// Where internal/sim computes the schedule's timing analytically, this
// package actually runs it, so the synchronization mechanism is validated by
// execution (including under the race detector), and callers can attach real
// work to tasks through the hooks.
package runtime

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"hydra/internal/task"
)

// Options configure an execution.
type Options struct {
	// OnCompute runs in the card's computation engine for every computation
	// task (may be nil). Returning an error aborts the execution.
	OnCompute func(card int, t task.Compute) error
	// OnTransfer runs on the receiving card for every delivered message
	// (may be nil).
	OnTransfer func(from, to int, bytes float64) error
}

// Stats summarizes an execution.
type Stats struct {
	ComputeTasks int64
	Sends        int64
	Receives     int64
	BytesMoved   float64
}

// message is what travels between cards.
type message struct {
	from  int
	bytes float64
}

// Execute runs the program to completion. The context bounds the execution:
// cancellation (e.g. a timeout) aborts with an error, which is how tests
// detect deadlocked schedules.
func Execute(ctx context.Context, p *task.Program, opts Options) (*Stats, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	stats := &Stats{}
	for si, st := range p.Steps {
		if err := runStep(ctx, p, st, opts, stats); err != nil {
			return nil, fmt.Errorf("runtime: step %d (%s): %w", si, st.Name, err)
		}
	}
	return stats, nil
}

func runStep(parent context.Context, p *task.Program, st *task.Step, opts Options, stats *Stats) error {
	// Any engine failure cancels the step so its peers unblock.
	ctx, cancel := context.WithCancel(parent)
	defer cancel()
	// Per-task signal channels (closed on completion).
	computeDone := make([][]chan struct{}, p.Cards)
	recvReady := make([][]chan struct{}, p.Cards)
	recvData := make([][]chan message, p.Cards)
	recvDone := make([][]chan struct{}, p.Cards)
	for card := 0; card < p.Cards; card++ {
		computeDone[card] = mkChans(len(st.Compute[card]))
		recvReady[card] = mkChans(len(st.Comm[card]))
		recvDone[card] = mkChans(len(st.Comm[card]))
		recvData[card] = make([]chan message, len(st.Comm[card]))
		for j := range recvData[card] {
			recvData[card][j] = make(chan message, 1)
		}
	}
	// Tag → receive endpoints, for the senders.
	type endpoint struct{ card, index int }
	recvByTag := map[int][]endpoint{}
	for card := 0; card < p.Cards; card++ {
		for j, c := range st.Comm[card] {
			if c.Kind == task.Recv {
				recvByTag[c.Tag] = append(recvByTag[c.Tag], endpoint{card, j})
			}
		}
	}

	var wg sync.WaitGroup
	errc := make(chan error, 3*p.Cards)
	fail := func(err error) {
		select {
		case errc <- err:
		default:
		}
		cancel()
	}
	var computeTasks, sends, receives int64
	var bytesMu sync.Mutex
	bytesMoved := 0.0

	for card := 0; card < p.Cards; card++ {
		card := card

		// Computation engine: GetTask⟨c⟩; CT_d waits for the receive's
		// finish signal; Exe; Signal; Return(1).
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i, c := range st.Compute[card] {
				if c.WaitRecv >= 0 {
					if !await(ctx, recvDone[card][c.WaitRecv]) {
						fail(ctx.Err())
						return
					}
				}
				if opts.OnCompute != nil {
					if err := opts.OnCompute(card, c); err != nil {
						fail(err)
						return
					}
				}
				atomic.AddInt64(&computeTasks, 1)
				close(computeDone[card][i]) // finish signal to the comm engine
			}
		}()

		// Transmit engine: GetTask⟨t∈s⟩; Check (compute finish + receiver
		// ready); Exe (send); Return(1).
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, c := range st.Comm[card] {
				if c.Kind != task.Send {
					continue
				}
				if c.WaitCompute >= 0 {
					if !await(ctx, computeDone[card][c.WaitCompute]) {
						fail(ctx.Err())
						return
					}
				}
				eps := recvByTag[c.Tag]
				for _, ep := range eps {
					if !await(ctx, recvReady[ep.card][ep.index]) {
						fail(ctx.Err())
						return
					}
				}
				for _, ep := range eps {
					select {
					case recvData[ep.card][ep.index] <- message{from: card, bytes: c.Bytes}:
					case <-ctx.Done():
						fail(ctx.Err())
						return
					}
				}
				atomic.AddInt64(&sends, 1)
			}
		}()

		// Receive engine: GetTask⟨t∈r⟩; Cfg; Signal (ready to the sender);
		// Wait; Exe (receive); Signal (finish to the computation engine).
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j, c := range st.Comm[card] {
				if c.Kind != task.Recv {
					continue
				}
				close(recvReady[card][j]) // DMA configured; handshake ready
				var m message
				select {
				case m = <-recvData[card][j]:
				case <-ctx.Done():
					fail(ctx.Err())
					return
				}
				if opts.OnTransfer != nil {
					if err := opts.OnTransfer(m.from, card, m.bytes); err != nil {
						fail(err)
						return
					}
				}
				atomic.AddInt64(&receives, 1)
				bytesMu.Lock()
				bytesMoved += m.bytes
				bytesMu.Unlock()
				close(recvDone[card][j]) // finish signal to the computation engine
			}
		}()
	}

	// Procedure 2 barrier: the step completes when every card's queues are
	// drained (each card would signal the host).
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		<-done // engines exit on ctx.Done
	}
	// The first failure wins; context errors surface as abort diagnostics.
	select {
	case err := <-errc:
		if err == nil || err == context.Canceled || err == context.DeadlineExceeded {
			return fmt.Errorf("aborted (deadlock or timeout): %w", err)
		}
		return err
	default:
	}
	if parent.Err() != nil {
		return fmt.Errorf("aborted (deadlock or timeout): %w", parent.Err())
	}
	stats.ComputeTasks += computeTasks
	stats.Sends += sends
	stats.Receives += receives
	stats.BytesMoved += bytesMoved
	return nil
}

func mkChans(n int) []chan struct{} {
	out := make([]chan struct{}, n)
	for i := range out {
		out[i] = make(chan struct{})
	}
	return out
}

// await blocks until ch closes or the context is cancelled; it reports
// whether ch closed.
func await(ctx context.Context, ch <-chan struct{}) bool {
	select {
	case <-ch:
		return true
	case <-ctx.Done():
		return false
	}
}
