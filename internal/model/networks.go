package model

// The four benchmarks of Section V-A. Layer parallelism, packed-ciphertext
// counts and bootstrap placements follow Table I and the implementations the
// paper builds on: multiplexed-packing CNNs (Lee et al.) for the ResNets and
// the non-interactive transformer inference of NEXUS for BERT/OPT. Exact
// per-layer unit counts inside the Table I ranges are reconstructed (the
// paper gives only the ranges); EXPERIMENTS.md records the resulting
// benchmark totals next to the paper's.

// ResNet18 is ResNet-18 on ImageNet 224×224 (2 input ciphertexts): conv1,
// eight 2-conv basic blocks, average pooling and the FC classifier, with a
// ReLU after every convolution and bootstrapping after each block.
func ResNet18() Network {
	n := Network{Name: "ResNet-18"}
	add := func(p Procedure) { n.Procedures = append(n.Procedures, p) }

	// Stage parameters: channels grow 64→512 while the packed activation
	// ciphertext count shrinks 32→4 (Table I: 1/32).
	type stage struct {
		blocks, units, cts, relu int
	}
	stages := []stage{
		{2, 512, 32, 128},
		{2, 640, 16, 64},
		{2, 768, 8, 32},
		{2, 1024, 4, 16},
	}
	// conv1 + ReLU + pool-like downsample.
	add(Procedure{Label: "ConvBN", Kind: ConvBN, Units: 384, OutputCts: 32})
	add(Procedure{Label: "ReLU", Kind: NonLinear, Cts: 128, Degree: 15, OutputCts: 32})
	add(Procedure{Label: "Pool", Kind: Pooling, Units: 64, OutputCts: 32})

	for _, s := range stages {
		for b := 0; b < s.blocks; b++ {
			for conv := 0; conv < 2; conv++ {
				add(Procedure{Label: "ConvBN", Kind: ConvBN, Units: s.units, OutputCts: s.cts})
				add(Procedure{Label: "ReLU", Kind: NonLinear, Cts: s.relu, Degree: 15, OutputCts: s.cts})
			}
			add(Procedure{Label: "Boot", Kind: Bootstrap, Cts: s.cts})
		}
	}
	add(Procedure{Label: "Pool", Kind: Pooling, Units: 6, OutputCts: 1})
	add(Procedure{Label: "FC", Kind: FC, Units: 1511, OutputCts: 1})
	return n
}

// ResNet50 is ResNet-50 on ImageNet: conv1 plus sixteen 3-conv bottleneck
// blocks. The wider bottlenecks push per-layer parallelism far beyond
// ResNet-18 ("384 to a staggering 16384", Section II-A) and the deeper
// multiplication chain needs a bootstrap per block.
func ResNet50() Network {
	n := Network{Name: "ResNet-50"}
	add := func(p Procedure) { n.Procedures = append(n.Procedures, p) }

	type stage struct {
		blocks, units1x1, units3x3, cts, relu int
	}
	stages := []stage{
		{3, 2048, 4096, 32, 128},
		{4, 3072, 6144, 16, 64},
		{6, 5120, 10240, 8, 32},
		{3, 4096, 16384, 4, 16},
	}
	add(Procedure{Label: "ConvBN", Kind: ConvBN, Units: 384, OutputCts: 32})
	add(Procedure{Label: "ReLU", Kind: NonLinear, Cts: 128, Degree: 15, OutputCts: 32})
	add(Procedure{Label: "Pool", Kind: Pooling, Units: 256, OutputCts: 32})

	for _, s := range stages {
		for b := 0; b < s.blocks; b++ {
			// 1×1 reduce, 3×3, 1×1 expand.
			add(Procedure{Label: "ConvBN", Kind: ConvBN, Units: s.units1x1, OutputCts: s.cts})
			add(Procedure{Label: "ReLU", Kind: NonLinear, Cts: s.relu, Degree: 15, OutputCts: s.cts})
			add(Procedure{Label: "ConvBN", Kind: ConvBN, Units: s.units3x3, OutputCts: s.cts})
			add(Procedure{Label: "ReLU", Kind: NonLinear, Cts: s.relu, Degree: 15, OutputCts: s.cts})
			add(Procedure{Label: "ConvBN", Kind: ConvBN, Units: s.units1x1, OutputCts: s.cts})
			add(Procedure{Label: "ReLU", Kind: NonLinear, Cts: s.relu, Degree: 15, OutputCts: s.cts})
			add(Procedure{Label: "Boot", Kind: Bootstrap, Cts: s.cts})
			add(Procedure{Label: "Boot", Kind: Bootstrap, Cts: s.cts})
		}
	}
	add(Procedure{Label: "Pool", Kind: Pooling, Units: 12, OutputCts: 1})
	add(Procedure{Label: "FC", Kind: FC, Units: 3047, OutputCts: 1})
	return n
}

// transformer builds an encoder-style FHE transformer benchmark: per layer,
// the attention block (QKV/output PCMMs, score and value CCMMs, Softmax),
// LayerNorms, the FFN (two fused PCMMs with a GeLU), and the bootstraps
// that refresh the activations. limbs is the level the linear algebra runs
// at (wider models accumulate directly below the bootstrapping level).
func transformer(name string, layers, attPCMM, ffnPCMM, ccmmUnits, cts, nonlin, bootCts, limbs int) Network {
	n := Network{Name: name}
	add := func(p Procedure) { n.Procedures = append(n.Procedures, p) }
	for l := 0; l < layers; l++ {
		// Attention: QKV + output projections and the two CCMMs.
		add(Procedure{Label: "Attention", Kind: PCMM, Units: attPCMM, OutputCts: cts, Limbs: limbs})
		add(Procedure{Label: "Attention", Kind: CCMM, Units: ccmmUnits, OutputCts: cts, Limbs: limbs})
		add(Procedure{Label: "Norm", Kind: NonLinear, Cts: nonlin, Degree: 15, OutputCts: cts}) // Softmax
		add(Procedure{Label: "Attention", Kind: CCMM, Units: ccmmUnits, OutputCts: cts, Limbs: limbs})
		add(Procedure{Label: "Norm", Kind: NonLinear, Cts: nonlin, Degree: 15, OutputCts: cts}) // LayerNorm
		add(Procedure{Label: "Boot", Kind: Bootstrap, Cts: bootCts})
		// FFN: expand and contract projections with GeLU between.
		add(Procedure{Label: "FFN", Kind: PCMM, Units: ffnPCMM / 2, OutputCts: cts, Limbs: limbs})
		add(Procedure{Label: "FFN", Kind: NonLinear, Cts: nonlin, Degree: 15, OutputCts: cts}) // GeLU
		add(Procedure{Label: "FFN", Kind: PCMM, Units: ffnPCMM / 2, OutputCts: cts, Limbs: limbs})
		add(Procedure{Label: "Norm", Kind: NonLinear, Cts: nonlin, Degree: 15, OutputCts: cts}) // LayerNorm
		add(Procedure{Label: "Boot", Kind: Bootstrap, Cts: bootCts})
	}
	return n
}

// BERTBase is BERT-base with a 128×768 input sequence (one packed input
// ciphertext): 12 encoder layers, ~114k PCMM units per layer and CCMM
// parallelism 384 (Table I).
func BERTBase() Network {
	return transformer("BERT-base", 12, 49152, 65536, 384, 12, 48, 12, 0)
}

// OPT67B is OPT-6.7B with a 200×4096 input sequence (two packed input
// ciphertexts): 32 layers, per-matrix PCMM parallelism up to 614,400 and
// CCMM 1000 (Table I). The 4096-wide accumulations run directly below the
// bootstrapping level (limb count 24).
func OPT67B() Network {
	return transformer("OPT-6.7B", 32, 614400, 614400, 1000, 18, 72, 18, 24)
}

// ResNet20 is the tailored CIFAR-10 model of the paper's Section II
// motivation ("for the ResNet-20 for CIFAR-10 ... the most advanced practical
// accelerators, Poseidon and FAB, achieve a performance of nearly 3
// seconds"): 32x32 inputs pack into a single ciphertext, three stages of
// three 2-conv blocks with 16-64 channels, and a handful of bootstraps.
func ResNet20() Network {
	n := Network{Name: "ResNet-20"}
	add := func(p Procedure) { n.Procedures = append(n.Procedures, p) }
	add(Procedure{Label: "ConvBN", Kind: ConvBN, Units: 16, OutputCts: 1})
	add(Procedure{Label: "ReLU", Kind: NonLinear, Cts: 4, Degree: 15, OutputCts: 1})
	type stage struct{ blocks, units int }
	for si, s := range []stage{{3, 32}, {3, 48}, {3, 64}} {
		for b := 0; b < s.blocks; b++ {
			for conv := 0; conv < 2; conv++ {
				add(Procedure{Label: "ConvBN", Kind: ConvBN, Units: s.units, OutputCts: 1})
				add(Procedure{Label: "ReLU", Kind: NonLinear, Cts: 4, Degree: 15, OutputCts: 1})
			}
			// Roughly one bootstrap every two blocks keeps the depth budget.
			if (si*3+b)%2 == 1 {
				add(Procedure{Label: "Boot", Kind: Bootstrap, Cts: 1})
			}
		}
	}
	add(Procedure{Label: "Pool", Kind: Pooling, Units: 6, OutputCts: 1})
	add(Procedure{Label: "FC", Kind: FC, Units: 64, OutputCts: 1})
	return n
}

// Benchmarks returns the four evaluation networks in Table II order.
func Benchmarks() []Network {
	return []Network{ResNet18(), ResNet50(), BERTBase(), OPT67B()}
}
