package model

import (
	"testing"

	"hydra/internal/fheop"
	"hydra/internal/mapping"
	"hydra/internal/sim"
	"hydra/internal/task"
)

func TestBenchmarksValidate(t *testing.T) {
	for _, n := range Benchmarks() {
		if err := n.Validate(); err != nil {
			t.Fatalf("%s: %v", n.Name, err)
		}
	}
}

func TestTable1Ranges(t *testing.T) {
	// Spot-check the parallelism ranges of Table I.
	r18 := ResNet18()
	if min, max, ok := r18.ParallelismRange(ConvBN); !ok || min != 384 || max != 1024 {
		t.Fatalf("ResNet-18 ConvBN range %d/%d", min, max)
	}
	if min, max, ok := r18.ParallelismRange(Pooling); !ok || min != 6 || max != 64 {
		t.Fatalf("ResNet-18 Pooling range %d/%d", min, max)
	}
	if min, max, ok := r18.ParallelismRange(FC); !ok || min != 1511 || max != 1511 {
		t.Fatalf("ResNet-18 FC range %d/%d", min, max)
	}
	if min, max, ok := r18.ParallelismRange(NonLinear); !ok || min != 4 && min > 16 || max != 128 {
		t.Fatalf("ResNet-18 NonLinear range %d/%d", min, max)
	}
	if min, max := r18.CiphertextRange(); min != 1 || max != 32 {
		t.Fatalf("ResNet-18 ciphertext range %d/%d", min, max)
	}

	r50 := ResNet50()
	if _, max, _ := r50.ParallelismRange(ConvBN); max != 16384 {
		t.Fatalf("ResNet-50 ConvBN max %d, want 16384 (Section II-A)", max)
	}
	if min, _, _ := r50.ParallelismRange(FC); min != 3047 {
		t.Fatalf("ResNet-50 FC %d", min)
	}

	bert := BERTBase()
	if _, max, _ := bert.ParallelismRange(CCMM); max != 384 {
		t.Fatalf("BERT CCMM max %d", max)
	}
	if min, max, _ := bert.ParallelismRange(Bootstrap); min != 12 || max != 12 {
		t.Fatalf("BERT boot range %d/%d", min, max)
	}

	opt := OPT67B()
	if _, max, _ := opt.ParallelismRange(PCMM); max != 614400 {
		t.Fatalf("OPT PCMM max %d, want 614400 (Table I)", max)
	}
	if _, max, _ := opt.ParallelismRange(CCMM); max != 1000 {
		t.Fatalf("OPT CCMM max %d", max)
	}
	if _, max, _ := opt.ParallelismRange(Bootstrap); max != 18 {
		t.Fatalf("OPT boot max %d", max)
	}
}

func TestKindStringsAndRecipes(t *testing.T) {
	for _, k := range []Kind{ConvBN, Pooling, FC, PCMM, CCMM, NonLinear, Bootstrap} {
		if k.String() == "" {
			t.Fatal("empty kind name")
		}
	}
	if ConvBN.Recipe().Get(fheop.Rotation) != 8 {
		t.Fatal("ConvBN recipe should have 8 rotations")
	}
	if CCMM.Recipe().Get(fheop.Rotation) != 7 {
		t.Fatal("CCMM recipe should have 7 rotations")
	}
	if Bootstrap.Recipe().Total() != 0 {
		t.Fatal("Bootstrap has no static recipe")
	}
}

func TestValidateRejectsBadNetworks(t *testing.T) {
	bad := []Network{
		{Name: "empty"},
		{Name: "conv", Procedures: []Procedure{{Label: "ConvBN", Kind: ConvBN}}},
		{Name: "boot", Procedures: []Procedure{{Label: "Boot", Kind: Bootstrap}}},
		{Name: "nl", Procedures: []Procedure{{Label: "ReLU", Kind: NonLinear, Cts: 4}}},
	}
	for _, n := range bad {
		if err := n.Validate(); err == nil {
			t.Fatalf("%s: expected validation error", n.Name)
		}
	}
}

func TestEmitAndSimulateResNet18(t *testing.T) {
	for _, cards := range []int{1, 8} {
		cfg := sim.HydraConfig()
		b := task.NewBuilder(cards, 8)
		ctx := mapping.NewContext(b, cfg.Scheme, cards)
		com := 0.0
		if cards > 1 {
			com = cfg.Network.IntraServer.Transfer(float64(cfg.Scheme.CiphertextBytes(25)))
		}
		times := mapping.OpTimesFor(cfg.Card, cfg.Scheme, 25, com)
		boot := mapping.DefaultBootstrapOptions(cfg.Scheme, cards, times)
		if err := ResNet18().Emit(ctx, boot, times); err != nil {
			t.Fatal(err)
		}
		res, err := sim.Run(b.Build(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.Makespan <= 0 {
			t.Fatal("empty simulation")
		}
		spans := res.StepSpanByName()
		for _, label := range []string{"ConvBN", "ReLU", "Boot", "FC", "Pool"} {
			if spans[label] <= 0 {
				t.Fatalf("cards=%d: no time attributed to %s: %v", cards, label, spans)
			}
		}
	}
}

func TestLabelsOrder(t *testing.T) {
	labels := ResNet18().Labels()
	if len(labels) != 5 || labels[0] != "ConvBN" {
		t.Fatalf("labels %v", labels)
	}
	bl := BERTBase().Labels()
	want := map[string]bool{"Attention": true, "Norm": true, "Boot": true, "FFN": true}
	for _, l := range bl {
		if !want[l] {
			t.Fatalf("unexpected BERT label %q", l)
		}
	}
}
