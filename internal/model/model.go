// Package model describes the four FHE deep-learning benchmarks of the
// paper's evaluation — ResNet-18, ResNet-50 (multiplexed-packing CNNs per
// Lee et al.), BERT-base and OPT-6.7B (NEXUS-style transformers) — as
// sequences of procedures with the application-level parallelism and
// per-unit FHE operation recipes of Table I. A Network is emitted through
// the mapping strategies onto a card fleet and executed by the simulator.
package model

import (
	"fmt"

	"hydra/internal/fheop"
	"hydra/internal/mapping"
)

// pcmmEnergyScale derates PCMM/CCMM dynamic energy for operand residency
// (see Emit).
const pcmmEnergyScale = 0.7

// Kind enumerates the key procedures of Section III-A.
type Kind int

// Procedure kinds.
const (
	ConvBN Kind = iota
	Pooling
	FC
	PCMM
	CCMM
	NonLinear
	Bootstrap
)

// String returns the procedure mnemonic.
func (k Kind) String() string {
	switch k {
	case ConvBN:
		return "ConvBN"
	case Pooling:
		return "Pooling"
	case FC:
		return "FC"
	case PCMM:
		return "PCMM"
	case CCMM:
		return "CCMM"
	case NonLinear:
		return "NonLinear"
	case Bootstrap:
		return "Bootstrap"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Recipe returns the per-parallel-unit FHE operations of Table I.
func (k Kind) Recipe() fheop.Counts {
	switch k {
	case ConvBN:
		return mapping.ConvBNUnit
	case Pooling:
		return mapping.PoolUnit
	case FC:
		return mapping.FCUnit
	case PCMM:
		return mapping.PCMMUnit
	case CCMM:
		return mapping.CCMMUnit
	case NonLinear:
		return mapping.NonlinearUnit
	default:
		return fheop.Counts{}
	}
}

// Procedure is one step of a benchmark.
type Procedure struct {
	Label     string // Fig. 6 attribution: ConvBN, Pool, FC, ReLU, Boot, Attention, FFN, Norm
	Kind      Kind
	Units     int // application-level parallelism (Table I)
	OutputCts int // packed activation ciphertexts produced (Table I "Ciphertext" row)
	Degree    int // polynomial degree for NonLinear
	Cts       int // ciphertexts refreshed (Bootstrap) or evaluated (NonLinear)
	Limbs     int // limb count the ops run at (0 = machine default)
}

// Network is a full benchmark.
type Network struct {
	Name       string
	Procedures []Procedure
}

// Labels returns the distinct procedure labels in order of first appearance.
func (n Network) Labels() []string {
	seen := map[string]bool{}
	var out []string
	for _, p := range n.Procedures {
		if !seen[p.Label] {
			seen[p.Label] = true
			out = append(out, p.Label)
		}
	}
	return out
}

// Validate checks the network against the parallelism ranges of Table I.
func (n Network) Validate() error {
	if len(n.Procedures) == 0 {
		return fmt.Errorf("model: %s has no procedures", n.Name)
	}
	for i, p := range n.Procedures {
		switch p.Kind {
		case Bootstrap:
			if p.Cts <= 0 {
				return fmt.Errorf("model: %s procedure %d: bootstrap needs Cts > 0", n.Name, i)
			}
		case NonLinear:
			if p.Cts <= 0 || p.Degree < 1 || p.OutputCts <= 0 {
				return fmt.Errorf("model: %s procedure %d: non-linear needs Cts, Degree and OutputCts", n.Name, i)
			}
		default:
			if p.Units <= 0 || p.OutputCts <= 0 {
				return fmt.Errorf("model: %s procedure %d: needs Units and OutputCts", n.Name, i)
			}
		}
	}
	return nil
}

// Emit lowers the network onto the context's cards using the Section III
// mapping strategies. boot carries the bootstrapping configuration (the DFT
// parameters are re-optimized per batch inside BootstrapBatch) and times the
// Eq. 1 operation latencies of the target machine.
func (n Network) Emit(ctx *mapping.Context, boot mapping.BootstrapOptions, times mapping.OpTimes) error {
	if err := n.Validate(); err != nil {
		return err
	}
	for i, p := range n.Procedures {
		sub := *ctx
		if p.Limbs > 0 {
			sub.Limbs = p.Limbs
		}
		// Matrix-multiplication procedures rotate one scratchpad-resident
		// ciphertext against streamed plaintext rows, so their off-chip
		// energy is far below the streaming roofline.
		if p.Kind == PCMM || p.Kind == CCMM {
			ctx.B.SetEnergyScale(pcmmEnergyScale)
		} else {
			ctx.B.SetEnergyScale(1)
		}
		var err error
		switch p.Kind {
		case ConvBN, Pooling, PCMM, CCMM:
			if p.Kind == ConvBN || p.Kind == Pooling {
				err = sub.DistributeBroadcast(p.Units, p.Kind.Recipe(), p.OutputCts, p.Label)
			} else {
				err = sub.DistributeLocal(p.Units, p.Kind.Recipe(), p.OutputCts, p.Label)
			}
		case FC:
			err = sub.FC(p.Units, p.Label)
		case NonLinear:
			err = sub.NonLinear(p.Cts, p.Degree, p.OutputCts, p.Label)
		case Bootstrap:
			err = sub.BootstrapBatch(p.Cts, boot, times, p.Label)
		default:
			err = fmt.Errorf("model: unknown procedure kind %v", p.Kind)
		}
		if err != nil {
			return fmt.Errorf("model: %s procedure %d (%s): %w", n.Name, i, p.Label, err)
		}
	}
	return nil
}

// TotalUnits sums the parallel units per label (Table I reporting).
func (n Network) TotalUnits() map[string]int {
	m := map[string]int{}
	for _, p := range n.Procedures {
		m[p.Label] += p.Units
	}
	return m
}

// ParallelismRange returns the min and max unit counts of procedures of the
// given kind (the Min./Max. columns of Table I). ok is false if the kind
// does not appear.
func (n Network) ParallelismRange(k Kind) (min, max int, ok bool) {
	for _, p := range n.Procedures {
		u := p.Units
		if p.Kind == Bootstrap || p.Kind == NonLinear {
			u = p.Cts
		}
		if p.Kind != k {
			continue
		}
		if !ok {
			min, max, ok = u, u, true
			continue
		}
		if u < min {
			min = u
		}
		if u > max {
			max = u
		}
	}
	return min, max, ok
}

// CiphertextRange returns the min and max activation ciphertext counts
// (packed layer outputs and bootstrap batches; non-linear parallel units are
// finer-grained than ciphertexts and excluded).
func (n Network) CiphertextRange() (min, max int) {
	first := true
	for _, p := range n.Procedures {
		c := p.OutputCts
		if p.Kind == Bootstrap {
			c = p.Cts
		}
		if p.Kind == NonLinear {
			continue
		}
		if c == 0 {
			continue
		}
		if first {
			min, max, first = c, c, false
			continue
		}
		if c < min {
			min = c
		}
		if c > max {
			max = c
		}
	}
	return min, max
}
