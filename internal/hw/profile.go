package hw

import (
	"fmt"

	"hydra/internal/fheop"
)

// CardProfile describes one accelerator card: compute-unit throughput, memory
// system behaviour, and per-unit energy. Times come out of a roofline: an
// operation takes max(compute time, off-chip traffic / HBM bandwidth).
type CardProfile struct {
	Name    string
	ClockHz float64
	Lanes   int // operands processed per cycle by each compute unit (paper: 512)

	// NTTPassEff derates the ideal butterfly throughput for pipeline bubbles
	// and twiddle loading; radix-4 designs (Hydra) sustain more of the ideal
	// rate than radix-8 (Poseidon) at N = 2^16.
	NTTPassEff float64

	// ScratchpadHitRate is the fraction of operand traffic served on-chip
	// (the MAD-style caching Hydra adopts; Poseidon re-fetches from HBM).
	ScratchpadHitRate float64
	HBMBandwidth      float64 // bytes/s

	// Calibration aligns the analytic model with the paper's single-card
	// totals (their numbers come from an RTL-informed simulator we don't
	// have). One scalar per card family; no per-benchmark adjustment.
	Calibration float64

	// Energy model (Joules per invocation / per byte), used by the energy
	// breakdown of Fig. 7 and the EDAP of Table III.
	EnergyNTT     float64 // J per one-limb NTT
	EnergyMA      float64 // J per one-limb coefficient pass
	EnergyMM      float64
	EnergyAuto    float64
	EnergyHBM     float64 // J per byte of off-chip traffic
	EnergyNIC     float64 // J per byte transferred by the DTU
	IdlePowerW    float64 // static power
	AreaMM2       float64 // die-equivalent area at 7nm (for EDAP)
	PowerBudgetW  float64 // TDP-style bound (reporting only)
	HasDTU        bool    // Hydra-S omits the DTU
	KeySwitchDnum int     // digits used by this card's key-switch datapath

	// BatchAmortFrac is the fraction of a single run's time that batching
	// amortizes away (pipeline fill, evaluation-key loads, per-limb setup):
	// a batch of b interchangeable jobs takes t*(a + (1-a)*b) instead of
	// t*b. Zero disables amortization — a batch of b costs b private runs.
	BatchAmortFrac float64
}

// Validate checks the profile.
func (c CardProfile) Validate() error {
	if c.ClockHz <= 0 || c.Lanes <= 0 || c.NTTPassEff <= 0 || c.HBMBandwidth <= 0 {
		return fmt.Errorf("hw: profile %q has non-positive rate fields", c.Name)
	}
	if c.ScratchpadHitRate < 0 || c.ScratchpadHitRate >= 1 {
		return fmt.Errorf("hw: profile %q hit rate %v out of [0,1)", c.Name, c.ScratchpadHitRate)
	}
	if c.Calibration <= 0 {
		return fmt.Errorf("hw: profile %q calibration must be positive", c.Name)
	}
	if c.BatchAmortFrac < 0 || c.BatchAmortFrac >= 1 {
		return fmt.Errorf("hw: profile %q batch amortization %v out of [0,1)", c.Name, c.BatchAmortFrac)
	}
	return nil
}

// BasicOpCycles returns the cycle count of one invocation of the basic
// operator on one RNS limb of N coefficients.
func (c CardProfile) BasicOpCycles(op fheop.BasicOp, s SchemeParams) float64 {
	n := float64(s.N())
	lanes := float64(c.Lanes)
	switch op {
	case fheop.NTT:
		// N/2 · logN butterflies, `lanes` operands (= lanes/2 butterflies)
		// per cycle, derated by the sustained efficiency.
		return (n / 2 * float64(s.LogN)) / (lanes / 2) / c.NTTPassEff
	case fheop.MA, fheop.MM, fheop.Auto:
		return n / lanes
	default:
		panic(fmt.Sprintf("hw: unknown basic op %v", op))
	}
}

// Decompose returns the basic-operator invocation counts of one CKKS-level
// operation at the given limb count. This is the mapping from the FHE
// operation set to the four compute units described in Section IV-A.
func Decompose(op fheop.Op, limbs int, s SchemeParams, dnum int) fheop.BasicCounts {
	if limbs <= 0 {
		panic("hw: limb count must be positive")
	}
	digits := ksDigits(limbs, s, dnum)
	ext := limbs + s.SpecialLimbs // extended basis size during key switch

	var b fheop.BasicCounts
	switch op {
	case fheop.HAdd:
		b[fheop.MA] = 2 * limbs
	case fheop.PMult:
		b[fheop.MM] = 2 * limbs
	case fheop.Rescale:
		// Per component: bring the dropped limb to coefficients, re-express
		// the remainder under each surviving limb, subtract and scale.
		b[fheop.NTT] = 2 * (limbs + 1)
		b[fheop.MM] = 2 * limbs
		b[fheop.MA] = 2 * limbs
	case fheop.KeySwitch:
		b = keySwitchCounts(limbs, digits, ext)
	case fheop.CMult:
		// Tensor product (4 limb-wise multiplications, 1 accumulation) plus
		// the relinearization key switch of the degree-2 term.
		b[fheop.MM] = 4 * limbs
		b[fheop.MA] = limbs
		b = b.Add(keySwitchCounts(limbs, digits, ext))
	case fheop.Rotation, fheop.Conjugate:
		// Automorphism of both components plus the key switch of c1.
		b[fheop.Auto] = 2 * limbs
		b = b.Add(keySwitchCounts(limbs, digits, ext))
	default:
		panic(fmt.Sprintf("hw: unknown op %v", op))
	}
	return b
}

// ksDigits returns the key-switch digit count at the given limb count. The
// digit width is fixed per datapath (alpha = ceil(MaxLimbs/dnum), capped by
// the special-modulus width), so the count grows monotonically with limbs.
func ksDigits(limbs int, s SchemeParams, dnum int) int {
	if dnum <= 0 {
		dnum = s.Dnum
	}
	alpha := (s.MaxLimbs + dnum - 1) / dnum
	if alpha > s.SpecialLimbs {
		alpha = s.SpecialLimbs
	}
	if alpha < 1 {
		alpha = 1
	}
	return (limbs + alpha - 1) / alpha
}

// keySwitchCounts is the RNS hybrid key switch: INTT of the input, digit
// extension NTTs, multiply-accumulate against the key pair, and ModDown.
func keySwitchCounts(limbs, digits, ext int) fheop.BasicCounts {
	var b fheop.BasicCounts
	b[fheop.NTT] = limbs + // INTT of the switched polynomial
		digits*ext + // raise each digit to the extended basis
		2*ext + // INTT of both accumulators before ModDown
		2*limbs // NTT of both outputs after ModDown
	b[fheop.MM] = 2*digits*ext + // multiply-accumulate against (b_i, a_i)
		2*limbs // ModDown scaling
	b[fheop.MA] = 2*digits*ext + 2*limbs
	return b
}

// OpTraffic returns the off-chip bytes an operation moves before scratchpad
// filtering: operands in, result out, and key material for key switches.
func OpTraffic(op fheop.Op, limbs int, s SchemeParams, dnum int) float64 {
	limbBytes := float64(s.N() * 8)
	digits := ksDigits(limbs, s, dnum)
	ext := limbs + s.SpecialLimbs

	l := float64(limbs)
	switch op {
	case fheop.HAdd:
		return (4*l + 2*l) * limbBytes // two inputs, one output (2 limb-vectors each)
	case fheop.PMult:
		return (2*l + l + 2*l) * limbBytes // ct in, pt in, ct out
	case fheop.Rescale:
		return (2*l + 2*l) * limbBytes
	case fheop.KeySwitch:
		return (l + 2*float64(digits*ext) + 2*l) * limbBytes
	case fheop.CMult:
		return (4*l + 2*float64(digits*ext) + 2*l) * limbBytes
	case fheop.Rotation, fheop.Conjugate:
		return (2*l + 2*float64(digits*ext) + 2*l) * limbBytes
	default:
		panic(fmt.Sprintf("hw: unknown op %v", op))
	}
}

// OpTime returns the wall-clock seconds one invocation of op takes on this
// card at the given limb count: a roofline of compute cycles against HBM
// traffic, times the calibration factor.
func (c CardProfile) OpTime(op fheop.Op, limbs int, s SchemeParams) float64 {
	counts := Decompose(op, limbs, s, c.KeySwitchDnum)
	cycles := 0.0
	for _, b := range fheop.BasicOps() {
		cycles += float64(counts.Get(b)) * c.BasicOpCycles(b, s)
	}
	compute := cycles / c.ClockHz
	traffic := OpTraffic(op, limbs, s, c.KeySwitchDnum) * (1 - c.ScratchpadHitRate)
	memory := traffic / c.HBMBandwidth
	t := compute
	if memory > t {
		t = memory
	}
	return t * c.Calibration
}

// OpEnergy returns the Joules one invocation of op consumes on this card
// (compute units plus off-chip traffic; DTU energy is charged separately by
// the simulator per transferred byte).
func (c CardProfile) OpEnergy(op fheop.Op, limbs int, s SchemeParams) float64 {
	counts := Decompose(op, limbs, s, c.KeySwitchDnum)
	e := float64(counts.Get(fheop.NTT))*c.EnergyNTT +
		float64(counts.Get(fheop.MA))*c.EnergyMA +
		float64(counts.Get(fheop.MM))*c.EnergyMM +
		float64(counts.Get(fheop.Auto))*c.EnergyAuto
	e += OpTraffic(op, limbs, s, c.KeySwitchDnum) * (1 - c.ScratchpadHitRate) * c.EnergyHBM
	return e
}

// EnergyByUnit returns the per-unit energy split of one op invocation,
// keyed for the Fig. 7 breakdown: NTT, MA, MM, Auto, HBM.
func (c CardProfile) EnergyByUnit(op fheop.Op, limbs int, s SchemeParams) map[string]float64 {
	counts := Decompose(op, limbs, s, c.KeySwitchDnum)
	return map[string]float64{
		"NTT":  float64(counts.Get(fheop.NTT)) * c.EnergyNTT,
		"MA":   float64(counts.Get(fheop.MA)) * c.EnergyMA,
		"MM":   float64(counts.Get(fheop.MM)) * c.EnergyMM,
		"Auto": float64(counts.Get(fheop.Auto)) * c.EnergyAuto,
		"HBM":  OpTraffic(op, limbs, s, c.KeySwitchDnum) * (1 - c.ScratchpadHitRate) * c.EnergyHBM,
	}
}
