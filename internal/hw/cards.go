package hw

// HydraCard is the per-card model of the Hydra prototype on a Xilinx Alveo
// U280: 512-lane compute units at 300 MHz, radix-4 NTT (a better match to
// N = 2^16 than Poseidon's radix-8, Section IV-B), MAD-style scratchpad reuse
// in front of HBM, and a DTU for switch-based card-to-card transfers.
func HydraCard() CardProfile {
	return CardProfile{
		Name:              "Hydra",
		ClockHz:           300e6,
		Lanes:             512,
		NTTPassEff:        0.85,
		ScratchpadHitRate: 0.80,
		HBMBandwidth:      460e9,
		Calibration:       1.0,

		EnergyNTT:    0.37e-3,
		EnergyMA:     0.03e-3,
		EnergyMM:     0.20e-3,
		EnergyAuto:   0.10e-3,
		EnergyHBM:    5e-9,
		EnergyNIC:    5e-12,
		IdlePowerW:   25,
		AreaMM2:      120, // 7nm RTL-normalized equivalent
		PowerBudgetW: 215,
		HasDTU:       true,

		KeySwitchDnum: 3,

		// 0.38 reproduces the measured 1.50x kernel-level batch-8 speedup
		// (BENCH_ckks residue-batch seam): 8/(0.38 + 0.62*8) = 1.498.
		BatchAmortFrac: 0.38,
	}
}

// HydraSCard is the Hydra single-card prototype: identical to the compute
// node of Hydra-M/L but without the DTU (Section V-A).
func HydraSCard() CardProfile {
	c := HydraCard()
	c.Name = "Hydra-S"
	c.HasDTU = false
	return c
}

// FABCard models FAB's single card: radix-2 NTT datapath with fewer lanes, a
// shallower on-chip buffer, and a wider key-switch decomposition.
func FABCard() CardProfile {
	return CardProfile{
		Name:              "FAB",
		ClockHz:           300e6,
		Lanes:             256,
		NTTPassEff:        0.70,
		ScratchpadHitRate: 0.45,
		HBMBandwidth:      460e9,
		Calibration:       1.0,

		EnergyNTT:    0.42e-3,
		EnergyMA:     0.033e-3,
		EnergyMM:     0.22e-3,
		EnergyAuto:   0.12e-3,
		EnergyHBM:    5e-9,
		EnergyNIC:    5e-12,
		IdlePowerW:   25,
		AreaMM2:      130,
		PowerBudgetW: 215,
		HasDTU:       false, // FAB transfers go through the host

		KeySwitchDnum: 5,
	}
}

// PoseidonCard models Poseidon: HBM-resident operands with no reuse-oriented
// scratchpad ("no efficient caching strategy, requiring frequent access to
// HBM", Section IV-B) but an efficient radix-8 NTT core.
func PoseidonCard() CardProfile {
	return CardProfile{
		Name:              "Poseidon",
		ClockHz:           300e6,
		Lanes:             512,
		NTTPassEff:        0.80,
		ScratchpadHitRate: 0.0,
		HBMBandwidth:      420e9,
		Calibration:       1.0,

		EnergyNTT:    0.39e-3,
		EnergyMA:     0.031e-3,
		EnergyMM:     0.21e-3,
		EnergyAuto:   0.11e-3,
		EnergyHBM:    5e-9,
		EnergyNIC:    5e-12,
		IdlePowerW:   25,
		AreaMM2:      125,
		PowerBudgetW: 215,
		HasDTU:       false,

		KeySwitchDnum: 3,
	}
}

// LinkProfile is one communication channel.
type LinkProfile struct {
	Bandwidth float64 // bytes/s
	Latency   float64 // seconds per message
}

// Transfer returns the seconds needed to move `bytes` over this link.
func (l LinkProfile) Transfer(bytes float64) float64 {
	return l.Latency + bytes/l.Bandwidth
}

// NetworkProfile describes how cards reach each other.
type NetworkProfile struct {
	Name string

	// Hydra path: DTU → switch → DTU.
	IntraServer LinkProfile // between cards in one server
	InterServer LinkProfile // between cards in different servers
	Broadcast   bool        // switch supports hardware broadcast

	// FAB path: FPGA → PCIe → host (→ LAN → host) → PCIe → FPGA.
	HostRelay       bool
	PCIe            LinkProfile
	LAN             LinkProfile
	PairDirect      bool    // FAB pairs two FPGAs with a direct network link
	HostSyncLatency float64 // host round-trip charged per synchronized dependency
}

// HydraNetwork is the switch-based interconnect of Fig. 4: QSFP ports into
// in-server and cross-server switches, point-to-point and broadcast modes.
func HydraNetwork() NetworkProfile {
	return NetworkProfile{
		Name:        "hydra",
		IntraServer: LinkProfile{Bandwidth: 12.5e9, Latency: 2e-6}, // 100 Gb/s QSFP
		// Cross-server traffic shares the oversubscribed uplinks to the top
		// switch, so its effective per-flow bandwidth is lower.
		InterServer: LinkProfile{Bandwidth: 5e9, Latency: 5e-6},
		Broadcast:   true,
	}
}

// FABNetwork is FAB's host-mediated interconnect (Section II-B1): paired
// FPGAs share a direct network link; any other transfer crosses PCIe to the
// host, the 10 Gb/s LAN between hosts, and PCIe down to the destination.
func FABNetwork() NetworkProfile {
	return NetworkProfile{
		Name:            "fab",
		HostRelay:       true,
		PCIe:            LinkProfile{Bandwidth: 16e9, Latency: 5e-6},    // Alveo U280 PCIe
		LAN:             LinkProfile{Bandwidth: 1.25e9, Latency: 30e-6}, // 10 Gb/s LAN
		PairDirect:      true,
		HostSyncLatency: 20e-6,
	}
}

// TransferTime returns the end-to-end seconds for one point-to-point message
// of `bytes` from card src to card dst, given cardsPerServer.
func (n NetworkProfile) TransferTime(bytes float64, src, dst, cardsPerServer int) float64 {
	if src == dst {
		return 0
	}
	if !n.HostRelay {
		if src/cardsPerServer == dst/cardsPerServer {
			return n.IntraServer.Transfer(bytes)
		}
		return n.InterServer.Transfer(bytes)
	}
	// FAB-style path.
	if n.PairDirect && src^1 == dst {
		// Paired boards exchange data over their direct network link.
		return n.LAN.Transfer(bytes)
	}
	t := n.PCIe.Transfer(bytes) + n.PCIe.Transfer(bytes) + n.HostSyncLatency
	// Boards attached to different hosts add a LAN hop.
	if src/cardsPerServer != dst/cardsPerServer {
		t += n.LAN.Transfer(bytes)
	}
	return t
}

// BroadcastTime returns the seconds for one card to deliver `bytes` to all
// other `fanout` cards. Hydra's switch forwards a broadcast in one
// transmission; host-relayed networks send fanout unicasts.
func (n NetworkProfile) BroadcastTime(bytes float64, src, fanout, cardsPerServer int) float64 {
	if fanout <= 0 {
		return 0
	}
	if !n.HostRelay && n.Broadcast {
		// One send; the switch replicates. Cross-server broadcast pays the
		// slower segment once.
		if fanout < cardsPerServer {
			return n.IntraServer.Transfer(bytes)
		}
		return n.InterServer.Transfer(bytes)
	}
	total := 0.0
	for i := 0; i < fanout; i++ {
		dst := (src + 1 + i)
		total += n.TransferTime(bytes, src, dst, cardsPerServer)
	}
	return total
}

// SendTime returns the sender-side occupancy of one transfer (or broadcast)
// of `bytes` from src to dsts: the time the card's TX path (DTU → switch, or
// FPGA → PCIe → host LAN replication for FAB) is busy injecting the data.
// The DTU's TX and RX engines are independent (full duplex), so this is the
// spacing between consecutive sends of one card.
func (n NetworkProfile) SendTime(bytes float64, src int, dsts []int, cardsPerServer int) float64 {
	if len(dsts) == 0 {
		return 0
	}
	if !n.HostRelay {
		link := n.IntraServer
		for _, dst := range dsts {
			if dst/cardsPerServer != src/cardsPerServer {
				link = n.InterServer
				break
			}
		}
		if len(dsts) > 1 && !n.Broadcast {
			return float64(len(dsts)) * link.Transfer(bytes)
		}
		return link.Transfer(bytes) // switch replicates a broadcast
	}
	// FAB: PCIe upload plus one LAN copy per remote host, serialized on the
	// source host's NIC.
	srcHost := src / cardsPerServer
	remote := map[int]bool{}
	for _, dst := range dsts {
		if h := dst / cardsPerServer; h != srcHost {
			remote[h] = true
		}
	}
	return n.PCIe.Transfer(bytes) + n.HostSyncLatency + float64(len(remote))*n.LAN.Transfer(bytes)
}

// RecvTime returns the receiver-side occupancy of one arrival of `bytes`:
// the drain through the destination port (switch → DTU → HBM, or host →
// PCIe → FPGA for FAB). Arrivals at one card serialize on this.
func (n NetworkProfile) RecvTime(bytes float64, src, dst, cardsPerServer int) float64 {
	if !n.HostRelay {
		if src/cardsPerServer == dst/cardsPerServer {
			return bytes / n.IntraServer.Bandwidth
		}
		return bytes / n.InterServer.Bandwidth
	}
	return n.PCIe.Transfer(bytes)
}

// BroadcastTimeTo returns the seconds for src to deliver `bytes` to every
// card in dsts. Hydra's switch replicates a single transmission (the
// cross-server segment is paid once when any destination is remote);
// host-relayed networks degenerate to per-destination unicasts.
func (n NetworkProfile) BroadcastTimeTo(bytes float64, src int, dsts []int, cardsPerServer int) float64 {
	if len(dsts) == 0 {
		return 0
	}
	if !n.HostRelay && n.Broadcast {
		for _, dst := range dsts {
			if dst/cardsPerServer != src/cardsPerServer {
				return n.InterServer.Transfer(bytes)
			}
		}
		return n.IntraServer.Transfer(bytes)
	}
	if n.HostRelay {
		// The source host replicates: one PCIe upload, one LAN copy per
		// remote host (serialized on the source host's NIC), and the PCIe
		// downloads on the destination hosts proceed in parallel.
		remoteHosts := map[int]bool{}
		srcHost := src / cardsPerServer
		needLocalDown := false
		for _, dst := range dsts {
			h := dst / cardsPerServer
			if h == srcHost {
				needLocalDown = true
			} else {
				remoteHosts[h] = true
			}
		}
		t := n.PCIe.Transfer(bytes) + n.HostSyncLatency
		t += float64(len(remoteHosts)) * n.LAN.Transfer(bytes)
		if len(remoteHosts) > 0 || needLocalDown {
			t += n.PCIe.Transfer(bytes)
		}
		return t
	}
	total := 0.0
	for _, dst := range dsts {
		total += n.TransferTime(bytes, src, dst, cardsPerServer)
	}
	return total
}

// ResourceUtilization is one row of the FPGA utilization report (Table IV).
type ResourceUtilization struct {
	Resource  string
	Used      int
	Available int
}

// Percent returns the utilization percentage.
func (r ResourceUtilization) Percent() float64 {
	return 100 * float64(r.Used) / float64(r.Available)
}

// HydraResourceUtilization reproduces Table IV: the single-card Hydra design
// on the Alveo U280. DSPs serve the NTT and MM multipliers (96.5%); BRAM is
// the CU data cache; URAM caches the evaluation keys.
func HydraResourceUtilization() []ResourceUtilization {
	return []ResourceUtilization{
		{Resource: "LUTs (k)", Used: 997, Available: 1304},
		{Resource: "FFs (k)", Used: 1375, Available: 2607},
		{Resource: "DSP", Used: 8704, Available: 9024},
		{Resource: "BRAM", Used: 3072, Available: 4032},
		{Resource: "URAMs", Used: 768, Available: 962},
	}
}
