package hw

import (
	"math"
	"testing"
	"testing/quick"

	"hydra/internal/fheop"
)

func TestPaperSchemeDerived(t *testing.T) {
	s := PaperScheme()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.N() != 1<<16 || s.Slots() != 1<<15 {
		t.Fatalf("N=%d slots=%d", s.N(), s.Slots())
	}
	// A fresh ciphertext should be "more than 20MB" (Section II-B2).
	if b := s.CiphertextBytes(s.FreshLimbs); b < 20<<20 {
		t.Fatalf("fresh ciphertext %d bytes, want > 20MB", b)
	}
	if s.Digits(28) != 3 {
		t.Fatalf("digits(28) = %d, want 3", s.Digits(28))
	}
}

func TestSchemeValidation(t *testing.T) {
	bad := []SchemeParams{
		{LogN: 5, MaxLimbs: 28, SpecialLimbs: 10, Dnum: 3, EffectiveLimb: 18},
		{LogN: 16, MaxLimbs: 0, SpecialLimbs: 10, Dnum: 3, EffectiveLimb: 18},
		{LogN: 16, MaxLimbs: 28, SpecialLimbs: 10, Dnum: 3, EffectiveLimb: 40},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Fatalf("case %d: expected validation error", i)
		}
	}
}

func TestCardProfilesValid(t *testing.T) {
	for _, c := range []CardProfile{HydraCard(), HydraSCard(), FABCard(), PoseidonCard()} {
		if err := c.Validate(); err != nil {
			t.Fatalf("%s: %v", c.Name, err)
		}
	}
}

func TestDecomposeShapes(t *testing.T) {
	s := PaperScheme()
	l := 18
	hadd := Decompose(fheop.HAdd, l, s, 0)
	if hadd.Get(fheop.MA) != 2*l || hadd.Get(fheop.NTT) != 0 {
		t.Fatalf("HAdd decomposition wrong: %v", hadd)
	}
	pm := Decompose(fheop.PMult, l, s, 0)
	if pm.Get(fheop.MM) != 2*l {
		t.Fatalf("PMult decomposition wrong: %v", pm)
	}
	rot := Decompose(fheop.Rotation, l, s, 0)
	if rot.Get(fheop.NTT) == 0 || rot.Get(fheop.Auto) != 2*l {
		t.Fatalf("Rotation decomposition wrong: %v", rot)
	}
	cm := Decompose(fheop.CMult, l, s, 0)
	if cm.Get(fheop.NTT) != rot.Get(fheop.NTT) {
		t.Fatalf("CMult and Rotation should share the key-switch NTT count")
	}
	conj := Decompose(fheop.Conjugate, l, s, 0)
	if conj != rot {
		t.Fatal("Conjugate should decompose like Rotation")
	}
}

func TestOpTimeOrdering(t *testing.T) {
	s := PaperScheme()
	for _, c := range []CardProfile{HydraCard(), FABCard(), PoseidonCard()} {
		l := s.EffectiveLimb
		tHAdd := c.OpTime(fheop.HAdd, l, s)
		tPMult := c.OpTime(fheop.PMult, l, s)
		tRot := c.OpTime(fheop.Rotation, l, s)
		tCMult := c.OpTime(fheop.CMult, l, s)
		if !(tHAdd > 0 && tPMult > 0) {
			t.Fatalf("%s: non-positive op times", c.Name)
		}
		// Key-switch-bearing ops dominate element-wise ops by a large factor.
		if tRot < 5*tPMult || tCMult < 5*tPMult {
			t.Fatalf("%s: rotation (%g) should cost far more than PMult (%g)", c.Name, tRot, tPMult)
		}
		// CMult ≈ Rotation plus the tensor product.
		if tCMult < tRot {
			t.Fatalf("%s: CMult (%g) should cost at least Rotation (%g)", c.Name, tCMult, tRot)
		}
	}
}

func TestOpTimeMonotoneInLimbs(t *testing.T) {
	s := PaperScheme()
	c := HydraCard()
	f := func(seed uint8) bool {
		l := int(seed%20) + 2
		for _, op := range fheop.Ops() {
			if c.OpTime(op, l+1, s) < c.OpTime(op, l, s) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSingleCardOrderingMatchesPaper(t *testing.T) {
	// Table II single-card ordering: Hydra-S faster than Poseidon faster
	// than FAB-S.
	s := PaperScheme()
	l := s.EffectiveLimb
	hydra := HydraSCard().OpTime(fheop.Rotation, l, s)
	poseidon := PoseidonCard().OpTime(fheop.Rotation, l, s)
	fab := FABCard().OpTime(fheop.Rotation, l, s)
	if !(hydra < poseidon && poseidon < fab) {
		t.Fatalf("rotation times not ordered: hydra=%g poseidon=%g fab=%g", hydra, poseidon, fab)
	}
}

func TestOpEnergyBreakdown(t *testing.T) {
	s := PaperScheme()
	c := HydraCard()
	e := c.OpEnergy(fheop.Rotation, s.EffectiveLimb, s)
	parts := c.EnergyByUnit(fheop.Rotation, s.EffectiveLimb, s)
	sum := 0.0
	for _, v := range parts {
		sum += v
	}
	if math.Abs(sum-e)/e > 1e-9 {
		t.Fatalf("energy breakdown sums to %g, total %g", sum, e)
	}
	// Memory access dominates FHE energy (Fig. 7): HBM should be the largest
	// single contributor for key-switch-bearing ops.
	if parts["HBM"] < parts["MA"] || parts["HBM"] < parts["Auto"] {
		t.Fatalf("HBM energy %g should dominate small units: %v", parts["HBM"], parts)
	}
}

func TestTransferTimes(t *testing.T) {
	hn := HydraNetwork()
	fn := FABNetwork()
	ctBytes := float64(PaperScheme().CiphertextBytes(18))

	hIntra := hn.TransferTime(ctBytes, 0, 3, 8)
	hInter := hn.TransferTime(ctBytes, 0, 9, 8)
	if hIntra <= 0 || hInter < hIntra {
		t.Fatalf("hydra transfers: intra=%g inter=%g", hIntra, hInter)
	}
	if hn.TransferTime(ctBytes, 2, 2, 8) != 0 {
		t.Fatal("self transfer should be free")
	}

	fPair := fn.TransferTime(ctBytes, 0, 1, 2)
	fCross := fn.TransferTime(ctBytes, 0, 5, 2)
	if fCross <= fPair {
		t.Fatalf("FAB cross-host transfer (%g) should exceed the paired path (%g)", fCross, fPair)
	}
	// The paper's core scalability claim: Hydra's card-to-card path is far
	// cheaper than FAB's host-relayed path.
	if fCross < 5*hIntra {
		t.Fatalf("FAB relay (%g) should dwarf Hydra switch path (%g)", fCross, hIntra)
	}
}

func TestBroadcastTimes(t *testing.T) {
	hn := HydraNetwork()
	fn := FABNetwork()
	ctBytes := float64(PaperScheme().CiphertextBytes(18))
	hb := hn.BroadcastTime(ctBytes, 0, 7, 8)
	if hb != hn.IntraServer.Transfer(ctBytes) {
		t.Fatalf("hydra broadcast should cost one switch transfer, got %g", hb)
	}
	hbWide := hn.BroadcastTime(ctBytes, 0, 63, 8)
	if hbWide <= hb {
		t.Fatal("cross-server broadcast should cost at least the intra one")
	}
	fb := fn.BroadcastTimeTo(ctBytes, 0, []int{1, 2, 3, 4, 5, 6, 7}, 2)
	// Host replication: one PCIe up, one LAN copy per remote host, PCIe down.
	if fb < 3*fn.LAN.Transfer(ctBytes) {
		t.Fatalf("FAB broadcast should pay a LAN copy per remote host, got %g", fb)
	}
	if hn.BroadcastTime(ctBytes, 0, 0, 8) != 0 {
		t.Fatal("empty broadcast should be free")
	}
}

func TestResourceUtilizationTable(t *testing.T) {
	rows := HydraResourceUtilization()
	if len(rows) != 5 {
		t.Fatalf("expected 5 rows, got %d", len(rows))
	}
	wantPct := map[string]float64{
		"LUTs (k)": 76.5, "FFs (k)": 52.7, "DSP": 96.5, "BRAM": 76.2, "URAMs": 79.8,
	}
	for _, r := range rows {
		want := wantPct[r.Resource]
		if math.Abs(r.Percent()-want) > 0.15 {
			t.Fatalf("%s: %.1f%%, want %.1f%%", r.Resource, r.Percent(), want)
		}
	}
}

func TestOpTrafficPositiveAndMonotone(t *testing.T) {
	s := PaperScheme()
	for _, op := range fheop.Ops() {
		prev := 0.0
		for l := 2; l <= s.MaxLimbs; l += 4 {
			tr := OpTraffic(op, l, s, 0)
			if tr <= prev {
				t.Fatalf("%v: traffic not increasing at limbs=%d", op, l)
			}
			prev = tr
		}
	}
}

func TestDecomposePanicsOnBadLimbs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for limbs=0")
		}
	}()
	Decompose(fheop.HAdd, 0, PaperScheme(), 0)
}

func TestSendRecvTimesMonotoneInBytes(t *testing.T) {
	for _, n := range []NetworkProfile{HydraNetwork(), FABNetwork()} {
		f := func(kb uint16) bool {
			b1 := float64(kb) * 1e3
			b2 := b1 + 1e6
			dsts := []int{1, 2, 3}
			return n.SendTime(b2, 0, dsts, 8) >= n.SendTime(b1, 0, dsts, 8) &&
				n.RecvTime(b2, 0, 1, 8) >= n.RecvTime(b1, 0, 1, 8) &&
				n.TransferTime(b2, 0, 1, 2) >= n.TransferTime(b1, 0, 1, 2)
		}
		if err := quick.Check(f, nil); err != nil {
			t.Fatalf("%s: %v", n.Name, err)
		}
	}
}

func TestBroadcastNeverCheaperThanWorstUnicastLeg(t *testing.T) {
	n := HydraNetwork()
	bytes := 1e7
	// A broadcast including a cross-server destination costs at least the
	// cross-server point-to-point send.
	bc := n.SendTime(bytes, 0, []int{1, 9}, 8)
	p2p := n.SendTime(bytes, 0, []int{9}, 8)
	if bc < p2p {
		t.Fatalf("broadcast %g cheaper than its worst leg %g", bc, p2p)
	}
}

func TestEnergyPositiveForAllOps(t *testing.T) {
	s := PaperScheme()
	for _, c := range []CardProfile{HydraCard(), FABCard(), PoseidonCard()} {
		for _, op := range fheop.Ops() {
			if e := c.OpEnergy(op, s.EffectiveLimb, s); e <= 0 {
				t.Fatalf("%s/%v: energy %g", c.Name, op, e)
			}
			if tm := c.OpTime(op, s.EffectiveLimb, s); tm <= 0 {
				t.Fatalf("%s/%v: time %g", c.Name, op, tm)
			}
		}
	}
}

func TestAveragePowerIsPlausible(t *testing.T) {
	// A rotation should burn on the order of an FPGA card's power budget:
	// energy/time within [20W, 600W].
	s := PaperScheme()
	for _, c := range []CardProfile{HydraCard(), FABCard(), PoseidonCard()} {
		e := c.OpEnergy(fheop.Rotation, s.EffectiveLimb, s)
		tm := c.OpTime(fheop.Rotation, s.EffectiveLimb, s)
		watts := e / tm
		if watts < 20 || watts > 600 {
			t.Fatalf("%s: implied dynamic power %.0f W is implausible", c.Name, watts)
		}
	}
}

func TestFleetServerGeometry(t *testing.T) {
	f := Fleet{Cards: 20, CardsPerServer: 8}
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	if f.Servers() != 3 {
		t.Fatalf("servers = %d, want 3", f.Servers())
	}
	if f.ServerOf(7) != 0 || f.ServerOf(8) != 1 || f.ServerOf(19) != 2 {
		t.Fatalf("server mapping wrong: %d %d %d", f.ServerOf(7), f.ServerOf(8), f.ServerOf(19))
	}
	if got := f.SpanServers([]int{0, 1, 2, 3}); got != 1 {
		t.Fatalf("span of one-server set = %d, want 1", got)
	}
	if got := f.SpanServers([]int{6, 7, 8, 16}); got != 3 {
		t.Fatalf("span of three-server set = %d, want 3", got)
	}
	if err := (Fleet{Cards: 0, CardsPerServer: 8}).Validate(); err == nil {
		t.Fatal("zero-card fleet should fail validation")
	}
	if err := (Fleet{Cards: 8, CardsPerServer: 0}).Validate(); err == nil {
		t.Fatal("zero-width fleet should fail validation")
	}
}
