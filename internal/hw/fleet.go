package hw

import "fmt"

// Fleet describes the physical card pool of a serving deployment: Cards
// accelerators grouped into servers of CardsPerServer behind the in-server
// switch, with the inter-server network between groups. The serving layer
// (internal/serve) allocates card subsets out of a Fleet; the server
// boundaries matter because a job spanning servers pays the slower
// inter-server links for every broadcast (NetworkProfile.TransferTime).
type Fleet struct {
	Cards          int
	CardsPerServer int
}

// Validate checks the fleet shape.
func (f Fleet) Validate() error {
	if f.Cards <= 0 {
		return fmt.Errorf("hw: fleet needs at least one card, got %d", f.Cards)
	}
	if f.CardsPerServer <= 0 {
		return fmt.Errorf("hw: fleet needs a positive CardsPerServer, got %d", f.CardsPerServer)
	}
	return nil
}

// Servers returns the number of (possibly partially filled) servers.
func (f Fleet) Servers() int {
	return (f.Cards + f.CardsPerServer - 1) / f.CardsPerServer
}

// ServerOf returns the server index housing the given card.
func (f Fleet) ServerOf(card int) int {
	return card / f.CardsPerServer
}

// SpanServers returns how many distinct servers a card set touches — the
// locality metric the serving allocator minimizes, since every extra server
// in a job's card set turns its intra-job broadcasts into inter-server
// transfers.
func (f Fleet) SpanServers(cards []int) int {
	seen := map[int]bool{}
	for _, c := range cards {
		seen[f.ServerOf(c)] = true
	}
	return len(seen)
}
