// Package hw models the Hydra FPGA accelerator card and its baselines at the
// level the scale-out study needs: each CKKS operation is decomposed into
// invocations of the four basic compute units (NTT, MA, MM, Automorphism),
// costed with a roofline over compute throughput and HBM traffic, and tagged
// with per-unit energies. Card profiles for Hydra, FAB and Poseidon share the
// machinery and differ in clock, lanes, memory behaviour and key-switch
// decomposition, reproducing the single-card ordering of Table II.
package hw

import "fmt"

// SchemeParams fixes the CKKS parameters the accelerator runs. The paper uses
// SHARP's parameters: N = 2^16, log(PQ) = 1692, logQ = 1260.
type SchemeParams struct {
	LogN          int // ring degree exponent
	MaxLimbs      int // RNS limbs of Q at the top level
	SpecialLimbs  int // limbs of the key-switching modulus P
	Dnum          int // key-switch decomposition number (digits)
	LimbBits      int // bits per limb modulus
	BootDepth     int // multiplicative depth consumed per DFT level in C2S/S2C
	FreshLimbs    int // limbs immediately after bootstrapping
	EffectiveLimb int // average limb count charged for steady-state inference ops
}

// PaperScheme returns the parameter set of the paper's evaluation
// (Section V-A): N = 2^16 with logQ = 1260 (28 × 45-bit limbs) and
// log(PQ) = 1692 (432 bits of P ≈ 10 limbs, dnum = 3).
func PaperScheme() SchemeParams {
	return SchemeParams{
		LogN:          16,
		MaxLimbs:      28,
		SpecialLimbs:  10,
		Dnum:          3,
		LimbBits:      45,
		BootDepth:     3,
		FreshLimbs:    22,
		EffectiveLimb: 18,
	}
}

// N returns the ring degree.
func (s SchemeParams) N() int { return 1 << s.LogN }

// Slots returns the slot count N/2.
func (s SchemeParams) Slots() int { return s.N() / 2 }

// CiphertextBytes returns the size of a degree-1 ciphertext at the given limb
// count (two polynomials of N 8-byte words per limb). At the paper's
// parameters a steady-state ciphertext is ≈ 19 MB, matching the "more than
// 20 MB" the paper cites for fresh ciphertexts.
func (s SchemeParams) CiphertextBytes(limbs int) int {
	return 2 * limbs * s.N() * 8
}

// Digits returns the number of key-switch digits covering `limbs` limbs.
func (s SchemeParams) Digits(limbs int) int {
	alpha := s.Alpha()
	return (limbs + alpha - 1) / alpha
}

// Alpha returns the limbs per key-switch digit (= SpecialLimbs by the
// standard hybrid key-switching construction).
func (s SchemeParams) Alpha() int {
	if s.SpecialLimbs <= 0 {
		return 1
	}
	return s.SpecialLimbs
}

// Validate checks internal consistency.
func (s SchemeParams) Validate() error {
	if s.LogN < 10 || s.LogN > 17 {
		return fmt.Errorf("hw: LogN %d out of range [10,17]", s.LogN)
	}
	if s.MaxLimbs <= 0 || s.SpecialLimbs <= 0 || s.Dnum <= 0 {
		return fmt.Errorf("hw: limb/dnum fields must be positive")
	}
	if s.EffectiveLimb <= 0 || s.EffectiveLimb > s.MaxLimbs {
		return fmt.Errorf("hw: EffectiveLimb %d out of range (0,%d]", s.EffectiveLimb, s.MaxLimbs)
	}
	return nil
}
