package lint

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// TestGolden runs every check over the testdata module and compares the
// unsuppressed findings against the `// want <check>...` markers in the
// sources. Each check must produce at least one true positive and have at
// least one suppressed case, so the suppression path is exercised per check.
func TestGolden(t *testing.T) {
	mod, err := LoadModule(filepath.Join("testdata", "mod"))
	if err != nil {
		t.Fatalf("LoadModule: %v", err)
	}

	// Collect want markers: file:line -> sorted check names.
	want := map[string][]string{}
	for _, pkg := range mod.Pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
					rest, ok := strings.CutPrefix(text, "want ")
					if !ok {
						continue
					}
					pos := mod.Fset.Position(c.Pos())
					key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
					want[key] = append(want[key], strings.Fields(rest)...)
				}
			}
		}
	}
	if len(want) == 0 {
		t.Fatal("no want markers found in testdata")
	}

	diags := Run(mod, Checks())

	got := map[string][]string{}
	activePerCheck := map[string]int{}
	suppressedPerCheck := map[string]int{}
	for _, d := range diags {
		if d.Check == "directive" {
			t.Errorf("unexpected directive diagnostic in testdata: %s", d)
			continue
		}
		if d.Suppressed {
			suppressedPerCheck[d.Check]++
			if d.Reason == "" {
				t.Errorf("suppressed diagnostic lost its reason: %s", d)
			}
			continue
		}
		activePerCheck[d.Check]++
		key := fmt.Sprintf("%s:%d", d.Pos.Filename, d.Pos.Line)
		got[key] = append(got[key], d.Check)
	}

	for key, w := range want {
		sort.Strings(w)
		g := got[key]
		sort.Strings(g)
		if strings.Join(w, " ") != strings.Join(g, " ") {
			t.Errorf("%s: want diagnostics [%s], got [%s]", key, strings.Join(w, " "), strings.Join(g, " "))
		}
	}
	for key, g := range got {
		if _, ok := want[key]; !ok {
			t.Errorf("%s: unexpected diagnostics [%s]", key, strings.Join(g, " "))
		}
	}

	for _, c := range Checks() {
		if activePerCheck[c.Name] == 0 {
			t.Errorf("check %s has no true-positive case in testdata", c.Name)
		}
		if suppressedPerCheck[c.Name] == 0 {
			t.Errorf("check %s has no suppressed case in testdata", c.Name)
		}
	}
}

// TestDirectiveValidation checks the framework's handling of malformed
// //lint:allow directives: missing reasons and unknown check names are
// reported, and a reasonless directive still suppresses (one finding, not
// two, per mistake).
func TestDirectiveValidation(t *testing.T) {
	dir := t.TempDir()
	write := func(rel, content string) {
		path := filepath.Join(dir, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module hydra\n\ngo 1.22\n")
	write("internal/sim/sim.go", `package sim

import "errors"

func step() error { return errors.New("x") }

func noReason() {
	//lint:allow errdrop
	step()
}

func unknownCheck() {
	//lint:allow nosuchcheck because reasons
	step()
}

func bareDirective() {
	//lint:allow
	step()
}
`)
	mod, err := LoadModule(dir)
	if err != nil {
		t.Fatalf("LoadModule: %v", err)
	}
	diags := Run(mod, Checks())

	var directive, errdropActive, errdropSuppressed int
	for _, d := range diags {
		switch {
		case d.Check == "directive":
			directive++
		case d.Check == "errdrop" && d.Suppressed:
			errdropSuppressed++
		case d.Check == "errdrop":
			errdropActive++
		}
	}
	// noReason: directive finding, but still suppresses its errdrop.
	// unknownCheck: directive finding, errdrop stays active.
	// bareDirective: directive finding, errdrop stays active.
	if directive != 3 {
		t.Errorf("directive diagnostics = %d, want 3\n%v", directive, diags)
	}
	if errdropSuppressed != 1 {
		t.Errorf("suppressed errdrop = %d, want 1\n%v", errdropSuppressed, diags)
	}
	if errdropActive != 2 {
		t.Errorf("active errdrop = %d, want 2\n%v", errdropActive, diags)
	}
}

// TestDirectivePlacement checks the reach of a well-formed //lint:allow: it
// suppresses findings on its own line and the line directly below, and
// nothing else — a directive separated by a blank line, or placed after the
// finding, does not suppress.
func TestDirectivePlacement(t *testing.T) {
	dir := t.TempDir()
	write := func(rel, content string) {
		path := filepath.Join(dir, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module hydra\n\ngo 1.22\n")
	write("internal/sim/sim.go", `package sim

import "errors"

func step() error { return errors.New("x") }

func farAbove() {
	//lint:allow errdrop separated by a blank line: must not suppress

	step()
}

func sameLine() {
	step() //lint:allow errdrop same-line suppression
}

func lineAbove() {
	//lint:allow errdrop line-above suppression
	step()
}

func after() {
	step()
	//lint:allow errdrop directives do not reach upward: must not suppress
}
`)
	mod, err := LoadModule(dir)
	if err != nil {
		t.Fatalf("LoadModule: %v", err)
	}
	diags := Run(mod, Checks())

	byLine := map[int]Diagnostic{}
	for _, d := range diags {
		if d.Check == "errdrop" {
			byLine[d.Pos.Line] = d
		} else if d.Check == "directive" {
			t.Errorf("unexpected directive diagnostic: %s", d)
		}
	}
	cases := []struct {
		name       string
		line       int
		suppressed bool
	}{
		{"blank line between directive and finding", 10, false},
		{"directive on the finding's own line", 14, true},
		{"directive on the line above", 19, true},
		{"directive after the finding", 23, false},
	}
	for _, tc := range cases {
		d, ok := byLine[tc.line]
		if !ok {
			t.Errorf("%s: no errdrop diagnostic at line %d\n%v", tc.name, tc.line, diags)
			continue
		}
		if d.Suppressed != tc.suppressed {
			t.Errorf("%s: suppressed = %v, want %v (%s)", tc.name, d.Suppressed, tc.suppressed, d)
		}
	}
}

// TestSelfClean asserts the analyzer runs clean over its own repository:
// zero unsuppressed diagnostics on the tree that ships it.
func TestSelfClean(t *testing.T) {
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatalf("FindModuleRoot: %v", err)
	}
	mod, err := LoadModule(root)
	if err != nil {
		t.Fatalf("LoadModule: %v", err)
	}
	for _, d := range Active(Run(mod, Checks())) {
		t.Errorf("unsuppressed finding: %s", d)
	}
}
