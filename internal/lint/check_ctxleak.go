package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// CtxLeak audits goroutine bodies in the scheduling layers for blocking
// channel operations with no cancellation path. A worker goroutine that
// sends or receives outside a select with a ctx.Done()/abort arm (or a
// default) outlives its job when the peer goes away: the fleet scheduler
// calls cancel(), the card loop never observes it, and the goroutine — plus
// the buffers it pins — leaks until process exit. The check walks every
// function transitively reachable from a go statement in the scoped
// packages and flags naked sends, naked receives from non-cancellation
// channels, and selects in which every arm can block forever.
var CtxLeak = &Check{
	Name: "ctxleak",
	Doc:  "goroutine in the scheduling layers blocks on a channel with no ctx.Done/abort select arm",
	Run:  runCtxLeak,
}

// ctxleakPkgs are the layers that spawn long-lived worker goroutines.
var ctxleakPkgs = []string{"internal/serve", "internal/cluster", "internal/runtime"}

func runCtxLeak(pass *Pass) {
	if !pass.InPkg(ctxleakPkgs...) {
		return
	}

	// Reachability is module-wide: a serve goroutine that drives a cluster
	// helper makes that helper goroutine code too. Union the closure over
	// all scoped packages once, then each package pass reports only the
	// declarations it owns.
	reach := pass.Module.cached("ctxleak.reach", func() any {
		idx := buildFuncIndex(pass.Module)
		union := map[*types.Func]bool{}
		for _, pkg := range pass.Module.Pkgs {
			for _, rel := range ctxleakPkgs {
				if pkg.Rel == rel || strings.HasSuffix(pkg.Rel, "/"+rel) {
					for fn := range goReachable(idx, pkg) {
						union[fn] = true
					}
				}
			}
		}
		return union
	}).(map[*types.Func]bool)

	visited := map[*ast.BlockStmt]bool{}
	for _, f := range pass.Pkg.Files {
		// Declared functions reachable from a go statement anywhere in the
		// scoped layers.
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.Pkg.Info.Defs[fd.Name].(*types.Func)
			if !ok || !reach[fn] || visited[fd.Body] {
				continue
			}
			visited[fd.Body] = true
			checkGoroutineBody(pass, fd.Body)
		}
		// Function literals launched directly: `go func() { ... }()`.
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit); ok && !visited[lit.Body] {
				visited[lit.Body] = true
				checkGoroutineBody(pass, lit.Body)
			}
			return true
		})
	}
}

// checkGoroutineBody flags the blocking channel operations of one goroutine
// body that have no cancellation escape.
func checkGoroutineBody(pass *Pass, body *ast.BlockStmt) {
	info := pass.Pkg.Info

	// First pass: index the channel operations that appear as select comm
	// clauses — those are covered (or flagged) via their select, not
	// individually.
	inSelect := map[ast.Node]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		for _, clause := range sel.Body.List {
			cc := clause.(*ast.CommClause)
			if cc.Comm == nil {
				continue
			}
			inSelect[cc.Comm] = true
			switch c := cc.Comm.(type) {
			case *ast.ExprStmt:
				inSelect[ast.Unparen(c.X)] = true
			case *ast.AssignStmt:
				if len(c.Rhs) == 1 {
					inSelect[ast.Unparen(c.Rhs[0])] = true
				}
			case *ast.SendStmt:
				inSelect[c] = true
			}
		}
		return true
	})

	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectStmt:
			if !selectHasEscape(info, n) {
				pass.Reportf(n.Pos(),
					"goroutine select has no cancellation arm: every case can block forever after the job is cancelled — add a ctx.Done()/abort case or a default")
			}
		case *ast.SendStmt:
			if !inSelect[n] {
				pass.Reportf(n.Pos(),
					"goroutine blocks on a bare channel send: if the receiver is cancelled first this goroutine leaks — wrap in a select with a ctx.Done()/abort arm")
			}
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" && !inSelect[n] && !isCancelChan(info, n.X) {
				pass.Reportf(n.Pos(),
					"goroutine blocks on a bare channel receive: if the sender is cancelled first this goroutine leaks — wrap in a select with a ctx.Done()/abort arm")
			}
		case *ast.RangeStmt:
			if t := info.TypeOf(n.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok && !isCancelChan(info, n.X) {
					pass.Reportf(n.Pos(),
						"goroutine ranges over a channel: it blocks until the channel is closed — ensure the producer closes it on cancellation, or select explicitly")
				}
			}
		}
		return true
	})
}

// selectHasEscape reports whether a select statement can always make
// progress under cancellation: a default clause, or at least one arm that
// receives from a cancellation or timeout channel.
func selectHasEscape(info *types.Info, sel *ast.SelectStmt) bool {
	for _, clause := range sel.Body.List {
		cc := clause.(*ast.CommClause)
		if cc.Comm == nil {
			return true // default clause: non-blocking
		}
		var recvFrom ast.Expr
		switch c := cc.Comm.(type) {
		case *ast.ExprStmt:
			if u, ok := ast.Unparen(c.X).(*ast.UnaryExpr); ok && u.Op.String() == "<-" {
				recvFrom = u.X
			}
		case *ast.AssignStmt:
			if len(c.Rhs) == 1 {
				if u, ok := ast.Unparen(c.Rhs[0]).(*ast.UnaryExpr); ok && u.Op.String() == "<-" {
					recvFrom = u.X
				}
			}
		}
		if recvFrom != nil && isCancelChan(info, recvFrom) {
			return true
		}
	}
	return false
}

// isCancelChan recognizes channels that exist to signal cancellation,
// completion, or a timeout: ctx.Done() (any Done() method call), timers
// (time.After, a Timer/Ticker .C field), and channels whose name says what
// they are (done, abort, stop, quit, cancel, closed).
func isCancelChan(info *types.Info, e ast.Expr) bool {
	e = ast.Unparen(e)
	switch e := e.(type) {
	case *ast.CallExpr:
		if sel, ok := ast.Unparen(e.Fun).(*ast.SelectorExpr); ok {
			switch sel.Sel.Name {
			case "Done", "After", "Tick":
				return true
			}
		}
		if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok {
			return cancelishName(id.Name)
		}
	case *ast.SelectorExpr:
		if e.Sel.Name == "C" { // time.Timer / time.Ticker channel
			return true
		}
		return cancelishName(e.Sel.Name)
	case *ast.Ident:
		return cancelishName(e.Name)
	}
	return false
}

func cancelishName(name string) bool {
	n := strings.ToLower(name)
	for _, w := range []string{"done", "abort", "stop", "quit", "cancel", "closed"} {
		if strings.Contains(n, w) {
			return true
		}
	}
	return false
}
