package lint

import (
	"go/ast"
	"go/types"
)

// schedPkgs are the packages executing, simulating or compiling the
// schedule, where a swallowed error desynchronizes the discrete-event
// timeline, leaves peer cards blocked on a handshake that will never
// complete, or silently ships an illegal program (the fhir pass pipeline
// reports level underflow and scale mismatches as errors; dropping one turns
// a compile-time diagnostic into a runtime decryption failure).
var schedPkgs = []string{"internal/sim", "internal/cluster", "internal/runtime", "internal/serve", "internal/fhir"}

// ErrDrop flags discarded error returns in the scheduling/execution
// packages: calls whose error result is ignored entirely (expression
// statements, go/defer calls) or assigned to the blank identifier.
var ErrDrop = &Check{
	Name: "errdrop",
	Doc:  "discarded error return in internal/sim, internal/cluster, internal/runtime, internal/serve, internal/fhir",
	Run:  runErrDrop,
}

func runErrDrop(pass *Pass) {
	if !pass.InPkg(schedPkgs...) {
		return
	}
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				reportDroppedCall(pass, info, n.X, "")
			case *ast.GoStmt:
				reportDroppedCall(pass, info, n.Call, " (in go statement)")
			case *ast.DeferStmt:
				reportDroppedCall(pass, info, n.Call, " (in defer)")
			case *ast.AssignStmt:
				reportBlankErrors(pass, info, n)
			}
			return true
		})
	}
}

// reportDroppedCall reports expr when it is a call whose results include an
// error that the statement form discards.
func reportDroppedCall(pass *Pass, info *types.Info, expr ast.Expr, ctx string) {
	call, ok := expr.(*ast.CallExpr)
	if !ok {
		return
	}
	t := info.TypeOf(call)
	if t == nil {
		return
	}
	switch t := t.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if isErrorType(t.At(i).Type()) {
				pass.Reportf(call.Pos(), "error result of %s discarded%s: a swallowed error desynchronizes the schedule", callName(call), ctx)
				return
			}
		}
	default:
		if isErrorType(t) {
			pass.Reportf(call.Pos(), "error result of %s discarded%s: a swallowed error desynchronizes the schedule", callName(call), ctx)
		}
	}
}

// reportBlankErrors reports error-typed values assigned to the blank
// identifier, e.g. `_ = run()`, `v, _ := parse()`, or `_ = err`.
func reportBlankErrors(pass *Pass, info *types.Info, n *ast.AssignStmt) {
	blankAt := func(i int) (ast.Expr, bool) {
		id, ok := n.Lhs[i].(*ast.Ident)
		if !ok || id.Name != "_" {
			return nil, false
		}
		return n.Lhs[i], true
	}
	if len(n.Lhs) != len(n.Rhs) {
		// Tuple form: x, _ := f().
		if len(n.Rhs) != 1 {
			return
		}
		tup, ok := info.TypeOf(n.Rhs[0]).(*types.Tuple)
		if !ok {
			return
		}
		for i := 0; i < len(n.Lhs) && i < tup.Len(); i++ {
			if lhs, blank := blankAt(i); blank && isErrorType(tup.At(i).Type()) {
				pass.Reportf(lhs.Pos(), "error assigned to blank identifier: handle or annotate it")
			}
		}
		return
	}
	for i := range n.Lhs {
		if lhs, blank := blankAt(i); blank && isErrorType(info.TypeOf(n.Rhs[i])) {
			pass.Reportf(lhs.Pos(), "error assigned to blank identifier: handle or annotate it")
		}
	}
}

func callName(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return "call"
}

var errorIface = types.Universe.Lookup("error").Type()

func isErrorType(t types.Type) bool {
	return t != nil && types.Identical(t, errorIface)
}
