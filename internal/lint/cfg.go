package lint

// Control-flow graph construction: the base layer of the SSA-lite dataflow
// engine. A CFG is built per function body; basic blocks hold the statements
// (and branch-condition expressions) in execution order, and edges follow
// Go's structured control flow — if/else, for/range, switch, type switch,
// select, labeled break/continue, goto, return. The graph is deliberately
// lightweight: no phi nodes, no value numbering. Checks recover
// flow-sensitivity by running a forward fixpoint over the blocks (see
// dataflow.go) with per-variable abstract values joined at merge points.
//
// Modeling choices, in the direction of soundness for the checks built on
// top:
//
//   - Branch conditions appear as ordinary nodes at the end of their block,
//     on both outgoing paths (no path-sensitivity).
//   - A select statement branches to one block per comm clause; the comm
//     statement itself is the first node of its clause block.
//   - defer is kept in place as a node (its call runs late, but its
//     arguments — what the checks inspect — are evaluated at the defer
//     site). panic/Fatal-style calls do not terminate blocks.
//   - goto resolves to its label when the label exists; an unresolvable
//     label (malformed input) falls through.

import (
	"go/ast"
)

// Block is one basic block: a maximal straight-line sequence of nodes.
type Block struct {
	Index int
	Nodes []ast.Node
	Succs []*Block
	Preds []*Block
}

// CFG is the control-flow graph of one function body.
type CFG struct {
	Entry  *Block
	Exit   *Block // the single synthetic exit; returns edge here
	Blocks []*Block
}

// cfgBuilder carries the state of one graph construction.
type cfgBuilder struct {
	g *CFG
	// cur is the block under construction; nil after a terminating
	// statement (return, goto, break) until a new block starts.
	cur *Block
	// break/continue targets, innermost last. label is "" for the plain
	// enclosing loop/switch.
	breaks    []branchTarget
	continues []branchTarget
	labels    map[string]*Block // goto targets
	gotos     []pendingGoto
	// labeled is the name of the label attached to the statement about to
	// be visited (set by the LabeledStmt case, consumed by pendingLabel).
	labeled string
}

type branchTarget struct {
	label string
	block *Block
}

type pendingGoto struct {
	from  *Block
	label string
}

// BuildCFG constructs the control-flow graph of a function body.
func BuildCFG(body *ast.BlockStmt) *CFG {
	b := &cfgBuilder{g: &CFG{}, labels: map[string]*Block{}}
	b.g.Exit = b.newBlock() // allocated first so Exit is stable
	b.g.Entry = b.newBlock()
	b.cur = b.g.Entry
	b.stmtList(body.List)
	b.edgeTo(b.g.Exit) // fall off the end
	for _, pg := range b.gotos {
		if target, ok := b.labels[pg.label]; ok {
			link(pg.from, target)
		}
	}
	return b.g
}

func (b *cfgBuilder) newBlock() *Block {
	blk := &Block{Index: len(b.g.Blocks)}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

func link(from, to *Block) {
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

// edgeTo links the current block (if live) to target and kills the current
// block.
func (b *cfgBuilder) edgeTo(target *Block) {
	if b.cur != nil {
		link(b.cur, target)
		b.cur = nil
	}
}

// startBlock begins a new current block, linking from the previous one when
// it is still live.
func (b *cfgBuilder) startBlock() *Block {
	blk := b.newBlock()
	if b.cur != nil {
		link(b.cur, blk)
	}
	b.cur = blk
	return blk
}

// add appends a node to the current block, opening one if control just
// merged or terminated (unreachable code still gets a block so its nodes are
// visited by the final reporting pass).
func (b *cfgBuilder) add(n ast.Node) {
	if n == nil {
		return
	}
	if b.cur == nil {
		b.cur = b.newBlock()
	}
	b.cur.Nodes = append(b.cur.Nodes, n)
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.IfStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.add(s.Cond)
		condBlk := b.cur
		if condBlk == nil {
			condBlk = b.startBlock()
		}
		// then branch
		b.cur = b.newBlock()
		link(condBlk, b.cur)
		b.stmt(s.Body)
		thenEnd := b.cur
		// else branch
		var elseEnd *Block
		if s.Else != nil {
			b.cur = b.newBlock()
			link(condBlk, b.cur)
			b.stmt(s.Else)
			elseEnd = b.cur
		}
		// merge
		merge := b.newBlock()
		if thenEnd != nil {
			link(thenEnd, merge)
		}
		if s.Else == nil {
			link(condBlk, merge)
		} else if elseEnd != nil {
			link(elseEnd, merge)
		}
		b.cur = merge

	case *ast.ForStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		head := b.startBlock()
		if s.Cond != nil {
			b.add(s.Cond)
		}
		after := b.newBlock()
		if s.Cond != nil {
			link(head, after) // condition false
		}
		b.pushLoop("", after, head)
		body := b.newBlock()
		link(head, body)
		b.cur = body
		b.stmt(s.Body)
		if s.Post != nil {
			b.stmt(s.Post)
		}
		b.edgeTo(head) // back edge
		b.popLoop()
		b.cur = after

	case *ast.RangeStmt:
		b.add(s.X)
		head := b.startBlock()
		if s.Key != nil {
			b.add(s.Key)
		}
		if s.Value != nil {
			b.add(s.Value)
		}
		after := b.newBlock()
		link(head, after) // range exhausted
		b.pushLoop("", after, head)
		body := b.newBlock()
		link(head, body)
		b.cur = body
		b.stmt(s.Body)
		b.edgeTo(head)
		b.popLoop()
		b.cur = after

	case *ast.SwitchStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		if s.Tag != nil {
			b.add(s.Tag)
		}
		b.caseDispatch("", s.Body.List, hasDefaultClause(s.Body.List))

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.add(s.Assign)
		b.caseDispatch("", s.Body.List, hasDefaultClause(s.Body.List))

	case *ast.SelectStmt:
		head := b.cur
		if head == nil {
			head = b.startBlock()
		}
		after := b.newBlock()
		b.breaks = append(b.breaks, branchTarget{b.pendingLabel(), after})
		anyClause := false
		for _, cl := range s.Body.List {
			comm, ok := cl.(*ast.CommClause)
			if !ok {
				continue
			}
			anyClause = true
			b.cur = b.newBlock()
			link(head, b.cur)
			if comm.Comm != nil {
				b.stmt(comm.Comm)
			}
			b.stmtList(comm.Body)
			b.edgeTo(after)
		}
		b.breaks = b.breaks[:len(b.breaks)-1]
		if !anyClause {
			link(head, after)
		}
		b.cur = after

	case *ast.LabeledStmt:
		// Record the label for gotos; loops/switches read their own label
		// via labelOf on the parent, so just open a fresh block here.
		blk := b.startBlock()
		b.labels[s.Label.Name] = blk
		b.labeled = s.Label.Name
		b.stmt(s.Stmt)
		b.labeled = ""

	case *ast.BranchStmt:
		b.add(s)
		switch s.Tok.String() {
		case "break":
			if t := b.findTarget(b.breaks, s.Label); t != nil {
				b.edgeTo(t)
			} else {
				b.cur = nil
			}
		case "continue":
			if t := b.findTarget(b.continues, s.Label); t != nil {
				b.edgeTo(t)
			} else {
				b.cur = nil
			}
		case "goto":
			if b.cur != nil && s.Label != nil {
				b.gotos = append(b.gotos, pendingGoto{from: b.cur, label: s.Label.Name})
			}
			b.cur = nil
		case "fallthrough":
			// handled structurally by caseDispatch (approximated as a jump
			// to the merge; the next clause is reachable from the dispatch
			// head anyway, so facts still merge there).
		}

	case *ast.ReturnStmt:
		b.add(s)
		b.edgeTo(b.g.Exit)

	default:
		// Assignments, declarations, expression statements, sends, defers,
		// go statements, incdec, empty: straight-line nodes.
		b.add(s)
	}
}

// The builder tracks the pending label out-of-band: LabeledStmt sets
// b.labeled before visiting its statement, and the loop/switch/select cases
// consume it through pendingLabel.

func (b *cfgBuilder) pendingLabel() string {
	l := b.labeled
	b.labeled = ""
	return l
}

func (b *cfgBuilder) pushLoop(label string, breakTo, continueTo *Block) {
	if label == "" {
		label = b.pendingLabel()
	}
	b.breaks = append(b.breaks, branchTarget{label, breakTo})
	b.continues = append(b.continues, branchTarget{label, continueTo})
}

func (b *cfgBuilder) popLoop() {
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.continues = b.continues[:len(b.continues)-1]
}

// findTarget resolves a break/continue label against a target stack.
func (b *cfgBuilder) findTarget(stack []branchTarget, label *ast.Ident) *Block {
	if len(stack) == 0 {
		return nil
	}
	if label == nil {
		return stack[len(stack)-1].block
	}
	for i := len(stack) - 1; i >= 0; i-- {
		if stack[i].label == label.Name {
			return stack[i].block
		}
	}
	return nil
}

// caseDispatch builds the shared switch/type-switch shape: a dispatch block
// fanning out to one block per clause, all merging below.
func (b *cfgBuilder) caseDispatch(label string, clauses []ast.Stmt, hasDefault bool) {
	head := b.cur
	if head == nil {
		head = b.startBlock()
	}
	after := b.newBlock()
	if label == "" {
		label = b.pendingLabel()
	}
	b.breaks = append(b.breaks, branchTarget{label, after})
	for _, cl := range clauses {
		cc, ok := cl.(*ast.CaseClause)
		if !ok {
			continue
		}
		b.cur = b.newBlock()
		link(head, b.cur)
		for _, e := range cc.List {
			b.add(e)
		}
		b.stmtList(cc.Body)
		b.edgeTo(after)
	}
	b.breaks = b.breaks[:len(b.breaks)-1]
	if !hasDefault {
		link(head, after) // no clause matched
	}
	b.cur = after
}

func hasDefaultClause(clauses []ast.Stmt) bool {
	for _, cl := range clauses {
		if cc, ok := cl.(*ast.CaseClause); ok && cc.List == nil {
			return true
		}
	}
	return false
}
