// Package lint is hydra-lint: a domain-specific static analyzer enforcing
// the repository's FHE and concurrency invariants. The accelerator papers
// this repo reproduces get their correctness guarantees from hardware
// datapaths (every coefficient passes through a modular-reduction unit,
// every transfer through the DTU queues); in a Go substrate the equivalent
// is mechanical enforcement, so the invariants survive refactoring.
//
// The analyzer is self-contained: packages are loaded and type-checked with
// the standard library only (see load.go). Checks report Diagnostics;
// findings that are intentional are suppressed in-source with
//
//	//lint:allow <check>[,<check>...] <reason>
//
// placed on the offending line or on the line directly above it. The reason
// is mandatory — an allow without one is itself reported (check "directive").
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// A Diagnostic is one finding at a position.
type Diagnostic struct {
	Pos     token.Position
	Check   string
	Message string
	// Suppressed marks findings covered by a //lint:allow directive; they
	// are retained so tooling can audit what is being tolerated and why.
	Suppressed bool
	Reason     string // the directive's reason, when suppressed
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Check, d.Message)
}

// A Check is one named analysis over a single package.
type Check struct {
	Name string
	Doc  string
	Run  func(pass *Pass)
}

// Pass carries one (check, package) pairing.
type Pass struct {
	Module *Module
	Pkg    *Package

	check   *Check
	collect func(Diagnostic)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.collect(Diagnostic{
		Pos:     p.Module.Fset.Position(pos),
		Check:   p.check.Name,
		Message: fmt.Sprintf(format, args...),
	})
}

// InPkg reports whether the package under analysis is one of the given
// module-relative paths or nested below one of them.
func (p *Pass) InPkg(rels ...string) bool {
	for _, rel := range rels {
		if p.Pkg.Rel == rel || strings.HasPrefix(p.Pkg.Rel, rel+"/") {
			return true
		}
	}
	return false
}

// Checks returns the full registry in reporting order.
func Checks() []*Check {
	return []*Check{
		RawMod, LazyBound, PoolLeak, RawGo, FloatExact, ErrDrop, DeadAssign,
		LazyDomain, LevelScale, CtxLeak, LockHeld,
	}
}

// CheckNames returns the names of all registered checks.
func CheckNames() []string {
	var names []string
	for _, c := range Checks() {
		names = append(names, c.Name)
	}
	return names
}

// allowDirective is one parsed //lint:allow comment.
type allowDirective struct {
	file   string
	line   int
	checks map[string]bool
	reason string
}

// Run executes the given checks over every package of the module and returns
// all diagnostics (suppressed ones included), sorted by position. Malformed
// or unknown-check allow directives are reported under the "directive"
// pseudo-check, which cannot be suppressed.
func Run(mod *Module, checks []*Check) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range mod.Pkgs {
		for _, c := range checks {
			pass := &Pass{
				Module:  mod,
				Pkg:     pkg,
				check:   c,
				collect: func(d Diagnostic) { diags = append(diags, d) },
			}
			c.Run(pass)
		}
	}

	directives, dirDiags := collectDirectives(mod)
	for i := range diags {
		d := &diags[i]
		for _, dir := range directives {
			if dir.file != d.Pos.Filename || !dir.checks[d.Check] {
				continue
			}
			// A directive covers its own line and the line below it (for
			// standalone comments placed above the offending statement).
			if d.Pos.Line == dir.line || d.Pos.Line == dir.line+1 {
				d.Suppressed = true
				d.Reason = dir.reason
				break
			}
		}
	}
	diags = append(diags, dirDiags...)
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Check < b.Check
	})
	return diags
}

// Active filters diags down to the unsuppressed findings.
func Active(diags []Diagnostic) []Diagnostic {
	var out []Diagnostic
	for _, d := range diags {
		if !d.Suppressed {
			out = append(out, d)
		}
	}
	return out
}

// collectDirectives parses every //lint:allow comment in the module,
// validating it against the check registry.
func collectDirectives(mod *Module) ([]allowDirective, []Diagnostic) {
	known := map[string]bool{}
	for _, name := range CheckNames() {
		known[name] = true
	}
	var dirs []allowDirective
	var diags []Diagnostic
	report := func(pos token.Position, format string, args ...any) {
		diags = append(diags, Diagnostic{
			Pos:     pos,
			Check:   "directive",
			Message: fmt.Sprintf(format, args...),
		})
	}
	for _, pkg := range mod.Pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text, ok := strings.CutPrefix(c.Text, "//lint:allow")
					if !ok {
						continue
					}
					pos := mod.Fset.Position(c.Pos())
					if text != "" && text[0] != ' ' && text[0] != '\t' {
						continue // e.g. //lint:allowother — not ours
					}
					fields := strings.Fields(text)
					if len(fields) == 0 {
						report(pos, "allow directive names no check")
						continue
					}
					d := allowDirective{
						file:   pos.Filename,
						line:   pos.Line,
						checks: map[string]bool{},
						reason: strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(text), fields[0])),
					}
					for _, name := range strings.Split(fields[0], ",") {
						if name == "" {
							continue
						}
						if !known[name] {
							report(pos, "allow directive names unknown check %q (known: %s)",
								name, strings.Join(CheckNames(), ", "))
							continue
						}
						d.checks[name] = true
					}
					if d.reason == "" {
						report(pos, "allow directive for %s gives no reason", fields[0])
					}
					if len(d.checks) > 0 {
						dirs = append(dirs, d)
					}
				}
			}
		}
	}
	return dirs, diags
}

// inspectWithStack walks the AST rooted at n, calling fn with each node and
// the stack of its ancestors (outermost first, n's parent last). Returning
// false from fn prunes the subtree.
func inspectWithStack(root ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		ok := fn(n, stack)
		stack = append(stack, n)
		if !ok {
			// Still push/popped symmetrically: Inspect will not descend, so
			// the nil pop for this node never comes; pop eagerly instead.
			stack = stack[:len(stack)-1]
		}
		return ok
	})
}
