package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

func parseBody(t *testing.T, body string) *ast.BlockStmt {
	t.Helper()
	src := "package p\nfunc f(cond bool, n int, ch chan int, done chan struct{}) {\n" + body + "\n}\n"
	f, err := parser.ParseFile(token.NewFileSet(), "t.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return f.Decls[0].(*ast.FuncDecl).Body
}

// TestBuildCFGShapes asserts the structural properties the solver relies on:
// branches diverge and re-merge, loops carry a back edge, and every return
// reaches the synthetic exit.
func TestBuildCFGShapes(t *testing.T) {
	t.Run("if-else merges", func(t *testing.T) {
		cfg := BuildCFG(parseBody(t, `
	x := 0
	if cond {
		x = 1
	} else {
		x = 2
	}
	_ = x`))
		// entry(+cond), then, else, merge, exit at minimum.
		if len(cfg.Blocks) < 5 {
			t.Fatalf("blocks = %d, want >= 5", len(cfg.Blocks))
		}
		if got := len(cfg.Exit.Preds); got == 0 {
			t.Fatalf("exit has no predecessors")
		}
		// The two branch blocks must share a successor (the merge block).
		var branchSucc *Block
		for _, b := range cfg.Blocks {
			if len(b.Preds) == 2 && b != cfg.Exit {
				branchSucc = b
			}
		}
		if branchSucc == nil {
			t.Fatalf("no merge block with two predecessors")
		}
	})

	t.Run("for loop has back edge", func(t *testing.T) {
		cfg := BuildCFG(parseBody(t, `
	for i := 0; i < n; i++ {
		_ = i
	}`))
		backEdge := false
		index := map[*Block]int{}
		for i, b := range cfg.Blocks {
			index[b] = i
		}
		for _, b := range cfg.Blocks {
			for _, succ := range b.Succs {
				if index[succ] <= index[b] && succ != cfg.Exit {
					backEdge = true
				}
			}
		}
		if !backEdge {
			t.Fatalf("loop CFG has no back edge")
		}
	})

	t.Run("select fans out per clause", func(t *testing.T) {
		cfg := BuildCFG(parseBody(t, `
	select {
	case <-ch:
	case <-done:
	}`))
		fan := 0
		for _, b := range cfg.Blocks {
			if len(b.Succs) >= 2 {
				fan = len(b.Succs)
			}
		}
		if fan < 2 {
			t.Fatalf("select dispatch fan-out = %d, want >= 2", fan)
		}
	})

	t.Run("return reaches exit", func(t *testing.T) {
		cfg := BuildCFG(parseBody(t, `
	if cond {
		return
	}
	_ = n`))
		if len(cfg.Exit.Preds) < 2 {
			t.Fatalf("exit preds = %d, want >= 2 (return + fallthrough)", len(cfg.Exit.Preds))
		}
	})
}

// TestFlowFixpoint runs the generic solver over a two-point lattice
// (0 = untouched, 1 = touched) and asserts path-sensitive joins: a variable
// set on only one branch joins to touched at the merge, and facts survive a
// loop's back edge.
func TestFlowFixpoint(t *testing.T) {
	body := parseBody(t, `
	x := 0
	if cond {
		x = 1
	}
	_ = x
	for i := 0; i < n; i++ {
		x = 1
	}
	_ = x`)

	fset := token.NewFileSet()
	// Re-resolve with types so objectOf works: simplest via a throwaway parse
	// + types.Check is heavy here; instead track by identifier name, which is
	// all this structural test needs.
	_ = fset
	type fact = int8
	touched := map[string]bool{}
	f := &flow[fact]{
		cfg:      BuildCFG(body),
		joinFact: func(a, b fact) fact { return max(a, b) },
		transfer: func(n ast.Node, s state[fact], report bool) {
			// Not a real transfer over objects — just proves the solver
			// visits every node and terminates on loops.
			if report {
				if as, ok := n.(*ast.AssignStmt); ok {
					if id, ok := as.Lhs[0].(*ast.Ident); ok {
						touched[id.Name] = true
					}
				}
			}
		},
	}
	f.solve()
	if !touched["x"] || !touched["i"] {
		t.Fatalf("solver did not replay all assignments: %v", touched)
	}
}
