package lint

// Forward dataflow over the CFG: the solver half of the SSA-lite engine.
// There are no phi nodes; instead each check defines a small abstract-domain
// lattice (a comparable fact type plus a join), the solver iterates the
// blocks to a fixpoint with per-variable facts joined pointwise at merge
// points, and a final in-order reporting pass replays each block from its
// converged in-state so diagnostics see flow-sensitive facts exactly once.

import (
	"go/ast"
	"go/types"
)

// state maps variables (types.Object) to a check-specific abstract fact.
// A missing key means the fact type's zero value, which every lattice here
// uses as its "unknown / bottom" element — so states stay sparse.
type state[F comparable] map[types.Object]F

func (s state[F]) clone() state[F] {
	out := make(state[F], len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}

// join merges other into s pointwise, reporting whether s changed.
func (s state[F]) join(other state[F], joinFact func(a, b F) F) bool {
	changed := false
	var zero F
	for k, v := range other {
		old, ok := s[k]
		if !ok {
			old = zero
		}
		nv := joinFact(old, v)
		if nv != old || !ok {
			s[k] = nv
			changed = true
		}
	}
	return changed
}

// flow is one forward dataflow problem over one function body.
type flow[F comparable] struct {
	cfg *CFG
	// joinFact merges two facts for the same variable at a merge point.
	joinFact func(a, b F) F
	// transfer applies one node's effect to the state in place. When report
	// is true the pass is the final in-order replay, and the transfer may
	// emit diagnostics; during fixpoint iteration report is false.
	transfer func(n ast.Node, s state[F], report bool)
	// entry seeds the state at function entry (may be nil).
	entry state[F]
}

// solve runs the fixpoint then the reporting pass, and returns the state at
// the synthetic exit block (what a caller of this function observes).
func (f *flow[F]) solve() state[F] {
	in := make(map[*Block]state[F], len(f.cfg.Blocks))
	for _, b := range f.cfg.Blocks {
		in[b] = state[F]{}
	}
	if f.entry != nil {
		in[f.cfg.Entry] = f.entry.clone()
	}

	// Worklist fixpoint. Block count is small (per function); a simple
	// FIFO with membership dedup converges fast.
	work := make([]*Block, 0, len(f.cfg.Blocks))
	queued := make(map[*Block]bool, len(f.cfg.Blocks))
	push := func(b *Block) {
		if !queued[b] {
			queued[b] = true
			work = append(work, b)
		}
	}
	for _, b := range f.cfg.Blocks {
		push(b) // seed all blocks so unreachable code is still transferred
	}
	steps := 0
	const maxSteps = 100000 // hard backstop; real functions converge in a few sweeps
	for len(work) > 0 && steps < maxSteps {
		steps++
		b := work[0]
		work = work[1:]
		queued[b] = false
		out := in[b].clone()
		for _, n := range b.Nodes {
			f.transfer(n, out, false)
		}
		for _, succ := range b.Succs {
			if in[succ].join(out, f.joinFact) {
				push(succ)
			}
		}
	}

	// Reporting pass: replay each block once from its converged in-state.
	for _, b := range f.cfg.Blocks {
		s := in[b].clone()
		for _, n := range b.Nodes {
			f.transfer(n, s, true)
		}
	}
	return in[f.cfg.Exit]
}

// objectOf resolves an identifier expression to its variable object, looking
// through parentheses. Returns nil for anything that is not a plain
// identifier naming a variable.
func objectOf(info *types.Info, expr ast.Expr) types.Object {
	expr = ast.Unparen(expr)
	id, ok := expr.(*ast.Ident)
	if !ok {
		return nil
	}
	if obj := info.Defs[id]; obj != nil {
		return obj
	}
	return info.Uses[id]
}

// rootObject resolves the base variable of an lvalue-ish expression:
// x, x[i], x.f, *x all root at x. Used for weak updates on aggregates.
func rootObject(info *types.Info, expr ast.Expr) types.Object {
	for {
		expr = ast.Unparen(expr)
		switch e := expr.(type) {
		case *ast.IndexExpr:
			expr = e.X
		case *ast.SelectorExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		case *ast.SliceExpr:
			expr = e.X
		default:
			return objectOf(info, expr)
		}
	}
}

// funcBodies yields every function body in a file with its enclosing
// declaration name: top-level functions and methods, then function literals
// (labeled by their enclosing function). Each body is visited once.
func funcBodies(f *ast.File, visit func(name string, decl *ast.FuncDecl, body *ast.BlockStmt)) {
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		visit(fd.Name.Name, fd, fd.Body)
	}
}
