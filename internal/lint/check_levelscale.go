package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
)

// ctFact is the abstract ciphertext state of the levelscale lattice. Levels
// and scales are tracked relatively: the first time a ciphertext variable
// meets an evaluator op it is bound to the baseline (0 level drops, 0
// pending rescales, degree 1), and every op moves it from there. The lattice
// is unknown < known facts < conflict: joining two different histories
// yields the conflict element, which poisons everything it touches — the
// analysis only speaks when a value's whole history is visible and
// path-independent. (Conflict must be absorbing, not collapse to unknown:
// an unknown is re-baselined at its next use, which would fabricate a level
// relation and oscillate the fixpoint.)
type ctFact struct {
	known    bool
	conflict bool
	drops    int8 // Rescale/DropLevel steps below the baseline
	pend     int8 // multiplications not yet closed by a Rescale (scale = Δ^(1+pend))
	deg      int8 // ciphertext degree: 2 after a non-relinearized multiplication
}

var (
	ctBaseline = ctFact{known: true, drops: 0, pend: 0, deg: 1}
	ctConflict = ctFact{conflict: true}
)

func joinCt(a, b ctFact) ctFact {
	switch {
	case a == b:
		return a
	case !a.known && !a.conflict:
		return b
	case !b.known && !b.conflict:
		return a
	default:
		return ctConflict
	}
}

// LevelScale tracks ciphertext level, scale and degree through the
// ckks/hefloat evaluator API on the SSA-lite engine. It flags the three
// modulus-chain protocol violations the conformance harness can only catch
// probabilistically: binary ops whose operands have diverged in level or in
// pending rescales (the scale mismatch panics at run time, the level
// mismatch silently burns a copy+drop), a multiplication applied to a value
// that already carries an unrescaled product (scale reaches Δ³ and overflows
// the modulus budget), and a multiplication applied to a degree-2 ciphertext
// that was never relinearized.
var LevelScale = &Check{
	Name: "levelscale",
	Doc:  "ciphertext level/scale/degree protocol violation across evaluator calls (mismatched operands, missing Rescale, missing Relinearize)",
	Run:  runLevelScale,
}

// ckksPkg is the evaluator's home package; the check runs on its consumers.
const ckksPkg = "internal/ckks"

func runLevelScale(pass *Pass) {
	if pass.InPkg(ckksPkg) {
		// The evaluator implements the ops; its internal polynomial surgery
		// is validated by the noise and conformance suites.
		return
	}
	for _, f := range pass.Pkg.Files {
		funcBodies(f, func(name string, decl *ast.FuncDecl, body *ast.BlockStmt) {
			run := &ctRun{info: pass.Pkg.Info, reportf: pass.Reportf}
			run.analyze(body, nil)
		})
	}
}

// ctRun analyzes one function body.
type ctRun struct {
	info    *types.Info
	reportf func(pos token.Pos, format string, args ...any)
}

func (r *ctRun) analyze(body *ast.BlockStmt, entry state[ctFact]) state[ctFact] {
	f := &flow[ctFact]{
		cfg:      BuildCFG(body),
		joinFact: joinCt,
		entry:    entry,
		transfer: func(n ast.Node, s state[ctFact], report bool) {
			r.node(n, s, report)
		},
	}
	return f.solve()
}

func (r *ctRun) flag(rep bool, pos token.Pos, format string, args ...any) {
	if rep && r.reportf != nil {
		r.reportf(pos, format, args...)
	}
}

func (r *ctRun) node(n ast.Node, s state[ctFact], rep bool) {
	switch n := n.(type) {
	case *ast.AssignStmt:
		switch {
		case len(n.Lhs) == len(n.Rhs):
			facts := make([]ctFact, len(n.Rhs))
			for i, rhs := range n.Rhs {
				facts[i] = r.eval(rhs, s, rep)
			}
			for i, lhs := range n.Lhs {
				r.assign(lhs, facts[i], s)
			}
		case len(n.Rhs) == 1:
			r.eval(n.Rhs[0], s, rep)
			for _, lhs := range n.Lhs {
				r.assign(lhs, ctFact{}, s)
			}
		}
	case *ast.ExprStmt:
		r.eval(n.X, s, rep)
	case *ast.ReturnStmt:
		for _, res := range n.Results {
			r.eval(res, s, rep)
		}
	case *ast.SendStmt:
		r.eval(n.Value, s, rep)
	case *ast.DeferStmt:
		r.eval(n.Call, s, rep)
	case *ast.GoStmt:
		r.eval(n.Call, s, rep)
	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for i, name := range vs.Names {
						f := ctFact{}
						if i < len(vs.Values) && len(vs.Values) == len(vs.Names) {
							f = r.eval(vs.Values[i], s, rep)
						}
						if obj := r.info.Defs[name]; obj != nil {
							s[obj] = f
						}
					}
				}
			}
		}
	case ast.Expr:
		r.eval(n, s, rep)
	}
}

func (r *ctRun) assign(lhs ast.Expr, f ctFact, s state[ctFact]) {
	lhs = ast.Unparen(lhs)
	if id, ok := lhs.(*ast.Ident); ok {
		if id.Name == "_" {
			return
		}
		if obj := objectOf(r.info, id); obj != nil {
			s[obj] = f
		}
		return
	}
	// Element/field stores: the aggregate's history is no longer a single
	// ciphertext's — drop tracking for the root.
	if root := rootObject(r.info, lhs); root != nil {
		s[root] = ctFact{}
	}
}

// eval computes the fact of an expression, dispatching evaluator calls.
func (r *ctRun) eval(e ast.Expr, s state[ctFact], rep bool) ctFact {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if obj := objectOf(r.info, e); obj != nil {
			return s[obj]
		}
	case *ast.CallExpr:
		return r.call(e, s, rep)
	case *ast.UnaryExpr:
		return r.eval(e.X, s, rep)
	case *ast.StarExpr:
		return r.eval(e.X, s, rep)
	case *ast.FuncLit:
		sub := &ctRun{info: r.info}
		if rep {
			sub.reportf = r.reportf
		}
		exit := sub.analyze(e.Body, s.clone())
		for obj, f := range exit {
			s[obj] = joinCt(s[obj], f)
		}
	case *ast.CompositeLit:
		for _, elt := range e.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				elt = kv.Value
			}
			r.eval(elt, s, rep)
		}
	case *ast.IndexExpr:
		r.eval(e.Index, s, rep)
	case *ast.BinaryExpr:
		r.eval(e.X, s, rep)
		r.eval(e.Y, s, rep)
	}
	return ctFact{}
}

// operand resolves a ciphertext argument. tracked reports whether the value
// already had a known history before this op; an untracked, unconflicted
// value is bound to the baseline so later ops share a frame of reference.
// Alignment checks must gate on tracked — comparing a tracked fact against
// a fresh baseline would fabricate a level relation the program never made.
func (r *ctRun) operand(e ast.Expr, s state[ctFact], rep bool) (f ctFact, tracked bool) {
	f = r.eval(e, s, rep)
	if f.known {
		return f, true
	}
	if f.conflict {
		return f, false
	}
	f = ctBaseline
	if obj := objectOf(r.info, e); obj != nil {
		s[obj] = f
	}
	return f, false
}

// call interprets one call expression, applying the evaluator-op table when
// the callee is an evaluator operation over ciphertext operands.
func (r *ctRun) call(call *ast.CallExpr, s state[ctFact], rep bool) ctFact {
	name := calleeName(call)

	// Collect ciphertext-typed operands: a ciphertext receiver (ct.CopyNew,
	// ct.DropLevel) counts as the first operand.
	var cts []ast.Expr
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && isCiphertextExpr(r.info, sel.X) {
		cts = append(cts, sel.X)
	}
	for _, a := range call.Args {
		if isCiphertextExpr(r.info, a) {
			cts = append(cts, a)
		}
	}

	if len(cts) == 0 {
		// Not an evaluator op over tracked values: evaluate args for nested
		// calls and move on.
		for _, a := range call.Args {
			r.eval(a, s, rep)
		}
		return ctFact{}
	}

	// Evaluate non-ciphertext args for nested calls.
	for _, a := range call.Args {
		if !isCiphertextExpr(r.info, a) {
			r.eval(a, s, rep)
		}
	}

	switch name {
	case "DropLevel":
		f, _ := r.operand(cts[0], s, rep)
		if !f.conflict {
			f.drops += int8(constIntOr(r.info, call.Args, 1))
		}
		r.assign(cts[0], f, s)
		return ctFact{}

	case "Add", "Sub", "AddPlain", "SubPlain", "AddConst", "SubConst":
		if len(cts) >= 2 {
			a, aTracked := r.operand(cts[0], s, rep)
			b, bTracked := r.operand(cts[1], s, rep)
			if aTracked && bTracked {
				r.checkAligned(call, name, a, b, rep)
			}
			if a.conflict || b.conflict {
				return ctConflict
			}
			return ctFact{known: true, drops: maxI8(a.drops, b.drops), pend: a.pend, deg: maxI8(a.deg, b.deg)}
		}
		f, _ := r.operand(cts[0], s, rep)
		return f

	case "AddAcc":
		// AddAcc(b, acc): acc += b in place.
		if len(cts) >= 2 {
			b, bTracked := r.operand(cts[0], s, rep)
			acc, accTracked := r.operand(cts[1], s, rep)
			if bTracked && accTracked {
				r.checkAligned(call, name, b, acc, rep)
			}
			out := ctConflict
			if !b.conflict && !acc.conflict {
				out = ctFact{known: true, drops: maxI8(b.drops, acc.drops), pend: acc.pend, deg: maxI8(b.deg, acc.deg)}
			}
			r.assign(cts[1], out, s)
		}
		return ctFact{}

	case "Mul", "MulRelin", "MulPlain", "MulByConst", "MulNew":
		// No operand alignment check here: multiplication composes scales
		// (Δa·Δb is legal) and the evaluator aligns levels — the per-operand
		// pend/deg checks below catch the real violations.
		facts := make([]ctFact, len(cts))
		for i, ct := range cts {
			f, _ := r.operand(ct, s, rep)
			facts[i] = f
			if f.deg >= 2 {
				r.flag(rep, ct.Pos(),
					"%s on a degree-2 ciphertext (an earlier Mul was never relinearized): Relinearize first", name)
			}
			if f.pend >= 1 {
				r.flag(rep, ct.Pos(),
					"%s on a value already carrying %d unrescaled product(s): the scale reaches Δ^%d and overflows the modulus budget — Rescale first",
					name, f.pend, f.pend+2)
			}
		}
		out := ctFact{known: true, deg: 1}
		for _, f := range facts {
			if f.conflict {
				return ctConflict
			}
			out.drops = maxI8(out.drops, f.drops)
			out.pend = maxI8(out.pend, f.pend)
		}
		out.pend++
		if name == "Mul" || name == "MulNew" {
			out.deg = 2 // not relinearized
		}
		return out

	case "MulPlainAcc":
		// MulPlainAcc(ct, pt, acc): acc += ct ⊙ pt.
		if len(cts) >= 2 {
			f, fTracked := r.operand(cts[0], s, rep)
			acc, accTracked := r.operand(cts[len(cts)-1], s, rep)
			out := ctConflict
			if !f.conflict && !acc.conflict {
				prod := ctFact{known: true, drops: f.drops, pend: f.pend + 1, deg: f.deg}
				if fTracked && accTracked {
					r.checkAligned(call, name, prod, acc, rep)
				}
				out = joinCt(prod, acc)
			}
			r.assign(cts[len(cts)-1], out, s)
		}
		return ctFact{}

	case "Relinearize":
		f, _ := r.operand(cts[0], s, rep)
		if !f.conflict {
			f.deg = 1
		}
		return f

	case "Rescale":
		f, _ := r.operand(cts[0], s, rep)
		if !f.conflict {
			f.drops++
			if f.pend > 0 {
				f.pend--
			}
		}
		return f

	case "Rotate", "Conjugate", "Neg", "CopyNew", "RotateExt":
		f, _ := r.operand(cts[0], s, rep)
		return f

	default:
		// Unknown consumer (serialization, helpers, AddAligned, bootstrap,
		// RaiseModulus): evaluate and stop tracking the result. Ciphertext
		// args keep their facts — the convention is that evaluator-style
		// helpers return fresh ciphertexts rather than mutating inputs.
		for _, ct := range cts {
			r.eval(ct, s, rep)
		}
		return ctFact{}
	}
}

// checkAligned reports level and scale misalignment between two operands of
// a binary op. Callers gate on both operands being tracked.
func (r *ctRun) checkAligned(call *ast.CallExpr, name string, a, b ctFact, rep bool) {
	if !a.known || !b.known {
		return
	}
	if a.pend != b.pend {
		r.flag(rep, call.Pos(),
			"%s operands carry different pending rescales (%d vs %d): their scales differ (Δ^%d vs Δ^%d) and the evaluator will reject them — Rescale the deeper operand first",
			name, a.pend, b.pend, a.pend+1, b.pend+1)
		return
	}
	if a.drops != b.drops {
		r.flag(rep, call.Pos(),
			"%s operands sit at different levels (%d vs %d drops below their common source): the implicit align copies and truncates — DropLevel/Rescale explicitly",
			name, a.drops, b.drops)
	}
}

// isCiphertextExpr reports whether e's static type is a (pointer to a)
// ciphertext.
func isCiphertextExpr(info *types.Info, e ast.Expr) bool {
	t := info.TypeOf(e)
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	name := named.Obj().Name()
	return name == "Ciphertext" || name == "ExtCiphertext"
}

// constIntOr extracts the first argument as a small constant int, or def.
func constIntOr(info *types.Info, args []ast.Expr, def int) int {
	if len(args) == 0 {
		return def
	}
	tv, ok := info.Types[args[0]]
	if !ok || tv.Value == nil {
		return def
	}
	if n, err := strconv.Atoi(tv.Value.ExactString()); err == nil && n >= 0 && n < 64 {
		return n
	}
	return def
}

func maxI8(a, b int8) int8 {
	if a > b {
		return a
	}
	return b
}
