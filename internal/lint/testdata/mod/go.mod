module hydra

go 1.22
