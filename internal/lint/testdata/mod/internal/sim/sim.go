// Package sim exercises the errdrop and deadassign checks inside the
// scheduling zone.
package sim

import "errors"

func step() error { return errors.New("card failure") }

func value() (int, error) { return 0, errors.New("no value") }

// errdrop: call statement discarding the error.
func badDropExpr() {
	step() // want errdrop
}

// errdrop: error assigned to blank.
func badDropBlank() {
	_ = step() // want errdrop
}

// errdrop: blank at the error position of a tuple.
func badDropTuple() int {
	v, _ := value() // want errdrop
	return v
}

// errdrop: discarded in a go statement.
func badDropGo() {
	go step() // want errdrop
}

// errdrop: handled errors stay silent.
func okHandled() error {
	if err := step(); err != nil {
		return err
	}
	return nil
}

// errdrop: a suppressed case.
func okAnnotated() {
	//lint:allow errdrop testdata: best-effort notification, failure handled by the barrier
	step()
}

// deadassign: a dead variable kept alive.
func badDead(n int) int {
	m := n + 1
	_ = m // want deadassign
	return n
}

// deadassign: a suppressed load-bearing blank.
func okAnnotatedDead(n int) {
	m := n + 1
	//lint:allow deadassign testdata: m is load-bearing for a build-tag variant of this file
	_ = m
}

// deadassign: interface-satisfaction declarations are not assignments.
var _ error = (*myErr)(nil)

type myErr struct{}

func (*myErr) Error() string { return "" }
