// Package serve exercises the ctxleak and lockheld checks: worker
// goroutines must keep a cancellation arm on every blocking channel
// operation, and mutex-guarded struct fields must stay guarded.
package serve

import (
	"context"
	"sync"
)

// ctxleak: a bare send in a goroutine blocks forever once the receiver is
// cancelled.
func badSend(out chan int) {
	go func() {
		out <- 1 // want ctxleak
	}()
}

// ctxleak: a select in which every arm can block forever.
func badSelect(a, b chan int) {
	go func() {
		select { // want ctxleak
		case <-a:
		case b <- 1:
		}
	}()
}

// pump is only ever run on a goroutine (see badReachable); its bare send is
// a leak even though the go statement is in another function.
func pump(ch chan int) {
	ch <- 2 // want ctxleak
}

// ctxleak: reachability through the call graph.
func badReachable(ch chan int) {
	go pump(ch)
}

// ctxleak: the sanctioned shape — the blocking send shares a select with a
// ctx.Done arm.
func okSelect(ctx context.Context, out chan int) {
	go func() {
		select {
		case out <- 1:
		case <-ctx.Done():
		}
	}()
}

// ctxleak: waiting on a done/abort channel is itself the cancellation wait.
func okDoneWait(done chan struct{}) {
	go func() {
		<-done
	}()
}

// ctxleak: a suppressed case — the channel is buffered by construction, so
// the send cannot block.
func okBufferedAllowed(out chan int) {
	go func() {
		//lint:allow ctxleak testdata: channel is buffered with capacity for every worker
		out <- 1
	}()
}

// counter is a mutex-guarded aggregate: n and hits are written under mu at
// every site but the flagged ones.
type counter struct {
	mu   sync.Mutex
	n    int
	hits int
}

func (c *counter) inc() {
	c.mu.Lock()
	c.n++
	c.hits++
	c.mu.Unlock()
}

func (c *counter) add(d int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n += d
	c.hits++
}

// The *Locked suffix means the caller holds mu (the dispatchLocked
// convention), so these accesses count as guarded.
func (c *counter) snapshotLocked() int {
	return c.n + c.hits
}

// lockheld: the minority unguarded read.
func (c *counter) peek() int {
	return c.n // want lockheld
}

// lockheld: a suppressed case — an approximate read where staleness is
// acceptable.
func (c *counter) racyHint() int {
	//lint:allow lockheld testdata: approximate metrics read; staleness is acceptable
	return c.hits
}
