// Package fhir exercises the checks that cover the IR compiler zone: errdrop
// (the pass pipeline reports illegal programs as errors, so dropping one
// ships the illegal program), plus the tree-wide poolleak and lazydomain
// checks in a compiler-shaped context (a lowering that borrows ring scratch
// and touches lazy residues).
package fhir

import (
	"errors"

	"hydra/internal/ring"
)

func compile() error { return errors.New("level underflow at v7") }

func lower() (int, error) { return 0, errors.New("unmappable op") }

// errdrop: a dropped compile error ships the illegal program.
func badCompileDrop() {
	compile() // want errdrop
}

// errdrop: blank at the error position of a lowering result.
func badLowerTuple() int {
	n, _ := lower() // want errdrop
	return n
}

// errdrop: handled errors stay silent.
func okCompileHandled() error {
	if err := compile(); err != nil {
		return err
	}
	return nil
}

// errdrop: a suppressed case.
func okCompileAnnotated() {
	//lint:allow errdrop testdata: cost probe only, legality re-checked by the real compile below
	compile()
}

// poolleak: a lowering that borrows scratch and forgets to return it.
func badScratchLeak(r *ring.Ring) {
	s := r.GetScratch(3) // want poolleak
	_ = s.Coeffs
}

// poolleak: the balanced acquire/release window stays silent.
func okScratchWindow(r *ring.Ring) {
	s := r.GetScratch(3)
	_ = s.Coeffs
	r.PutScratch(s)
}

// poolleak: a suppressed case.
func okScratchAnnotated(r *ring.Ring) *ring.Poly {
	s := r.GetScratch(3)
	//lint:allow poolleak testdata: ownership handed to the caller, released by the paired free helper
	return s
}

// lazydomain: a lazy accumulator reaching a canonical-expecting helper.
func badLazySink(a, b, q, twoQ uint64) uint64 {
	acc := ring.AddModLazy(a, b, twoQ)
	return ring.AddMod(acc, b, q) // want lazydomain
}

// lazydomain: the sweep on the path canonicalizes.
func okLazySwept(a, b, q, twoQ uint64) uint64 {
	acc := ring.AddModLazy(a, b, twoQ)
	acc = ring.ReduceFinal(acc, q)
	return ring.AddMod(acc, b, q)
}

// lazydomain: a suppressed case.
func okLazyAnnotated(a, b, q, twoQ uint64) uint64 {
	acc := ring.AddModLazy(a, b, twoQ)
	//lint:allow lazydomain testdata: caller guarantees a+b < q so the lazy window is already canonical
	return ring.AddMod(acc, b, q)
}
