// Package ring is a miniature stub of the real internal/ring, giving the
// golden tests realistic targets: the scratch-pool API, the bounded fan-out
// helpers, and a modular helper. Raw uint64 arithmetic is legal here (ring
// is the sanctioned zone), while float arithmetic and raw go statements are
// not.
package ring

// Poly mimics the RNS polynomial.
type Poly struct {
	Coeffs [][]uint64
}

// Ring mimics the pooled ring.
type Ring struct {
	N int
}

func (r *Ring) GetScratch(level int) *Poly {
	return &Poly{Coeffs: make([][]uint64, level+1)}
}

func (r *Ring) PutScratch(p *Poly) {}

func (r *Ring) GetRow() []uint64 { return make([]uint64, r.N) }

func (r *Ring) PutRow(row []uint64) {}

// ForEachLimb mimics the bounded pool's fan-out entry point.
func ForEachLimb(n int, fn func(i int)) {
	for i := 0; i < n; i++ {
		fn(i)
	}
}

// RunTasks mimics the coarse-grained sibling.
func RunTasks(fns ...func()) {
	for _, fn := range fns {
		fn()
	}
}

// ForEachLimbTile mimics the batch layer's (limb × tile) work partitioner:
// like ForEachLimb, every closure runs to completion before it returns.
func ForEachLimbTile(limbs, tiles int, fn func(limb, tile int)) {
	for l := 0; l < limbs; l++ {
		for t := 0; t < tiles; t++ {
			fn(l, t)
		}
	}
}

// MulAddRowLazyBatch mimics the batched key-row MAC: one shared key row is
// streamed across many accumulators, all of which stay lazy in [0, 2q).
func MulAddRowLazyBatch(accs, xs [][]uint64, key []uint64) {}

// ForwardBatch mimics the batched NTT entry point: like Forward, it accepts
// lazy input and folds the canonicalizing sweep into its last pass.
func ForwardBatch(rows [][]uint64) {}

// AddMod uses raw uint64 arithmetic — inside internal/ring that is the
// point, so rawmod must stay silent here.
func AddMod(a, b, q uint64) uint64 {
	c := a + b
	if c >= q {
		c -= q
	}
	return c
}

// ReduceFinal mimics the canonicalizing sweep of the lazy family.
func ReduceFinal(a, q uint64) uint64 {
	if a >= q {
		a -= q
	}
	return a
}

// ReduceFinalVec mimics the row-wide sweep.
func ReduceFinalVec(a []uint64, q uint64) {
	for i, v := range a {
		if v >= q {
			a[i] = v - q
		}
	}
}

// Reduce mimics the full Barrett reduction: any window in, canonical out.
func Reduce(a, q uint64) uint64 {
	return a % q
}

// AddModLazy4 mimics the radix-4 NTT transient adder: result in [0, 4q).
func AddModLazy4(a, b, q uint64) uint64 {
	return a + b
}

// AddModLazy mimics the lazy adder: result in [0, twoQ).
func AddModLazy(a, b, twoQ uint64) uint64 {
	c := a + b
	if c >= twoQ {
		c -= twoQ
	}
	return c
}

// MulModShoupLazy mimics the lazy Shoup multiplier: result in [0, 2q).
func MulModShoupLazy(a, w, wShoup, q uint64) uint64 {
	return a*w - (a*wShoup>>1)*q // stub arithmetic; bounds are not the point here
}

// floatexact: a true positive...
func badScale(x float64) float64 {
	return x * 1.5 // want floatexact
}

// ...and a suppressed case.
func okScale(sigma float64) float64 {
	//lint:allow floatexact testdata: noise bound computed in floats before rounding
	return 6 * sigma
}

// rawgo: a true positive...
func badSpawn(fn func()) {
	go fn() // want rawgo
}

// ...and a suppressed case.
func okSpawn(fn func()) {
	//lint:allow rawgo testdata: models the pool's own slot-gated spawn site
	go fn()
}
