// Package hefloat exercises the levelscale check: the modulus-chain
// protocol (rescale between multiplications, relinearize after Mul, align
// operands before Add) tracked through the stub evaluator.
package hefloat

import "hydra/internal/ckks"

// levelscale: multiplying a value that already carries an unrescaled
// product — the scale reaches Δ³ and overflows the modulus budget.
func badDoubleMul(ev *ckks.Evaluator, a, b *ckks.Ciphertext) *ckks.Ciphertext {
	t := ev.MulRelin(a, b)
	return ev.MulRelin(t, a) // want levelscale
}

// levelscale: Mul-after-Mul without relinearize — the degree-2 ciphertext
// must be relinearized before it is multiplied again.
func badNoRelin(ev *ckks.Evaluator, a, b *ckks.Ciphertext) *ckks.Ciphertext {
	t := ev.Rescale(ev.Mul(a, b))
	return ev.Mul(t, b) // want levelscale
}

// levelscale: adding an unrescaled product to its own input — the scales
// differ (Δ² vs Δ) and the evaluator panics at run time.
func badScaleMismatch(ev *ckks.Evaluator, a, b *ckks.Ciphertext) *ckks.Ciphertext {
	t := ev.MulRelin(a, b)
	return ev.Add(t, a) // want levelscale
}

// levelscale: adding across a Rescale boundary without aligning — the
// implicit align burns a copy and a level drop.
func badLevelMismatch(ev *ckks.Evaluator, a, b *ckks.Ciphertext) *ckks.Ciphertext {
	t := ev.Rescale(ev.MulRelin(a, b))
	return ev.Add(t, a) // want levelscale
}

// levelscale: the sanctioned ladder — rescale between multiplications,
// relinearize the product, align explicitly before the final add.
func okLadder(ev *ckks.Evaluator, a, b *ckks.Ciphertext) *ckks.Ciphertext {
	t := ev.Rescale(ev.MulRelin(a, b))
	u := a.CopyNew()
	u.DropLevel(1)
	return ev.Add(t, u)
}

// levelscale: rotation and negation are level/scale-preserving.
func okRotateChain(ev *ckks.Evaluator, a, b *ckks.Ciphertext) *ckks.Ciphertext {
	t := ev.Rescale(ev.MulRelin(a, ev.Rotate(b, 1)))
	u := ev.Rescale(ev.MulRelin(a, ev.Rotate(b, 2)))
	return ev.Add(t, u)
}

// levelscale: a suppressed case — deliberate unrescaled accumulation with
// verified scale headroom.
func okAllowed(ev *ckks.Evaluator, a, b *ckks.Ciphertext) *ckks.Ciphertext {
	t := ev.MulRelin(a, b)
	//lint:allow levelscale testdata: one pending rescale is within the noise budget here
	return ev.Add(t, a)
}
