// Evaluator stub for the levelscale golden cases: the check skips
// internal/ckks itself (this file), and tracks level/scale/degree through
// these signatures from consumer packages.
package ckks

// Ciphertext mimics the CKKS ciphertext: a level and a scale.
type Ciphertext struct {
	Lvl   int
	Scale float64
}

func (ct *Ciphertext) Level() int { return ct.Lvl }

func (ct *Ciphertext) CopyNew() *Ciphertext {
	c := *ct
	return &c
}

func (ct *Ciphertext) DropLevel(n int) { ct.Lvl -= n }

// Evaluator mimics the homomorphic evaluator surface.
type Evaluator struct{}

func (e *Evaluator) Add(a, b *Ciphertext) *Ciphertext      { return a.CopyNew() }
func (e *Evaluator) Sub(a, b *Ciphertext) *Ciphertext      { return a.CopyNew() }
func (e *Evaluator) Mul(a, b *Ciphertext) *Ciphertext      { return a.CopyNew() }
func (e *Evaluator) MulRelin(a, b *Ciphertext) *Ciphertext { return a.CopyNew() }
func (e *Evaluator) MulPlain(a *Ciphertext, pt float64) *Ciphertext {
	return a.CopyNew()
}
func (e *Evaluator) Relinearize(a *Ciphertext) *Ciphertext   { return a.CopyNew() }
func (e *Evaluator) Rescale(a *Ciphertext) *Ciphertext       { return a.CopyNew() }
func (e *Evaluator) Rotate(a *Ciphertext, k int) *Ciphertext { return a.CopyNew() }
