// Package ckks exercises the rawmod and poolleak checks from outside the
// sanctioned ring zone.
package ckks

import "hydra/internal/ring"

// rawmod: true positives on +, -=, and %.
func badAdd(a, b, q uint64) uint64 {
	c := a + b // want rawmod
	if c >= q {
		c -= q // want rawmod
	}
	return c
}

func badRem(p, q uint64) uint64 {
	return p % q // want rawmod
}

// rawmod: the sanctioned route stays silent.
func okAdd(a, b, q uint64) uint64 {
	return ring.AddMod(a, b, q)
}

// rawmod: int arithmetic is not coefficient arithmetic.
func okIndex(i, n int) int {
	return i*n + 1
}

// rawmod: constant folding is not runtime coefficient math.
const twoQ = uint64(7) * 2

// rawmod: a suppressed case.
func okScalarSetup(p, q uint64) uint64 {
	//lint:allow rawmod testdata: scalar setup reduction kept raw intentionally
	return p % q
}

// lazybound: a lazy product flows straight into a canonical-input consumer
// and the function has no closing sweep.
func badLazyFlow(a, w, ws, q uint64) uint64 {
	return ring.AddMod(ring.MulModShoupLazy(a, w, ws, q), 0, q) // want lazybound lazydomain
}

// lazybound: same escape through a Lazy-suffixed variable.
func badLazyVar(a, w, ws, q uint64) uint64 {
	vLazy := ring.MulModShoupLazy(a, w, ws, q)
	return ring.AddMod(vLazy, 0, q) // want lazybound lazydomain
}

// lazybound: canonicalizing through ReduceFinal before the consumer is the
// sanctioned shape.
func okLazySwept(a, w, ws, q uint64) uint64 {
	v := ring.ReduceFinal(ring.MulModShoupLazy(a, w, ws, q), q)
	return ring.AddMod(v, 0, q)
}

// lazybound: a row-wide window closed by ReduceFinalVec sanctions the whole
// function.
func okLazyWindow(row []uint64, w, ws, q uint64) uint64 {
	for i := range row {
		row[i] = ring.MulModShoupLazy(row[i], w, ws, q)
	}
	ring.ReduceFinalVec(row, q)
	return ring.AddMod(row[0], 0, q)
}

// lazybound: a suppressed case — the consumer documents tolerance for lazy
// inputs.
func okLazyAllowed(a, w, ws, q uint64) uint64 {
	//lint:allow lazybound,lazydomain testdata: consumer tolerates [0,2q) inputs by contract
	return ring.AddMod(ring.MulModShoupLazy(a, w, ws, q), 0, q)
}

// lazydomain: a sweep on one path does not sanction the other — the
// whole-function lazybound heuristic is fooled by the ReduceFinal in the
// branch, the path-sensitive engine is not.
func badLazyBranch(a, w, ws, q uint64, fix bool) uint64 {
	v := ring.MulModShoupLazy(a, w, ws, q)
	if fix {
		v = ring.ReduceFinal(v, q)
	}
	return ring.AddMod(v, 0, q) // want lazydomain
}

// lazydomain: the [0,4q) radix-4 transient cannot be closed by a single
// conditional subtract.
func badLazy4(a, b, q uint64) uint64 {
	return ring.ReduceFinal(ring.AddModLazy4(a, b, q), q) // want lazydomain
}

// lazydomain: the full Barrett reduction closes any window.
func okLazy4Reduced(a, b, q uint64) uint64 {
	return ring.Reduce(ring.AddModLazy4(a, b, q), q)
}

// lazydomain: the batched key-row MAC leaves every accumulator row lazy —
// reading one back into a canonical consumer without the closing sweep
// escapes the window. (lazybound stays silent: the argument is not a Lazy
// call or Lazy-named variable, which is exactly the gap the flow engine
// closes.)
func badBatchMAC(accs, xs [][]uint64, key []uint64, q uint64) uint64 {
	ring.MulAddRowLazyBatch(accs, xs, key)
	return ring.AddMod(accs[0][0], 0, q) // want lazydomain
}

// The sanctioned batch shape: tiles fold on the (limb × tile) grid and the
// accumulator rows are swept inside the tile body. ForEachLimbTile closures
// execute before the call returns, so the sweep's effect is real, not
// maybe-run.
func okBatchMACSwept(accs, xs [][]uint64, key []uint64, q uint64) uint64 {
	ring.ForEachLimbTile(1, len(accs), func(limb, tile int) {
		ring.MulAddRowLazyBatch(accs, xs, key)
		ring.ReduceFinalVec(accs[tile], q)
	})
	return ring.AddMod(accs[0][0], 0, q)
}

// Feeding the batch MAC's output rows to the batched transform also closes
// the window: ForwardBatch folds the sweep into its last pass like the
// scalar NTT entries.
func okBatchNTT(rows, xs [][]uint64, key []uint64, q uint64) uint64 {
	ring.MulAddRowLazyBatch(rows, xs, key)
	ring.ForwardBatch(rows)
	return ring.AddMod(rows[0][0], 0, q)
}

// consumeCanon's summary marks its parameter canonical-expecting: the value
// flows into ring.AddMod unswept.
func consumeCanon(v, q uint64) uint64 {
	return ring.AddMod(v, 0, q)
}

// consumeSwept tolerates lazy input: it sweeps before consuming.
func consumeSwept(v, q uint64) uint64 {
	return ring.AddMod(ring.ReduceFinal(v, q), 0, q)
}

// lazydomain: interprocedural — the lazy value crosses a call boundary into
// a helper whose summary demands canonical input (lazybound also fires: any
// unswept lazy escape looks the same to it).
func badLazyInterproc(a, w, ws, q uint64) uint64 {
	return consumeCanon(ring.MulModShoupLazy(a, w, ws, q), q) // want lazybound lazydomain
}

// The tolerant helper sanctions the same flow for lazydomain; lazybound
// cannot see through the call boundary and still fires — the precision the
// summary engine buys.
func okLazyInterproc(a, w, ws, q uint64) uint64 {
	return consumeSwept(ring.MulModShoupLazy(a, w, ws, q), q) // want lazybound
}

type holder struct {
	buf []uint64
}

// poolleak: stored into a struct field.
func badStore(r *ring.Ring, h *holder) {
	row := r.GetRow()
	h.buf = row // want poolleak
}

// poolleak: returned to the caller.
func badReturn(r *ring.Ring) *ring.Poly {
	p := r.GetScratch(1)
	return p // want poolleak
}

// poolleak: returned directly without ever being releasable.
func badReturnDirect(r *ring.Ring) *ring.Poly {
	return r.GetScratch(0) // want poolleak
}

// poolleak: acquired but never released.
func badNeverReleased(r *ring.Ring) {
	p := r.GetScratch(1) // want poolleak
	p.Coeffs[0] = nil
}

// poolleak + rawgo: captured by a goroutine that outlives the window.
func badGoroutine(r *ring.Ring) {
	row := r.GetRow()
	go func() { // want poolleak rawgo
		row[0] = 1
	}()
	r.PutRow(row)
}

// poolleak: the bounded pool's own closures are inside the window.
func okPooledFanout(r *ring.Ring) {
	p := r.GetScratch(2)
	ring.ForEachLimb(len(p.Coeffs), func(i int) {
		p.Coeffs[i] = nil
	})
	r.PutScratch(p)
}

// poolleak: a suppressed ownership hand-off.
func okHandoff(r *ring.Ring, h *holder) {
	row := r.GetRow()
	//lint:allow poolleak testdata: ownership transfers to holder, whose owner releases it
	h.buf = row
}

// extAcc mirrors the evaluator's extended-basis keyswitch accumulator: pooled
// rows are parked in a slice field until a deferred ModDown consumes them.
type extAcc struct {
	rows [][]uint64
}

func (e *extAcc) release(r *ring.Ring) {
	for i, row := range e.rows {
		if row != nil {
			r.PutRow(row)
			e.rows[i] = nil
		}
	}
}

// poolleak: parking a pooled row in a slice element without documenting the
// hand-off is an escape — the deferred-ModDown window is invisible here.
func badExtAccStore(r *ring.Ring, e *extAcc, jj int) {
	row := r.GetRow()
	e.rows[jj] = row // want poolleak
}

// poolleak: the sanctioned ext-accumulator shape — the store transfers
// ownership to the accumulator, whose release method returns every row.
func okExtAccTransfer(r *ring.Ring, n int) *extAcc {
	e := &extAcc{rows: make([][]uint64, n)}
	for jj := 0; jj < n; jj++ {
		row := r.GetRow()
		//lint:allow poolleak testdata: accumulator rows transfer ownership; release returns them after the deferred ModDown
		e.rows[jj] = row
	}
	return e
}
