package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// resDom is the residue-domain lattice of the lazy-reduction contract
// (DESIGN.md "Static invariants"): every uint64 residue is canonical in
// [0, q), lazy in [0, 2q) (the Harvey butterfly / fused-MAC family), or lazy
// in [0, 4q) (the widest transient the radix-4 NTT kernels produce). Join is
// max: not knowing which path produced a value means assuming the wider
// window.
type resDom uint8

const (
	resCanon resDom = iota // [0, q) — canonical; also the optimistic unknown
	resLazy2               // [0, 2q)
	resLazy4               // [0, 4q)
)

func (d resDom) String() string {
	switch d {
	case resLazy2:
		return "[0,2q)"
	case resLazy4:
		return "[0,4q)"
	}
	return "[0,q)"
}

func joinDom(a, b resDom) resDom {
	if a > b {
		return a
	}
	return b
}

// LazyDomain is the interprocedural generalization of lazybound: a
// flow-sensitive residue-domain analysis on the SSA-lite engine. Values
// produced by the ring lazy helper family carry their domain ([0,2q) or
// [0,4q)) through assignments, row aggregates, closures and module-local
// calls; a canonical-expecting sink (any ring helper outside the lazy
// family, or a module function whose summary says the parameter must be
// canonical) reached by a lazy value with no ReduceFinal/ReduceFinalVec
// sweep or NTT pass on that path is a finding. Unlike lazybound, a sweep
// elsewhere in the function does not sanction the unswept path.
var LazyDomain = &Check{
	Name: "lazydomain",
	Doc:  "lazy residue domain ([0,2q)/[0,4q)) reaches a canonical-expecting sink with no dominating ReduceFinal sweep",
	Run:  runLazyDomain,
}

func runLazyDomain(pass *Pass) {
	if pass.InPkg(ringPkg) {
		// The ring package is the home of the lazy kernels; its windows are
		// verified by the bit-identity tests and the modular-ops fuzzer.
		return
	}
	env := lazyEnvOf(pass.Module)
	for _, f := range pass.Pkg.Files {
		funcBodies(f, func(name string, decl *ast.FuncDecl, body *ast.BlockStmt) {
			run := &lazyRun{
				env:      env,
				info:     pass.Pkg.Info,
				findings: new(int),
				reportf:  pass.Reportf,
			}
			run.analyze(body, nil)
		})
	}
}

// lazyEnv is the module-scoped half of the analysis: the function index and
// the memoized per-function summaries.
type lazyEnv struct {
	idx  *funcIndex
	sums map[*types.Func]*lazySummary
}

func lazyEnvOf(mod *Module) *lazyEnv {
	return mod.cached("lazydomain.env", func() any {
		return &lazyEnv{
			idx:  buildFuncIndex(mod),
			sums: map[*types.Func]*lazySummary{},
		}
	}).(*lazyEnv)
}

// lazySummary is the callable abstraction of one module function: what the
// caller needs to know to push residue domains through the call without
// looking at the body again.
type lazySummary struct {
	computing bool
	params    []types.Object // declared parameters, in order
	ret       resDom         // join of return-value domains, canonical inputs
	outCanon  []resDom       // exit domain of each param, canonical inputs
	tolerant  []bool         // param i accepts a [0,2q) input with no new finding
	retLazy   []resDom       // return domain when param i is seeded [0,2q)
	outLazy   []resDom       // exit domain of param i when seeded [0,2q)
}

// summary computes (and memoizes) the summary of a module function by
// analyzing its body once with canonical parameters and once per parameter
// with that parameter seeded lazy. Recursion bottoms out conservatively: a
// summary requested while it is being computed reads as an unknown callee.
func (env *lazyEnv) summary(fn *types.Func) *lazySummary {
	if s, ok := env.sums[fn]; ok {
		if s == nil || s.computing {
			return nil
		}
		return s
	}
	decl, ok := env.idx.decls[fn]
	if !ok || decl.Body == nil {
		env.sums[fn] = nil
		return nil
	}
	pkg := env.idx.pkgOf[fn]
	if pkg.Rel == ringPkg || strings.HasPrefix(pkg.Rel, ringPkg+"/") {
		// Ring callees are described by the built-in contract table, not by
		// analyzing their (deliberately raw) bodies.
		env.sums[fn] = nil
		return nil
	}
	s := &lazySummary{computing: true}
	env.sums[fn] = s

	if decl.Type.Params != nil {
		for _, field := range decl.Type.Params.List {
			for _, name := range field.Names {
				if obj := pkg.Info.Defs[name]; obj != nil {
					s.params = append(s.params, obj)
				}
			}
		}
	}

	runOnce := func(entry state[resDom]) (ret resDom, exit state[resDom], findings int) {
		run := &lazyRun{env: env, info: pkg.Info, findings: new(int)}
		exit = run.analyze(decl.Body, entry)
		return run.ret, exit, *run.findings
	}

	ret, exit, base := runOnce(nil)
	s.ret = ret
	for _, p := range s.params {
		s.outCanon = append(s.outCanon, exit[p])
	}
	for _, p := range s.params {
		entry := state[resDom]{p: resLazy2}
		retL, exitL, n := runOnce(entry)
		s.tolerant = append(s.tolerant, n <= base)
		s.retLazy = append(s.retLazy, retL)
		s.outLazy = append(s.outLazy, exitL[p])
	}
	s.computing = false
	return s
}

// lazyRun analyzes one function body (or function literal).
type lazyRun struct {
	env      *lazyEnv
	info     *types.Info
	ret      resDom // join over return-value domains, accumulated in replay
	findings *int
	reportf  func(pos token.Pos, format string, args ...any) // nil = silent
}

// analyze runs the flow problem over body and returns the exit state.
func (r *lazyRun) analyze(body *ast.BlockStmt, entry state[resDom]) state[resDom] {
	cfg := BuildCFG(body)
	var exit state[resDom]
	f := &flow[resDom]{
		cfg:      cfg,
		joinFact: joinDom,
		entry:    entry,
		transfer: func(n ast.Node, s state[resDom], report bool) {
			r.node(n, s, report)
		},
	}
	exit = f.solve()
	return exit
}

// flag records one finding (replay pass only).
func (r *lazyRun) flag(rep bool, pos token.Pos, format string, args ...any) {
	if !rep {
		return
	}
	*r.findings++
	if r.reportf != nil {
		r.reportf(pos, format, args...)
	}
}

// node is the transfer function: one CFG node's effect on the state.
func (r *lazyRun) node(n ast.Node, s state[resDom], rep bool) {
	switch n := n.(type) {
	case *ast.AssignStmt:
		r.assignStmt(n, s, rep)
	case *ast.ExprStmt:
		r.eval(n.X, s, rep)
	case *ast.ReturnStmt:
		for _, res := range n.Results {
			d := r.eval(res, s, rep)
			if rep {
				r.ret = joinDom(r.ret, d)
			}
		}
	case *ast.SendStmt:
		r.eval(n.Chan, s, rep)
		r.eval(n.Value, s, rep)
	case *ast.DeferStmt:
		r.eval(n.Call, s, rep)
	case *ast.GoStmt:
		r.eval(n.Call, s, rep)
	case *ast.IncDecStmt:
		r.eval(n.X, s, rep)
	case *ast.DeclStmt:
		gd, ok := n.Decl.(*ast.GenDecl)
		if !ok {
			return
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			if len(vs.Values) == 1 && len(vs.Names) > 1 {
				// var a, b = f(): every name gets the joined call domain.
				d := r.eval(vs.Values[0], s, rep)
				for _, name := range vs.Names {
					if obj := r.info.Defs[name]; obj != nil {
						s[obj] = d
					}
				}
				continue
			}
			for i, name := range vs.Names {
				d := resCanon
				if i < len(vs.Values) {
					d = r.eval(vs.Values[i], s, rep)
				}
				if obj := r.info.Defs[name]; obj != nil {
					s[obj] = d
				}
			}
		}
	case ast.Expr:
		r.eval(n, s, rep)
	}
}

func (r *lazyRun) assignStmt(n *ast.AssignStmt, s state[resDom], rep bool) {
	switch {
	case len(n.Lhs) == len(n.Rhs):
		doms := make([]resDom, len(n.Rhs))
		for i, rhs := range n.Rhs {
			doms[i] = r.eval(rhs, s, rep)
		}
		for i, lhs := range n.Lhs {
			d := doms[i]
			if n.Tok != token.ASSIGN && n.Tok != token.DEFINE {
				// Compound assignment (+=, etc.): join with the old value.
				d = joinDom(d, r.eval(lhs, s, false))
			}
			r.assign(lhs, d, s)
		}
	case len(n.Rhs) == 1:
		// Tuple assignment from a multi-value call: every target gets the
		// call's joined return domain.
		d := r.eval(n.Rhs[0], s, rep)
		for _, lhs := range n.Lhs {
			r.assign(lhs, d, s)
		}
	}
}

// assign writes a domain to an lvalue: strong update for a plain variable,
// weak (joining) update on the root for element/field/pointer targets.
func (r *lazyRun) assign(lhs ast.Expr, d resDom, s state[resDom]) {
	lhs = ast.Unparen(lhs)
	if id, ok := lhs.(*ast.Ident); ok {
		if id.Name == "_" {
			return
		}
		if obj := objectOf(r.info, id); obj != nil {
			s[obj] = d
		}
		return
	}
	if root := rootObject(r.info, lhs); root != nil {
		s[root] = joinDom(s[root], d)
	}
}

// eval computes the residue domain of an expression, reporting lazy values
// reaching canonical-expecting sinks along the way (replay pass only).
func (r *lazyRun) eval(e ast.Expr, s state[resDom], rep bool) resDom {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if obj := objectOf(r.info, e); obj != nil {
			return s[obj]
		}
		return resCanon
	case *ast.CallExpr:
		return r.call(e, s, rep)
	case *ast.BinaryExpr:
		// Raw residue arithmetic outside ring is rawmod's business; for the
		// sanctioned cases (shifts, comparisons, masks) the join is safe.
		return joinDom(r.eval(e.X, s, rep), r.eval(e.Y, s, rep))
	case *ast.IndexExpr:
		r.eval(e.Index, s, rep)
		if root := rootObject(r.info, e); root != nil {
			return s[root]
		}
		return r.eval(e.X, s, rep)
	case *ast.SliceExpr:
		if root := rootObject(r.info, e); root != nil {
			return s[root]
		}
		return r.eval(e.X, s, rep)
	case *ast.UnaryExpr:
		return r.eval(e.X, s, rep)
	case *ast.StarExpr:
		return r.eval(e.X, s, rep)
	case *ast.TypeAssertExpr:
		return r.eval(e.X, s, rep)
	case *ast.SelectorExpr:
		// Field loads and method values: domains do not flow through the
		// heap in this analysis; assume canonical.
		return resCanon
	case *ast.CompositeLit:
		for _, elt := range e.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				elt = kv.Value
			}
			r.eval(elt, s, rep)
		}
		return resCanon
	case *ast.FuncLit:
		r.closure(e, s, rep)
		return resCanon
	default:
		return resCanon
	}
}

// closure analyzes a function literal in place: captured variables carry
// their current facts in, and the literal's effects on captured roots join
// back out (the closure may run on the spot, on the bounded pool, or later —
// joining means a sweep inside a maybe-run closure does not sanction the
// caller's state).
func (r *lazyRun) closure(fl *ast.FuncLit, s state[resDom], rep bool) {
	exit := r.subRun(fl, s, rep)
	for obj, d := range exit {
		s[obj] = joinDom(s[obj], d)
	}
}

// closureExec analyzes a function literal that is guaranteed to execute
// before the call returns (the ForEachLimb / RunTasks parallel-for bodies):
// the closure's exit facts overwrite the caller's, so a ReduceFinalVec sweep
// inside the limb body canonicalizes the rows it swept.
func (r *lazyRun) closureExec(fl *ast.FuncLit, s state[resDom], rep bool) {
	exit := r.subRun(fl, s, rep)
	for obj, d := range exit {
		s[obj] = d
	}
}

func (r *lazyRun) subRun(fl *ast.FuncLit, s state[resDom], rep bool) state[resDom] {
	sub := &lazyRun{env: r.env, info: r.info, findings: new(int)}
	if rep {
		sub.findings = r.findings
		sub.reportf = r.reportf
	}
	return sub.analyze(fl.Body, s.clone())
}

// call pushes domains through one call expression.
func (r *lazyRun) call(call *ast.CallExpr, s state[resDom], rep bool) resDom {
	// Builtins that move residues between aggregates.
	if name, ok := builtinName(r.info, call); ok {
		switch name {
		case "copy":
			if len(call.Args) == 2 {
				d := r.eval(call.Args[1], s, rep)
				if root := rootObject(r.info, call.Args[0]); root != nil {
					s[root] = joinDom(s[root], d)
				}
				return resCanon
			}
		case "append":
			d := resCanon
			for _, a := range call.Args {
				d = joinDom(d, r.eval(a, s, rep))
			}
			return d
		case "len", "cap", "make", "new", "delete", "close", "panic", "print", "println", "min", "max":
			for _, a := range call.Args {
				r.eval(a, s, rep)
			}
			return resCanon
		}
	}

	fn := callee(r.info, call)
	if fn == nil {
		// Indirect call or conversion: evaluate arguments (conversions keep
		// the domain; indirect calls are not sinks we can name).
		d := resCanon
		isConv := false
		if len(call.Args) == 1 {
			if tv, ok := r.info.Types[call.Fun]; ok && tv.IsType() {
				isConv = true
			}
		}
		for _, a := range call.Args {
			ad := r.eval(a, s, rep)
			if isConv {
				d = joinDom(d, ad)
			}
		}
		return d
	}

	if isRingFunc(fn) && (fn.Name() == "ForEachLimb" || fn.Name() == "ForEachLimbTile" || fn.Name() == "RunTasks") {
		// The parallel-for helpers (including the batch layer's (limb × tile)
		// grid) run every closure argument to completion before returning:
		// apply closure effects as executed, not maybe-run.
		for _, a := range call.Args {
			if lit, ok := ast.Unparen(a).(*ast.FuncLit); ok {
				r.closureExec(lit, s, rep)
			} else {
				r.eval(a, s, rep)
			}
		}
		return resCanon
	}

	args := make([]resDom, len(call.Args))
	for i, a := range call.Args {
		args[i] = r.eval(a, s, rep)
	}

	if isRingFunc(fn) {
		return r.ringCall(call, fn.Name(), args, s, rep)
	}

	if sum := r.env.summary(fn); sum != nil {
		return r.summaryCall(call, fn, sum, args, s, rep)
	}

	// Unknown callee (stdlib, interface method, in-progress recursion):
	// canonical-expecting on every argument, canonical result.
	for i, d := range args {
		if d > resCanon {
			r.flag(rep, call.Args[i].Pos(),
				"lazy %s residue passed to %s, which expects canonical [0,q) inputs: sweep with ReduceFinal/ReduceFinalVec first",
				d, fn.Name())
		}
	}
	return resCanon
}

// ringCall applies the built-in contract table for internal/ring callees.
func (r *lazyRun) ringCall(call *ast.CallExpr, name string, args []resDom, s state[resDom], rep bool) resDom {
	switch {
	case name == "Reduce" || name == "Reduce64" || name == "Reduce128":
		// Full Barrett reductions: any input domain, canonical result.
		return resCanon

	case isNTTEntry(name):
		// The NTT kernels fold the closing sweep into their last pass: any
		// input domain, canonical output (in the transformed sense).
		for _, a := range call.Args {
			if root := rootObject(r.info, a); root != nil {
				s[root] = resCanon
			}
		}
		return resCanon

	case strings.HasPrefix(name, "Put"):
		// Pool returns (PutRow, PutScratch): deallocation, not arithmetic —
		// a lazy row may go back to the pool, allocation re-zeroes it.
		return resCanon

	case strings.Contains(name, "ReduceFinal"):
		// The canonicalizing sweep: accepts [0,2q), NOT [0,4q) — a single
		// conditional subtract cannot close the wide window.
		for i, d := range args {
			if d >= resLazy4 {
				r.flag(rep, call.Args[i].Pos(),
					"%s closes only the [0,2q) window, but this residue is lazy %s: use a full Reduce", name, d)
			}
		}
		if strings.Contains(name, "Vec") && len(call.Args) > 0 {
			if root := rootObject(r.info, call.Args[0]); root != nil {
				s[root] = resCanon
			}
		}
		return resCanon

	case strings.Contains(name, "Lazy"):
		// The lazy helper family: inputs tolerate [0,2q); results are lazy.
		// Row kernels (in-place accumulators) lazify their first argument.
		out := resLazy2
		if strings.Contains(name, "Lazy4") {
			out = resLazy4
		}
		for i, d := range args {
			if d >= resLazy4 && out < resLazy4 {
				r.flag(rep, call.Args[i].Pos(),
					"lazy %s residue exceeds %s's [0,2q) input contract: sweep or use a full Reduce first", d, name)
			}
		}
		if strings.Contains(name, "Row") && len(call.Args) > 0 {
			if root := rootObject(r.info, call.Args[0]); root != nil {
				s[root] = joinDom(s[root], out)
			}
		}
		return out

	default:
		// Everything else in ring (AddMod, MulMod, MulModShoup, CenteredMod,
		// samplers, serializers): canonical-expecting.
		for i, d := range args {
			if d > resCanon {
				r.flag(rep, call.Args[i].Pos(),
					"lazy %s residue flows into ring.%s, which expects canonical [0,q) inputs: sweep with ReduceFinal/ReduceFinalVec first",
					d, name)
			}
		}
		return resCanon
	}
}

// summaryCall pushes domains through a summarized module function.
func (r *lazyRun) summaryCall(call *ast.CallExpr, fn *types.Func, sum *lazySummary, args []resDom, s state[resDom], rep bool) resDom {
	out := sum.ret
	for i, d := range args {
		if i >= len(sum.params) {
			break // variadic tail beyond declared params
		}
		if d == resCanon {
			continue
		}
		if d >= resLazy4 || !sum.tolerant[i] {
			r.flag(rep, call.Args[i].Pos(),
				"lazy %s residue passed to %s, whose parameter %q expects canonical [0,q) inputs: sweep with ReduceFinal/ReduceFinalVec first",
				d, fn.Name(), sum.params[i].Name())
			continue
		}
		out = joinDom(out, sum.retLazy[i])
	}
	// Out-effects on argument roots (a callee that sweeps or lazifies a row
	// the caller passed in).
	for i, a := range call.Args {
		if i >= len(sum.params) {
			break
		}
		if !isSliceLike(sum.params[i].Type()) {
			continue
		}
		root := rootObject(r.info, a)
		if root == nil {
			continue
		}
		if args[i] > resCanon && sum.tolerant[i] {
			s[root] = sum.outLazy[i]
		} else {
			s[root] = joinDom(s[root], sum.outCanon[i])
		}
	}
	return out
}

// builtinName reports the name of a builtin function call.
func builtinName(info *types.Info, call *ast.CallExpr) (string, bool) {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return "", false
	}
	if _, ok := info.Uses[id].(*types.Builtin); ok {
		return id.Name, true
	}
	return "", false
}

// isRingFunc reports whether fn is declared in the module's internal/ring.
func isRingFunc(fn *types.Func) bool {
	if fn.Pkg() == nil {
		return false
	}
	p := fn.Pkg().Path()
	return p == ringPkg || strings.HasSuffix(p, "/"+ringPkg)
}

// isSliceLike reports whether t can carry an out-effect visible to the
// caller (slices, pointers, maps).
func isSliceLike(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Slice, *types.Pointer, *types.Map:
		return true
	}
	return false
}
