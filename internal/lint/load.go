package lint

// In-module package loader.
//
// hydra-lint deliberately avoids golang.org/x/tools (go.mod stays
// dependency-free), so this file reimplements the small slice of a package
// loader the checks need: discover the module's packages, parse them, and
// type-check them in dependency order. Imports of sibling packages resolve
// against the packages already checked; imports of the standard library go
// through the stdlib source importer (go/importer "source" mode), which
// reads GOROOT/src directly and needs no pre-compiled export data.

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed, type-checked package of the module.
type Package struct {
	Path  string // full import path, e.g. hydra/internal/ring
	Rel   string // module-relative path, "" for the module root package
	Dir   string
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Module is the loaded module: every non-test package, type-checked, in
// dependency order.
type Module struct {
	Path string // module path from go.mod
	Dir  string
	Fset *token.FileSet
	Pkgs []*Package

	memo map[string]any // module-scoped analysis artifacts, see cached
}

// cached memoizes module-scoped analysis artifacts (the function index, the
// interprocedural summaries) so checks and packages of one Run share them
// instead of recomputing per package. Run is sequential, so no locking.
func (m *Module) cached(key string, build func() any) any {
	if m.memo == nil {
		m.memo = map[string]any{}
	}
	v, ok := m.memo[key]
	if !ok {
		v = build()
		m.memo[key] = v
	}
	return v
}

// FindModuleRoot walks up from dir to the nearest directory containing a
// go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			rest = strings.TrimSpace(rest)
			rest = strings.Trim(rest, `"`)
			if rest != "" {
				return rest, nil
			}
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s", gomod)
}

// LoadModule parses and type-checks every non-test package under root
// (skipping testdata, vendor, hidden directories, and nested modules).
func LoadModule(root string) (*Module, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	mod := &Module{Path: modPath, Dir: root, Fset: token.NewFileSet()}

	dirs, err := packageDirs(root)
	if err != nil {
		return nil, err
	}

	// Parse every package.
	byPath := map[string]*Package{}
	for _, dir := range dirs {
		pkg, err := parseDir(mod, root, dir)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			byPath[pkg.Path] = pkg
		}
	}

	order, err := topoSort(mod, byPath)
	if err != nil {
		return nil, err
	}

	// Type-check in dependency order.
	imp := &moduleImporter{
		std: importer.ForCompiler(mod.Fset, "source", nil).(types.ImporterFrom),
		mod: map[string]*types.Package{},
	}
	for _, pkg := range order {
		var typeErrs []error
		conf := types.Config{
			Importer: imp,
			Error:    func(err error) { typeErrs = append(typeErrs, err) },
		}
		pkg.Info = &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Implicits:  map[ast.Node]types.Object{},
			Scopes:     map[ast.Node]*types.Scope{},
		}
		tpkg, err := conf.Check(pkg.Path, mod.Fset, pkg.Files, pkg.Info)
		if len(typeErrs) > 0 {
			return nil, fmt.Errorf("lint: type-checking %s: %v", pkg.Path, typeErrs[0])
		}
		if err != nil {
			return nil, fmt.Errorf("lint: type-checking %s: %v", pkg.Path, err)
		}
		pkg.Types = tpkg
		imp.mod[pkg.Path] = tpkg
		mod.Pkgs = append(mod.Pkgs, pkg)
	}
	return mod, nil
}

// packageDirs returns every directory under root that may hold a package of
// this module.
func packageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root {
			if name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
				return filepath.SkipDir
			}
			if _, err := os.Stat(filepath.Join(path, "go.mod")); err == nil {
				return filepath.SkipDir // nested module
			}
		}
		dirs = append(dirs, path)
		return nil
	})
	return dirs, err
}

// parseDir parses the non-test Go files of one directory; it returns nil if
// the directory holds no buildable Go files.
func parseDir(mod *Module, root, dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		f, err := parser.ParseFile(mod.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, nil
	}
	rel, err := filepath.Rel(root, dir)
	if err != nil {
		return nil, err
	}
	pkg := &Package{Dir: dir, Files: files}
	if rel == "." {
		pkg.Rel, pkg.Path = "", mod.Path
	} else {
		pkg.Rel = filepath.ToSlash(rel)
		pkg.Path = mod.Path + "/" + pkg.Rel
	}
	return pkg, nil
}

// topoSort orders packages so that every in-module import precedes its
// importer.
func topoSort(mod *Module, byPath map[string]*Package) ([]*Package, error) {
	paths := make([]string, 0, len(byPath))
	for p := range byPath {
		paths = append(paths, p)
	}
	sort.Strings(paths)

	const (
		unvisited = 0
		visiting  = 1
		done      = 2
	)
	state := map[string]int{}
	var order []*Package
	var visit func(path string, chain []string) error
	visit = func(path string, chain []string) error {
		switch state[path] {
		case done:
			return nil
		case visiting:
			return fmt.Errorf("lint: import cycle: %s", strings.Join(append(chain, path), " -> "))
		}
		state[path] = visiting
		pkg := byPath[path]
		var deps []string
		for _, f := range pkg.Files {
			for _, spec := range f.Imports {
				ip := strings.Trim(spec.Path.Value, `"`)
				if ip == mod.Path || strings.HasPrefix(ip, mod.Path+"/") {
					deps = append(deps, ip)
				}
			}
		}
		sort.Strings(deps)
		for _, dep := range deps {
			if _, ok := byPath[dep]; !ok {
				return fmt.Errorf("lint: %s imports %s, which is not in the module", path, dep)
			}
			if err := visit(dep, append(chain, path)); err != nil {
				return err
			}
		}
		state[path] = done
		order = append(order, pkg)
		return nil
	}
	for _, p := range paths {
		if err := visit(p, nil); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// moduleImporter resolves in-module imports from the packages already
// type-checked and everything else (the standard library) from source.
type moduleImporter struct {
	std types.ImporterFrom
	mod map[string]*types.Package
}

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	return m.ImportFrom(path, "", 0)
}

func (m *moduleImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if p, ok := m.mod[path]; ok {
		return p, nil
	}
	return m.std.ImportFrom(path, dir, 0)
}
