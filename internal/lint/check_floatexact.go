package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// exactPkgs are the exact-arithmetic zones: residues and serialized task
// programs must never pass through a float, where rounding would silently
// corrupt them.
var exactPkgs = []string{"internal/ring", "internal/isa"}

// FloatExact flags float32/float64 arithmetic inside the exact-arithmetic
// packages. Bit-exact residue arithmetic is the contract the NTT, RNS and
// serialization layers rely on; floating-point rounding inside those zones
// corrupts residues in ways no test of small parameters reliably catches.
var FloatExact = &Check{
	Name: "floatexact",
	Doc:  "float arithmetic inside exact-arithmetic zones (internal/ring, internal/isa)",
	Run:  runFloatExact,
}

var floatOps = map[token.Token]bool{
	token.ADD: true, token.SUB: true, token.MUL: true, token.QUO: true,
	token.ADD_ASSIGN: true, token.SUB_ASSIGN: true, token.MUL_ASSIGN: true, token.QUO_ASSIGN: true,
}

func runFloatExact(pass *Pass) {
	if !pass.InPkg(exactPkgs...) {
		return
	}
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if !floatOps[n.Op] {
					return true
				}
				if tv, ok := info.Types[n]; ok && tv.Value != nil {
					return true // compile-time constant, exact by definition
				}
				if isFloat(info, n.X) || isFloat(info, n.Y) {
					pass.Reportf(n.OpPos, "float %q in exact-arithmetic zone: rounding here corrupts residues", n.Op)
				}
			case *ast.AssignStmt:
				if !floatOps[n.Tok] || len(n.Lhs) != 1 || len(n.Rhs) != 1 {
					return true
				}
				if isFloat(info, n.Lhs[0]) {
					pass.Reportf(n.TokPos, "float %q in exact-arithmetic zone: rounding here corrupts residues", n.Tok)
				}
			}
			return true
		})
	}
}

func isFloat(info *types.Info, expr ast.Expr) bool {
	t := info.TypeOf(expr)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
