package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// lockFact is the abstract state of one mutex inside one method, tracked on
// the SSA-lite engine. The zero value (lkUnknown) means the lock has not
// been touched on this path; joining Free against Held yields Conflict,
// which the reporter treats as not-held so that half-locked paths never
// suppress a finding they should raise, and never raise one the other path
// already justifies.
type lockFact int8

const (
	lkUnknown lockFact = iota
	lkFree
	lkHeld
	lkConflict
)

func joinLock(a, b lockFact) lockFact {
	switch {
	case a == lkUnknown:
		return b
	case b == lkUnknown:
		return a
	case a == b:
		return a
	default:
		return lkConflict
	}
}

// LockHeld infers the guard discipline of struct fields statistically: a
// field of a mutex-carrying struct that is accessed under the mutex at
// most sites is assumed to be guarded by it, and the minority of unguarded
// accesses are flagged. Methods whose name ends in "Locked" are assumed to
// be called with the mutex held (the repo's dispatchLocked convention).
// Function literals inside a method run on their own goroutine's schedule,
// so they start from an unlocked state regardless of the launch site.
var LockHeld = &Check{
	Name: "lockheld",
	Doc:  "struct field accessed without the mutex that guards it at most other sites",
	Run:  runLockHeld,
}

// lockAccess is one field access observed during replay.
type lockAccess struct {
	field *types.Var
	pos   token.Pos
	held  bool
}

func runLockHeld(pass *Pass) {
	info := pass.Pkg.Info

	// Structs declared in this package that embed a sync.Mutex/RWMutex
	// field, keyed by the struct's named type.
	guards := map[*types.Named]*types.Var{}
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			obj, ok := info.Defs[ts.Name].(*types.TypeName)
			if !ok {
				return true
			}
			named, ok := obj.Type().(*types.Named)
			if !ok {
				return true
			}
			st, ok := named.Underlying().(*types.Struct)
			if !ok {
				return true
			}
			for i := 0; i < st.NumFields(); i++ {
				if isSyncMutex(st.Field(i).Type()) {
					guards[named] = st.Field(i)
					break // first mutex field is the guard
				}
			}
			return true
		})
	}
	if len(guards) == 0 {
		return
	}

	// Analyze every method of every guarded struct, collecting accesses.
	var accesses []lockAccess
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || fd.Recv == nil || len(fd.Recv.List) == 0 {
				continue
			}
			names := fd.Recv.List[0].Names
			if len(names) == 0 || names[0].Name == "_" {
				continue
			}
			recv, ok := info.Defs[names[0]].(*types.Var)
			if !ok {
				continue
			}
			named := namedOf(recv.Type())
			mu, ok := guards[named]
			if !ok {
				continue
			}
			run := &lockRun{info: info, recv: recv, mu: mu, sink: &accesses}
			entry := state[lockFact]{}
			if strings.HasSuffix(fd.Name.Name, "Locked") {
				entry[mu] = lkHeld
			}
			run.analyze(fd.Body, entry)
		}
	}

	// Aggregate: a field is considered mutex-guarded when at least two
	// accesses hold the lock and the held accesses outnumber the unheld
	// ones two-to-one. Report the minority.
	type stat struct {
		held, free int
		freeAt     []token.Pos
	}
	stats := map[*types.Var]*stat{}
	for _, a := range accesses {
		st := stats[a.field]
		if st == nil {
			st = &stat{}
			stats[a.field] = st
		}
		if a.held {
			st.held++
		} else {
			st.free++
			st.freeAt = append(st.freeAt, a.pos)
		}
	}
	fields := make([]*types.Var, 0, len(stats))
	for f := range stats {
		fields = append(fields, f)
	}
	sort.Slice(fields, func(i, j int) bool { return fields[i].Pos() < fields[j].Pos() })
	for _, f := range fields {
		st := stats[f]
		if st.free == 0 || st.held < 2 || st.held < 2*st.free {
			continue
		}
		for _, pos := range st.freeAt {
			pass.Reportf(pos,
				"field %s is accessed with the mutex held at %d of %d sites, but not here: lock it, rename the method *Locked, or document why this access is safe",
				f.Name(), st.held, st.held+st.free)
		}
	}
}

// lockRun tracks one method's lock state and records field accesses during
// the replay pass.
type lockRun struct {
	info *types.Info
	recv *types.Var
	mu   *types.Var
	sink *[]lockAccess
}

func (r *lockRun) analyze(body *ast.BlockStmt, entry state[lockFact]) {
	f := &flow[lockFact]{
		cfg:      BuildCFG(body),
		joinFact: joinLock,
		entry:    entry,
		transfer: r.node,
	}
	f.solve()
}

func (r *lockRun) node(n ast.Node, s state[lockFact], rep bool) {
	// Defer of Unlock keeps the lock held until return; defer of anything
	// else is still walked for field accesses.
	if d, ok := n.(*ast.DeferStmt); ok {
		if r.lockOp(d.Call) != 0 {
			return
		}
	}
	ast.Inspect(n, func(c ast.Node) bool {
		switch c := c.(type) {
		case *ast.CallExpr:
			switch r.lockOp(c) {
			case 1:
				s[r.mu] = lkHeld
				return false
			case -1:
				s[r.mu] = lkFree
				return false
			}
		case *ast.FuncLit:
			// Closures run later (often on another goroutine): fresh state.
			sub := &lockRun{info: r.info, recv: r.recv, mu: r.mu}
			if rep {
				sub.sink = r.sink
			}
			sub.analyze(c.Body, nil)
			return false
		case *ast.SelectorExpr:
			if rep && r.sink != nil {
				if fld := r.recvField(c); fld != nil && fld != r.mu {
					*r.sink = append(*r.sink, lockAccess{
						field: fld,
						pos:   c.Sel.Pos(),
						held:  s[r.mu] == lkHeld,
					})
				}
			}
		}
		return true
	})
}

// lockOp classifies a call: +1 for recv.mu.Lock/RLock, -1 for Unlock/RUnlock,
// 0 otherwise.
func (r *lockRun) lockOp(call *ast.CallExpr) int {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return 0
	}
	inner, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
	if !ok {
		return 0
	}
	if rootObject(r.info, inner.X) != r.recv {
		return 0
	}
	if fld, _ := r.info.Uses[inner.Sel].(*types.Var); fld != r.mu {
		return 0
	}
	switch sel.Sel.Name {
	case "Lock", "RLock":
		return 1
	case "Unlock", "RUnlock":
		return -1
	}
	return 0
}

// recvField resolves sel to a direct field of the receiver's struct
// (recv.field, (&recv).field, recv.field[i] roots elsewhere).
func (r *lockRun) recvField(sel *ast.SelectorExpr) *types.Var {
	if objectOf(r.info, sel.X) != r.recv {
		return nil
	}
	fld, ok := r.info.Uses[sel.Sel].(*types.Var)
	if !ok || !fld.IsField() {
		return nil
	}
	return fld
}

// isSyncMutex reports whether t is sync.Mutex or sync.RWMutex.
func isSyncMutex(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// namedOf unwraps pointers to the named struct type, if any.
func namedOf(t types.Type) *types.Named {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}
