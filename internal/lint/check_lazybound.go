package lint

import (
	"go/ast"
	"strings"
)

// LazyBound flags lazy residues escaping their accumulation window. The
// lazy-reduction kernels in internal/ring deliberately return values in
// [0, 2q) — congruent to the canonical residue but not equal to it — and
// their contract requires every lazy window to close with a ReduceFinal
// sweep (or feed the NTT kernels, which fold the sweep into their last
// pass). Outside internal/ring this check enforces that contract
// heuristically: a value produced by a *Lazy helper (or held in a
// Lazy-suffixed uint64 variable) must not flow into a consumer that expects
// canonical inputs unless the enclosing function also performs a
// canonicalizing sweep.
var LazyBound = &Check{
	Name: "lazybound",
	Doc:  "lazy [0,2q) residue flows into a canonical-input consumer with no ReduceFinal sweep in the enclosing function",
	Run:  runLazyBound,
}

func runLazyBound(pass *Pass) {
	if pass.InPkg(ringPkg) {
		// The ring package is the home of the lazy kernels; its windows are
		// verified by the bit-identity tests and the modular-ops fuzzer.
		return
	}
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if hasCanonicalizingSweep(fd.Body) {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				name := calleeName(call)
				if name == "" || lazyAware(name) {
					return true
				}
				for _, arg := range call.Args {
					if src, ok := lazySource(pass, arg); ok {
						pass.Reportf(arg.Pos(),
							"lazy residue from %s flows into %s, which expects canonical inputs, and this function has no ReduceFinal sweep",
							src, name)
					}
				}
				return true
			})
		}
	}
}

// calleeName returns the bare name of a call's target: the selector's final
// element for method/package calls, the identifier for plain calls, and ""
// for anything unresolvable (indirect calls through expressions).
func calleeName(call *ast.CallExpr) string {
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		return fn.Name
	case *ast.SelectorExpr:
		return fn.Sel.Name
	}
	return ""
}

// lazyAware reports whether a callee tolerates lazy [0,2q) inputs: the lazy
// helper family itself, the canonicalizing sweeps, and the NTT entry points
// (whose kernels fold the sweep into their last pass).
func lazyAware(name string) bool {
	return isLazyHelper(name) ||
		strings.Contains(name, "ReduceFinal") ||
		isNTTEntry(name)
}

// isLazyHelper matches the lazy kernel family by naming contract: the scalar
// and row helpers end in Lazy (MulAddLazy, MulAddRowLazy, …); the batch
// layer's kernels append Batch to a Lazy-bearing stem (MulAddRowLazyBatch,
// MulAddRowLazyGatherBatch) — they stream one shared row across many lazy
// accumulators under the same [0,2q) contract.
func isLazyHelper(name string) bool {
	return strings.HasSuffix(name, "Lazy") ||
		(strings.HasSuffix(name, "Batch") && strings.Contains(name, "Lazy"))
}

// isNTTEntry matches the transform entry points that accept lazy input,
// including the batch layer's shared-scratch variants.
func isNTTEntry(name string) bool {
	return name == "Forward" || name == "Inverse" ||
		name == "ForwardBatch" || name == "InverseBatch" ||
		strings.Contains(name, "NTT")
}

// hasCanonicalizingSweep reports whether the function body contains a call
// that closes a lazy window: a ReduceFinal sweep or an NTT transform.
func hasCanonicalizingSweep(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name := calleeName(call)
		if strings.Contains(name, "ReduceFinal") || isNTTEntry(name) {
			found = true
			return false
		}
		return true
	})
	return found
}

// lazySource reports whether expr produces a lazy residue under the naming
// contract: a direct call to a *Lazy helper, or a Lazy-suffixed uint64
// variable.
func lazySource(pass *Pass, expr ast.Expr) (string, bool) {
	switch e := expr.(type) {
	case *ast.CallExpr:
		if name := calleeName(e); strings.HasSuffix(name, "Lazy") {
			return name, true
		}
	case *ast.Ident:
		if strings.HasSuffix(e.Name, "Lazy") && isUint64(pass.Pkg.Info, e) {
			return e.Name, true
		}
	}
	return "", false
}
