package lint

import "go/ast"

// hotPkgs are the packages whose concurrency must flow through the bounded
// worker pool in internal/ring/pool.go.
var hotPkgs = []string{"internal/ring", "internal/ckks", "internal/hefloat"}

// RawGo flags `go` statements in the hot arithmetic packages. Limb- and
// ciphertext-level fan-out there must go through ring.ForEachLimb /
// ring.RunTasks: the pool's non-blocking slot budget is what keeps nested
// parallelism (cluster cards × evaluator ops × limbs) bounded by
// ring.MaxWorkers instead of oversubscribing the machine, and its
// caller-participates rule is what makes nesting deadlock-free. A raw `go`
// statement bypasses both guarantees.
var RawGo = &Check{
	Name: "rawgo",
	Doc:  "raw go statement in a hot package (bypasses the bounded worker pool)",
	Run:  runRawGo,
}

func runRawGo(pass *Pass) {
	if !pass.InPkg(hotPkgs...) {
		return
	}
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if g, ok := n.(*ast.GoStmt); ok {
				pass.Reportf(g.Go, "raw go statement in hot package %s: use ring.ForEachLimb/RunTasks (bounded pool)", pass.Pkg.Rel)
			}
			return true
		})
	}
}
