package lint

// Call-graph layer of the SSA-lite engine: a module-wide index from
// types.Func objects to their declarations, static callee resolution, and
// the two graph queries the interprocedural checks need — bottom-up summary
// fixpoints (lazydomain) and transitive reachability from go statements
// (ctxleak). Indirect calls (function values, interface methods) resolve to
// nothing and are treated conservatively by each client.

import (
	"go/ast"
	"go/types"
)

// funcIndex maps every function and method declared in the module to its
// declaration, and every function literal to its enclosing package.
type funcIndex struct {
	mod   *Module
	decls map[*types.Func]*ast.FuncDecl
	pkgOf map[*types.Func]*Package
}

// buildFuncIndex indexes every function declaration of the module.
func buildFuncIndex(mod *Module) *funcIndex {
	idx := &funcIndex{
		mod:   mod,
		decls: map[*types.Func]*ast.FuncDecl{},
		pkgOf: map[*types.Func]*Package{},
	}
	for _, pkg := range mod.Pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				idx.decls[fn] = fd
				idx.pkgOf[fn] = pkg
			}
		}
	}
	return idx
}

// callee resolves a call expression to the static types.Func it invokes
// (package function, method, or conversion-free selector call). Returns nil
// for indirect calls through function values or type conversions.
func callee(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// goRoots collects the launch sites of every goroutine in a package: the
// function literals spawned directly (`go func(){...}()`) and the declared
// functions named by go statements (`go s.runJob(...)`).
type goRoots struct {
	lits  []*ast.FuncLit
	funcs []*types.Func
}

func collectGoRoots(pkg *Package) goRoots {
	var roots goRoots
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			switch fun := ast.Unparen(g.Call.Fun).(type) {
			case *ast.FuncLit:
				roots.lits = append(roots.lits, fun)
			default:
				if fn := callee(pkg.Info, g.Call); fn != nil {
					roots.funcs = append(roots.funcs, fn)
				}
			}
			return true
		})
	}
	return roots
}

// goReachable computes the set of declared functions transitively reachable
// from the package's goroutine launch sites through static calls (function
// literals along the way are traversed in place). The traversal follows
// calls into other packages of the module but not into the standard library.
func goReachable(idx *funcIndex, pkg *Package) map[*types.Func]bool {
	reached := map[*types.Func]bool{}
	var visitBody func(info *types.Info, body ast.Node)
	var visitFunc func(fn *types.Func)

	visitBody = func(info *types.Info, body ast.Node) {
		ast.Inspect(body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if fn := callee(info, call); fn != nil {
				visitFunc(fn)
			}
			return true
		})
	}
	visitFunc = func(fn *types.Func) {
		if reached[fn] {
			return
		}
		decl, ok := idx.decls[fn]
		if !ok || decl.Body == nil {
			return // out of module (stdlib) or bodyless
		}
		reached[fn] = true
		visitBody(idx.pkgOf[fn].Info, decl.Body)
	}

	roots := collectGoRoots(pkg)
	for _, fn := range roots.funcs {
		visitFunc(fn)
	}
	for _, lit := range roots.lits {
		visitBody(pkg.Info, lit.Body)
	}
	return reached
}
