package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ringPkg is the module-relative path of the modular-arithmetic substrate;
// it is the only package allowed to perform raw coefficient arithmetic.
const ringPkg = "internal/ring"

// RawMod flags raw +, -, *, % on uint64 values outside internal/ring. In the
// accelerator every coefficient passes through a hardware reduction unit; in
// this substrate the equivalent rule is that mod-q arithmetic must flow
// through the ring.Modulus / ring.MontgomeryModulus / AddMod-family helpers —
// including the sanctioned lazy family (AddModLazy, SubModLazy,
// MulModShoupLazy, MulAddShoupLazy, MulAddLazy, MulSubLazy) closed by
// ReduceFinal / ReduceFinalVec — so a raw operator on uint64 residues
// signals a missing Barrett/Montgomery reduction (or a lazy value silently
// exceeding its contract; see the companion lazybound check).
var RawMod = &Check{
	Name: "rawmod",
	Doc:  "raw +,-,*,% on uint64 values outside internal/ring (missing modular reduction)",
	Run:  runRawMod,
}

var rawModOps = map[token.Token]bool{
	token.ADD: true, token.SUB: true, token.MUL: true, token.REM: true,
	token.ADD_ASSIGN: true, token.SUB_ASSIGN: true, token.MUL_ASSIGN: true, token.REM_ASSIGN: true,
}

func runRawMod(pass *Pass) {
	if pass.InPkg(ringPkg) {
		return
	}
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if !rawModOps[n.Op] {
					return true
				}
				if tv, ok := info.Types[n]; ok && tv.Value != nil {
					return true // constant-folded: no runtime coefficient math
				}
				if isUint64(info, n.X) && isUint64(info, n.Y) {
					pass.Reportf(n.OpPos, "raw uint64 %q outside %s: route modular arithmetic through ring helpers", n.Op, ringPkg)
				}
			case *ast.AssignStmt:
				if !rawModOps[n.Tok] || len(n.Lhs) != 1 || len(n.Rhs) != 1 {
					return true
				}
				if isUint64(info, n.Lhs[0]) && isUint64(info, n.Rhs[0]) {
					pass.Reportf(n.TokPos, "raw uint64 %q outside %s: route modular arithmetic through ring helpers", n.Tok, ringPkg)
				}
			}
			return true
		})
	}
}

// isUint64 reports whether expr's static type has underlying type uint64.
func isUint64(info *types.Info, expr ast.Expr) bool {
	t := info.TypeOf(expr)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Kind() == types.Uint64
}
