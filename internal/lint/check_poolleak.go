package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// PoolLeak flags pooled scratch buffers (ring.GetScratch / ring.GetRow
// results) that leave their acquire/release window: values returned from the
// acquiring function, stored into struct fields, slices or maps, sent on
// channels, placed in composite literals, or captured by closures that
// outlive the call (goroutines, stored/returned func values). A leaked
// buffer is returned to the sync.Pool while still referenced, and the next
// GetScratch hands the same memory to an unrelated limb — a silent
// cross-ciphertext corruption no local test catches.
//
// Closures passed directly to the bounded pool (ring.ForEachLimb /
// ring.RunTasks) or invoked immediately are inside the window and are not
// flagged. A function that acquires a buffer and neither releases nor
// visibly hands it off is flagged at the acquisition site.
var PoolLeak = &Check{
	Name: "poolleak",
	Doc:  "pooled scratch buffer escapes its acquire/release window",
	Run:  runPoolLeak,
}

var poolAcquire = map[string]bool{"GetScratch": true, "GetRow": true}
var poolRelease = map[string]bool{"PutScratch": true, "PutRow": true}

func runPoolLeak(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			analyzePoolFunc(pass, fd.Body)
		}
	}
}

// pooledVar tracks one acquired buffer within a function body.
type pooledVar struct {
	obj      types.Object
	acquire  ast.Node
	escaped  bool
	released bool
}

func analyzePoolFunc(pass *Pass, body *ast.BlockStmt) {
	info := pass.Pkg.Info

	// Pass 1: find acquisitions and releases.
	var pooled []*pooledVar
	byObj := map[types.Object]*pooledVar{}
	ast.Inspect(body, func(n ast.Node) bool {
		a, ok := n.(*ast.AssignStmt)
		if !ok || len(a.Lhs) != len(a.Rhs) {
			return true
		}
		for i := range a.Rhs {
			call, ok := a.Rhs[i].(*ast.CallExpr)
			if !ok {
				continue
			}
			fn, ok := ringCallee(info, call)
			if !ok || !poolAcquire[fn.Name()] {
				continue
			}
			id, ok := a.Lhs[i].(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			obj := info.Defs[id]
			if obj == nil {
				obj = info.Uses[id]
			}
			if obj == nil {
				continue
			}
			pv := &pooledVar{obj: obj, acquire: a}
			pooled = append(pooled, pv)
			byObj[obj] = pv
		}
		return true
	})

	// Pass 2: find escapes (and releases) with ancestry context.
	inspectWithStack(body, func(n ast.Node, stack []ast.Node) bool {
		switch n := n.(type) {
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if pv := usedPooled(info, byObj, res); pv != nil {
					pv.escaped = true
					pass.Reportf(n.Pos(), "pooled scratch %s returned: it outlives its acquire/release window", pv.obj.Name())
				} else if c := findPoolGet(info, res); c != nil {
					pass.Reportf(n.Pos(), "pooled scratch returned directly: it can never be released")
				}
			}
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i := range n.Lhs {
				pv := directPooled(info, byObj, n.Rhs[i])
				if pv == nil {
					continue
				}
				switch n.Lhs[i].(type) {
				case *ast.SelectorExpr:
					pv.escaped = true
					pass.Reportf(n.Pos(), "pooled scratch %s stored into a struct field: it escapes its acquire/release window", pv.obj.Name())
				case *ast.IndexExpr:
					pv.escaped = true
					pass.Reportf(n.Pos(), "pooled scratch %s stored into a slice/map element: it escapes its acquire/release window", pv.obj.Name())
				}
			}
		case *ast.CompositeLit:
			for _, elt := range n.Elts {
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					elt = kv.Value
				}
				if pv := directPooled(info, byObj, elt); pv != nil {
					pv.escaped = true
					pass.Reportf(elt.Pos(), "pooled scratch %s placed in a composite literal: it escapes its acquire/release window", pv.obj.Name())
				}
			}
		case *ast.SendStmt:
			if pv := usedPooled(info, byObj, n.Value); pv != nil {
				pv.escaped = true
				pass.Reportf(n.Pos(), "pooled scratch %s sent on a channel: it escapes its acquire/release window", pv.obj.Name())
			}
		case *ast.CallExpr:
			if fn, ok := ringCallee(info, n); ok && poolRelease[fn.Name()] {
				for _, arg := range n.Args {
					if pv := directPooled(info, byObj, arg); pv != nil {
						pv.released = true
					}
				}
			}
		case *ast.FuncLit:
			checkClosureCapture(pass, info, byObj, n, stack)
		}
		return true
	})

	// Pass 3: acquisitions that neither escape (ownership handed off — the
	// escape is already reported) nor release are leaks in place.
	for _, pv := range pooled {
		if !pv.escaped && !pv.released {
			pass.Reportf(pv.acquire.Pos(), "pooled scratch %s acquired but never released (no PutScratch/PutRow in this function)", pv.obj.Name())
		}
	}
}

// checkClosureCapture reports a FuncLit that captures a pooled variable
// declared outside it, unless the closure runs within the acquire/release
// window: passed directly to the bounded pool (a function of internal/ring),
// invoked immediately, or deferred.
func checkClosureCapture(pass *Pass, info *types.Info, byObj map[types.Object]*pooledVar, fl *ast.FuncLit, stack []ast.Node) {
	var captured *pooledVar
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := info.Uses[id]
		pv := byObj[obj]
		if pv == nil {
			return true
		}
		// Declared inside the closure: not a capture.
		if obj.Pos() >= fl.Pos() && obj.Pos() <= fl.End() {
			return true
		}
		captured = pv
		return false
	})
	if captured == nil || len(stack) == 0 {
		return
	}
	parent := stack[len(stack)-1]
	if call, ok := parent.(*ast.CallExpr); ok {
		if call.Fun == fl {
			// Immediately invoked (or deferred): runs inside the window —
			// unless it is the body of a go statement, which outlives it.
			if len(stack) >= 2 {
				if _, isGo := stack[len(stack)-2].(*ast.GoStmt); isGo {
					captured.escaped = true
					pass.Reportf(fl.Pos(), "pooled scratch %s captured by a goroutine: it outlives the acquire/release window", captured.obj.Name())
				}
			}
			return
		}
		// Argument position: allowed only for the bounded pool itself.
		if fn, ok := ringCallee(info, call); ok && (fn.Name() == "ForEachLimb" || fn.Name() == "RunTasks") {
			return
		}
	}
	captured.escaped = true
	pass.Reportf(fl.Pos(), "pooled scratch %s captured by an escaping closure: it can outlive the acquire/release window", captured.obj.Name())
}

// ringCallee resolves call's callee to a function of internal/ring.
func ringCallee(info *types.Info, call *ast.CallExpr) (*types.Func, bool) {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil, false
	}
	fn, ok := info.Uses[id].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return nil, false
	}
	p := fn.Pkg().Path()
	if p != "internal/ring" && !strings.HasSuffix(p, "/internal/ring") {
		return nil, false
	}
	return fn, true
}

// directPooled returns the pooled variable when expr is exactly an identifier
// bound to one.
func directPooled(info *types.Info, byObj map[types.Object]*pooledVar, expr ast.Expr) *pooledVar {
	id, ok := expr.(*ast.Ident)
	if !ok {
		return nil
	}
	return byObj[info.Uses[id]]
}

// usedPooled returns a pooled variable referenced anywhere in expr's subtree.
func usedPooled(info *types.Info, byObj map[types.Object]*pooledVar, expr ast.Expr) *pooledVar {
	var found *pooledVar
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if pv := byObj[info.Uses[id]]; pv != nil {
				found = pv
				return false
			}
		}
		return true
	})
	return found
}

// findPoolGet returns a GetScratch/GetRow call appearing in expr's subtree.
func findPoolGet(info *types.Info, expr ast.Expr) *ast.CallExpr {
	var found *ast.CallExpr
	ast.Inspect(expr, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if fn, ok := ringCallee(info, call); ok && poolAcquire[fn.Name()] {
				found = call
				return false
			}
		}
		return true
	})
	return found
}
