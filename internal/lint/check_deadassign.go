package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// DeadAssign flags `_ = x` blank assignments of a plain identifier. These
// exist only to silence the compiler's unused-variable error, which means
// either the variable is dead (delete it) or it is load-bearing in a
// non-obvious way (annotate it with the reason). Interface-satisfaction
// declarations (`var _ Iface = T{}`) are declarations, not assignments, and
// are not flagged.
var DeadAssign = &Check{
	Name: "deadassign",
	Doc:  "blank assignment of a plain identifier (dead variable kept alive)",
	Run:  runDeadAssign,
}

func runDeadAssign(pass *Pass) {
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			a, ok := n.(*ast.AssignStmt)
			if !ok || a.Tok != token.ASSIGN || len(a.Lhs) != 1 || len(a.Rhs) != 1 {
				return true
			}
			lhs, ok := a.Lhs[0].(*ast.Ident)
			if !ok || lhs.Name != "_" {
				return true
			}
			rhs, ok := a.Rhs[0].(*ast.Ident)
			if !ok {
				return true
			}
			if _, isVar := info.Uses[rhs].(*types.Var); !isVar {
				return true
			}
			pass.Reportf(a.Pos(), "dead blank assignment of %s: delete the variable or annotate why it must stay", rhs.Name)
			return true
		})
	}
}
