package conformance

import (
	"fmt"
	"sort"

	"hydra/internal/ckks"
	"hydra/internal/hefloat"
)

// paramKey groups programs that can share one parameter environment (and
// hence one key generation, the expensive part of the matrix).
type paramKey struct {
	logN, levels, logP, sparse int
}

func keyOf(s *ProgramSpec) paramKey {
	k := paramKey{logN: s.Params.LogN, levels: s.Params.Levels, logP: s.Params.LogP, sparse: s.Params.Sparse}
	if k.logP == 0 {
		k.logP = 50
	}
	return k
}

// Env is one fully keyed CKKS environment. The harness builds each
// environment twice from the same deterministic seeds — a main instance and a
// reference twin whose ring dispatches through the radix-2 five-pass NTT
// oracles (ring.SetReferenceNTT) — so ciphertexts produced by shared code
// paths are bit-comparable across the two.
type Env struct {
	Key     paramKey
	Params  *ckks.Parameters
	Encoder *ckks.Encoder
	PK      *ckks.PublicKey
	SK      *ckks.SecretKey
	Dec     *ckks.Decryptor
	Eval    *ckks.Evaluator

	boot *hefloat.Bootstrapper // lazily built; reference flag follows the env
	ref  bool
}

// bootOptions is the one bootstrapper configuration the corpus uses: the
// default K=16 overflow bound (8 double-angle iterations) over a sparse
// secret, matching the repo's bootstrap tests.
func bootOptions(reference bool) hefloat.BootstrapperOptions {
	return hefloat.BootstrapperOptions{K: 16, ReferenceBSGS: reference}
}

// rotationsFor returns every rotation index the given program may need on any
// engine (naive, BSGS baby/giant, cluster lowering), plus whether conjugation
// keys are required.
func rotationsFor(s *ProgramSpec) (rots []int, conjugate bool, err error) {
	slots := s.Slots()
	set := map[int]bool{}
	add := func(rs ...int) {
		for _, r := range rs {
			if r != 0 {
				set[r] = true
			}
		}
	}
	for _, op := range s.Ops {
		switch op.Op {
		case "rotate":
			add(op.K)
		case "rotsum", "rotsumext":
			for i := 1; i < op.K; i++ {
				add(i)
			}
		case "conjugate":
			conjugate = true
		case "lintrans":
			m, err := GenMatrix(op.Matrix, slots)
			if err != nil {
				return nil, false, err
			}
			lt, err := hefloat.NewLinearTransform(m)
			if err != nil {
				return nil, false, err
			}
			add(lt.Rotations()...)
			if op.BS > 0 {
				add(lt.RotationsBSGS(op.BS)...)
			}
		case "pcmm":
			add(hefloat.PCMMRotations(isqrt(slots))...)
		case "ccmm":
			add(hefloat.CCMMRotations(isqrt(slots))...)
		case "bootstrap":
			conjugate = true
			// BootstrapRotations needs only slot/baby-step shape, both fully
			// determined by the spec; compute without a parameter set by
			// replicating the baby/giant split.
			bs := 1
			for bs*bs < slots {
				bs <<= 1
			}
			for j := 1; j < bs; j++ {
				add(j)
			}
			for g := bs; g < slots; g += bs {
				add(g)
			}
		}
	}
	rots = make([]int, 0, len(set))
	for r := range set {
		rots = append(rots, r)
	}
	sort.Ints(rots)
	return rots, conjugate, nil
}

// buildEnv constructs one environment. reference flips the ring onto the
// radix-2 reference NTT kernels after key generation; since the kernel
// families are bit-identical (pinned in internal/ring), the keys themselves
// are unaffected and the main and reference instances hold identical key
// material.
func buildEnv(key paramKey, rots []int, conjugate, reference bool) (*Env, error) {
	logQ := make([]int, 0, key.levels+1)
	logQ = append(logQ, 50)
	for i := 0; i < key.levels; i++ {
		logQ = append(logQ, 45)
	}
	params, err := ckks.NewParameters(ckks.ParametersLiteral{
		LogN:  key.logN,
		LogQ:  logQ,
		LogP:  key.logP,
		Scale: 1 << 45,
	})
	if err != nil {
		return nil, fmt.Errorf("conformance: params %+v: %w", key, err)
	}
	kg := ckks.NewKeyGenerator(params, 1)
	var sk *ckks.SecretKey
	if key.sparse > 0 {
		sk = kg.GenSecretKeySparse(key.sparse)
	} else {
		sk = kg.GenSecretKey()
	}
	pk := kg.GenPublicKey(sk)
	rlk := kg.GenRelinearizationKey(sk)
	rtks := kg.GenRotationKeys(sk, rots, conjugate)
	env := &Env{
		Key:     key,
		Params:  params,
		Encoder: ckks.NewEncoder(params),
		PK:      pk,
		SK:      sk,
		Dec:     ckks.NewDecryptor(params, sk),
		Eval:    ckks.NewEvaluator(params, rlk, rtks),
		ref:     reference,
	}
	if reference {
		params.RingQP().SetReferenceNTT(true)
	}
	return env, nil
}

// bootstrapper returns the env's lazily built bootstrapper (reference envs
// get the ReferenceBSGS variant).
func (e *Env) bootstrapper() (*hefloat.Bootstrapper, error) {
	if e.boot != nil {
		return e.boot, nil
	}
	bt, err := hefloat.NewBootstrapper(e.Params, e.Encoder, e.Eval, bootOptions(e.ref))
	if err != nil {
		return nil, err
	}
	e.boot = bt
	return bt, nil
}

// encryptInputs encrypts the program's inputs with a fresh deterministic
// encryptor (seed 2). A fresh sampler per program run makes the ciphertexts
// bit-identical across engines and across the main/reference environment
// pair, which is what lets the harness compare outputs bitwise.
func encryptInputs(e *Env, s *ProgramSpec) (map[string]*ckks.Ciphertext, error) {
	encr := ckks.NewEncryptor(e.Params, e.PK, 2)
	level := e.Params.MaxLevel()
	if s.usesBootstrap() {
		level = 0
	}
	out := make(map[string]*ckks.Ciphertext, len(s.Inputs))
	for _, in := range s.Inputs {
		vals, err := GenVector(in.Gen, s.Slots())
		if err != nil {
			return nil, err
		}
		pt, err := e.Encoder.EncodeAtLevel(vals, e.Params.DefaultScale(), level)
		if err != nil {
			return nil, err
		}
		out[in.Name] = encr.Encrypt(pt)
	}
	return out, nil
}
