package conformance

import (
	"flag"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite testdata/golden_matrix.json from this run")

// TestConformanceMatrix runs the whole corpus against all four engines,
// fails on any cell outside its program's budget, and compares the pass
// matrix against the checked-in golden file. Under -short the Heavy programs
// (bootstrap) are skipped — that reduced matrix is what the CI -race leg
// runs — and the golden comparison tolerates the skips.
func TestConformanceMatrix(t *testing.T) {
	h, err := NewHarness(filepath.Join("testdata", "programs"))
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()

	if len(h.Programs) < 25 {
		t.Errorf("corpus has %d programs, want >= 25", len(h.Programs))
	}

	m, err := h.Run(RunOptions{Short: testing.Short(), Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range m.Failures() {
		t.Errorf("conformance failure: %s", f)
	}

	golden := filepath.Join("testdata", "golden_matrix.json")
	if *update {
		if testing.Short() {
			t.Fatal("refusing to -update the golden matrix from a -short (reduced) run")
		}
		if t.Failed() {
			t.Fatal("refusing to -update the golden matrix from a failing run")
		}
		if err := WriteGolden(golden, m); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden matrix rewritten: %s", golden)
		return
	}
	g, err := LoadGolden(golden)
	if err != nil {
		t.Fatalf("loading golden matrix (run with -update to create): %v", err)
	}
	for _, v := range CompareGolden(m, g) {
		t.Errorf("golden matrix regression: %s", v)
	}
}

// TestInterpreterSelfConsistency spot-checks the plaintext interpreter
// against hand-computed slots, so matrix failures can be trusted to implicate
// an engine rather than the oracle.
func TestInterpreterSelfConsistency(t *testing.T) {
	spec := &ProgramSpec{
		Name:   "unit",
		Params: ParamSpec{LogN: 5, Levels: 3},
		Inputs: []InputSpec{{Name: "x", Gen: "ramp"}},
		Ops: []OpSpec{
			{Op: "rotate", Dst: "r", A: "x", K: 3},
			{Op: "mulconst", Dst: "m", A: "r", Const: 2},
			{Op: "addconst", Dst: "y", A: "m", Const: 0.5},
		},
		Output: "y",
		Budget: 1,
	}
	got, err := Interpret(spec)
	if err != nil {
		t.Fatal(err)
	}
	x, _ := GenVector("ramp", spec.Slots())
	for j := range got {
		want := x[(j+3)%spec.Slots()]*2 + 0.5
		if e := real(got[j] - want); e > 1e-12 || e < -1e-12 {
			t.Fatalf("slot %d: got %v want %v", j, got[j], want)
		}
	}
}
