package conformance

import (
	"context"
	"fmt"
	"math"
	"sort"
	"time"

	"hydra/internal/ckks"
	"hydra/internal/cluster"
	"hydra/internal/hefloat"
	"hydra/internal/serve"
)

// clusterCards is the grant size every conformance program is lowered for.
// Two cards force real switch traffic (every program with more than one op
// crosses the card boundary at least once) while keeping the matrix fast.
const clusterCards = 2

// lowerer translates a ProgramSpec into per-card instruction streams for the
// functional cluster runtime. It tracks, statically, which cards hold each
// register (emitting Send/Recv pairs on demand) and a per-register level
// shadow so plaintext operands (diagonals, masks) are encoded at the level
// the ciphertext will actually occupy at runtime. The shadow mirrors the
// evaluator's level rules exactly; scales never need shadowing because every
// OpAdd the lowerings emit joins operands with identical op histories.
type lowerer struct {
	env   *Env
	s     *ProgramSpec
	progs [][]cluster.Instr
	level map[string]int
	on    map[string]map[int]bool
	tag   int
	tmp   int
}

// lowerProgram returns the per-card instruction streams of spec. Inputs are
// preloaded onto card 0 and the output register ends on card 0.
func lowerProgram(env *Env, s *ProgramSpec) ([][]cluster.Instr, error) {
	l := &lowerer{
		env:   env,
		s:     s,
		progs: make([][]cluster.Instr, clusterCards),
		level: map[string]int{},
		on:    map[string]map[int]bool{},
	}
	inLevel := env.Params.MaxLevel()
	if s.usesBootstrap() {
		inLevel = 0
	}
	for _, in := range s.Inputs {
		l.level[in.Name] = inLevel
		l.on[in.Name] = map[int]bool{0: true}
	}
	for i, op := range s.Ops {
		if err := l.lowerOp(i, op); err != nil {
			return nil, fmt.Errorf("conformance: lowering %s op %d (%s): %w", s.Name, i, op.Op, err)
		}
	}
	if err := l.ensureOn(s.Output, 0); err != nil {
		return nil, err
	}
	return l.progs, nil
}

func (l *lowerer) emit(card int, ins cluster.Instr) {
	l.progs[card] = append(l.progs[card], ins)
}

func (l *lowerer) newTmp(prefix string) string {
	l.tmp++
	return fmt.Sprintf("%s#%d", prefix, l.tmp)
}

// def records reg as produced on card at the given level.
func (l *lowerer) def(reg string, card, level int) {
	l.level[reg] = level
	if l.on[reg] == nil {
		l.on[reg] = map[int]bool{}
	}
	l.on[reg][card] = true
}

// ensureOn moves reg to card through the switch if it is not already there.
func (l *lowerer) ensureOn(reg string, card int) error {
	holders := l.on[reg]
	if holders == nil {
		return fmt.Errorf("register %q undefined", reg)
	}
	if holders[card] {
		return nil
	}
	src := -1
	for c := range holders {
		if src == -1 || c < src {
			src = c
		}
	}
	l.tag++
	l.emit(src, cluster.Instr{Op: cluster.OpSend, Src1: reg, Peer: card, Tag: l.tag})
	l.emit(card, cluster.Instr{Op: cluster.OpRecv, Dst: reg, Tag: l.tag})
	holders[card] = true
	return nil
}

// qAt returns the top modulus at the given level, for level-shadow math only.
func (l *lowerer) qAt(level int) float64 {
	return float64(l.env.Params.Q()[level])
}

func (l *lowerer) lowerOp(idx int, op OpSpec) error {
	// Alternate the home card per op so even element-wise chains exercise
	// the switch.
	card := idx % clusterCards
	switch op.Op {
	case "add", "sub", "mul":
		if err := l.ensureOn(op.A, card); err != nil {
			return err
		}
		if err := l.ensureOn(op.B, card); err != nil {
			return err
		}
		lvl := minInt(l.level[op.A], l.level[op.B])
		switch op.Op {
		case "add":
			l.emit(card, cluster.Instr{Op: cluster.OpAdd, Dst: op.Dst, Src1: op.A, Src2: op.B})
		case "sub":
			l.emit(card, cluster.Instr{Op: cluster.OpSub, Dst: op.Dst, Src1: op.A, Src2: op.B})
		case "mul":
			t := l.newTmp("mul")
			l.emit(card, cluster.Instr{Op: cluster.OpCMult, Dst: t, Src1: op.A, Src2: op.B})
			l.emit(card, cluster.Instr{Op: cluster.OpRescale, Dst: op.Dst, Src1: t})
			lvl--
		}
		l.def(op.Dst, card, lvl)
	case "neg", "conjugate", "rotate", "addconst", "mulconst", "mulplain":
		if err := l.ensureOn(op.A, card); err != nil {
			return err
		}
		lvl := l.level[op.A]
		switch op.Op {
		case "neg":
			l.emit(card, cluster.Instr{Op: cluster.OpNeg, Dst: op.Dst, Src1: op.A})
		case "conjugate":
			l.emit(card, cluster.Instr{Op: cluster.OpConjugate, Dst: op.Dst, Src1: op.A})
		case "rotate":
			l.emit(card, cluster.Instr{Op: cluster.OpRotate, Dst: op.Dst, Src1: op.A, Imm: op.K})
		case "addconst":
			l.emit(card, cluster.Instr{Op: cluster.OpAddConst, Dst: op.Dst, Src1: op.A, Const: op.Const})
		case "mulconst":
			l.emit(card, cluster.Instr{Op: cluster.OpMulConst, Dst: op.Dst, Src1: op.A, Const: op.Const})
			lvl--
		case "mulplain":
			vals, err := GenVector(op.Gen, l.s.Slots())
			if err != nil {
				return err
			}
			pt, err := l.env.Encoder.EncodeAtLevel(vals, l.env.Params.DefaultScale(), lvl)
			if err != nil {
				return err
			}
			t := l.newTmp("pm")
			l.emit(card, cluster.Instr{Op: cluster.OpPMult, Dst: t, Src1: op.A, Plain: pt})
			l.emit(card, cluster.Instr{Op: cluster.OpRescale, Dst: op.Dst, Src1: t})
			lvl--
		}
		l.def(op.Dst, card, lvl)
	case "rotsum", "rotsumext":
		return l.lowerRotSum(op)
	case "lintrans":
		m, err := GenMatrix(op.Matrix, l.s.Slots())
		if err != nil {
			return err
		}
		lt, err := hefloat.NewLinearTransform(m)
		if err != nil {
			return err
		}
		if op.BS > 0 {
			return l.lowerBSGSSplit(op.Dst, op.A, lt, op.BS)
		}
		return l.lowerNaiveSplit(op.Dst, op.A, lt)
	case "pcmm":
		w, err := GenWeights(op.Matrix, isqrt(l.s.Slots()))
		if err != nil {
			return err
		}
		lt, err := hefloat.NewPCMMTransform(w, l.s.Slots())
		if err != nil {
			return err
		}
		return l.lowerNaiveSplit(op.Dst, op.A, lt)
	case "ccmm":
		return l.lowerCCMM(op.Dst, op.A, op.B)
	case "poly":
		return l.lowerPoly(op.Dst, op.A, op.Coeffs)
	case "bootstrap":
		return l.lowerBootstrap(op.Dst, op.A)
	default:
		return fmt.Errorf("unknown op %q", op.Op)
	}
	return nil
}

// lowerRotSum splits Σ_{i<K} rotate(A, i) across both cards: card 0 folds the
// low half of the rotation range, card 1 the high half, and the partials meet
// on card 0. All terms share A's scale, so the merge is a plain OpAdd.
func (l *lowerer) lowerRotSum(op OpSpec) error {
	if op.K < 1 {
		return fmt.Errorf("rotsum width %d", op.K)
	}
	if err := l.ensureOn(op.A, 0); err != nil {
		return err
	}
	half := (op.K + 1) / 2
	acc0 := l.newTmp("rs0")
	l.emit(0, cluster.Instr{Op: cluster.OpCopy, Dst: acc0, Src1: op.A})
	for r := 1; r < half; r++ {
		t := l.newTmp("rot")
		l.emit(0, cluster.Instr{Op: cluster.OpRotate, Dst: t, Src1: op.A, Imm: r})
		l.emit(0, cluster.Instr{Op: cluster.OpAdd, Dst: acc0, Src1: acc0, Src2: t})
	}
	if half < op.K {
		if err := l.ensureOn(op.A, 1); err != nil {
			return err
		}
		acc1 := l.newTmp("rs1")
		l.emit(1, cluster.Instr{Op: cluster.OpRotate, Dst: acc1, Src1: op.A, Imm: half})
		for r := half + 1; r < op.K; r++ {
			t := l.newTmp("rot")
			l.emit(1, cluster.Instr{Op: cluster.OpRotate, Dst: t, Src1: op.A, Imm: r})
			l.emit(1, cluster.Instr{Op: cluster.OpAdd, Dst: acc1, Src1: acc1, Src2: t})
		}
		l.def(acc1, 1, l.level[op.A])
		if err := l.ensureOn(acc1, 0); err != nil {
			return err
		}
		l.emit(0, cluster.Instr{Op: cluster.OpAdd, Dst: op.Dst, Src1: acc0, Src2: acc1})
	} else {
		l.emit(0, cluster.Instr{Op: cluster.OpCopy, Dst: op.Dst, Src1: acc0})
	}
	l.def(op.Dst, 0, l.level[op.A])
	return nil
}

// lowerNaiveSplit lowers a naive diagonal evaluation (one rotation + one
// PMult per non-zero diagonal) with the diagonal set split across both cards.
func (l *lowerer) lowerNaiveSplit(dst, src string, lt *hefloat.LinearTransform) error {
	ds := make([]int, 0, len(lt.Diags))
	for d := range lt.Diags {
		ds = append(ds, d)
	}
	sort.Ints(ds)
	lvl := l.level[src]
	scale := l.env.Params.DefaultScale()
	mid := (len(ds) + 1) / 2
	halves := [][]int{ds[:mid], ds[mid:]}
	partials := make([]string, 0, 2)
	for card, half := range halves {
		if len(half) == 0 {
			continue
		}
		if err := l.ensureOn(src, card); err != nil {
			return err
		}
		var acc string
		for _, d := range half {
			rot := src
			if d != 0 {
				rot = l.newTmp("rot")
				l.emit(card, cluster.Instr{Op: cluster.OpRotate, Dst: rot, Src1: src, Imm: d})
			}
			pt, err := l.env.Encoder.EncodeAtLevel(lt.Diags[d], scale, lvl)
			if err != nil {
				return err
			}
			term := l.newTmp("dg")
			l.emit(card, cluster.Instr{Op: cluster.OpPMult, Dst: term, Src1: rot, Plain: pt})
			if acc == "" {
				acc = term
			} else {
				l.emit(card, cluster.Instr{Op: cluster.OpAdd, Dst: acc, Src1: acc, Src2: term})
			}
		}
		l.def(acc, card, lvl)
		partials = append(partials, acc)
	}
	sum := partials[0]
	if len(partials) == 2 {
		if err := l.ensureOn(partials[1], 0); err != nil {
			return err
		}
		sum = l.newTmp("mv")
		l.emit(0, cluster.Instr{Op: cluster.OpAdd, Dst: sum, Src1: partials[0], Src2: partials[1]})
	}
	l.emit(0, cluster.Instr{Op: cluster.OpRescale, Dst: dst, Src1: sum})
	l.def(dst, 0, lvl-1)
	return nil
}

// lowerBSGSSplit lowers a BSGS evaluation with the giant-step groups split
// across both cards: each card rotates its own baby steps of the broadcast
// input, folds its groups' pre-shifted diagonals, applies the giant rotation,
// and the per-card partial sums meet on card 0 for the final rescale —
// the Fig. 3(d) distributed-matvec shape at functional scale.
func (l *lowerer) lowerBSGSSplit(dst, src string, lt *hefloat.LinearTransform, bs int) error {
	groups := map[int][]int{}
	for d := range lt.Diags {
		g := d - d%bs
		groups[g] = append(groups[g], d)
	}
	gs := make([]int, 0, len(groups))
	for g := range groups {
		gs = append(gs, g)
	}
	sort.Ints(gs)
	mid := (len(gs) + 1) / 2
	halves := [][]int{gs[:mid], gs[mid:]}
	partials := make([]string, 0, 2)
	for card, half := range halves {
		if len(half) == 0 {
			continue
		}
		if err := l.ensureOn(src, card); err != nil {
			return err
		}
		acc, err := l.bsgsGroupsOn(card, src, lt, bs, half)
		if err != nil {
			return err
		}
		partials = append(partials, acc)
	}
	sum := partials[0]
	if len(partials) == 2 {
		if err := l.ensureOn(partials[1], 0); err != nil {
			return err
		}
		sum = l.newTmp("bsgs")
		l.emit(0, cluster.Instr{Op: cluster.OpAdd, Dst: sum, Src1: partials[0], Src2: partials[1]})
	}
	l.emit(0, cluster.Instr{Op: cluster.OpRescale, Dst: dst, Src1: sum})
	l.def(dst, 0, l.level[src]-1)
	return nil
}

// lowerBSGSOn emits a whole BSGS evaluation (every group) on one card and
// returns the register of the rescaled result.
func (l *lowerer) lowerBSGSOn(card int, src string, lt *hefloat.LinearTransform, bs int) (string, error) {
	groups := map[int][]int{}
	for d := range lt.Diags {
		g := d - d%bs
		groups[g] = append(groups[g], d)
	}
	gs := make([]int, 0, len(groups))
	for g := range groups {
		gs = append(gs, g)
	}
	sort.Ints(gs)
	acc, err := l.bsgsGroupsOn(card, src, lt, bs, gs)
	if err != nil {
		return "", err
	}
	out := l.newTmp("lt")
	l.emit(card, cluster.Instr{Op: cluster.OpRescale, Dst: out, Src1: acc})
	l.def(out, card, l.level[src]-1)
	return out, nil
}

// bsgsGroupsOn folds the given giant-step groups on one card, without the
// final rescale (the caller merges partials first). Baby rotations are
// emitted once per (card, index) and shared across the card's groups.
func (l *lowerer) bsgsGroupsOn(card int, src string, lt *hefloat.LinearTransform, bs int, gs []int) (string, error) {
	lvl := l.level[src]
	scale := l.env.Params.DefaultScale()
	babies := map[int]string{0: src}
	var acc string
	for _, g := range gs {
		ds := make([]int, 0, 8)
		for d := range lt.Diags {
			if d-d%bs == g {
				ds = append(ds, d)
			}
		}
		sort.Ints(ds)
		var inner string
		for _, d := range ds {
			j := d - g
			baby, ok := babies[j]
			if !ok {
				baby = l.newTmp("baby")
				l.emit(card, cluster.Instr{Op: cluster.OpRotate, Dst: baby, Src1: src, Imm: j})
				babies[j] = baby
			}
			pt, err := l.env.Encoder.EncodeAtLevel(lt.ShiftedDiag(d, g), scale, lvl)
			if err != nil {
				return "", err
			}
			term := l.newTmp("dg")
			l.emit(card, cluster.Instr{Op: cluster.OpPMult, Dst: term, Src1: baby, Plain: pt})
			if inner == "" {
				inner = term
			} else {
				l.emit(card, cluster.Instr{Op: cluster.OpAdd, Dst: inner, Src1: inner, Src2: term})
			}
		}
		if g != 0 {
			l.emit(card, cluster.Instr{Op: cluster.OpRotate, Dst: inner, Src1: inner, Imm: g})
		}
		if acc == "" {
			acc = inner
		} else {
			l.emit(card, cluster.Instr{Op: cluster.OpAdd, Dst: acc, Src1: acc, Src2: inner})
		}
	}
	if acc == "" {
		return "", fmt.Errorf("transform has no non-zero diagonals")
	}
	l.def(acc, card, lvl)
	return acc, nil
}

// lowerCCMM mirrors hefloat.CCMM: σ(X) evaluates on card 0 while τ(Z)
// evaluates on card 1 (genuinely concurrent), then the k combine iterations
// run on card 0 with the ψ_d masks encoded from the exported CCMMMasks.
func (l *lowerer) lowerCCMM(dst, x, z string) error {
	slots := l.s.Slots()
	k := isqrt(slots)
	if k*k != slots {
		return fmt.Errorf("ccmm needs a square slot count, got %d", slots)
	}
	sigma, err := hefloat.NewLinearTransform(hefloat.CCMMSigma(k))
	if err != nil {
		return err
	}
	tau, err := hefloat.NewLinearTransform(hefloat.CCMMTau(k))
	if err != nil {
		return err
	}
	if err := l.ensureOn(x, 0); err != nil {
		return err
	}
	if err := l.ensureOn(z, 1); err != nil {
		return err
	}
	// All-baby BSGS (bs = slots): a single group, no giant rotation — the
	// same grouping hefloat.CCMM compiles its pre-transform plans with.
	a, err := l.lowerBSGSOn(0, x, sigma, slots)
	if err != nil {
		return err
	}
	b, err := l.lowerBSGSOn(1, z, tau, slots)
	if err != nil {
		return err
	}
	if err := l.ensureOn(b, 0); err != nil {
		return err
	}
	bLvl := l.level[b]
	scale := l.env.Params.DefaultScale()
	var acc string
	for d := 0; d < k; d++ {
		ad := a
		if d != 0 {
			ad = l.newTmp("phi")
			l.emit(0, cluster.Instr{Op: cluster.OpRotate, Dst: ad, Src1: a, Imm: d * k})
		}
		maskMain, maskWrap := hefloat.CCMMMasks(k, d)
		ptMain, err := l.env.Encoder.EncodeAtLevel(maskMain, scale, bLvl)
		if err != nil {
			return err
		}
		bd := l.newTmp("psi")
		if d == 0 {
			t := l.newTmp("m")
			l.emit(0, cluster.Instr{Op: cluster.OpPMult, Dst: t, Src1: b, Plain: ptMain})
			l.emit(0, cluster.Instr{Op: cluster.OpRescale, Dst: bd, Src1: t})
		} else {
			ptWrap, err := l.env.Encoder.EncodeAtLevel(maskWrap, scale, bLvl)
			if err != nil {
				return err
			}
			rotMain := l.newTmp("rm")
			rotWrap := l.newTmp("rw")
			l.emit(0, cluster.Instr{Op: cluster.OpRotate, Dst: rotMain, Src1: b, Imm: d})
			l.emit(0, cluster.Instr{Op: cluster.OpRotate, Dst: rotWrap, Src1: b, Imm: d - k})
			tm := l.newTmp("tm")
			tw := l.newTmp("tw")
			l.emit(0, cluster.Instr{Op: cluster.OpPMult, Dst: tm, Src1: rotMain, Plain: ptMain})
			l.emit(0, cluster.Instr{Op: cluster.OpPMult, Dst: tw, Src1: rotWrap, Plain: ptWrap})
			sum := l.newTmp("ms")
			l.emit(0, cluster.Instr{Op: cluster.OpAdd, Dst: sum, Src1: tm, Src2: tw})
			l.emit(0, cluster.Instr{Op: cluster.OpRescale, Dst: bd, Src1: sum})
		}
		term := l.newTmp("ccm")
		l.emit(0, cluster.Instr{Op: cluster.OpCMult, Dst: term, Src1: ad, Src2: bd})
		if acc == "" {
			acc = term
		} else {
			l.emit(0, cluster.Instr{Op: cluster.OpAdd, Dst: acc, Src1: acc, Src2: term})
		}
	}
	l.emit(0, cluster.Instr{Op: cluster.OpRescale, Dst: dst, Src1: acc})
	l.def(dst, 0, minInt(l.level[a], bLvl-1)-1)
	return nil
}

// lowerPoly splits p(x) = lo(x) + x^m·hi(x) at the largest power of two
// below len(coeffs): card 0 evaluates lo and the x^m spine by repeated
// squaring, card 1 evaluates hi concurrently, and the halves recombine on
// card 0 through the scale-aligning add.
func (l *lowerer) lowerPoly(dst, x string, coeffs []float64) error {
	if len(coeffs) < 2 {
		return fmt.Errorf("poly needs degree >= 1")
	}
	split := 1
	for split*2 < len(coeffs) {
		split *= 2
	}
	lo, hi := coeffs[:split], coeffs[split:]
	if err := l.ensureOn(x, 0); err != nil {
		return err
	}
	// x^split on card 0 by repeated squaring.
	xm := x
	for p := 1; p < split; p *= 2 {
		sq := l.newTmp("sq")
		rs := l.newTmp("xm")
		l.emit(0, cluster.Instr{Op: cluster.OpCMult, Dst: sq, Src1: xm, Src2: xm})
		l.emit(0, cluster.Instr{Op: cluster.OpRescale, Dst: rs, Src1: sq})
		l.def(rs, 0, l.level[xm]-1)
		xm = rs
	}
	lov, err := l.hornerOn(0, x, lo)
	if err != nil {
		return err
	}
	var term string
	if len(hi) == 1 {
		term = l.newTmp("hi")
		l.emit(0, cluster.Instr{Op: cluster.OpMulConst, Dst: term, Src1: xm, Const: hi[0]})
		l.def(term, 0, l.level[xm]-1)
	} else {
		if err := l.ensureOn(x, 1); err != nil {
			return err
		}
		hiv, err := l.hornerOn(1, x, hi)
		if err != nil {
			return err
		}
		if err := l.ensureOn(xm, 1); err != nil {
			return err
		}
		prod := l.newTmp("hm")
		term = l.newTmp("hi")
		l.emit(1, cluster.Instr{Op: cluster.OpCMult, Dst: prod, Src1: hiv, Src2: xm})
		l.emit(1, cluster.Instr{Op: cluster.OpRescale, Dst: term, Src1: prod})
		l.def(term, 1, minInt(l.level[hiv], l.level[xm])-1)
		if err := l.ensureOn(term, 0); err != nil {
			return err
		}
	}
	l.emit(0, cluster.Instr{Op: cluster.OpAddAligned, Dst: dst, Src1: lov, Src2: term})
	l.def(dst, 0, minInt(l.level[lov], l.level[term])-1)
	return nil
}

// hornerOn emits a Horner evaluation of coeffs on one card, mirroring
// hefloat.EvaluateHorner instruction for instruction.
func (l *lowerer) hornerOn(card int, x string, coeffs []float64) (string, error) {
	deg := len(coeffs) - 1
	if deg < 1 {
		return "", fmt.Errorf("horner needs degree >= 1")
	}
	if l.level[x] < deg+1 {
		return "", fmt.Errorf("level %d insufficient for Horner degree %d", l.level[x], deg)
	}
	acc := l.newTmp("hn")
	l.emit(card, cluster.Instr{Op: cluster.OpMulConst, Dst: acc, Src1: x, Const: coeffs[deg]})
	l.emit(card, cluster.Instr{Op: cluster.OpAddConst, Dst: acc, Src1: acc, Const: coeffs[deg-1]})
	lvl := l.level[x] - 1
	for i := deg - 2; i >= 0; i-- {
		prod := l.newTmp("hp")
		l.emit(card, cluster.Instr{Op: cluster.OpCMult, Dst: prod, Src1: acc, Src2: x})
		l.emit(card, cluster.Instr{Op: cluster.OpRescale, Dst: acc, Src1: prod})
		l.emit(card, cluster.Instr{Op: cluster.OpAddConst, Dst: acc, Src1: acc, Const: coeffs[i]})
		lvl--
	}
	l.def(acc, card, lvl)
	return acc, nil
}

// lowerBootstrap emits the full bootstrap pipeline across both cards,
// reusing the bootstrapper's own transforms (constants folded in) so the
// cluster computes the numerically identical pipeline:
//
//	card 0: ModRaise, P·z, R·z   card 1: conj, Q·z̄, S·z̄
//	u0 = Pz+Qz̄ (card 0)          u1 = Rz+Sz̄ (card 1)
//	sine(u0) on card 0            sine(u1) on card 1
//	z0 = A·w0 (card 0)            z1 = B·w1 (card 1)
//	out = z0 ⊕ z1 (card 0, scale-aligned add)
//
// The sine evaluation uses Horner for the small-angle Taylor pair (the
// cluster ISA has no tree combinator), which costs more levels than the
// hefloat tree path — the conformance environment's modulus chain is sized
// for it.
func (l *lowerer) lowerBootstrap(dst, x string) error {
	bt, err := l.env.bootstrapper()
	if err != nil {
		return err
	}
	ltP, ltQ, ltR, ltS := bt.CoeffToSlotTransforms()
	ltA, ltB := bt.SlotToCoeffTransforms()
	bs := bt.BabySteps()
	if err := l.ensureOn(x, 0); err != nil {
		return err
	}
	if l.level[x] != 0 {
		return fmt.Errorf("bootstrap input must sit at level 0, got %d", l.level[x])
	}
	z := l.newTmp("z")
	l.emit(0, cluster.Instr{Op: cluster.OpRaise, Dst: z, Src1: x})
	l.def(z, 0, l.env.Params.MaxLevel())
	if err := l.ensureOn(z, 1); err != nil {
		return err
	}
	zc := l.newTmp("zc")
	l.emit(1, cluster.Instr{Op: cluster.OpConjugate, Dst: zc, Src1: z})
	l.def(zc, 1, l.level[z])

	pz, err := l.lowerBSGSOn(0, z, ltP, bs)
	if err != nil {
		return err
	}
	rz, err := l.lowerBSGSOn(0, z, ltR, bs)
	if err != nil {
		return err
	}
	qz, err := l.lowerBSGSOn(1, zc, ltQ, bs)
	if err != nil {
		return err
	}
	sz, err := l.lowerBSGSOn(1, zc, ltS, bs)
	if err != nil {
		return err
	}
	if err := l.ensureOn(qz, 0); err != nil {
		return err
	}
	if err := l.ensureOn(rz, 1); err != nil {
		return err
	}
	u0 := l.newTmp("u0")
	l.emit(0, cluster.Instr{Op: cluster.OpAdd, Dst: u0, Src1: pz, Src2: qz})
	l.def(u0, 0, minInt(l.level[pz], l.level[qz]))
	u1 := l.newTmp("u1")
	l.emit(1, cluster.Instr{Op: cluster.OpAdd, Dst: u1, Src1: rz, Src2: sz})
	l.def(u1, 1, minInt(l.level[rz], l.level[sz]))

	w0, err := l.lowerSine(0, u0, bt)
	if err != nil {
		return err
	}
	w1, err := l.lowerSine(1, u1, bt)
	if err != nil {
		return err
	}
	z0, err := l.lowerBSGSOn(0, w0, ltA, bs)
	if err != nil {
		return err
	}
	z1, err := l.lowerBSGSOn(1, w1, ltB, bs)
	if err != nil {
		return err
	}
	if err := l.ensureOn(z1, 0); err != nil {
		return err
	}
	l.emit(0, cluster.Instr{Op: cluster.OpAddAligned, Dst: dst, Src1: z0, Src2: z1})
	l.def(dst, 0, minInt(l.level[z0], l.level[z1])-1)
	return nil
}

// lowerSine emits sin(2πu) on one card: pre-scale by θ = 2π/2^iters, the
// small-angle sin/cos Taylor pair by Horner, then the double-angle
// iterations — the same schedule hefloat's evalSine runs.
func (l *lowerer) lowerSine(card int, u string, bt *hefloat.Bootstrapper) (string, error) {
	deg, iters := bt.SineSchedule()
	theta := 2 * math.Pi / math.Pow(2, float64(iters))
	y := l.newTmp("y")
	l.emit(card, cluster.Instr{Op: cluster.OpMulConst, Dst: y, Src1: u, Const: theta})
	l.def(y, card, l.level[u]-1)

	sinCoeffs := make([]float64, deg+1)
	cosCoeffs := make([]float64, deg+2)
	fact := 1.0
	for i := 0; i <= deg+1; i++ {
		if i > 0 {
			fact *= float64(i)
		}
		term := 1 / fact
		sign := 1.0
		if i%4 >= 2 {
			sign = -1
		}
		if i%2 == 1 {
			if i <= deg {
				sinCoeffs[i] = sign * term
			}
		} else if i <= deg+1 {
			cosCoeffs[i] = sign * term
		}
	}
	s, err := l.hornerOn(card, y, sinCoeffs)
	if err != nil {
		return "", err
	}
	c, err := l.hornerOn(card, y, cosCoeffs)
	if err != nil {
		return "", err
	}
	for i := 0; i < iters; i++ {
		sc := l.newTmp("sc")
		ss := l.newTmp("ss")
		l.emit(card, cluster.Instr{Op: cluster.OpCMult, Dst: sc, Src1: s, Src2: c})
		l.emit(card, cluster.Instr{Op: cluster.OpRescale, Dst: sc, Src1: sc})
		l.emit(card, cluster.Instr{Op: cluster.OpCMult, Dst: ss, Src1: s, Src2: s})
		l.emit(card, cluster.Instr{Op: cluster.OpRescale, Dst: ss, Src1: ss})
		scLvl := minInt(l.level[s], l.level[c]) - 1
		ssLvl := l.level[s] - 1
		s2 := l.newTmp("s")
		l.emit(card, cluster.Instr{Op: cluster.OpAdd, Dst: s2, Src1: sc, Src2: sc})
		ss2 := l.newTmp("c")
		l.emit(card, cluster.Instr{Op: cluster.OpAdd, Dst: ss2, Src1: ss, Src2: ss})
		l.emit(card, cluster.Instr{Op: cluster.OpNeg, Dst: ss2, Src1: ss2})
		l.emit(card, cluster.Instr{Op: cluster.OpAddConst, Dst: ss2, Src1: ss2, Const: 1})
		l.def(s2, card, scLvl)
		l.def(ss2, card, ssLvl)
		s, c = s2, ss2
	}
	return s, nil
}

// runCluster executes the program on the functional multi-card runtime via
// the serving layer: the lowered instruction streams are submitted as a
// 2-card job against the environment's fleet server, whose ClusterBackend
// builds a fresh goroutine-card cluster on the granted placement.
func runCluster(env *Env, srv *serve.Server, s *ProgramSpec) (*ckks.Ciphertext, error) {
	progs, err := lowerProgram(env, s)
	if err != nil {
		return nil, err
	}
	inputs, err := encryptInputs(env, s)
	if err != nil {
		return nil, err
	}
	var out *ckks.Ciphertext
	job := &serve.Job{
		ID:    "conformance/" + s.Name,
		Cards: clusterCards,
		BuildCluster: func(cards int) (*serve.ClusterJob, error) {
			if cards != clusterCards {
				return nil, fmt.Errorf("conformance: lowered for %d cards, granted %d", clusterCards, cards)
			}
			return &serve.ClusterJob{
				Programs: progs,
				Preload: func(cl *cluster.Cluster) error {
					for name, ct := range inputs {
						cl.Load(0, name, ct)
					}
					return nil
				},
				Collect: func(cl *cluster.Cluster) error {
					ct, err := cl.Get(0, s.Output)
					out = ct
					return err
				},
			}, nil
		},
	}
	ticket, err := srv.Submit(job)
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()
	if _, err := ticket.Wait(ctx); err != nil {
		return nil, err
	}
	return out, nil
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
