// Package conformance is the cross-engine FHE conformance harness: one
// directory-driven corpus of small CKKS programs (testdata/programs/*.json),
// each with deterministic plaintext inputs, an interpreter-computed expected
// output, and a per-program precision budget, executed against four engines:
//
//  1. reference  — hefloat reference paths (EvaluateBSGSReference, radix-2
//     five-pass NTT via ring.SetReferenceNTT, Horner polynomial evaluation,
//     per-rotation keyswitching);
//  2. optimized  — the plan-cached, double-hoisted production paths
//     (EvaluateBSGS, merged-twist lazy radix-4 NTT, power-tree polynomials,
//     hoisted and ext-hoisted rotations);
//  3. cluster    — the same program lowered to per-card instruction streams
//     of the functional multi-card runtime, scheduled and executed through
//     internal/serve's ClusterBackend;
//  4. sim        — the analytic pipeline: each program is mapped to a task
//     graph (internal/mapping), round-tripped through the ISA encoding
//     (internal/isa), and legality-checked on the simulator (internal/sim);
//     the numeric check becomes a schedule-legality/decode check;
//  5. ir         — the compiler pipeline: the program is rebuilt on the
//     internal/fhir SSA IR, optimized by the full pass stack (CSE, lazy
//     rescale placement, lazy relinearization, rotation hoisting), executed
//     through the ckks-evaluator lowering for the numeric verdict, and the
//     same optimized form must also lower legally onto the task/ISA/sim
//     pipeline and reproduce the result on the functional cluster runtime.
//
// Engines 1 and 2 are additionally pinned bit-identical on the programs whose
// spec sets bitExact (the paths PR 4/5 proved bit-identity for); everywhere
// else agreement is within the per-program budget. The per-(program, engine)
// pass matrix is compared against testdata/golden_matrix.json so an engine
// silently losing coverage fails CI.
package conformance

import (
	"encoding/json"
	"fmt"
	"math"
	"math/cmplx"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Engine names, in report order.
var EngineNames = []string{"reference", "optimized", "cluster", "sim", "ir"}

// ProgramSpec is one conformance program: inputs, an op chain, the register
// holding the result, and how strictly engines must agree on it.
type ProgramSpec struct {
	Name        string    `json:"name"`
	Description string    `json:"description,omitempty"`
	Params      ParamSpec `json:"params"`
	Inputs      []InputSpec `json:"inputs"`
	Ops         []OpSpec    `json:"ops"`
	Output      string      `json:"output"`
	// Budget bounds the max absolute slot error of every numeric engine
	// against the plaintext interpreter.
	Budget float64 `json:"budget"`
	// BitExact additionally requires the reference and optimized engines to
	// produce bitwise-identical ciphertexts (same-seed encryptors, twin
	// parameter sets). Set only where the underlying paths are pinned
	// bit-identical; BSGS plans, tree polynomials and ext-hoisted sums are
	// tolerance-equal by design, not bit-equal.
	BitExact bool `json:"bitExact,omitempty"`
	// Heavy marks programs skipped under -short (the reduced CI -race matrix).
	Heavy bool `json:"heavy,omitempty"`
	// Skip maps an engine name to the reason it does not run this program.
	Skip map[string]string `json:"skip,omitempty"`
}

// ParamSpec selects the parameter environment a program runs under. The
// modulus chain is [2^50, 2^45 × Levels] with scale 2^45, the repo's standard
// test shape.
type ParamSpec struct {
	LogN   int `json:"logN"`
	Levels int `json:"levels"`
	LogP   int `json:"logP,omitempty"`   // 0 = 50
	Sparse int `json:"sparse,omitempty"` // secret Hamming weight; 0 = dense ternary
}

// InputSpec names an encrypted input and the deterministic generator filling
// its slots.
type InputSpec struct {
	Name string `json:"name"`
	Gen  string `json:"gen"`
}

// OpSpec is one step of a program. Which operand fields apply depends on Op:
//
//	add, sub, mul        A, B
//	neg, conjugate       A
//	rotate               A, K (slot rotation amount)
//	addconst, mulconst   A, Const
//	mulplain             A, Gen (plaintext vector; multiplied then rescaled)
//	rotsum, rotsumext    A, K (Σ_{i<K} rotate(A, i); ext uses the extended-
//	                     basis accumulator on the optimized engine)
//	lintrans             A, Matrix, BS (BS=0 evaluates naively)
//	pcmm                 A, Matrix (k×k plaintext weights; k² = slots)
//	ccmm                 A, B (column-packed k×k operands)
//	poly                 A, Coeffs (real polynomial, ascending)
//	bootstrap            A (input is encrypted at level 0)
type OpSpec struct {
	Op     string    `json:"op"`
	Dst    string    `json:"dst"`
	A      string    `json:"a"`
	B      string    `json:"b,omitempty"`
	K      int       `json:"k,omitempty"`
	Const  float64   `json:"const,omitempty"`
	Gen    string    `json:"gen,omitempty"`
	Matrix string    `json:"matrix,omitempty"`
	BS     int       `json:"bs,omitempty"`
	Coeffs []float64 `json:"coeffs,omitempty"`
}

// LoadPrograms reads every *.json program under dir, sorted by name.
func LoadPrograms(dir string) ([]*ProgramSpec, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil {
		return nil, err
	}
	if len(paths) == 0 {
		return nil, fmt.Errorf("conformance: no programs under %s", dir)
	}
	sort.Strings(paths)
	specs := make([]*ProgramSpec, 0, len(paths))
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			return nil, err
		}
		spec := &ProgramSpec{}
		if err := json.Unmarshal(data, spec); err != nil {
			return nil, fmt.Errorf("conformance: %s: %w", p, err)
		}
		if err := spec.validate(); err != nil {
			return nil, fmt.Errorf("conformance: %s: %w", p, err)
		}
		specs = append(specs, spec)
	}
	names := map[string]bool{}
	for _, s := range specs {
		if names[s.Name] {
			return nil, fmt.Errorf("conformance: duplicate program name %q", s.Name)
		}
		names[s.Name] = true
	}
	return specs, nil
}

func (s *ProgramSpec) validate() error {
	if s.Name == "" {
		return fmt.Errorf("program needs a name")
	}
	if s.Params.LogN < 2 || s.Params.Levels < 1 {
		return fmt.Errorf("program %s: bad params %+v", s.Name, s.Params)
	}
	if s.Output == "" {
		return fmt.Errorf("program %s: no output register", s.Name)
	}
	if s.Budget <= 0 {
		return fmt.Errorf("program %s: precision budget must be positive", s.Name)
	}
	if len(s.Inputs) == 0 {
		return fmt.Errorf("program %s: needs at least one input", s.Name)
	}
	for eng := range s.Skip {
		ok := false
		for _, n := range EngineNames {
			ok = ok || n == eng
		}
		if !ok {
			return fmt.Errorf("program %s: skip of unknown engine %q", s.Name, eng)
		}
	}
	// A dry interpreter run surfaces undefined registers, unknown ops and
	// unknown generators at load time rather than mid-matrix.
	_, err := Interpret(s)
	return err
}

// Slots returns the slot count of the program's parameter set (logSlots
// defaults to logN-1 across the repo).
func (s *ProgramSpec) Slots() int { return 1 << (s.Params.LogN - 1) }

// usesBootstrap reports whether any op is a bootstrap (inputs are then
// encrypted at level 0).
func (s *ProgramSpec) usesBootstrap() bool {
	for _, op := range s.Ops {
		if op.Op == "bootstrap" {
			return true
		}
	}
	return false
}

// GenVector returns the deterministic input vector of the named generator.
// Values are kept well inside the unit box so deep programs stay within
// CKKS noise budgets.
func GenVector(name string, slots int) ([]complex128, error) {
	v := make([]complex128, slots)
	switch name {
	case "zero":
	case "ones":
		for i := range v {
			v[i] = 1
		}
	case "unit":
		v[0] = 1
	case "ramp":
		for i := range v {
			v[i] = complex(float64(i%8)/8.0-0.4, 0)
		}
	case "alt":
		for i := range v {
			if i%2 == 0 {
				v[i] = 0.5
			} else {
				v[i] = -0.5
			}
		}
	case "sin":
		for i := range v {
			v[i] = complex(0.4*math.Sin(float64(i)), 0)
		}
	case "cx":
		for i := range v {
			v[i] = complex(0.3*math.Cos(float64(i)), 0.3*math.Sin(float64(i)/2))
		}
	case "rand":
		// Deterministic LCG; any fixed pseudo-random pattern works, but it
		// must be stable across runs and platforms.
		state := uint64(0x9e3779b97f4a7c15)
		next := func() float64 {
			//lint:allow rawmod deterministic test-input LCG over the full uint64 wheel, not residue arithmetic mod q
			state = state*6364136223846793005 + 1442695040888963407
			return float64(state>>11)/float64(1<<53) - 0.5
		}
		for i := range v {
			v[i] = complex(next(), next())
		}
	case "small":
		for i := range v {
			v[i] = complex(0.1*float64(i%4)/4.0, 0)
		}
	default:
		return nil, fmt.Errorf("conformance: unknown vector generator %q", name)
	}
	return v, nil
}

// GenMatrix returns the named dim×dim test matrix.
func GenMatrix(name string, dim int) ([][]complex128, error) {
	m := make([][]complex128, dim)
	for i := range m {
		m[i] = make([]complex128, dim)
	}
	switch name {
	case "identity":
		for i := range m {
			m[i][i] = 1
		}
	case "perm":
		// Cyclic shift: y[j] = x[(j+1) mod dim].
		for j := range m {
			m[j][(j+1)%dim] = 1
		}
	case "tridiag":
		for j := range m {
			m[j][j] = 0.5
			m[j][(j+1)%dim] = 0.25
			m[j][(j+dim-1)%dim] = 0.25
		}
	case "band4":
		for j := range m {
			for d := 0; d < 4; d++ {
				m[j][(j+d)%dim] = complex(0.4/float64(d+1), 0)
			}
		}
	case "dft":
		// Scaled DFT: dense, every diagonal non-zero, unitary up to 1/dim.
		for j := range m {
			for k := range m[j] {
				ang := 2 * math.Pi * float64(j*k) / float64(dim)
				m[j][k] = complex(math.Cos(ang)/float64(dim), math.Sin(ang)/float64(dim))
			}
		}
	default:
		return nil, fmt.Errorf("conformance: unknown matrix generator %q", name)
	}
	return m, nil
}

// GenWeights returns the named real k×k weight matrix for PCMM.
func GenWeights(name string, k int) ([][]float64, error) {
	w := make([][]float64, k)
	for i := range w {
		w[i] = make([]float64, k)
	}
	switch name {
	case "w-ident":
		for i := range w {
			w[i][i] = 1
		}
	case "w-ramp":
		for r := range w {
			for c := range w[r] {
				w[r][c] = 0.1 * float64((r*k+c)%5-2)
			}
		}
	default:
		return nil, fmt.Errorf("conformance: unknown weight generator %q", name)
	}
	return w, nil
}

// Interpret executes the program on plaintext vectors and returns the
// expected output slots. This is the ground truth every numeric engine is
// compared against.
func Interpret(s *ProgramSpec) ([]complex128, error) {
	slots := s.Slots()
	regs := map[string][]complex128{}
	for _, in := range s.Inputs {
		v, err := GenVector(in.Gen, slots)
		if err != nil {
			return nil, err
		}
		regs[in.Name] = v
	}
	get := func(name string) ([]complex128, error) {
		v, ok := regs[name]
		if !ok {
			return nil, fmt.Errorf("program %s: register %q undefined", s.Name, name)
		}
		return v, nil
	}
	for i, op := range s.Ops {
		a, err := get(op.A)
		if err != nil {
			return nil, fmt.Errorf("op %d (%s): %w", i, op.Op, err)
		}
		out := make([]complex128, slots)
		switch op.Op {
		case "add", "sub", "mul", "ccmm":
			b, err := get(op.B)
			if err != nil {
				return nil, fmt.Errorf("op %d (%s): %w", i, op.Op, err)
			}
			switch op.Op {
			case "add":
				for j := range out {
					out[j] = a[j] + b[j]
				}
			case "sub":
				for j := range out {
					out[j] = a[j] - b[j]
				}
			case "mul":
				for j := range out {
					out[j] = a[j] * b[j]
				}
			case "ccmm":
				k := isqrt(slots)
				if k*k != slots {
					return nil, fmt.Errorf("op %d: ccmm needs square slot count, got %d", i, slots)
				}
				matMulPacked(out, a, b, k)
			}
		case "neg":
			for j := range out {
				out[j] = -a[j]
			}
		case "conjugate":
			for j := range out {
				out[j] = cmplx.Conj(a[j])
			}
		case "rotate":
			for j := range out {
				out[j] = a[((j+op.K)%slots+slots)%slots]
			}
		case "addconst":
			for j := range out {
				out[j] = a[j] + complex(op.Const, 0)
			}
		case "mulconst":
			for j := range out {
				out[j] = a[j] * complex(op.Const, 0)
			}
		case "mulplain":
			p, err := GenVector(op.Gen, slots)
			if err != nil {
				return nil, fmt.Errorf("op %d: %w", i, err)
			}
			for j := range out {
				out[j] = a[j] * p[j]
			}
		case "rotsum", "rotsumext":
			if op.K < 1 || op.K > slots {
				return nil, fmt.Errorf("op %d: rotsum width %d out of range", i, op.K)
			}
			for j := range out {
				var acc complex128
				for r := 0; r < op.K; r++ {
					acc += a[(j+r)%slots]
				}
				out[j] = acc
			}
		case "lintrans":
			m, err := GenMatrix(op.Matrix, slots)
			if err != nil {
				return nil, fmt.Errorf("op %d: %w", i, err)
			}
			for j := range out {
				var acc complex128
				for c := range m[j] {
					acc += m[j][c] * a[c]
				}
				out[j] = acc
			}
		case "pcmm":
			k := isqrt(slots)
			if k*k != slots {
				return nil, fmt.Errorf("op %d: pcmm needs square slot count, got %d", i, slots)
			}
			w, err := GenWeights(op.Matrix, k)
			if err != nil {
				return nil, fmt.Errorf("op %d: %w", i, err)
			}
			// Column-packed Y = X·W: Y[r][c] = Σ_t X[r][t]·W[t][c].
			for c := 0; c < k; c++ {
				for r := 0; r < k; r++ {
					var acc complex128
					for t := 0; t < k; t++ {
						acc += a[t*k+r] * complex(w[t][c], 0)
					}
					out[c*k+r] = acc
				}
			}
		case "poly":
			if len(op.Coeffs) < 2 {
				return nil, fmt.Errorf("op %d: poly needs degree >= 1", i)
			}
			for j := range out {
				var acc complex128
				for t := len(op.Coeffs) - 1; t >= 0; t-- {
					acc = acc*a[j] + complex(op.Coeffs[t], 0)
				}
				out[j] = acc
			}
		case "bootstrap":
			copy(out, a)
		default:
			return nil, fmt.Errorf("op %d: unknown op %q", i, op.Op)
		}
		if op.Dst == "" {
			return nil, fmt.Errorf("op %d (%s): no destination register", i, op.Op)
		}
		regs[op.Dst] = out
	}
	return get(s.Output)
}

// matMulPacked writes the column-major packing of X·Z into out, where a and b
// are the column-major packings of X and Z.
func matMulPacked(out, a, b []complex128, k int) {
	for c := 0; c < k; c++ {
		for r := 0; r < k; r++ {
			var acc complex128
			for t := 0; t < k; t++ {
				acc += a[t*k+r] * b[c*k+t]
			}
			out[c*k+r] = acc
		}
	}
}

func isqrt(n int) int {
	k := 1
	for k*k < n {
		k++
	}
	return k
}

// MaxSlotError returns the max absolute difference between got and want.
func MaxSlotError(got, want []complex128) float64 {
	max := 0.0
	for i := range want {
		if e := cmplx.Abs(got[i] - want[i]); e > max {
			max = e
		}
	}
	return max
}

// describeOps is a compact op-chain summary for reports.
func describeOps(s *ProgramSpec) string {
	ops := make([]string, len(s.Ops))
	for i, op := range s.Ops {
		ops[i] = op.Op
	}
	if len(ops) == 0 {
		return "roundtrip"
	}
	return strings.Join(ops, "→")
}
