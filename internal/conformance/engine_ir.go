package conformance

import (
	"bytes"
	"context"
	"fmt"
	"math"
	"sort"
	"time"

	"hydra/internal/ckks"
	"hydra/internal/cluster"
	"hydra/internal/fhir"
	"hydra/internal/hefloat"
	"hydra/internal/hw"
	"hydra/internal/isa"
	"hydra/internal/sim"
)

// irClusterCards matches the functional-cluster engine's grant size so the
// IR's cluster lowering crosses a real card boundary on multi-term programs.
const irClusterCards = 2

// runIR is the fifth engine: the program is rebuilt as an internal/fhir IR
// program (its mathematical structure, no scales or schedules), compiled
// through the full optimizing pass pipeline (CSE, lazy rescale placement,
// lazy relinearization, rotation hoisting), and the *optimized* form is then
// driven through every lowering the compiler owns:
//
//   - the ckks evaluator lowering produces the ciphertext this engine is
//     scored on (hoisted baskets, extended-basis MACs, deferred relins);
//   - the task lowering must validate, survive the ISA encode→decode→
//     re-encode round trip byte-stably, and schedule on the Hydra fleet
//     model with a finite makespan;
//   - the cluster lowering executes on the functional multi-card runtime
//     and its decrypted output must independently meet the program budget.
//
// A budget pass here certifies that the compiler's optimizations preserved
// the program's semantics end to end, on every backend at once.
func runIR(env *Env, s *ProgramSpec) (*ckks.Ciphertext, error) {
	prog, err := buildIRProgram(s)
	if err != nil {
		return nil, fmt.Errorf("ir frontend: %w", err)
	}
	opt, err := fhir.Compile(prog, fhir.Options{Levels: s.Params.Levels})
	if err != nil {
		return nil, fmt.Errorf("ir compile: %w", err)
	}

	inputs, err := encryptInputs(env, s)
	if err != nil {
		return nil, err
	}
	out, err := fhir.Evaluate(opt, fhir.EvalContext{Eval: env.Eval, Enc: env.Encoder}, inputs)
	if err != nil {
		return nil, fmt.Errorf("ir evaluate: %w", err)
	}

	if err := checkIRTask(opt, s); err != nil {
		return nil, fmt.Errorf("ir task lowering: %w", err)
	}
	if err := checkIRCluster(env, opt, s); err != nil {
		return nil, fmt.Errorf("ir cluster lowering: %w", err)
	}
	return out, nil
}

// checkIRTask lowers the optimized program onto the accelerator model and
// applies the sim engine's legality battery: validate, byte-stable ISA round
// trip, finite-makespan schedule.
func checkIRTask(p *fhir.Program, s *ProgramSpec) error {
	tp, err := fhir.BuildTaskProgram(p, hw.PaperScheme(), simCards, 2, s.Name)
	if err != nil {
		return err
	}
	bin, err := isa.Marshal(tp)
	if err != nil {
		return fmt.Errorf("isa marshal: %w", err)
	}
	decoded, err := isa.Unmarshal(bin)
	if err != nil {
		return fmt.Errorf("isa unmarshal: %w", err)
	}
	bin2, err := isa.Marshal(decoded)
	if err != nil {
		return fmt.Errorf("isa re-marshal: %w", err)
	}
	if !bytes.Equal(bin, bin2) {
		return fmt.Errorf("isa round trip not byte-stable (%d vs %d bytes)", len(bin), len(bin2))
	}
	res, err := sim.Run(decoded, sim.HydraConfig())
	if err != nil {
		return fmt.Errorf("sim run: %w", err)
	}
	if math.IsNaN(res.Makespan) || math.IsInf(res.Makespan, 0) || res.Makespan < 0 {
		return fmt.Errorf("sim makespan %v not finite", res.Makespan)
	}
	return nil
}

// checkIRCluster executes the optimized program's cluster lowering on the
// functional runtime and scores the decrypted result against the interpreter
// under the program's own budget.
func checkIRCluster(env *Env, p *fhir.Program, s *ProgramSpec) error {
	progs, err := fhir.LowerCluster(p, env.Encoder, irClusterCards)
	if err != nil {
		return err
	}
	inputs, err := encryptInputs(env, s)
	if err != nil {
		return err
	}
	cl := cluster.New(env.Params, env.Eval, irClusterCards)
	for card := 0; card < irClusterCards; card++ {
		for name, ct := range inputs {
			cl.Load(card, name, ct)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()
	if err := cl.Run(ctx, progs); err != nil {
		return err
	}
	out, err := cl.Get(0, "out")
	if err != nil {
		return err
	}
	expected, err := Interpret(s)
	if err != nil {
		return err
	}
	got := env.Encoder.Decode(env.Dec.Decrypt(out))
	if maxErr := MaxSlotError(got, expected); maxErr > s.Budget {
		return fmt.Errorf("cluster output max slot error %.3g exceeds budget %.3g", maxErr, s.Budget)
	}
	return nil
}

// buildIRProgram translates a conformance spec into an fhir program. The
// translation writes only mathematics — per-rotation sums, per-diagonal
// products, Horner chains — and leaves every optimization (rotation merging,
// rescale placement, relin deferral) to the pass pipeline, so the matrix
// exercises the compiler rather than a hand-optimized frontend.
func buildIRProgram(s *ProgramSpec) (*fhir.Program, error) {
	slots := s.Slots()
	b := fhir.NewBuilder(slots)
	regs := map[string]*fhir.Value{}
	for _, in := range s.Inputs {
		regs[in.Name] = b.Input(in.Name)
	}
	get := func(name string) (*fhir.Value, error) {
		v, ok := regs[name]
		if !ok {
			return nil, fmt.Errorf("register %q undefined", name)
		}
		return v, nil
	}
	for i, op := range s.Ops {
		a, err := get(op.A)
		if err != nil {
			return nil, fmt.Errorf("op %d (%s): %w", i, op.Op, err)
		}
		var out *fhir.Value
		switch op.Op {
		case "add", "sub", "mul", "ccmm":
			bb, err := get(op.B)
			if err != nil {
				return nil, fmt.Errorf("op %d (%s): %w", i, op.Op, err)
			}
			switch op.Op {
			case "add":
				out = b.Add(a, bb)
			case "sub":
				out = b.Sub(a, bb)
			case "mul":
				out = b.Mul(a, bb)
			case "ccmm":
				out, err = irCCMM(b, slots, a, bb)
				if err != nil {
					return nil, fmt.Errorf("op %d (ccmm): %w", i, err)
				}
			}
		case "neg":
			out = b.Neg(a)
		case "conjugate":
			out = b.Conjugate(a)
		case "rotate":
			out = b.Rotate(a, op.K)
		case "addconst":
			out = b.AddConst(a, op.Const)
		case "mulconst":
			out = b.MulConst(a, op.Const)
		case "mulplain":
			vals, err := GenVector(op.Gen, slots)
			if err != nil {
				return nil, err
			}
			out = b.MulPlain(a, b.PlainVec("gen:"+op.Gen, vals))
		case "rotsum", "rotsumext":
			if op.K < 1 {
				return nil, fmt.Errorf("op %d: rotsum width %d", i, op.K)
			}
			out = a
			for r := 1; r < op.K; r++ {
				out = b.Add(out, b.Rotate(a, r))
			}
		case "lintrans":
			m, err := GenMatrix(op.Matrix, slots)
			if err != nil {
				return nil, err
			}
			lt, err := hefloat.NewLinearTransform(m)
			if err != nil {
				return nil, err
			}
			out = irLinTrans(b, a, lt, op.BS, fmt.Sprintf("lt%d:%s", i, op.Matrix))
		case "pcmm":
			w, err := GenWeights(op.Matrix, isqrt(slots))
			if err != nil {
				return nil, err
			}
			lt, err := hefloat.NewPCMMTransform(w, slots)
			if err != nil {
				return nil, err
			}
			out = irLinTrans(b, a, lt, 0, fmt.Sprintf("pcmm%d:%s", i, op.Matrix))
		case "poly":
			if len(op.Coeffs) < 2 {
				return nil, fmt.Errorf("op %d: poly needs degree >= 1", i)
			}
			deg := len(op.Coeffs) - 1
			out = b.AddConst(b.MulConst(a, op.Coeffs[deg]), op.Coeffs[deg-1])
			for t := deg - 2; t >= 0; t-- {
				out = b.AddConst(b.Mul(out, a), op.Coeffs[t])
			}
		case "bootstrap":
			return nil, fmt.Errorf("op %d: bootstrap has no IR lowering", i)
		default:
			return nil, fmt.Errorf("op %d: unknown op %q", i, op.Op)
		}
		regs[op.Dst] = out
	}
	outVal, err := get(s.Output)
	if err != nil {
		return nil, err
	}
	b.Output(outVal)
	return b.Build()
}

// irLinTrans writes a diagonal-decomposed linear transform. With bs <= 0 it
// is the naive sum Σ_d diag_d ⊙ rot(x, d); with bs > 0 it is the BSGS
// regrouping Σ_g rot(Σ_j shifted_diag ⊙ rot(x, j), g) — in both cases as
// plain per-rotation products whose sharing the hoisting pass discovers.
func irLinTrans(b *fhir.Builder, x *fhir.Value, lt *hefloat.LinearTransform, bs int, key string) *fhir.Value {
	ds := make([]int, 0, len(lt.Diags))
	for d := range lt.Diags {
		ds = append(ds, d)
	}
	sort.Ints(ds)
	var acc *fhir.Value
	if bs <= 0 {
		for _, d := range ds {
			term := b.MulPlain(b.Rotate(x, d), b.PlainVec(fmt.Sprintf("%s:d%d", key, d), lt.Diags[d]))
			if acc == nil {
				acc = term
			} else {
				acc = b.Add(acc, term)
			}
		}
		return acc
	}
	groups := map[int][]int{}
	for _, d := range ds {
		g := d - d%bs
		groups[g] = append(groups[g], d)
	}
	gs := make([]int, 0, len(groups))
	for g := range groups {
		gs = append(gs, g)
	}
	sort.Ints(gs)
	for _, g := range gs {
		var inner *fhir.Value
		for _, d := range groups[g] {
			pt := b.PlainVec(fmt.Sprintf("%s:g%d:d%d", key, g, d), lt.ShiftedDiag(d, g))
			term := b.MulPlain(b.Rotate(x, d-g), pt)
			if inner == nil {
				inner = term
			} else {
				inner = b.Add(inner, term)
			}
		}
		rotated := b.Rotate(inner, g)
		if acc == nil {
			acc = rotated
		} else {
			acc = b.Add(acc, rotated)
		}
	}
	return acc
}

// irCCMM writes the ciphertext-ciphertext matrix product over column-packed
// k×k operands: naive σ/τ pre-transforms, then the k combine iterations with
// the ψ_d main/wraparound masks — the same iteration structure as
// hefloat.CCMM, with every product left to the lazy-relinearization pass.
func irCCMM(b *fhir.Builder, slots int, x, z *fhir.Value) (*fhir.Value, error) {
	k := isqrt(slots)
	if k*k != slots {
		return nil, fmt.Errorf("ccmm needs a square slot count, got %d", slots)
	}
	sigma, err := hefloat.NewLinearTransform(hefloat.CCMMSigma(k))
	if err != nil {
		return nil, err
	}
	tau, err := hefloat.NewLinearTransform(hefloat.CCMMTau(k))
	if err != nil {
		return nil, err
	}
	a := irLinTrans(b, x, sigma, 0, "ccmm:sigma")
	bb := irLinTrans(b, z, tau, 0, "ccmm:tau")
	var acc *fhir.Value
	for d := 0; d < k; d++ {
		ad := b.Rotate(a, d*k)
		maskMain, maskWrap := hefloat.CCMMMasks(k, d)
		var bd *fhir.Value
		if d == 0 {
			bd = b.MulPlain(bb, b.PlainVec("ccmm:mask0", maskMain))
		} else {
			main := b.MulPlain(b.Rotate(bb, d), b.PlainVec(fmt.Sprintf("ccmm:m%d", d), maskMain))
			wrap := b.MulPlain(b.Rotate(bb, d-k), b.PlainVec(fmt.Sprintf("ccmm:w%d", d), maskWrap))
			bd = b.Add(main, wrap)
		}
		term := b.Mul(ad, bd)
		if acc == nil {
			acc = term
		} else {
			acc = b.Add(acc, term)
		}
	}
	return acc, nil
}
