package conformance

import (
	"bytes"
	"fmt"
	"math"
	"sort"

	"hydra/internal/fheop"
	"hydra/internal/hw"
	"hydra/internal/isa"
	"hydra/internal/mapping"
	"hydra/internal/sim"
	"hydra/internal/task"
)

// simCards is the machine shape the sim engine schedules every program onto:
// four cards, two per server, matching the smallest multi-server Hydra fleet.
const simCards = 4

// simReport is what the sim engine produces instead of a ciphertext: the
// evidence that the program lowered to a legal, decodable, schedulable
// instruction stream for the modeled accelerator.
type simReport struct {
	Steps    int
	Tasks    int
	ISABytes int
	Makespan float64
}

// runSim lowers the program onto the paper-scale accelerator model: each
// conformance op maps to the corresponding mapping-layer procedure (the same
// recipes the figures use), the resulting task program must validate, survive
// an ISA encode→decode→re-encode round trip byte-stably, and schedule on the
// Hydra fleet config with a finite makespan. The numeric check of the other
// engines becomes a schedule-legality and decode check here: the modeled
// machine executes op *counts*, not residues.
func runSim(s *ProgramSpec) (*simReport, error) {
	scheme := hw.PaperScheme()
	b := task.NewBuilder(simCards, 2)
	ctx := mapping.NewContext(b, scheme, simCards)
	slots := s.Slots()
	k := isqrt(slots)
	for i, op := range s.Ops {
		label := fmt.Sprintf("%02d-%s", i, op.Op)
		var err error
		switch op.Op {
		case "add", "sub", "neg", "addconst":
			err = ctx.DistributeLocal(1, fheop.Of(fheop.HAdd, 1), 0, label)
		case "conjugate":
			err = ctx.DistributeLocal(1, fheop.Of(fheop.Conjugate, 1), 0, label)
		case "rotate":
			err = ctx.DistributeLocal(1, fheop.Of(fheop.Rotation, 1), 0, label)
		case "mul":
			err = ctx.DistributeLocal(1, fheop.Of(fheop.CMult, 1, fheop.Rescale, 1), 0, label)
		case "mulconst", "mulplain":
			err = ctx.DistributeLocal(1, fheop.Of(fheop.PMult, 1, fheop.Rescale, 1), 0, label)
		case "rotsum", "rotsumext":
			err = ctx.DistributeLocal(1, fheop.Of(fheop.Rotation, op.K-1, fheop.HAdd, op.K-1), 0, label)
		case "lintrans":
			var groups int
			groups, err = transformGroups(op, slots)
			if err != nil {
				break
			}
			if op.BS > 0 {
				err = ctx.MatVec(mapping.MatVecOptions{BS: op.BS, GS: groups}, label)
			} else {
				err = ctx.FC(groups, label)
			}
		case "pcmm":
			err = ctx.DistributeLocal(k, mapping.PCMMUnit, 1, label)
		case "ccmm":
			err = ctx.DistributeLocal(k, mapping.CCMMUnit, 1, label)
		case "poly":
			err = ctx.PolyEval(len(op.Coeffs)-1, label)
		case "bootstrap":
			com := hw.HydraNetwork().IntraServer.Transfer(ctx.CtBytes())
			times := mapping.OpTimesFor(hw.HydraCard(), scheme, scheme.EffectiveLimb, com)
			err = ctx.Bootstrap(mapping.DefaultBootstrapOptions(scheme, simCards, times), label)
		default:
			err = fmt.Errorf("unknown op %q", op.Op)
		}
		if err != nil {
			return nil, fmt.Errorf("sim lowering op %d (%s): %w", i, op.Op, err)
		}
	}
	prog := b.Build()
	if err := prog.Validate(); err != nil {
		return nil, fmt.Errorf("task program invalid: %w", err)
	}

	// ISA round trip: encode, decode, re-encode; the two encodings must be
	// byte-identical or the decoder lost information.
	bin, err := isa.Marshal(prog)
	if err != nil {
		return nil, fmt.Errorf("isa marshal: %w", err)
	}
	decoded, err := isa.Unmarshal(bin)
	if err != nil {
		return nil, fmt.Errorf("isa unmarshal: %w", err)
	}
	if err := decoded.Validate(); err != nil {
		return nil, fmt.Errorf("decoded program invalid: %w", err)
	}
	bin2, err := isa.Marshal(decoded)
	if err != nil {
		return nil, fmt.Errorf("isa re-marshal: %w", err)
	}
	if !bytes.Equal(bin, bin2) {
		return nil, fmt.Errorf("isa round trip not byte-stable (%d vs %d bytes)", len(bin), len(bin2))
	}

	// The decoded program must schedule on the Hydra fleet model.
	res, err := sim.Run(decoded, sim.HydraConfig())
	if err != nil {
		return nil, fmt.Errorf("sim run: %w", err)
	}
	if math.IsNaN(res.Makespan) || math.IsInf(res.Makespan, 0) || res.Makespan < 0 {
		return nil, fmt.Errorf("sim makespan %v not finite", res.Makespan)
	}
	if len(s.Ops) > 0 && res.Makespan <= 0 {
		return nil, fmt.Errorf("non-empty program scheduled with zero makespan")
	}
	tasks := 0
	for _, st := range decoded.Steps {
		for _, cc := range st.Compute {
			tasks += len(cc)
		}
	}
	return &simReport{
		Steps:    len(decoded.Steps),
		Tasks:    tasks,
		ISABytes: len(bin),
		Makespan: res.Makespan,
	}, nil
}

// transformGroups counts the giant-step groups (BS > 0) or non-zero
// diagonals (naive) of a lintrans op, sizing the matvec emission like the
// hefloat engines size their plans.
func transformGroups(op OpSpec, slots int) (int, error) {
	m, err := GenMatrix(op.Matrix, slots)
	if err != nil {
		return 0, err
	}
	diags := map[int]bool{}
	for j := range m {
		for jj, v := range m[j] {
			if v != 0 {
				// Diagonal index of entry (row j, col jj) in the packed
				// diagonal decomposition out[j] = Σ_d diag_d[j]·in[j+d].
				d := ((jj-j)%slots + slots) % slots
				diags[d] = true
			}
		}
	}
	if op.BS <= 0 {
		return len(diags), nil
	}
	groups := map[int]bool{}
	for d := range diags {
		groups[d-d%op.BS] = true
	}
	gs := make([]int, 0, len(groups))
	for g := range groups {
		gs = append(gs, g)
	}
	sort.Ints(gs)
	return len(gs), nil
}
