package conformance

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"time"

	"hydra/internal/ckks"
	"hydra/internal/hw"
	"hydra/internal/serve"
)

// Outcome is one cell of the conformance matrix.
type Outcome struct {
	Status string  `json:"status"` // "pass", "fail" or "skip"
	MaxErr float64 `json:"max_err,omitempty"`
	Detail string  `json:"detail,omitempty"`
}

// Matrix is the full program × engine result grid.
type Matrix map[string]map[string]Outcome

// Harness owns the program corpus and the lazily built environments. Each
// parameter key gets two environment twins (main and reference-NTT) keyed
// from identical deterministic seeds, plus one fleet server fronting the
// functional cluster backend.
type Harness struct {
	Programs []*ProgramSpec

	byKey   map[paramKey][]*ProgramSpec
	envs    map[paramKey]*Env
	refEnvs map[paramKey]*Env
	servers map[paramKey]*serve.Server
}

// NewHarness loads and validates the corpus from dir.
func NewHarness(dir string) (*Harness, error) {
	programs, err := LoadPrograms(dir)
	if err != nil {
		return nil, err
	}
	h := &Harness{
		Programs: programs,
		byKey:    map[paramKey][]*ProgramSpec{},
		envs:     map[paramKey]*Env{},
		refEnvs:  map[paramKey]*Env{},
		servers:  map[paramKey]*serve.Server{},
	}
	for _, s := range programs {
		k := keyOf(s)
		h.byKey[k] = append(h.byKey[k], s)
	}
	return h, nil
}

// Close shuts down the fleet servers.
func (h *Harness) Close() {
	for _, srv := range h.servers {
		srv.Close()
	}
}

// envFor returns the (lazily built) environment for the program's parameter
// key. The environment carries the union of every rotation key any program
// sharing the key may need on any engine, so programs can share the
// expensive key generation.
func (h *Harness) envFor(s *ProgramSpec, reference bool) (*Env, error) {
	key := keyOf(s)
	cache := h.envs
	if reference {
		cache = h.refEnvs
	}
	if env, ok := cache[key]; ok {
		return env, nil
	}
	rotSet := map[int]bool{}
	conjugate := false
	for _, p := range h.byKey[key] {
		rots, conj, err := rotationsFor(p)
		if err != nil {
			return nil, fmt.Errorf("conformance: rotations for %s: %w", p.Name, err)
		}
		for _, r := range rots {
			rotSet[r] = true
		}
		conjugate = conjugate || conj
	}
	rots := make([]int, 0, len(rotSet))
	for r := range rotSet {
		rots = append(rots, r)
	}
	sort.Ints(rots)
	env, err := buildEnv(key, rots, conjugate, reference)
	if err != nil {
		return nil, err
	}
	cache[key] = env
	return env, nil
}

// serverFor returns the fleet server that fronts the environment's cluster
// backend: four cards, two per server, so every 2-card conformance grant can
// land intra- or cross-server depending on scheduler state.
func (h *Harness) serverFor(env *Env) (*serve.Server, error) {
	if srv, ok := h.servers[env.Key]; ok {
		return srv, nil
	}
	srv, err := serve.New(serve.Config{
		Fleet:          hw.Fleet{Cards: 4, CardsPerServer: 2},
		Backend:        &serve.ClusterBackend{Params: env.Params, Eval: env.Eval},
		DefaultTimeout: 10 * time.Minute,
	})
	if err != nil {
		return nil, err
	}
	h.servers[env.Key] = srv
	return srv, nil
}

// RunOptions tune a matrix run.
type RunOptions struct {
	// Short skips programs marked Heavy (the CI -race leg runs this way).
	Short bool
	// Logf, when set, receives one line per (program, engine) cell.
	Logf func(format string, args ...any)
}

// Run executes the whole corpus against all four engines and returns the
// matrix. Engine failures (including panics from the evaluator layer) land in
// the matrix as "fail" cells rather than aborting the run; only harness-level
// problems (unloadable corpus, unbuildable environments) return an error.
func (h *Harness) Run(opts RunOptions) (Matrix, error) {
	m := Matrix{}
	logf := opts.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	for _, s := range h.Programs {
		row := map[string]Outcome{}
		m[s.Name] = row
		if opts.Short && s.Heavy {
			for _, e := range EngineNames {
				row[e] = Outcome{Status: "skip", Detail: "heavy program skipped in short mode"}
			}
			logf("%-24s all engines: skip (heavy)", s.Name)
			continue
		}
		expected, err := Interpret(s)
		if err != nil {
			return nil, fmt.Errorf("conformance: interpreting %s: %w", s.Name, err)
		}

		refEnv, err := h.envFor(s, true)
		if err != nil {
			return nil, err
		}
		env, err := h.envFor(s, false)
		if err != nil {
			return nil, err
		}

		refCt, refErr := runGuarded(func() (*ckks.Ciphertext, error) { return runHEFloat(refEnv, s, true) })
		row["reference"] = checkCiphertext(refEnv, refCt, refErr, expected, s)

		optCt, optErr := runGuarded(func() (*ckks.Ciphertext, error) { return runHEFloat(env, s, false) })
		opt := checkCiphertext(env, optCt, optErr, expected, s)
		if opt.Status == "pass" && row["reference"].Status == "pass" && s.BitExact {
			if !optCt.Equal(refCt) {
				opt = Outcome{Status: "fail", MaxErr: opt.MaxErr,
					Detail: "optimized output not bit-identical to reference (program is pinned bit-exact)"}
			} else {
				opt.Detail = "bit-identical to reference"
			}
		}
		row["optimized"] = opt

		if reason, ok := s.Skip["cluster"]; ok {
			row["cluster"] = Outcome{Status: "skip", Detail: reason}
		} else {
			srv, err := h.serverFor(env)
			if err != nil {
				return nil, err
			}
			clCt, clErr := runGuarded(func() (*ckks.Ciphertext, error) { return runCluster(env, srv, s) })
			row["cluster"] = checkCiphertext(env, clCt, clErr, expected, s)
		}

		if reason, ok := s.Skip["sim"]; ok {
			row["sim"] = Outcome{Status: "skip", Detail: reason}
		} else {
			rep, simErr := runGuardedSim(s)
			if simErr != nil {
				row["sim"] = Outcome{Status: "fail", Detail: simErr.Error()}
			} else {
				row["sim"] = Outcome{Status: "pass",
					Detail: fmt.Sprintf("%d steps, %d tasks, %dB ISA, makespan %.3gs",
						rep.Steps, rep.Tasks, rep.ISABytes, rep.Makespan)}
			}
		}

		if reason, ok := s.Skip["ir"]; ok {
			row["ir"] = Outcome{Status: "skip", Detail: reason}
		} else {
			irCt, irErr := runGuarded(func() (*ckks.Ciphertext, error) { return runIR(env, s) })
			row["ir"] = checkCiphertext(env, irCt, irErr, expected, s)
		}
		for _, e := range EngineNames {
			o := row[e]
			switch o.Status {
			case "pass":
				logf("%-24s %-10s pass  maxerr=%.3g  %s", s.Name, e, o.MaxErr, o.Detail)
			case "skip":
				logf("%-24s %-10s skip  (%s)", s.Name, e, o.Detail)
			default:
				logf("%-24s %-10s FAIL  %s", s.Name, e, o.Detail)
			}
		}
	}
	return m, nil
}

// runGuarded converts evaluator-layer panics (level underflow, missing keys)
// into engine failures so one bad program cannot abort the matrix.
func runGuarded(f func() (*ckks.Ciphertext, error)) (ct *ckks.Ciphertext, err error) {
	defer func() {
		if r := recover(); r != nil {
			ct, err = nil, fmt.Errorf("panic: %v", r)
		}
	}()
	return f()
}

func runGuardedSim(s *ProgramSpec) (rep *simReport, err error) {
	defer func() {
		if r := recover(); r != nil {
			rep, err = nil, fmt.Errorf("panic: %v", r)
		}
	}()
	return runSim(s)
}

// checkCiphertext decrypts ct in its environment and scores it against the
// interpreter's expected slots under the program's precision budget.
func checkCiphertext(env *Env, ct *ckks.Ciphertext, err error, expected []complex128, s *ProgramSpec) Outcome {
	if err != nil {
		return Outcome{Status: "fail", Detail: err.Error()}
	}
	if ct == nil {
		return Outcome{Status: "fail", Detail: "engine returned no ciphertext"}
	}
	got := env.Encoder.Decode(env.Dec.Decrypt(ct))
	maxErr := MaxSlotError(got, expected)
	if maxErr > s.Budget {
		return Outcome{Status: "fail", MaxErr: maxErr,
			Detail: fmt.Sprintf("max slot error %.3g exceeds budget %.3g", maxErr, s.Budget)}
	}
	return Outcome{Status: "pass", MaxErr: maxErr}
}

// Statuses projects the matrix down to the status strings the golden file
// records.
func (m Matrix) Statuses() map[string]map[string]string {
	out := make(map[string]map[string]string, len(m))
	for prog, row := range m {
		pr := make(map[string]string, len(row))
		for eng, o := range row {
			pr[eng] = o.Status
		}
		out[prog] = pr
	}
	return out
}

// Failures lists every failing (program, engine) cell, sorted.
func (m Matrix) Failures() []string {
	var out []string
	for _, prog := range sortedKeys(m) {
		for _, eng := range EngineNames {
			if o, ok := m[prog][eng]; ok && o.Status == "fail" {
				out = append(out, fmt.Sprintf("%s/%s: %s", prog, eng, o.Detail))
			}
		}
	}
	return out
}

// LoadGolden reads the checked-in golden status matrix.
func LoadGolden(path string) (map[string]map[string]string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var g map[string]map[string]string
	if err := json.Unmarshal(data, &g); err != nil {
		return nil, fmt.Errorf("conformance: golden matrix %s: %w", path, err)
	}
	return g, nil
}

// WriteGolden writes the matrix's statuses as the new golden file.
func WriteGolden(path string, m Matrix) error {
	data, err := json.MarshalIndent(m.Statuses(), "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// CompareGolden checks the run against the golden matrix: every golden
// "pass" cell that this run executed must still pass (skips caused by short
// mode are tolerated; regressions to "fail" are not), and every executed
// program must appear in the golden file so the corpus cannot silently grow
// without re-blessing. It returns the list of violations.
func CompareGolden(m Matrix, golden map[string]map[string]string) []string {
	var bad []string
	for _, prog := range sortedKeys(m) {
		row := m[prog]
		grow, ok := golden[prog]
		if !ok {
			bad = append(bad, fmt.Sprintf("%s: not in golden matrix (run with -update to bless)", prog))
			continue
		}
		for _, eng := range EngineNames {
			o, ok := row[eng]
			if !ok || o.Status == "skip" {
				continue
			}
			if want := grow[eng]; want == "pass" && o.Status != "pass" {
				bad = append(bad, fmt.Sprintf("%s/%s: golden says pass, got %s (%s)", prog, eng, o.Status, o.Detail))
			}
		}
	}
	return bad
}
