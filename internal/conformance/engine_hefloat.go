package conformance

import (
	"fmt"
	"sort"

	"hydra/internal/ckks"
	"hydra/internal/hefloat"
)

// runHEFloat executes the program on one environment's evaluator. With
// reference=false it takes the optimized paths (plan-cached double-hoisted
// BSGS, hoisted and ext-hoisted rotations, power-tree polynomials); with
// reference=true it takes the reference paths (per-call-encoded
// single-hoisted BSGS, sequential rotations, Horner). Ops with only one
// implementation (add, rotate, …) run identical code on both — there the two
// engines differ solely through the environment's NTT dispatch, which is
// pinned bit-identical, so their outputs must match bitwise.
func runHEFloat(env *Env, s *ProgramSpec, reference bool) (*ckks.Ciphertext, error) {
	eval, enc := env.Eval, env.Encoder
	regs, err := encryptInputs(env, s)
	if err != nil {
		return nil, err
	}
	get := func(name string) (*ckks.Ciphertext, error) {
		ct, ok := regs[name]
		if !ok {
			return nil, fmt.Errorf("register %q undefined", name)
		}
		return ct, nil
	}
	for i, op := range s.Ops {
		a, err := get(op.A)
		if err != nil {
			return nil, fmt.Errorf("op %d (%s): %w", i, op.Op, err)
		}
		var out *ckks.Ciphertext
		switch op.Op {
		case "add", "sub", "mul", "ccmm":
			b, err := get(op.B)
			if err != nil {
				return nil, fmt.Errorf("op %d (%s): %w", i, op.Op, err)
			}
			switch op.Op {
			case "add":
				out = eval.Add(a, b)
			case "sub":
				out = eval.Sub(a, b)
			case "mul":
				out = eval.Rescale(eval.MulRelin(a, b))
			case "ccmm":
				if reference {
					out, err = ccmmReference(env, a, b)
				} else {
					out, err = hefloat.CCMM(eval, enc, a, b)
				}
				if err != nil {
					return nil, fmt.Errorf("op %d (ccmm): %w", i, err)
				}
			}
		case "neg":
			out = eval.Neg(a)
		case "conjugate":
			out = eval.Conjugate(a)
		case "rotate":
			out = eval.Rotate(a, op.K)
		case "addconst":
			out = eval.AddConst(a, op.Const)
		case "mulconst":
			out = eval.Rescale(eval.MulByConst(a, op.Const))
		case "mulplain":
			vals, err := GenVector(op.Gen, s.Slots())
			if err != nil {
				return nil, err
			}
			pt, err := enc.EncodeAtLevel(vals, env.Params.DefaultScale(), a.Level())
			if err != nil {
				return nil, err
			}
			out = eval.Rescale(eval.MulPlain(a, pt))
		case "rotsum":
			if reference {
				out = rotSumSequential(eval, a, op.K)
			} else {
				rots := make([]int, op.K)
				for r := range rots {
					rots[r] = r
				}
				hoisted := eval.RotateHoisted(a, rots)
				out = hoisted[0]
				for r := 1; r < op.K; r++ {
					eval.AddAcc(hoisted[r], out)
				}
			}
		case "rotsumext":
			if reference {
				out = rotSumSequential(eval, a, op.K)
			} else {
				// Extended-basis accumulation: every rotation stays in the
				// P·Q basis and the whole sum pays one ModDown.
				rots := make([]int, 0, op.K-1)
				for r := 1; r < op.K; r++ {
					rots = append(rots, r)
				}
				ext := eval.RotateHoistedExt(a, rots)
				acc := eval.NewExtAccumulator(a.Level(), a.Scale)
				for _, r := range rots {
					eval.AddExtAcc(ext[r], acc)
				}
				out = eval.Add(a, eval.ModDownExt(acc))
				for _, r := range rots {
					eval.ReleaseExt(ext[r])
				}
				eval.ReleaseExt(acc)
			}
		case "lintrans":
			m, err := GenMatrix(op.Matrix, s.Slots())
			if err != nil {
				return nil, err
			}
			lt, err := hefloat.NewLinearTransform(m)
			if err != nil {
				return nil, err
			}
			switch {
			case op.BS <= 0:
				out, err = lt.Evaluate(eval, enc, a)
			case reference:
				out, err = lt.EvaluateBSGSReference(eval, enc, a, op.BS)
			default:
				out, err = lt.EvaluateBSGS(eval, enc, a, op.BS)
			}
			if err != nil {
				return nil, fmt.Errorf("op %d (lintrans): %w", i, err)
			}
		case "pcmm":
			w, err := GenWeights(op.Matrix, isqrt(s.Slots()))
			if err != nil {
				return nil, err
			}
			if reference {
				lt, err := hefloat.NewPCMMTransform(w, s.Slots())
				if err != nil {
					return nil, err
				}
				out, err = lt.EvaluateBSGSReference(eval, enc, a, s.Slots())
				if err != nil {
					return nil, fmt.Errorf("op %d (pcmm): %w", i, err)
				}
			} else {
				out, err = hefloat.PCMM(eval, enc, a, w)
				if err != nil {
					return nil, fmt.Errorf("op %d (pcmm): %w", i, err)
				}
			}
		case "poly":
			p := hefloat.Polynomial{Coeffs: op.Coeffs}
			if reference {
				out, err = hefloat.EvaluateHorner(eval, a, p)
			} else {
				out, err = hefloat.EvaluateTree(eval, a, p)
			}
			if err != nil {
				return nil, fmt.Errorf("op %d (poly): %w", i, err)
			}
		case "bootstrap":
			bt, err := env.bootstrapper()
			if err != nil {
				return nil, fmt.Errorf("op %d (bootstrap): %w", i, err)
			}
			out, err = bt.Bootstrap(a)
			if err != nil {
				return nil, fmt.Errorf("op %d (bootstrap): %w", i, err)
			}
		default:
			return nil, fmt.Errorf("op %d: unknown op %q", i, op.Op)
		}
		regs[op.Dst] = out
	}
	return get(s.Output)
}

// rotSumSequential is the reference rotation sum: one full keyswitch per
// rotation, folded left to right.
func rotSumSequential(eval *ckks.Evaluator, ct *ckks.Ciphertext, k int) *ckks.Ciphertext {
	acc := ct.CopyNew()
	for r := 1; r < k; r++ {
		eval.AddAcc(eval.Rotate(ct, r), acc)
	}
	return acc
}

// ccmmReference is the single-hoisted, per-call-encoded counterpart of
// hefloat.CCMM: the σ/τ pre-transforms run through EvaluateBSGSReference and
// every per-iteration rotation pays its own keyswitch. Built from the same
// exported CCMMSigma/CCMMTau/CCMMMasks pieces, so the iteration structure is
// identical and only the hoisting differs.
func ccmmReference(env *Env, ctX, ctZ *ckks.Ciphertext) (*ckks.Ciphertext, error) {
	eval, enc := env.Eval, env.Encoder
	slots := env.Params.Slots()
	k := isqrt(slots)
	if k*k != slots {
		return nil, fmt.Errorf("ccmm needs a square slot count, got %d", slots)
	}
	sigma, err := hefloat.NewLinearTransform(hefloat.CCMMSigma(k))
	if err != nil {
		return nil, err
	}
	tau, err := hefloat.NewLinearTransform(hefloat.CCMMTau(k))
	if err != nil {
		return nil, err
	}
	a, err := sigma.EvaluateBSGSReference(eval, enc, ctX, slots)
	if err != nil {
		return nil, err
	}
	b, err := tau.EvaluateBSGSReference(eval, enc, ctZ, slots)
	if err != nil {
		return nil, err
	}
	scale := env.Params.DefaultScale()
	var acc *ckks.Ciphertext
	for d := 0; d < k; d++ {
		ad := a
		if d != 0 {
			ad = eval.Rotate(a, d*k)
		}
		maskMain, maskWrap := hefloat.CCMMMasks(k, d)
		ptMain, err := enc.EncodeAtLevel(maskMain, scale, b.Level())
		if err != nil {
			return nil, err
		}
		var bd *ckks.Ciphertext
		if d == 0 {
			bd = eval.Rescale(eval.MulPlain(b, ptMain))
		} else {
			ptWrap, err := enc.EncodeAtLevel(maskWrap, scale, b.Level())
			if err != nil {
				return nil, err
			}
			main := eval.MulPlain(eval.Rotate(b, d), ptMain)
			wrap := eval.MulPlain(eval.Rotate(b, d-k), ptWrap)
			bd = eval.Rescale(eval.Add(main, wrap))
		}
		aligned := ad.CopyNew()
		if aligned.Level() > bd.Level() {
			aligned.DropLevel(aligned.Level() - bd.Level())
		}
		term := eval.MulRelin(aligned, bd)
		if acc == nil {
			acc = term
		} else {
			eval.AddAcc(term, acc)
		}
	}
	return eval.Rescale(acc), nil
}

// sortedKeys is a tiny helper for deterministic map iteration in reports.
func sortedKeys[M ~map[string]V, V any](m M) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
