package ring

// Automorphism indices: the Galois automorphism τ_k maps a(X) to a(X^k) for
// odd k ∈ [1, 2N). In CKKS, rotating the slot vector by r positions uses
// k = 5^r mod 2N, and complex conjugation uses k = 2N-1.

// GaloisElementForRotation returns the Galois element realizing a rotation by
// r slots (r may be negative) in a ring of degree n.
func GaloisElementForRotation(n, r int) uint64 {
	m := uint64(2 * n)
	// Slot count is n/2; reduce r modulo it.
	slots := n / 2
	r = ((r % slots) + slots) % slots
	k := uint64(1)
	for i := 0; i < r; i++ {
		k = (k * 5) % m
	}
	return k
}

// GaloisElementConjugate returns the Galois element realizing complex
// conjugation of the slots in a ring of degree n.
func GaloisElementConjugate(n int) uint64 {
	return uint64(2*n - 1)
}

// AutomorphismCoeff applies τ_k in the coefficient domain: out gets the image
// of in (same level). k must be odd. in and out must not alias.
func (r *Ring) AutomorphismCoeff(in *Poly, k uint64, out *Poly) {
	if in.IsNTT {
		panic("ring: AutomorphismCoeff requires coefficient domain")
	}
	if k%2 == 0 {
		panic("ring: Galois element must be odd")
	}
	n := uint64(r.N)
	m := 2 * n
	lvl := in.Level()
	if out.Level() < lvl {
		lvl = out.Level()
	}
	ForEachLimb(lvl+1, func(i int) {
		q := r.Moduli[i]
		src, dst := in.Coeffs[i], out.Coeffs[i]
		for j := uint64(0); j < n; j++ {
			idx := (j * k) % m
			if idx < n {
				dst[idx] = src[j]
			} else {
				dst[idx-n] = NegMod(src[j], q)
			}
		}
	})
	out.IsNTT = false
}

// AutomorphismNTTIndex precomputes the NTT-domain permutation for τ_k:
// out[j] = in[perm[j]]. With the natural evaluation ordering used by NTTTable
// (index j ↔ evaluation at ψ^(2j+1)), τ_k sends evaluation point ψ^(2j+1) to
// ψ^((2j+1)k), so perm[j] = (((2j+1)·k mod 2N) - 1) / 2.
func AutomorphismNTTIndex(n int, k uint64) []int {
	m := uint64(2 * n)
	perm := make([]int, n)
	for j := 0; j < n; j++ {
		e := (uint64(2*j+1) * k) % m
		perm[j] = int((e - 1) / 2)
	}
	return perm
}

// AutomorphismNTT applies τ_k in the NTT domain using a precomputed index
// (see AutomorphismNTTIndex). in and out must not alias.
func (r *Ring) AutomorphismNTT(in *Poly, perm []int, out *Poly) {
	if !in.IsNTT {
		panic("ring: AutomorphismNTT requires NTT domain")
	}
	lvl := in.Level()
	if out.Level() < lvl {
		lvl = out.Level()
	}
	ForEachLimb(lvl+1, func(i int) {
		src, dst := in.Coeffs[i], out.Coeffs[i]
		for j := range dst {
			dst[j] = src[perm[j]]
		}
	})
	out.IsNTT = true
}
