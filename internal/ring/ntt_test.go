package ring

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func testRing(t testing.TB, n, levels int) *Ring {
	t.Helper()
	primes := GenerateNTTPrimes(45, n, levels)
	r, err := NewRing(n, primes)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func randomCoeffs(rng *rand.Rand, n int, q uint64) []uint64 {
	a := make([]uint64, n)
	for i := range a {
		a[i] = rng.Uint64() % q
	}
	return a
}

// naiveNegacyclicMul computes a*b in Z_q[X]/(X^N+1) directly.
func naiveNegacyclicMul(a, b []uint64, q uint64) []uint64 {
	n := len(a)
	out := make([]uint64, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			p := MulMod(a[i], b[j], q)
			k := i + j
			if k < n {
				out[k] = AddMod(out[k], p, q)
			} else {
				out[k-n] = SubMod(out[k-n], p, q)
			}
		}
	}
	return out
}

func TestNTTRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for _, n := range []int{4, 8, 64, 256, 1024} {
		q := GenerateNTTPrimes(40, n, 1)[0]
		tbl := NewNTTTable(n, q, PrimitiveRoot2N(n, q))
		a := randomCoeffs(rng, n, q)
		orig := append([]uint64(nil), a...)
		tbl.Forward(a)
		tbl.Inverse(a)
		for i := range a {
			if a[i] != orig[i] {
				t.Fatalf("n=%d: round trip mismatch at %d: %d != %d", n, i, a[i], orig[i])
			}
		}
	}
}

func TestNTTRadix4MatchesRadix2(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{4, 8, 16, 128, 512, 2048} {
		q := GenerateNTTPrimes(40, n, 1)[0]
		tbl := NewNTTTable(n, q, PrimitiveRoot2N(n, q))
		a := randomCoeffs(rng, n, q)
		b := append([]uint64(nil), a...)
		tbl.Forward(a)
		tbl.ForwardRadix4(b)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("n=%d: radix-4 output differs at %d: %d != %d", n, i, b[i], a[i])
			}
		}
	}
}

// TestMergedKernelBitIdentity is the merged-twist/lazy kernel's oracle test:
// for every LogN in 1..14 and both directions, the default kernels must be
// bit-identical to the five-pass radix-2 reference on random inputs, and the
// round trip must restore the input exactly.
func TestMergedKernelBitIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for logN := 1; logN <= 14; logN++ {
		n := 1 << logN
		q := GenerateNTTPrimes(45, n, 1)[0]
		tbl := NewNTTTable(n, q, PrimitiveRoot2N(n, q))
		for trial := 0; trial < 4; trial++ {
			orig := randomCoeffs(rng, n, q)
			fast := append([]uint64(nil), orig...)
			ref := append([]uint64(nil), orig...)

			tbl.Forward(fast)
			tbl.ForwardReference(ref)
			for i := range fast {
				if fast[i] != ref[i] {
					t.Fatalf("logN=%d trial=%d: forward differs at %d: %d != %d", logN, trial, i, fast[i], ref[i])
				}
			}

			tbl.Inverse(fast)
			tbl.InverseReference(ref)
			for i := range fast {
				if fast[i] != ref[i] {
					t.Fatalf("logN=%d trial=%d: inverse differs at %d: %d != %d", logN, trial, i, fast[i], ref[i])
				}
				if fast[i] != orig[i] {
					t.Fatalf("logN=%d trial=%d: round trip differs at %d: %d != %d", logN, trial, i, fast[i], orig[i])
				}
			}
		}
	}
}

// TestForwardAcceptsLazyInput pins the lazy-input contract of the merged
// forward kernel: residues lifted by q or 2q (still < 4q) must transform to
// the same canonical output as their canonical representatives. The
// evaluator's ModDown/rescale paths rely on this to skip their own final
// corrections before re-entering the NTT domain.
func TestForwardAcceptsLazyInput(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	for _, n := range []int{8, 64, 1024} {
		q := GenerateNTTPrimes(45, n, 1)[0]
		tbl := NewNTTTable(n, q, PrimitiveRoot2N(n, q))
		a := randomCoeffs(rng, n, q)
		lazy := make([]uint64, n)
		for i, v := range a {
			lazy[i] = v + q*uint64(rng.Intn(3)) // [0, 3q) ⊂ [0, 4q)
		}
		tbl.Forward(a)
		tbl.Forward(lazy)
		for i := range a {
			if a[i] != lazy[i] {
				t.Fatalf("n=%d: lazy input diverged at %d: %d != %d", n, i, lazy[i], a[i])
			}
		}
	}
}

func TestNTTConvolutionMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for _, n := range []int{4, 16, 64} {
		q := GenerateNTTPrimes(40, n, 1)[0]
		tbl := NewNTTTable(n, q, PrimitiveRoot2N(n, q))
		a := randomCoeffs(rng, n, q)
		b := randomCoeffs(rng, n, q)
		want := naiveNegacyclicMul(a, b, q)

		fa := append([]uint64(nil), a...)
		fb := append([]uint64(nil), b...)
		tbl.Forward(fa)
		tbl.Forward(fb)
		for i := range fa {
			fa[i] = MulMod(fa[i], fb[i], q)
		}
		tbl.Inverse(fa)
		for i := range fa {
			if fa[i] != want[i] {
				t.Fatalf("n=%d: convolution mismatch at %d: %d != %d", n, i, fa[i], want[i])
			}
		}
	}
}

func TestNTTLinearityProperty(t *testing.T) {
	n := 64
	q := GenerateNTTPrimes(40, n, 1)[0]
	tbl := NewNTTTable(n, q, PrimitiveRoot2N(n, q))
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randomCoeffs(rng, n, q)
		b := randomCoeffs(rng, n, q)
		sum := make([]uint64, n)
		for i := range sum {
			sum[i] = AddMod(a[i], b[i], q)
		}
		tbl.Forward(a)
		tbl.Forward(b)
		tbl.Forward(sum)
		for i := range sum {
			if sum[i] != AddMod(a[i], b[i], q) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestNTTTableValidation(t *testing.T) {
	q := GenerateNTTPrimes(40, 64, 1)[0]
	psi := PrimitiveRoot2N(64, q)
	cases := []struct {
		name string
		fn   func()
	}{
		{"non power of two", func() { NewNTTTable(48, q, psi) }},
		{"too small", func() { NewNTTTable(1, q, psi) }},
		{"bad psi", func() { NewNTTTable(64, q, 1) }},
	}
	for _, tc := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected panic", tc.name)
				}
			}()
			tc.fn()
		}()
	}
}

func TestGenerateNTTPrimes(t *testing.T) {
	primes := GenerateNTTPrimes(45, 1024, 5)
	if len(primes) != 5 {
		t.Fatalf("got %d primes, want 5", len(primes))
	}
	seen := map[uint64]bool{}
	for _, q := range primes {
		if seen[q] {
			t.Fatalf("duplicate prime %d", q)
		}
		seen[q] = true
		if (q-1)%(2*1024) != 0 {
			t.Fatalf("prime %d is not NTT friendly", q)
		}
		if !isPrime(q) {
			t.Fatalf("%d is not prime", q)
		}
	}
}

func TestPrimitiveRoot2N(t *testing.T) {
	for _, n := range []int{8, 256, 4096} {
		q := GenerateNTTPrimes(50, n, 1)[0]
		psi := PrimitiveRoot2N(n, q)
		if PowMod(psi, uint64(n), q) != q-1 {
			t.Fatalf("psi^n != -1 for n=%d", n)
		}
		if PowMod(psi, uint64(2*n), q) != 1 {
			t.Fatalf("psi^(2n) != 1 for n=%d", n)
		}
	}
}
