package ring

import (
	"math/rand"
	"testing"
)

// Differential pin for the codegen-specialized kernels: for every shipped
// degree, the generated forward/inverse must produce bit-identical canonical
// output to both the generic merged kernel and the O(N log N) reference
// schoolbook kernel, from canonical and from lazy (< 4q) inputs. Any
// divergence localizes an emission bug in cmd/hydra-genkernels to a specific
// (LogN parity, direction) template.

func genTestLogNs(t *testing.T) []int {
	if testing.Short() {
		return []int{10, 11, 12, 13, 14}
	}
	return ShippedKernelLogNs
}

func TestGeneratedKernelMatchesGenericAndReference(t *testing.T) {
	rng := rand.New(rand.NewSource(0x9e3779b9))
	for _, logN := range genTestLogNs(t) {
		n := 1 << logN
		for _, logQ := range []int{45, 55} {
			q := GenerateNTTPrimes(logQ, n, 1)[0]
			tbl := NewNTTTable(n, q, PrimitiveRoot2N(n, q))
			if !tbl.GeneratedAvailable() {
				t.Fatalf("logN=%d logQ=%d: generated kernel not available", logN, logQ)
			}
			for trial := 0; trial < 4; trial++ {
				lazy := trial%2 == 1
				for _, dir := range []string{"forward", "inverse"} {
					// Forward documents tolerance for lazy input (< 4q);
					// Inverse's contract is canonical input.
					bound := q
					if lazy && dir == "forward" {
						bound = 4 * q
					}
					in := make([]uint64, n)
					for i := range in {
						in[i] = rng.Uint64() % bound
					}
					gen := append([]uint64(nil), in...)
					gns := append([]uint64(nil), in...)
					ref := append([]uint64(nil), in...)

					tbl.SetGenerated(true)
					run(tbl, dir, gen)
					tbl.SetGenerated(false)
					run(tbl, dir, gns)
					tbl.SetReference(true)
					run(tbl, dir, ref)
					tbl.SetReference(false)
					tbl.SetGenerated(true)

					for i := range gen {
						if gen[i] != gns[i] {
							t.Fatalf("logN=%d logQ=%d trial=%d %s: generated[%d]=%d generic=%d", logN, logQ, trial, dir, i, gen[i], gns[i])
						}
						if gen[i] != ref[i] {
							t.Fatalf("logN=%d logQ=%d trial=%d %s: generated[%d]=%d reference=%d", logN, logQ, trial, dir, i, gen[i], ref[i])
						}
					}
				}
			}
		}
	}
}

func run(tbl *NTTTable, dir string, a []uint64) {
	if dir == "forward" {
		tbl.Forward(a)
	} else {
		tbl.Inverse(a)
	}
}

// A modulus at or above GeneratedQBound must fall back to the generic kernel
// rather than run the correction-free schedule out of headroom.
func TestGeneratedKernelQBoundFallback(t *testing.T) {
	n := 1 << 12
	q := GenerateNTTPrimes(58, n, 1)[0]
	tbl := NewNTTTable(n, q, PrimitiveRoot2N(n, q))
	if tbl.GeneratedAvailable() {
		t.Fatalf("logQ=58 table reports generated kernel available (bound %d)", GeneratedQBound)
	}
	tbl.SetGenerated(true) // must stay a no-op
	in := make([]uint64, n)
	rng := rand.New(rand.NewSource(7))
	for i := range in {
		in[i] = rng.Uint64() % q
	}
	got := append([]uint64(nil), in...)
	tbl.Forward(got)
	tbl.Inverse(got)
	for i := range got {
		if got[i] != in[i] {
			t.Fatalf("round trip diverged at %d", i)
		}
	}
}
