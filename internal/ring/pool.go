package ring

// Limb-parallel execution layer.
//
// Hydra's compute units process independent RNS limbs on parallel lanes; the
// software substrate mirrors that with a single package-level worker pool
// that fans per-limb work out across cores. The pool is bounded globally —
// one shared slot budget for every Ring, Evaluator and cluster card — so
// nested parallelism (a cluster of goroutine-cards each running limb-parallel
// evaluator ops) degrades to inline execution instead of oversubscribing the
// machine or deadlocking.
//
// Design rules that make the layer safe and bit-deterministic:
//
//   - Slot acquisition never blocks: when no slot is free the caller runs the
//     work inline. The calling goroutine always participates, so a worker
//     that itself calls ForEachLimb (nesting) can always make progress.
//   - Work items are independent limbs writing disjoint rows, so scheduling
//     order cannot change results: parallel and serial execution are
//     bit-identical (the differential harness in internal/ckks asserts this).
//   - Panic checks in callers stay outside the parallel region, preserving
//     the serial API's panic behaviour.
//
// Serial mode for deterministic debugging: set HYDRA_SERIAL=1 in the
// environment, or call SetSerial(true) / SetMaxWorkers(1) at runtime.

import (
	"os"
	"runtime"
	"sync"
	"sync/atomic"
)

var (
	// serialMode forces inline execution of all limb work.
	serialMode atomic.Bool
	// extraSlots holds a chan struct{} whose capacity is the number of
	// helper goroutines (beyond callers) allowed to run limb work at once.
	extraSlots atomic.Value
)

func init() {
	if os.Getenv("HYDRA_SERIAL") != "" {
		serialMode.Store(true)
	}
	SetMaxWorkers(runtime.GOMAXPROCS(0))
}

// SetMaxWorkers bounds the global pool to n concurrent workers (the caller
// counts as one, so n-1 helper slots are kept). n < 1 is treated as 1,
// which is equivalent to serial execution.
func SetMaxWorkers(n int) {
	if n < 1 {
		n = 1
	}
	extraSlots.Store(make(chan struct{}, n-1))
}

// SetSerial toggles forced-serial execution (deterministic debugging, and
// the reference arm of the parallel-vs-serial differential tests).
func SetSerial(v bool) { serialMode.Store(v) }

// Serial reports whether forced-serial mode is on.
func Serial() bool { return serialMode.Load() }

// MaxWorkers returns the current global worker bound (callers + helpers).
func MaxWorkers() int { return cap(extraSlots.Load().(chan struct{})) + 1 }

// ForEachLimb runs fn(0) … fn(n-1), fanning the calls out across the global
// worker pool when parallelism is enabled and slots are free. fn invocations
// must be independent (each limb owns its rows); ForEachLimb returns only
// after every invocation has completed. The set of executed calls — and, for
// disjoint writes, the resulting memory — is identical in serial and
// parallel mode.
func ForEachLimb(n int, fn func(i int)) {
	slots, _ := extraSlots.Load().(chan struct{})
	if n <= 1 || serialMode.Load() || cap(slots) == 0 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	run := func() {
		for {
			i := next.Add(1) - 1
			if i >= int64(n) {
				return
			}
			fn(int(i))
		}
	}
	var wg sync.WaitGroup
spawn:
	for spawned := 0; spawned < n-1; spawned++ {
		select {
		case slots <- struct{}{}:
			wg.Add(1)
			//lint:allow rawgo this IS the bounded pool: the spawn is gated by a slot acquired above
			go func() {
				defer wg.Done()
				defer func() { <-slots }()
				run()
			}()
		default:
			break spawn // pool saturated: remaining limbs run inline below
		}
	}
	run() // the caller always participates
	wg.Wait()
}

// RunTasks runs the given functions, possibly concurrently, bounded by the
// same global pool, and returns when all have finished. It is the
// coarse-grained sibling of ForEachLimb, used for independent ciphertext-
// level work (BSGS giant steps, the bootstrapping transform fan-out).
func RunTasks(fns ...func()) {
	ForEachLimb(len(fns), func(i int) { fns[i]() })
}

// ForEachLimbTile runs fn(limb, tile) for every point of the limbs × tiles
// grid, fanned out over the same global pool. It is the work partitioner of
// the batch execution layer: a batch of polynomials is cut into tiles of a
// few rows each, and (limb, tile) pairs — not whole limbs — become the unit
// of scheduling, so a batch of 8 ciphertexts at 6 limbs keeps 48 lanes busy
// instead of 6. Units are enumerated limb-major (all tiles of limb 0, then
// limb 1, …), so a worker sweeping consecutive units reuses one limb's
// twiddle and key rows across the whole batch before touching the next
// modulus. The same independence contract as ForEachLimb applies: fn
// invocations must write disjoint rows.
func ForEachLimbTile(limbs, tiles int, fn func(limb, tile int)) {
	if limbs <= 0 || tiles <= 0 {
		return
	}
	ForEachLimb(limbs*tiles, func(u int) {
		fn(u/tiles, u%tiles)
	})
}
