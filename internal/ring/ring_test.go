package ring

import (
	"math/big"
	"testing"
	"testing/quick"
)

func TestNewRingValidation(t *testing.T) {
	good := GenerateNTTPrimes(40, 64, 2)
	if _, err := NewRing(48, good); err == nil {
		t.Fatal("expected error for non power-of-two degree")
	}
	if _, err := NewRing(64, nil); err == nil {
		t.Fatal("expected error for empty moduli")
	}
	if _, err := NewRing(64, []uint64{good[0], good[0]}); err == nil {
		t.Fatal("expected error for duplicate moduli")
	}
	if _, err := NewRing(64, []uint64{97}); err == nil {
		t.Fatal("expected error for non-NTT-friendly modulus")
	}
	if _, err := NewRing(64, good); err != nil {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestPolyLevelsAndCopy(t *testing.T) {
	r := testRing(t, 64, 3)
	p := r.NewPoly(2)
	if p.Level() != 2 {
		t.Fatalf("level = %d, want 2", p.Level())
	}
	s := NewSampler(r, 1)
	s.Uniform(p)
	cp := p.CopyNew()
	if !cp.Equal(p) {
		t.Fatal("copy differs from original")
	}
	cp.Coeffs[0][0]++
	if cp.Equal(p) {
		t.Fatal("mutating copy affected original equality")
	}
	p.DropLevel()
	if p.Level() != 1 {
		t.Fatalf("level after drop = %d, want 1", p.Level())
	}
}

func TestRingAddSubNeg(t *testing.T) {
	r := testRing(t, 128, 2)
	s := NewSampler(r, 2)
	a, b := r.NewPoly(1), r.NewPoly(1)
	s.Uniform(a)
	s.Uniform(b)
	sum, diff, neg := r.NewPoly(1), r.NewPoly(1), r.NewPoly(1)
	r.Add(a, b, sum)
	r.Sub(sum, b, diff)
	if !diff.Equal(a) {
		t.Fatal("(a+b)-b != a")
	}
	r.Neg(a, neg)
	r.Add(a, neg, sum)
	for i := range sum.Coeffs {
		for _, c := range sum.Coeffs[i] {
			if c != 0 {
				t.Fatal("a + (-a) != 0")
			}
		}
	}
}

func TestRingMulCoeffsIsNegacyclicMul(t *testing.T) {
	r := testRing(t, 32, 1)
	s := NewSampler(r, 3)
	a, b := r.NewPoly(0), r.NewPoly(0)
	s.Uniform(a)
	s.Uniform(b)
	want := naiveNegacyclicMul(a.Coeffs[0], b.Coeffs[0], r.Moduli[0])

	r.NTT(a)
	r.NTT(b)
	prod := r.NewPoly(0)
	r.MulCoeffs(a, b, prod)
	r.INTT(prod)
	for i, w := range want {
		if prod.Coeffs[0][i] != w {
			t.Fatalf("product mismatch at %d", i)
		}
	}
}

func TestRingNTTRadix4MatchesNTT(t *testing.T) {
	r := testRing(t, 256, 2)
	s := NewSampler(r, 4)
	a := r.NewPoly(1)
	s.Uniform(a)
	b := a.CopyNew()
	r.NTT(a)
	r.NTTRadix4(b)
	if !a.Equal(b) {
		t.Fatal("radix-4 ring NTT differs from radix-2")
	}
}

func TestRingMulScalar(t *testing.T) {
	r := testRing(t, 64, 2)
	s := NewSampler(r, 5)
	a := r.NewPoly(1)
	s.Uniform(a)
	out := r.NewPoly(1)
	r.MulScalar(a, 3, out)
	// out should equal a+a+a.
	want := r.NewPoly(1)
	r.Add(a, a, want)
	r.Add(want, a, want)
	if !out.Equal(want) {
		t.Fatal("MulScalar(3) != a+a+a")
	}
}

func TestBigIntRoundTrip(t *testing.T) {
	r := testRing(t, 32, 3)
	s := NewSampler(r, 6)
	p := r.NewPoly(2)
	s.Uniform(p)
	vals := make([]*big.Int, r.N)
	r.ToBigInt(p, vals)
	back := r.NewPoly(2)
	r.SetBigInt(vals, back)
	if !back.Equal(p) {
		t.Fatal("big.Int round trip failed")
	}
}

func TestSetBigIntNegative(t *testing.T) {
	r := testRing(t, 8, 2)
	vals := make([]*big.Int, r.N)
	for i := range vals {
		vals[i] = big.NewInt(int64(-1 - i))
	}
	p := r.NewPoly(1)
	r.SetBigInt(vals, p)
	for i := range p.Coeffs {
		q := r.Moduli[i]
		for j := 0; j < r.N; j++ {
			want := q - uint64(1+j)
			if p.Coeffs[i][j] != want {
				t.Fatalf("residue %d coeff %d = %d, want %d", i, j, p.Coeffs[i][j], want)
			}
		}
	}
}

func TestAutomorphismCoeffComposition(t *testing.T) {
	r := testRing(t, 64, 1)
	s := NewSampler(r, 7)
	a := r.NewPoly(0)
	s.Uniform(a)
	// τ_k ∘ τ_k' = τ_{kk' mod 2N}.
	k1 := GaloisElementForRotation(r.N, 3)
	k2 := GaloisElementForRotation(r.N, 5)
	t1, t2, direct := r.NewPoly(0), r.NewPoly(0), r.NewPoly(0)
	r.AutomorphismCoeff(a, k1, t1)
	r.AutomorphismCoeff(t1, k2, t2)
	k12 := (k1 * k2) % uint64(2*r.N)
	r.AutomorphismCoeff(a, k12, direct)
	if !t2.Equal(direct) {
		t.Fatal("automorphism composition failed")
	}
}

func TestAutomorphismNTTMatchesCoeff(t *testing.T) {
	r := testRing(t, 128, 2)
	s := NewSampler(r, 8)
	a := r.NewPoly(1)
	s.Uniform(a)
	for _, rot := range []int{1, 2, 7, -1} {
		k := GaloisElementForRotation(r.N, rot)
		// Coefficient-domain path.
		viaCoeff := r.NewPoly(1)
		r.AutomorphismCoeff(a, k, viaCoeff)
		r.NTT(viaCoeff)
		// NTT-domain path.
		aNTT := a.CopyNew()
		r.NTT(aNTT)
		viaNTT := r.NewPoly(1)
		perm := AutomorphismNTTIndex(r.N, k)
		r.AutomorphismNTT(aNTT, perm, viaNTT)
		if !viaNTT.Equal(viaCoeff) {
			t.Fatalf("rot=%d: NTT-domain automorphism differs from coefficient-domain", rot)
		}
	}
}

func TestGaloisElements(t *testing.T) {
	n := 64
	if k := GaloisElementForRotation(n, 0); k != 1 {
		t.Fatalf("rotation 0 element = %d, want 1", k)
	}
	if k := GaloisElementConjugate(n); k != uint64(2*n-1) {
		t.Fatalf("conjugate element = %d", k)
	}
	// Rotation by slots (n/2) is the identity.
	if k := GaloisElementForRotation(n, n/2); k != 1 {
		t.Fatalf("full rotation element = %d, want 1", k)
	}
	// Negative rotations wrap.
	if GaloisElementForRotation(n, -1) != GaloisElementForRotation(n, n/2-1) {
		t.Fatal("negative rotation did not wrap")
	}
}

func TestSamplerDistributions(t *testing.T) {
	r := testRing(t, 1024, 1)
	s := NewSampler(r, 9)
	p := r.NewPoly(0)

	s.Ternary(p)
	q := r.Moduli[0]
	counts := map[uint64]int{}
	for _, c := range p.Coeffs[0] {
		counts[c]++
		if c != 0 && c != 1 && c != q-1 {
			t.Fatalf("ternary coefficient %d out of range", c)
		}
	}
	for _, v := range []uint64{0, 1, q - 1} {
		if counts[v] < r.N/6 {
			t.Fatalf("ternary value %d badly underrepresented: %d", v, counts[v])
		}
	}

	s.Gaussian(p, 3.2)
	for _, c := range p.Coeffs[0] {
		mag := c
		if c > q/2 {
			mag = q - c
		}
		if mag > 20 {
			t.Fatalf("gaussian coefficient magnitude %d too large", mag)
		}
	}
}

func TestSamplerDeterminism(t *testing.T) {
	r := testRing(t, 64, 2)
	p1, p2 := r.NewPoly(1), r.NewPoly(1)
	NewSampler(r, 42).Uniform(p1)
	NewSampler(r, 42).Uniform(p2)
	if !p1.Equal(p2) {
		t.Fatal("same seed produced different polynomials")
	}
}

func TestUniformRejectionProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := testRing(t, 8, 1)
		s := NewSampler(r, seed)
		p := r.NewPoly(0)
		s.Uniform(p)
		for _, c := range p.Coeffs[0] {
			if c >= r.Moduli[0] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
