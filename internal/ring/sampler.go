package ring

import (
	"math"
	"math/rand"
)

// Sampler draws the random polynomials needed by CKKS key generation and
// encryption. It is deterministic for a given seed, which keeps tests and
// benchmarks reproducible (the simulator never consumes secure randomness;
// a production deployment would swap in crypto/rand).
type Sampler struct {
	rng  *rand.Rand
	ring *Ring
}

// NewSampler returns a sampler over r seeded with seed.
func NewSampler(r *Ring, seed int64) *Sampler {
	return &Sampler{rng: rand.New(rand.NewSource(seed)), ring: r}
}

// Uniform fills p with independent uniform residues in [0, q_i).
func (s *Sampler) Uniform(p *Poly) {
	for i := range p.Coeffs {
		q := s.ring.Moduli[i]
		for j := range p.Coeffs[i] {
			p.Coeffs[i][j] = uniform64(s.rng, q)
		}
	}
	p.IsNTT = false
}

func uniform64(rng *rand.Rand, q uint64) uint64 {
	// Rejection sampling to avoid modulo bias.
	max := (^uint64(0) / q) * q
	for {
		v := rng.Uint64()
		if v < max {
			return v % q
		}
	}
}

// Ternary fills p with coefficients drawn uniformly from {-1, 0, 1}, the
// standard CKKS secret distribution.
func (s *Sampler) Ternary(p *Poly) {
	n := s.ring.N
	vals := make([]int8, n)
	for j := range vals {
		vals[j] = int8(s.rng.Intn(3)) - 1
	}
	s.setSmall(p, vals)
}

// TernarySparse fills p with a ternary polynomial of exact Hamming weight h:
// h coefficients are ±1 (signs uniform), the rest zero. Sparse secrets bound
// the |I| coefficient growth during bootstrapping's modulus raise.
func (s *Sampler) TernarySparse(p *Poly, h int) {
	n := s.ring.N
	if h < 0 || h > n {
		panic("ring: sparse ternary weight out of range")
	}
	vals := make([]int8, n)
	// Partial Fisher-Yates over the positions.
	pos := make([]int, n)
	for i := range pos {
		pos[i] = i
	}
	for i := 0; i < h; i++ {
		j := i + s.rng.Intn(n-i)
		pos[i], pos[j] = pos[j], pos[i]
		if s.rng.Intn(2) == 0 {
			vals[pos[i]] = 1
		} else {
			vals[pos[i]] = -1
		}
	}
	s.setSmall(p, vals)
}

// Gaussian fills p with coefficients from a rounded Gaussian of standard
// deviation sigma, truncated at 6 sigma (the conventional CKKS error
// distribution with sigma = 3.2).
func (s *Sampler) Gaussian(p *Poly, sigma float64) {
	n := s.ring.N
	//lint:allow floatexact noise is sampled in R and rounded once below, before any residue exists
	bound := 6 * sigma
	vals := make([]int8, n)
	for j := range vals {
		for {
			//lint:allow floatexact same: pre-residue noise generation, rounded once by math.Round
			x := s.rng.NormFloat64() * sigma
			if math.Abs(x) <= bound {
				vals[j] = int8(math.Round(x))
				break
			}
		}
	}
	s.setSmall(p, vals)
}

// setSmall writes small signed coefficients into every residue of p.
func (s *Sampler) setSmall(p *Poly, vals []int8) {
	for i := range p.Coeffs {
		q := s.ring.Moduli[i]
		for j, v := range vals {
			if v >= 0 {
				p.Coeffs[i][j] = uint64(v)
			} else {
				p.Coeffs[i][j] = q - uint64(-v)
			}
		}
	}
	p.IsNTT = false
}
