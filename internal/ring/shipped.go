package ring

// Shipped parameter sets.
//
// The serving fleet runs a fixed catalogue of CKKS parameter sets; the NTT
// kernels for those sets are specialized ahead of time by cmd/hydra-genkernels
// (see gendispatch.go for how the emitted kernels register themselves and how
// Forward/Inverse dispatch to them). Everything the generator needs to know —
// which ring degrees ship, and up to which modulus size the correction-free
// forward schedule is safe — lives here, so this file is the single source of
// truth for both the generator and the runtime gate.

//go:generate go run ../../cmd/hydra-genkernels -out ntt_gen.go

// ShippedKernelLogNs lists the ring degrees (log2 N) that ship with
// codegen-specialized NTT kernels. cmd/hydra-genkernels reads this list out
// of the package source (go/ast) and emits one forward/inverse kernel pair
// per entry into ntt_gen.go; NewNTTTable selects the specialized pair
// automatically for these degrees when the modulus passes GeneratedQBound.
//
// The range matches the shipped CKKS catalogue: LogN 10–13 cover the
// conformance corpus and test parameters, 14–16 the production depths.
var ShippedKernelLogNs = []int{10, 11, 12, 13, 14, 15, 16}

// GeneratedQBound gates the specialized kernels by modulus size. The
// generated forward network is correction-free: Shoup's lazy product lies in
// [0, 2q) for any 64-bit multiplicand (its error term is w·2^64 mod q < q
// regardless of x), so the butterflies skip the per-stage conditional
// corrections and let values grow by at most 2q per stage, canonicalizing
// once in the closing scatter. Starting from lazy input (< 4q) the peak is
// (4 + 2·LogN)·q ≤ 36q at LogN 16, so any q < 2^56 keeps the whole schedule
// below 2^62. Shipped moduli are 45–55 bits; tables whose modulus exceeds
// the bound fall back to the generic merged kernel.
const GeneratedQBound uint64 = 1 << 56
