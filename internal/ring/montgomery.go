package ring

import "math/bits"

// Montgomery arithmetic: an alternative fast reduction for hot loops that
// multiply many values by the same operand set (the MM compute unit of the
// accelerator can be built either way; Barrett, Shoup and Montgomery are all
// provided and cross-checked).

// MontgomeryModulus precomputes the constants for REDC modulo an odd q.
type MontgomeryModulus struct {
	Q    uint64
	QInv uint64 // -q^-1 mod 2^64
	R2   uint64 // 2^128 mod q, to enter the Montgomery domain
}

// NewMontgomeryModulus prepares Montgomery constants for the odd modulus q.
func NewMontgomeryModulus(q uint64) MontgomeryModulus {
	if q%2 == 0 || q >= 1<<62 {
		panic("ring: Montgomery modulus must be odd and < 2^62")
	}
	// Newton iteration for q^-1 mod 2^64.
	inv := q
	for i := 0; i < 5; i++ {
		inv *= 2 - q*inv
	}
	// R2 = (2^64 mod q)^2 mod q.
	r := (^uint64(0))%q + 1 // 2^64 mod q
	if r == q {
		r = 0
	}
	return MontgomeryModulus{Q: q, QInv: -inv, R2: MulMod(r, r, q)}
}

// REDC reduces the 128-bit value hi·2^64+lo (which must be < q·2^64),
// returning x·2^-64 mod q.
func (m MontgomeryModulus) REDC(hi, lo uint64) uint64 {
	u := lo * m.QInv
	mh, _ := bits.Mul64(u, m.Q)
	// The low half of lo + u*q cancels to zero by construction; only its
	// carry survives.
	_, carry := bits.Add64(lo, u*m.Q, 0)
	out := hi + mh + carry
	if out >= m.Q {
		out -= m.Q
	}
	return out
}

// ToMont maps a into the Montgomery domain (a·2^64 mod q).
func (m MontgomeryModulus) ToMont(a uint64) uint64 {
	hi, lo := bits.Mul64(a, m.R2)
	return m.REDC(hi, lo)
}

// FromMont maps a Montgomery-domain value back to the standard domain.
func (m MontgomeryModulus) FromMont(a uint64) uint64 {
	return m.REDC(0, a)
}

// MulModMont multiplies two Montgomery-domain values, staying in the domain.
func (m MontgomeryModulus) MulModMont(a, b uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	return m.REDC(hi, lo)
}
