package ring

import (
	"math/rand"
	"testing"
)

// Batch-vs-per-polynomial differential pins: every batch entry point must be
// bit-identical to the sequential loop over its scalar counterpart, for every
// shipped degree and for batch shapes that exercise partial tiles (1, 3),
// one exact tile (8), and a ragged multi-tile batch (17). ci.sh runs this
// package under -race, so the (limb × tile) fan-out is also raced here.

var batchShapes = []int{1, 3, 8, 17}

func batchTestLogNs() []int {
	if testing.Short() {
		return []int{10, 11, 12, 13, 14}
	}
	return ShippedKernelLogNs
}

func randomBatch(r *Ring, rng *rand.Rand, b int, ntt bool) []*Poly {
	ps := make([]*Poly, b)
	for i := range ps {
		// Mixed levels across the batch: limbs past a poly's level must be
		// skipped, not touched.
		lvl := r.MaxLevel() - i%2
		p := r.NewPoly(lvl)
		for limb := 0; limb <= lvl; limb++ {
			q := r.Moduli[limb]
			for j := range p.Coeffs[limb] {
				p.Coeffs[limb][j] = rng.Uint64() % q
			}
		}
		p.IsNTT = ntt
		ps[i] = p
	}
	return ps
}

func clonePolys(ps []*Poly) []*Poly {
	out := make([]*Poly, len(ps))
	for i, p := range ps {
		out[i] = p.CopyNew()
	}
	return out
}

func assertBatchEqual(t *testing.T, want, got []*Poly, op string, logN, b int) {
	t.Helper()
	for i := range want {
		if !want[i].Equal(got[i]) {
			t.Fatalf("logN=%d batch=%d %s: polynomial %d diverged from per-poly path", logN, b, op, i)
		}
		if want[i].IsNTT != got[i].IsNTT {
			t.Fatalf("logN=%d batch=%d %s: polynomial %d IsNTT flag diverged", logN, b, op, i)
		}
	}
}

func TestNTTBatchMatchesPerPoly(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, logN := range batchTestLogNs() {
		n := 1 << logN
		r, err := NewRing(n, GenerateNTTPrimes(45, n, 3))
		if err != nil {
			t.Fatal(err)
		}
		for _, b := range batchShapes {
			ps := randomBatch(r, rng, b, false)
			ref := clonePolys(ps)

			r.NTTBatch(ps...)
			for _, p := range ref {
				r.NTT(p)
			}
			assertBatchEqual(t, ref, ps, "NTTBatch", logN, b)

			r.INTTBatch(ps...)
			for _, p := range ref {
				r.INTT(p)
			}
			assertBatchEqual(t, ref, ps, "INTTBatch", logN, b)
		}
	}
}

// The batch NTT must agree with the per-poly path whichever kernel family is
// live, including the generic fallback a >GeneratedQBound modulus forces.
func TestNTTBatchMatchesPerPolyGenericKernels(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	n := 1 << 12
	r, err := NewRing(n, GenerateNTTPrimes(45, n, 3))
	if err != nil {
		t.Fatal(err)
	}
	r.SetGeneratedNTT(false)
	for _, b := range batchShapes {
		ps := randomBatch(r, rng, b, false)
		ref := clonePolys(ps)
		r.NTTBatch(ps...)
		for _, p := range ref {
			r.NTT(p)
		}
		assertBatchEqual(t, ref, ps, "NTTBatch/generic", 12, b)
		r.INTTBatch(ps...)
		for _, p := range ref {
			r.INTT(p)
		}
		assertBatchEqual(t, ref, ps, "INTTBatch/generic", 12, b)
	}
}

func TestMulCoeffsBatchMatchesPerPoly(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	n := 1 << 11
	r, err := NewRing(n, GenerateNTTPrimes(45, n, 3))
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range batchShapes {
		as := randomBatch(r, rng, b, true)
		bs := randomBatch(r, rng, b, true)
		outs := randomBatch(r, rng, b, true)
		ref := clonePolys(outs)

		r.MulCoeffsBatch(as, bs, outs)
		for i := range ref {
			r.MulCoeffs(as[i], bs[i], ref[i])
		}
		assertBatchEqual(t, ref, outs, "MulCoeffsBatch", 11, b)
	}
}

func TestMulCoeffsAddBatchMatchesScalarMAC(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	n := 1 << 11
	r, err := NewRing(n, GenerateNTTPrimes(45, n, 3))
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range batchShapes {
		as := randomBatch(r, rng, b, true)
		bs := randomBatch(r, rng, b, true)
		accs := randomBatch(r, rng, b, true)
		ref := clonePolys(accs)

		r.MulCoeffsAddBatch(as, bs, accs)
		for i := range ref {
			lvl := batchLevel(as[i], bs[i], ref[i])
			for limb := 0; limb <= lvl; limb++ {
				m := r.Tables[limb].Mod
				m.MulAddRowLazy(ref[i].Coeffs[limb], as[i].Coeffs[limb], bs[i].Coeffs[limb])
				ReduceFinalVec(ref[i].Coeffs[limb], m.Q)
			}
		}
		assertBatchEqual(t, ref, accs, "MulCoeffsAddBatch", 11, b)
	}
}

func TestAutomorphismNTTBatchMatchesPerPoly(t *testing.T) {
	rng := rand.New(rand.NewSource(46))
	n := 1 << 11
	r, err := NewRing(n, GenerateNTTPrimes(45, n, 3))
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []uint64{GaloisElementForRotation(n, 1), GaloisElementForRotation(n, -3), GaloisElementConjugate(n)} {
		perm := AutomorphismNTTIndex(n, k)
		for _, b := range batchShapes {
			ins := randomBatch(r, rng, b, true)
			outs := randomBatch(r, rng, b, true)
			ref := clonePolys(outs)

			r.AutomorphismNTTBatch(ins, perm, outs)
			for i := range ref {
				r.AutomorphismNTT(ins[i], perm, ref[i])
			}
			assertBatchEqual(t, ref, outs, "AutomorphismNTTBatch", 11, b)
		}
	}
}

func TestMulAddRowLazyBatchMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	n := 1 << 10
	q := GenerateNTTPrimes(45, n, 1)[0]
	m := NewModulus(q)
	for _, b := range batchShapes {
		key := make([]uint64, n)
		for j := range key {
			key[j] = rng.Uint64() % q
		}
		accs := make([][]uint64, b)
		xs := make([][]uint64, b)
		ref := make([][]uint64, b)
		for i := 0; i < b; i++ {
			accs[i] = make([]uint64, n)
			xs[i] = make([]uint64, n)
			for j := 0; j < n; j++ {
				accs[i][j] = rng.Uint64() % (2 * q) // lazy-domain accumulator
				xs[i][j] = rng.Uint64() % (2 * q)
			}
			ref[i] = append([]uint64(nil), accs[i]...)
		}
		m.MulAddRowLazyBatch(accs, xs, key)
		for i := 0; i < b; i++ {
			m.MulAddRowLazy(ref[i], xs[i], key)
		}
		for i := 0; i < b; i++ {
			for j := 0; j < n; j++ {
				if accs[i][j] != ref[i][j] {
					t.Fatalf("batch=%d: acc[%d][%d]=%d want %d", b, i, j, accs[i][j], ref[i][j])
				}
			}
		}
	}
}
