package ring

import (
	"fmt"
	"math/big"
	"sync"
)

// Ring is the RNS representation of Z_Q[X]/(X^N+1) for Q = q_0·q_1·…·q_{L}.
// Each residue polynomial carries its own NTT tables. A polynomial "at level
// l" uses moduli q_0..q_l; dropping the last modulus models CKKS rescaling.
type Ring struct {
	N      int
	Moduli []uint64
	Tables []*NTTTable

	// scratch recycles full-capacity polynomial backings and rows recycles
	// single N-length residue rows, so the limb-parallel hot paths (key
	// switching, rescaling, digit decomposition) don't trade CPU for GC
	// pressure.
	scratch sync.Pool
	rows    sync.Pool
}

// NewRing constructs a ring of degree n over the given NTT-friendly moduli.
func NewRing(n int, moduli []uint64) (*Ring, error) {
	if n < 2 || n&(n-1) != 0 {
		return nil, fmt.Errorf("ring: degree %d is not a power of two >= 2", n)
	}
	if len(moduli) == 0 {
		return nil, fmt.Errorf("ring: need at least one modulus")
	}
	r := &Ring{N: n, Moduli: append([]uint64(nil), moduli...)}
	seen := make(map[uint64]bool, len(moduli))
	for _, q := range moduli {
		if seen[q] {
			return nil, fmt.Errorf("ring: duplicate modulus %d", q)
		}
		seen[q] = true
		if (q-1)%uint64(2*n) != 0 {
			return nil, fmt.Errorf("ring: modulus %d is not NTT-friendly for degree %d", q, n)
		}
		psi := PrimitiveRoot2N(n, q)
		r.Tables = append(r.Tables, NewNTTTable(n, q, psi))
	}
	r.scratch.New = func() any {
		backing := make([]uint64, len(r.Moduli)*r.N)
		return &backing
	}
	r.rows.New = func() any {
		row := make([]uint64, r.N)
		return &row
	}
	return r, nil
}

// GetScratch returns a zeroed polynomial at the given level backed by the
// ring's buffer pool. It is for transient intermediates only: callers must
// hand it back with PutScratch and must not let it escape into results.
func (r *Ring) GetScratch(level int) *Poly {
	if level < 0 || level > r.MaxLevel() {
		panic(fmt.Sprintf("ring: level %d out of range [0,%d]", level, r.MaxLevel()))
	}
	backing := *(r.scratch.Get().(*[]uint64))
	clear(backing[:(level+1)*r.N])
	p := &Poly{Coeffs: make([][]uint64, level+1)}
	for i := range p.Coeffs {
		p.Coeffs[i], backing = backing[:r.N], backing[r.N:]
	}
	return p
}

// PutScratch returns a GetScratch polynomial to the pool. The caller must
// not use p afterwards. Polys whose first row does not span the pool's
// backing (e.g. a NewPoly result) are rejected silently rather than pooled.
func (r *Ring) PutScratch(p *Poly) {
	if p == nil || len(p.Coeffs) == 0 {
		return
	}
	backing := p.Coeffs[0][:cap(p.Coeffs[0])]
	if len(backing) != len(r.Moduli)*r.N {
		return
	}
	r.scratch.Put(&backing)
}

// GetRow returns a zeroed length-N coefficient row from the row pool.
func (r *Ring) GetRow() []uint64 {
	row := *(r.rows.Get().(*[]uint64))
	clear(row)
	return row
}

// PutRow returns a GetRow row to the pool.
func (r *Ring) PutRow(row []uint64) {
	if len(row) != r.N {
		return
	}
	r.rows.Put(&row)
}

// MaxLevel is the highest level index (len(Moduli)-1).
func (r *Ring) MaxLevel() int { return len(r.Moduli) - 1 }

// Poly is an RNS polynomial: Coeffs[i][j] is coefficient j modulo Moduli[i].
// Level (the number of active residues minus one) is implied by len(Coeffs).
type Poly struct {
	Coeffs [][]uint64
	// IsNTT records whether the residues are in the evaluation (NTT) domain.
	IsNTT bool
}

// NewPoly allocates a zero polynomial at the given level.
func (r *Ring) NewPoly(level int) *Poly {
	if level < 0 || level > r.MaxLevel() {
		panic(fmt.Sprintf("ring: level %d out of range [0,%d]", level, r.MaxLevel()))
	}
	backing := make([]uint64, (level+1)*r.N)
	p := &Poly{Coeffs: make([][]uint64, level+1)}
	for i := range p.Coeffs {
		p.Coeffs[i], backing = backing[:r.N], backing[r.N:]
	}
	return p
}

// Level returns the polynomial's level.
func (p *Poly) Level() int { return len(p.Coeffs) - 1 }

// CopyNew returns a deep copy of p.
func (p *Poly) CopyNew() *Poly {
	out := &Poly{Coeffs: make([][]uint64, len(p.Coeffs)), IsNTT: p.IsNTT}
	for i := range p.Coeffs {
		out.Coeffs[i] = append([]uint64(nil), p.Coeffs[i]...)
	}
	return out
}

// Copy copies src into p; levels must match.
func (p *Poly) Copy(src *Poly) {
	if len(p.Coeffs) != len(src.Coeffs) {
		panic("ring: level mismatch in Copy")
	}
	for i := range p.Coeffs {
		copy(p.Coeffs[i], src.Coeffs[i])
	}
	p.IsNTT = src.IsNTT
}

// DropLevel removes the top residue (rescale support). Panics at level 0.
func (p *Poly) DropLevel() {
	if len(p.Coeffs) == 1 {
		panic("ring: cannot drop below level 0")
	}
	p.Coeffs = p.Coeffs[:len(p.Coeffs)-1]
}

func minLevel(a, b *Poly) int {
	la, lb := a.Level(), b.Level()
	if la < lb {
		return la
	}
	return lb
}

// Add sets out = a + b, over the residues common to a, b and out.
func (r *Ring) Add(a, b, out *Poly) {
	lvl := minLevel(a, b)
	if out.Level() < lvl {
		lvl = out.Level()
	}
	ForEachLimb(lvl+1, func(i int) {
		q := r.Moduli[i]
		ai, bi, oi := a.Coeffs[i], b.Coeffs[i], out.Coeffs[i]
		for j := range oi {
			oi[j] = AddMod(ai[j], bi[j], q)
		}
	})
	out.IsNTT = a.IsNTT
}

// Sub sets out = a - b.
func (r *Ring) Sub(a, b, out *Poly) {
	lvl := minLevel(a, b)
	if out.Level() < lvl {
		lvl = out.Level()
	}
	ForEachLimb(lvl+1, func(i int) {
		q := r.Moduli[i]
		ai, bi, oi := a.Coeffs[i], b.Coeffs[i], out.Coeffs[i]
		for j := range oi {
			oi[j] = SubMod(ai[j], bi[j], q)
		}
	})
	out.IsNTT = a.IsNTT
}

// Neg sets out = -a.
func (r *Ring) Neg(a, out *Poly) {
	lvl := a.Level()
	if out.Level() < lvl {
		lvl = out.Level()
	}
	ForEachLimb(lvl+1, func(i int) {
		q := r.Moduli[i]
		ai, oi := a.Coeffs[i], out.Coeffs[i]
		for j := range oi {
			oi[j] = NegMod(ai[j], q)
		}
	})
	out.IsNTT = a.IsNTT
}

// MulCoeffs sets out = a ⊙ b, the coefficient-wise product. Both inputs must
// be in the NTT domain (where ⊙ realizes ring multiplication).
func (r *Ring) MulCoeffs(a, b, out *Poly) {
	if !a.IsNTT || !b.IsNTT {
		panic("ring: MulCoeffs requires NTT-domain operands")
	}
	lvl := minLevel(a, b)
	if out.Level() < lvl {
		lvl = out.Level()
	}
	ForEachLimb(lvl+1, func(i int) {
		m := r.Tables[i].Mod
		ai, bi, oi := a.Coeffs[i], b.Coeffs[i], out.Coeffs[i]
		for j := range oi {
			oi[j] = m.MulModBarrett(ai[j], bi[j])
		}
	})
	out.IsNTT = true
}

// MulScalar sets out = a * s for a small scalar s.
func (r *Ring) MulScalar(a *Poly, s uint64, out *Poly) {
	lvl := a.Level()
	if out.Level() < lvl {
		lvl = out.Level()
	}
	ForEachLimb(lvl+1, func(i int) {
		m := r.Tables[i].Mod
		sq := s % m.Q
		sShoup := ShoupPrecomp(sq, m.Q)
		ai, oi := a.Coeffs[i], out.Coeffs[i]
		for j := range oi {
			oi[j] = MulModShoup(ai[j], sq, sShoup, m.Q)
		}
	})
	out.IsNTT = a.IsNTT
}

// SetReferenceNTT reroutes every limb's Forward/Inverse through the radix-2
// five-pass reference kernels (see NTTTable.SetReference). The kernel
// families are bit-identical, so results must not change; the conformance
// harness runs a full reference-kernel execution engine on top of this
// switch. Flip it before the ring is shared with concurrent users.
func (r *Ring) SetReferenceNTT(on bool) {
	for _, t := range r.Tables {
		t.SetReference(on)
	}
}

// NTT transforms p (in place) to the evaluation domain using the default
// merged-twist lazy radix-4 kernel (see NTTTable.Forward). Residues may be
// lazy (< 4q) on entry; they are canonical on return.
func (r *Ring) NTT(p *Poly) {
	if p.IsNTT {
		panic("ring: polynomial already in NTT domain")
	}
	ForEachLimb(len(p.Coeffs), func(i int) {
		r.Tables[i].Forward(p.Coeffs[i])
	})
	p.IsNTT = true
}

// NTTRadix4 is NTT using the previous-generation radix-4 kernel (separate
// twist and bit-reverse passes, full reductions). Kept as the ablation
// baseline the merged default is benchmarked against; new code should call
// NTT.
func (r *Ring) NTTRadix4(p *Poly) {
	if p.IsNTT {
		panic("ring: polynomial already in NTT domain")
	}
	ForEachLimb(len(p.Coeffs), func(i int) {
		r.Tables[i].ForwardRadix4(p.Coeffs[i])
	})
	p.IsNTT = true
}

// INTT transforms p (in place) back to the coefficient domain.
func (r *Ring) INTT(p *Poly) {
	if !p.IsNTT {
		panic("ring: polynomial already in coefficient domain")
	}
	ForEachLimb(len(p.Coeffs), func(i int) {
		r.Tables[i].Inverse(p.Coeffs[i])
	})
	p.IsNTT = false
}

// ModulusProduct returns the product of the first level+1 moduli as a big.Int.
func (r *Ring) ModulusProduct(level int) *big.Int {
	prod := big.NewInt(1)
	for i := 0; i <= level; i++ {
		prod.Mul(prod, new(big.Int).SetUint64(r.Moduli[i]))
	}
	return prod
}

// ToBigInt reconstructs coefficient j of p (coefficient domain) as an integer
// in [0, Q) using the CRT, writing results into out (len N). Used by the
// CKKS decoder.
func (r *Ring) ToBigInt(p *Poly, out []*big.Int) {
	if p.IsNTT {
		panic("ring: ToBigInt requires coefficient domain")
	}
	level := p.Level()
	Q := r.ModulusProduct(level)
	// CRT basis: e_i = (Q/q_i) * ((Q/q_i)^-1 mod q_i).
	basis := make([]*big.Int, level+1)
	for i := 0; i <= level; i++ {
		qi := new(big.Int).SetUint64(r.Moduli[i])
		Qi := new(big.Int).Div(Q, qi)
		inv := new(big.Int).ModInverse(new(big.Int).Mod(Qi, qi), qi)
		basis[i] = new(big.Int).Mul(Qi, inv)
	}
	tmp := new(big.Int)
	for j := 0; j < r.N; j++ {
		acc := big.NewInt(0)
		for i := 0; i <= level; i++ {
			tmp.SetUint64(p.Coeffs[i][j])
			tmp.Mul(tmp, basis[i])
			acc.Add(acc, tmp)
		}
		acc.Mod(acc, Q)
		if out[j] == nil {
			out[j] = new(big.Int)
		}
		out[j].Set(acc)
	}
}

// SetBigInt sets p's coefficients (coefficient domain) from integers, reduced
// modulo each residue. Negative values are supported.
func (r *Ring) SetBigInt(vals []*big.Int, p *Poly) {
	tmp := new(big.Int)
	for i := range p.Coeffs {
		q := new(big.Int).SetUint64(r.Moduli[i])
		for j := 0; j < r.N; j++ {
			tmp.Mod(vals[j], q)
			p.Coeffs[i][j] = tmp.Uint64()
		}
	}
	p.IsNTT = false
}

// Equal reports whether two polynomials have identical residues and domain.
func (p *Poly) Equal(other *Poly) bool {
	if len(p.Coeffs) != len(other.Coeffs) || p.IsNTT != other.IsNTT {
		return false
	}
	for i := range p.Coeffs {
		for j := range p.Coeffs[i] {
			if p.Coeffs[i][j] != other.Coeffs[i][j] {
				return false
			}
		}
	}
	return true
}
