package ring

import (
	"math/rand"
	"testing"
)

// benchBatchSetup builds a 6-limb N=2^14 ring — the Hydra residue shape a
// mid-depth ciphertext occupies — and batch random polynomials for it.
func benchBatchSetup(b *testing.B, batch int) (*Ring, []*Poly) {
	b.Helper()
	n := 1 << 14
	r, err := NewRing(n, GenerateNTTPrimes(55, n, 6))
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(int64(batch)))
	ps := make([]*Poly, batch)
	for i := range ps {
		p := r.NewPoly(r.MaxLevel())
		for j, q := range r.Moduli {
			copy(p.Coeffs[j], randomCoeffs(rng, n, q))
		}
		ps[i] = p
	}
	b.SetBytes(int64(batch * len(r.Moduli) * n * 8))
	return r, ps
}

// benchNTTBatch measures a full forward+inverse round trip per iteration so
// the polynomials return to their starting domain: ns/op covers 2·batch·limbs
// transforms through the batch entry points (generated kernels, tiled
// dispatch, one pooled scratch row shared across the batch).
func benchNTTBatch(b *testing.B, batch int) {
	r, ps := benchBatchSetup(b, batch)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.NTTBatch(ps...)
		r.INTTBatch(ps...)
	}
}

// benchNTTPerCiphertext is the pre-batch baseline the tiling is measured
// against: per-ciphertext dispatch through the generic merged kernels
// (SetGeneratedNTT(false)), one Ring.NTT/INTT call per polynomial.
func benchNTTPerCiphertext(b *testing.B, batch int) {
	r, ps := benchBatchSetup(b, batch)
	r.SetGeneratedNTT(false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, p := range ps {
			r.NTT(p)
		}
		for _, p := range ps {
			r.INTT(p)
		}
	}
}

func BenchmarkNTTBatch1_16384(b *testing.B)  { benchNTTBatch(b, 1) }
func BenchmarkNTTBatch8_16384(b *testing.B)  { benchNTTBatch(b, 8) }
func BenchmarkNTTBatch32_16384(b *testing.B) { benchNTTBatch(b, 32) }

func BenchmarkNTTPerCt1_16384(b *testing.B)  { benchNTTPerCiphertext(b, 1) }
func BenchmarkNTTPerCt8_16384(b *testing.B)  { benchNTTPerCiphertext(b, 8) }
func BenchmarkNTTPerCt32_16384(b *testing.B) { benchNTTPerCiphertext(b, 32) }
