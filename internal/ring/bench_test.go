package ring

import (
	"math/rand"
	"testing"
)

func benchNTT(b *testing.B, n int, kernel func(*NTTTable, []uint64)) {
	q := GenerateNTTPrimes(55, n, 1)[0]
	tbl := NewNTTTable(n, q, PrimitiveRoot2N(n, q))
	rng := rand.New(rand.NewSource(1))
	a := randomCoeffs(rng, n, q)
	b.SetBytes(int64(8 * n))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		kernel(tbl, a)
	}
}

var (
	fwdMerged = (*NTTTable).Forward
	fwdRadix4 = (*NTTTable).ForwardRadix4
	fwdRadix2 = (*NTTTable).ForwardReference
	invMerged = (*NTTTable).Inverse
	invRadix2 = (*NTTTable).InverseReference
)

// The NTT-kernel ablation behind Hydra's choice of a radix-4 datapath
// (Section IV-B), three generations deep: the five-pass radix-2 reference,
// the separate-twist radix-4 kernel, and the merged-twist lazy radix-4
// default. The 2^13..2^16 ladder spans the paper's parameter sets; 2^14 is
// the acceptance point for the merged kernel's ≥1.3× target over radix-4.
func BenchmarkNTTRadix2_4096(b *testing.B)   { benchNTT(b, 4096, fwdRadix2) }
func BenchmarkNTTRadix4_4096(b *testing.B)   { benchNTT(b, 4096, fwdRadix4) }
func BenchmarkNTTMerged_4096(b *testing.B)   { benchNTT(b, 4096, fwdMerged) }
func BenchmarkNTTRadix2_8192(b *testing.B)   { benchNTT(b, 8192, fwdRadix2) }
func BenchmarkNTTRadix4_8192(b *testing.B)   { benchNTT(b, 8192, fwdRadix4) }
func BenchmarkNTTMerged_8192(b *testing.B)   { benchNTT(b, 8192, fwdMerged) }
func BenchmarkNTTRadix2_16384(b *testing.B)  { benchNTT(b, 16384, fwdRadix2) }
func BenchmarkNTTRadix4_16384(b *testing.B)  { benchNTT(b, 16384, fwdRadix4) }
func BenchmarkNTTMerged_16384(b *testing.B)  { benchNTT(b, 16384, fwdMerged) }
func BenchmarkNTTRadix2_32768(b *testing.B)  { benchNTT(b, 32768, fwdRadix2) }
func BenchmarkNTTRadix4_32768(b *testing.B)  { benchNTT(b, 32768, fwdRadix4) }
func BenchmarkNTTMerged_32768(b *testing.B)  { benchNTT(b, 32768, fwdMerged) }
func BenchmarkNTTRadix2_65536(b *testing.B)  { benchNTT(b, 65536, fwdRadix2) }
func BenchmarkNTTRadix4_65536(b *testing.B)  { benchNTT(b, 65536, fwdRadix4) }
func BenchmarkNTTMerged_65536(b *testing.B)  { benchNTT(b, 65536, fwdMerged) }
func BenchmarkINTT_4096(b *testing.B)        { benchNTT(b, 4096, invMerged) }
func BenchmarkINTTRadix2_8192(b *testing.B)  { benchNTT(b, 8192, invRadix2) }
func BenchmarkINTTMerged_8192(b *testing.B)  { benchNTT(b, 8192, invMerged) }
func BenchmarkINTTRadix2_16384(b *testing.B) { benchNTT(b, 16384, invRadix2) }
func BenchmarkINTTMerged_16384(b *testing.B) { benchNTT(b, 16384, invMerged) }
func BenchmarkINTTRadix2_32768(b *testing.B) { benchNTT(b, 32768, invRadix2) }
func BenchmarkINTTMerged_32768(b *testing.B) { benchNTT(b, 32768, invMerged) }
func BenchmarkINTTRadix2_65536(b *testing.B) { benchNTT(b, 65536, invRadix2) }
func BenchmarkINTTMerged_65536(b *testing.B) { benchNTT(b, 65536, invMerged) }

// BenchmarkMulCoeffsAddFused vs the two-pass spelling it replaces: the fused
// pointwise MAC kernel used by the keyswitch inner product and BSGS
// accumulation.
func BenchmarkMulCoeffsAddFused(b *testing.B) {
	r := testRing(b, 4096, 3)
	s := NewSampler(r, 7)
	x, y, acc := r.NewPoly(2), r.NewPoly(2), r.NewPoly(2)
	s.Uniform(x)
	s.Uniform(y)
	x.IsNTT, y.IsNTT, acc.IsNTT = true, true, true
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.MulCoeffsAdd(x, y, acc)
	}
}

func BenchmarkMulCoeffsAddTwoPass(b *testing.B) {
	r := testRing(b, 4096, 3)
	s := NewSampler(r, 7)
	x, y, acc, tmp := r.NewPoly(2), r.NewPoly(2), r.NewPoly(2), r.NewPoly(2)
	s.Uniform(x)
	s.Uniform(y)
	x.IsNTT, y.IsNTT, acc.IsNTT = true, true, true
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.MulCoeffs(x, y, tmp)
		r.Add(acc, tmp, acc)
	}
}

func BenchmarkMulModBarrett(b *testing.B) {
	m := NewModulus(testQ)
	x, y := uint64(0x123456789abcd), uint64(0xfedcba987)
	var acc uint64
	for i := 0; i < b.N; i++ {
		acc ^= m.MulModBarrett(x^acc, y)
	}
	_ = acc
}

func BenchmarkMulModShoup(b *testing.B) {
	w := uint64(0xfedcba987) % testQ
	ws := ShoupPrecomp(w, testQ)
	var acc uint64
	for i := 0; i < b.N; i++ {
		acc = MulModShoup(acc^0x123456789abcd, w, ws, testQ)
	}
	_ = acc
}

func BenchmarkAutomorphismNTT(b *testing.B) {
	r := testRing(b, 4096, 3)
	s := NewSampler(r, 3)
	p := r.NewPoly(2)
	s.Uniform(p)
	r.NTT(p)
	out := r.NewPoly(2)
	perm := AutomorphismNTTIndex(r.N, GaloisElementForRotation(r.N, 1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.AutomorphismNTT(p, perm, out)
	}
}

func BenchmarkMulModMontgomery(b *testing.B) {
	m := NewMontgomeryModulus(testQ)
	x := m.ToMont(0x123456789abcd % testQ)
	y := m.ToMont(0xfedcba987 % testQ)
	var acc uint64 = x
	for i := 0; i < b.N; i++ {
		acc = m.MulModMont(acc, y)
	}
	_ = acc
}
