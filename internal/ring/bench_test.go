package ring

import (
	"math/rand"
	"testing"
)

func benchNTT(b *testing.B, n int, radix4 bool) {
	q := GenerateNTTPrimes(55, n, 1)[0]
	tbl := NewNTTTable(n, q, PrimitiveRoot2N(n, q))
	rng := rand.New(rand.NewSource(1))
	a := randomCoeffs(rng, n, q)
	b.SetBytes(int64(8 * n))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if radix4 {
			tbl.ForwardRadix4(a)
		} else {
			tbl.Forward(a)
		}
	}
}

// BenchmarkNTTRadix2 vs BenchmarkNTTRadix4: the NTT-kernel ablation behind
// Hydra's choice of a radix-4 datapath (Section IV-B).
func BenchmarkNTTRadix2_4096(b *testing.B)  { benchNTT(b, 4096, false) }
func BenchmarkNTTRadix4_4096(b *testing.B)  { benchNTT(b, 4096, true) }
func BenchmarkNTTRadix2_65536(b *testing.B) { benchNTT(b, 65536, false) }
func BenchmarkNTTRadix4_65536(b *testing.B) { benchNTT(b, 65536, true) }

func BenchmarkINTT_4096(b *testing.B) {
	n := 4096
	q := GenerateNTTPrimes(55, n, 1)[0]
	tbl := NewNTTTable(n, q, PrimitiveRoot2N(n, q))
	rng := rand.New(rand.NewSource(2))
	a := randomCoeffs(rng, n, q)
	b.SetBytes(int64(8 * n))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tbl.Inverse(a)
	}
}

func BenchmarkMulModBarrett(b *testing.B) {
	m := NewModulus(testQ)
	x, y := uint64(0x123456789abcd), uint64(0xfedcba987)
	var acc uint64
	for i := 0; i < b.N; i++ {
		acc ^= m.MulModBarrett(x^acc, y)
	}
	_ = acc
}

func BenchmarkMulModShoup(b *testing.B) {
	w := uint64(0xfedcba987) % testQ
	ws := ShoupPrecomp(w, testQ)
	var acc uint64
	for i := 0; i < b.N; i++ {
		acc = MulModShoup(acc^0x123456789abcd, w, ws, testQ)
	}
	_ = acc
}

func BenchmarkAutomorphismNTT(b *testing.B) {
	r := testRing(b, 4096, 3)
	s := NewSampler(r, 3)
	p := r.NewPoly(2)
	s.Uniform(p)
	r.NTT(p)
	out := r.NewPoly(2)
	perm := AutomorphismNTTIndex(r.N, GaloisElementForRotation(r.N, 1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.AutomorphismNTT(p, perm, out)
	}
}

func BenchmarkMulModMontgomery(b *testing.B) {
	m := NewMontgomeryModulus(testQ)
	x := m.ToMont(0x123456789abcd % testQ)
	y := m.ToMont(0xfedcba987 % testQ)
	var acc uint64 = x
	for i := 0; i < b.N; i++ {
		acc = m.MulModMont(acc, y)
	}
	_ = acc
}
