package ring

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestForEachLimbCoversAllIndices(t *testing.T) {
	for _, n := range []int{0, 1, 2, 3, 7, 16, 129} {
		hits := make([]int32, n)
		ForEachLimb(n, func(i int) { atomic.AddInt32(&hits[i], 1) })
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("n=%d: index %d executed %d times", n, i, h)
			}
		}
	}
}

func TestForEachLimbSerialMode(t *testing.T) {
	SetSerial(true)
	defer SetSerial(false)
	if !Serial() {
		t.Fatal("Serial() should report true")
	}
	// In serial mode execution must be in-order on the calling goroutine.
	var order []int
	ForEachLimb(8, func(i int) { order = append(order, i) })
	for i, v := range order {
		if v != i {
			t.Fatalf("serial mode ran out of order: %v", order)
		}
	}
}

func TestForEachLimbNestedDoesNotDeadlock(t *testing.T) {
	old := MaxWorkers()
	SetMaxWorkers(2)
	defer SetMaxWorkers(old)
	var count atomic.Int64
	// Outer fan-out over "cards", each nesting limb-level fan-out, nested a
	// third level deep — saturating the 2-worker pool at every level.
	ForEachLimb(4, func(i int) {
		ForEachLimb(4, func(j int) {
			ForEachLimb(4, func(k int) { count.Add(1) })
		})
	})
	if count.Load() != 64 {
		t.Fatalf("nested execution ran %d of 64 items", count.Load())
	}
}

func TestForEachLimbConcurrentCallers(t *testing.T) {
	var wg sync.WaitGroup
	var count atomic.Int64
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ForEachLimb(32, func(i int) { count.Add(1) })
		}()
	}
	wg.Wait()
	if count.Load() != 8*32 {
		t.Fatalf("concurrent callers ran %d of %d items", count.Load(), 8*32)
	}
}

func TestRunTasks(t *testing.T) {
	var a, b, c bool
	RunTasks(func() { a = true }, func() { b = true }, func() { c = true })
	if !a || !b || !c {
		t.Fatal("RunTasks skipped a task")
	}
}

func TestSetMaxWorkersFloor(t *testing.T) {
	old := MaxWorkers()
	defer SetMaxWorkers(old)
	SetMaxWorkers(-3)
	if MaxWorkers() != 1 {
		t.Fatalf("MaxWorkers floor: got %d, want 1", MaxWorkers())
	}
	// One worker means the caller runs everything inline.
	var order []int
	ForEachLimb(4, func(i int) { order = append(order, i) })
	if len(order) != 4 {
		t.Fatalf("inline fallback ran %d of 4 items", len(order))
	}
}

func TestScratchAndRowPools(t *testing.T) {
	r := testRing(t, 16, 3)
	p := r.GetScratch(2)
	if p.Level() != 2 {
		t.Fatalf("scratch level %d, want 2", p.Level())
	}
	for i := range p.Coeffs {
		for j := range p.Coeffs[i] {
			if p.Coeffs[i][j] != 0 {
				t.Fatal("scratch polynomial not zeroed")
			}
			p.Coeffs[i][j] = 0xdead // dirty it for the reuse check
		}
	}
	r.PutScratch(p)
	p2 := r.GetScratch(r.MaxLevel())
	for i := range p2.Coeffs {
		for j := range p2.Coeffs[i] {
			if p2.Coeffs[i][j] != 0 {
				t.Fatal("recycled scratch polynomial not re-zeroed")
			}
		}
	}
	r.PutScratch(p2)

	row := r.GetRow()
	if len(row) != r.N {
		t.Fatalf("row length %d, want %d", len(row), r.N)
	}
	row[0] = 7
	r.PutRow(row)
	row2 := r.GetRow()
	if row2[0] != 0 {
		t.Fatal("recycled row not re-zeroed")
	}
	r.PutRow(row2)

	// Foreign buffers (not pool-backed) are rejected, not pooled.
	r.PutScratch(r.NewPoly(1))
	r.PutRow(make([]uint64, 3))
}
