package ring

import (
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"
)

const testQ = uint64(0x1fffffffffe00001) // 61-bit NTT-friendly prime

func TestAddSubNegMod(t *testing.T) {
	q := uint64(97)
	for a := uint64(0); a < q; a += 7 {
		for b := uint64(0); b < q; b += 5 {
			if got, want := AddMod(a, b, q), (a+b)%q; got != want {
				t.Fatalf("AddMod(%d,%d) = %d, want %d", a, b, got, want)
			}
			if got, want := SubMod(a, b, q), (a+q-b)%q; got != want {
				t.Fatalf("SubMod(%d,%d) = %d, want %d", a, b, got, want)
			}
		}
		if got, want := NegMod(a, q), (q-a)%q; got != want {
			t.Fatalf("NegMod(%d) = %d, want %d", a, got, want)
		}
	}
}

func TestMulModAgainstBig(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	qs := []uint64{3, 97, 65537, 1<<30 + 35, testQ}
	for _, q := range qs {
		if q >= 1<<62 {
			continue
		}
		for i := 0; i < 200; i++ {
			a := rng.Uint64() % q
			b := rng.Uint64() % q
			want := new(big.Int).Mul(new(big.Int).SetUint64(a), new(big.Int).SetUint64(b))
			want.Mod(want, new(big.Int).SetUint64(q))
			if got := MulMod(a, b, q); got != want.Uint64() {
				t.Fatalf("MulMod(%d,%d,%d) = %d, want %d", a, b, q, got, want)
			}
		}
	}
}

func TestMulModBarrettMatchesMulMod(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, q := range []uint64{97, 12289, 1<<45 + 0x7001, testQ} {
		m := NewModulus(q)
		for i := 0; i < 500; i++ {
			a := rng.Uint64() % q
			b := rng.Uint64() % q
			if got, want := m.MulModBarrett(a, b), MulMod(a, b, q); got != want {
				t.Fatalf("q=%d: Barrett(%d,%d) = %d, want %d", q, a, b, got, want)
			}
		}
	}
}

func TestMulModBarrettProperty(t *testing.T) {
	m := NewModulus(testQ)
	f := func(a, b uint64) bool {
		a %= testQ
		b %= testQ
		return m.MulModBarrett(a, b) == MulMod(a, b, testQ)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestMulModShoupMatchesMulMod(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, q := range []uint64{97, 12289, testQ} {
		for i := 0; i < 300; i++ {
			a := rng.Uint64() % q
			w := rng.Uint64() % q
			ws := ShoupPrecomp(w, q)
			if got, want := MulModShoup(a, w, ws, q), MulMod(a, w, q); got != want {
				t.Fatalf("q=%d: Shoup(%d,%d) = %d, want %d", q, a, w, got, want)
			}
		}
	}
}

func TestPowModAndInvMod(t *testing.T) {
	q := uint64(12289)
	if got := PowMod(3, 0, q); got != 1 {
		t.Fatalf("PowMod(3,0) = %d, want 1", got)
	}
	if got := PowMod(2, 10, q); got != 1024 {
		t.Fatalf("PowMod(2,10) = %d, want 1024", got)
	}
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 100; i++ {
		a := rng.Uint64()%(q-1) + 1
		inv := InvMod(a, q)
		if MulMod(a, inv, q) != 1 {
			t.Fatalf("InvMod(%d) * %d != 1", a, a)
		}
	}
}

func TestInvModZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("InvMod(0) did not panic")
		}
	}()
	InvMod(0, 97)
}

func TestNewModulusRejectsOutOfRange(t *testing.T) {
	for _, q := range []uint64{0, 1 << 62, 1 << 63} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("NewModulus(%d) did not panic", q)
				}
			}()
			NewModulus(q)
		}()
	}
}

func TestMontgomeryMatchesMulMod(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, q := range []uint64{97, 12289, 1<<45 + 0x7001, testQ} {
		m := NewMontgomeryModulus(q)
		for i := 0; i < 300; i++ {
			a := rng.Uint64() % q
			b := rng.Uint64() % q
			got := m.FromMont(m.MulModMont(m.ToMont(a), m.ToMont(b)))
			if want := MulMod(a, b, q); got != want {
				t.Fatalf("q=%d: Montgomery(%d,%d) = %d, want %d", q, a, b, got, want)
			}
		}
	}
}

func TestMontgomeryRoundTripProperty(t *testing.T) {
	m := NewMontgomeryModulus(testQ)
	f := func(a uint64) bool {
		a %= testQ
		return m.FromMont(m.ToMont(a)) == a
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestMontgomeryRejectsBadModulus(t *testing.T) {
	for _, q := range []uint64{10, 1 << 62} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("NewMontgomeryModulus(%d) did not panic", q)
				}
			}()
			NewMontgomeryModulus(q)
		}()
	}
}

// lazyRow returns a row of residues lazy in [0, 2q).
func lazyRow(rng *rand.Rand, n int, q uint64) []uint64 {
	row := make([]uint64, n)
	for j := range row {
		row[j] = rng.Uint64() % (2 * q)
	}
	return row
}

// The gather and Shoup row kernels must agree with the plain lazy MAC applied
// to materialized inputs: gathering a[perm[j]] is the same as permuting a
// first, and a constant Shoup multiplier is the same as a broadcast row.
func TestRowLazyKernelsMatchReference(t *testing.T) {
	const n = 64
	rng := rand.New(rand.NewSource(21))
	for _, q := range []uint64{12289, 1<<45 + 0x7001, testQ} {
		m := NewModulus(q)
		a := lazyRow(rng, n, q)
		b := lazyRow(rng, n, q)
		perm := rng.Perm(n)
		w := rng.Uint64() % q
		ws := ShoupPrecomp(w, q)

		permuted := make([]uint64, n)
		broadcast := make([]uint64, n)
		for j := range permuted {
			permuted[j] = a[perm[j]]
			broadcast[j] = w
		}

		acc := lazyRow(rng, n, q)
		want := append([]uint64(nil), acc...)
		m.MulAddRowLazyGather(acc, a, b, perm)
		m.MulAddRowLazy(want, permuted, b)
		checkLazyRowsEqual(t, "MulAddRowLazyGather", acc, want, q)

		acc = lazyRow(rng, n, q)
		want = append([]uint64(nil), acc...)
		m.MulAddShoupRowLazy(acc, a, w, ws)
		m.MulAddRowLazy(want, a, broadcast)
		checkLazyRowsEqual(t, "MulAddShoupRowLazy", acc, want, q)

		acc = lazyRow(rng, n, q)
		want = append([]uint64(nil), acc...)
		m.MulAddShoupRowLazyGather(acc, a, w, ws, perm)
		m.MulAddRowLazy(want, permuted, broadcast)
		checkLazyRowsEqual(t, "MulAddShoupRowLazyGather", acc, want, q)

		acc = lazyRow(rng, n, q)
		want = append([]uint64(nil), acc...)
		m.AddRowLazy(acc, b)
		for j := range want {
			want[j] = AddMod(want[j]%q, b[j]%q, q)
			// re-laze so the comparison below treats both sides uniformly
		}
		checkLazyRowsEqual(t, "AddRowLazy", acc, want, q)
	}
}

// checkLazyRowsEqual canonicalizes both rows and compares, also asserting the
// lazy output contract acc[j] < 2q.
func checkLazyRowsEqual(t *testing.T, name string, got, want []uint64, q uint64) {
	t.Helper()
	for j := range got {
		if got[j] >= 2*q {
			t.Fatalf("%s: acc[%d] = %d breaks the lazy bound 2q (q=%d)", name, j, got[j], q)
		}
		if got[j]%q != want[j]%q {
			t.Fatalf("%s: acc[%d] ≡ %d mod q, want %d (q=%d)", name, j, got[j]%q, want[j]%q, q)
		}
	}
}
