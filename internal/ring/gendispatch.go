package ring

import "sync"

// Dispatch seam for the codegen-specialized NTT kernels.
//
// cmd/hydra-genkernels emits ntt_gen.go: one fully specialized forward and
// inverse kernel per shipped ring degree (see shipped.go), with every stage's
// block count and stride a compile-time literal, the bit-reverse permutation
// fused into the first (inverse) or last (forward) butterfly pass, and — for
// the forward — the correction-free lazy schedule described at
// GeneratedQBound. The kernels register themselves here from init(), and
// NewNTTTable turns them on per table when the degree and modulus qualify.
//
// Like the reference switch (SetReference), the generated switch is a
// bit-identity seam, not a semantics switch: every kernel family produces
// identical canonical output, pinned by the differential tests in
// ntt_gen_test.go and by the conformance matrix, so flipping dispatch can
// never change a result bit. SetGenerated(false) recovers the exact
// pre-specialization execution (the generic merged kernel), which is what
// the per-ciphertext-dispatch benchmark baselines run.

// generatedKernel is one specialized transform: it reads a, may use the
// N-word scratch row as a ping-pong buffer, and leaves the result in a.
type generatedKernel func(t *NTTTable, a, scratch []uint64)

type generatedKernelPair struct {
	forward generatedKernel
	inverse generatedKernel
}

var generatedKernels = map[int]generatedKernelPair{}

// registerGeneratedKernels is called from ntt_gen.go's init. Registering a
// degree twice is a build-wiring bug, not a runtime condition.
func registerGeneratedKernels(logN int, fwd, inv generatedKernel) {
	if _, dup := generatedKernels[logN]; dup {
		panic("ring: duplicate generated kernel registration")
	}
	generatedKernels[logN] = generatedKernelPair{forward: fwd, inverse: inv}
}

// GeneratedAvailable reports whether a specialized kernel pair exists for
// this table's degree and modulus (degree in the shipped set, q below
// GeneratedQBound).
func (t *NTTTable) GeneratedAvailable() bool {
	_, ok := generatedKernels[t.LogN]
	return ok && t.Mod.Q < GeneratedQBound
}

// SetGenerated selects whether Forward/Inverse dispatch to the specialized
// generated kernels (the default when GeneratedAvailable) or to the generic
// merged kernel. Turning it on for a table with no qualifying kernel is a
// no-op. SetReference takes precedence over both. Like SetReference, set it
// before the table is shared with concurrent users.
func (t *NTTTable) SetGenerated(on bool) {
	t.useGenerated = on && t.GeneratedAvailable()
}

// SetGeneratedNTT flips every limb's generated-kernel dispatch (see
// NTTTable.SetGenerated). The families are bit-identical, so results must
// not change; false recovers the generic per-limb merged kernel, the
// baseline the batch benchmarks compare against.
func (r *Ring) SetGeneratedNTT(on bool) {
	for _, t := range r.Tables {
		t.SetGenerated(on)
	}
}

// initGenerated wires a freshly built table to its specialized kernels, if
// any. Called from NewNTTTable.
func (t *NTTTable) initGenerated() {
	t.useGenerated = t.GeneratedAvailable()
	n := t.N
	t.genScratch = &sync.Pool{New: func() any {
		row := make([]uint64, n)
		return &row
	}}
}

// forwardGenerated runs the specialized forward kernel with a pooled
// ping-pong row. The scratch row never escapes the call.
func (t *NTTTable) forwardGenerated(a []uint64) {
	k := generatedKernels[t.LogN]
	sp := t.genScratch.Get().(*[]uint64)
	k.forward(t, a, *sp)
	t.genScratch.Put(sp)
}

// inverseGenerated runs the specialized inverse kernel with a pooled
// ping-pong row.
func (t *NTTTable) inverseGenerated(a []uint64) {
	k := generatedKernels[t.LogN]
	sp := t.genScratch.Get().(*[]uint64)
	k.inverse(t, a, *sp)
	t.genScratch.Put(sp)
}
