package ring

// Batch execution layer.
//
// Hydra's lanes only reach full occupancy when whole batches of residue
// polynomials stream through each compute unit back to back; one ciphertext
// at a time leaves the systolic array draining between ops. The software
// analogue: every per-polynomial entry point here has a batch variant that
// loads per-limb state once — the NTT scratch row, the automorphism index
// permutation, the modulus constants — and streams it across the batch,
// with the worker pool re-partitioned over (limb × batch-tile) units via
// ForEachLimbTile instead of whole limbs.
//
// Every batch variant is a bit-identity seam over its per-polynomial
// counterpart: the batch differential tests (batch_test.go) pin
// NTTBatch/INTTBatch/MulCoeffsBatch/AutomorphismNTTBatch to the sequential
// loop over the scalar API for every shipped degree and batch shape.

// batchTileRows is the number of polynomial rows per scheduling tile. Eight
// rows of a LogN-14 limb are 1 MiB of streamed data against one shared
// scratch row and twiddle table — deep enough to amortize per-call setup,
// small enough that a batch of 8 ciphertexts still yields multiple units
// per limb.
const batchTileRows = 8

// ForwardBatch runs the forward NTT over every row, sharing one scratch
// ping-pong row across the whole batch instead of a pool round trip per
// transform. Rows must all have length N and obey Forward's input contract.
// Output is bit-identical to calling Forward on each row.
func (t *NTTTable) ForwardBatch(rows [][]uint64) {
	if t.reference || !t.useGenerated {
		for _, row := range rows {
			t.Forward(row)
		}
		return
	}
	k := generatedKernels[t.LogN]
	sp := t.genScratch.Get().(*[]uint64)
	for _, row := range rows {
		k.forward(t, row, *sp)
	}
	t.genScratch.Put(sp)
}

// InverseBatch runs the inverse NTT over every row, sharing one scratch row
// across the batch. Output is bit-identical to calling Inverse on each row.
func (t *NTTTable) InverseBatch(rows [][]uint64) {
	if t.reference || !t.useGenerated {
		for _, row := range rows {
			t.Inverse(row)
		}
		return
	}
	k := generatedKernels[t.LogN]
	sp := t.genScratch.Get().(*[]uint64)
	for _, row := range rows {
		k.inverse(t, row, *sp)
	}
	t.genScratch.Put(sp)
}

// batchTiles returns the tile count covering b rows.
func batchTiles(b int) int { return (b + batchTileRows - 1) / batchTileRows }

// tileBounds returns the [lo, hi) row range of a tile over b rows.
func tileBounds(tile, b int) (lo, hi int) {
	lo = tile * batchTileRows
	hi = lo + batchTileRows
	if hi > b {
		hi = b
	}
	return lo, hi
}

// maxLimbs returns the largest limb count in the batch. Polynomials in one
// batch may sit at different levels; each limb's work unit covers only the
// rows that reach it.
func maxLimbs(ps []*Poly) int {
	limbs := 0
	for _, p := range ps {
		if l := len(p.Coeffs); l > limbs {
			limbs = l
		}
	}
	return limbs
}

// gatherRows appends to buf the limb-th coefficient row of every polynomial
// in ps[lo:hi] that reaches that limb.
func gatherRows(buf [][]uint64, ps []*Poly, limb, lo, hi int) [][]uint64 {
	for _, p := range ps[lo:hi] {
		if limb < len(p.Coeffs) {
			buf = append(buf, p.Coeffs[limb])
		}
	}
	return buf
}

// NTTBatch transforms every polynomial to the evaluation domain in one
// dispatch: the (limb × tile) grid is fanned over the worker pool limb-major,
// so each limb's twiddle tables and scratch row are loaded once and streamed
// across the whole batch. Results are bit-identical to calling NTT on each
// polynomial in turn.
func (r *Ring) NTTBatch(ps ...*Poly) {
	for _, p := range ps {
		if p.IsNTT {
			panic("ring: polynomial already in NTT domain")
		}
	}
	ForEachLimbTile(maxLimbs(ps), batchTiles(len(ps)), func(limb, tile int) {
		lo, hi := tileBounds(tile, len(ps))
		rows := gatherRows(make([][]uint64, 0, batchTileRows), ps, limb, lo, hi)
		r.Tables[limb].ForwardBatch(rows)
	})
	for _, p := range ps {
		p.IsNTT = true
	}
}

// INTTBatch transforms every polynomial back to the coefficient domain in
// one dispatch (see NTTBatch). Results are bit-identical to per-polynomial
// INTT calls.
func (r *Ring) INTTBatch(ps ...*Poly) {
	for _, p := range ps {
		if !p.IsNTT {
			panic("ring: polynomial already in coefficient domain")
		}
	}
	ForEachLimbTile(maxLimbs(ps), batchTiles(len(ps)), func(limb, tile int) {
		lo, hi := tileBounds(tile, len(ps))
		rows := gatherRows(make([][]uint64, 0, batchTileRows), ps, limb, lo, hi)
		r.Tables[limb].InverseBatch(rows)
	})
	for _, p := range ps {
		p.IsNTT = false
	}
}

// batchLevel returns the common working level of an (a, b, out) triple,
// mirroring the scalar ops' minLevel clamping.
func batchLevel(a, b, out *Poly) int {
	lvl := minLevel(a, b)
	if out.Level() < lvl {
		lvl = out.Level()
	}
	return lvl
}

// MulCoeffsBatch sets outs[i] = as[i] ⊙ bs[i] for every i in one fused
// dispatch over the (limb × tile) grid. All inputs must be NTT-domain.
// Bit-identical to per-triple MulCoeffs calls.
func (r *Ring) MulCoeffsBatch(as, bs, outs []*Poly) {
	if len(as) != len(bs) || len(as) != len(outs) {
		panic("ring: MulCoeffsBatch length mismatch")
	}
	for i := range as {
		if !as[i].IsNTT || !bs[i].IsNTT {
			panic("ring: MulCoeffs requires NTT-domain operands")
		}
	}
	limbs := 0
	for i := range as {
		if l := batchLevel(as[i], bs[i], outs[i]) + 1; l > limbs {
			limbs = l
		}
	}
	ForEachLimbTile(limbs, batchTiles(len(as)), func(limb, tile int) {
		m := r.Tables[limb].Mod
		lo, hi := tileBounds(tile, len(as))
		for i := lo; i < hi; i++ {
			if limb > batchLevel(as[i], bs[i], outs[i]) {
				continue
			}
			ai, bi, oi := as[i].Coeffs[limb], bs[i].Coeffs[limb], outs[i].Coeffs[limb]
			for j := range oi {
				oi[j] = m.MulModBarrett(ai[j], bi[j])
			}
		}
	})
	for _, out := range outs {
		out.IsNTT = true
	}
}

// MulCoeffsAddBatch accumulates accs[i] += as[i] ⊙ bs[i] (canonical residues)
// for every i in one fused dispatch. All operands must be NTT-domain.
// Bit-identical to the sequential loop of per-limb MulAddLazy sweeps with a
// closing canonicalization, which is what the scalar fallback path runs.
func (r *Ring) MulCoeffsAddBatch(as, bs, accs []*Poly) {
	if len(as) != len(bs) || len(as) != len(accs) {
		panic("ring: MulCoeffsAddBatch length mismatch")
	}
	for i := range as {
		if !as[i].IsNTT || !bs[i].IsNTT || !accs[i].IsNTT {
			panic("ring: MulCoeffsAddBatch requires NTT-domain operands")
		}
	}
	limbs := 0
	for i := range as {
		if l := batchLevel(as[i], bs[i], accs[i]) + 1; l > limbs {
			limbs = l
		}
	}
	ForEachLimbTile(limbs, batchTiles(len(as)), func(limb, tile int) {
		m := r.Tables[limb].Mod
		lo, hi := tileBounds(tile, len(as))
		for i := lo; i < hi; i++ {
			if limb > batchLevel(as[i], bs[i], accs[i]) {
				continue
			}
			m.MulAddRowLazy(accs[i].Coeffs[limb], as[i].Coeffs[limb], bs[i].Coeffs[limb])
			ReduceFinalVec(accs[i].Coeffs[limb], m.Q)
		}
	})
}

// AutomorphismNTTBatch applies one precomputed τ_k index permutation to every
// polynomial of the batch: outs[i] gets the image of ins[i]. The permutation
// is the batch's shared state — within a tile it is walked once, each index
// load feeding a gather across all rows, instead of one full perm sweep per
// polynomial. ins[i] and outs[i] must not alias. Bit-identical to per-pair
// AutomorphismNTT calls.
func (r *Ring) AutomorphismNTTBatch(ins []*Poly, perm []int, outs []*Poly) {
	if len(ins) != len(outs) {
		panic("ring: AutomorphismNTTBatch length mismatch")
	}
	for _, p := range ins {
		if !p.IsNTT {
			panic("ring: AutomorphismNTT requires NTT domain")
		}
	}
	limbs := 0
	for i := range ins {
		lvl := ins[i].Level()
		if outs[i].Level() < lvl {
			lvl = outs[i].Level()
		}
		if lvl+1 > limbs {
			limbs = lvl + 1
		}
	}
	ForEachLimbTile(limbs, batchTiles(len(ins)), func(limb, tile int) {
		lo, hi := tileBounds(tile, len(ins))
		src := make([][]uint64, 0, batchTileRows)
		dst := make([][]uint64, 0, batchTileRows)
		for i := lo; i < hi; i++ {
			lvl := ins[i].Level()
			if outs[i].Level() < lvl {
				lvl = outs[i].Level()
			}
			if limb <= lvl {
				src = append(src, ins[i].Coeffs[limb])
				dst = append(dst, outs[i].Coeffs[limb])
			}
		}
		for j, pj := range perm {
			for rr := range dst {
				dst[rr][j] = src[rr][pj]
			}
		}
	})
	for _, out := range outs {
		out.IsNTT = true
	}
}
