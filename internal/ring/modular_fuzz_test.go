package ring

import (
	"math/big"
	"testing"
)

// FuzzModularOps differentially tests every modular-reduction strategy in the
// package — plain %, Barrett (Reduce128/Reduce64/MulModBarrett), Shoup, and
// Montgomery REDC — against math/big across random odd moduli. A divergence
// here means two "equivalent" compute-unit models would disagree on the same
// ciphertext limb, which is exactly the class of bug the cross-checked CU
// implementations are meant to exclude.
func FuzzModularOps(f *testing.F) {
	f.Add(uint64(1), uint64(2), uint64(17))
	f.Add(uint64(0), uint64(0), uint64(3))
	f.Add(^uint64(0), ^uint64(0), ^uint64(0))
	f.Add(uint64(1)<<61, uint64(1)<<61-1, uint64(1)<<61+1)
	f.Add(uint64(12345), uint64(67890), uint64(0x1fffffffffe00001)) // NTT prime

	f.Fuzz(func(t *testing.T, a, b, qseed uint64) {
		// Clamp the modulus into the package contract: odd, 3 <= q < 2^62.
		q := qseed | 1
		if q >= 1<<62 {
			q >>= 2
			q |= 1
		}
		if q < 3 {
			q = 3
		}
		bigQ := new(big.Int).SetUint64(q)
		ref := func(x *big.Int) uint64 { return new(big.Int).Mod(x, bigQ).Uint64() }

		// Reduction of arbitrary words.
		m := NewModulus(q)
		if got, want := Reduce(a, q), a%q; got != want {
			t.Fatalf("Reduce(%d, %d) = %d, want %d", a, q, got, want)
		}
		if got, want := m.Reduce64(a), a%q; got != want {
			t.Fatalf("Reduce64(%d) mod %d = %d, want %d", a, q, got, want)
		}

		ar, br := a%q, b%q
		bigA := new(big.Int).SetUint64(ar)
		bigB := new(big.Int).SetUint64(br)

		// Add/Sub/Neg against math/big.
		if got, want := AddMod(ar, br, q), ref(new(big.Int).Add(bigA, bigB)); got != want {
			t.Fatalf("AddMod(%d, %d, %d) = %d, want %d", ar, br, q, got, want)
		}
		if got, want := SubMod(ar, br, q), ref(new(big.Int).Sub(bigA, bigB)); got != want {
			t.Fatalf("SubMod(%d, %d, %d) = %d, want %d", ar, br, q, got, want)
		}
		if got, want := NegMod(ar, q), ref(new(big.Int).Neg(bigA)); got != want {
			t.Fatalf("NegMod(%d, %d) = %d, want %d", ar, q, got, want)
		}

		// Full-product multiplication: division, Barrett, Shoup, Montgomery
		// must all agree with math/big.
		wantMul := ref(new(big.Int).Mul(bigA, bigB))
		if got := MulMod(ar, br, q); got != wantMul {
			t.Fatalf("MulMod(%d, %d, %d) = %d, want %d", ar, br, q, got, wantMul)
		}
		if got := m.MulModBarrett(ar, br); got != wantMul {
			t.Fatalf("MulModBarrett(%d, %d) mod %d = %d, want %d", ar, br, q, got, wantMul)
		}
		bShoup := ShoupPrecomp(br, q)
		if got := MulModShoup(ar, br, bShoup, q); got != wantMul {
			t.Fatalf("MulModShoup(%d, %d, %d) mod %d = %d, want %d", ar, br, bShoup, q, got, wantMul)
		}
		mm := NewMontgomeryModulus(q)
		if got := mm.FromMont(mm.MulModMont(mm.ToMont(ar), mm.ToMont(br))); got != wantMul {
			t.Fatalf("Montgomery mul(%d, %d) mod %d = %d, want %d", ar, br, q, got, wantMul)
		}

		// Reduce128 on the raw 128-bit product (the NTT pointwise path).
		prod := new(big.Int).Mul(new(big.Int).SetUint64(a), new(big.Int).SetUint64(br))
		hi := new(big.Int).Rsh(prod, 64).Uint64()
		lo := prod.Uint64()
		if hi < q { // contract: value below q*2^64
			if got, want := m.Reduce128(hi, lo), ref(prod); got != want {
				t.Fatalf("Reduce128(%d, %d) mod %d = %d, want %d", hi, lo, q, got, want)
			}
		}

		// Centered digit lift: CenteredMod(c, q0, q) must equal the signed
		// balanced representative of c mod q0, reduced mod q.
		q0 := b | 1
		if q0 < 3 {
			q0 = 3
		}
		c := a % q0
		lift := new(big.Int).SetUint64(c)
		if c > q0>>1 {
			lift.Sub(lift, new(big.Int).SetUint64(q0))
		}
		if got, want := CenteredMod(c, q0, q), ref(lift); got != want {
			t.Fatalf("CenteredMod(%d, %d, %d) = %d, want %d", c, q0, q, got, want)
		}

		// PowMod with a small exponent against big.Exp.
		e := b % 64
		wantPow := new(big.Int).Exp(bigA, new(big.Int).SetUint64(e), bigQ).Uint64()
		if got := PowMod(ar, e, q); got != wantPow {
			t.Fatalf("PowMod(%d, %d, %d) = %d, want %d", ar, e, q, got, wantPow)
		}

		// Lazy helpers: every result must (1) be congruent to the math/big
		// value mod q and (2) respect its documented bound, so that the
		// canonicalizing ReduceFinal sweep recovers the exact residue.
		twoQ := 2 * q
		checkLazy := func(name string, got uint64, want *big.Int, bound uint64) {
			t.Helper()
			if got >= bound {
				t.Fatalf("%s = %d exceeds bound %d (q=%d)", name, got, bound, q)
			}
			if got%q != ref(want) {
				t.Fatalf("%s = %d ≢ %d mod %d", name, got, ref(want), q)
			}
		}
		la, lb := ar+q*(a%2), br+q*(b%2) // lazy lifts in [0, 2q)
		bigSum := new(big.Int).Add(bigA, bigB)
		checkLazy("AddModLazy", AddModLazy(la, lb, twoQ), bigSum, twoQ)
		checkLazy("SubModLazy", SubModLazy(la, lb, twoQ), new(big.Int).Sub(bigA, bigB), twoQ)
		if got, want := ReduceFinal(la, q), ar; got != want {
			t.Fatalf("ReduceFinal(%d, %d) = %d, want %d", la, q, got, want)
		}
		vec := []uint64{la, lb}
		ReduceFinalVec(vec, q)
		if vec[0] != ar || vec[1] != br {
			t.Fatalf("ReduceFinalVec([%d %d], %d) = %v, want [%d %d]", la, lb, q, vec, ar, br)
		}
		bigProdAny := new(big.Int).Mul(new(big.Int).SetUint64(a), bigB)
		checkLazy("MulModShoupLazy", MulModShoupLazy(a, br, bShoup, q), bigProdAny, twoQ)
		bigMac := new(big.Int).Add(new(big.Int).SetUint64(la), bigProdAny)
		checkLazy("MulAddShoupLazy", MulAddShoupLazy(la, a, br, bShoup, q), bigMac, twoQ)

		// Reduce128Lazy and the fused Barrett MACs, under the q*2^64 product
		// contract (guaranteed here since both factors are < q).
		bigProd := new(big.Int).Mul(bigA, bigB)
		phi := new(big.Int).Rsh(bigProd, 64).Uint64()
		plo := bigProd.Uint64()
		checkLazy("Reduce128Lazy", m.Reduce128Lazy(phi, plo), bigProd, twoQ)
		checkLazy("MulAddLazy", m.MulAddLazy(la, ar, br), new(big.Int).Add(new(big.Int).SetUint64(la), bigProd), twoQ)
		checkLazy("MulSubLazy", m.MulSubLazy(la, ar, br), new(big.Int).Sub(new(big.Int).SetUint64(la), bigProd), twoQ)

		// Row-wide forms must agree exactly with their scalar counterparts.
		addRow, subRow := []uint64{la, lb}, []uint64{la, lb}
		m.MulAddRowLazy(addRow, []uint64{ar, br}, []uint64{br, ar})
		m.MulSubRowLazy(subRow, []uint64{ar, br}, []uint64{br, ar})
		if addRow[0] != m.MulAddLazy(la, ar, br) || addRow[1] != m.MulAddLazy(lb, br, ar) {
			t.Fatalf("MulAddRowLazy diverges from MulAddLazy: %v", addRow)
		}
		if subRow[0] != m.MulSubLazy(la, ar, br) || subRow[1] != m.MulSubLazy(lb, br, ar) {
			t.Fatalf("MulSubRowLazy diverges from MulSubLazy: %v", subRow)
		}

		// A CT butterfly (x + w·y, x − w·y) composed from Shoup mul, as the
		// NTT inner loops do, checked end to end against math/big.
		w := br
		wShoup := ShoupPrecomp(w, q)
		wy := MulModShoup(ar, w, wShoup, q)
		bigWY := new(big.Int).Mul(bigA, bigB)
		if got, want := AddMod(ar, wy, q), ref(new(big.Int).Add(bigA, bigWY)); got != want {
			t.Fatalf("butterfly sum(%d, %d) mod %d = %d, want %d", ar, br, q, got, want)
		}
		if got, want := SubMod(ar, wy, q), ref(new(big.Int).Sub(bigA, bigWY)); got != want {
			t.Fatalf("butterfly diff(%d, %d) mod %d = %d, want %d", ar, br, q, got, want)
		}
	})
}
