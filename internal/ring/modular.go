// Package ring implements the polynomial-ring arithmetic substrate used by
// the CKKS scheme and by the Hydra accelerator model: 64-bit modular
// arithmetic (Barrett and Shoup reductions, lazy [0,2q) variants, fused
// multiply-accumulate kernels), the negacyclic NTT (merged-twist lazy
// radix-4 default plus radix-2/radix-4 reference kernels), RNS polynomials
// over a chain of NTT-friendly primes, and Galois automorphisms.
//
// All moduli are required to satisfy q < 2^62 so that lazy additions of up to
// four residues never overflow a uint64.
package ring

import "math/bits"

// Modulus bundles a prime q with the precomputed constants needed for fast
// Barrett reduction of 128-bit products.
type Modulus struct {
	Q uint64
	// BarrettHi and BarrettLo hold floor(2^128 / Q) as a 128-bit value.
	BarrettHi uint64
	BarrettLo uint64
}

// NewModulus precomputes Barrett constants for q. It panics if q is zero or
// does not fit the q < 2^62 contract.
func NewModulus(q uint64) Modulus {
	if q == 0 || q >= 1<<62 {
		panic("ring: modulus must satisfy 0 < q < 2^62")
	}
	hi, lo := barrettConstant(q)
	return Modulus{Q: q, BarrettHi: hi, BarrettLo: lo}
}

// barrettConstant returns floor(2^128 / q) as (hi, lo) 64-bit words.
func barrettConstant(q uint64) (hi, lo uint64) {
	// 2^128 / q = (2^64 / q) * 2^64 + ((2^64 mod q) * 2^64) / q.
	hi, rem := bits.Div64(1, 0, q) // floor(2^64 / q), 2^64 mod q
	lo, _ = bits.Div64(rem, 0, q)
	return hi, lo
}

// Reduce returns a mod q. It is the sanctioned spelling of a raw reduction
// for scalar setup values outside this package (Shoup precomputation inputs,
// CRT base-conversion constants); coefficient loops should use the
// precomputed Barrett/Shoup forms instead.
func Reduce(a, q uint64) uint64 { return a % q }

// CenteredMod lifts the residue c ∈ [0, q0) to its balanced representative
// in (-q0/2, q0/2] and reduces that modulo q. This is the digit lift of RNS
// base conversion (rescale, ModDown, modulus raise): taking the centered
// remainder first keeps the rounding error of the division additive instead
// of biased.
func CenteredMod(c, q0, q uint64) uint64 {
	if c <= q0>>1 {
		return c % q
	}
	return NegMod((q0-c)%q, q)
}

// AddMod returns a+b mod q for a, b < q.
func AddMod(a, b, q uint64) uint64 {
	c := a + b
	if c >= q {
		c -= q
	}
	return c
}

// SubMod returns a-b mod q for a, b < q.
func SubMod(a, b, q uint64) uint64 {
	c := a - b
	if a < b {
		c += q
	}
	return c
}

// NegMod returns -a mod q for a < q.
func NegMod(a, q uint64) uint64 {
	if a == 0 {
		return 0
	}
	return q - a
}

// MulMod returns a*b mod q using 128-bit division. It is the slow, always
// correct path; hot loops use Barrett or Shoup forms instead.
func MulMod(a, b, q uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	_, r := bits.Div64(hi%q, lo, q)
	return r
}

// MulModBarrett returns a*b mod q using the precomputed Barrett constant.
// Inputs need not be fully reduced as long as the 128-bit product a*b is
// below q*2^64.
func (m Modulus) MulModBarrett(a, b uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	return m.Reduce128(hi, lo)
}

// Reduce128 reduces the 128-bit value hi*2^64+lo modulo q. The value must be
// below q*2^64.
func (m Modulus) Reduce128(hi, lo uint64) uint64 {
	// Estimate quotient: qhat = floor(x * floor(2^128/q) / 2^128).
	// x = hi*2^64 + lo.
	mh1, _ := bits.Mul64(lo, m.BarrettLo)
	mh2, ml2 := bits.Mul64(lo, m.BarrettHi)
	mh3, ml3 := bits.Mul64(hi, m.BarrettLo)
	_, hl := bits.Mul64(hi, m.BarrettHi)

	// Bits 64..127 of the running sum contribute only their carry into the
	// quotient words; the sum itself is discarded.
	carry := uint64(0)
	s, c := bits.Add64(mh1, ml2, 0)
	carry += c
	_, c = bits.Add64(s, ml3, 0)
	carry += c

	// r = x - qhat*q. Since r < 2q fits in 64 bits we can work mod 2^64, so
	// only the low quotient word qlo is needed (the high word hh + carries
	// vanishes under the wraparound of the low product).
	qlo, _ := bits.Add64(mh2, mh3, carry)
	qlo, _ = bits.Add64(qlo, hl, 0)
	r := lo - qlo*m.Q
	for r >= m.Q {
		r -= m.Q
	}
	return r
}

// Reduce128Lazy is Reduce128 with the correction loop replaced by a single
// conditional subtraction of 2q, returning a lazy residue in [0, 2q). The
// quotient estimate can be short by up to two (one from flooring the true
// quotient, one from the discarded low partial products), so the raw
// remainder lies in [0, 3q); folding the 2q case down keeps every lazy
// accumulator within the 4q < 2^64 transient budget. The input must be
// below q*2^64.
func (m Modulus) Reduce128Lazy(hi, lo uint64) uint64 {
	mh1, _ := bits.Mul64(lo, m.BarrettLo)
	mh2, ml2 := bits.Mul64(lo, m.BarrettHi)
	mh3, ml3 := bits.Mul64(hi, m.BarrettLo)
	_, hl := bits.Mul64(hi, m.BarrettHi)

	carry := uint64(0)
	s, c := bits.Add64(mh1, ml2, 0)
	carry += c
	_, c = bits.Add64(s, ml3, 0)
	carry += c

	qlo, _ := bits.Add64(mh2, mh3, carry)
	qlo, _ = bits.Add64(qlo, hl, 0)
	r := lo - qlo*m.Q
	if twoQ := m.Q << 1; r >= twoQ {
		r -= twoQ
	}
	return r
}

// Reduce64 reduces the single-word value a modulo q using the Barrett
// constant (multiplies only, no hardware division). a may be any uint64.
func (m Modulus) Reduce64(a uint64) uint64 {
	return m.Reduce128(0, a)
}

// MulAddLazy returns acc + a*b as a lazy residue in [0, 2q): a fused
// Barrett multiply-accumulate for operand pairs without Shoup tables (both
// sides variable, e.g. digit × switching-key rows). acc must be in [0, 2q)
// and the product a*b below q*2^64; the transient sum is < 4q < 2^64.
func (m Modulus) MulAddLazy(acc, a, b uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	c := acc + m.Reduce128Lazy(hi, lo)
	if twoQ := m.Q << 1; c >= twoQ {
		c -= twoQ
	}
	return c
}

// MulSubLazy returns acc - a*b as a lazy residue in [0, 2q), under the same
// contract as MulAddLazy.
func (m Modulus) MulSubLazy(acc, a, b uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	twoQ := m.Q << 1
	c := acc + twoQ - m.Reduce128Lazy(hi, lo)
	if c >= twoQ {
		c -= twoQ
	}
	return c
}

// MulAddRowLazy is the row-wide form of MulAddLazy:
// acc[j] += a[j]*b[j] for whole rows, with every acc element lazy in
// [0, 2q) on entry and on return (the multiply stays inlined here, so each
// element costs a single Barrett-reduction call). It is the inner kernel of
// the keyswitch digit inner product; close the window with ReduceFinalVec.
func (m Modulus) MulAddRowLazy(acc, a, b []uint64) {
	twoQ := m.Q << 1
	a = a[:len(acc)]
	b = b[:len(acc)]
	for j := range acc {
		hi, lo := bits.Mul64(a[j], b[j])
		c := acc[j] + m.Reduce128Lazy(hi, lo)
		if c >= twoQ {
			c -= twoQ
		}
		acc[j] = c
	}
}

// MulSubRowLazy is the row-wide form of MulSubLazy: acc[j] -= a[j]*b[j]
// under the same lazy contract as MulAddRowLazy.
func (m Modulus) MulSubRowLazy(acc, a, b []uint64) {
	twoQ := m.Q << 1
	a = a[:len(acc)]
	b = b[:len(acc)]
	for j := range acc {
		hi, lo := bits.Mul64(a[j], b[j])
		c := acc[j] + twoQ - m.Reduce128Lazy(hi, lo)
		if c >= twoQ {
			c -= twoQ
		}
		acc[j] = c
	}
}

// MulAddRowLazyGather is MulAddRowLazy with an index gather fused into the
// left operand: acc[j] += a[perm[j]]*b[j], with acc lazy in [0, 2q) on entry
// and on return. perm must be a permutation of [0, len(acc)). This fuses an
// NTT-domain automorphism (a pure index permutation) into the keyswitch digit
// inner product, so hoisted rotations never materialize the permuted digit
// rows. Close the window with ReduceFinalVec.
func (m Modulus) MulAddRowLazyGather(acc, a, b []uint64, perm []int) {
	twoQ := m.Q << 1
	b = b[:len(acc)]
	perm = perm[:len(acc)]
	for j := range acc {
		hi, lo := bits.Mul64(a[perm[j]], b[j])
		c := acc[j] + m.Reduce128Lazy(hi, lo)
		if c >= twoQ {
			c -= twoQ
		}
		acc[j] = c
	}
}

// macChunk is the key-row block the batched MACs process per accumulator
// pass: 512 elements (4 KiB) stay L1-resident while every batch member folds
// them in, so the switching-key traffic is paid once per batch instead of
// once per ciphertext — without fanning out into more concurrent memory
// streams than the prefetchers track (a fully j-outer loop touches
// 2·batch+1 streams per element and measures slower than the scalar loop).
const macChunk = 512

// MulAddRowLazyBatch folds one shared key row into a batch of accumulators:
// accs[i][j] += xs[i][j]*key[j] for every i, under MulAddRowLazy's contract
// (accs lazy in [0, 2q) on entry and return). The key row is walked in
// L1-sized chunks, each chunk streamed across the whole batch before the
// next is touched. Within one accumulator the j order is ascending exactly
// as in MulAddRowLazy, so the result is bit-identical to the sequential
// per-accumulator loop.
func (m Modulus) MulAddRowLazyBatch(accs, xs [][]uint64, key []uint64) {
	if len(accs) != len(xs) {
		panic("ring: MulAddRowLazyBatch length mismatch")
	}
	twoQ := m.Q << 1
	for lo := 0; lo < len(key); lo += macChunk {
		hi := lo + macChunk
		if hi > len(key) {
			hi = len(key)
		}
		kc := key[lo:hi]
		for i := range accs {
			acc, x := accs[i][lo:hi], xs[i][lo:hi]
			for j := range kc {
				ph, pl := bits.Mul64(x[j], kc[j])
				c := acc[j] + m.Reduce128Lazy(ph, pl)
				if c >= twoQ {
					c -= twoQ
				}
				acc[j] = c
			}
		}
	}
}

// MulAddRowLazyGatherBatch is MulAddRowLazyBatch with an index gather fused
// into every source row: accs[i][j] += xs[i][perm[j]]*key[j], the batched
// form of MulAddRowLazyGather. Each L1-resident chunk of the key row and the
// permutation walk is reused by every batch member — a batched hoisted
// rotation applies τ_k to every ciphertext's digits while paying the key and
// perm traffic once per batch. Bit-identical to the sequential
// per-accumulator MulAddRowLazyGather loop.
func (m Modulus) MulAddRowLazyGatherBatch(accs, xs [][]uint64, key []uint64, perm []int) {
	if len(accs) != len(xs) {
		panic("ring: MulAddRowLazyGatherBatch length mismatch")
	}
	twoQ := m.Q << 1
	perm = perm[:len(key)]
	for lo := 0; lo < len(key); lo += macChunk {
		hi := lo + macChunk
		if hi > len(key) {
			hi = len(key)
		}
		kc, pc := key[lo:hi], perm[lo:hi]
		for i := range accs {
			acc, x := accs[i][lo:hi], xs[i]
			for j := range kc {
				ph, pl := bits.Mul64(x[pc[j]], kc[j])
				c := acc[j] + m.Reduce128Lazy(ph, pl)
				if c >= twoQ {
					c -= twoQ
				}
				acc[j] = c
			}
		}
	}
}

// MulAddShoupRowLazy is the row-wide form of MulAddShoupLazy for one constant
// multiplier: acc[j] += a[j]*w with w < q, wShoup = ShoupPrecomp(w, q), acc
// lazy in [0, 2q) on entry and on return. a may hold arbitrary uint64 values
// (the Shoup estimate tolerates lazy inputs).
func (m Modulus) MulAddShoupRowLazy(acc, a []uint64, w, wShoup uint64) {
	q := m.Q
	twoQ := q << 1
	a = a[:len(acc)]
	for j := range acc {
		hi, _ := bits.Mul64(a[j], wShoup)
		c := acc[j] + a[j]*w - hi*q // < 4q, within the uint64 budget
		if c >= twoQ {
			c -= twoQ
		}
		acc[j] = c
	}
}

// MulAddShoupRowLazyGather is MulAddShoupRowLazy with an index gather fused
// into the source row: acc[j] += a[perm[j]]*w under the same contract. It
// folds P·τ_k(c0) into an extended-basis keyswitch accumulator without
// materializing the rotated polynomial.
func (m Modulus) MulAddShoupRowLazyGather(acc, a []uint64, w, wShoup uint64, perm []int) {
	q := m.Q
	twoQ := q << 1
	perm = perm[:len(acc)]
	for j := range acc {
		v := a[perm[j]]
		hi, _ := bits.Mul64(v, wShoup)
		c := acc[j] + v*w - hi*q
		if c >= twoQ {
			c -= twoQ
		}
		acc[j] = c
	}
}

// AddRowLazy adds b into acc row-wide under the lazy contract:
// acc[j], b[j] ∈ [0, 2q) in, acc[j] ∈ [0, 2q) out. It is the fold step that
// merges extended-basis keyswitch accumulators before the deferred ModDown.
func (m Modulus) AddRowLazy(acc, b []uint64) {
	twoQ := m.Q << 1
	b = b[:len(acc)]
	for j := range acc {
		c := acc[j] + b[j]
		if c >= twoQ {
			c -= twoQ
		}
		acc[j] = c
	}
}

// ShoupPrecomp returns floor(w * 2^64 / q), the Shoup multiplier for the
// constant w < q.
func ShoupPrecomp(w, q uint64) uint64 {
	s, _ := bits.Div64(w, 0, q)
	return s
}

// MulModShoup returns the canonical a*w mod q where w < q and
// wShoup = ShoupPrecomp(w, q). a may be any uint64 (lazy inputs allowed):
// the quotient estimate floor(a*wShoup / 2^64) is short by at most one, so
// the raw remainder lies in [0, 2q) and one conditional subtraction
// canonicalizes it.
func MulModShoup(a, w, wShoup, q uint64) uint64 {
	hi, _ := bits.Mul64(a, wShoup)
	r := a*w - hi*q
	if r >= q {
		r -= q
	}
	return r
}

// Lazy-bound arithmetic.
//
// The helpers below operate on "lazy" residues: values congruent to the
// canonical representative mod q but allowed to float in [0, 2q). Skipping
// the final conditional subtraction halves the correction work in tight
// kernels (Harvey's lazy butterflies, fused multiply-accumulate chains);
// the q < 2^62 package contract guarantees that even a transient sum of
// four residues (< 4q) cannot overflow a uint64. Every lazy window must end
// with a ReduceFinal sweep (or feed the NTT kernels, which fold the sweep
// into their last pass) before the values become externally visible.

// ReduceFinal canonicalizes a lazy residue: a ∈ [0, 2q) in, a mod q out.
// It is the mandatory closing sweep of every lazy-accumulation window.
func ReduceFinal(a, q uint64) uint64 {
	if a >= q {
		a -= q
	}
	return a
}

// ReduceFinalVec canonicalizes a whole row of lazy residues in place:
// every element must be in [0, 2q) on entry and is in [0, q) on return.
func ReduceFinalVec(a []uint64, q uint64) {
	for i, v := range a {
		// Unconditional store so the correction compiles to a branchless
		// conditional move: residues are effectively random, and a 50/50
		// data-dependent branch would dominate the sweep.
		if v >= q {
			v -= q
		}
		a[i] = v
	}
}

// AddModLazy returns a+b as a lazy residue: a, b ∈ [0, 2q) in, result in
// [0, 2q). twoQ must be 2q; the transient sum is < 4q < 2^64.
func AddModLazy(a, b, twoQ uint64) uint64 {
	c := a + b
	if c >= twoQ {
		c -= twoQ
	}
	return c
}

// SubModLazy returns a-b as a lazy residue: a, b ∈ [0, 2q) in, result in
// [0, 2q). twoQ must be 2q.
func SubModLazy(a, b, twoQ uint64) uint64 {
	c := a + twoQ - b
	if c >= twoQ {
		c -= twoQ
	}
	return c
}

// MulModShoupLazy is MulModShoup without the final correction: a may be any
// uint64 and the result is a lazy residue in [0, 2q). This is the butterfly
// multiplier of the lazy NTT kernels.
func MulModShoupLazy(a, w, wShoup, q uint64) uint64 {
	hi, _ := bits.Mul64(a, wShoup)
	return a*w - hi*q
}

// MulAddShoupLazy returns acc + a*w as a lazy residue: acc ∈ [0, 2q) in,
// result in [0, 2q) — a fused Shoup multiply-accumulate (one load-mul-add
// chain instead of a multiply pass and an add pass).
func MulAddShoupLazy(acc, a, w, wShoup, q uint64) uint64 {
	hi, _ := bits.Mul64(a, wShoup)
	c := acc + a*w - hi*q // < 4q, within the uint64 budget
	if twoQ := q << 1; c >= twoQ {
		c -= twoQ
	}
	return c
}

// PowMod returns a^e mod q.
func PowMod(a, e, q uint64) uint64 {
	r := uint64(1 % q)
	base := a % q
	for e > 0 {
		if e&1 == 1 {
			r = MulMod(r, base, q)
		}
		base = MulMod(base, base, q)
		e >>= 1
	}
	return r
}

// InvMod returns the multiplicative inverse of a modulo the prime q.
// It panics if a is zero.
func InvMod(a, q uint64) uint64 {
	if a%q == 0 {
		panic("ring: inverse of zero")
	}
	return PowMod(a, q-2, q)
}
