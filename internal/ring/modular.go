// Package ring implements the polynomial-ring arithmetic substrate used by
// the CKKS scheme and by the Hydra accelerator model: 64-bit modular
// arithmetic (Barrett and Shoup reductions), negacyclic NTT in radix-2 and
// radix-4 (fused two-stage) variants, RNS polynomials over a chain of
// NTT-friendly primes, and Galois automorphisms.
//
// All moduli are required to satisfy q < 2^62 so that lazy additions of up to
// four residues never overflow a uint64.
package ring

import "math/bits"

// Modulus bundles a prime q with the precomputed constants needed for fast
// Barrett reduction of 128-bit products.
type Modulus struct {
	Q uint64
	// BarrettHi and BarrettLo hold floor(2^128 / Q) as a 128-bit value.
	BarrettHi uint64
	BarrettLo uint64
}

// NewModulus precomputes Barrett constants for q. It panics if q is zero or
// does not fit the q < 2^62 contract.
func NewModulus(q uint64) Modulus {
	if q == 0 || q >= 1<<62 {
		panic("ring: modulus must satisfy 0 < q < 2^62")
	}
	hi, lo := barrettConstant(q)
	return Modulus{Q: q, BarrettHi: hi, BarrettLo: lo}
}

// barrettConstant returns floor(2^128 / q) as (hi, lo) 64-bit words.
func barrettConstant(q uint64) (hi, lo uint64) {
	// 2^128 / q = (2^64 / q) * 2^64 + ((2^64 mod q) * 2^64) / q.
	hi, rem := bits.Div64(1, 0, q) // floor(2^64 / q), 2^64 mod q
	lo, _ = bits.Div64(rem, 0, q)
	return hi, lo
}

// Reduce returns a mod q. It is the sanctioned spelling of a raw reduction
// for scalar setup values outside this package (Shoup precomputation inputs,
// CRT base-conversion constants); coefficient loops should use the
// precomputed Barrett/Shoup forms instead.
func Reduce(a, q uint64) uint64 { return a % q }

// CenteredMod lifts the residue c ∈ [0, q0) to its balanced representative
// in (-q0/2, q0/2] and reduces that modulo q. This is the digit lift of RNS
// base conversion (rescale, ModDown, modulus raise): taking the centered
// remainder first keeps the rounding error of the division additive instead
// of biased.
func CenteredMod(c, q0, q uint64) uint64 {
	if c <= q0>>1 {
		return c % q
	}
	return NegMod((q0-c)%q, q)
}

// AddMod returns a+b mod q for a, b < q.
func AddMod(a, b, q uint64) uint64 {
	c := a + b
	if c >= q {
		c -= q
	}
	return c
}

// SubMod returns a-b mod q for a, b < q.
func SubMod(a, b, q uint64) uint64 {
	c := a - b
	if a < b {
		c += q
	}
	return c
}

// NegMod returns -a mod q for a < q.
func NegMod(a, q uint64) uint64 {
	if a == 0 {
		return 0
	}
	return q - a
}

// MulMod returns a*b mod q using 128-bit division. It is the slow, always
// correct path; hot loops use Barrett or Shoup forms instead.
func MulMod(a, b, q uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	_, r := bits.Div64(hi%q, lo, q)
	return r
}

// MulModBarrett returns a*b mod q using the precomputed Barrett constant.
// Inputs need not be fully reduced as long as the 128-bit product a*b is
// below q*2^64.
func (m Modulus) MulModBarrett(a, b uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	return m.Reduce128(hi, lo)
}

// Reduce128 reduces the 128-bit value hi*2^64+lo modulo q. The value must be
// below q*2^64.
func (m Modulus) Reduce128(hi, lo uint64) uint64 {
	// Estimate quotient: qhat = floor(x * floor(2^128/q) / 2^128).
	// x = hi*2^64 + lo.
	mh1, _ := bits.Mul64(lo, m.BarrettLo)
	mh2, ml2 := bits.Mul64(lo, m.BarrettHi)
	mh3, ml3 := bits.Mul64(hi, m.BarrettLo)
	_, hl := bits.Mul64(hi, m.BarrettHi)

	// Bits 64..127 of the running sum contribute only their carry into the
	// quotient words; the sum itself is discarded.
	carry := uint64(0)
	s, c := bits.Add64(mh1, ml2, 0)
	carry += c
	_, c = bits.Add64(s, ml3, 0)
	carry += c

	// r = x - qhat*q. Since r < 2q fits in 64 bits we can work mod 2^64, so
	// only the low quotient word qlo is needed (the high word hh + carries
	// vanishes under the wraparound of the low product).
	qlo, _ := bits.Add64(mh2, mh3, carry)
	qlo, _ = bits.Add64(qlo, hl, 0)
	r := lo - qlo*m.Q
	for r >= m.Q {
		r -= m.Q
	}
	return r
}

// Reduce64 reduces the single-word value a modulo q using the Barrett
// constant (multiplies only, no hardware division). a may be any uint64.
func (m Modulus) Reduce64(a uint64) uint64 {
	return m.Reduce128(0, a)
}

// ShoupPrecomp returns floor(w * 2^64 / q), the Shoup multiplier for the
// constant w < q.
func ShoupPrecomp(w, q uint64) uint64 {
	s, _ := bits.Div64(w, 0, q)
	return s
}

// MulModShoup returns a*w mod q where wShoup = ShoupPrecomp(w, q). Requires
// q < 2^63 and a < 2q (lazy input allowed); the result is < 2q when lazy is
// true of the caller's contract, here we fully reduce.
func MulModShoup(a, w, wShoup, q uint64) uint64 {
	hi, _ := bits.Mul64(a, wShoup)
	r := a*w - hi*q
	if r >= q {
		r -= q
	}
	return r
}

// PowMod returns a^e mod q.
func PowMod(a, e, q uint64) uint64 {
	r := uint64(1 % q)
	base := a % q
	for e > 0 {
		if e&1 == 1 {
			r = MulMod(r, base, q)
		}
		base = MulMod(base, base, q)
		e >>= 1
	}
	return r
}

// InvMod returns the multiplicative inverse of a modulo the prime q.
// It panics if a is zero.
func InvMod(a, q uint64) uint64 {
	if a%q == 0 {
		panic("ring: inverse of zero")
	}
	return PowMod(a, q-2, q)
}
