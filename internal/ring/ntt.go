package ring

// NTTTable holds the precomputed twiddle factors for the negacyclic
// number-theoretic transform of length N modulo a prime q ≡ 1 (mod 2N).
//
// The forward transform maps the coefficient vector of a(X) ∈ Z_q[X]/(X^N+1)
// to its evaluations at the odd powers of a primitive 2N-th root of unity ψ,
// in natural order: NTT(a)[j] = a(ψ^(2j+1)). Keeping the evaluation order
// natural makes Galois automorphisms a simple index permutation (see
// automorphism.go), mirroring the logical-control automorphism unit of the
// Poseidon/Hydra hardware.
type NTTTable struct {
	N      int
	LogN   int
	Mod    Modulus
	Psi    uint64 // primitive 2N-th root of unity
	PsiInv uint64

	psiPows      []uint64 // ψ^i, i ∈ [0,N)
	psiPowsShoup []uint64
	// scaledPsiInvPows[i] = ψ^(-i) / N, merging the untwist and 1/N scale of
	// the inverse transform.
	scaledPsiInvPows      []uint64
	scaledPsiInvPowsShoup []uint64

	omegaPows         []uint64 // ω^i with ω = ψ², i ∈ [0,N)
	omegaPowsShoup    []uint64
	omegaInvPows      []uint64
	omegaInvPowsShoup []uint64

	brv []int // bit-reversal permutation of [0,N)
}

// NewNTTTable builds the tables for length n (a power of two ≥ 2) and prime
// q ≡ 1 (mod 2n). psi must be a primitive 2n-th root of unity mod q.
func NewNTTTable(n int, q, psi uint64) *NTTTable {
	if n < 2 || n&(n-1) != 0 {
		panic("ring: NTT length must be a power of two >= 2")
	}
	if (q-1)%uint64(2*n) != 0 {
		panic("ring: modulus not NTT-friendly for this length")
	}
	if PowMod(psi, uint64(n), q) != q-1 {
		panic("ring: psi is not a primitive 2N-th root of unity")
	}
	t := &NTTTable{
		N:      n,
		LogN:   log2(n),
		Mod:    NewModulus(q),
		Psi:    psi,
		PsiInv: InvMod(psi, q),
	}
	t.psiPows = powerTable(psi, n, q)
	t.psiPowsShoup = shoupTable(t.psiPows, q)

	nInv := InvMod(uint64(n), q)
	psiInvPows := powerTable(t.PsiInv, n, q)
	t.scaledPsiInvPows = make([]uint64, n)
	for i, v := range psiInvPows {
		t.scaledPsiInvPows[i] = MulMod(v, nInv, q)
	}
	t.scaledPsiInvPowsShoup = shoupTable(t.scaledPsiInvPows, q)

	omega := MulMod(psi, psi, q)
	t.omegaPows = powerTable(omega, n, q)
	t.omegaPowsShoup = shoupTable(t.omegaPows, q)
	omegaInv := InvMod(omega, q)
	t.omegaInvPows = powerTable(omegaInv, n, q)
	t.omegaInvPowsShoup = shoupTable(t.omegaInvPows, q)

	t.brv = bitReversePerm(n)
	return t
}

func log2(n int) int {
	l := 0
	for 1<<l < n {
		l++
	}
	return l
}

func powerTable(base uint64, n int, q uint64) []uint64 {
	tbl := make([]uint64, n)
	tbl[0] = 1
	for i := 1; i < n; i++ {
		tbl[i] = MulMod(tbl[i-1], base, q)
	}
	return tbl
}

func shoupTable(vals []uint64, q uint64) []uint64 {
	tbl := make([]uint64, len(vals))
	for i, v := range vals {
		tbl[i] = ShoupPrecomp(v, q)
	}
	return tbl
}

func bitReversePerm(n int) []int {
	logN := log2(n)
	p := make([]int, n)
	for i := range p {
		r := 0
		for b := 0; b < logN; b++ {
			if i&(1<<b) != 0 {
				r |= 1 << (logN - 1 - b)
			}
		}
		p[i] = r
	}
	return p
}

// Forward computes the in-place negacyclic NTT of a (radix-2 butterflies).
func (t *NTTTable) Forward(a []uint64) {
	t.twist(a)
	t.bitReverse(a)
	t.cyclicForwardRadix2(a)
}

// ForwardRadix4 computes the same transform as Forward, but with fused
// two-stage (radix-4) butterflies in the cyclic core, halving the number of
// passes over the data. This mirrors the Radix-4 NTT unit Hydra adopts in
// place of Poseidon's Radix-8 design.
func (t *NTTTable) ForwardRadix4(a []uint64) {
	t.twist(a)
	t.bitReverse(a)
	t.cyclicForwardRadix4(a)
}

// Inverse computes the in-place inverse negacyclic NTT of a.
func (t *NTTTable) Inverse(a []uint64) {
	t.bitReverse(a)
	t.cyclicInverseRadix2(a)
	t.untwist(a)
}

// twist multiplies a[i] by ψ^i, turning negacyclic convolution into cyclic.
func (t *NTTTable) twist(a []uint64) {
	q := t.Mod.Q
	for i := range a {
		a[i] = MulModShoup(a[i], t.psiPows[i], t.psiPowsShoup[i], q)
	}
}

// untwist multiplies a[i] by ψ^(-i)/N.
func (t *NTTTable) untwist(a []uint64) {
	q := t.Mod.Q
	for i := range a {
		a[i] = MulModShoup(a[i], t.scaledPsiInvPows[i], t.scaledPsiInvPowsShoup[i], q)
	}
}

func (t *NTTTable) bitReverse(a []uint64) {
	for i, r := range t.brv {
		if i < r {
			a[i], a[r] = a[r], a[i]
		}
	}
}

// cyclicForwardRadix2 runs the classic iterative Cooley-Tukey DIT NTT on
// bit-reversed input, producing natural-order output.
func (t *NTTTable) cyclicForwardRadix2(a []uint64) {
	q := t.Mod.Q
	n := t.N
	for h := 1; h < n; h <<= 1 {
		step := n / (2 * h) // twiddle stride for this stage
		for k := 0; k < n; k += 2 * h {
			for j := 0; j < h; j++ {
				w := t.omegaPows[step*j]
				ws := t.omegaPowsShoup[step*j]
				u := a[k+j]
				v := MulModShoup(a[k+j+h], w, ws, q)
				a[k+j] = AddMod(u, v, q)
				a[k+j+h] = SubMod(u, v, q)
			}
		}
	}
}

// cyclicForwardRadix4 fuses pairs of radix-2 stages into radix-4 butterflies.
// If log2(N) is odd, a single radix-2 stage runs first so the remaining stage
// count is even. The output is bit-for-bit identical to cyclicForwardRadix2.
func (t *NTTTable) cyclicForwardRadix4(a []uint64) {
	q := t.Mod.Q
	n := t.N
	h := 1
	if t.LogN%2 == 1 {
		// Single leading radix-2 stage (h = 1): butterfly neighbours with
		// twiddle ω^0 = 1.
		for k := 0; k < n; k += 2 {
			u, v := a[k], a[k+1]
			a[k] = AddMod(u, v, q)
			a[k+1] = SubMod(u, v, q)
		}
		h = 2
	}
	for ; h < n; h <<= 2 {
		stepA := n / (2 * h) // twiddle stride of the first fused stage
		stepB := stepA / 2   // twiddle stride of the second fused stage
		for k := 0; k < n; k += 4 * h {
			for j := 0; j < h; j++ {
				wA := t.omegaPows[stepA*j]
				wAs := t.omegaPowsShoup[stepA*j]
				wB := t.omegaPows[stepB*j]
				wBs := t.omegaPowsShoup[stepB*j]
				wB2 := t.omegaPows[stepB*(j+h)]
				wB2s := t.omegaPowsShoup[stepB*(j+h)]

				x0 := a[k+j]
				x1 := a[k+j+h]
				x2 := a[k+j+2*h]
				x3 := a[k+j+3*h]

				// Stage A: blocks (x0,x1) and (x2,x3), same twiddle pattern.
				v := MulModShoup(x1, wA, wAs, q)
				y0 := AddMod(x0, v, q)
				y1 := SubMod(x0, v, q)
				v = MulModShoup(x3, wA, wAs, q)
				y2 := AddMod(x2, v, q)
				y3 := SubMod(x2, v, q)

				// Stage B: blocks (y0,y2) with twiddle index j and (y1,y3)
				// with twiddle index j+h.
				v = MulModShoup(y2, wB, wBs, q)
				a[k+j] = AddMod(y0, v, q)
				a[k+j+2*h] = SubMod(y0, v, q)
				v = MulModShoup(y3, wB2, wB2s, q)
				a[k+j+h] = AddMod(y1, v, q)
				a[k+j+3*h] = SubMod(y1, v, q)
			}
		}
	}
}

func (t *NTTTable) cyclicInverseRadix2(a []uint64) {
	q := t.Mod.Q
	n := t.N
	for h := 1; h < n; h <<= 1 {
		step := n / (2 * h)
		for k := 0; k < n; k += 2 * h {
			for j := 0; j < h; j++ {
				w := t.omegaInvPows[step*j]
				ws := t.omegaInvPowsShoup[step*j]
				u := a[k+j]
				v := MulModShoup(a[k+j+h], w, ws, q)
				a[k+j] = AddMod(u, v, q)
				a[k+j+h] = SubMod(u, v, q)
			}
		}
	}
}
