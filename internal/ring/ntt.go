package ring

import "sync"

// NTTTable holds the precomputed twiddle factors for the negacyclic
// number-theoretic transform of length N modulo a prime q ≡ 1 (mod 2N).
//
// The forward transform maps the coefficient vector of a(X) ∈ Z_q[X]/(X^N+1)
// to its evaluations at the odd powers of a primitive 2N-th root of unity ψ,
// in natural order: NTT(a)[j] = a(ψ^(2j+1)). Keeping the evaluation order
// natural makes Galois automorphisms a simple index permutation (see
// automorphism.go), mirroring the logical-control automorphism unit of the
// Poseidon/Hydra hardware.
//
// Two kernel families implement the transform:
//
//   - The default Forward/Inverse pair is the merged-twist lazy kernel
//     (Longa–Naehrig ψ-merged Cooley–Tukey forward, Gentleman–Sande inverse
//     with the 1/N scale folded into the last stage, Harvey lazy reduction
//     throughout, radix-4 fused stage pairs). It models the pipelined
//     Radix-4 NTT unit Hydra adopts in place of Poseidon's Radix-8 design:
//     the ψ-twist, the butterfly network and the final correction are one
//     dataflow, not separate memory passes.
//   - ForwardReference/InverseReference keep the textbook five-pass radix-2
//     pipeline (twist, bit-reverse, per-stage full reductions, untwist) as
//     the bit-identity oracle, and ForwardRadix4 keeps the previous
//     non-merged radix-4 variant as the benchmark baseline.
//
// All kernels are bit-identical: same input, same canonical output.
type NTTTable struct {
	N      int
	LogN   int
	Mod    Modulus
	Psi    uint64 // primitive 2N-th root of unity
	PsiInv uint64

	psiPows      []uint64 // ψ^i, i ∈ [0,N)
	psiPowsShoup []uint64
	// scaledPsiInvPows[i] = ψ^(-i) / N, merging the untwist and 1/N scale of
	// the inverse transform.
	scaledPsiInvPows      []uint64
	scaledPsiInvPowsShoup []uint64

	omegaPows         []uint64 // ω^i with ω = ψ², i ∈ [0,N)
	omegaPowsShoup    []uint64
	omegaInvPows      []uint64
	omegaInvPowsShoup []uint64

	brv []int // bit-reversal permutation of [0,N)

	// Merged-twist tables, stage-contiguous: stage m of the ψ-merged
	// Cooley–Tukey network reads psiMerged[m..2m) sequentially (no strided
	// omegaPows[step*j] lookups), with psiMerged[k] = ψ^brv(k). The inverse
	// Gentleman–Sande network reads psiInvMerged[h..2h) per stage, with
	// psiInvMerged[k] = ψ^(-brv(k)).
	psiMerged         []uint64
	psiMergedShoup    []uint64
	psiInvMerged      []uint64
	psiInvMergedShoup []uint64

	nInv      uint64 // N^-1 mod q, folded into the inverse's last stage
	nInvShoup uint64
	// invLastW = ψ^(-N/2) / N: the last inverse stage's single twiddle
	// (psiInvMerged[1]) pre-multiplied by 1/N.
	invLastW      uint64
	invLastWShoup uint64

	// reference reroutes Forward/Inverse through the radix-2 five-pass
	// oracles, so a whole execution (including the extended-basis encode and
	// hoisting paths that call the tables directly) runs on the reference
	// kernels. Differential-testing hook; see SetReference.
	reference bool

	// useGenerated routes Forward/Inverse through the codegen-specialized
	// kernels emitted by cmd/hydra-genkernels (see gendispatch.go). On by
	// default when the degree ships a kernel and q < GeneratedQBound;
	// SetGenerated(false) recovers the generic merged kernel. reference
	// takes precedence.
	useGenerated bool
	// genScratch pools the N-word ping-pong rows the generated kernels use
	// to fuse the bit-reverse permutation into a butterfly pass.
	genScratch *sync.Pool
}

// NewNTTTable builds the tables for length n (a power of two ≥ 2) and prime
// q ≡ 1 (mod 2n). psi must be a primitive 2n-th root of unity mod q.
func NewNTTTable(n int, q, psi uint64) *NTTTable {
	if n < 2 || n&(n-1) != 0 {
		panic("ring: NTT length must be a power of two >= 2")
	}
	if (q-1)%uint64(2*n) != 0 {
		panic("ring: modulus not NTT-friendly for this length")
	}
	if PowMod(psi, uint64(n), q) != q-1 {
		panic("ring: psi is not a primitive 2N-th root of unity")
	}
	t := &NTTTable{
		N:      n,
		LogN:   log2(n),
		Mod:    NewModulus(q),
		Psi:    psi,
		PsiInv: InvMod(psi, q),
	}
	t.psiPows = powerTable(psi, n, q)
	t.psiPowsShoup = shoupTable(t.psiPows, q)

	nInv := InvMod(uint64(n), q)
	psiInvPows := powerTable(t.PsiInv, n, q)
	t.scaledPsiInvPows = make([]uint64, n)
	for i, v := range psiInvPows {
		t.scaledPsiInvPows[i] = MulMod(v, nInv, q)
	}
	t.scaledPsiInvPowsShoup = shoupTable(t.scaledPsiInvPows, q)

	omega := MulMod(psi, psi, q)
	t.omegaPows = powerTable(omega, n, q)
	t.omegaPowsShoup = shoupTable(t.omegaPows, q)
	omegaInv := InvMod(omega, q)
	t.omegaInvPows = powerTable(omegaInv, n, q)
	t.omegaInvPowsShoup = shoupTable(t.omegaInvPows, q)

	t.brv = bitReversePerm(n)

	t.psiMerged = make([]uint64, n)
	t.psiInvMerged = make([]uint64, n)
	for k := 0; k < n; k++ {
		t.psiMerged[k] = t.psiPows[t.brv[k]]
		t.psiInvMerged[k] = psiInvPows[t.brv[k]]
	}
	t.psiMergedShoup = shoupTable(t.psiMerged, q)
	t.psiInvMergedShoup = shoupTable(t.psiInvMerged, q)

	t.nInv = nInv
	t.nInvShoup = ShoupPrecomp(nInv, q)
	t.invLastW = MulMod(t.psiInvMerged[1], nInv, q)
	t.invLastWShoup = ShoupPrecomp(t.invLastW, q)
	t.initGenerated()
	return t
}

func log2(n int) int {
	l := 0
	for 1<<l < n {
		l++
	}
	return l
}

func powerTable(base uint64, n int, q uint64) []uint64 {
	tbl := make([]uint64, n)
	tbl[0] = 1
	for i := 1; i < n; i++ {
		tbl[i] = MulMod(tbl[i-1], base, q)
	}
	return tbl
}

func shoupTable(vals []uint64, q uint64) []uint64 {
	tbl := make([]uint64, len(vals))
	for i, v := range vals {
		tbl[i] = ShoupPrecomp(v, q)
	}
	return tbl
}

func bitReversePerm(n int) []int {
	logN := log2(n)
	p := make([]int, n)
	for i := range p {
		r := 0
		for b := 0; b < logN; b++ {
			if i&(1<<b) != 0 {
				r |= 1 << (logN - 1 - b)
			}
		}
		p[i] = r
	}
	return p
}

// SetReference selects which kernel family Forward/Inverse dispatch to:
// false (the default) is the merged-twist lazy radix-4 kernel, true is the
// radix-2 five-pass reference pipeline. The two families are bit-identical
// (pinned by the differential tests), so flipping the switch must never
// change any result bit — the conformance harness runs whole executions on
// each side to prove exactly that. Set it before handing the table to
// concurrent users; it is not synchronized against in-flight transforms.
func (t *NTTTable) SetReference(on bool) { t.reference = on }

// Forward computes the in-place negacyclic NTT of a with the merged-twist
// lazy radix-4 kernel. Input residues may be lazy (any values < 4q); the
// output is canonical and bit-identical to ForwardReference on canonical
// input.
func (t *NTTTable) Forward(a []uint64) {
	if t.reference {
		// The reference pipeline reduces fully at every stage and expects
		// canonical input; lazy residues from the hoisting paths are
		// canonicalized first (at most three conditional subtractions).
		q := t.Mod.Q
		for i, v := range a {
			for v >= q {
				v -= q
			}
			a[i] = v
		}
		t.ForwardReference(a)
		return
	}
	if t.useGenerated {
		t.forwardGenerated(a)
		return
	}
	t.forwardMergedLazy(a)
	t.finishForward(a)
}

// Inverse computes the in-place inverse negacyclic NTT of a with the merged
// lazy radix-4 Gentleman–Sande kernel (the radix-4 counterpart the radix-2
// cyclicInverseRadix2 oracle lacked). Output is canonical and bit-identical
// to InverseReference.
func (t *NTTTable) Inverse(a []uint64) {
	if t.reference {
		t.InverseReference(a)
		return
	}
	if t.useGenerated {
		t.inverseGenerated(a)
		return
	}
	t.bitReverse(a)
	t.inverseMergedLazy(a)
}

// ForwardReference computes the same transform as Forward via the textbook
// five-pass radix-2 pipeline (twist, bit-reverse, full-reduction
// butterflies). It is the bit-identity oracle for the merged kernels.
func (t *NTTTable) ForwardReference(a []uint64) {
	t.twist(a)
	t.bitReverse(a)
	t.cyclicForwardRadix2(a)
}

// InverseReference is the radix-2 five-pass inverse oracle.
func (t *NTTTable) InverseReference(a []uint64) {
	t.bitReverse(a)
	t.cyclicInverseRadix2(a)
	t.untwist(a)
}

// ForwardRadix4 computes the same transform with the previous generation's
// kernel: separate twist and bit-reverse passes, then fused two-stage
// (radix-4) full-reduction butterflies. Kept as the benchmark baseline the
// merged kernel is measured against.
func (t *NTTTable) ForwardRadix4(a []uint64) {
	t.twist(a)
	t.bitReverse(a)
	t.cyclicForwardRadix4(a)
}

// forwardMergedLazy runs the ψ-merged Cooley–Tukey network on natural-order
// input: log N butterfly stages, no separate twist pass, stage-contiguous
// twiddle reads, Harvey lazy reduction (values float in [0, 4q), each
// butterfly spends one conditional subtraction instead of two full
// reductions). Stages are fused in pairs (radix-4); an odd log N runs one
// leading radix-2 stage. Output is in bit-reversed evaluation order with
// lazy values < 4q — finishForward restores natural order and canonical
// residues in a single sweep.
func (t *NTTTable) forwardMergedLazy(a []uint64) {
	q := t.Mod.Q
	twoQ := q << 1
	n := t.N
	m := 1
	if t.LogN&1 == 1 {
		// Leading radix-2 stage (m = 1): one block spanning the array,
		// twiddle ψ^brv(1) = ψ^(N/2).
		h := n >> 1
		w, ws := t.psiMerged[1], t.psiMergedShoup[1]
		for j := 0; j < h; j++ {
			x, y := a[j], a[j+h]
			if x >= twoQ {
				x -= twoQ
			}
			v := MulModShoupLazy(y, w, ws, q)
			a[j] = x + v
			a[j+h] = x + twoQ - v
		}
		m = 2
	}
	for ; m < n; m <<= 2 {
		// Fuse stages m and 2m: quarter-block length tq = N/(4m).
		tq := n / (4 * m)
		for i := 0; i < m; i++ {
			w1, w1s := t.psiMerged[m+i], t.psiMergedShoup[m+i]
			w2, w2s := t.psiMerged[2*m+2*i], t.psiMergedShoup[2*m+2*i]
			w3, w3s := t.psiMerged[2*m+2*i+1], t.psiMergedShoup[2*m+2*i+1]
			base := 4 * tq * i
			for j := base; j < base+tq; j++ {
				x0 := a[j]
				x1 := a[j+tq]
				x2 := a[j+2*tq]
				x3 := a[j+3*tq]

				// Stage m: pairs (x0,x2) and (x1,x3), shared twiddle w1.
				if x0 >= twoQ {
					x0 -= twoQ
				}
				v := MulModShoupLazy(x2, w1, w1s, q)
				y0 := x0 + v
				y2 := x0 + twoQ - v
				if x1 >= twoQ {
					x1 -= twoQ
				}
				v = MulModShoupLazy(x3, w1, w1s, q)
				y1 := x1 + v
				y3 := x1 + twoQ - v

				// Stage 2m: pairs (y0,y1) with w2 and (y2,y3) with w3.
				if y0 >= twoQ {
					y0 -= twoQ
				}
				v = MulModShoupLazy(y1, w2, w2s, q)
				a[j] = y0 + v
				a[j+tq] = y0 + twoQ - v
				if y2 >= twoQ {
					y2 -= twoQ
				}
				v = MulModShoupLazy(y3, w3, w3s, q)
				a[j+2*tq] = y2 + v
				a[j+3*tq] = y2 + twoQ - v
			}
		}
	}
}

// finishForward is the merged kernel's single closing sweep: it permutes the
// bit-reversed network output back to the natural evaluation order and folds
// the lazy correction ([0, 4q) → [0, q)) into the same pass, so neither a
// standalone permutation pass nor a standalone reduction pass remains.
func (t *NTTTable) finishForward(a []uint64) {
	q := t.Mod.Q
	twoQ := q << 1
	for i, r := range t.brv {
		switch {
		case i < r:
			x, y := a[r], a[i]
			if x >= twoQ {
				x -= twoQ
			}
			if x >= q {
				x -= q
			}
			if y >= twoQ {
				y -= twoQ
			}
			if y >= q {
				y -= q
			}
			a[i], a[r] = x, y
		case i == r:
			x := a[i]
			if x >= twoQ {
				x -= twoQ
			}
			if x >= q {
				x -= q
			}
			a[i] = x
		}
	}
}

// inverseMergedLazy runs the ψ⁻¹-merged Gentleman–Sande network on
// bit-reversed input: no separate untwist pass (the ψ^(-i) powers live in
// the stage twiddles), no separate 1/N pass (the scale is folded into the
// last stage's multipliers), lazy values in [0, 2q) between stages. Stage
// pairs are fused (radix-4); the last stage fully reduces, so the output is
// canonical natural-order coefficients.
func (t *NTTTable) inverseMergedLazy(a []uint64) {
	q := t.Mod.Q
	twoQ := q << 1
	n := t.N
	tt := 1
	m := n
	for ; m >= 4; m >>= 2 {
		h := m >> 1  // stage-m block count
		hq := m >> 2 // stage-m/2 block count
		// fold: stage m/2 is the final stage — merge the 1/N scale into its
		// multipliers and emit canonical residues.
		fold := m == 4
		for i := 0; i < hq; i++ {
			sA0, sA0s := t.psiInvMerged[h+2*i], t.psiInvMergedShoup[h+2*i]
			sA1, sA1s := t.psiInvMerged[h+2*i+1], t.psiInvMergedShoup[h+2*i+1]
			sB, sBs := t.psiInvMerged[hq+i], t.psiInvMergedShoup[hq+i]
			base := 4 * tt * i
			for j := base; j < base+tt; j++ {
				y0 := a[j]
				y1 := a[j+tt]
				y2 := a[j+2*tt]
				y3 := a[j+3*tt]

				// Stage m: pairs (y0,y1) and (y2,y3), adjacent twiddles.
				u0 := y0 + y1
				if u0 >= twoQ {
					u0 -= twoQ
				}
				v0 := MulModShoupLazy(y0+twoQ-y1, sA0, sA0s, q)
				u1 := y2 + y3
				if u1 >= twoQ {
					u1 -= twoQ
				}
				v1 := MulModShoupLazy(y2+twoQ-y3, sA1, sA1s, q)

				// Stage m/2: pairs (u0,u1) and (v0,v1), shared twiddle.
				if fold {
					a[j] = MulModShoup(u0+u1, t.nInv, t.nInvShoup, q)
					a[j+2*tt] = MulModShoup(u0+twoQ-u1, t.invLastW, t.invLastWShoup, q)
					a[j+tt] = MulModShoup(v0+v1, t.nInv, t.nInvShoup, q)
					a[j+3*tt] = MulModShoup(v0+twoQ-v1, t.invLastW, t.invLastWShoup, q)
					continue
				}
				s := u0 + u1
				if s >= twoQ {
					s -= twoQ
				}
				a[j] = s
				a[j+2*tt] = MulModShoupLazy(u0+twoQ-u1, sB, sBs, q)
				s = v0 + v1
				if s >= twoQ {
					s -= twoQ
				}
				a[j+tt] = s
				a[j+3*tt] = MulModShoupLazy(v0+twoQ-v1, sB, sBs, q)
			}
		}
		tt <<= 2
	}
	if m == 2 {
		// Odd log N: one trailing radix-2 stage carries the 1/N fold.
		h := n >> 1
		for j := 0; j < h; j++ {
			y0, y1 := a[j], a[j+h]
			a[j] = MulModShoup(y0+y1, t.nInv, t.nInvShoup, q)
			a[j+h] = MulModShoup(y0+twoQ-y1, t.invLastW, t.invLastWShoup, q)
		}
	}
}

// twist multiplies a[i] by ψ^i, turning negacyclic convolution into cyclic.
func (t *NTTTable) twist(a []uint64) {
	q := t.Mod.Q
	for i := range a {
		a[i] = MulModShoup(a[i], t.psiPows[i], t.psiPowsShoup[i], q)
	}
}

// untwist multiplies a[i] by ψ^(-i)/N.
func (t *NTTTable) untwist(a []uint64) {
	q := t.Mod.Q
	for i := range a {
		a[i] = MulModShoup(a[i], t.scaledPsiInvPows[i], t.scaledPsiInvPowsShoup[i], q)
	}
}

func (t *NTTTable) bitReverse(a []uint64) {
	for i, r := range t.brv {
		if i < r {
			a[i], a[r] = a[r], a[i]
		}
	}
}

// cyclicForwardRadix2 runs the classic iterative Cooley-Tukey DIT NTT on
// bit-reversed input, producing natural-order output.
func (t *NTTTable) cyclicForwardRadix2(a []uint64) {
	q := t.Mod.Q
	n := t.N
	for h := 1; h < n; h <<= 1 {
		step := n / (2 * h) // twiddle stride for this stage
		for k := 0; k < n; k += 2 * h {
			for j := 0; j < h; j++ {
				w := t.omegaPows[step*j]
				ws := t.omegaPowsShoup[step*j]
				u := a[k+j]
				v := MulModShoup(a[k+j+h], w, ws, q)
				a[k+j] = AddMod(u, v, q)
				a[k+j+h] = SubMod(u, v, q)
			}
		}
	}
}

// cyclicForwardRadix4 fuses pairs of radix-2 stages into radix-4 butterflies.
// If log2(N) is odd, a single radix-2 stage runs first so the remaining stage
// count is even. The output is bit-for-bit identical to cyclicForwardRadix2.
func (t *NTTTable) cyclicForwardRadix4(a []uint64) {
	q := t.Mod.Q
	n := t.N
	h := 1
	if t.LogN%2 == 1 {
		// Single leading radix-2 stage (h = 1): butterfly neighbours with
		// twiddle ω^0 = 1.
		for k := 0; k < n; k += 2 {
			u, v := a[k], a[k+1]
			a[k] = AddMod(u, v, q)
			a[k+1] = SubMod(u, v, q)
		}
		h = 2
	}
	for ; h < n; h <<= 2 {
		stepA := n / (2 * h) // twiddle stride of the first fused stage
		stepB := stepA / 2   // twiddle stride of the second fused stage
		for k := 0; k < n; k += 4 * h {
			for j := 0; j < h; j++ {
				wA := t.omegaPows[stepA*j]
				wAs := t.omegaPowsShoup[stepA*j]
				wB := t.omegaPows[stepB*j]
				wBs := t.omegaPowsShoup[stepB*j]
				wB2 := t.omegaPows[stepB*(j+h)]
				wB2s := t.omegaPowsShoup[stepB*(j+h)]

				x0 := a[k+j]
				x1 := a[k+j+h]
				x2 := a[k+j+2*h]
				x3 := a[k+j+3*h]

				// Stage A: blocks (x0,x1) and (x2,x3), same twiddle pattern.
				v := MulModShoup(x1, wA, wAs, q)
				y0 := AddMod(x0, v, q)
				y1 := SubMod(x0, v, q)
				v = MulModShoup(x3, wA, wAs, q)
				y2 := AddMod(x2, v, q)
				y3 := SubMod(x2, v, q)

				// Stage B: blocks (y0,y2) with twiddle index j and (y1,y3)
				// with twiddle index j+h.
				v = MulModShoup(y2, wB, wBs, q)
				a[k+j] = AddMod(y0, v, q)
				a[k+j+2*h] = SubMod(y0, v, q)
				v = MulModShoup(y3, wB2, wB2s, q)
				a[k+j+h] = AddMod(y1, v, q)
				a[k+j+3*h] = SubMod(y1, v, q)
			}
		}
	}
}

func (t *NTTTable) cyclicInverseRadix2(a []uint64) {
	q := t.Mod.Q
	n := t.N
	for h := 1; h < n; h <<= 1 {
		step := n / (2 * h)
		for k := 0; k < n; k += 2 * h {
			for j := 0; j < h; j++ {
				w := t.omegaInvPows[step*j]
				ws := t.omegaInvPowsShoup[step*j]
				u := a[k+j]
				v := MulModShoup(a[k+j+h], w, ws, q)
				a[k+j] = AddMod(u, v, q)
				a[k+j+h] = SubMod(u, v, q)
			}
		}
	}
}
