package ring

import "math/big"

// GenerateNTTPrimes returns count distinct primes q ≡ 1 (mod 2n) close to
// 2^logQ, searching downward (and upward if the downward space is exhausted).
// Such primes admit a negacyclic NTT of length n.
func GenerateNTTPrimes(logQ, n, count int) []uint64 {
	if logQ < 4 || logQ > 61 {
		panic("ring: logQ must be in [4,61]")
	}
	step := uint64(2 * n)
	base := uint64(1) << uint(logQ)
	// Largest candidate ≡ 1 (mod 2n) below 2^logQ.
	down := base - (base-1)%step
	up := down + step

	primes := make([]uint64, 0, count)
	for len(primes) < count {
		switch {
		case down > step && isPrime(down):
			primes = append(primes, down)
			down -= step
		case down > step:
			down -= step
		case isPrime(up):
			primes = append(primes, up)
			up += step
		default:
			up += step
		}
	}
	return primes
}

func isPrime(q uint64) bool {
	return new(big.Int).SetUint64(q).ProbablyPrime(20)
}

// PrimitiveRoot2N returns a primitive 2n-th root of unity modulo the prime q,
// which must satisfy q ≡ 1 (mod 2n).
func PrimitiveRoot2N(n int, q uint64) uint64 {
	if (q-1)%uint64(2*n) != 0 {
		panic("ring: q is not ≡ 1 (mod 2n)")
	}
	exp := (q - 1) / uint64(2*n)
	for g := uint64(2); ; g++ {
		psi := PowMod(g, exp, q)
		// psi has order dividing 2n; it is primitive iff psi^n = -1.
		if PowMod(psi, uint64(n), q) == q-1 {
			return psi
		}
	}
}
