package ring

import "testing"

// benchNTTPoly times forward+inverse NTT over a full multi-limb polynomial —
// the unit the limb pool fans out — with the pool forced serial and then in
// its default parallel mode. On a multi-core machine the parallel arm should
// approach limbs/cores scaling; on one core both arms match (the pool runs
// everything inline).
func benchNTTPoly(b *testing.B, n, limbs int) {
	r := testRing(b, n, limbs)
	s := NewSampler(r, 7)
	p := r.NewPoly(limbs - 1)
	s.Uniform(p)
	for _, mode := range []struct {
		name   string
		serial bool
	}{{"serial", true}, {"parallel", false}} {
		b.Run(mode.name, func(b *testing.B) {
			SetSerial(mode.serial)
			defer SetSerial(false)
			b.SetBytes(int64(8 * n * limbs))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r.NTT(p)
				r.INTT(p)
			}
		})
	}
}

func BenchmarkNTTParallel_16384(b *testing.B) { benchNTTPoly(b, 16384, 8) }
func BenchmarkNTTParallel_65536(b *testing.B) { benchNTTPoly(b, 65536, 8) }
