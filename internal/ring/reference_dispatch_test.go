package ring

import (
	"math/rand"
	"testing"
)

// The conformance harness's reference engine runs whole CKKS executions with
// SetReferenceNTT flipped on; that is only sound if the rerouted dispatch is
// bit-identical to the default kernels, including on the lazy (< 4q) inputs
// the hoisting paths feed Forward directly.
func TestSetReferenceNTTBitIdentical(t *testing.T) {
	const n = 64
	moduli := GenerateNTTPrimes(45, n, 3)
	rDefault, err := NewRing(n, moduli)
	if err != nil {
		t.Fatal(err)
	}
	rRef, err := NewRing(n, moduli)
	if err != nil {
		t.Fatal(err)
	}
	rRef.SetReferenceNTT(true)

	rng := rand.New(rand.NewSource(7))
	a := rDefault.NewPoly(rDefault.MaxLevel())
	b := rRef.NewPoly(rRef.MaxLevel())
	for i := range a.Coeffs {
		q := moduli[i]
		for j := 0; j < n; j++ {
			// Lazy residues in [0, 4q): the default kernel accepts them and
			// the reference dispatch must canonicalize to the same transform.
			v := rng.Uint64() % (4 * q)
			a.Coeffs[i][j] = v
			b.Coeffs[i][j] = v
		}
	}
	rDefault.NTT(a)
	rRef.NTT(b)
	if !a.Equal(b) {
		t.Fatal("reference NTT dispatch differs bitwise from the default kernel")
	}
	rDefault.INTT(a)
	rRef.INTT(b)
	if !a.Equal(b) {
		t.Fatal("reference INTT dispatch differs bitwise from the default kernel")
	}
}
