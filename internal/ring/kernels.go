package ring

// Fused pointwise kernels: single-pass multiply-accumulate over RNS
// polynomials. The naive spelling of acc += a ⊙ b is two full passes over
// the coefficients (a multiply writing a temporary, an add reading it back);
// these kernels keep the product in registers and fold the lazy correction
// into the same pass, the software analogue of the MAC datapath in Hydra's
// pointwise compute units.

// MulCoeffsAdd sets acc = acc + a ⊙ b in a single pass. All operands must be
// in the NTT domain; acc must be canonical on entry and is canonical on
// return. The result is bit-identical to MulCoeffs into a temporary followed
// by Add.
func (r *Ring) MulCoeffsAdd(a, b, acc *Poly) {
	if !a.IsNTT || !b.IsNTT || !acc.IsNTT {
		panic("ring: MulCoeffsAdd requires NTT-domain operands")
	}
	lvl := minLevel(a, b)
	if acc.Level() < lvl {
		lvl = acc.Level()
	}
	ForEachLimb(lvl+1, func(i int) {
		m := r.Tables[i].Mod
		// The accumulator row stays lazy in [0, 2q) across the MAC loop;
		// one ReduceFinalVec sweep canonicalizes it, instead of a branch
		// per element.
		m.MulAddRowLazy(acc.Coeffs[i], a.Coeffs[i], b.Coeffs[i])
		ReduceFinalVec(acc.Coeffs[i], m.Q)
	})
}

// MulCoeffsSub sets acc = acc - a ⊙ b in a single pass, under the same
// contract as MulCoeffsAdd.
func (r *Ring) MulCoeffsSub(a, b, acc *Poly) {
	if !a.IsNTT || !b.IsNTT || !acc.IsNTT {
		panic("ring: MulCoeffsSub requires NTT-domain operands")
	}
	lvl := minLevel(a, b)
	if acc.Level() < lvl {
		lvl = acc.Level()
	}
	ForEachLimb(lvl+1, func(i int) {
		m := r.Tables[i].Mod
		m.MulSubRowLazy(acc.Coeffs[i], a.Coeffs[i], b.Coeffs[i])
		ReduceFinalVec(acc.Coeffs[i], m.Q)
	})
}
