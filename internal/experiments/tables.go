package experiments

import (
	"fmt"
	"sort"
	"strings"

	"hydra/internal/baseline"
	"hydra/internal/hw"
	"hydra/internal/mapping"
	"hydra/internal/model"
)

// ---------------------------------------------------------------------------
// Table I — application-level parallelism of the four benchmarks.
// ---------------------------------------------------------------------------

// Table1Row is one layer-type row of Table I.
type Table1Row struct {
	Layer  string
	Ranges map[string][2]int // benchmark -> (min, max); zero value = NA
}

// Table1 extracts the parallelism ranges from the network models.
func Table1() []Table1Row {
	kinds := []struct {
		name string
		kind model.Kind
	}{
		{"ConvBN", model.ConvBN},
		{"Pooling", model.Pooling},
		{"FC", model.FC},
		{"PCMM", model.PCMM},
		{"CCMM", model.CCMM},
		{"Non-linear", model.NonLinear},
		{"Bootstrap", model.Bootstrap},
	}
	nets := model.Benchmarks()
	rows := make([]Table1Row, 0, len(kinds)+1)
	for _, k := range kinds {
		row := Table1Row{Layer: k.name, Ranges: map[string][2]int{}}
		for _, n := range nets {
			if min, max, ok := n.ParallelismRange(k.kind); ok {
				row.Ranges[n.Name] = [2]int{min, max}
			}
		}
		rows = append(rows, row)
	}
	ctRow := Table1Row{Layer: "Ciphertext", Ranges: map[string][2]int{}}
	for _, n := range nets {
		min, max := n.CiphertextRange()
		ctRow.Ranges[n.Name] = [2]int{min, max}
	}
	rows = append(rows, ctRow)
	return rows
}

// FormatTable1 renders Table I.
func FormatTable1() string {
	var b strings.Builder
	names := baseline.Benchmarks
	fmt.Fprintf(&b, "Table I: application-level parallelism (Min./Max.)\n")
	fmt.Fprintf(&b, "%-11s", "Layer")
	for _, n := range names {
		fmt.Fprintf(&b, " %22s", n)
	}
	b.WriteByte('\n')
	for _, row := range Table1() {
		fmt.Fprintf(&b, "%-11s", row.Layer)
		for _, n := range names {
			if r, ok := row.Ranges[n]; ok {
				fmt.Fprintf(&b, " %22s", fmt.Sprintf("%d / %d", r[0], r[1]))
			} else {
				fmt.Fprintf(&b, " %22s", "NA")
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// Table II — full-system performance.
// ---------------------------------------------------------------------------

// Table2Cell is one measured entry of Table II.
type Table2Cell struct {
	Seconds float64 // calibrated (reported) seconds
	Raw     float64 // unscaled simulated seconds
	Paper   float64 // the paper's value, 0 if not published
}

// Table2Result holds all measured rows plus the published ASIC rows.
type Table2Result struct {
	Rows  map[string]map[string]Table2Cell // accelerator -> benchmark -> cell
	Order []string
}

// MeasuredPrototypes returns the prototypes Table II measures, in row order.
func MeasuredPrototypes() []Prototype {
	return []Prototype{FABS(), Poseidon(), FABM(), HydraS(), HydraM(), HydraL()}
}

// Table2 runs the full benchmark × prototype matrix.
func Table2() (*Table2Result, error) {
	res := &Table2Result{Rows: map[string]map[string]Table2Cell{}}
	for _, asic := range []string{"CraterLake", "BTS", "ARK", "SHARP"} {
		res.Order = append(res.Order, asic)
		res.Rows[asic] = map[string]Table2Cell{}
		for _, bm := range baseline.Benchmarks {
			res.Rows[asic][bm] = Table2Cell{Seconds: baseline.TableII[asic][bm], Paper: baseline.TableII[asic][bm]}
		}
	}
	for _, p := range MeasuredPrototypes() {
		res.Order = append(res.Order, p.Name)
		res.Rows[p.Name] = map[string]Table2Cell{}
		for _, net := range model.Benchmarks() {
			r, err := p.Run(net)
			if err != nil {
				return nil, fmt.Errorf("experiments: table2 %s/%s: %w", p.Name, net.Name, err)
			}
			res.Rows[p.Name][net.Name] = Table2Cell{
				Seconds: r.Makespan * p.ReportScale,
				Raw:     r.Makespan,
				Paper:   baseline.TableII[p.Name][net.Name],
			}
		}
	}
	return res, nil
}

// Format renders the table with paper values alongside.
func (t *Table2Result) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table II: full-system execution time in seconds (measured | paper)\n")
	fmt.Fprintf(&b, "%-11s", "")
	for _, bm := range baseline.Benchmarks {
		fmt.Fprintf(&b, " %24s", bm)
	}
	b.WriteByte('\n')
	for _, acc := range t.Order {
		fmt.Fprintf(&b, "%-11s", acc)
		for _, bm := range baseline.Benchmarks {
			c := t.Rows[acc][bm]
			fmt.Fprintf(&b, " %24s", fmt.Sprintf("%10.2f | %10.2f", c.Seconds, c.Paper))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// Table III — EDAP efficiency.
// ---------------------------------------------------------------------------

// Table3Cell is one EDAP entry.
type Table3Cell struct {
	EDAP  float64
	Paper float64
}

// Table3Result holds EDAP per accelerator per benchmark.
type Table3Result struct {
	Rows  map[string]map[string]Table3Cell
	Order []string
}

// Table3 computes EDAP = Energy × Delay × Area for the Hydra prototypes and
// carries the published ASIC values. Our energy and delay come from the
// simulator; the product is expressed in the paper's (unspecified) unit by
// anchoring Hydra-S/ResNet-18 to its published 0.12.
func Table3() (*Table3Result, error) {
	res := &Table3Result{Rows: map[string]map[string]Table3Cell{}}
	for _, asic := range []string{"CraterLake", "BTS", "ARK", "SHARP"} {
		res.Order = append(res.Order, asic)
		res.Rows[asic] = map[string]Table3Cell{}
		for _, bm := range baseline.Benchmarks {
			res.Rows[asic][bm] = Table3Cell{EDAP: baseline.TableIII[asic][bm], Paper: baseline.TableIII[asic][bm]}
		}
	}
	protos := []Prototype{HydraS(), HydraM(), HydraL()}
	raw := map[string]map[string]float64{}
	for _, p := range protos {
		raw[p.Name] = map[string]float64{}
		for _, net := range model.Benchmarks() {
			r, err := p.Run(net)
			if err != nil {
				return nil, fmt.Errorf("experiments: table3 %s/%s: %w", p.Name, net.Name, err)
			}
			delay := r.Makespan * p.ReportScale
			// Static energy accrues over the calibrated wall clock.
			energy := r.TotalEnergy() - r.EnergyByUnit["Static"] +
				p.Sim.Card.IdlePowerW*delay*float64(p.Cards)
			area := float64(p.Cards) * p.Sim.Card.AreaMM2
			raw[p.Name][net.Name] = energy * delay * area
		}
	}
	anchor := baseline.TableIII["Hydra-S"]["ResNet-18"] / raw["Hydra-S"]["ResNet-18"]
	for _, p := range protos {
		res.Order = append(res.Order, p.Name)
		res.Rows[p.Name] = map[string]Table3Cell{}
		for _, bm := range baseline.Benchmarks {
			res.Rows[p.Name][bm] = Table3Cell{
				EDAP:  raw[p.Name][bm] * anchor,
				Paper: baseline.TableIII[p.Name][bm],
			}
		}
	}
	return res, nil
}

// Format renders Table III.
func (t *Table3Result) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table III: EDAP, lower is better (measured | paper)\n")
	fmt.Fprintf(&b, "%-11s", "")
	for _, bm := range baseline.Benchmarks {
		fmt.Fprintf(&b, " %26s", bm)
	}
	b.WriteByte('\n')
	for _, acc := range t.Order {
		fmt.Fprintf(&b, "%-11s", acc)
		for _, bm := range baseline.Benchmarks {
			c := t.Rows[acc][bm]
			fmt.Fprintf(&b, " %26s", fmt.Sprintf("%11.2f | %11.2f", c.EDAP, c.Paper))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// Table IV — FPGA resource utilization.
// ---------------------------------------------------------------------------

// FormatTable4 renders the single-card resource utilization report.
func FormatTable4() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table IV: FPGA resource utilization of Hydra with a single card\n")
	fmt.Fprintf(&b, "%-10s %10s %10s %14s\n", "Resource", "Utilized", "Available", "Utilization(%)")
	for _, r := range hw.HydraResourceUtilization() {
		fmt.Fprintf(&b, "%-10s %10d %10d %14.1f\n", r.Resource, r.Used, r.Available, r.Percent())
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// Table V — optimal DFT parameters.
// ---------------------------------------------------------------------------

// Table5Row is the (Radix, bs) choice for one logSlots on one prototype.
type Table5Row struct {
	LogSlots int
	Choice   map[string]mapping.DFTParams // prototype name -> params
}

// Table5 runs the Eq. 1 optimizer for logSlots 12…15 on the three
// prototypes, using each machine's op times (single-card times for Hydra-S,
// switch-transfer communication cost for Hydra-M/L).
func Table5() ([]Table5Row, error) {
	protos := []struct {
		name  string
		cards int
		proto Prototype
	}{
		{"Hydra-S", 1, HydraS()},
		{"Hydra-M", 8, HydraM()},
		{"Hydra-L", 64, HydraL()},
	}
	var rows []Table5Row
	for logSlots := 12; logSlots <= 15; logSlots++ {
		row := Table5Row{LogSlots: logSlots, Choice: map[string]mapping.DFTParams{}}
		for _, p := range protos {
			params, _, err := mapping.OptimizeDFT(logSlots, p.proto.Sim.Scheme.BootDepth, p.cards, p.proto.OpTimes())
			if err != nil {
				return nil, err
			}
			// Canonical presentation: radices sorted ascending.
			sortDFT(&params)
			row.Choice[p.name] = params
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func sortDFT(p *mapping.DFTParams) {
	idx := make([]int, len(p.Radix))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return p.Radix[idx[a]] < p.Radix[idx[b]] })
	r := make([]int, len(idx))
	bs := make([]int, len(idx))
	for i, j := range idx {
		r[i], bs[i] = p.Radix[j], p.BS[j]
	}
	p.Radix, p.BS = r, bs
}

// FormatTable5 renders Table V.
func FormatTable5(rows []Table5Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table V: optimal (Radix, bs) per logSlots\n")
	fmt.Fprintf(&b, "%-9s %-26s %-26s %-26s\n", "logSlots", "Hydra-S", "Hydra-M", "Hydra-L")
	for _, row := range rows {
		fmt.Fprintf(&b, "%-9d", row.LogSlots)
		for _, name := range []string{"Hydra-S", "Hydra-M", "Hydra-L"} {
			p := row.Choice[name]
			fmt.Fprintf(&b, " %-26s", fmt.Sprintf("r=%v bs=%v", p.Radix, p.BS))
		}
		b.WriteByte('\n')
	}
	return b.String()
}
