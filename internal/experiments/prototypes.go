// Package experiments regenerates every table and figure of the paper's
// evaluation section: prototype definitions (Hydra-S/M/L, FAB-S/M/L,
// Poseidon), the benchmark runner that lowers a network through the mapping
// strategies onto a prototype and simulates it, and one generator per
// table/figure.
package experiments

import (
	"fmt"

	"hydra/internal/hw"
	"hydra/internal/mapping"
	"hydra/internal/model"
	"hydra/internal/sim"
	"hydra/internal/task"
)

// Prototype is one machine configuration of Section V-A.
type Prototype struct {
	Name           string
	Cards          int
	CardsPerServer int
	Sim            sim.Config
	// ReportScale aligns the analytic cost model's absolute times with the
	// paper's single-card numbers (which come from the authors' RTL-informed
	// simulator): one scalar per card family, fitted on the ResNet-18 row of
	// Table II and applied uniformly when reporting absolute seconds. It
	// rescales reported wall clock only — speedups, overlap and
	// communication shares are produced by the unscaled simulation.
	ReportScale float64
}

// Report family calibration constants (see EXPERIMENTS.md).
const (
	hydraReportScale    = 41.29 / 203.92
	fabReportScale      = 131.94 / 584.35
	poseidonReportScale = 55.05 / 243.96
)

// HydraS is one server with one Hydra card and no DTU.
func HydraS() Prototype {
	cfg := sim.HydraConfig()
	cfg.Card = hw.HydraSCard()
	return Prototype{Name: "Hydra-S", Cards: 1, CardsPerServer: 1, Sim: cfg, ReportScale: hydraReportScale}
}

// HydraM is one server with eight Hydra cards behind the in-server switch.
func HydraM() Prototype {
	return Prototype{Name: "Hydra-M", Cards: 8, CardsPerServer: 8, Sim: sim.HydraConfig(), ReportScale: hydraReportScale}
}

// HydraL is eight servers with 64 Hydra cards.
func HydraL() Prototype {
	return Prototype{Name: "Hydra-L", Cards: 64, CardsPerServer: 8, Sim: sim.HydraConfig(), ReportScale: hydraReportScale}
}

// HydraN is a Hydra prototype with an arbitrary card count (Fig. 9 sweeps);
// servers hold eight cards.
func HydraN(cards int) Prototype {
	cps := 8
	if cards < 8 {
		cps = cards
	}
	return Prototype{Name: fmt.Sprintf("Hydra-%d", cards), Cards: cards, CardsPerServer: cps, Sim: sim.HydraConfig(), ReportScale: hydraReportScale}
}

// FABS is FAB's single card.
func FABS() Prototype {
	return Prototype{Name: "FAB-S", Cards: 1, CardsPerServer: 1, Sim: sim.FABConfig(), ReportScale: fabReportScale}
}

// FABM is FAB's 8-card architecture: two cards per host, host-relayed
// transfers, no computation/communication overlap.
func FABM() Prototype {
	return Prototype{Name: "FAB-M", Cards: 8, CardsPerServer: 2, Sim: sim.FABConfig(), ReportScale: fabReportScale}
}

// FABL extends FAB's architecture to 64 cards for the scalability
// comparison of Fig. 8.
func FABL() Prototype {
	return Prototype{Name: "FAB-L", Cards: 64, CardsPerServer: 2, Sim: sim.FABConfig(), ReportScale: fabReportScale}
}

// Poseidon is the Poseidon single card.
func Poseidon() Prototype {
	cfg := sim.HydraConfig()
	cfg.Card = hw.PoseidonCard()
	cfg.Overlap = false
	return Prototype{Name: "Poseidon", Cards: 1, CardsPerServer: 1, Sim: cfg, ReportScale: poseidonReportScale}
}

// bootLimbs is the limb count bootstrapping runs at.
func bootLimbs(s hw.SchemeParams) int { return (s.MaxLimbs + s.FreshLimbs) / 2 }

// OpTimes returns the Eq. 1 latencies for this prototype: per-op card
// latencies plus the cost of one intra-server ciphertext transfer (zero on a
// single card).
func (p Prototype) OpTimes() mapping.OpTimes {
	s := p.Sim.Scheme
	com := 0.0
	if p.Cards > 1 {
		com = p.Sim.Network.TransferTime(float64(s.CiphertextBytes(bootLimbs(s))), 0, 1, p.CardsPerServer)
	}
	return mapping.OpTimesFor(p.Sim.Card, s, bootLimbs(s), com)
}

// Build lowers a network onto this prototype's cards.
func (p Prototype) Build(net model.Network) (*task.Program, error) {
	b := task.NewBuilder(p.Cards, p.CardsPerServer)
	ctx := mapping.NewContext(b, p.Sim.Scheme, p.Cards)
	times := p.OpTimes()
	boot := mapping.DefaultBootstrapOptions(p.Sim.Scheme, p.Cards, times)
	if err := net.Emit(ctx, boot, times); err != nil {
		return nil, err
	}
	return b.Build(), nil
}

// Run builds and simulates a benchmark on this prototype.
func (p Prototype) Run(net model.Network) (*sim.Result, error) {
	prog, err := p.Build(net)
	if err != nil {
		return nil, err
	}
	return sim.Run(prog, p.Sim)
}
