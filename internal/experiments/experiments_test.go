package experiments

import (
	"strings"
	"testing"

	"hydra/internal/baseline"
	"hydra/internal/model"
)

func TestPrototypeDefinitions(t *testing.T) {
	cases := []struct {
		p     Prototype
		cards int
	}{
		{HydraS(), 1}, {HydraM(), 8}, {HydraL(), 64},
		{FABS(), 1}, {FABM(), 8}, {FABL(), 64}, {Poseidon(), 1},
	}
	for _, c := range cases {
		if c.p.Cards != c.cards {
			t.Fatalf("%s: %d cards, want %d", c.p.Name, c.p.Cards, c.cards)
		}
		if c.p.ReportScale <= 0 || c.p.ReportScale > 1 {
			t.Fatalf("%s: report scale %v out of (0,1]", c.p.Name, c.p.ReportScale)
		}
	}
	if HydraN(16).Cards != 16 || HydraN(4).CardsPerServer != 4 {
		t.Fatal("HydraN wiring wrong")
	}
}

func TestTable1MatchesPaperAnchors(t *testing.T) {
	rows := Table1()
	byLayer := map[string]Table1Row{}
	for _, r := range rows {
		byLayer[r.Layer] = r
	}
	if r := byLayer["ConvBN"].Ranges["ResNet-18"]; r != [2]int{384, 1024} {
		t.Fatalf("ResNet-18 ConvBN %v", r)
	}
	if r := byLayer["FC"].Ranges["ResNet-50"]; r != [2]int{3047, 3047} {
		t.Fatalf("ResNet-50 FC %v", r)
	}
	if r := byLayer["CCMM"].Ranges["OPT-6.7B"]; r != [2]int{1000, 1000} {
		t.Fatalf("OPT CCMM %v", r)
	}
	if _, ok := byLayer["PCMM"].Ranges["ResNet-18"]; ok {
		t.Fatal("ResNet-18 should have no PCMM")
	}
	if s := FormatTable1(); !strings.Contains(s, "Ciphertext") {
		t.Fatal("formatted table missing ciphertext row")
	}
}

// runTable2 caches the full matrix across assertions in this package's tests.
var cachedTable2 *Table2Result

func table2(t *testing.T) *Table2Result {
	t.Helper()
	if cachedTable2 == nil {
		res, err := Table2()
		if err != nil {
			t.Fatal(err)
		}
		cachedTable2 = res
	}
	return cachedTable2
}

func TestTable2HeadlineClaims(t *testing.T) {
	if testing.Short() {
		t.Skip("full matrix in short mode")
	}
	res := table2(t)
	get := func(acc, bm string) float64 { return res.Rows[acc][bm].Seconds }

	for _, bm := range baseline.Benchmarks {
		// Single-card ordering: Hydra-S < Poseidon < FAB-S.
		if !(get("Hydra-S", bm) < get("Poseidon", bm) && get("Poseidon", bm) < get("FAB-S", bm)) {
			t.Fatalf("%s: single-card ordering broken: %v %v %v", bm, get("Hydra-S", bm), get("Poseidon", bm), get("FAB-S", bm))
		}
		// Scale-out: Hydra-M 6.3-8.5x over Hydra-S; Hydra-L 27-65x.
		sm := get("Hydra-S", bm) / get("Hydra-M", bm)
		sl := get("Hydra-S", bm) / get("Hydra-L", bm)
		if sm < 6.0 || sm > 8.5 {
			t.Fatalf("%s: Hydra-M speedup %.2f outside [6.0,8.5]", bm, sm)
		}
		if sl < 25 || sl > 65 {
			t.Fatalf("%s: Hydra-L speedup %.2f outside [25,65]", bm, sl)
		}
		// Same card count: Hydra-M beats FAB-M by 2.8-4.5x.
		fm := get("FAB-M", bm) / get("Hydra-M", bm)
		if fm < 2.5 || fm > 4.5 {
			t.Fatalf("%s: Hydra-M vs FAB-M %.2f outside [2.5,4.5]", bm, fm)
		}
		// Hydra-L outperforms every ASIC on every benchmark (paper: 1.14-2.5x
		// over the best, SHARP).
		if get("Hydra-L", bm) >= get("SHARP", bm) {
			t.Fatalf("%s: Hydra-L (%.2f) should beat SHARP (%.2f)", bm, get("Hydra-L", bm), get("SHARP", bm))
		}
	}
	// Headline: up to 74x over Poseidon and 88-160x over FAB in LLMs.
	if r := get("FAB-S", "OPT-6.7B") / get("Hydra-L", "OPT-6.7B"); r < 88 {
		t.Fatalf("FAB-S/Hydra-L on OPT %.1f, want >= 88", r)
	}
	if r := get("Poseidon", "OPT-6.7B") / get("Hydra-L", "OPT-6.7B"); r < 40 {
		t.Fatalf("Poseidon/Hydra-L on OPT %.1f, want >= 40", r)
	}
}

func TestTable2AccuracyVsPaper(t *testing.T) {
	if testing.Short() {
		t.Skip("full matrix in short mode")
	}
	res := table2(t)
	// Measured cells should be within 2x of the paper everywhere (shape
	// preservation) and within 25% for the single-card and 8-card rows.
	for _, acc := range []string{"Hydra-S", "Hydra-M", "Hydra-L", "FAB-S", "FAB-M", "Poseidon"} {
		for _, bm := range baseline.Benchmarks {
			c := res.Rows[acc][bm]
			ratio := c.Seconds / c.Paper
			if ratio < 0.5 || ratio > 2.0 {
				t.Fatalf("%s/%s: measured %.2f vs paper %.2f (ratio %.2f)", acc, bm, c.Seconds, c.Paper, ratio)
			}
		}
	}
}

func TestFig6Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("full matrix in short mode")
	}
	series, err := Fig6()
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 4 {
		t.Fatalf("expected 4 benchmarks, got %d", len(series))
	}
	for _, s := range series {
		switch s.Benchmark {
		case "ResNet-18", "ResNet-50":
			// Fig. 6: ConvBN over 7x on Hydra-M, over 40x on Hydra-L; ReLU,
			// Pool and Boot more modest on Hydra-L.
			if s.SpeedupM["ConvBN"] < 7 {
				t.Fatalf("%s: ConvBN M speedup %.2f < 7", s.Benchmark, s.SpeedupM["ConvBN"])
			}
			if s.SpeedupL["ConvBN"] < 40 {
				t.Fatalf("%s: ConvBN L speedup %.2f < 40", s.Benchmark, s.SpeedupL["ConvBN"])
			}
			if s.SpeedupL["Pool"] > s.SpeedupL["ConvBN"]/2 {
				t.Fatalf("%s: Pool should scale far worse than ConvBN", s.Benchmark)
			}
		case "BERT-base", "OPT-6.7B":
			// Attention and FFN exhibit high improvements on both prototypes.
			if s.SpeedupM["Attention"] < 6.5 || s.SpeedupM["FFN"] < 6.5 {
				t.Fatalf("%s: attention/FFN M speedups too low: %v", s.Benchmark, s.SpeedupM)
			}
			if s.SpeedupL["Attention"] < 30 || s.SpeedupL["FFN"] < 30 {
				t.Fatalf("%s: attention/FFN L speedups too low: %v", s.Benchmark, s.SpeedupL)
			}
		}
	}
	if txt := FormatFig6(series); !strings.Contains(txt, "ResNet-18") {
		t.Fatal("format output incomplete")
	}
}

func TestFig7EnergyShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full matrix in short mode")
	}
	entries, err := Fig7()
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 12 {
		t.Fatalf("expected 12 entries, got %d", len(entries))
	}
	for _, e := range entries {
		// Memory access is the largest contributor (Fig. 7).
		hbm := e.Breakdown["HBM"]
		for _, u := range []string{"NTT", "MA", "MM", "Auto", "Comm"} {
			if e.Breakdown[u] > hbm {
				t.Fatalf("%s/%s: %s energy (%.1f) exceeds HBM (%.1f)", e.Benchmark, e.Prototype, u, e.Breakdown[u], hbm)
			}
		}
		// MA is minimal among compute units; comm is under 1.5%.
		if e.Breakdown["MA"] > e.Breakdown["NTT"] || e.Breakdown["MA"] > e.Breakdown["MM"] {
			t.Fatalf("%s/%s: MA should be minimal", e.Benchmark, e.Prototype)
		}
		if e.Breakdown["Comm"] > 0.015*e.TotalJ {
			t.Fatalf("%s/%s: comm energy share too high", e.Benchmark, e.Prototype)
		}
	}
	if txt := FormatFig7(entries); !strings.Contains(txt, "HBM") {
		t.Fatal("format output incomplete")
	}
}

func TestFig8Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("full matrix in short mode")
	}
	entries, err := Fig8()
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[string]Fig8Entry{}
	for _, e := range entries {
		byKey[e.Benchmark+"/"+e.Prototype] = e
	}
	for _, bm := range baseline.Benchmarks {
		hm := byKey[bm+"/Hydra-M"]
		hl := byKey[bm+"/Hydra-L"]
		fm := byKey[bm+"/FAB-M"]
		fl := byKey[bm+"/FAB-L"]
		share := func(e Fig8Entry) float64 { return e.Exposed / (e.Compute + e.Exposed) }
		// Hydra exposes less absolute communication time than FAB at both
		// scales, and a smaller share at the 64-card scale where FAB's
		// host-relayed path collapses. (At 8 cards FAB's share can look
		// smaller only because its computation is ~3x slower.)
		if hm.Exposed > fm.Exposed || hl.Exposed > fl.Exposed {
			t.Fatalf("%s: Hydra absolute exposed comm should not exceed FAB's (M %.2fs vs %.2fs, L %.2fs vs %.2fs)",
				bm, hm.Exposed, fm.Exposed, hl.Exposed, fl.Exposed)
		}
		if share(hl) > share(fl)+1e-9 {
			t.Fatalf("%s: Hydra-L comm share %.3f should not exceed FAB-L's %.3f", bm, share(hl), share(fl))
		}
		// FAB-L's share grows dramatically over FAB-M's.
		if share(fl) < 2*share(fm) {
			t.Fatalf("%s: FAB-L comm share %.3f should dwarf FAB-M's %.3f", bm, share(fl), share(fm))
		}
		// Hydra is faster than FAB at the same scale.
		if hm.RelToFAB >= 1 || hl.RelToFAB >= 1 {
			t.Fatalf("%s: Hydra should be below FAB (M %.2f, L %.2f)", bm, hm.RelToFAB, hl.RelToFAB)
		}
	}
	// Paper headline: Hydra-M comm overhead ~0.04%, Hydra-L ~1.4% on OPT.
	opt := byKey["OPT-6.7B/Hydra-M"]
	if s := opt.Exposed / (opt.Compute + opt.Exposed); s > 0.005 {
		t.Fatalf("OPT Hydra-M comm share %.4f should be tiny", s)
	}
	optL := byKey["OPT-6.7B/Hydra-L"]
	if s := optL.Exposed / (optL.Compute + optL.Exposed); s > 0.04 {
		t.Fatalf("OPT Hydra-L comm share %.4f should stay below ~4%%", s)
	}
	if txt := FormatFig8(entries); !strings.Contains(txt, "rel-to-FAB") {
		t.Fatal("format output incomplete")
	}
}

func TestFig9Sweep(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep in short mode")
	}
	sweep, err := Fig9(model.ResNet50(), []int{1, 4, 16, 64})
	if err != nil {
		t.Fatal(err)
	}
	// Efficiency improves with card count, and ConvBN scales faster than Boot
	// (Fig. 9(a)).
	last := len(sweep.Cards) - 1
	if sweep.Total[last] <= sweep.Total[1] {
		t.Fatal("total speedup should grow with cards")
	}
	if sweep.Speedup["ConvBN"][last] <= sweep.Speedup["Boot"][last] {
		t.Fatalf("ConvBN (%.1f) should outscale Boot (%.1f)",
			sweep.Speedup["ConvBN"][last], sweep.Speedup["Boot"][last])
	}
	// Comm share grows with cards (Fig. 9(c)).
	if sweep.CommShare[last] <= sweep.CommShare[0] {
		t.Fatal("comm share should grow with cards")
	}
	if txt := FormatFig9(sweep); !strings.Contains(txt, "comm share") {
		t.Fatal("format output incomplete")
	}
}

func TestFig9CommShareOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep in short mode")
	}
	// Fig. 9(c): ResNet-18's communication share grows fastest; OPT-6.7B's
	// slowest.
	r18, err := Fig9(model.ResNet18(), []int{1, 64})
	if err != nil {
		t.Fatal(err)
	}
	opt, err := Fig9(model.OPT67B(), []int{1, 64})
	if err != nil {
		t.Fatal(err)
	}
	if r18.CommShare[1] <= opt.CommShare[1] {
		t.Fatalf("ResNet-18 comm share (%.3f) should exceed OPT's (%.3f) at 64 cards",
			r18.CommShare[1], opt.CommShare[1])
	}
}

func TestTable3Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("full matrix in short mode")
	}
	res, err := Table3()
	if err != nil {
		t.Fatal(err)
	}
	get := func(acc, bm string) float64 { return res.Rows[acc][bm].EDAP }
	// Anchor holds by construction.
	if v := get("Hydra-S", "ResNet-18"); v < 0.119 || v > 0.121 {
		t.Fatalf("anchor broken: %v", v)
	}
	for _, bm := range baseline.Benchmarks {
		// Efficiency degrades with scale-out (Table III: S best, L worst).
		if !(get("Hydra-S", bm) <= get("Hydra-M", bm) && get("Hydra-M", bm) <= get("Hydra-L", bm)) {
			t.Fatalf("%s: EDAP should grow S<=M<=L: %v %v %v", bm, get("Hydra-S", bm), get("Hydra-M", bm), get("Hydra-L", bm))
		}
		// All Hydra prototypes beat CraterLake, BTS and ARK.
		for _, asic := range []string{"CraterLake", "BTS", "ARK"} {
			if get("Hydra-M", bm) >= get(asic, bm) {
				t.Fatalf("%s: Hydra-M EDAP %.2f should beat %s %.2f", bm, get("Hydra-M", bm), asic, get(asic, bm))
			}
		}
	}
	// On OPT-6.7B even Hydra-L beats SHARP (paper: by 12.2x).
	if get("Hydra-L", "OPT-6.7B") >= get("SHARP", "OPT-6.7B") {
		t.Fatal("Hydra-L should beat SHARP on OPT-6.7B EDAP")
	}
	if txt := res.Format(); !strings.Contains(txt, "EDAP") {
		t.Fatal("format output incomplete")
	}
}

func TestTable5Shape(t *testing.T) {
	rows, err := Table5()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("expected 4 logSlots rows, got %d", len(rows))
	}
	for _, row := range rows {
		s := row.Choice["Hydra-S"]
		m := row.Choice["Hydra-M"]
		l := row.Choice["Hydra-L"]
		sum := func(xs []int) int {
			t := 0
			for _, x := range xs {
				t += x
			}
			return t
		}
		// Table V: bs shrinks as cards grow.
		if sum(m.BS) > sum(s.BS) || sum(l.BS) > sum(m.BS) {
			t.Fatalf("logSlots %d: bs should shrink with cards: S=%v M=%v L=%v", row.LogSlots, s.BS, m.BS, l.BS)
		}
		// Hydra-L runs with minimal baby steps (bs ∈ {1,2} in the paper).
		for _, bs := range l.BS {
			if bs > 2 {
				t.Fatalf("logSlots %d: Hydra-L bs %v should be minimal", row.LogSlots, l.BS)
			}
		}
	}
	// Hydra-S reproduces the paper's algorithmic optimum: (16,16,16)/(4,4,4)
	// at logSlots 12 and (32,32,32)/(8,8,8) at logSlots 15.
	s12 := rows[0].Choice["Hydra-S"]
	for i := 0; i < 3; i++ {
		if s12.Radix[i] != 16 || s12.BS[i] != 4 {
			t.Fatalf("logSlots 12 Hydra-S %v/%v, want (16,16,16)/(4,4,4)", s12.Radix, s12.BS)
		}
	}
	s15 := rows[3].Choice["Hydra-S"]
	for i := 0; i < 3; i++ {
		if s15.Radix[i] != 32 || s15.BS[i] != 8 {
			t.Fatalf("logSlots 15 Hydra-S %v/%v, want (32,32,32)/(8,8,8)", s15.Radix, s15.BS)
		}
	}
	if txt := FormatTable5(rows); !strings.Contains(txt, "logSlots") {
		t.Fatal("format output incomplete")
	}
}

func TestFormatTable4(t *testing.T) {
	txt := FormatTable4()
	for _, want := range []string{"DSP", "96.5", "BRAM", "URAMs"} {
		if !strings.Contains(txt, want) {
			t.Fatalf("table IV missing %q:\n%s", want, txt)
		}
	}
}

func TestTable2Format(t *testing.T) {
	if testing.Short() {
		t.Skip("full matrix in short mode")
	}
	txt := table2(t).Format()
	for _, want := range []string{"CraterLake", "Hydra-L", "ResNet-50"} {
		if !strings.Contains(txt, want) {
			t.Fatalf("table II missing %q", want)
		}
	}
}

func TestResNet20MotivatingClaim(t *testing.T) {
	// Section II: "for the ResNet-20 for CIFAR-10 ... Poseidon and FAB
	// achieve a performance of nearly 3 seconds". Poseidon lands on the
	// claim; our FAB profile (calibrated on the ResNet-18 row of Table II)
	// runs small models relatively slower than the FAB paper's own 4.4 s,
	// so its band is wider.
	bands := map[string][2]float64{"Poseidon": {2.0, 4.5}, "FAB-S": {3.0, 10.0}}
	for _, p := range []Prototype{Poseidon(), FABS()} {
		res, err := p.Run(model.ResNet20())
		if err != nil {
			t.Fatal(err)
		}
		sec := res.Makespan * p.ReportScale
		band := bands[p.Name]
		if sec < band[0] || sec > band[1] {
			t.Fatalf("%s: ResNet-20 takes %.2f s, want within [%g, %g]", p.Name, sec, band[0], band[1])
		}
		t.Logf("%s: ResNet-20 in %.2f s", p.Name, sec)
	}
}
