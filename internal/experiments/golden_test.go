package experiments

// Golden-regression guard for the reproduced evaluation: the formatted
// Table II, Fig. 6 and Table V outputs are snapshotted under testdata/ and
// every run must regenerate them byte-for-byte. Performance refactors (like
// the limb-parallel execution layer) therefore cannot silently shift the
// numbers this repository claims to reproduce. After an *intentional* model
// change, refresh the snapshots with `make golden-update` (or
// `go test ./internal/experiments/ -run TestGolden -update`) and review the
// diff like any other code change.

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden snapshots under testdata/")

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden snapshot %s (run with -update to create): %v", path, err)
	}
	if got != string(want) {
		t.Errorf("%s drifted from golden snapshot.\n--- got ---\n%s\n--- want ---\n%s\nIf the change is intentional, refresh with `make golden-update`.",
			name, got, want)
	}
}

func TestGoldenTable2(t *testing.T) {
	res, err := Table2()
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "table2.golden", res.Format())
}

func TestGoldenFig6(t *testing.T) {
	series, err := Fig6()
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "fig6.golden", FormatFig6(series))
}

func TestGoldenTable5(t *testing.T) {
	rows, err := Table5()
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "table5.golden", FormatTable5(rows))
}
