package experiments

import (
	"fmt"
	"sort"
	"strings"

	"hydra/internal/model"
)

// ---------------------------------------------------------------------------
// Fig. 6 — key-procedure speedups normalized to Hydra-S.
// ---------------------------------------------------------------------------

// Fig6Series holds per-procedure speedups of one benchmark.
type Fig6Series struct {
	Benchmark string
	Labels    []string
	SpeedupM  map[string]float64
	SpeedupL  map[string]float64
	TotalM    float64
	TotalL    float64
}

// Fig6 measures the per-procedure speedup of Hydra-M and Hydra-L over
// Hydra-S for every benchmark.
func Fig6() ([]Fig6Series, error) {
	var out []Fig6Series
	for _, net := range model.Benchmarks() {
		base, err := HydraS().Run(net)
		if err != nil {
			return nil, err
		}
		m, err := HydraM().Run(net)
		if err != nil {
			return nil, err
		}
		l, err := HydraL().Run(net)
		if err != nil {
			return nil, err
		}
		bs, ms, ls := base.StepSpanByName(), m.StepSpanByName(), l.StepSpanByName()
		s := Fig6Series{
			Benchmark: net.Name,
			Labels:    net.Labels(),
			SpeedupM:  map[string]float64{},
			SpeedupL:  map[string]float64{},
			TotalM:    base.Makespan / m.Makespan,
			TotalL:    base.Makespan / l.Makespan,
		}
		for _, lab := range s.Labels {
			s.SpeedupM[lab] = bs[lab] / ms[lab]
			s.SpeedupL[lab] = bs[lab] / ls[lab]
		}
		out = append(out, s)
	}
	return out, nil
}

// FormatFig6 renders the speedup series.
func FormatFig6(series []Fig6Series) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 6: key-procedure speedup normalized to Hydra-S\n")
	for _, s := range series {
		fmt.Fprintf(&b, "%s (total: M %.2fx, L %.2fx)\n", s.Benchmark, s.TotalM, s.TotalL)
		for _, lab := range s.Labels {
			fmt.Fprintf(&b, "  %-10s M %6.2fx   L %6.2fx\n", lab, s.SpeedupM[lab], s.SpeedupL[lab])
		}
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// Fig. 7 — full-system energy consumption and breakdown.
// ---------------------------------------------------------------------------

// Fig7Entry is the energy breakdown of one benchmark on one prototype.
type Fig7Entry struct {
	Benchmark string
	Prototype string
	TotalJ    float64
	Breakdown map[string]float64 // unit -> Joules
}

// Fig7 measures the energy breakdown (NTT/MA/MM/Auto/HBM/Comm/Static) of
// every benchmark on the three Hydra prototypes.
func Fig7() ([]Fig7Entry, error) {
	var out []Fig7Entry
	for _, net := range model.Benchmarks() {
		for _, p := range []Prototype{HydraS(), HydraM(), HydraL()} {
			r, err := p.Run(net)
			if err != nil {
				return nil, err
			}
			out = append(out, Fig7Entry{
				Benchmark: net.Name,
				Prototype: p.Name,
				TotalJ:    r.TotalEnergy(),
				Breakdown: r.EnergyByUnit,
			})
		}
	}
	return out, nil
}

// EnergyUnits lists the Fig. 7 stack components in display order.
var EnergyUnits = []string{"NTT", "MM", "MA", "Auto", "HBM", "Comm", "Static"}

// FormatFig7 renders the breakdown as percentage stacks.
func FormatFig7(entries []Fig7Entry) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 7: full-system energy breakdown (%% of total)\n")
	fmt.Fprintf(&b, "%-10s %-9s %10s", "Benchmark", "Proto", "Total(kJ)")
	for _, u := range EnergyUnits {
		fmt.Fprintf(&b, " %7s", u)
	}
	b.WriteByte('\n')
	for _, e := range entries {
		fmt.Fprintf(&b, "%-10s %-9s %10.1f", e.Benchmark, e.Prototype, e.TotalJ/1e3)
		for _, u := range EnergyUnits {
			fmt.Fprintf(&b, " %6.1f%%", 100*e.Breakdown[u]/e.TotalJ)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// Fig. 8 — scalability comparison (comm vs compute, Hydra vs FAB).
// ---------------------------------------------------------------------------

// Fig8Entry is the comm/compute split of one benchmark on one machine,
// overall and per procedure, normalized to the FAB machine of the same size.
type Fig8Entry struct {
	Benchmark  string
	Prototype  string
	Compute    float64 // busiest-card compute seconds (unscaled)
	Exposed    float64 // communication time not hidden (unscaled)
	PerLabel   map[string][2]float64
	LabelOrder []string
	RelToFAB   float64 // makespan normalized to FAB of the same scale
}

// Fig8 runs Hydra-M vs FAB-M and Hydra-L vs FAB-L on all benchmarks,
// reporting computation and exposed-communication shares per procedure.
func Fig8() ([]Fig8Entry, error) {
	pairs := [][2]Prototype{{HydraM(), FABM()}, {HydraL(), FABL()}}
	var out []Fig8Entry
	for _, net := range model.Benchmarks() {
		for _, pair := range pairs {
			fabRes, err := pair[1].Run(net)
			if err != nil {
				return nil, err
			}
			for pi, p := range pair {
				r := fabRes
				if pi == 0 {
					if r, err = p.Run(net); err != nil {
						return nil, err
					}
				}
				e := Fig8Entry{
					Benchmark:  net.Name,
					Prototype:  p.Name,
					Compute:    r.MaxComputeBusy(),
					Exposed:    r.ExposedComm(),
					PerLabel:   map[string][2]float64{},
					LabelOrder: net.Labels(),
					RelToFAB:   r.Makespan / fabRes.Makespan,
				}
				for _, st := range r.Steps {
					v := e.PerLabel[st.Name]
					v[0] += st.ComputeMax
					v[1] += st.Exposed()
					e.PerLabel[st.Name] = v
				}
				out = append(out, e)
			}
		}
	}
	return out, nil
}

// FormatFig8 renders the comparison.
func FormatFig8(entries []Fig8Entry) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 8: computation vs exposed communication, Hydra vs FAB\n")
	for _, e := range entries {
		total := e.Compute + e.Exposed
		fmt.Fprintf(&b, "%-10s %-8s rel-to-FAB %5.2f  comm %5.1f%%  [", e.Benchmark, e.Prototype, e.RelToFAB, 100*e.Exposed/total)
		for i, lab := range e.LabelOrder {
			v := e.PerLabel[lab]
			share := 0.0
			if v[0]+v[1] > 0 {
				share = 100 * v[1] / (v[0] + v[1])
			}
			if i > 0 {
				b.WriteString(" ")
			}
			fmt.Fprintf(&b, "%s %.1f%%", lab, share)
		}
		b.WriteString("]\n")
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// Fig. 9 — scalability analysis.
// ---------------------------------------------------------------------------

// Fig9Sweep holds speedup-vs-cards curves per procedure for one benchmark
// (Fig. 9(a)(b)) and the comm-share curve (Fig. 9(c)).
type Fig9Sweep struct {
	Benchmark string
	Cards     []int
	Speedup   map[string][]float64 // label -> speedup per card count
	Total     []float64
	CommShare []float64
}

// DefaultSweepCards is the card axis of Fig. 9.
var DefaultSweepCards = []int{1, 2, 4, 8, 16, 32, 64}

// Fig9 sweeps card counts for the given benchmark.
func Fig9(net model.Network, cards []int) (*Fig9Sweep, error) {
	if len(cards) == 0 {
		cards = DefaultSweepCards
	}
	sweep := &Fig9Sweep{Benchmark: net.Name, Cards: cards, Speedup: map[string][]float64{}}
	var baseSpans map[string]float64
	var baseTotal float64
	for i, n := range cards {
		r, err := HydraN(n).Run(net)
		if err != nil {
			return nil, err
		}
		spans := r.StepSpanByName()
		if i == 0 {
			baseSpans, baseTotal = spans, r.Makespan
		}
		for _, lab := range net.Labels() {
			sweep.Speedup[lab] = append(sweep.Speedup[lab], baseSpans[lab]/spans[lab])
		}
		sweep.Total = append(sweep.Total, baseTotal/r.Makespan)
		sweep.CommShare = append(sweep.CommShare, r.CommShare())
	}
	return sweep, nil
}

// FormatFig9 renders one sweep.
func FormatFig9(s *Fig9Sweep) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 9: scalability of %s\n", s.Benchmark)
	fmt.Fprintf(&b, "%-12s", "cards")
	for _, c := range s.Cards {
		fmt.Fprintf(&b, " %8d", c)
	}
	b.WriteByte('\n')
	var labels []string
	for lab := range s.Speedup {
		labels = append(labels, lab)
	}
	sort.Strings(labels)
	for _, lab := range labels {
		fmt.Fprintf(&b, "%-12s", lab)
		for _, v := range s.Speedup[lab] {
			fmt.Fprintf(&b, " %7.2fx", v)
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "%-12s", "total")
	for _, v := range s.Total {
		fmt.Fprintf(&b, " %7.2fx", v)
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "%-12s", "comm share")
	for _, v := range s.CommShare {
		fmt.Fprintf(&b, " %7.2f%%", 100*v)
	}
	b.WriteByte('\n')
	return b.String()
}
