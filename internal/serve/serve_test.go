package serve

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/cmplx"
	"sync"
	"testing"
	"time"

	"hydra/internal/ckks"
	"hydra/internal/cluster"
	"hydra/internal/hw"
	"hydra/internal/sim"
)

func newSimServer(t *testing.T, cards, cps int) *Server {
	t.Helper()
	cfg := sim.HydraConfig()
	s, err := New(Config{
		Fleet:     hw.Fleet{Cards: cards, CardsPerServer: cps},
		Backend:   &SimBackend{Cfg: cfg},
		Estimator: &cfg,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

// TestSubmitRunsSimJob: the basic happy path — a job is admitted, priced by
// the estimator, granted cards, simulated, and its result carries the
// analytic makespan.
func TestSubmitRunsSimJob(t *testing.T) {
	s := newSimServer(t, 8, 8)
	tk, err := s.Submit(&Job{ID: "j1", Cards: 2, Build: tinyBuild})
	if err != nil {
		t.Fatal(err)
	}
	res, err := tk.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Backend != "sim" || len(res.Cards) != 2 {
		t.Errorf("result: backend=%q cards=%v", res.Backend, res.Cards)
	}
	if res.SimSeconds <= 0 {
		t.Errorf("sim makespan not recorded: %g", res.SimSeconds)
	}
	if res.EstCost <= 0 {
		t.Errorf("estimator did not price the job: %g", res.EstCost)
	}
	if math.Abs(res.EstCost-res.SimSeconds) > res.SimSeconds {
		t.Errorf("estimate %g wildly off the priced makespan %g", res.EstCost, res.SimSeconds)
	}
}

// TestSubmitValidation: the typed admission failures.
func TestSubmitValidation(t *testing.T) {
	s := newSimServer(t, 4, 4)

	if _, err := s.Submit(&Job{ID: "too-big", Cards: 5, Build: tinyBuild}); !errors.Is(err, ErrInfeasible) {
		t.Errorf("oversized job: got %v, want ErrInfeasible", err)
	}
	if _, err := s.Submit(&Job{ID: "no-builder", Cards: 1}); err == nil {
		t.Error("builderless job admitted")
	}
	if _, err := s.Submit(&Job{Cards: 1, Build: tinyBuild}); err == nil {
		t.Error("unnamed job admitted")
	}

	// A deadline the estimate already rules out is refused at the door.
	late := &Job{ID: "late", Cards: 2, Build: tinyBuild, EstCost: 3600, Deadline: time.Now().Add(time.Second)}
	if _, err := s.Submit(late); !errors.Is(err, ErrDeadline) {
		t.Errorf("unmeetable deadline: got %v, want ErrDeadline", err)
	}

	s.Close()
	if _, err := s.Submit(&Job{ID: "after-close", Cards: 1, Build: tinyBuild}); !errors.Is(err, ErrClosed) {
		t.Errorf("submit after close: got %v, want ErrClosed", err)
	}
}

// TestPriorityOrdering: with the fleet wedged, the high-priority latecomer
// runs before the earlier low-priority job once cards free up.
func TestPriorityOrdering(t *testing.T) {
	be := &gateBackend{gate: make(chan struct{})}
	s, err := New(Config{Fleet: hw.Fleet{Cards: 2, CardsPerServer: 2}, Backend: be})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	first, err := s.Submit(&Job{ID: "first", Cards: 2, Build: tinyBuild})
	if err != nil {
		t.Fatal(err)
	}
	low, err := s.Submit(&Job{ID: "low", Priority: 0, Cards: 2, Build: tinyBuild})
	if err != nil {
		t.Fatal(err)
	}
	high, err := s.Submit(&Job{ID: "high", Priority: 5, Cards: 2, Build: tinyBuild})
	if err != nil {
		t.Fatal(err)
	}

	close(be.gate)
	for _, tk := range []*Ticket{first, low, high} {
		if _, err := tk.Wait(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	be.mu.Lock()
	order := fmt.Sprint(be.started)
	be.mu.Unlock()
	if order != "[first high low]" {
		t.Errorf("execution order %s, want [first high low]", order)
	}
}

// TestBackfillEndToEnd: a small job lands on the idle cards a ranked-ahead
// big job cannot use, and its result says so.
func TestBackfillEndToEnd(t *testing.T) {
	be := &gateBackend{gate: make(chan struct{})}
	s, err := New(Config{Fleet: hw.Fleet{Cards: 6, CardsPerServer: 6}, Backend: be})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	big1, err := s.Submit(&Job{ID: "big1", Cards: 4, Build: tinyBuild})
	if err != nil {
		t.Fatal(err)
	}
	big2, err := s.Submit(&Job{ID: "big2", Priority: 5, Cards: 4, Build: tinyBuild})
	if err != nil {
		t.Fatal(err)
	}
	small, err := s.Submit(&Job{ID: "small", Priority: 0, Cards: 2, Build: tinyBuild})
	if err != nil {
		t.Fatal(err)
	}

	close(be.gate)
	res, err := small.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Backfilled {
		t.Error("small job ran on idle cards past a waiting big job but was not marked backfilled")
	}
	if fmt.Sprint(res.Cards) != "[4 5]" {
		t.Errorf("small job cards %v, want the leftover pair [4 5]", res.Cards)
	}
	for _, tk := range []*Ticket{big1, big2} {
		if _, err := tk.Wait(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
}

// TestTimeoutCancelsRunningJob: a wedged job's timeout fires, the ticket
// reports the cancellation, and the freed cards serve the next job.
func TestTimeoutCancelsRunningJob(t *testing.T) {
	be := &gateBackend{gate: make(chan struct{})} // never opened
	s, err := New(Config{Fleet: hw.Fleet{Cards: 2, CardsPerServer: 2}, Backend: be})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	wedged, err := s.Submit(&Job{ID: "wedged", Cards: 2, Timeout: 30 * time.Millisecond, Build: tinyBuild})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := wedged.Wait(context.Background()); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("wedged job: got %v, want DeadlineExceeded", err)
	}

	// The cards must be back in the pool: a second full-width job is granted
	// and reaches the backend (where it wedges and times out in turn).
	next, err := s.Submit(&Job{ID: "next", Cards: 2, Timeout: 30 * time.Millisecond, Build: tinyBuild})
	if err != nil {
		t.Fatalf("cards were not recycled after the timeout: %v", err)
	}
	if _, err := next.Wait(context.Background()); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("next job: got %v, want DeadlineExceeded", err)
	}
	be.mu.Lock()
	started := fmt.Sprint(be.started)
	be.mu.Unlock()
	if started != "[wedged next]" {
		t.Errorf("backend saw %s, want [wedged next]", started)
	}
	if snap := s.Metrics().Snapshot(); snap.Canceled != 2 {
		t.Errorf("canceled counter = %d, want 2", snap.Canceled)
	}
}

// TestClusterBackendFunctional runs a real distributed CKKS convolution
// through the serving layer and checks the decrypted output against the
// single-card computation — the Backend seam keeps the functional runtime
// and the analytic model interchangeable.
func TestClusterBackendFunctional(t *testing.T) {
	const cards = 2
	rotations := []int{0, 1, 2, 3}
	params := ckks.TestParameters(8, 3)
	kg := ckks.NewKeyGenerator(params, 1)
	sk := kg.GenSecretKey()
	pk := kg.GenPublicKey(sk)
	rlk := kg.GenRelinearizationKey(sk)
	rtks := kg.GenRotationKeys(sk, rotations, false)
	enc := ckks.NewEncoder(params)
	encr := ckks.NewEncryptor(params, pk, 2)
	decr := ckks.NewDecryptor(params, sk)
	eval := ckks.NewEvaluator(params, rlk, rtks)

	vals := make([]complex128, params.Slots())
	for i := range vals {
		vals[i] = complex(math.Sin(float64(i)/3), 0)
	}
	pt, err := enc.EncodeAtLevel(vals, params.DefaultScale(), params.MaxLevel())
	if err != nil {
		t.Fatal(err)
	}
	ct := encr.Encrypt(pt)

	layer := cluster.ConvLayer{Rotations: rotations}
	for k := range rotations {
		w := make([]complex128, params.Slots())
		for i := range w {
			w[i] = complex(0.1*float64(k+1), 0)
		}
		wpt, err := enc.EncodeAtLevel(w, params.DefaultScale(), ct.Level())
		if err != nil {
			t.Fatal(err)
		}
		layer.Weights = append(layer.Weights, wpt)
	}

	var got *ckks.Ciphertext
	job := &Job{
		ID:    "conv-functional",
		Cards: cards,
		BuildCluster: func(n int) (*ClusterJob, error) {
			progs, err := cluster.BuildConv(n, layer)
			if err != nil {
				return nil, err
			}
			return &ClusterJob{
				Programs: progs,
				Preload: func(cl *cluster.Cluster) error {
					for c := 0; c < n; c++ {
						cl.Load(c, "x", ct)
					}
					return nil
				},
				Collect: func(cl *cluster.Cluster) error {
					out, err := cl.Get(0, "out0")
					got = out
					return err
				},
			}, nil
		},
	}

	s, err := New(Config{
		Fleet:   hw.Fleet{Cards: cards, CardsPerServer: cards},
		Backend: &ClusterBackend{Params: params, Eval: eval},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	tk, err := s.Submit(job)
	if err != nil {
		t.Fatal(err)
	}
	res, err := tk.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Backend != "cluster" {
		t.Errorf("backend = %q, want cluster", res.Backend)
	}

	single := eval.Rescale(eval.MulPlain(eval.Rotate(ct, rotations[0]), layer.Weights[0]))
	want := enc.Decode(decr.Decrypt(single))
	dec := enc.Decode(decr.Decrypt(got))
	maxErr := 0.0
	for i := range dec {
		if e := cmplx.Abs(dec[i] - want[i]); e > maxErr {
			maxErr = e
		}
	}
	if maxErr > 1e-5 {
		t.Errorf("distributed conv drifted from single-card: max slot error %g", maxErr)
	}
}

// TestCloseRejectsQueuedJobs: closing the server fails the queued backlog
// with ErrClosed and cancels the running job.
func TestCloseRejectsQueuedJobs(t *testing.T) {
	be := &gateBackend{gate: make(chan struct{})} // never opened
	s, err := New(Config{Fleet: hw.Fleet{Cards: 2, CardsPerServer: 2}, Backend: be})
	if err != nil {
		t.Fatal(err)
	}

	running, err := s.Submit(&Job{ID: "running", Cards: 2, Build: tinyBuild})
	if err != nil {
		t.Fatal(err)
	}
	queued, err := s.Submit(&Job{ID: "queued", Cards: 2, Build: tinyBuild})
	if err != nil {
		t.Fatal(err)
	}

	s.Close()
	if _, err := queued.Wait(context.Background()); !errors.Is(err, ErrClosed) {
		t.Errorf("queued job after close: got %v, want ErrClosed", err)
	}
	if _, err := running.Wait(context.Background()); !errors.Is(err, context.Canceled) {
		t.Errorf("running job after close: got %v, want context.Canceled", err)
	}
}

// TestFakeClockDeadlineExpiry drives queue expiry with the server's clock
// hook: a queued job whose deadline passes (by fake time) is shed on the
// next dispatch, without any real waiting.
func TestFakeClockDeadlineExpiry(t *testing.T) {
	be := &gateBackend{gate: make(chan struct{})}
	s, err := New(Config{Fleet: hw.Fleet{Cards: 2, CardsPerServer: 2}, Backend: be})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	var mu sync.Mutex
	now := time.Unix(9000, 0)
	s.now = func() time.Time { mu.Lock(); defer mu.Unlock(); return now }

	wedge, err := s.Submit(&Job{ID: "wedge", Cards: 2, Build: tinyBuild})
	if err != nil {
		t.Fatal(err)
	}
	doomed, err := s.Submit(&Job{ID: "doomed", Cards: 2, Deadline: now.Add(time.Second), Build: tinyBuild})
	if err != nil {
		t.Fatal(err)
	}

	// Jump the fake clock past the deadline, then free the fleet: dispatch
	// must shed the expired job instead of running it.
	mu.Lock()
	now = now.Add(time.Minute)
	mu.Unlock()
	close(be.gate)

	if _, err := wedge.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := doomed.Wait(context.Background()); !errors.Is(err, ErrDeadline) {
		t.Errorf("expired job: got %v, want ErrDeadline", err)
	}
	if snap := s.Metrics().Snapshot(); snap.Expired != 1 {
		t.Errorf("expired counter = %d, want 1", snap.Expired)
	}
}
