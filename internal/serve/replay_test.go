package serve

import (
	"fmt"
	"testing"
	"time"

	"hydra/internal/hw"
	"hydra/internal/sim"
)

// flatCost is a synthetic pricing function with the standard batch
// amortization shape: base seconds per shape, dilated by a + (1-a)*batch
// with a = 0.4. It keeps the replay unit tests independent of the analytic
// machine model (SimCost has its own test).
func flatCost(base map[string]float64) CostFn {
	return func(job *Job, cards []int, batch int) (float64, error) {
		b, ok := base[job.BatchKey]
		if !ok {
			return 0, fmt.Errorf("no base cost for shape %q", job.BatchKey)
		}
		return b * (0.4 + 0.6*float64(batch)), nil
	}
}

// replayShapes is a conv-heavy mix with stub builders (the synthetic cost
// function never builds programs; validate just needs Build non-nil).
func replayShapes() []Shape {
	stub := tinyBuild
	return []Shape{
		{Name: "conv", Weight: 8, Cards: 2, Priority: 0, Build: stub},
		{Name: "bsgs", Weight: 2, Cards: 4, Priority: 0, Build: stub},
	}
}

func replayFleet(cards int) hw.Fleet {
	return hw.Fleet{Cards: cards, CardsPerServer: 8}
}

var replayBase = map[string]float64{"conv": 0.020, "bsgs": 0.060}

// TestReplayDeterminism: the virtual-time engine is a pure function of
// (workload, config) — two runs of the same seed produce byte-identical
// stats, and a different seed diverges.
func TestReplayDeterminism(t *testing.T) {
	gen := func(seed int64) *ReplayStats {
		w := Workload{Seed: seed, Rate: 400, Shapes: replayShapes()}
		arrivals, err := w.GenerateN(2000)
		if err != nil {
			t.Fatal(err)
		}
		st, err := Replay(arrivals, ReplayConfig{
			Fleet:      replayFleet(64),
			QueueDepth: 256,
			Coalesce:   4,
			Cost:       flatCost(replayBase),
		})
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	a, b := gen(11), gen(11)
	if fmt.Sprintf("%+v", a) != fmt.Sprintf("%+v", b) {
		t.Fatalf("same seed diverged:\n%+v\n%+v", a, b)
	}
	if fmt.Sprintf("%+v", a) == fmt.Sprintf("%+v", gen(12)) {
		t.Fatal("different seeds produced identical replays")
	}
}

// TestReplayConservation checks the job-accounting identities on a saturated
// replay: every offered job is admitted or shed, every admitted job
// completes (no deadlines in the mix), and utilization stays physical.
func TestReplayConservation(t *testing.T) {
	w := Workload{Seed: 3, Rate: 2000, Shapes: replayShapes()} // far beyond capacity
	arrivals, err := w.GenerateN(5000)
	if err != nil {
		t.Fatal(err)
	}
	st, err := Replay(arrivals, ReplayConfig{
		Fleet:      replayFleet(32),
		QueueDepth: 128,
		Coalesce:   1,
		Cost:       flatCost(replayBase),
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Offered != 5000 {
		t.Fatalf("offered %d, want 5000", st.Offered)
	}
	if st.Admitted+st.Shed != st.Offered {
		t.Fatalf("admitted %d + shed %d != offered %d", st.Admitted, st.Shed, st.Offered)
	}
	if st.Completed != st.Admitted {
		t.Fatalf("completed %d != admitted %d (no deadlines in mix)", st.Completed, st.Admitted)
	}
	if st.Shed == 0 {
		t.Fatal("a 2000/s stream into a 32-card fleet must shed load")
	}
	if st.Utilization <= 0 || st.Utilization > 1.0001 {
		t.Fatalf("utilization %v out of (0,1]", st.Utilization)
	}
	if st.Grants == 0 || st.Coalesced != 0 || st.Refills != 0 {
		t.Fatalf("coalesce=1 must not batch: %+v", st)
	}
}

// TestReplayCoalescingRaisesThroughput is the continuous-batching
// acceptance check, in-tree: on a conv-heavy saturated workload, the
// coalescing scheduler must complete measurably more jobs per virtual
// second than the per-job-grant ablation, and must actually batch.
func TestReplayCoalescingRaisesThroughput(t *testing.T) {
	run := func(coalesce int) *ReplayStats {
		w := Workload{Seed: 5, Rate: 3000, Shapes: replayShapes()}
		arrivals, err := w.GenerateN(10000)
		if err != nil {
			t.Fatal(err)
		}
		st, err := Replay(arrivals, ReplayConfig{
			Fleet:      replayFleet(64),
			QueueDepth: 1024,
			Coalesce:   coalesce,
			Cost:       flatCost(replayBase),
		})
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	solo, batched := run(1), run(8)
	if batched.Coalesced == 0 || batched.Refills == 0 {
		t.Fatalf("coalesce=8 on a saturated conv stream must batch and refill: %+v", batched)
	}
	if batched.JobsPerSec < solo.JobsPerSec*1.05 {
		t.Fatalf("coalescing did not raise throughput: solo %.1f jobs/s, batched %.1f jobs/s",
			solo.JobsPerSec, batched.JobsPerSec)
	}
}

// TestReplayClosedLoop drives a fixed user population to a completion
// target and checks the closed-loop identities: the replay terminates, the
// goodput tracks the think-time-bounded offered load, and determinism holds.
func TestReplayClosedLoop(t *testing.T) {
	run := func() *ReplayStats {
		st, err := ReplayClosed(400, 3000, 100*time.Millisecond, 21, replayShapes(), ReplayConfig{
			Fleet:      replayFleet(64),
			QueueDepth: 512,
			Coalesce:   4,
			Cost:       flatCost(replayBase),
		})
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	st := run()
	if st.Completed < 3000 {
		t.Fatalf("closed loop stopped early: %d completed", st.Completed)
	}
	if st.Admitted+st.Shed != st.Offered {
		t.Fatalf("admitted %d + shed %d != offered %d", st.Admitted, st.Shed, st.Offered)
	}
	if st.Makespan <= 0 || st.JobsPerSec <= 0 {
		t.Fatalf("degenerate stats: %+v", st)
	}
	if fmt.Sprintf("%+v", st) != fmt.Sprintf("%+v", run()) {
		t.Fatal("closed-loop replay is not deterministic")
	}
}

// TestSimCostPricesAndCaches exercises the analytic pricing path: a real
// program priced on single-server vs spanning placements must cost more
// when spanning, batch must amortize (batched cost below batch * solo), and
// the memoization must hit for same-signature grants.
func TestSimCostPricesAndCaches(t *testing.T) {
	cost := SimCost(sim.HydraConfig(), 8)
	job := &Job{ID: "t", Tenant: "tiny", BatchKey: "tiny", Cards: 4, Build: tinyBuild}

	local, err := cost(job, []int{0, 1, 2, 3}, 1)
	if err != nil {
		t.Fatal(err)
	}
	span, err := cost(job, []int{6, 7, 8, 9}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if span <= local {
		t.Fatalf("server-spanning grant (%.6f s) should cost more than local (%.6f s)", span, local)
	}
	b8, err := cost(job, []int{0, 1, 2, 3}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if b8 <= local || b8 >= 8*local {
		t.Fatalf("batch-8 cost %.6f s should amortize within (solo, 8*solo) = (%.6f, %.6f)", b8, local, 8*local)
	}
	// Same span signature, different physical cards: must hit the cache and
	// price identically.
	again, err := cost(job, []int{8, 9, 10, 11}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if again != local {
		t.Fatalf("cache miss on identical signature: %.9f vs %.9f", again, local)
	}
}
