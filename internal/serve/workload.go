package serve

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"hydra/internal/hw"
	"hydra/internal/mapping"
	"hydra/internal/task"
)

// Shape is one synthetic job template of a workload mix.
type Shape struct {
	Name     string
	Weight   float64 // relative arrival share
	Cards    int     // card demand
	Priority int
	Timeout  time.Duration
	// Build materializes the shape's program for a grant size.
	Build func(cards int) (*task.Program, error)
}

// DefaultShapes is the mixed serving traffic of the bench harness: the three
// job archetypes of the paper's workloads, smallest first.
//
//   - conv: one multiplexed-packing ConvBN layer (ring-broadcast mapping) —
//     the high-rate small job; it backfills into idle cards.
//   - bsgs: one BSGS matrix-vector layer (FC mapping) — the mid-size job.
//   - boot: a two-ciphertext bootstrap batch — the heavy, rotation-dominated
//     job that holds a whole server for hundreds of milliseconds.
func DefaultShapes(scheme hw.SchemeParams, card hw.CardProfile) []Shape {
	limbs := (scheme.MaxLimbs + scheme.FreshLimbs) / 2
	times := mapping.OpTimesFor(card, scheme, limbs, 0)
	return []Shape{
		{
			Name: "conv", Weight: 6, Cards: 2, Priority: 0, Build: func(cards int) (*task.Program, error) {
				b := task.NewBuilder(cards, cards)
				ctx := mapping.NewContext(b, scheme, cards)
				if err := ctx.DistributeBroadcast(64, mapping.ConvBNUnit, 4, "ConvBN"); err != nil {
					return nil, err
				}
				return b.Build(), nil
			},
		},
		{
			Name: "bsgs", Weight: 3, Cards: 4, Priority: 0, Build: func(cards int) (*task.Program, error) {
				b := task.NewBuilder(cards, cards)
				ctx := mapping.NewContext(b, scheme, cards)
				if err := ctx.FC(256, "FC"); err != nil {
					return nil, err
				}
				return b.Build(), nil
			},
		},
		{
			Name: "boot", Weight: 1, Cards: 8, Priority: 1, Build: func(cards int) (*task.Program, error) {
				b := task.NewBuilder(cards, cards)
				ctx := mapping.NewContext(b, scheme, cards)
				boot := mapping.DefaultBootstrapOptions(scheme, cards, times)
				if err := ctx.BootstrapBatch(2, boot, times, "Boot"); err != nil {
					return nil, err
				}
				return b.Build(), nil
			},
		},
	}
}

// Workload describes a synthetic open-loop arrival process: jobs arrive per
// a Poisson process of the given rate regardless of how the server keeps up
// (which is what exposes queueing and overload, unlike closed-loop drivers
// that self-throttle).
type Workload struct {
	Seed    int64
	Rate    float64 // mean arrivals per second
	Horizon time.Duration
	Shapes  []Shape
}

// Arrival is one scheduled job submission.
type Arrival struct {
	At    time.Duration // offset from the replay start
	Shape string
	Job   *Job
}

// Generate materializes the arrival sequence over the workload horizon. It
// is deterministic for a given Workload value: the same seed yields the same
// jobs at the same offsets, which the scheduler tests rely on.
func (w Workload) Generate() ([]Arrival, error) {
	if w.Horizon <= 0 {
		return nil, fmt.Errorf("serve: workload needs a positive horizon")
	}
	return w.generate(-1, w.Horizon)
}

// GenerateN materializes exactly n arrivals, ignoring the horizon — the
// saturation sweeps fix the offered-job count per measurement point rather
// than the wall span, so every point sees the same statistical weight.
func (w Workload) GenerateN(n int) ([]Arrival, error) {
	if n <= 0 {
		return nil, fmt.Errorf("serve: workload needs a positive arrival count, got %d", n)
	}
	return w.generate(n, 0)
}

// generate draws the Poisson arrival stream until n arrivals (n >= 0) or the
// horizon (n < 0) is reached. Each job's BatchKey is its shape name: jobs of
// one shape run the same builder at the same card demand, which is exactly
// the interchangeability the continuous-batching contract requires.
func (w Workload) generate(n int, horizon time.Duration) ([]Arrival, error) {
	if w.Rate <= 0 {
		return nil, fmt.Errorf("serve: workload needs a positive rate")
	}
	if len(w.Shapes) == 0 {
		return nil, fmt.Errorf("serve: workload needs at least one shape")
	}
	totalW := 0.0
	for _, sh := range w.Shapes {
		if sh.Weight <= 0 {
			return nil, fmt.Errorf("serve: shape %s needs a positive weight", sh.Name)
		}
		totalW += sh.Weight
	}
	rng := rand.New(rand.NewSource(w.Seed))
	var out []Arrival
	at := time.Duration(0)
	for i := 0; ; i++ {
		if n >= 0 && len(out) == n {
			return out, nil
		}
		// Exponential inter-arrival gap of mean 1/Rate.
		gap := -math.Log(1-rng.Float64()) / w.Rate
		at += durationOf(gap)
		if n < 0 && at > horizon {
			return out, nil
		}
		pick := rng.Float64() * totalW
		sh := w.Shapes[len(w.Shapes)-1]
		for _, cand := range w.Shapes {
			if pick < cand.Weight {
				sh = cand
				break
			}
			pick -= cand.Weight
		}
		out = append(out, Arrival{
			At:    at,
			Shape: sh.Name,
			Job: &Job{
				ID:       fmt.Sprintf("%s-%04d", sh.Name, i),
				Tenant:   sh.Name,
				Priority: sh.Priority,
				Cards:    sh.Cards,
				Timeout:  sh.Timeout,
				BatchKey: sh.Name,
				Build:    sh.Build,
			},
		})
	}
}
