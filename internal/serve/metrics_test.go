package serve

import (
	"math/rand"
	"sync"
	"testing"
	"time"
)

// TestPercentileKnownDistributions pins the nearest-rank percentile against
// distributions whose quantiles are known by construction.
func TestPercentileKnownDistributions(t *testing.T) {
	cases := []struct {
		name    string
		samples []float64
		q       float64
		want    float64
	}{
		{"empty", nil, 0.5, 0},
		{"single", []float64{7}, 0.5, 7},
		{"single-p99", []float64{7}, 0.99, 7},
		{"two-p50", []float64{1, 9}, 0.5, 1},
		{"uniform-1-100-p50", seq(1, 100), 0.5, 50},
		{"uniform-1-100-p99", seq(1, 100), 0.99, 99},
		{"uniform-1-1000-p99", seq(1, 1000), 0.99, 990},
		{"constant-p99", []float64{3, 3, 3, 3, 3}, 0.99, 3},
		{"unsorted-input", []float64{9, 1, 5, 3, 7}, 0.5, 5},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := percentile(tc.samples, tc.q); got != tc.want {
				t.Fatalf("percentile(%v, %v) = %v, want %v", tc.samples, tc.q, got, tc.want)
			}
		})
	}
}

// TestPercentileDoesNotMutateSamples guards the copy-before-sort: callers
// hold the live sample buffer under the metrics lock.
func TestPercentileDoesNotMutateSamples(t *testing.T) {
	samples := []float64{5, 1, 4, 2, 3}
	percentile(samples, 0.99)
	for i, want := range []float64{5, 1, 4, 2, 3} {
		if samples[i] != want {
			t.Fatalf("percentile reordered the caller's buffer: %v", samples)
		}
	}
}

// TestSnapshotPercentilesFromLifecycle feeds the metrics through their real
// lifecycle hooks and checks the derived percentiles land on known sample
// points of the skewed distribution.
func TestSnapshotPercentilesFromLifecycle(t *testing.T) {
	var m Metrics
	// 99 fast jobs (10ms exec) and one slow straggler (1s), queue waits
	// rising linearly 1..100ms.
	for i := 1; i <= 100; i++ {
		m.admit()
		m.startGrant(2, []time.Duration{time.Duration(i) * time.Millisecond})
		exec := 10 * time.Millisecond
		if i == 100 {
			exec = time.Second
		}
		m.jobsDone(1, exec, nil)
		m.endGrant(2)
	}
	s := m.Snapshot()
	if s.Submitted != 100 || s.Completed != 100 {
		t.Fatalf("lifecycle counters off: %+v", s)
	}
	if s.Queued != 0 || s.Running != 0 || s.CardsBusy != 0 {
		t.Fatalf("gauges should return to zero: %+v", s)
	}
	if got, want := s.QueueWaitP50, 0.050; !approxEq(got, want) {
		t.Fatalf("queue wait p50 = %v, want %v", got, want)
	}
	if got, want := s.QueueWaitP99, 0.099; !approxEq(got, want) {
		t.Fatalf("queue wait p99 = %v, want %v", got, want)
	}
	if got, want := s.ExecP50, 0.010; !approxEq(got, want) {
		t.Fatalf("exec p50 = %v, want %v", got, want)
	}
	// The p99 of 99×10ms + 1×1s is still 10ms under nearest-rank (rank 99
	// of 100); the straggler only shows at p100, which Snapshot doesn't
	// report — pin that the tail sample does NOT leak into p99.
	if got, want := s.ExecP99, 0.010; !approxEq(got, want) {
		t.Fatalf("exec p99 = %v, want %v (straggler must not leak in)", got, want)
	}
}

// TestMetricsConcurrentWriters hammers every mutator from parallel
// goroutines while snapshots race them; run under -race this pins the
// locking discipline, and afterwards the counters must balance exactly.
func TestMetricsConcurrentWriters(t *testing.T) {
	var m Metrics
	const writers = 8
	const perWriter = 500
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < perWriter; i++ {
				m.admit()
				m.startGrant(1, []time.Duration{time.Duration(rng.Intn(1000)) * time.Microsecond})
				m.jobsDone(1, time.Duration(rng.Intn(1000))*time.Microsecond, nil)
				m.endGrant(1)
				if i%100 == 0 {
					m.Snapshot()
				}
			}
		}(int64(w))
	}
	done := make(chan struct{})
	go func() {
		for {
			select {
			case <-done:
				return
			default:
				m.Snapshot()
			}
		}
	}()
	wg.Wait()
	close(done)
	s := m.Snapshot()
	if want := int64(writers * perWriter); s.Submitted != want || s.Completed != want {
		t.Fatalf("submitted %d / completed %d, want %d", s.Submitted, s.Completed, want)
	}
	if s.Queued != 0 || s.Running != 0 || s.CardsBusy != 0 {
		t.Fatalf("gauges should balance to zero: %+v", s)
	}
	if s.ExecP50 < 0 || s.ExecP99 < s.ExecP50 {
		t.Fatalf("percentiles inconsistent: p50=%v p99=%v", s.ExecP50, s.ExecP99)
	}
}

func seq(lo, hi int) []float64 {
	out := make([]float64, 0, hi-lo+1)
	for i := lo; i <= hi; i++ {
		out = append(out, float64(i))
	}
	return out
}

func approxEq(a, b float64) bool {
	d := a - b
	return d < 1e-12 && d > -1e-12
}
