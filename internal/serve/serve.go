// Package serve is the multi-tenant serving layer over the Hydra card pool:
// the control plane that turns the repo's one-job-at-a-time execution into a
// datacenter-style fleet. Procedure 2 of the paper schedules a single
// inference across all cards of one machine; serve extends it to
// many-jobs-many-cards — FHE inference jobs arrive with a priority, deadline
// and card demand, pass bounded admission control, and a work-conserving
// fleet scheduler partitions the physical card pool across the jobs that are
// running concurrently.
//
// The moving parts:
//
//   - Admission (admitQueue): a bounded queue ordered by priority, then
//     deadline, then arrival. When it is full, Submit fails fast with
//     ErrOverloaded instead of queueing unboundedly — saturation sheds load
//     at the front door, it does not grow memory.
//   - Allocation (allocateCards): a job granted n cards gets the card set
//     minimizing server span, because a job confined to one server pays only
//     in-server switch hops for its intra-job broadcasts (sim.RunOn prices
//     the difference).
//   - Backfill: when the best-ranked waiting job does not fit the free
//     cards, smaller jobs behind it may run first. The pool never idles
//     while any waiting job fits (work conservation).
//   - Execution (Backend): the same job runs against the analytic simulator
//     (SimBackend — capacity planning, load tests) or the functional CKKS
//     cluster (ClusterBackend — end-to-end validation), behind one
//     interface. Every job runs under a context assembled from its timeout
//     and deadline; cancellation propagates into the card engines.
//   - Observability (Metrics): queue-wait and execution-latency samples,
//     cards-busy/queued/running gauges, and admission counters, snapshot at
//     any time; cmd/hydra-serve turns them into BENCH_serve.json.
package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"hydra/internal/hw"
	"hydra/internal/sim"
)

// Typed admission failures. Submit wraps these so callers can errors.Is.
var (
	// ErrOverloaded is graceful rejection under saturation: the admission
	// queue is full, so the job is shed instead of queued unboundedly.
	ErrOverloaded = errors.New("serve: overloaded: admission queue full")
	// ErrClosed reports submission to (or abandonment by) a closed server.
	ErrClosed = errors.New("serve: server closed")
	// ErrInfeasible reports a job whose card demand exceeds the whole fleet.
	ErrInfeasible = errors.New("serve: job demands more cards than the fleet has")
	// ErrDeadline reports a job whose deadline has already passed, or cannot
	// be met even if the job started immediately (per its estimated cost).
	ErrDeadline = errors.New("serve: deadline cannot be met")
)

// Config describes a serving deployment.
type Config struct {
	// Fleet is the physical card pool being scheduled.
	Fleet hw.Fleet
	// Backend executes granted jobs.
	Backend Backend
	// QueueDepth bounds the admission queue (0 = DefaultQueueDepth).
	QueueDepth int
	// DefaultTimeout caps jobs that carry no timeout of their own
	// (0 = uncapped).
	DefaultTimeout time.Duration
	// Estimator, when set, prices each admitted job's program on this
	// analytic machine model (identity placement, the job's own card count)
	// to fill Job.EstCost. The estimate feeds deadline admission control and
	// the report; it never blocks dispatch.
	Estimator *sim.Config
}

// DefaultQueueDepth is the admission bound when Config.QueueDepth is zero.
const DefaultQueueDepth = 64

// Server schedules jobs over the card pool.
type Server struct {
	cfg     Config
	backend Backend

	mu      sync.Mutex
	cond    *sync.Cond // signaled whenever queued/running work drains
	q       *admitQueue
	free    *freeList
	running int
	closed  bool
	seq     uint64

	metrics Metrics
	wg      sync.WaitGroup // one entry per in-flight job goroutine

	baseCtx   context.Context
	cancelAll context.CancelFunc

	now func() time.Time // clock hook (tests use a fake clock)
}

// New builds a server over the configured fleet.
func New(cfg Config) (*Server, error) {
	if err := cfg.Fleet.Validate(); err != nil {
		return nil, err
	}
	if cfg.Backend == nil {
		return nil, fmt.Errorf("serve: config needs a backend")
	}
	depth := cfg.QueueDepth
	if depth <= 0 {
		depth = DefaultQueueDepth
	}
	s := &Server{
		cfg:     cfg,
		backend: cfg.Backend,
		q:       &admitQueue{max: depth},
		free:    newFreeList(cfg.Fleet.Cards),
		now:     time.Now,
	}
	s.cond = sync.NewCond(&s.mu)
	s.baseCtx, s.cancelAll = context.WithCancel(context.Background())
	return s, nil
}

// Metrics returns the server's metrics surface.
//
//lint:allow lockheld Metrics has its own mutex and the field is never reassigned, so taking its address is safe without s.mu
func (s *Server) Metrics() *Metrics { return &s.metrics }

// Submit admits a job. It returns immediately with a Ticket tracking the
// job's lifecycle, or a typed error: ErrOverloaded when the admission queue
// is full, ErrInfeasible when the demand can never fit the fleet, ErrDeadline
// when the deadline is already unmeetable, ErrClosed after Close.
func (s *Server) Submit(job *Job) (*Ticket, error) {
	if err := job.validate(s.cfg.Fleet); err != nil {
		return nil, err
	}
	// Price the job before taking the scheduler lock: estimation simulates
	// the job's program and must not serialize admissions behind it.
	if job.EstCost == 0 && s.cfg.Estimator != nil && job.Build != nil {
		if est, err := estimate(job, *s.cfg.Estimator); err == nil {
			job.EstCost = est
		}
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		s.metrics.reject()
		return nil, ErrClosed
	}
	now := s.now()
	if !job.Deadline.IsZero() && now.Add(durationOf(job.EstCost)).After(job.Deadline) {
		s.metrics.expire()
		return nil, fmt.Errorf("serve: job %s: %w", job.ID, ErrDeadline)
	}
	t := newTicket(job.ID)
	p := &pending{job: job, ticket: t, submitted: now, seq: s.seq}
	s.seq++
	if err := s.q.push(p); err != nil {
		s.metrics.reject()
		return nil, fmt.Errorf("serve: job %s: %w", job.ID, err)
	}
	s.metrics.admit()
	s.dispatchLocked()
	return t, nil
}

// durationOf converts the analytic cost model's seconds to a duration.
func durationOf(seconds float64) time.Duration {
	return time.Duration(seconds * float64(time.Second))
}

// dispatchLocked drains the admission queue onto free cards: expired jobs
// are shed, then jobs are granted in rank order with smaller jobs
// backfilling past ranked-ahead jobs that do not fit. Callers hold s.mu.
func (s *Server) dispatchLocked() {
	now := s.now()
	for _, p := range s.q.expire(now) {
		s.metrics.expireQueued()
		p.ticket.complete(nil, fmt.Errorf("serve: job %s expired in queue: %w", p.job.ID, ErrDeadline))
	}
	for {
		p, backfill := s.q.popFit(s.free.len())
		if p == nil {
			return
		}
		cards := s.free.take(p.job.Cards, s.cfg.Fleet.CardsPerServer)
		s.running++
		s.metrics.start(len(cards), now.Sub(p.submitted))
		s.wg.Add(1)
		go s.runJob(p, cards, backfill)
	}
}

// runJob executes one granted job on its card set and recycles the cards.
func (s *Server) runJob(p *pending, cards []int, backfill bool) {
	defer s.wg.Done()
	ctx := s.baseCtx
	cancel := context.CancelFunc(func() {})
	timeout := p.job.Timeout
	if timeout == 0 {
		timeout = s.cfg.DefaultTimeout
	}
	if timeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, timeout)
	}
	if !p.job.Deadline.IsZero() {
		dctx, dcancel := context.WithDeadline(ctx, p.job.Deadline)
		prev := cancel
		ctx, cancel = dctx, func() { dcancel(); prev() }
	}
	started := time.Now()
	rep, err := s.backend.Run(ctx, p.job, sim.Placement{Cards: cards, CardsPerServer: s.cfg.Fleet.CardsPerServer})
	elapsed := time.Since(started)
	cancel()

	s.mu.Lock()
	s.free.add(cards)
	s.running--
	s.metrics.finish(len(cards), elapsed, err)
	s.dispatchLocked()
	s.cond.Broadcast()
	s.mu.Unlock()

	if err != nil {
		p.ticket.complete(nil, fmt.Errorf("serve: job %s: %w", p.job.ID, err))
		return
	}
	res := &Result{
		JobID:      p.job.ID,
		Backend:    s.backend.Name(),
		Cards:      cards,
		Backfilled: backfill,
		QueueWait:  started.Sub(realOrZero(p.submitted, started)),
		ExecTime:   elapsed,
		EstCost:    p.job.EstCost,
	}
	if rep != nil {
		res.SimSeconds = rep.SimSeconds
	}
	p.ticket.complete(res, nil)
}

// realOrZero guards QueueWait against fake clocks: when the submission stamp
// comes from a test clock unrelated to the wall clock, the wait is reported
// as zero rather than as a nonsense difference.
func realOrZero(submitted, started time.Time) time.Time {
	if submitted.After(started) {
		return started
	}
	return submitted
}

// Drain blocks until the queue is empty and no job is running. Admission
// stays open; callers stop submitting before draining.
func (s *Server) Drain() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for !s.closed && (s.q.len() > 0 || s.running > 0) {
		s.cond.Wait()
	}
}

// Close rejects the queued jobs, cancels the running ones, and waits for
// every job goroutine to exit. After Close returns the server holds no
// goroutines and accepts no work.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	for _, p := range s.q.drain() {
		s.metrics.reject()
		p.ticket.complete(nil, fmt.Errorf("serve: job %s: %w", p.job.ID, ErrClosed))
	}
	s.cancelAll()
	s.cond.Broadcast()
	s.mu.Unlock()
	s.wg.Wait()
}

// Ticket tracks one admitted job.
type Ticket struct {
	JobID string
	done  chan struct{}
	once  sync.Once
	res   *Result
	err   error
}

func newTicket(id string) *Ticket {
	return &Ticket{JobID: id, done: make(chan struct{})}
}

func (t *Ticket) complete(res *Result, err error) {
	t.once.Do(func() {
		t.res, t.err = res, err
		close(t.done)
	})
}

// Done returns a channel closed when the job finishes (in any state).
func (t *Ticket) Done() <-chan struct{} { return t.done }

// Wait blocks until the job finishes or the caller's context expires.
func (t *Ticket) Wait(ctx context.Context) (*Result, error) {
	select {
	case <-t.done:
		return t.res, t.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Result is the record of one completed job.
type Result struct {
	JobID      string
	Backend    string
	Cards      []int // physical card set the job ran on
	Backfilled bool  // granted past a ranked-ahead job that did not fit
	QueueWait  time.Duration
	ExecTime   time.Duration
	SimSeconds float64 // analytic makespan (sim backend; 0 otherwise)
	EstCost    float64 // admission-time estimate, seconds
}

// estimate prices a job by simulating its program on the estimator machine
// with identity placement (the job's cards packed from 0, the best case).
func estimate(job *Job, cfg sim.Config) (float64, error) {
	prog, err := job.Build(job.Cards)
	if err != nil {
		return 0, err
	}
	res, err := sim.Run(prog, cfg)
	if err != nil {
		return 0, err
	}
	return res.Makespan, nil
}
