// Package serve is the multi-tenant serving layer over the Hydra card pool:
// the control plane that turns the repo's one-job-at-a-time execution into a
// datacenter-style fleet. Procedure 2 of the paper schedules a single
// inference across all cards of one machine; serve extends it to
// many-jobs-many-cards — FHE inference jobs arrive with a priority, deadline
// and card demand, pass bounded admission control, and a work-conserving
// fleet scheduler partitions the physical card pool across the jobs that are
// running concurrently.
//
// The moving parts:
//
//   - Admission (admitQueue): a bounded queue ordered by priority, then
//     deadline, then arrival, indexed by a rank heap, a deadline heap and
//     per-batch-key heaps so dispatch never scans. When it is full, Submit
//     fails fast with ErrOverloaded instead of queueing unboundedly —
//     saturation sheds load at the front door, it does not grow memory.
//     SubmitBatch admits a whole arrival batch under one lock acquisition.
//   - Allocation (freeList): a job granted n cards gets the card set
//     minimizing server span, because a job confined to one server pays only
//     in-server switch hops for its intra-job broadcasts (sim.RunOn prices
//     the difference). The pool is a per-server bitmap with free-count
//     buckets — O(servers) per grant at any fleet size.
//   - Backfill: when the best-ranked waiting job does not fit the free
//     cards, smaller jobs behind it may run first. The pool never idles
//     while any waiting job fits (work conservation).
//   - Continuous batching (Config.CoalesceLimit): compatible queued jobs
//     (same Job.BatchKey and demand) coalesce onto one card grant and run
//     as a single batched execution, and a finishing grant refills from the
//     queue — the cards go straight to the next compatible job instead of
//     bouncing through the free list. CoalesceLimit <= 1 keeps the classic
//     per-job-grant path as the ablation baseline.
//   - Execution (Backend): the same job runs against the analytic simulator
//     (SimBackend — capacity planning, load tests) or the functional CKKS
//     cluster (ClusterBackend — end-to-end validation), behind one
//     interface. Every job runs under a context assembled from its timeout
//     and deadline; cancellation propagates into the card engines.
//   - Observability (Metrics): queue-wait and execution-latency samples,
//     cards-busy/queued/running gauges, admission and grant counters,
//     snapshot at any time; cmd/hydra-serve turns them into
//     BENCH_serve.json.
//   - Scale projection (Replay): the same queue, allocator and dispatch
//     pass driven in virtual time by a discrete-event loop — saturation
//     curves for thousand-card fleets and 10^4+ job traces in milliseconds
//     of wall clock.
package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"hydra/internal/hw"
	"hydra/internal/sim"
)

// Typed admission failures. Submit wraps these so callers can errors.Is.
var (
	// ErrOverloaded is graceful rejection under saturation: the admission
	// queue is full, so the job is shed instead of queued unboundedly.
	ErrOverloaded = errors.New("serve: overloaded: admission queue full")
	// ErrClosed reports submission to (or abandonment by) a closed server.
	ErrClosed = errors.New("serve: server closed")
	// ErrInfeasible reports a job whose card demand exceeds the whole fleet.
	ErrInfeasible = errors.New("serve: job demands more cards than the fleet has")
	// ErrDeadline reports a job whose deadline has already passed, or cannot
	// be met even if the job started immediately (per its estimated cost).
	ErrDeadline = errors.New("serve: deadline cannot be met")
)

// Config describes a serving deployment.
type Config struct {
	// Fleet is the physical card pool being scheduled.
	Fleet hw.Fleet
	// Backend executes granted jobs.
	Backend Backend
	// QueueDepth bounds the admission queue (0 = DefaultQueueDepth).
	QueueDepth int
	// DefaultTimeout caps jobs that carry no timeout of their own
	// (0 = uncapped).
	DefaultTimeout time.Duration
	// Estimator, when set, prices each admitted job's program on this
	// analytic machine model (identity placement, the job's own card count)
	// to fill Job.EstCost. The estimate feeds deadline admission control and
	// the report; it never blocks dispatch.
	Estimator *sim.Config
	// CoalesceLimit bounds the jobs sharing one card grant (continuous
	// batching). 0 and 1 grant per job — the classic path, kept as the
	// flag-selectable ablation baseline. k > 1 coalesces up to k compatible
	// queued jobs (same Job.BatchKey and card demand) into one batched
	// execution per grant, and lets a finishing grant refill from the queue
	// without a free-list round trip. Batched grants reach the backend as
	// Placement.Batch; the sim backend prices them, the cluster backend
	// rejects them.
	CoalesceLimit int
}

// DefaultQueueDepth is the admission bound when Config.QueueDepth is zero.
const DefaultQueueDepth = 64

// Server schedules jobs over the card pool.
type Server struct {
	cfg      Config
	backend  Backend
	coalesce int // normalized CoalesceLimit (>= 1)

	mu      sync.Mutex
	cond    *sync.Cond // signaled whenever queued/running work drains
	q       *admitQueue
	free    *freeList
	running int // in-flight grants (== jobs when nothing coalesces)
	closed  bool
	seq     uint64

	metrics Metrics
	wg      sync.WaitGroup // one entry per in-flight grant goroutine

	baseCtx   context.Context
	cancelAll context.CancelFunc

	now func() time.Time // clock hook (tests use a fake clock)
}

// New builds a server over the configured fleet.
func New(cfg Config) (*Server, error) {
	if err := cfg.Fleet.Validate(); err != nil {
		return nil, err
	}
	if cfg.Backend == nil {
		return nil, fmt.Errorf("serve: config needs a backend")
	}
	depth := cfg.QueueDepth
	if depth <= 0 {
		depth = DefaultQueueDepth
	}
	coalesce := cfg.CoalesceLimit
	if coalesce < 1 {
		coalesce = 1
	}
	s := &Server{
		cfg:      cfg,
		backend:  cfg.Backend,
		coalesce: coalesce,
		q:        newAdmitQueue(depth),
		free:     newFreeList(cfg.Fleet.Cards, cfg.Fleet.CardsPerServer),
		now:      time.Now,
	}
	s.cond = sync.NewCond(&s.mu)
	s.baseCtx, s.cancelAll = context.WithCancel(context.Background())
	return s, nil
}

// Metrics returns the server's metrics surface.
//
//lint:allow lockheld Metrics has its own mutex and the field is never reassigned, so taking its address is safe without s.mu
func (s *Server) Metrics() *Metrics { return &s.metrics }

// Submit admits a job. It returns immediately with a Ticket tracking the
// job's lifecycle, or a typed error: ErrOverloaded when the admission queue
// is full, ErrInfeasible when the demand can never fit the fleet, ErrDeadline
// when the deadline is already unmeetable, ErrClosed after Close.
func (s *Server) Submit(job *Job) (*Ticket, error) {
	tks, errs := s.SubmitBatch([]*Job{job})
	return tks[0], errs[0]
}

// SubmitBatch admits a batch of jobs under a single scheduler lock
// acquisition, followed by one dispatch pass over the whole batch — the
// batched-admission fast path for bursty arrival streams, where per-job
// Submit would pay a lock round trip and a dispatch pass per arrival.
// The returned slices align with jobs: exactly one of tickets[i], errs[i]
// is non-nil. Jobs are considered in slice order (it decides FIFO ties).
func (s *Server) SubmitBatch(jobs []*Job) ([]*Ticket, []error) {
	tickets := make([]*Ticket, len(jobs))
	errs := make([]error, len(jobs))

	// Validate and price before taking the scheduler lock: estimation
	// simulates the job's program and must not serialize admissions.
	for i, job := range jobs {
		if err := job.validate(s.cfg.Fleet); err != nil {
			errs[i] = err
			continue
		}
		if job.EstCost == 0 && s.cfg.Estimator != nil && job.Build != nil {
			if est, err := estimate(job, *s.cfg.Estimator); err == nil {
				job.EstCost = est
			}
		}
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.now()
	admitted := false
	for i, job := range jobs {
		if errs[i] != nil {
			continue
		}
		if s.closed {
			s.metrics.reject()
			errs[i] = ErrClosed
			continue
		}
		if !job.Deadline.IsZero() && now.Add(durationOf(job.EstCost)).After(job.Deadline) {
			s.metrics.expire()
			errs[i] = fmt.Errorf("serve: job %s: %w", job.ID, ErrDeadline)
			continue
		}
		t := newTicket(job.ID)
		p := &pending{job: job, ticket: t, submitted: now, seq: s.seq}
		s.seq++
		if err := s.q.push(p); err != nil {
			s.metrics.reject()
			errs[i] = fmt.Errorf("serve: job %s: %w", job.ID, err)
			continue
		}
		s.metrics.admit()
		tickets[i] = t
		admitted = true
	}
	if admitted {
		s.dispatchLocked()
	}
	return tickets, errs
}

// durationOf converts the analytic cost model's seconds to a duration.
func durationOf(seconds float64) time.Duration {
	return time.Duration(seconds * float64(time.Second))
}

// shedExpiredLocked fails queued jobs whose deadline passed. Callers hold
// s.mu.
func (s *Server) shedExpiredLocked() {
	now := s.now()
	for _, p := range s.q.expire(now) {
		s.metrics.expireQueued()
		p.ticket.complete(nil, fmt.Errorf("serve: job %s expired in queue: %w", p.job.ID, ErrDeadline))
	}
}

// dispatchLocked drains the admission queue onto free cards: expired jobs
// are shed, then one dispatchPass makes every grant decision the free cards
// allow — rank order with backfill, compatible jobs coalesced per grant.
// Callers hold s.mu.
func (s *Server) dispatchLocked() {
	s.shedExpiredLocked()
	now := s.now()
	for _, d := range dispatchPass(s.q, s.free, s.coalesce) {
		s.running++
		s.metrics.startGrant(len(d.cards), grantWaits(d.lead, d.riders, now))
		s.wg.Add(1)
		go s.runGrant(d)
	}
}

// grantWaits collects the queue-wait sample of every job on a grant.
func grantWaits(lead *pending, riders []*pending, now time.Time) []time.Duration {
	waits := make([]time.Duration, 0, 1+len(riders))
	waits = append(waits, now.Sub(lead.submitted))
	for _, r := range riders {
		waits = append(waits, now.Sub(r.submitted))
	}
	return waits
}

// jobContext assembles a job's execution context from the server base
// context, the job timeout (or server default) and the job deadline.
func (s *Server) jobContext(job *Job) (context.Context, context.CancelFunc) {
	ctx := s.baseCtx
	cancel := context.CancelFunc(func() {})
	timeout := job.Timeout
	if timeout == 0 {
		timeout = s.cfg.DefaultTimeout
	}
	if timeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, timeout)
	}
	if !job.Deadline.IsZero() {
		dctx, dcancel := context.WithDeadline(ctx, job.Deadline)
		prev := cancel
		ctx, cancel = dctx, func() { dcancel(); prev() }
	}
	return ctx, cancel
}

// refillLocked decides whether a finishing grant's cards go straight to the
// next compatible queued jobs (continuous batching) instead of through the
// free list. It returns the next batch (leader first) and the cards to keep;
// surplus reports cards trimmed off when the next leader demands fewer.
// A nil batch means the grant retires. Callers hold s.mu.
func (s *Server) refillLocked(key string, cards []int) (batch []*pending, keep, surplus []int) {
	if s.closed || s.coalesce <= 1 || key == "" {
		return nil, cards, nil
	}
	s.shedExpiredLocked()
	lead := s.q.popRefill(len(cards), key)
	if lead == nil {
		return nil, cards, nil
	}
	riders := s.q.popRiders(key, lead.job.Cards, s.coalesce-1)
	return append([]*pending{lead}, riders...), cards[:lead.job.Cards], cards[lead.job.Cards:]
}

// runGrant executes a grant: the leader's program runs once per batch on the
// granted card set (riders are interchangeable work by the BatchKey
// contract), every ticket on the grant completes, and then the grant either
// refills from the queue — same cards, next compatible batch, no free-list
// round trip — or retires its cards to the pool.
func (s *Server) runGrant(d decision) {
	defer s.wg.Done()
	cards := d.cards
	batch := append([]*pending{d.lead}, d.riders...)
	backfill := d.backfill
	refilled := false
	for {
		lead := batch[0]
		ctx, cancel := s.jobContext(lead.job)
		started := time.Now()
		rep, err := s.backend.Run(ctx, lead.job, sim.Placement{
			Cards:          cards,
			CardsPerServer: s.cfg.Fleet.CardsPerServer,
			Batch:          len(batch),
		})
		elapsed := time.Since(started)
		cancel()

		s.mu.Lock()
		s.metrics.jobsDone(len(batch), elapsed, err)
		next, keep, surplus := s.refillLocked(lead.job.BatchKey, cards)
		if next == nil {
			s.free.add(cards)
			s.metrics.endGrant(len(cards))
			s.running--
			s.dispatchLocked()
			s.cond.Broadcast()
		} else {
			if len(surplus) > 0 {
				s.free.add(surplus)
			}
			s.metrics.refillGrant(len(surplus), grantWaits(next[0], next[1:], s.now()))
			if len(surplus) > 0 {
				s.dispatchLocked()
			}
		}
		s.mu.Unlock()

		for _, p := range batch {
			if err != nil {
				p.ticket.complete(nil, fmt.Errorf("serve: job %s: %w", p.job.ID, err))
				continue
			}
			res := &Result{
				JobID:      p.job.ID,
				Backend:    s.backend.Name(),
				Cards:      cards,
				Backfilled: backfill,
				Refilled:   refilled,
				Batch:      len(batch),
				QueueWait:  started.Sub(realOrZero(p.submitted, started)),
				ExecTime:   elapsed,
				EstCost:    p.job.EstCost,
			}
			if rep != nil {
				res.SimSeconds = rep.SimSeconds
			}
			p.ticket.complete(res, nil)
		}

		if next == nil {
			return
		}
		batch, cards = next, keep
		backfill, refilled = false, true
	}
}

// realOrZero guards QueueWait against fake clocks: when the submission stamp
// comes from a test clock unrelated to the wall clock, the wait is reported
// as zero rather than as a nonsense difference.
func realOrZero(submitted, started time.Time) time.Time {
	if submitted.After(started) {
		return started
	}
	return submitted
}

// Drain blocks until the queue is empty and no grant is running. Admission
// stays open; callers stop submitting before draining.
func (s *Server) Drain() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for !s.closed && (s.q.len() > 0 || s.running > 0) {
		s.cond.Wait()
	}
}

// Close rejects the queued jobs, cancels the running ones, and waits for
// every grant goroutine to exit. After Close returns the server holds no
// goroutines and accepts no work.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	for _, p := range s.q.drain() {
		s.metrics.reject()
		p.ticket.complete(nil, fmt.Errorf("serve: job %s: %w", p.job.ID, ErrClosed))
	}
	s.cancelAll()
	s.cond.Broadcast()
	s.mu.Unlock()
	s.wg.Wait()
}

// Ticket tracks one admitted job.
type Ticket struct {
	JobID string
	done  chan struct{}
	once  sync.Once
	res   *Result
	err   error
}

func newTicket(id string) *Ticket {
	return &Ticket{JobID: id, done: make(chan struct{})}
}

func (t *Ticket) complete(res *Result, err error) {
	t.once.Do(func() {
		t.res, t.err = res, err
		close(t.done)
	})
}

// Done returns a channel closed when the job finishes (in any state).
func (t *Ticket) Done() <-chan struct{} { return t.done }

// Wait blocks until the job finishes or the caller's context expires.
func (t *Ticket) Wait(ctx context.Context) (*Result, error) {
	select {
	case <-t.done:
		return t.res, t.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Result is the record of one completed job.
type Result struct {
	JobID      string
	Backend    string
	Cards      []int // physical card set the job ran on
	Backfilled bool  // granted past a ranked-ahead job that did not fit
	Refilled   bool  // ran on a reused grant, never touching the free list
	Batch      int   // jobs that shared the grant's execution (1 = private)
	QueueWait  time.Duration
	ExecTime   time.Duration
	SimSeconds float64 // analytic makespan (sim backend; 0 otherwise)
	EstCost    float64 // admission-time estimate, seconds
}

// estimate prices a job by simulating its program on the estimator machine
// with identity placement (the job's cards packed from 0, the best case).
func estimate(job *Job, cfg sim.Config) (float64, error) {
	prog, err := job.Build(job.Cards)
	if err != nil {
		return 0, err
	}
	res, err := sim.Run(prog, cfg)
	if err != nil {
		return 0, err
	}
	return res.Makespan, nil
}
