package serve

import "sort"

// freeList tracks the idle cards of the fleet, kept sorted ascending.
type freeList struct {
	cards []int
}

func newFreeList(n int) *freeList {
	f := &freeList{cards: make([]int, n)}
	for i := range f.cards {
		f.cards[i] = i
	}
	return f
}

func (f *freeList) len() int { return len(f.cards) }

// take removes and returns n cards chosen by allocateCards.
func (f *freeList) take(n, cardsPerServer int) []int {
	picked := allocateCards(f.cards, n, cardsPerServer)
	taken := map[int]bool{}
	for _, c := range picked {
		taken[c] = true
	}
	kept := f.cards[:0]
	for _, c := range f.cards {
		if !taken[c] {
			kept = append(kept, c)
		}
	}
	for i := len(kept); i < len(f.cards); i++ {
		f.cards[i] = 0
	}
	f.cards = kept
	return picked
}

// add returns a job's cards to the pool.
func (f *freeList) add(cards []int) {
	f.cards = append(f.cards, cards...)
	sort.Ints(f.cards)
}

// allocateCards picks n cards from the sorted free list, minimizing the
// server span of the grant — a job confined to one server pays only
// in-server switch hops for its intra-job broadcasts, while every extra
// server turns them into inter-server transfers (hw.NetworkProfile).
//
// Policy, deterministic for a given free list:
//  1. If some server can hold the whole job, use the fullest-fitting server:
//     the one with the fewest free cards that still fit (best fit, so big
//     future jobs keep finding whole servers), lowest server index on ties.
//  2. Otherwise span servers, taking from the emptiest-loaded (most free
//     cards) servers first to touch as few servers as possible, lowest
//     server index on ties.
//
// Within a server, lowest-numbered cards are taken first. The result is
// sorted ascending. Callers guarantee n <= len(free); n <= 0 returns nil.
func allocateCards(free []int, n, cardsPerServer int) []int {
	if n <= 0 || n > len(free) {
		return nil
	}
	// Group the free cards by server, preserving ascending card order.
	byServer := map[int][]int{}
	var servers []int
	for _, c := range free {
		srv := c / cardsPerServer
		if _, ok := byServer[srv]; !ok {
			servers = append(servers, srv)
		}
		byServer[srv] = append(byServer[srv], c)
	}
	sort.Ints(servers)

	// Best fit: the smallest server pool that holds the whole job.
	bestSrv, bestFree := -1, 0
	for _, srv := range servers {
		if have := len(byServer[srv]); have >= n {
			if bestSrv < 0 || have < bestFree {
				bestSrv, bestFree = srv, have
			}
		}
	}
	if bestSrv >= 0 {
		out := make([]int, n)
		copy(out, byServer[bestSrv][:n])
		return out
	}

	// Spanning grant: fewest servers, fullest pools first.
	sort.SliceStable(servers, func(a, b int) bool {
		fa, fb := len(byServer[servers[a]]), len(byServer[servers[b]])
		if fa != fb {
			return fa > fb
		}
		return servers[a] < servers[b]
	})
	out := make([]int, 0, n)
	for _, srv := range servers {
		pool := byServer[srv]
		need := n - len(out)
		if need <= 0 {
			break
		}
		if need > len(pool) {
			need = len(pool)
		}
		out = append(out, pool[:need]...)
	}
	sort.Ints(out)
	return out
}
