package serve

import (
	"math/bits"
	"sort"
)

// freeList tracks the idle cards of the fleet with three indexed views, so
// allocation is O(servers) and release is O(cards released) — the old
// sorted-slice representation cost O(cards log cards) per allocation (a map
// rebuild plus sorts) and a full re-sort per release:
//
//   - bitmap: one bit per card, set = free. A bitmap is inherently sorted, so
//     release is pure bit-sets — the "merge two sorted slices" guarantee is
//     structural, there is no sort to forget.
//   - cnt: free-card count per server.
//   - bucket: for each free-count value k, a bitmap of the servers holding
//     exactly k free cards. Best-fit ("fullest server that still fits") is
//     the first non-empty bucket at k >= n; spanning ("emptiest-loaded
//     first") walks buckets downward. Lowest-set-bit iteration gives the
//     lowest-server-index tie-break for free.
//
// The allocation policy is byte-identical to the linear-scan reference
// (allocateCardsLinear, kept as the differential oracle).
type freeList struct {
	cards int // fleet size (bitmap width)
	cps   int // cards per server
	width int // max free cards one server can hold = min(cps, cards)
	free  int // total free cards

	bitmap []uint64   // card c free <=> bit c set
	cnt    []int      // per-server free count
	bucket [][]uint64 // bucket[k]: server-index bitmap of servers with cnt == k
}

// newFreeList builds the free list of an all-idle fleet.
func newFreeList(n, cps int) *freeList {
	f := newEmptyFreeList(n, cps)
	all := make([]int, n)
	for i := range all {
		all[i] = i
	}
	f.add(all)
	return f
}

// newEmptyFreeList builds the structure with every card busy; add() releases
// cards into it (the allocateCards wrapper seeds arbitrary free sets).
func newEmptyFreeList(n, cps int) *freeList {
	if cps <= 0 {
		cps = 1
	}
	width := cps
	if width > n {
		width = n
	}
	nserv := (n + cps - 1) / cps
	f := &freeList{
		cards:  n,
		cps:    cps,
		width:  width,
		bitmap: make([]uint64, (n+63)/64),
		cnt:    make([]int, nserv),
		bucket: make([][]uint64, width+1),
	}
	words := (nserv + 63) / 64
	for k := range f.bucket {
		f.bucket[k] = make([]uint64, words)
	}
	for srv := 0; srv < nserv; srv++ {
		f.bucket[0][srv/64] |= 1 << uint(srv%64)
	}
	return f
}

func (f *freeList) len() int { return f.free }

// moveBucket relocates a server between free-count buckets.
func (f *freeList) moveBucket(srv, from, to int) {
	if from == to {
		return
	}
	w, b := srv/64, uint(srv%64)
	f.bucket[from][w] &^= 1 << b
	f.bucket[to][w] |= 1 << b
}

// lowestServer returns the lowest server index set in a bucket bitmap, -1
// when the bucket is empty.
func lowestServer(bm []uint64) int {
	for wi, word := range bm {
		if word != 0 {
			return wi*64 + bits.TrailingZeros64(word)
		}
	}
	return -1
}

// takeFromServer removes and returns the m lowest-numbered free cards of one
// server, maintaining every index.
func (f *freeList) takeFromServer(srv, m int) []int {
	out := make([]int, 0, m)
	lo := srv * f.cps
	hi := lo + f.cps
	if hi > f.cards {
		hi = f.cards
	}
	for w := lo / 64; w <= (hi-1)/64 && len(out) < m; w++ {
		word := f.bitmap[w]
		// Mask the word down to this server's card range.
		if base := w * 64; base < lo {
			//lint:allow rawmod bitmap mask construction, not residue arithmetic
			word &^= (1 << uint(lo-base)) - 1
		}
		if base := w * 64; base+64 > hi {
			//lint:allow rawmod bitmap mask construction, not residue arithmetic
			word &= (1 << uint(hi-base)) - 1
		}
		for word != 0 && len(out) < m {
			b := bits.TrailingZeros64(word)
			word &^= 1 << uint(b)
			f.bitmap[w] &^= 1 << uint(b)
			out = append(out, w*64+b)
		}
	}
	f.free -= len(out)
	f.moveBucket(srv, f.cnt[srv], f.cnt[srv]-len(out))
	f.cnt[srv] -= len(out)
	return out
}

// take removes and returns n cards chosen by the server-locality policy of
// allocateCards. Callers guarantee n <= len(); n <= 0 returns nil.
func (f *freeList) take(n int) []int {
	if n <= 0 || n > f.free {
		return nil
	}
	// Best fit: the smallest per-server free count >= n that exists; the
	// lowest set bit of its bucket is the lowest-index such server.
	for k := n; k <= f.width; k++ {
		if srv := lowestServer(f.bucket[k]); srv >= 0 {
			return f.takeFromServer(srv, n)
		}
	}
	// Spanning grant: fullest pools first, lowest server index on ties.
	// Collect the per-server picks before mutating, then apply in server
	// order so the result comes out ascending without an element sort.
	type pick struct{ srv, m int }
	var picks []pick
	need := n
	for k := f.width; k >= 1 && need > 0; k-- {
		for wi, word := range f.bucket[k] {
			for word != 0 && need > 0 {
				b := bits.TrailingZeros64(word)
				word &^= 1 << uint(b)
				m := k
				if m > need {
					m = need
				}
				picks = append(picks, pick{wi*64 + b, m})
				need -= m
			}
			if need == 0 {
				break
			}
		}
	}
	sort.Slice(picks, func(a, b int) bool { return picks[a].srv < picks[b].srv })
	out := make([]int, 0, n)
	for _, p := range picks {
		out = append(out, f.takeFromServer(p.srv, p.m)...)
	}
	return out
}

// add returns a grant's cards to the pool: pure bit-sets plus per-server
// count updates, O(len(cards)) with no sorting (a release used to re-sort
// the whole free list; the bitmap keeps card order by construction).
func (f *freeList) add(cards []int) {
	for _, c := range cards {
		f.bitmap[c/64] |= 1 << uint(c%64)
		srv := c / f.cps
		f.moveBucket(srv, f.cnt[srv], f.cnt[srv]+1)
		f.cnt[srv]++
	}
	f.free += len(cards)
}

// freeCards enumerates the free set ascending (tests and transcripts).
func (f *freeList) freeCards() []int {
	out := make([]int, 0, f.free)
	for wi, word := range f.bitmap {
		for word != 0 {
			b := bits.TrailingZeros64(word)
			word &^= 1 << uint(b)
			out = append(out, wi*64+b)
		}
	}
	return out
}

// allocateCards picks n cards from the given free set, minimizing the server
// span of the grant — a job confined to one server pays only in-server
// switch hops for its intra-job broadcasts, while every extra server turns
// them into inter-server transfers (hw.NetworkProfile).
//
// Policy, deterministic for a given free list:
//  1. If some server can hold the whole job, use the fullest-fitting server:
//     the one with the fewest free cards that still fit (best fit, so big
//     future jobs keep finding whole servers), lowest server index on ties.
//  2. Otherwise span servers, taking from the emptiest-loaded (most free
//     cards) servers first to touch as few servers as possible, lowest
//     server index on ties.
//
// Within a server, lowest-numbered cards are taken first. The result is
// sorted ascending. Callers guarantee n <= len(free); n <= 0 returns nil.
// This wrapper drives the bucket/bitmap structure; the steady-state scheduler
// keeps a live freeList instead of rebuilding one per call.
func allocateCards(free []int, n, cps int) []int {
	if n <= 0 || n > len(free) {
		return nil
	}
	max := 0
	for _, c := range free {
		if c >= max {
			max = c + 1
		}
	}
	f := newEmptyFreeList(max, cps)
	f.add(free)
	return f.take(n)
}

// allocateCardsLinear is the pre-bitmap reference allocator: group by
// server with a map, best-fit scan, sort-based spanning. Kept verbatim as
// the differential oracle for the bitmap path (property tests) and as the
// microbenchmark baseline.
func allocateCardsLinear(free []int, n, cardsPerServer int) []int {
	if n <= 0 || n > len(free) {
		return nil
	}
	byServer := map[int][]int{}
	var servers []int
	for _, c := range free {
		srv := c / cardsPerServer
		if _, ok := byServer[srv]; !ok {
			servers = append(servers, srv)
		}
		byServer[srv] = append(byServer[srv], c)
	}
	sort.Ints(servers)

	bestSrv, bestFree := -1, 0
	for _, srv := range servers {
		if have := len(byServer[srv]); have >= n {
			if bestSrv < 0 || have < bestFree {
				bestSrv, bestFree = srv, have
			}
		}
	}
	if bestSrv >= 0 {
		out := make([]int, n)
		copy(out, byServer[bestSrv][:n])
		return out
	}

	sort.SliceStable(servers, func(a, b int) bool {
		fa, fb := len(byServer[servers[a]]), len(byServer[servers[b]])
		if fa != fb {
			return fa > fb
		}
		return servers[a] < servers[b]
	})
	out := make([]int, 0, n)
	for _, srv := range servers {
		pool := byServer[srv]
		need := n - len(out)
		if need <= 0 {
			break
		}
		if need > len(pool) {
			need = len(pool)
		}
		out = append(out, pool[:need]...)
	}
	sort.Ints(out)
	return out
}
