package serve

import "time"

// pending is one admitted-but-not-yet-running job.
type pending struct {
	job       *Job
	ticket    *Ticket
	submitted time.Time
	seq       uint64 // arrival order, the final tie-break
}

// rankBefore reports whether a should be served before b: higher priority
// first, then earlier deadline (no deadline ranks last), then arrival order.
// This is the single total order behind admission, dispatch and backfill, so
// scheduler decisions are deterministic for a given queue content.
func rankBefore(a, b *pending) bool {
	if a.job.Priority != b.job.Priority {
		return a.job.Priority > b.job.Priority
	}
	ad, bd := a.job.Deadline, b.job.Deadline
	if !ad.IsZero() || !bd.IsZero() {
		switch {
		case bd.IsZero():
			return true
		case ad.IsZero():
			return false
		case !ad.Equal(bd):
			return ad.Before(bd)
		}
	}
	return a.seq < b.seq
}

// admitQueue is the bounded admission queue. Depth is small (tens of jobs —
// beyond that Submit sheds load), so linear scans in rank order keep the
// policy transparent and deterministic; there is no heap to reason about.
type admitQueue struct {
	max   int
	items []*pending // arrival order; rank is computed, not maintained
}

func (q *admitQueue) len() int { return len(q.items) }

// push admits p, or fails with ErrOverloaded when the queue is at capacity.
func (q *admitQueue) push(p *pending) error {
	if len(q.items) >= q.max {
		return ErrOverloaded
	}
	q.items = append(q.items, p)
	return nil
}

// popFit removes and returns the best-ranked job that fits freeCards, and
// whether granting it is a backfill (a better-ranked job remains waiting
// because its demand does not fit). Returns nil when nothing fits.
func (q *admitQueue) popFit(freeCards int) (p *pending, backfill bool) {
	best, bestIdx := (*pending)(nil), -1
	skippedBetter := false
	for i, it := range q.items {
		if it.job.Cards > freeCards {
			continue
		}
		if best == nil || rankBefore(it, best) {
			best, bestIdx = it, i
		}
	}
	if best == nil {
		return nil, false
	}
	for _, it := range q.items {
		if it != best && it.job.Cards > freeCards && rankBefore(it, best) {
			skippedBetter = true
			break
		}
	}
	q.items = append(q.items[:bestIdx], q.items[bestIdx+1:]...)
	return best, skippedBetter
}

// expire removes and returns jobs whose deadline has already passed.
func (q *admitQueue) expire(now time.Time) []*pending {
	var out []*pending
	kept := q.items[:0]
	for _, it := range q.items {
		if !it.job.Deadline.IsZero() && now.After(it.job.Deadline) {
			out = append(out, it)
			continue
		}
		kept = append(kept, it)
	}
	// Clear the tail so shed jobs do not linger in the backing array.
	for i := len(kept); i < len(q.items); i++ {
		q.items[i] = nil
	}
	q.items = kept
	return out
}

// drain empties the queue (server shutdown).
func (q *admitQueue) drain() []*pending {
	out := q.items
	q.items = nil
	return out
}
