package serve

import "time"

// pending is one admitted-but-not-yet-running job. The three *idx fields are
// the job's live positions inside the admission queue's indexes (rank heap,
// deadline heap, per-key heap); -1 means "not in that index". They are
// maintained by the heaps' swap callbacks so any entry can be removed in
// O(log n) without a scan.
type pending struct {
	job       *Job
	ticket    *Ticket
	submitted time.Time
	seq       uint64 // arrival order, the final tie-break

	rankIdx int // position in admitQueue.rank
	dlIdx   int // position in admitQueue.dl (-1: no deadline)
	keyIdx  int // position in admitQueue.byKey[job.BatchKey]
}

// rankBefore reports whether a should be served before b: higher priority
// first, then earlier deadline (no deadline ranks last), then arrival order.
// This is the single total order behind admission, dispatch and backfill, so
// scheduler decisions are deterministic for a given queue content. It is the
// heap invariant of admitQueue.rank, and the linear-scan oracle (linearQueue)
// consumes the very same function — the property tests pin the two against
// each other.
func rankBefore(a, b *pending) bool {
	if a.job.Priority != b.job.Priority {
		return a.job.Priority > b.job.Priority
	}
	ad, bd := a.job.Deadline, b.job.Deadline
	if !ad.IsZero() || !bd.IsZero() {
		switch {
		case bd.IsZero():
			return true
		case ad.IsZero():
			return false
		case !ad.Equal(bd):
			return ad.Before(bd)
		}
	}
	return a.seq < b.seq
}

// deadlineBefore orders the expiry heap: earliest deadline first, arrival
// order on ties. Only jobs that carry a deadline enter the heap.
func deadlineBefore(a, b *pending) bool {
	if !a.job.Deadline.Equal(b.job.Deadline) {
		return a.job.Deadline.Before(b.job.Deadline)
	}
	return a.seq < b.seq
}

// pheap is an indexed binary min-heap of pending entries. The index callback
// keeps each entry's position field current across sifts, so removal by
// position — not just pop-min — stays O(log n). Three instances back the
// admission queue: the rank heap (rankBefore), the deadline heap
// (deadlineBefore) and one per-key heap per batch key (rankBefore again, so
// coalescing picks riders in the global service order).
type pheap struct {
	items []*pending
	less  func(a, b *pending) bool
	set   func(p *pending, i int)
}

func (h *pheap) len() int { return len(h.items) }

func (h *pheap) push(p *pending) {
	h.items = append(h.items, p)
	h.set(p, len(h.items)-1)
	h.up(len(h.items) - 1)
}

// pop removes and returns the minimum entry (nil when empty).
func (h *pheap) pop() *pending {
	if len(h.items) == 0 {
		return nil
	}
	return h.remove(0)
}

// remove deletes and returns the entry at position i.
func (h *pheap) remove(i int) *pending {
	p := h.items[i]
	last := len(h.items) - 1
	h.swap(i, last)
	h.items[last] = nil // no stale reference in the backing array
	h.items = h.items[:last]
	if i < last {
		if !h.up(i) {
			h.down(i)
		}
	}
	h.set(p, -1)
	return p
}

func (h *pheap) swap(i, j int) {
	h.items[i], h.items[j] = h.items[j], h.items[i]
	h.set(h.items[i], i)
	h.set(h.items[j], j)
}

// up sifts position i toward the root; it reports whether i moved.
func (h *pheap) up(i int) bool {
	moved := false
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(h.items[i], h.items[parent]) {
			break
		}
		h.swap(i, parent)
		i = parent
		moved = true
	}
	return moved
}

func (h *pheap) down(i int) {
	n := len(h.items)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		min := left
		if right := left + 1; right < n && h.less(h.items[right], h.items[left]) {
			min = right
		}
		if !h.less(h.items[min], h.items[i]) {
			return
		}
		h.swap(i, min)
		i = min
	}
}

// admitQueue is the bounded admission queue, indexed three ways so the
// dispatch hot path never scans:
//
//   - rank: a heap in rankBefore order — pop-best is O(log n) instead of the
//     old O(n) best scan per grant.
//   - dl: a heap in deadline order over the entries that carry one — expiry
//     pops only the jobs actually due instead of sweeping the whole queue.
//   - byKey: one rank-ordered heap per batch key — coalescing pulls the
//     best-ranked compatible riders for a grant without touching the rest.
//   - demand: queued-job counts per card demand, so a dispatch pass against
//     fewer free cards than any queued job wants is a single map probe (the
//     common state at saturation, when the queue is full of jobs waiting for
//     a wide grant).
//
// Every entry leaves through detach, which unlinks it from all secondary
// indexes; the *idx fields on pending make each unlink O(log n).
type admitQueue struct {
	max    int
	rank   pheap
	dl     pheap
	byKey  map[string]*pheap
	demand map[int]int

	minDemand int // cached min key of demand; -1 = stale, recompute
}

func newAdmitQueue(max int) *admitQueue {
	q := &admitQueue{max: max}
	q.init()
	return q
}

// init wires the heap callbacks; the zero admitQueue calls it lazily so the
// struct-literal construction used throughout the tests keeps working.
func (q *admitQueue) init() {
	if q.rank.set != nil {
		return
	}
	q.rank = pheap{less: rankBefore, set: func(p *pending, i int) { p.rankIdx = i }}
	q.dl = pheap{less: deadlineBefore, set: func(p *pending, i int) { p.dlIdx = i }}
	q.byKey = map[string]*pheap{}
	q.demand = map[int]int{}
	q.minDemand = -1
}

func (q *admitQueue) len() int { return q.rank.len() }

// push admits p, or fails with ErrOverloaded when the queue is at capacity.
func (q *admitQueue) push(p *pending) error {
	q.init()
	if q.rank.len() >= q.max {
		return ErrOverloaded
	}
	q.requeue(p)
	return nil
}

// requeue inserts an entry into every index without the capacity check: the
// re-admission path for an entry popped provisionally (popRefill's
// incompatible case) that must go back even if the queue filled meanwhile.
func (q *admitQueue) requeue(p *pending) {
	q.init()
	p.dlIdx, p.keyIdx = -1, -1
	q.rank.push(p)
	if !p.job.Deadline.IsZero() {
		q.dl.push(p)
	}
	if key := p.job.BatchKey; key != "" {
		kh := q.byKey[key]
		if kh == nil {
			kh = &pheap{less: rankBefore, set: func(p *pending, i int) { p.keyIdx = i }}
			q.byKey[key] = kh
		}
		kh.push(p)
	}
	q.demand[p.job.Cards]++
	if q.minDemand >= 0 && p.job.Cards < q.minDemand {
		q.minDemand = p.job.Cards
	}
}

// detach unlinks an entry that has already left the rank heap from the
// deadline, key and demand indexes.
func (q *admitQueue) detach(p *pending) {
	if p.dlIdx >= 0 {
		q.dl.remove(p.dlIdx)
	}
	if p.keyIdx >= 0 {
		kh := q.byKey[p.job.BatchKey]
		kh.remove(p.keyIdx)
		if kh.len() == 0 {
			delete(q.byKey, p.job.BatchKey)
		}
	}
	if n := q.demand[p.job.Cards] - 1; n > 0 {
		q.demand[p.job.Cards] = n
	} else {
		delete(q.demand, p.job.Cards)
		if p.job.Cards == q.minDemand {
			q.minDemand = -1 // the cached min left the queue
		}
	}
}

// fitsAny reports whether any queued job's demand fits freeCards — the O(1)
// early-out that keeps dispatch cheap while the fleet is saturated.
func (q *admitQueue) fitsAny(freeCards int) bool {
	if q.rank.len() == 0 {
		return false
	}
	if q.minDemand < 0 {
		min := -1
		for d := range q.demand {
			if min < 0 || d < min {
				min = d
			}
		}
		q.minDemand = min
	}
	return q.minDemand <= freeCards
}

// popFit removes and returns the best-ranked job that fits freeCards, and
// whether granting it is a backfill (a better-ranked job remains waiting
// because its demand does not fit). Returns nil when nothing fits.
//
// Better-ranked jobs that do not fit are popped and pushed back, so the cost
// is O((s+1) log n) for s skipped entries — and the fitsAny probe means the
// saturated case (nothing fits) never touches the heap at all.
func (q *admitQueue) popFit(freeCards int) (p *pending, backfill bool) {
	q.init()
	if !q.fitsAny(freeCards) {
		return nil, false
	}
	var skipped []*pending
	for q.rank.len() > 0 {
		top := q.rank.pop()
		if top.job.Cards <= freeCards {
			p = top
			break
		}
		skipped = append(skipped, top)
	}
	for _, s := range skipped {
		q.rank.push(s)
	}
	if p == nil {
		return nil, false
	}
	q.detach(p)
	return p, len(skipped) > 0
}

// popRiders removes and returns up to max additional queued jobs compatible
// with a grant: same non-empty batch key and the exact same card demand, in
// rank order. Demand equality is load-bearing twice over — riders execute the
// leader's program shape on the leader's card set, and it guarantees a rider
// can never be one of dispatchPass's temporarily-popped skipped entries
// (skipped entries demand strictly more cards than the leader was granted).
func (q *admitQueue) popRiders(key string, cards, max int) []*pending {
	q.init()
	if key == "" || max <= 0 {
		return nil
	}
	kh := q.byKey[key]
	var out []*pending
	for len(out) < max && kh != nil && kh.len() > 0 {
		top := kh.items[0]
		if top.job.Cards != cards {
			break
		}
		q.rank.remove(top.rankIdx)
		q.detach(top) // removes from kh too
		out = append(out, top)
		if kh.len() == 0 {
			kh = nil
		}
	}
	return out
}

// popRefill hands a finishing grant's cards straight to the next compatible
// job: it pops the best-ranked job fitting the grant, and keeps it only when
// that job shares the grant's batch key (so the cards never bounce through
// the free list). An incompatible best-ranked job is pushed back untouched —
// the caller releases the cards and the normal dispatch path, with its
// locality-aware allocator, grants that job fresh ones. This keeps refill
// strictly fair: a grant is only ever reused by the job dispatch would have
// picked anyway.
func (q *admitQueue) popRefill(grantCards int, key string) *pending {
	if key == "" {
		return nil
	}
	p, _ := q.popFit(grantCards)
	if p == nil {
		return nil
	}
	if p.job.BatchKey != key {
		q.requeue(p)
		return nil
	}
	return p
}

// expire removes and returns jobs whose deadline has already passed, in
// deadline order. Cost is O(e log n) for e expired jobs: the deadline heap
// surfaces exactly the due entries, never the rest of the queue.
func (q *admitQueue) expire(now time.Time) []*pending {
	q.init()
	var out []*pending
	for q.dl.len() > 0 {
		top := q.dl.items[0]
		if !now.After(top.job.Deadline) {
			break
		}
		q.dl.remove(top.dlIdx)
		q.rank.remove(top.rankIdx)
		q.detach(top) // dlIdx already -1; unlinks key + demand
		out = append(out, top)
	}
	return out
}

// drain empties the queue (server shutdown), in rank order.
func (q *admitQueue) drain() []*pending {
	q.init()
	var out []*pending
	for q.rank.len() > 0 {
		p := q.rank.pop()
		q.detach(p)
		out = append(out, p)
	}
	return out
}

// linearQueue is the pre-indexed admission queue: arrival-ordered slice,
// rank computed by scanning. It is kept as the differential oracle — the
// property tests drive random job sets through both implementations and the
// scheduler microbenchmarks report the scan-vs-heap gap — and it shares
// rankBefore with the heap, so the two can only diverge structurally.
type linearQueue struct {
	max   int
	items []*pending
}

func (q *linearQueue) len() int { return len(q.items) }

func (q *linearQueue) push(p *pending) error {
	if len(q.items) >= q.max {
		return ErrOverloaded
	}
	q.items = append(q.items, p)
	return nil
}

func (q *linearQueue) popFit(freeCards int) (p *pending, backfill bool) {
	best, bestIdx := (*pending)(nil), -1
	for i, it := range q.items {
		if it.job.Cards > freeCards {
			continue
		}
		if best == nil || rankBefore(it, best) {
			best, bestIdx = it, i
		}
	}
	if best == nil {
		return nil, false
	}
	skippedBetter := false
	for _, it := range q.items {
		if it != best && it.job.Cards > freeCards && rankBefore(it, best) {
			skippedBetter = true
			break
		}
	}
	q.items = append(q.items[:bestIdx], q.items[bestIdx+1:]...)
	return best, skippedBetter
}

func (q *linearQueue) expire(now time.Time) []*pending {
	var out []*pending
	kept := q.items[:0]
	for _, it := range q.items {
		if !it.job.Deadline.IsZero() && now.After(it.job.Deadline) {
			out = append(out, it)
			continue
		}
		kept = append(kept, it)
	}
	for i := len(kept); i < len(q.items); i++ {
		q.items[i] = nil
	}
	q.items = kept
	return out
}
