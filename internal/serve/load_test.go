package serve

import (
	"context"
	"errors"
	"fmt"
	stdruntime "runtime"
	"sync"
	"testing"
	"time"

	"hydra/internal/fheop"
	"hydra/internal/hw"
	"hydra/internal/sim"
	"hydra/internal/task"
)

// tinyBuild is a cheap synthetic job: card 0 computes and broadcasts to the
// rest of the grant, which compute on receipt. Small enough that a load test
// can push hundreds of instances through the simulator quickly.
func tinyBuild(cards int) (*task.Program, error) {
	b := task.NewBuilder(cards, cards)
	b.Step("tiny")
	h := b.Compute(0, fheop.Of(fheop.HAdd, 4, fheop.Rotation, 1), 18, "A")
	if cards > 1 {
		peers := make([]int, 0, cards-1)
		for c := 1; c < cards; c++ {
			peers = append(peers, c)
		}
		recvs := b.Send(0, h, peers, 1<<16, "bcast")
		for i, c := range peers {
			b.ComputeAfterRecv(c, recvs[i], fheop.Of(fheop.HAdd, 4), 18, "B")
		}
	}
	return b.Build(), nil
}

// checkNoGoroutineLeak asserts the goroutine census returns to its baseline
// after the server closes, retrying while runtime internals settle.
func checkNoGoroutineLeak(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := stdruntime.NumGoroutine(); n <= base {
			return
		} else if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			buf = buf[:stdruntime.Stack(buf, true)]
			t.Fatalf("goroutine leak: %d running, baseline %d\n%s", n, base, buf)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestLoadConcurrentJobsNoLeaks drives 240 concurrent synthetic jobs through
// the sim backend. Every admitted job must complete, and after Close the
// process must hold no serving goroutines. Run under -race this is the
// subsystem's main concurrency certification.
func TestLoadConcurrentJobsNoLeaks(t *testing.T) {
	base := stdruntime.NumGoroutine()

	// Calibrate dilation so each job occupies its cards for ~2ms of real
	// time — enough to force genuine overlap between the 240 jobs without
	// slowing the suite.
	prog, err := tinyBuild(2)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := sim.Run(prog, sim.HydraConfig())
	if err != nil {
		t.Fatal(err)
	}
	dilation := 0.002 / ref.Makespan

	s, err := New(Config{
		Fleet:      hw.Fleet{Cards: 16, CardsPerServer: 8},
		Backend:    &SimBackend{Cfg: sim.HydraConfig(), Dilation: dilation},
		QueueDepth: 512,
	})
	if err != nil {
		t.Fatal(err)
	}

	const jobs = 240
	demands := []int{1, 2, 4}
	errs := make([]error, jobs)
	var wg sync.WaitGroup
	for i := 0; i < jobs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tk, err := s.Submit(&Job{
				ID:    fmt.Sprintf("load-%03d", i),
				Cards: demands[i%len(demands)],
				Build: tinyBuild,
			})
			if err != nil {
				errs[i] = err
				return
			}
			res, err := tk.Wait(context.Background())
			if err != nil {
				errs[i] = err
				return
			}
			if len(res.Cards) != demands[i%len(demands)] {
				errs[i] = fmt.Errorf("job %s got %d cards, want %d", res.JobID, len(res.Cards), demands[i%len(demands)])
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("job %d: %v", i, err)
		}
	}

	snap := s.Metrics().Snapshot()
	if snap.Completed != jobs {
		t.Errorf("completed %d jobs, want %d", snap.Completed, jobs)
	}
	if snap.Queued != 0 || snap.Running != 0 || snap.CardsBusy != 0 {
		t.Errorf("gauges not drained: queued=%d running=%d cardsBusy=%d", snap.Queued, snap.Running, snap.CardsBusy)
	}
	if snap.ExecP50 <= 0 || snap.ExecP99 < snap.ExecP50 {
		t.Errorf("latency percentiles look wrong: p50=%g p99=%g", snap.ExecP50, snap.ExecP99)
	}

	s.Close()
	checkNoGoroutineLeak(t, base)
}

// gateBackend blocks every job on a shared gate (honoring cancellation), so
// tests control exactly when cards free up.
type gateBackend struct {
	mu      sync.Mutex
	started []string
	gate    chan struct{}
}

func (b *gateBackend) Name() string { return "gate" }

func (b *gateBackend) Run(ctx context.Context, job *Job, pl sim.Placement) (*ExecReport, error) {
	b.mu.Lock()
	b.started = append(b.started, job.ID)
	b.mu.Unlock()
	select {
	case <-b.gate:
		return &ExecReport{}, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// TestSaturationShedsLoad proves the admission bound: with the fleet wedged
// and the queue full, Submit fails fast with ErrOverloaded and the queue
// gauge never exceeds its configured depth — overload sheds, it does not
// queue unboundedly.
func TestSaturationShedsLoad(t *testing.T) {
	base := stdruntime.NumGoroutine()
	const depth = 3
	be := &gateBackend{gate: make(chan struct{})}
	s, err := New(Config{
		Fleet:      hw.Fleet{Cards: 2, CardsPerServer: 2},
		Backend:    be,
		QueueDepth: depth,
	})
	if err != nil {
		t.Fatal(err)
	}

	// One job runs (and wedges on the gate); `depth` more fill the queue.
	var tickets []*Ticket
	for i := 0; i < 1+depth; i++ {
		tk, err := s.Submit(&Job{ID: fmt.Sprintf("fill-%d", i), Cards: 2, Build: tinyBuild})
		if err != nil {
			t.Fatalf("job %d should admit: %v", i, err)
		}
		tickets = append(tickets, tk)
	}

	// Everything past the bound is shed with the typed error.
	const extra = 20
	for i := 0; i < extra; i++ {
		_, err := s.Submit(&Job{ID: fmt.Sprintf("shed-%d", i), Cards: 2, Build: tinyBuild})
		if !errors.Is(err, ErrOverloaded) {
			t.Fatalf("saturated submit %d: got %v, want ErrOverloaded", i, err)
		}
		if q := s.Metrics().Snapshot().Queued; q > depth {
			t.Fatalf("queue grew past its bound: %d > %d", q, depth)
		}
	}

	snap := s.Metrics().Snapshot()
	if snap.Rejected != extra {
		t.Errorf("rejected = %d, want %d", snap.Rejected, extra)
	}
	if snap.Queued != depth || snap.Running != 1 {
		t.Errorf("gauges: queued=%d running=%d, want %d/1", snap.Queued, snap.Running, depth)
	}

	// Open the gate: the wedged fleet drains and every admitted job finishes.
	close(be.gate)
	for i, tk := range tickets {
		if _, err := tk.Wait(context.Background()); err != nil {
			t.Errorf("admitted job %d failed after drain: %v", i, err)
		}
	}
	s.Drain()
	if snap := s.Metrics().Snapshot(); snap.Completed != 1+depth {
		t.Errorf("completed = %d, want %d", snap.Completed, 1+depth)
	}

	s.Close()
	checkNoGoroutineLeak(t, base)
}

// TestFleetScaleLoad drives 10^4 jobs through a 1024-card server with
// continuous batching on — the fleet-scale certification of the indexed
// scheduler. Arrivals land through SubmitBatch in bursts (one lock
// acquisition per burst), every admitted job must terminate, the grant
// accounting must balance exactly (completed = grants + coalesced riders),
// and after Close the process must hold no serving goroutines. Run under
// -race this doubles as the concurrency audit of the heap/bitmap hot path.
func TestFleetScaleLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet-scale load test skipped in -short")
	}
	base := stdruntime.NumGoroutine()

	const (
		jobs      = 10000
		burst     = 512
		fleetSize = 1024
	)
	s, err := New(Config{
		Fleet:         hw.Fleet{Cards: fleetSize, CardsPerServer: 8},
		Backend:       &SimBackend{Cfg: sim.HydraConfig()}, // dilation 0: pure scheduler stress
		QueueDepth:    jobs + 1,
		CoalesceLimit: 8,
	})
	if err != nil {
		t.Fatal(err)
	}

	type shape struct {
		name  string
		cards int
		key   string // empty = private grants, exercising the no-batch path
	}
	shapes := []shape{{"conv", 2, "conv"}, {"bsgs", 4, "bsgs"}, {"boot", 8, ""}}

	tickets := make([]*Ticket, 0, jobs)
	peak := 0
	for lo := 0; lo < jobs; lo += burst {
		hi := lo + burst
		if hi > jobs {
			hi = jobs
		}
		batch := make([]*Job, 0, hi-lo)
		for i := lo; i < hi; i++ {
			sh := shapes[i%len(shapes)]
			batch = append(batch, &Job{
				ID:       fmt.Sprintf("fleet-%05d", i),
				Cards:    sh.cards,
				BatchKey: sh.key,
				Build:    tinyBuild,
			})
		}
		tks, errs := s.SubmitBatch(batch)
		for i, err := range errs {
			if err != nil {
				t.Fatalf("burst submit %d+%d: %v", lo, i, err)
			}
		}
		tickets = append(tickets, tks...)
		if n := stdruntime.NumGoroutine(); n > peak {
			peak = n
		}
	}

	for i, tk := range tickets {
		if _, err := tk.Wait(context.Background()); err != nil {
			t.Fatalf("job %d failed: %v", i, err)
		}
	}
	s.Drain()

	snap := s.Metrics().Snapshot()
	if snap.Submitted != jobs || snap.Completed != jobs {
		t.Errorf("submitted %d / completed %d, want %d", snap.Submitted, snap.Completed, jobs)
	}
	if snap.Queued != 0 || snap.Running != 0 || snap.CardsBusy != 0 {
		t.Errorf("gauges not drained: queued=%d running=%d cardsBusy=%d", snap.Queued, snap.Running, snap.CardsBusy)
	}
	// Every job left the queue on exactly one grant round: as a leader
	// (grants) or as a rider (coalesced).
	if snap.Grants+snap.Coalesced != jobs {
		t.Errorf("grant accounting: grants %d + coalesced %d != %d jobs", snap.Grants, snap.Coalesced, jobs)
	}
	if snap.Coalesced == 0 {
		t.Error("a keyed 10^4-job stream through 1024 cards should coalesce")
	}
	if snap.Refills == 0 {
		t.Error("sustained same-shape pressure should refill finishing grants")
	}
	if peak <= base {
		t.Errorf("load never ran concurrently: peak goroutines %d, baseline %d", peak, base)
	}

	s.Close()
	checkNoGoroutineLeak(t, base)
}
