package serve

// This file is the policy core shared by the live Server (serve.go) and the
// virtual-time fleet replayer (replay.go): both make their grant decisions
// through dispatchPass and their completion-time reuse decisions through
// admitQueue.popRefill, so the saturation curves the replayer produces are
// curves of the very scheduler the live server runs.

// decision is one grant produced by a dispatch pass: a leader job, the
// compatible riders coalesced onto its grant, the physical card set, and
// whether the grant is a backfill past a better-ranked job that did not fit.
type decision struct {
	lead     *pending
	riders   []*pending // same batch key and card demand as lead; may be nil
	cards    []int
	backfill bool
}

// jobs returns the grant's job count (leader plus riders).
func (d *decision) jobs() int { return 1 + len(d.riders) }

// dispatchPass drains the admission queue onto the free cards in rank order,
// with backfill and continuous-batching coalescing, and returns every grant
// the free cards allow. One pass makes all decisions: the queue's rank heap
// is popped exactly once per entry (granted entries leave, non-fitting
// entries are pushed back at the end), so a full pass is O(n log n) against
// the old O(n) scan per grant — and the fitsAny probe makes the saturated
// no-op pass O(1).
//
// coalesce bounds the jobs per grant: <= 1 grants per-job (the ablation
// baseline), k > 1 additionally pops up to k-1 riders sharing the leader's
// batch key and exact card demand — but only when the fleet is starved for
// that demand. A batch of b dilates the grant to t*(a + (1-a)*b), so riding
// is a win only when the rider could not get cards of its own: if, after the
// leader's allocation, another same-demand grant still fits, the would-be
// rider stays queued and the pass grants it in parallel on idle cards
// instead. Without the gate, a burst into a large, mostly-idle fleet
// serializes onto few grants and throughput drops below the per-job
// baseline. Riders can never collide with the skipped set: a skipped entry
// demands strictly more cards than were free when it was skipped, hence
// strictly more than any later leader's demand.
func dispatchPass(q *admitQueue, f *freeList, coalesce int) []decision {
	q.init()
	var out []decision
	var skipped []*pending
	// Invariant: the demand index covers heap ∪ skipped, and every skipped
	// entry demands more than f.len(); so while fitsAny holds, a fitting
	// entry exists in the heap and the inner pop loop terminates on it.
	for q.fitsAny(f.len()) {
		var top *pending
		for {
			top = q.rank.pop()
			if top.job.Cards <= f.len() {
				break
			}
			skipped = append(skipped, top)
		}
		q.detach(top)
		d := decision{lead: top, backfill: len(skipped) > 0}
		starved := f.len()-top.job.Cards < top.job.Cards
		if coalesce > 1 && top.job.BatchKey != "" && starved {
			d.riders = q.popRiders(top.job.BatchKey, top.job.Cards, coalesce-1)
		}
		d.cards = f.take(top.job.Cards)
		out = append(out, d)
	}
	for _, s := range skipped {
		q.rank.push(s)
	}
	return out
}
