package serve

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

// TestAllocateCardsGolden pins the allocator byte-for-byte: best-fit single
// server when one fits, fullest-first spanning otherwise.
func TestAllocateCardsGolden(t *testing.T) {
	cases := []struct {
		name string
		free []int
		n    int
		cps  int
		want string
	}{
		{"whole-empty-fleet", []int{0, 1, 2, 3, 4, 5, 6, 7}, 4, 8, "[0 1 2 3]"},
		{"prefers-tighter-server", []int{0, 1, 2, 3, 4, 8, 9}, 2, 8, "[8 9]"},
		{"exact-fit-server", []int{0, 1, 2, 8, 9, 10, 11}, 4, 8, "[8 9 10 11]"},
		{"tie-breaks-low-server", []int{0, 1, 8, 9}, 2, 8, "[0 1]"},
		{"spans-fullest-first", []int{0, 1, 8, 9, 10, 16}, 5, 8, "[0 1 8 9 10]"},
		{"spans-three-servers", []int{0, 8, 16, 17}, 4, 8, "[0 8 16 17]"},
		{"whole-fleet", []int{0, 1, 2, 3, 8, 9, 10, 11}, 8, 8, "[0 1 2 3 8 9 10 11]"},
		{"n-zero", []int{0, 1}, 0, 8, "[]"},
		{"n-too-large", []int{0, 1}, 3, 8, "[]"},
	}
	for _, tc := range cases {
		got := fmt.Sprint(allocateCards(tc.free, tc.n, tc.cps))
		if got != tc.want {
			t.Errorf("%s: allocateCards(%v, %d, %d) = %s, want %s", tc.name, tc.free, tc.n, tc.cps, got, tc.want)
		}
	}
}

// TestQueueRankAndBackfillGolden pins the admission order and the backfill
// flag byte-for-byte: priority, then deadline, then arrival; a small job
// granted past a ranked-ahead big job is marked as backfill.
func TestQueueRankAndBackfillGolden(t *testing.T) {
	t0 := time.Unix(1000, 0)
	mk := func(id string, pri, cards int, deadline time.Duration, seq uint64) *pending {
		j := &Job{ID: id, Priority: pri, Cards: cards}
		if deadline > 0 {
			j.Deadline = t0.Add(deadline)
		}
		return &pending{job: j, ticket: newTicket(id), seq: seq}
	}
	q := &admitQueue{max: 16}
	for _, p := range []*pending{
		mk("big-high", 5, 8, 0, 0),
		mk("small-low", 0, 2, 0, 1),
		mk("small-mid", 2, 2, 0, 2),
		mk("small-dead", 2, 2, time.Minute, 3), // same priority, earlier via deadline
		mk("small-fifo", 2, 2, 0, 4),
	} {
		if err := q.push(p); err != nil {
			t.Fatal(err)
		}
	}
	var log []string
	for free := 4; q.len() > 0; {
		p, backfill := q.popFit(free)
		if p == nil {
			free = 8 // open up the fleet so big-high finally fits
			continue
		}
		log = append(log, fmt.Sprintf("grant %s cards=%d backfill=%v", p.job.ID, p.job.Cards, backfill))
	}
	got := strings.Join(log, "\n")
	want := strings.Join([]string{
		// 4 free cards: big-high (8 cards) cannot fit, every small grant is
		// a backfill past it, in deadline-then-priority-then-FIFO order.
		"grant small-dead cards=2 backfill=true",
		"grant small-mid cards=2 backfill=true",
		"grant small-fifo cards=2 backfill=true",
		"grant small-low cards=2 backfill=true",
		// 8 free cards: the big job finally runs, not a backfill.
		"grant big-high cards=8 backfill=false",
	}, "\n")
	if got != want {
		t.Errorf("decision transcript mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestDispatchTranscriptGolden replays a fixed-seed workload through the
// pure scheduler pieces (queue + free list) with a fake clock and asserts
// the full decision transcript byte-for-byte. This is the determinism
// contract: same seed, same fleet, same decisions.
func TestDispatchTranscriptGolden(t *testing.T) {
	shapes := []Shape{
		{Name: "small", Weight: 3, Cards: 2, Priority: 0},
		{Name: "large", Weight: 1, Cards: 6, Priority: 1},
	}
	w := Workload{Seed: 7, Rate: 50, Horizon: 200 * time.Millisecond, Shapes: shapes}
	arrivals, err := w.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if len(arrivals) < 6 {
		t.Fatalf("seed 7 should yield at least 6 arrivals in 200ms at 50/s, got %d", len(arrivals))
	}
	arrivals = arrivals[:6]

	const cps = 4
	free := newFreeList(8, cps) // two servers of four
	q := &admitQueue{max: 16}
	var log []string
	var seq uint64
	running := map[string][]int{}

	dispatch := func() {
		for {
			p, backfill := q.popFit(free.len())
			if p == nil {
				return
			}
			cards := free.take(p.job.Cards)
			running[p.job.ID] = cards
			log = append(log, fmt.Sprintf("start %-10s cards=%v backfill=%v", p.job.ID, cards, backfill))
		}
	}
	finish := func(id string) {
		free.add(running[id])
		delete(running, id)
		log = append(log, fmt.Sprintf("done  %s", id))
		dispatch()
	}

	// Interleave the six arrivals with two completions, all deterministic.
	for i, a := range arrivals {
		if err := q.push(&pending{job: a.Job, ticket: newTicket(a.Job.ID), seq: seq}); err != nil {
			log = append(log, fmt.Sprintf("shed  %s (%v)", a.Job.ID, err))
			continue
		}
		seq++
		log = append(log, fmt.Sprintf("admit %-10s shape=%s", a.Job.ID, a.Shape))
		dispatch()
		if i == 3 {
			finish(arrivals[0].Job.ID)
		}
	}
	got := strings.Join(log, "\n")
	want := strings.Join([]string{
		"admit small-0000 shape=small",
		"start small-0000 cards=[0 1] backfill=false",
		"admit large-0001 shape=large",
		// 6 cards do not fit either half-full server: the grant spans both,
		// taking the emptier server (4..7) whole plus two from server 0.
		"start large-0001 cards=[2 3 4 5 6 7] backfill=false",
		"admit small-0002 shape=small",
		"admit small-0003 shape=small",
		"done  small-0000",
		// The freed pair goes to the earliest queued small, FIFO within rank.
		"start small-0002 cards=[0 1] backfill=false",
		"admit small-0004 shape=small",
		"admit small-0005 shape=small",
	}, "\n")
	if got != want {
		t.Errorf("dispatch transcript mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestQueueExpiry sheds queued jobs whose deadline passed, via the fake
// clock, without touching jobs that still have time.
func TestQueueExpiry(t *testing.T) {
	t0 := time.Unix(5000, 0)
	q := &admitQueue{max: 8}
	mk := func(id string, dl time.Time) *pending {
		return &pending{job: &Job{ID: id, Cards: 1, Deadline: dl}, ticket: newTicket(id)}
	}
	if err := q.push(mk("stale", t0.Add(10*time.Millisecond))); err != nil {
		t.Fatal(err)
	}
	if err := q.push(mk("fresh", t0.Add(time.Hour))); err != nil {
		t.Fatal(err)
	}
	if err := q.push(&pending{job: &Job{ID: "forever", Cards: 1}, ticket: newTicket("forever")}); err != nil {
		t.Fatal(err)
	}
	expired := q.expire(t0.Add(time.Second))
	if len(expired) != 1 || expired[0].job.ID != "stale" {
		t.Fatalf("expire returned %d jobs, want just 'stale'", len(expired))
	}
	if q.len() != 2 {
		t.Fatalf("queue kept %d jobs, want 2", q.len())
	}
}

// TestWorkloadDeterminism: the same seed yields byte-for-byte identical
// arrival sequences; a different seed diverges.
func TestWorkloadDeterminism(t *testing.T) {
	shapes := []Shape{
		{Name: "a", Weight: 1, Cards: 1},
		{Name: "b", Weight: 1, Cards: 2},
	}
	gen := func(seed int64) string {
		w := Workload{Seed: seed, Rate: 100, Horizon: 100 * time.Millisecond, Shapes: shapes}
		arr, err := w.Generate()
		if err != nil {
			t.Fatal(err)
		}
		var sb strings.Builder
		for _, a := range arr {
			fmt.Fprintf(&sb, "%s@%dus ", a.Job.ID, a.At.Microseconds())
		}
		return sb.String()
	}
	if gen(42) != gen(42) {
		t.Fatal("same seed produced different arrival sequences")
	}
	if gen(42) == gen(43) {
		t.Fatal("different seeds produced identical arrival sequences")
	}
}
