package serve

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"time"
)

// randomPendingSet draws n jobs with deliberately colliding priorities,
// deadlines and demands, so the rank order is decided at every tie-break
// level (priority, deadline, presence of a deadline, arrival seq).
func randomPendingSet(rng *rand.Rand, n int, t0 time.Time) []*pending {
	demands := []int{1, 2, 4, 6, 8}
	keys := []string{"", "conv", "bsgs"}
	out := make([]*pending, n)
	for i := range out {
		j := &Job{
			ID:       fmt.Sprintf("j%03d", i),
			Priority: rng.Intn(3),
			Cards:    demands[rng.Intn(len(demands))],
			BatchKey: keys[rng.Intn(len(keys))],
		}
		if rng.Intn(2) == 0 {
			// Few distinct deadlines, so deadline ties are common.
			j.Deadline = t0.Add(time.Duration(1+rng.Intn(4)) * time.Second)
		}
		out[i] = &pending{job: j, ticket: newTicket(j.ID), seq: uint64(i)}
	}
	return out
}

// clonePending deep-copies the scheduling-relevant state so the heap queue
// and the linear oracle never share mutable entries.
func clonePending(p *pending) *pending {
	j := *p.job
	return &pending{job: &j, ticket: p.ticket, submitted: p.submitted, seq: p.seq}
}

// TestPopFitMatchesLinearOracle drives random job sets through the indexed
// queue and the linear-scan reference with identical popFit/expire call
// sequences, and requires identical pops (job and backfill flag) at every
// step. This pins the heap's rankBefore invariant against the oracle that
// shares the comparator: any structural divergence (index corruption, a
// wrong sift, a stale demand count) shows up as a transcript mismatch.
func TestPopFitMatchesLinearOracle(t *testing.T) {
	t0 := time.Unix(9000, 0)
	for trial := 0; trial < 200; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		set := randomPendingSet(rng, 2+rng.Intn(40), t0)
		hq := newAdmitQueue(len(set))
		lq := &linearQueue{max: len(set)}
		for _, p := range set {
			if err := hq.push(p); err != nil {
				t.Fatal(err)
			}
			if err := lq.push(clonePending(p)); err != nil {
				t.Fatal(err)
			}
		}
		for step := 0; hq.len() > 0 || lq.len() > 0; step++ {
			if hq.len() != lq.len() {
				t.Fatalf("trial %d step %d: heap holds %d, linear holds %d", trial, step, hq.len(), lq.len())
			}
			switch rng.Intn(5) {
			case 0: // expire at a random instant; order differs by contract, compare sets
				now := t0.Add(time.Duration(rng.Intn(6)) * time.Second)
				he, le := hq.expire(now), lq.expire(now)
				hids, lids := idsOf(he), idsOf(le)
				sort.Strings(hids)
				sort.Strings(lids)
				if fmt.Sprint(hids) != fmt.Sprint(lids) {
					t.Fatalf("trial %d step %d: expire(%v) heap=%v linear=%v", trial, step, now, hids, lids)
				}
			default:
				free := 1 + rng.Intn(8)
				hp, hb := hq.popFit(free)
				lp, lb := lq.popFit(free)
				switch {
				case hp == nil && lp == nil:
					// Nothing fits either queue: force progress so the walk
					// terminates even when every remaining job is too wide.
					hp, hb = hq.popFit(8)
					lp, lb = lq.popFit(8)
				case hp == nil || lp == nil:
					t.Fatalf("trial %d step %d: popFit(%d) heap=%v linear=%v", trial, step, free, hp, lp)
				}
				if hp == nil {
					continue
				}
				if hp.job.ID != lp.job.ID || hb != lb {
					t.Fatalf("trial %d step %d: popFit(%d) heap=(%s,%v) linear=(%s,%v)",
						trial, step, free, hp.job.ID, hb, lp.job.ID, lb)
				}
			}
		}
	}
}

func idsOf(ps []*pending) []string {
	out := make([]string, len(ps))
	for i, p := range ps {
		out[i] = p.job.ID
	}
	return out
}

// TestAllocateCardsMatchesLinearOracle compares the bitmap allocator with
// the pre-bitmap reference on random free sets: identical output, element
// for element, including the n<=0 and n>len(free) edge contracts.
func TestAllocateCardsMatchesLinearOracle(t *testing.T) {
	for trial := 0; trial < 300; trial++ {
		rng := rand.New(rand.NewSource(int64(1000 + trial)))
		cps := []int{1, 2, 4, 8, 16}[rng.Intn(5)]
		fleet := cps * (1 + rng.Intn(8))
		var free []int
		for c := 0; c < fleet; c++ {
			if rng.Intn(3) > 0 {
				free = append(free, c)
			}
		}
		n := rng.Intn(fleet+2) - 1
		got := fmt.Sprint(allocateCards(free, n, cps))
		want := fmt.Sprint(allocateCardsLinear(free, n, cps))
		if got != want {
			t.Fatalf("trial %d: allocateCards(%v, %d, %d) = %s, oracle %s", trial, free, n, cps, got, want)
		}
	}
}

// TestFreeListSteadyStateMatchesOracle exercises the live bucket/bitmap
// structure through random take/add cycles — the steady state the scheduler
// actually runs in, where newFreeList is built once and mutated forever —
// and checks every take against the linear oracle applied to the enumerated
// free set.
func TestFreeListSteadyStateMatchesOracle(t *testing.T) {
	const fleet, cps = 64, 8
	for trial := 0; trial < 30; trial++ {
		rng := rand.New(rand.NewSource(int64(2000 + trial)))
		f := newFreeList(fleet, cps)
		var grants [][]int
		for step := 0; step < 200; step++ {
			if rng.Intn(2) == 0 && f.len() > 0 {
				n := 1 + rng.Intn(f.len())
				want := fmt.Sprint(allocateCardsLinear(f.freeCards(), n, cps))
				got := fmt.Sprint(f.take(n))
				if got != want {
					t.Fatalf("trial %d step %d: take(%d) = %s, oracle %s", trial, step, n, got, want)
				}
				grants = append(grants, parseCards(t, got, n))
			} else if len(grants) > 0 {
				i := rng.Intn(len(grants))
				f.add(grants[i])
				grants = append(grants[:i], grants[i+1:]...)
			}
		}
	}
}

func parseCards(t *testing.T, s string, n int) []int {
	t.Helper()
	out := make([]int, 0, n)
	var v int
	for _, field := range splitFields(s) {
		if _, err := fmt.Sscan(field, &v); err != nil {
			t.Fatalf("unparseable card list %q", s)
		}
		out = append(out, v)
	}
	return out
}

func splitFields(s string) []string {
	s = s[1 : len(s)-1] // strip [ ]
	if s == "" {
		return nil
	}
	var out []string
	start := -1
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ' ' {
			if start >= 0 {
				out = append(out, s[start:i])
				start = -1
			}
			continue
		}
		if start < 0 {
			start = i
		}
	}
	return out
}

// TestDispatchPassMatchesSequentialGrants proves the single-pass dispatcher
// equivalent to the legacy grant loop (repeated popFit + allocate against a
// shrinking free set) with coalescing off: same grants, same card sets, same
// backfill flags, in the same order.
func TestDispatchPassMatchesSequentialGrants(t *testing.T) {
	const fleet, cps = 32, 8
	t0 := time.Unix(9000, 0)
	for trial := 0; trial < 100; trial++ {
		rng := rand.New(rand.NewSource(int64(3000 + trial)))
		set := randomPendingSet(rng, 1+rng.Intn(30), t0)

		hq := newAdmitQueue(len(set))
		hf := newFreeList(fleet, cps)
		busy := 1 + rng.Intn(fleet)
		hf.take(busy) // random partial occupancy
		lq := &linearQueue{max: len(set)}
		lfree := hf.freeCards()
		for _, p := range set {
			if err := hq.push(p); err != nil {
				t.Fatal(err)
			}
			if err := lq.push(clonePending(p)); err != nil {
				t.Fatal(err)
			}
		}

		var want []string
		for {
			p, backfill := lq.popFit(len(lfree))
			if p == nil {
				break
			}
			cards := allocateCardsLinear(lfree, p.job.Cards, cps)
			lfree = removeCards(lfree, cards)
			want = append(want, fmt.Sprintf("%s %v backfill=%v", p.job.ID, cards, backfill))
		}

		var got []string
		for _, d := range dispatchPass(hq, hf, 1) {
			if len(d.riders) != 0 {
				t.Fatalf("trial %d: coalesce=1 produced riders", trial)
			}
			got = append(got, fmt.Sprintf("%s %v backfill=%v", d.lead.job.ID, d.cards, d.backfill))
		}
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("trial %d: dispatch transcript diverged\ngot:  %v\nwant: %v", trial, got, want)
		}
	}
}

func removeCards(free, taken []int) []int {
	drop := map[int]bool{}
	for _, c := range taken {
		drop[c] = true
	}
	out := free[:0]
	for _, c := range free {
		if !drop[c] {
			out = append(out, c)
		}
	}
	return out
}

// TestDispatchPassCoalesces pins the rider contract: same batch key and the
// exact same demand ride the leader's grant in rank order, bounded by the
// coalesce limit; different keys or demands never mix.
func TestDispatchPassCoalesces(t *testing.T) {
	mk := func(id, key string, cards, pri int, seq uint64) *pending {
		return &pending{job: &Job{ID: id, BatchKey: key, Cards: cards, Priority: pri}, ticket: newTicket(id), seq: seq}
	}
	set := func() []*pending {
		return []*pending{
			mk("a0", "conv", 2, 0, 0),
			mk("a1", "conv", 2, 0, 1),
			mk("b0", "bsgs", 2, 0, 2),
			mk("a2", "conv", 2, 0, 3),
			mk("a3", "conv", 4, 0, 4), // same key, wrong demand: never a rider
		}
	}
	run := func(free int) (string, int) {
		q := newAdmitQueue(16)
		for _, p := range set() {
			if err := q.push(p); err != nil {
				t.Fatal(err)
			}
		}
		f := newFreeList(free, 8)
		var got []string
		for _, d := range dispatchPass(q, f, 3) {
			got = append(got, fmt.Sprintf("%s+%v", d.lead.job.ID, idsOf(d.riders)))
		}
		return fmt.Sprint(got), q.len()
	}

	// Plentiful cards: 12 free cards cover the whole 12-card demand, so the
	// scarcity gate keeps every job on its own grant — full parallelism.
	if got, left := run(12); got != "[a0+[] a1+[] b0+[] a2+[] a3+[]]" || left != 0 {
		t.Fatalf("plentiful transcript = %v (%d queued), want all solo grants", got, left)
	}
	// Starved fleet: after a0's grant only 2 cards remain, so a1 cannot be
	// followed by another conv grant and takes a2 as a rider (bounded by
	// coalesce-1 = 2, but a3's demand disqualifies it). b0 and a3 stay queued.
	if got, left := run(4); got != "[a0+[] a1+[a2]]" || left != 2 {
		t.Fatalf("starved transcript = %v (%d queued), want [a0+[] a1+[a2]]", got, left)
	}
}

// TestPopRefillFairness pins refill's fairness contract: a finishing grant
// is reused only by the job dispatch would pick anyway — an incompatible
// best-ranked job forces the cards back to the free list (popRefill nil) and
// stays queued, unharmed, at its rank.
func TestPopRefillFairness(t *testing.T) {
	q := newAdmitQueue(8)
	hi := &pending{job: &Job{ID: "hi", BatchKey: "bsgs", Cards: 2, Priority: 5}, ticket: newTicket("hi"), seq: 0}
	lo := &pending{job: &Job{ID: "lo", BatchKey: "conv", Cards: 2, Priority: 0}, ticket: newTicket("lo"), seq: 1}
	for _, p := range []*pending{hi, lo} {
		if err := q.push(p); err != nil {
			t.Fatal(err)
		}
	}
	// A conv grant finishes; the best-ranked fitting job is bsgs — refill
	// must refuse and leave both queued.
	if p := q.popRefill(2, "conv"); p != nil {
		t.Fatalf("refill grabbed %s past a better-ranked incompatible job", p.job.ID)
	}
	if q.len() != 2 {
		t.Fatalf("refused refill lost jobs: %d left, want 2", q.len())
	}
	// A bsgs grant finishes; the best-ranked fitting job shares its key.
	p := q.popRefill(2, "bsgs")
	if p == nil || p.job.ID != "hi" {
		t.Fatalf("refill = %v, want hi", p)
	}
	if q.len() != 1 {
		t.Fatalf("queue should hold just lo, %d left", q.len())
	}
}

// --- Microbenchmarks: the indexed hot path vs the linear baseline ---------
//
// The acceptance bar for the rework is a >=10x lower per-decision scheduler
// overhead at fleet scale (1024 cards, depth-4096 queue). BenchmarkPopFit /
// BenchmarkPopFitLinear measure one dispatch decision (pop the best fitting
// job, put it back); BenchmarkAllocateCards / BenchmarkAllocateCardsLinear
// measure one grant's card allocation. scripts/bench.sh publishes the four
// into BENCH_sched.json.

const benchQueueDepth = 4096

func buildBenchQueue(push func(*pending) error) {
	rng := rand.New(rand.NewSource(77))
	demands := []int{1, 2, 4, 8, 16}
	t0 := time.Unix(9000, 0)
	for i := 0; i < benchQueueDepth; i++ {
		j := &Job{
			ID:       fmt.Sprintf("b%04d", i),
			Priority: rng.Intn(3),
			Cards:    demands[rng.Intn(len(demands))],
		}
		if i%2 == 0 {
			j.Deadline = t0.Add(time.Duration(1+rng.Intn(1000)) * time.Second)
		}
		if err := push(&pending{job: j, ticket: newTicket(j.ID), seq: uint64(i)}); err != nil {
			panic(err)
		}
	}
}

func BenchmarkPopFit(b *testing.B) {
	q := newAdmitQueue(benchQueueDepth)
	buildBenchQueue(q.push)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, _ := q.popFit(4)
		q.requeue(p)
	}
}

func BenchmarkPopFitLinear(b *testing.B) {
	q := &linearQueue{max: benchQueueDepth}
	buildBenchQueue(q.push)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, _ := q.popFit(4)
		if err := q.push(p); err != nil {
			b.Fatal(err)
		}
	}
}

const benchFleetCards, benchFleetCPS = 1024, 8

// benchOccupy paints a realistic fragmented occupancy: every other server
// half-busy, so best-fit has to hunt and spanning grants really span.
func benchOccupy(f *freeList) {
	for srv := 0; srv < benchFleetCards/benchFleetCPS; srv += 2 {
		for c := 0; c < benchFleetCPS/2; c++ {
			f.takeFromServer(srv, 1)
		}
	}
}

func BenchmarkAllocateCards(b *testing.B) {
	f := newFreeList(benchFleetCards, benchFleetCPS)
	benchOccupy(f)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cards := f.take(8)
		f.add(cards)
	}
}

func BenchmarkAllocateCardsLinear(b *testing.B) {
	f := newFreeList(benchFleetCards, benchFleetCPS)
	benchOccupy(f)
	free := f.freeCards()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if cards := allocateCardsLinear(free, 8, benchFleetCPS); cards == nil {
			b.Fatal("allocation failed")
		}
	}
}
