package serve

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strconv"
	"time"

	"hydra/internal/hw"
	"hydra/internal/sim"
)

// This file is the fleet-scale projection path: a discrete-event loop that
// drives the real scheduler structures — admitQueue, freeList, dispatchPass,
// popRefill — in virtual time. Execution is priced analytically instead of
// slept through, so a thousand-card fleet digesting 10^4+ jobs replays in
// milliseconds of wall clock. The decisions are the live Server's decisions
// (same policy core, sched.go); only the clock is synthetic. cmd/hydra-serve
// uses it for the saturation sweeps in BENCH_serve.json.

// CostFn prices one grant execution: the virtual seconds a grant of the
// given card set holds its cards to run `batch` coalesced instances of the
// job's program.
type CostFn func(job *Job, cards []int, batch int) (float64, error)

// SimCost builds a CostFn over the analytic machine model, memoized by
// (compatibility class, per-server span signature, batch): a placement
// affects cost only through how the grant splits across server boundaries,
// so two grants with the same split price identically.
func SimCost(cfg sim.Config, cps int) CostFn {
	cache := map[string]float64{}
	return func(job *Job, cards []int, batch int) (float64, error) {
		key := costKey(job, cards, cps, batch)
		if v, ok := cache[key]; ok {
			return v, nil
		}
		if job.Build == nil {
			return 0, fmt.Errorf("serve: replay job %s has no task-program builder", job.ID)
		}
		prog, err := job.Build(job.Cards)
		if err != nil {
			return 0, fmt.Errorf("serve: replay job %s: %w", job.ID, err)
		}
		res, err := sim.RunOn(prog, cfg, sim.Placement{Cards: cards, CardsPerServer: cps, Batch: batch})
		if err != nil {
			return 0, fmt.Errorf("serve: replay job %s: %w", job.ID, err)
		}
		cache[key] = res.Makespan
		return res.Makespan, nil
	}
}

// costKey canonicalizes a grant for the pricing cache. The class is the
// job's compatibility key (shape); the span signature is the per-server card
// counts sorted descending ("6" vs "4+2" vs "2+2+2").
func costKey(job *Job, cards []int, cps, batch int) string {
	class := job.BatchKey
	if class == "" {
		class = job.Tenant
	}
	if class == "" {
		class = job.ID
	}
	perServer := map[int]int{}
	for _, c := range cards {
		perServer[c/cps]++
	}
	counts := make([]int, 0, len(perServer))
	for _, n := range perServer {
		counts = append(counts, n)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(counts)))
	key := class + "/b" + strconv.Itoa(batch) + "/"
	for i, n := range counts {
		if i > 0 {
			key += "+"
		}
		key += strconv.Itoa(n)
	}
	return key
}

// ReplayConfig configures a virtual-time replay of the scheduler.
type ReplayConfig struct {
	Fleet      hw.Fleet
	QueueDepth int // 0 = DefaultQueueDepth
	Coalesce   int // continuous-batching bound, as Config.CoalesceLimit
	Cost       CostFn
}

// ReplayStats summarizes one replay: one point on a saturation curve.
type ReplayStats struct {
	Offered   int `json:"offered"`
	Admitted  int `json:"admitted"`
	Shed      int `json:"shed"` // rejected at admission, queue full
	Expired   int `json:"expired"`
	Completed int `json:"completed"`

	Grants    int `json:"grants"`
	Coalesced int `json:"coalesced"`
	Refills   int `json:"refills"`

	// Makespan spans the first arrival to the last completion, virtual
	// seconds. JobsPerSec is goodput: completions over that span.
	Makespan    float64 `json:"makespan_s"`
	JobsPerSec  float64 `json:"jobs_per_sec"`
	Utilization float64 `json:"utilization"` // busy card-seconds / (cards * makespan)

	QueueWaitP50 float64 `json:"queue_wait_p50_s"`
	QueueWaitP99 float64 `json:"queue_wait_p99_s"`
	ExecP50      float64 `json:"exec_p50_s"`
	ExecP99      float64 `json:"exec_p99_s"`
}

// replayEvent is one scheduled future occurrence in virtual time.
type replayEvent struct {
	t   float64
	seq uint64 // insertion order breaks time ties deterministically

	// Grant completion (cards non-nil): the batch finishes and the cards
	// refill or retire.
	batch []*pending
	cards []int
	cost  float64

	// Closed-loop arrival (job non-nil): a user's think time elapsed.
	job  *Job
	user int
}

// eventHeap is a binary min-heap on (t, seq).
type eventHeap struct {
	items []*replayEvent
	seq   uint64
}

func (h *eventHeap) push(e *replayEvent) {
	e.seq = h.seq
	h.seq++
	h.items = append(h.items, e)
	i := len(h.items) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.items[i], h.items[parent] = h.items[parent], h.items[i]
		i = parent
	}
}

func (h *eventHeap) less(a, b int) bool {
	ea, eb := h.items[a], h.items[b]
	if ea.t != eb.t {
		return ea.t < eb.t
	}
	return ea.seq < eb.seq
}

func (h *eventHeap) pop() *replayEvent {
	n := len(h.items)
	if n == 0 {
		return nil
	}
	top := h.items[0]
	h.items[0] = h.items[n-1]
	h.items[n-1] = nil
	h.items = h.items[:n-1]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < len(h.items) && h.less(l, min) {
			min = l
		}
		if r < len(h.items) && h.less(r, min) {
			min = r
		}
		if min == i {
			break
		}
		h.items[i], h.items[min] = h.items[min], h.items[i]
		i = min
	}
	return top
}

// replayEngine runs the discrete-event loop over the real scheduler state.
type replayEngine struct {
	rc    ReplayConfig
	q     *admitQueue
	free  *freeList
	depth int
	seq   uint64
	epoch time.Time // anchor mapping virtual seconds onto pending.submitted

	events eventHeap

	// Closed-loop hook: called when a job completes at virtual time t, so
	// the driver can re-arm the submitting user. Nil in open-loop replays.
	onDone func(p *pending, t float64)

	offered, admitted, shed, expired, completed int
	grants, coalesced, refills                  int
	waits, execs                                []float64

	busyCards int
	busyInt   float64 // card-seconds integral
	lastT     float64
	firstAt   float64
	endT      float64
	started   bool
	firstErr  error
}

func newReplayEngine(rc ReplayConfig) (*replayEngine, error) {
	if err := rc.Fleet.Validate(); err != nil {
		return nil, err
	}
	if rc.Cost == nil {
		return nil, fmt.Errorf("serve: replay needs a cost function")
	}
	depth := rc.QueueDepth
	if depth <= 0 {
		depth = DefaultQueueDepth
	}
	return &replayEngine{
		rc:    rc,
		q:     newAdmitQueue(depth),
		free:  newFreeList(rc.Fleet.Cards, rc.Fleet.CardsPerServer),
		depth: depth,
		epoch: time.Unix(0, 0).UTC(),
	}, nil
}

// advance integrates the busy-card gauge up to virtual time t.
func (e *replayEngine) advance(t float64) {
	if t > e.lastT {
		e.busyInt += float64(e.busyCards) * (t - e.lastT)
		e.lastT = t
	}
}

// vt maps virtual seconds onto the wall-clock axis pending.submitted lives on.
func (e *replayEngine) vt(t float64) time.Time { return e.epoch.Add(durationOf(t)) }

// arrive offers one job to the queue at virtual time t.
func (e *replayEngine) arrive(job *Job, t float64) error {
	e.advance(t)
	if !e.started || t < e.firstAt {
		e.firstAt, e.started = t, true
	}
	e.offered++
	if err := job.validate(e.rc.Fleet); err != nil {
		return err
	}
	p := &pending{job: job, ticket: newTicket(job.ID), submitted: e.vt(t), seq: e.seq}
	e.seq++
	if err := e.q.push(p); err != nil {
		e.shed++
		return nil
	}
	e.admitted++
	e.dispatch(t)
	return nil
}

// dispatch sheds expired jobs and grants everything the free cards allow,
// through the same dispatchPass the live server uses.
func (e *replayEngine) dispatch(t float64) {
	for range e.q.expire(e.vt(t)) {
		e.expired++
	}
	for _, d := range dispatchPass(e.q, e.free, e.rc.Coalesce) {
		e.startGrant(append([]*pending{d.lead}, d.riders...), d.cards, t, false)
	}
}

// startGrant prices a grant and schedules its completion.
func (e *replayEngine) startGrant(batch []*pending, cards []int, t float64, refill bool) {
	cost, err := e.rc.Cost(batch[0].job, cards, len(batch))
	if err != nil {
		// Pricing failures are workload programming errors; record the first
		// and let the grant complete at zero cost so the replay terminates.
		if e.firstErr == nil {
			e.firstErr = err
		}
		cost = 0
	}
	e.grants++
	e.coalesced += len(batch) - 1
	if refill {
		e.refills++
	}
	for _, p := range batch {
		e.waits = append(e.waits, t-e.vtInv(p.submitted))
	}
	e.busyCards += len(cards)
	e.events.push(&replayEvent{t: t + cost, batch: batch, cards: cards, cost: cost})
}

// vtInv maps a pending's submitted stamp back to virtual seconds.
func (e *replayEngine) vtInv(ts time.Time) float64 {
	return ts.Sub(e.epoch).Seconds()
}

// complete retires or refills a finished grant at virtual time t.
func (e *replayEngine) complete(ev *replayEvent, t float64) {
	e.advance(t)
	e.completed += len(ev.batch)
	for range ev.batch {
		e.execs = append(e.execs, ev.cost)
	}
	e.endT = t
	if e.onDone != nil {
		for _, p := range ev.batch {
			e.onDone(p, t)
		}
	}

	cards := ev.cards
	e.busyCards -= len(cards)
	key := ev.batch[0].job.BatchKey
	if e.rc.Coalesce > 1 && key != "" {
		for range e.q.expire(e.vt(t)) {
			e.expired++
		}
		if lead := e.q.popRefill(len(cards), key); lead != nil {
			riders := e.q.popRiders(key, lead.job.Cards, e.rc.Coalesce-1)
			keep, surplus := cards[:lead.job.Cards], cards[lead.job.Cards:]
			if len(surplus) > 0 {
				e.free.add(surplus)
			}
			e.startGrant(append([]*pending{lead}, riders...), keep, t, true)
			if len(surplus) > 0 {
				e.dispatch(t)
			}
			return
		}
	}
	e.free.add(cards)
	e.dispatch(t)
}

// run drains the event heap, interleaving the pregenerated open-loop
// arrivals (sorted by offset) with scheduled events.
func (e *replayEngine) run(arrivals []Arrival) error {
	next := 0
	for {
		var arrT = math.Inf(1)
		if next < len(arrivals) {
			arrT = arrivals[next].At.Seconds()
		}
		ev := e.peek()
		if ev == nil && arrT == math.Inf(1) {
			return nil
		}
		if ev == nil || arrT <= ev.t {
			a := arrivals[next]
			next++
			if err := e.arrive(a.Job, arrT); err != nil {
				return err
			}
			continue
		}
		e.events.pop()
		if ev.job != nil {
			if err := e.arrive(ev.job, ev.t); err != nil {
				return err
			}
			continue
		}
		e.complete(ev, ev.t)
	}
}

func (e *replayEngine) peek() *replayEvent {
	if len(e.events.items) == 0 {
		return nil
	}
	return e.events.items[0]
}

func (e *replayEngine) stats() *ReplayStats {
	span := e.endT - e.firstAt
	st := &ReplayStats{
		Offered:   e.offered,
		Admitted:  e.admitted,
		Shed:      e.shed,
		Expired:   e.expired,
		Completed: e.completed,
		Grants:    e.grants,
		Coalesced: e.coalesced,
		Refills:   e.refills,
		Makespan:  span,

		QueueWaitP50: percentile(e.waits, 0.50),
		QueueWaitP99: percentile(e.waits, 0.99),
		ExecP50:      percentile(e.execs, 0.50),
		ExecP99:      percentile(e.execs, 0.99),
	}
	if span > 0 {
		st.JobsPerSec = float64(e.completed) / span
		st.Utilization = e.busyInt / (float64(e.rc.Fleet.Cards) * span)
	}
	return st
}

// Replay drives a pregenerated open-loop arrival sequence through the
// scheduler in virtual time and returns the resulting saturation point.
// Arrivals must be sorted by offset (Workload generators emit them sorted).
func Replay(arrivals []Arrival, rc ReplayConfig) (*ReplayStats, error) {
	e, err := newReplayEngine(rc)
	if err != nil {
		return nil, err
	}
	if err := e.run(arrivals); err != nil {
		return nil, err
	}
	if e.firstErr != nil {
		return nil, e.firstErr
	}
	return e.stats(), nil
}

// ReplayClosed drives a fixed user population in closed loop: each user
// submits one job, waits for it to complete, thinks for an exponential time
// of the given mean, and submits again — the self-throttling regime of a
// real service with `users` concurrent clients (offered load ≈ users/think
// when the fleet keeps up). The replay ends when `jobs` jobs complete.
// Shapes are drawn per submission from the weighted mix; shed submissions
// re-enter think instead of retrying immediately.
func ReplayClosed(users, jobs int, think time.Duration, seed int64, shapes []Shape, rc ReplayConfig) (*ReplayStats, error) {
	if users <= 0 || jobs <= 0 {
		return nil, fmt.Errorf("serve: closed-loop replay needs positive users and jobs, got %d users, %d jobs", users, jobs)
	}
	if think <= 0 {
		return nil, fmt.Errorf("serve: closed-loop replay needs a positive think time")
	}
	if len(shapes) == 0 {
		return nil, fmt.Errorf("serve: closed-loop replay needs at least one shape")
	}
	totalW := 0.0
	for _, sh := range shapes {
		if sh.Weight <= 0 {
			return nil, fmt.Errorf("serve: shape %s needs a positive weight", sh.Name)
		}
		totalW += sh.Weight
	}
	e, err := newReplayEngine(rc)
	if err != nil {
		return nil, err
	}

	rng := rand.New(rand.NewSource(seed))
	thinkS := think.Seconds()
	nextID := 0
	draw := func(user int) *Job {
		pick := rng.Float64() * totalW
		sh := shapes[len(shapes)-1]
		for _, cand := range shapes {
			if pick < cand.Weight {
				sh = cand
				break
			}
			pick -= cand.Weight
		}
		id := nextID
		nextID++
		return &Job{
			ID:       fmt.Sprintf("u%d-%s-%06d", user, sh.Name, id),
			Tenant:   sh.Name,
			Priority: sh.Priority,
			Cards:    sh.Cards,
			Timeout:  sh.Timeout,
			BatchKey: sh.Name,
			Build:    sh.Build,
		}
	}
	rearm := func(user int, t float64) {
		gap := -math.Log(1-rng.Float64()) * thinkS
		e.events.push(&replayEvent{t: t + gap, job: draw(user), user: user})
	}

	// Re-arm users on completion. The submitting user is encoded in the job
	// ID; parsing it back keeps pending free of replay-only fields.
	e.onDone = func(p *pending, t float64) {
		var user int
		if _, err := fmt.Sscanf(p.job.ID, "u%d-", &user); err == nil {
			rearm(user, t)
		}
	}

	// Stagger the first submissions over one think interval so the replay
	// does not open on a synchronized thundering herd.
	for u := 0; u < users; u++ {
		gap := -math.Log(1-rng.Float64()) * thinkS
		e.events.push(&replayEvent{t: gap, job: draw(u), user: u})
	}

	// Closed loop: an arrival that gets shed re-enters think.
	for e.completed < jobs {
		ev := e.events.pop()
		if ev == nil {
			return nil, fmt.Errorf("serve: closed-loop replay stalled at %d/%d jobs", e.completed, jobs)
		}
		if ev.job != nil {
			shedBefore := e.shed
			if err := e.arrive(ev.job, ev.t); err != nil {
				return nil, err
			}
			if e.shed > shedBefore {
				rearm(ev.user, ev.t)
			}
			continue
		}
		e.complete(ev, ev.t)
	}
	if e.firstErr != nil {
		return nil, e.firstErr
	}
	return e.stats(), nil
}
