package serve

import (
	"context"
	"fmt"
	"time"

	"hydra/internal/ckks"
	"hydra/internal/cluster"
	"hydra/internal/sim"
)

// ExecReport is what a backend knows about a finished job beyond success.
type ExecReport struct {
	// SimSeconds is the analytic makespan of the job on its granted
	// placement (sim backend; zero for functional backends).
	SimSeconds float64
	// Result is the full simulation outcome when the backend is analytic.
	Result *sim.Result
}

// Backend executes granted jobs. The placement carries the physical card
// set and the fleet's server width, so backends can price (sim) or shape
// (cluster) the execution for where the scheduler landed the job.
type Backend interface {
	Name() string
	Run(ctx context.Context, job *Job, pl sim.Placement) (*ExecReport, error)
}

// SimBackend executes jobs on the analytic timing model: the job's program
// is built for the grant size, priced on the granted placement (so a grant
// spanning servers costs more than one confined to a server), and the card
// occupancy is emulated by a context-aware sleep of Dilation real seconds
// per simulated second. Dilation 0 makes jobs instantaneous — pure
// scheduler stress; Dilation 1 emulates the fleet in real time — capacity
// planning and load tests.
type SimBackend struct {
	Cfg      sim.Config
	Dilation float64
}

// Name implements Backend.
func (b *SimBackend) Name() string { return "sim" }

// Run implements Backend.
func (b *SimBackend) Run(ctx context.Context, job *Job, pl sim.Placement) (*ExecReport, error) {
	if job.Build == nil {
		return nil, fmt.Errorf("sim backend: job %s has no task-program builder", job.ID)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	prog, err := job.Build(len(pl.Cards))
	if err != nil {
		return nil, fmt.Errorf("sim backend: job %s: %w", job.ID, err)
	}
	res, err := sim.RunOn(prog, b.Cfg, pl)
	if err != nil {
		return nil, fmt.Errorf("sim backend: job %s: %w", job.ID, err)
	}
	if b.Dilation > 0 {
		if err := sleepCtx(ctx, durationOf(res.Makespan*b.Dilation)); err != nil {
			return nil, err
		}
	}
	return &ExecReport{SimSeconds: res.Makespan, Result: res}, nil
}

// sleepCtx sleeps for d or until the context expires.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// ClusterBackend executes jobs functionally: each grant gets a fresh
// goroutine-card cluster of the grant's size running real CKKS arithmetic,
// with the job's context (timeout, deadline, server shutdown) cancelling
// the card engines mid-flight.
type ClusterBackend struct {
	Params *ckks.Parameters
	// Eval is the shared evaluator template (the paper preloads identical
	// evaluation keys onto every FPGA).
	Eval *ckks.Evaluator
}

// Name implements Backend.
func (b *ClusterBackend) Name() string { return "cluster" }

// Run implements Backend.
func (b *ClusterBackend) Run(ctx context.Context, job *Job, pl sim.Placement) (*ExecReport, error) {
	if job.BuildCluster == nil {
		return nil, fmt.Errorf("cluster backend: job %s has no cluster builder", job.ID)
	}
	if pl.Batch > 1 {
		// The functional cluster executes one job's data; it has no batched
		// datapath to amortize over. Serve with CoalesceLimit <= 1.
		return nil, fmt.Errorf("cluster backend: job %s: batched grants (batch=%d) are not executable functionally", job.ID, pl.Batch)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	cj, err := job.BuildCluster(len(pl.Cards))
	if err != nil {
		return nil, fmt.Errorf("cluster backend: job %s: %w", job.ID, err)
	}
	cl := cluster.New(b.Params, b.Eval, len(pl.Cards))
	if cj.Preload != nil {
		if err := cj.Preload(cl); err != nil {
			return nil, fmt.Errorf("cluster backend: job %s preload: %w", job.ID, err)
		}
	}
	if err := cl.Run(ctx, cj.Programs); err != nil {
		return nil, fmt.Errorf("cluster backend: job %s: %w", job.ID, err)
	}
	if cj.Collect != nil {
		if err := cj.Collect(cl); err != nil {
			return nil, fmt.Errorf("cluster backend: job %s collect: %w", job.ID, err)
		}
	}
	return &ExecReport{}, nil
}
