package serve

import (
	"context"
	"errors"
	"sort"
	"sync"
	"time"
)

// maxSamples caps the latency sample buffers; beyond it, new samples are
// dropped (the counters keep counting). 64k samples cover any realistic
// load-test window without unbounded growth.
const maxSamples = 1 << 16

// Metrics is the serving layer's observability surface. Counters are
// monotonic; gauges reflect the instantaneous scheduler state; the latency
// buffers feed the percentile report. All methods are safe for concurrent
// use.
type Metrics struct {
	mu sync.Mutex

	submitted int64 // admitted into the queue
	completed int64 // finished successfully
	failed    int64 // finished with a non-cancellation error
	canceled  int64 // cancelled or timed out while running
	rejected  int64 // shed at admission (overload or closed)
	expired   int64 // shed by deadline (at admission or in queue)

	grants    int64 // card grants issued (a grant may carry several jobs)
	coalesced int64 // jobs that rode a shared grant beyond its leader
	refills   int64 // grants handed straight to a queued job, no free-list bounce

	queued    int // gauge: jobs waiting
	running   int // gauge: grants executing (== jobs when nothing coalesces)
	cardsBusy int // gauge: cards granted to running grants

	queueWait []float64 // seconds
	exec      []float64 // seconds
}

func (m *Metrics) admit() {
	m.mu.Lock()
	m.submitted++
	m.queued++
	m.mu.Unlock()
}

func (m *Metrics) reject() {
	m.mu.Lock()
	m.rejected++
	m.mu.Unlock()
}

func (m *Metrics) expire() {
	m.mu.Lock()
	m.expired++
	m.mu.Unlock()
}

// expireQueued sheds a job that was already admitted.
func (m *Metrics) expireQueued() {
	m.mu.Lock()
	m.expired++
	m.queued--
	m.mu.Unlock()
}

// startGrant records a fresh grant leaving the dispatcher: cards move from
// the free pool to busy, and every job on the grant (leader plus riders)
// leaves the queue with its own wait sample.
func (m *Metrics) startGrant(cards int, waits []time.Duration) {
	m.mu.Lock()
	m.queued -= len(waits)
	m.running++
	m.cardsBusy += cards
	m.grants++
	m.coalesced += int64(len(waits) - 1)
	for _, w := range waits {
		if len(m.queueWait) < maxSamples {
			m.queueWait = append(m.queueWait, w.Seconds())
		}
	}
	m.mu.Unlock()
}

// refillGrant records a running grant picking up its next batch of queued
// jobs without releasing its cards. cardsReleased is the trimmed surplus
// when the refill demand is narrower than the grant.
func (m *Metrics) refillGrant(cardsReleased int, waits []time.Duration) {
	m.mu.Lock()
	m.queued -= len(waits)
	m.cardsBusy -= cardsReleased
	m.grants++
	m.refills++
	m.coalesced += int64(len(waits) - 1)
	for _, w := range waits {
		if len(m.queueWait) < maxSamples {
			m.queueWait = append(m.queueWait, w.Seconds())
		}
	}
	m.mu.Unlock()
}

// jobsDone records the outcome of one grant execution round for its jobs
// batch; the grant (and its cards) may live on through a refill.
func (m *Metrics) jobsDone(jobs int, elapsed time.Duration, err error) {
	m.mu.Lock()
	switch {
	case err == nil:
		m.completed += int64(jobs)
		for i := 0; i < jobs && len(m.exec) < maxSamples; i++ {
			m.exec = append(m.exec, elapsed.Seconds())
		}
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		m.canceled += int64(jobs)
	default:
		m.failed += int64(jobs)
	}
	m.mu.Unlock()
}

// endGrant retires a grant: its remaining cards return to the free pool.
func (m *Metrics) endGrant(cards int) {
	m.mu.Lock()
	m.running--
	m.cardsBusy -= cards
	m.mu.Unlock()
}

// Snapshot is a point-in-time copy of the metrics with derived percentiles.
type Snapshot struct {
	Submitted int64 `json:"submitted"`
	Completed int64 `json:"completed"`
	Failed    int64 `json:"failed"`
	Canceled  int64 `json:"canceled"`
	Rejected  int64 `json:"rejected"`
	Expired   int64 `json:"expired"`

	Grants    int64 `json:"grants"`
	Coalesced int64 `json:"coalesced"`
	Refills   int64 `json:"refills"`

	Queued    int `json:"queued"`
	Running   int `json:"running"`
	CardsBusy int `json:"cards_busy"`

	QueueWaitP50 float64 `json:"queue_wait_p50_s"`
	QueueWaitP99 float64 `json:"queue_wait_p99_s"`
	ExecP50      float64 `json:"exec_p50_s"`
	ExecP99      float64 `json:"exec_p99_s"`
}

// Snapshot copies the current state.
func (m *Metrics) Snapshot() Snapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	return Snapshot{
		Submitted: m.submitted,
		Completed: m.completed,
		Failed:    m.failed,
		Canceled:  m.canceled,
		Rejected:  m.rejected,
		Expired:   m.expired,
		Grants:    m.grants,
		Coalesced: m.coalesced,
		Refills:   m.refills,
		Queued:    m.queued,
		Running:   m.running,
		CardsBusy: m.cardsBusy,

		QueueWaitP50: percentile(m.queueWait, 0.50),
		QueueWaitP99: percentile(m.queueWait, 0.99),
		ExecP50:      percentile(m.exec, 0.50),
		ExecP99:      percentile(m.exec, 0.99),
	}
}

// percentile returns the nearest-rank q-quantile of samples (0 when empty).
func percentile(samples []float64, q float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	sorted := append([]float64(nil), samples...)
	sort.Float64s(sorted)
	idx := int(q*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}
