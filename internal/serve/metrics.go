package serve

import (
	"context"
	"errors"
	"sort"
	"sync"
	"time"
)

// maxSamples caps the latency sample buffers; beyond it, new samples are
// dropped (the counters keep counting). 64k samples cover any realistic
// load-test window without unbounded growth.
const maxSamples = 1 << 16

// Metrics is the serving layer's observability surface. Counters are
// monotonic; gauges reflect the instantaneous scheduler state; the latency
// buffers feed the percentile report. All methods are safe for concurrent
// use.
type Metrics struct {
	mu sync.Mutex

	submitted int64 // admitted into the queue
	completed int64 // finished successfully
	failed    int64 // finished with a non-cancellation error
	canceled  int64 // cancelled or timed out while running
	rejected  int64 // shed at admission (overload or closed)
	expired   int64 // shed by deadline (at admission or in queue)

	queued    int // gauge: jobs waiting
	running   int // gauge: jobs executing
	cardsBusy int // gauge: cards granted to running jobs

	queueWait []float64 // seconds
	exec      []float64 // seconds
}

func (m *Metrics) admit() {
	m.mu.Lock()
	m.submitted++
	m.queued++
	m.mu.Unlock()
}

func (m *Metrics) reject() {
	m.mu.Lock()
	m.rejected++
	m.mu.Unlock()
}

func (m *Metrics) expire() {
	m.mu.Lock()
	m.expired++
	m.mu.Unlock()
}

// expireQueued sheds a job that was already admitted.
func (m *Metrics) expireQueued() {
	m.mu.Lock()
	m.expired++
	m.queued--
	m.mu.Unlock()
}

func (m *Metrics) start(cards int, wait time.Duration) {
	m.mu.Lock()
	m.queued--
	m.running++
	m.cardsBusy += cards
	if len(m.queueWait) < maxSamples {
		m.queueWait = append(m.queueWait, wait.Seconds())
	}
	m.mu.Unlock()
}

func (m *Metrics) finish(cards int, elapsed time.Duration, err error) {
	m.mu.Lock()
	m.running--
	m.cardsBusy -= cards
	switch {
	case err == nil:
		m.completed++
		if len(m.exec) < maxSamples {
			m.exec = append(m.exec, elapsed.Seconds())
		}
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		m.canceled++
	default:
		m.failed++
	}
	m.mu.Unlock()
}

// Snapshot is a point-in-time copy of the metrics with derived percentiles.
type Snapshot struct {
	Submitted int64 `json:"submitted"`
	Completed int64 `json:"completed"`
	Failed    int64 `json:"failed"`
	Canceled  int64 `json:"canceled"`
	Rejected  int64 `json:"rejected"`
	Expired   int64 `json:"expired"`

	Queued    int `json:"queued"`
	Running   int `json:"running"`
	CardsBusy int `json:"cards_busy"`

	QueueWaitP50 float64 `json:"queue_wait_p50_s"`
	QueueWaitP99 float64 `json:"queue_wait_p99_s"`
	ExecP50      float64 `json:"exec_p50_s"`
	ExecP99      float64 `json:"exec_p99_s"`
}

// Snapshot copies the current state.
func (m *Metrics) Snapshot() Snapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	return Snapshot{
		Submitted: m.submitted,
		Completed: m.completed,
		Failed:    m.failed,
		Canceled:  m.canceled,
		Rejected:  m.rejected,
		Expired:   m.expired,
		Queued:    m.queued,
		Running:   m.running,
		CardsBusy: m.cardsBusy,

		QueueWaitP50: percentile(m.queueWait, 0.50),
		QueueWaitP99: percentile(m.queueWait, 0.99),
		ExecP50:      percentile(m.exec, 0.50),
		ExecP99:      percentile(m.exec, 0.99),
	}
}

// percentile returns the nearest-rank q-quantile of samples (0 when empty).
func percentile(samples []float64, q float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	sorted := append([]float64(nil), samples...)
	sort.Float64s(sorted)
	idx := int(q*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}
