package serve

import (
	"fmt"
	"time"

	"hydra/internal/cluster"
	"hydra/internal/hw"
	"hydra/internal/task"
)

// Job is one FHE inference request. A job names how many cards it needs and
// how to build its per-card instruction streams for that grant — the program
// shape is the job's (Procedure 2 fixes the schedule within the grant); the
// card set, start time and co-tenants are the fleet scheduler's.
type Job struct {
	// ID identifies the job in tickets, errors and metrics.
	ID string
	// Tenant attributes the job (informational; admission is tenant-blind).
	Tenant string
	// Priority ranks admission: higher runs sooner.
	Priority int
	// Cards is the card demand. The scheduler grants exactly this many.
	Cards int
	// Timeout caps execution once the job starts (0 = server default).
	Timeout time.Duration
	// Deadline is the absolute completion bound. Admission rejects jobs
	// whose deadline is unmeetable (ErrDeadline); queued jobs whose deadline
	// passes are shed; running jobs are cancelled at the deadline.
	Deadline time.Time
	// EstCost is the job's estimated execution time in seconds. Left zero,
	// the server fills it from Config.Estimator.
	EstCost float64
	// BatchKey names the job's continuous-batching compatibility class.
	// Jobs sharing a non-empty key MUST be interchangeable work: identical
	// program shape, parameters and card demand, so that any of them can
	// execute as one batched run of the leader's program (sim prices the
	// batch via Placement.Batch). The scheduler then coalesces queued
	// same-key jobs onto one card grant, and hands a finishing grant's
	// cards straight to the next same-key job instead of bouncing them
	// through the free list. An empty key (the zero value) opts out: the
	// job always gets a private grant.
	BatchKey string

	// Build materializes the job's task program for a grant of the given
	// size (cards numbered 0..cards-1; the scheduler supplies the physical
	// placement). Required by SimBackend.
	Build func(cards int) (*task.Program, error)
	// BuildCluster materializes the job's functional instruction streams for
	// a grant of the given size. Required by ClusterBackend.
	BuildCluster func(cards int) (*ClusterJob, error)
}

// ClusterJob is a functional job body: per-card instruction streams plus the
// host-side preload and result-collection hooks around them.
type ClusterJob struct {
	Programs [][]cluster.Instr
	// Preload places inputs into the cards' stores before execution.
	Preload func(cl *cluster.Cluster) error
	// Collect extracts results after a successful run.
	Collect func(cl *cluster.Cluster) error
}

// validate checks the job against the fleet.
func (j *Job) validate(fleet hw.Fleet) error {
	if j == nil {
		return fmt.Errorf("serve: nil job")
	}
	if j.ID == "" {
		return fmt.Errorf("serve: job needs an ID")
	}
	if j.Cards <= 0 {
		return fmt.Errorf("serve: job %s: card demand must be positive, got %d", j.ID, j.Cards)
	}
	if j.Cards > fleet.Cards {
		return fmt.Errorf("serve: job %s needs %d cards, fleet has %d: %w", j.ID, j.Cards, fleet.Cards, ErrInfeasible)
	}
	if j.Build == nil && j.BuildCluster == nil {
		return fmt.Errorf("serve: job %s has no program builder", j.ID)
	}
	return nil
}
