package isa

import (
	"math/rand"
	"testing"
	"testing/quick"

	"hydra/internal/fheop"
	"hydra/internal/task"
)

// randomProgram builds a structurally valid random program from a seed.
func randomProgram(seed int64) *task.Program {
	rng := rand.New(rand.NewSource(seed))
	cards := 1 + rng.Intn(6)
	b := task.NewBuilder(cards, cards)
	steps := 1 + rng.Intn(3)
	for s := 0; s < steps; s++ {
		b.Step("s")
		lastCompute := make(map[int]task.Handle)
		nTasks := 1 + rng.Intn(10)
		for i := 0; i < nTasks; i++ {
			card := rng.Intn(cards)
			switch {
			case rng.Intn(3) > 0 || len(lastCompute) == 0 || cards == 1:
				ops := fheop.Of(fheop.Op(rng.Intn(3)), 1+rng.Intn(5))
				if rng.Intn(4) == 0 {
					b.SetEnergyScale(0.25 + rng.Float64())
				}
				lastCompute[card] = b.Compute(card, ops, 1+rng.Intn(28), "L")
			default:
				// Send from a card that has computed, to random others.
				var from int
				for c := range lastCompute {
					from = c
					break
				}
				var dsts []int
				for c := 0; c < cards; c++ {
					if c != from && rng.Intn(2) == 0 {
						dsts = append(dsts, c)
					}
				}
				if len(dsts) == 0 {
					dsts = []int{(from + 1) % cards}
				}
				recvs := b.Send(from, lastCompute[from], dsts, float64(1+rng.Intn(1e6)), "x")
				if rng.Intn(2) == 0 {
					dst := dsts[0]
					lastCompute[dst] = b.ComputeAfterRecv(dst, recvs[0], fheop.Of(fheop.HAdd, 1), 1+rng.Intn(28), "L")
				}
			}
		}
	}
	return b.Build()
}

func TestRandomProgramsRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		p := randomProgram(seed)
		if p.Validate() != nil {
			return false
		}
		data, err := Marshal(p)
		if err != nil {
			return false
		}
		back, err := Unmarshal(data)
		if err != nil {
			return false
		}
		return programsEqual(p, back)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestRandomCorruptionNeverPanics(t *testing.T) {
	// Flipping arbitrary bytes must produce an error or a valid program,
	// never a panic or hang.
	p := randomProgram(7)
	data, err := Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 500; trial++ {
		mut := append([]byte(nil), data...)
		for flips := 0; flips < 1+rng.Intn(4); flips++ {
			mut[rng.Intn(len(mut))] ^= byte(1 << rng.Intn(8))
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("trial %d: panic %v", trial, r)
				}
			}()
			_, _ = Unmarshal(mut)
		}()
	}
}
