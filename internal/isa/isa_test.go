package isa

import (
	"bytes"
	"math"
	"testing"

	"hydra/internal/fheop"
	"hydra/internal/hw"
	"hydra/internal/mapping"
	"hydra/internal/sim"
	"hydra/internal/task"
)

func sampleProgram() *task.Program {
	b := task.NewBuilder(4, 4)
	b.Step("ConvBN")
	h := b.Compute(0, fheop.Of(fheop.Rotation, 8, fheop.PMult, 2, fheop.HAdd, 7), 18, "ConvBN")
	recvs := b.Send(0, h, []int{1, 2, 3}, 1.8e7, "ConvBN")
	_ = recvs
	b.Compute(1, fheop.Of(fheop.Rotation, 8), 18, "ConvBN")
	b.Step("Boot")
	b.SetEnergyScale(0.7)
	h2 := b.Compute(2, fheop.Of(fheop.CMult, 3), 25, "Boot")
	r2 := b.Send(2, h2, []int{0}, 2.6e7, "Boot")
	b.ComputeAfterRecv(0, r2[0], fheop.Of(fheop.HAdd, 1), 25, "Boot")
	return b.Build()
}

func programsEqual(a, b *task.Program) bool {
	if a.Cards != b.Cards || a.CardsPerServer != b.CardsPerServer || len(a.Steps) != len(b.Steps) {
		return false
	}
	for i := range a.Steps {
		sa, sb := a.Steps[i], b.Steps[i]
		if sa.Name != sb.Name {
			return false
		}
		for c := 0; c < a.Cards; c++ {
			if len(sa.Compute[c]) != len(sb.Compute[c]) || len(sa.Comm[c]) != len(sb.Comm[c]) {
				return false
			}
			for j := range sa.Compute[c] {
				x, y := sa.Compute[c][j], sb.Compute[c][j]
				if x.Ops != y.Ops || x.Limbs != y.Limbs || x.WaitRecv != y.WaitRecv ||
					x.Label != y.Label || x.EnergyScale != y.EnergyScale || x.Seq() != y.Seq() {
					return false
				}
			}
			for j := range sa.Comm[c] {
				x, y := sa.Comm[c][j], sb.Comm[c][j]
				if x.Kind != y.Kind || len(x.Peers) != len(y.Peers) || x.Bytes != y.Bytes ||
					x.WaitCompute != y.WaitCompute || x.Tag != y.Tag || x.Label != y.Label || x.Seq() != y.Seq() {
					return false
				}
				for k := range x.Peers {
					if x.Peers[k] != y.Peers[k] {
						return false
					}
				}
			}
		}
	}
	return true
}

func TestRoundTrip(t *testing.T) {
	p := sampleProgram()
	data, err := Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(data, Magic[:]) {
		t.Fatal("missing magic")
	}
	back, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if !programsEqual(p, back) {
		t.Fatal("round trip lost information")
	}
}

func TestDecodedProgramSimulatesIdentically(t *testing.T) {
	b := task.NewBuilder(8, 8)
	ctx := mapping.NewContext(b, hw.PaperScheme(), 8)
	if err := ctx.DistributeBroadcast(256, mapping.ConvBNUnit, 8, "ConvBN"); err != nil {
		t.Fatal(err)
	}
	if err := ctx.MatVec(mapping.MatVecOptions{BS: 4, GS: 32}, "FC"); err != nil {
		t.Fatal(err)
	}
	p := b.Build()
	data, err := Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	for _, cfg := range []sim.Config{sim.HydraConfig(), func() sim.Config {
		c := sim.FABConfig()
		c.Overlap = false // exercise the seq-dependent merged ordering
		return c
	}()} {
		r1, err := sim.Run(p, cfg)
		if err != nil {
			t.Fatal(err)
		}
		r2, err := sim.Run(back, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(r1.Makespan-r2.Makespan) > 1e-12 {
			t.Fatalf("decoded program diverges: %g vs %g", r1.Makespan, r2.Makespan)
		}
	}
}

func TestUnmarshalRejectsCorruption(t *testing.T) {
	p := sampleProgram()
	data, err := Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name   string
		mutate func([]byte) []byte
	}{
		{"empty", func(b []byte) []byte { return nil }},
		{"bad magic", func(b []byte) []byte { b = append([]byte(nil), b...); b[0] = 'X'; return b }},
		{"bad version", func(b []byte) []byte { b = append([]byte(nil), b...); b[4] = 99; return b }},
		{"truncated", func(b []byte) []byte { return b[:len(b)/2] }},
		{"trailing", func(b []byte) []byte { return append(append([]byte(nil), b...), 0xFF) }},
	}
	for _, tc := range cases {
		if _, err := Unmarshal(tc.mutate(data)); err == nil {
			t.Fatalf("%s: expected error", tc.name)
		}
	}
}

func TestUnmarshalRejectsInvalidSemantics(t *testing.T) {
	// Encode a structurally sound buffer whose decoded program fails
	// validation: flip the lone recv into a second send by corrupting its
	// kind byte. Easier: marshal, decode, corrupt, re-marshal via a builder
	// is complex — instead check Marshal itself refuses invalid programs.
	p := &task.Program{Cards: 1, CardsPerServer: 1, Steps: []*task.Step{{
		Name:    "s",
		Compute: [][]task.Compute{{{WaitRecv: 5, Limbs: 1}}},
		Comm:    [][]task.Comm{{}},
	}}}
	if _, err := Marshal(p); err == nil {
		t.Fatal("Marshal should refuse invalid programs")
	}
}

func TestMarshalCompactness(t *testing.T) {
	b := task.NewBuilder(8, 8)
	ctx := mapping.NewContext(b, hw.PaperScheme(), 8)
	if err := ctx.DistributeBroadcast(1024, mapping.ConvBNUnit, 32, "ConvBN"); err != nil {
		t.Fatal(err)
	}
	p := b.Build()
	data, err := Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	tasks := 0
	for _, st := range p.Steps {
		for c := 0; c < p.Cards; c++ {
			tasks += len(st.Compute[c]) + len(st.Comm[c])
		}
	}
	if perTask := float64(len(data)) / float64(tasks); perTask > 64 {
		t.Fatalf("encoding too large: %.1f bytes/task for %d tasks", perTask, tasks)
	}
}
