// Package isa defines the wire format of Hydra task programs. Section IV-D
// of the paper: "tasks are managed as instructions, allowing multiple tasks
// to be loaded into each FPGA's task queue at once" — the host-side
// scheduling software preloads data and task instructions onto each FPGA
// before accelerator startup, with data parallelism and dependences embedded
// in the instruction stream.
//
// The encoding is a compact varint-based binary format: a shared label
// table, then per step and per card the computation-queue and
// communication-queue entries with their SAC/CAR dependence fields.
package isa

import (
	"encoding/binary"
	"fmt"
	"math"

	"hydra/internal/fheop"
	"hydra/internal/task"
)

// Magic identifies an encoded Hydra program.
var Magic = [4]byte{'H', 'Y', 'D', 'R'}

// Version is the current format version.
const Version = 1

type writer struct {
	buf []byte
}

func (w *writer) uvarint(v uint64) {
	w.buf = binary.AppendUvarint(w.buf, v)
}

func (w *writer) svarint(v int64) {
	w.buf = binary.AppendVarint(w.buf, v)
}

func (w *writer) bytes(b []byte) {
	w.uvarint(uint64(len(b)))
	w.buf = append(w.buf, b...)
}

func (w *writer) f64(v float64) {
	w.buf = binary.LittleEndian.AppendUint64(w.buf, math.Float64bits(v))
}

type reader struct {
	buf []byte
	off int
}

func (r *reader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 {
		return 0, fmt.Errorf("isa: truncated uvarint at offset %d", r.off)
	}
	r.off += n
	return v, nil
}

func (r *reader) svarint() (int64, error) {
	v, n := binary.Varint(r.buf[r.off:])
	if n <= 0 {
		return 0, fmt.Errorf("isa: truncated varint at offset %d", r.off)
	}
	r.off += n
	return v, nil
}

func (r *reader) bytes() ([]byte, error) {
	n, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if uint64(len(r.buf)-r.off) < n {
		return nil, fmt.Errorf("isa: truncated byte string at offset %d", r.off)
	}
	b := r.buf[r.off : r.off+int(n)]
	r.off += int(n)
	return b, nil
}

func (r *reader) f64() (float64, error) {
	if len(r.buf)-r.off < 8 {
		return 0, fmt.Errorf("isa: truncated float at offset %d", r.off)
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(r.buf[r.off:]))
	r.off += 8
	// Both floats on the wire (EnergyScale, Bytes) are physical quantities;
	// NaN or ±Inf can only come from corruption.
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0, fmt.Errorf("isa: non-finite float at offset %d", r.off-8)
	}
	return v, nil
}

// Marshal encodes a validated program.
func Marshal(p *task.Program) ([]byte, error) {
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("isa: refusing to encode invalid program: %w", err)
	}
	// Build the label table.
	labelIdx := map[string]uint64{}
	var labels []string
	intern := func(s string) uint64 {
		if i, ok := labelIdx[s]; ok {
			return i
		}
		i := uint64(len(labels))
		labelIdx[s] = i
		labels = append(labels, s)
		return i
	}
	for _, st := range p.Steps {
		intern(st.Name)
		for _, q := range st.Compute {
			for _, c := range q {
				intern(c.Label)
			}
		}
		for _, q := range st.Comm {
			for _, c := range q {
				intern(c.Label)
			}
		}
	}

	w := &writer{buf: make([]byte, 0, 1024)}
	w.buf = append(w.buf, Magic[:]...)
	w.buf = append(w.buf, Version)
	w.uvarint(uint64(p.Cards))
	w.uvarint(uint64(p.CardsPerServer))
	w.uvarint(uint64(len(labels)))
	for _, s := range labels {
		w.bytes([]byte(s))
	}
	w.uvarint(uint64(len(p.Steps)))
	for _, st := range p.Steps {
		w.uvarint(labelIdx[st.Name])
		for card := 0; card < p.Cards; card++ {
			w.uvarint(uint64(len(st.Compute[card])))
			for _, c := range st.Compute[card] {
				for _, op := range fheop.Ops() {
					w.uvarint(uint64(c.Ops.Get(op)))
				}
				w.uvarint(uint64(c.Limbs))
				w.svarint(int64(c.WaitRecv))
				w.uvarint(labelIdx[c.Label])
				w.f64(c.EnergyScale)
				w.uvarint(uint64(c.Seq()))
			}
			w.uvarint(uint64(len(st.Comm[card])))
			for _, c := range st.Comm[card] {
				w.uvarint(uint64(c.Kind))
				w.uvarint(uint64(len(c.Peers)))
				for _, peer := range c.Peers {
					w.uvarint(uint64(peer))
				}
				w.f64(c.Bytes)
				w.svarint(int64(c.WaitCompute))
				w.uvarint(uint64(c.Tag))
				w.uvarint(labelIdx[c.Label])
				w.uvarint(uint64(c.Seq()))
			}
		}
	}
	return w.buf, nil
}

// Unmarshal decodes an encoded program and re-validates it. Sequence
// numbers (global creation order, consumed by the serialization model of
// DTU-less cards) travel on the wire, so a decoded program simulates
// identically to the original.
func Unmarshal(data []byte) (*task.Program, error) {
	r := &reader{buf: data}
	if len(data) < 5 || data[0] != Magic[0] || data[1] != Magic[1] || data[2] != Magic[2] || data[3] != Magic[3] {
		return nil, fmt.Errorf("isa: bad magic")
	}
	if data[4] != Version {
		return nil, fmt.Errorf("isa: unsupported version %d", data[4])
	}
	r.off = 5
	cards64, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	cps64, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if cards64 == 0 || cards64 > 1<<20 || cps64 == 0 {
		return nil, fmt.Errorf("isa: implausible card counts %d/%d", cards64, cps64)
	}
	nLabels, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	// Every encoded label costs at least one byte, so a count exceeding the
	// remaining input is corrupt — reject before allocating for it.
	if nLabels > uint64(len(r.buf)-r.off) {
		return nil, fmt.Errorf("isa: label count %d exceeds input size", nLabels)
	}
	labels := make([]string, nLabels)
	for i := range labels {
		b, err := r.bytes()
		if err != nil {
			return nil, err
		}
		labels[i] = string(b)
	}
	label := func(i uint64) (string, error) {
		if i >= uint64(len(labels)) {
			return "", fmt.Errorf("isa: label index %d out of range", i)
		}
		return labels[i], nil
	}

	nSteps, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if nSteps > uint64(len(r.buf)-r.off) {
		return nil, fmt.Errorf("isa: step count %d exceeds input size", nSteps)
	}
	p := &task.Program{Cards: int(cards64), CardsPerServer: int(cps64)}
	for s := uint64(0); s < nSteps; s++ {
		nameIdx, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		name, err := label(nameIdx)
		if err != nil {
			return nil, err
		}
		// Each card contributes at least two count varints per step; refuse
		// to allocate per-card queues the input cannot possibly back.
		if len(r.buf)-r.off < 2*p.Cards {
			return nil, fmt.Errorf("isa: truncated step %d at offset %d", s, r.off)
		}
		st := &task.Step{
			Name:    name,
			Compute: make([][]task.Compute, p.Cards),
			Comm:    make([][]task.Comm, p.Cards),
		}
		for card := 0; card < p.Cards; card++ {
			nComp, err := r.uvarint()
			if err != nil {
				return nil, err
			}
			for i := uint64(0); i < nComp; i++ {
				var c task.Compute
				for _, op := range fheop.Ops() {
					v, err := r.uvarint()
					if err != nil {
						return nil, err
					}
					c.Ops = c.Ops.Add(fheop.Of(op, int(v)))
				}
				limbs, err := r.uvarint()
				if err != nil {
					return nil, err
				}
				c.Limbs = int(limbs)
				wr, err := r.svarint()
				if err != nil {
					return nil, err
				}
				c.WaitRecv = int(wr)
				li, err := r.uvarint()
				if err != nil {
					return nil, err
				}
				if c.Label, err = label(li); err != nil {
					return nil, err
				}
				if c.EnergyScale, err = r.f64(); err != nil {
					return nil, err
				}
				seq, err := r.uvarint()
				if err != nil {
					return nil, err
				}
				st.Compute[card] = append(st.Compute[card], c.WithSeq(int(seq)))
			}
			nComm, err := r.uvarint()
			if err != nil {
				return nil, err
			}
			for i := uint64(0); i < nComm; i++ {
				var c task.Comm
				kind, err := r.uvarint()
				if err != nil {
					return nil, err
				}
				c.Kind = task.CommKind(kind)
				if c.Kind != task.Send && c.Kind != task.Recv {
					return nil, fmt.Errorf("isa: bad comm kind %d", kind)
				}
				nPeers, err := r.uvarint()
				if err != nil {
					return nil, err
				}
				if nPeers > cards64 {
					return nil, fmt.Errorf("isa: %d peers exceeds card count", nPeers)
				}
				for j := uint64(0); j < nPeers; j++ {
					peer, err := r.uvarint()
					if err != nil {
						return nil, err
					}
					c.Peers = append(c.Peers, int(peer))
				}
				if c.Bytes, err = r.f64(); err != nil {
					return nil, err
				}
				wc, err := r.svarint()
				if err != nil {
					return nil, err
				}
				c.WaitCompute = int(wc)
				tag, err := r.uvarint()
				if err != nil {
					return nil, err
				}
				c.Tag = int(tag)
				li, err := r.uvarint()
				if err != nil {
					return nil, err
				}
				if c.Label, err = label(li); err != nil {
					return nil, err
				}
				seq, err := r.uvarint()
				if err != nil {
					return nil, err
				}
				st.Comm[card] = append(st.Comm[card], c.WithSeq(int(seq)))
			}
		}
		p.Steps = append(p.Steps, st)
	}
	if r.off != len(data) {
		return nil, fmt.Errorf("isa: %d trailing bytes", len(data)-r.off)
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("isa: decoded program invalid: %w", err)
	}
	return p, nil
}
