package isa

// Fuzz harness for the task-program wire format. The decoder is the trust
// boundary between the host scheduler and whatever bytes arrive on disk or
// over the wire, so it must never panic on corrupted input, and every buffer
// it does accept must survive a Marshal→Unmarshal round trip unchanged.

import (
	"testing"

	"hydra/internal/fheop"
	"hydra/internal/task"
)

func FuzzUnmarshal(f *testing.F) {
	// Seed with valid encodings of varied shapes so the fuzzer starts from
	// deep in the format rather than flailing at the magic check.
	seeds := []*task.Program{sampleProgram()}

	b := task.NewBuilder(1, 1)
	b.Step("solo")
	b.Compute(0, fheop.Of(fheop.HAdd, 1), 1, "solo")
	seeds = append(seeds, b.Build())

	b = task.NewBuilder(2, 2)
	b.Step("ping")
	h := b.Compute(0, fheop.Of(fheop.CMult, 1), 4, "ping")
	r := b.Send(0, h, []int{1}, 1e6, "ping")
	b.ComputeAfterRecv(1, r[0], fheop.Of(fheop.HAdd, 2), 4, "ping")
	seeds = append(seeds, b.Build())

	for _, p := range seeds {
		data, err := Marshal(p)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	// A few deliberately broken prefixes to seed the error paths too.
	f.Add([]byte{})
	f.Add(Magic[:])
	f.Add(append(append([]byte{}, Magic[:]...), Version, 0xFF, 0xFF, 0xFF))

	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := Unmarshal(data)
		if err != nil {
			return // rejected input is fine; panics are not
		}
		// Accepted programs must be stable under re-encoding.
		enc, err := Marshal(p)
		if err != nil {
			t.Fatalf("Unmarshal accepted a program Marshal rejects: %v", err)
		}
		back, err := Unmarshal(enc)
		if err != nil {
			t.Fatalf("re-encoded program fails to decode: %v", err)
		}
		if !programsEqual(p, back) {
			t.Fatal("Marshal/Unmarshal round trip changed the program")
		}
	})
}
