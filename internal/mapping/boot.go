package mapping

import (
	"fmt"
	"math"

	"hydra/internal/fheop"
	"hydra/internal/hw"
)

// OpTimes carries the per-operation latencies Eq. 1 needs: rotation,
// plaintext multiplication, homomorphic addition, and one inter-card
// ciphertext transfer.
type OpTimes struct {
	Rot, PMult, HAdd, Com float64
}

// OpTimesFor derives the Eq. 1 inputs from a card profile at the given limb
// count; comSeconds is the cost of one ciphertext transfer on the target
// interconnect.
func OpTimesFor(card hw.CardProfile, s hw.SchemeParams, limbs int, comSeconds float64) OpTimes {
	return OpTimes{
		Rot:   card.OpTime(fheop.Rotation, limbs, s),
		PMult: card.OpTime(fheop.PMult, limbs, s),
		HAdd:  card.OpTime(fheop.HAdd, limbs, s),
		Com:   comSeconds,
	}
}

// DFTLevelTime evaluates Eq. 1 for one matrix-vector level of the
// bootstrapping DFT: radix r, baby-step count bs, Cn accelerator cards.
//
//	gs_s  = ceil(2r / (Cn·bs))           (giant steps per card)
//	T_bs  = bs·T_rot
//	T_gs  = (bs·T_pmult + (bs-1)·T_hadd + T_rot) · gs_s
//	T_acc = (gs_s-1)·T_hadd + (log2(Cn)+1)·T_com   (0 comms when Cn = 1)
func DFTLevelTime(radix, bs, cards int, t OpTimes) float64 {
	if radix <= 0 || bs <= 0 || cards <= 0 {
		return math.Inf(1)
	}
	gs := 2 * radix / bs
	if gs < 1 {
		gs = 1
	}
	gss := float64((gs + cards - 1) / cards)
	tbs := float64(bs) * t.Rot
	tgs := (float64(bs)*t.PMult + float64(bs-1)*t.HAdd + t.Rot) * gss
	tacc := (gss - 1) * t.HAdd
	if cards > 1 {
		tacc += float64(log2int(cards)+1) * t.Com
	}
	return tbs + tgs + tacc
}

// DFTParams is a per-level (Radix, bs) choice for the bootstrapping DFT.
type DFTParams struct {
	Radix []int
	BS    []int
}

// Time evaluates the full DFT under Eq. 1.
func (p DFTParams) Time(cards int, t OpTimes) float64 {
	total := 0.0
	for i := range p.Radix {
		total += DFTLevelTime(p.Radix[i], p.BS[i], cards, t)
	}
	return total
}

// Validate checks shape and slot coverage.
func (p DFTParams) Validate(logSlots int) error {
	if len(p.Radix) == 0 || len(p.Radix) != len(p.BS) {
		return fmt.Errorf("mapping: DFT params need matching radix/bs lists")
	}
	prod := 1
	for i, r := range p.Radix {
		if !isPow2(r) || !isPow2(p.BS[i]) {
			return fmt.Errorf("mapping: radix and bs must be powers of two")
		}
		if p.BS[i] > 2*r {
			return fmt.Errorf("mapping: bs %d exceeds 2·radix %d", p.BS[i], 2*r)
		}
		prod *= r
	}
	if prod != 1<<logSlots {
		return fmt.Errorf("mapping: radix product %d does not cover 2^%d slots", prod, logSlots)
	}
	return nil
}

// OptimizeDFT searches the (Radix, bs) space of Table V: `levels` DFT levels
// whose radices multiply to 2^logSlots (multiplication-depth budget of 3 per
// the paper's Section V-G), with bs·gs = 2·Radix per level. On one card the
// algorithmically optimal parameters win; on many cards the search minimizes
// bs + gs/Cn, trading baby-step work (not parallelizable) for giant-step
// work (parallelizable).
func OptimizeDFT(logSlots, levels, cards int, t OpTimes) (DFTParams, float64, error) {
	if levels <= 0 || logSlots < 2*levels {
		return DFTParams{}, 0, fmt.Errorf("mapping: cannot split %d slot bits into %d radix levels", logSlots, levels)
	}
	const minExp, maxExp = 2, 7 // radix 4 … 128, the Table V range
	best := DFTParams{}
	bestTime := math.Inf(1)

	var rec func(level, remaining int, exps []int)
	rec = func(level, remaining int, exps []int) {
		if level == levels {
			if remaining != 0 {
				return
			}
			params := DFTParams{Radix: make([]int, levels), BS: make([]int, levels)}
			total := 0.0
			for i, e := range exps {
				r := 1 << e
				params.Radix[i] = r
				bestBS, bestLevel := 0, math.Inf(1)
				for bs := 1; bs*bs <= 2*r; bs <<= 1 {
					if lt := DFTLevelTime(r, bs, cards, t); lt < bestLevel {
						bestLevel, bestBS = lt, bs
					}
				}
				params.BS[i] = bestBS
				total += bestLevel
			}
			if total < bestTime-1e-15 {
				bestTime = total
				best = params
			}
			return
		}
		for e := minExp; e <= maxExp && e <= remaining; e++ {
			rec(level+1, remaining-e, append(exps, e))
		}
	}
	rec(0, logSlots, make([]int, 0, levels))
	if math.IsInf(bestTime, 1) {
		return DFTParams{}, 0, fmt.Errorf("mapping: no radix decomposition of 2^%d into %d levels within [4,128]", logSlots, levels)
	}
	return best, bestTime, nil
}

// BootstrapOptions configure the bootstrapping mapping.
type BootstrapOptions struct {
	LogSlots  int
	DFT       DFTParams // shared by C2S and S2C
	EvaExpDeg int       // degree of the exp-approximation polynomial (paper: 59)
	DAFIters  int       // double-angle iterations after EvaExp
	Limbs     int       // limb count bootstrapping ops run at (0 = high default)
}

// DefaultBootstrapOptions returns the paper's setting: logSlots 15 DFT split
// over three levels, a degree-59 EvaExp, and three double-angle iterations.
func DefaultBootstrapOptions(s hw.SchemeParams, cards int, t OpTimes) BootstrapOptions {
	logSlots := s.LogN - 1
	dft, _, err := OptimizeDFT(logSlots, s.BootDepth, cards, t)
	if err != nil {
		panic(err)
	}
	limbs := (s.MaxLimbs + s.FreshLimbs) / 2
	return BootstrapOptions{LogSlots: logSlots, DFT: dft, EvaExpDeg: 59, DAFIters: 3, Limbs: limbs}
}

// Bootstrap emits one full bootstrapping of a single ciphertext across the
// context's cards: CoeffToSlot (DFT levels via the BSGS mapping), EvaExp
// (Algorithm 1), the Double-Angle Formula, and SlotToCoeff (Fig. 3(b)).
// Each phase lands in its own step named for Fig. 6/8 attribution.
func (c *Context) Bootstrap(opts BootstrapOptions, label string) error {
	c.B.Step(label)
	return c.emitBootstrap(opts, label)
}

func (c *Context) emitBootstrap(opts BootstrapOptions, label string) error {
	if err := opts.DFT.Validate(opts.LogSlots); err != nil {
		return err
	}
	if opts.EvaExpDeg < 1 || opts.DAFIters < 0 {
		return fmt.Errorf("mapping: %s: bad EvaExp degree or DAF iterations", label)
	}
	ctx := *c
	if opts.Limbs > 0 {
		ctx.Limbs = opts.Limbs
	}

	// CoeffToSlot.
	for i := range opts.DFT.Radix {
		bs := opts.DFT.BS[i]
		gs := 2 * opts.DFT.Radix[i] / bs
		if gs < 1 {
			gs = 1
		}
		if err := ctx.emitMatVec(MatVecOptions{BS: bs, GS: gs}, label); err != nil {
			return err
		}
	}
	// EvaExp.
	if err := ctx.emitPolyEval(opts.EvaExpDeg, label); err != nil {
		return err
	}
	// Double-Angle Formula: a short local ladder on the first card, then the
	// refreshed ciphertext is redistributed.
	if opts.DAFIters > 0 {
		root := ctx.Cards[0]
		h := ctx.B.Compute(root, fheop.Of(
			fheop.CMult, opts.DAFIters,
			fheop.PMult, opts.DAFIters,
			fheop.HAdd, opts.DAFIters,
		), ctx.limbs(), label)
		if len(ctx.Cards) > 1 {
			ctx.B.Send(root, h, ctx.others(root), ctx.CtBytes(), label)
		}
	}
	// SlotToCoeff.
	for i := range opts.DFT.Radix {
		bs := opts.DFT.BS[i]
		gs := 2 * opts.DFT.Radix[i] / bs
		if gs < 1 {
			gs = 1
		}
		if err := ctx.emitMatVec(MatVecOptions{BS: bs, GS: gs}, label); err != nil {
			return err
		}
	}
	return nil
}

// BootstrapCounts returns the single-card operation counts of one full
// bootstrap under the given options (used when whole bootstraps are
// distributed because the layer refreshes more ciphertexts than there are
// cards).
func BootstrapCounts(opts BootstrapOptions) fheop.Counts {
	total := fheop.Counts{}
	for i, r := range opts.DFT.Radix {
		bs := opts.DFT.BS[i]
		gs := 2 * r / bs
		if gs < 1 {
			gs = 1
		}
		total = total.Add(fheop.Of(
			fheop.Rotation, bs+gs,
			fheop.PMult, bs*gs,
			fheop.HAdd, (bs-1)*gs+gs-1,
		))
	}
	total = total.Add(PolyEvalCounts(opts.EvaExpDeg))
	total = total.Add(fheop.Of(fheop.CMult, opts.DAFIters, fheop.PMult, opts.DAFIters, fheop.HAdd, opts.DAFIters))
	// S2C mirrors C2S.
	for i, r := range opts.DFT.Radix {
		bs := opts.DFT.BS[i]
		gs := 2 * r / bs
		if gs < 1 {
			gs = 1
		}
		total = total.Add(fheop.Of(
			fheop.Rotation, bs+gs,
			fheop.PMult, bs*gs,
			fheop.HAdd, (bs-1)*gs+gs-1,
		))
	}
	return total
}

// BootstrapBatch refreshes `cts` ciphertexts: whole bootstraps stay on single
// cards when cts >= cards (bootstrapping parallelism of Table I); otherwise
// the cards split into groups, each group bootstrapping one ciphertext
// cooperatively. The DFT parameters are re-optimized for the effective group
// size (Table V: the single card's algorithmic optimum differs from the
// multi-card choice that minimizes bs + gs/Cn).
func (c *Context) BootstrapBatch(cts int, opts BootstrapOptions, times OpTimes, label string) error {
	if cts <= 0 {
		return fmt.Errorf("mapping: %s: ciphertext count must be positive", label)
	}
	nc := len(c.Cards)
	levels := len(opts.DFT.Radix)
	if levels == 0 {
		return fmt.Errorf("mapping: %s: options carry no DFT levels", label)
	}
	if cts >= nc {
		dft, _, err := OptimizeDFT(opts.LogSlots, levels, 1, times)
		if err != nil {
			return fmt.Errorf("mapping: %s: %w", label, err)
		}
		local := opts
		local.DFT = dft
		sub := *c
		if opts.Limbs > 0 {
			sub.Limbs = opts.Limbs
		}
		return sub.DistributeLocal(cts, BootstrapCounts(local), cts, label)
	}
	group := 1
	for group*2*cts <= nc {
		group *= 2
	}
	dft, _, err := OptimizeDFT(opts.LogSlots, levels, group, times)
	if err != nil {
		return fmt.Errorf("mapping: %s: %w", label, err)
	}
	split := opts
	split.DFT = dft
	c.B.Step(label)
	var firstErr error
	for i := 0; i < cts; i++ {
		sub := c.WithCards(c.Cards[i*group : (i+1)*group])
		if err := sub.emitBootstrap(split, label); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
