package mapping

import (
	"fmt"

	"hydra/internal/fheop"
	"hydra/internal/task"
)

// MatVecOptions control the BSGS matrix-vector mapping (FC layers and the
// DFT levels inside bootstrapping).
type MatVecOptions struct {
	// BS and GS are the baby-step and giant-step counts, with bs·gs = 2·Radix
	// for a DFT level (Section III-B).
	BS, GS int
	// DistributedBS is the ablation variant the paper argues against
	// (Section III-B point (1)): baby-step rotations split across nodes and
	// all-gathered, instead of every node performing them uniformly.
	DistributedBS bool
	// StarAggregation is the ablation variant of point (2): partial sums all
	// sent to the first card instead of the tree pattern of Fig. 3(d).
	StarAggregation bool
	// SkipFinalBroadcast omits the redistribution of the aggregated result
	// (the last of the log2(Cn)+1 communications of Eq. 1) when the next
	// step only needs the result on the first card.
	SkipFinalBroadcast bool
}

// MatVec emits one BSGS ciphertext-vector × plaintext-matrix product across
// the context's cards (Fig. 3(d)):
//
//   - every card performs the bs baby-step rotations (uniform bs);
//   - the gs giant steps are split evenly: each giant step costs bs PMults,
//     bs-1 HAdds and one rotation, plus the local partial accumulation;
//   - partials are aggregated pairwise in a tree with one HAdd per round and
//     the result is broadcast back (log2(Cn)+1 communications, Eq. 1).
//
// This hand-counted emitter is the pinned baseline of the paper-figure
// experiments. MatVecIR (ir.go) emits the same transform through the
// internal/fhir compiler — same schedule shape, fewer keyswitches, since the
// pass pipeline hoists the shared baby-step rotations through one
// decomposition.
func (c *Context) MatVec(opts MatVecOptions, label string) error {
	c.B.Step(label)
	return c.emitMatVec(opts, label)
}

// emitMatVec emits the mapping into the builder's current step.
func (c *Context) emitMatVec(opts MatVecOptions, label string) error {
	if opts.BS <= 0 || opts.GS <= 0 {
		return fmt.Errorf("mapping: %s: bs and gs must be positive (bs=%d gs=%d)", label, opts.BS, opts.GS)
	}
	nc := len(c.Cards)
	if !isPow2(nc) {
		return fmt.Errorf("mapping: %s: card count %d must be a power of two for tree aggregation", label, nc)
	}
	limbs := c.limbs()
	bytes := c.CtBytes()

	// --- Baby steps ---------------------------------------------------------
	gate := make(map[int]int) // card -> recv index its giant-step work waits on
	if !opts.DistributedBS {
		for _, card := range c.Cards {
			c.B.Compute(card, fheop.Of(fheop.Rotation, opts.BS), limbs, label)
		}
	} else {
		// Ablation: split the bs rotations, then all-gather the rotated
		// ciphertexts so every card can run its giant steps.
		for ci, card := range c.Cards {
			share := perCardShare(opts.BS, nc, ci)
			if share == 0 {
				continue
			}
			h := c.B.Compute(card, fheop.Of(fheop.Rotation, share), limbs, label)
			if nc > 1 {
				others := c.others(card)
				recvs := c.B.Send(card, h, others, float64(share)*bytes, label)
				for di, dst := range others {
					gate[dst] = recvs[di] // later recvs supersede earlier ones
				}
			}
		}
	}

	// --- Giant steps and local accumulation ---------------------------------
	partials := make([]task.Handle, nc)
	for ci, card := range c.Cards {
		share := perCardShare(opts.GS, nc, ci)
		ops := fheop.Of(
			fheop.PMult, opts.BS*share,
			fheop.HAdd, (opts.BS-1)*share,
			fheop.Rotation, share,
		)
		if share > 1 {
			ops = ops.Add(fheop.Of(fheop.HAdd, share-1)) // local partial sum
		}
		if g, ok := gate[card]; ok {
			partials[ci] = c.B.ComputeAfterRecv(card, g, ops, limbs, label)
		} else {
			partials[ci] = c.B.Compute(card, ops, limbs, label)
		}
	}

	// --- Aggregation ---------------------------------------------------------
	root := c.Cards[0]
	rootResult := partials[0]
	if nc > 1 {
		if opts.StarAggregation {
			lastRecv := -1
			for ci := 1; ci < nc; ci++ {
				recvs := c.B.Send(c.Cards[ci], partials[ci], []int{root}, bytes, label)
				lastRecv = recvs[0]
			}
			rootResult = c.B.ComputeAfterRecv(root, lastRecv, fheop.Of(fheop.HAdd, nc-1), limbs, label)
		} else {
			// Tree: log2(nc) rounds; in round r the upper half of the active
			// set sends to its mirror, which adds (Fig. 3(d)).
			active := nc
			latest := append([]task.Handle(nil), partials...)
			for active > 1 {
				half := active / 2
				for i := 0; i < half; i++ {
					src := c.Cards[i+half]
					dst := c.Cards[i]
					recvs := c.B.Send(src, latest[i+half], []int{dst}, bytes, label)
					latest[i] = c.B.ComputeAfterRecv(dst, recvs[0], fheop.Of(fheop.HAdd, 1), limbs, label)
				}
				active = half
			}
			rootResult = latest[0]
		}
		if !opts.SkipFinalBroadcast {
			// Redistribute the aggregate (the "+1" communication of Eq. 1).
			c.B.Send(root, rootResult, c.others(root), bytes, label)
		}
	}
	return nil
}

// FC maps a fully connected layer: a ciphertext-vector × plaintext-weight
// product with `diagonals` non-zero diagonals in the form Table I counts it
// (one Rotation and one PMult per diagonal). The rotations are spread evenly
// over the cards and the partial sums fold back through the tree — the
// paper's point that "the acceleration of the FC layer hinges on the
// distribution of rotate operations across multiple nodes", and the source
// of the >50× FC speedup of Fig. 6.
func (c *Context) FC(diagonals int, label string) error {
	if diagonals <= 0 {
		return fmt.Errorf("mapping: %s: diagonal count must be positive", label)
	}
	return c.MatVec(MatVecOptions{BS: 1, GS: diagonals}, label)
}
