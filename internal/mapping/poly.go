package mapping

import (
	"fmt"

	"hydra/internal/fheop"
	"hydra/internal/task"
)

// PolyEval emits the multi-card polynomial evaluation of Algorithm 1 for a
// polynomial of the given degree (non-linear layers: ReLU, GeLU, Softmax
// approximations, and the EvaExp step of bootstrapping).
//
// The strategy follows the paper:
//   - tree_depth = min(poly_depth-2, log2(cards)) card-tree levels, so
//     sub-polynomials of degree ≤ 4 are never split across cards;
//   - every participating card computes x² locally;
//   - the binary powers x^(2^(j+1)) are computed by a shrinking set of
//     low-numbered cards and forwarded to the cards that stopped computing
//     them ("assign the communication tasks receiving from the previous step
//     to nodes with larger numbers");
//   - each card evaluates its shared sub-polynomial block;
//   - results fold back to card 0 in a tree, one multiply-and-send plus one
//     receive-and-add per round.
//
// This hand-scheduled emitter is the pinned baseline of the paper-figure
// experiments. PolyEvalIR (ir.go) routes a concrete coefficient vector
// through the internal/fhir compiler instead, where rescale placement and
// lazy relinearization come from the pass pipeline rather than Algorithm 1's
// hand recipe.
func (c *Context) PolyEval(degree int, label string) error {
	c.B.Step(label)
	return c.emitPolyEval(degree, label)
}

// emitPolyEval emits Algorithm 1 into the builder's current step (so several
// card groups can run side by side within one step).
func (c *Context) emitPolyEval(degree int, label string) error {
	if degree < 1 {
		return fmt.Errorf("mapping: %s: polynomial degree must be >= 1", label)
	}
	polyDepth := log2int(degree + 1)
	nc := len(c.Cards)
	if !isPow2(nc) {
		return fmt.Errorf("mapping: %s: card count %d must be a power of two", label, nc)
	}
	cardDepth := log2int(nc)
	treeDepth := polyDepth - 2
	if treeDepth > cardDepth {
		treeDepth = cardDepth
	}
	if treeDepth < 0 {
		treeDepth = 0
	}
	cardNum := 1 << treeDepth
	limbs := c.limbs()
	bytes := c.CtBytes()

	// latest[i] tracks the most recent compute handle of active card i;
	// pendingRecv[i] a receive the next compute must wait on (CAR).
	latest := make([]task.Handle, cardNum)
	pendingRecv := make([]int, cardNum)
	for i := range pendingRecv {
		pendingRecv[i] = -1
	}
	compute := func(i int, ops fheop.Counts) {
		card := c.Cards[i]
		if pendingRecv[i] >= 0 {
			latest[i] = c.B.ComputeAfterRecv(card, pendingRecv[i], ops, limbs, label)
			pendingRecv[i] = -1
		} else {
			latest[i] = c.B.Compute(card, ops, limbs, label)
		}
	}

	// Phase 1: x² everywhere, then the higher binary powers on a shrinking
	// prefix of cards, each forwarded to the cards that dropped out.
	for i := 0; i < cardNum; i++ {
		compute(i, fheop.Of(fheop.CMult, 1))
	}
	for j := 1; j <= polyDepth-2; j++ {
		senders := cardNum >> j
		if senders < 1 {
			senders = 1
		}
		for i := 0; i < senders; i++ {
			compute(i, fheop.Of(fheop.CMult, 1)) // x^(2^(j+1))
			// Forward to the cards in this card's coverage block that no
			// longer compute powers themselves.
			var dsts []int
			for m := i + senders; m < cardNum; m += senders {
				dsts = append(dsts, c.Cards[m])
			}
			if len(dsts) > 0 {
				recvs := c.B.Send(c.Cards[i], latest[i], dsts, bytes, label)
				for di, m := 0, i+senders; m < cardNum; m += senders {
					pendingRecv[m] = recvs[di]
					di++
				}
			}
		}
	}

	// Phase 2: shared sub-polynomial work. k = poly_depth - tree_depth - 2;
	// each card runs 2^(k+1) add-and-multiply-const tasks and the
	// multiply-and-add reduction ladder.
	k := polyDepth - treeDepth - 2
	if k < 0 {
		k = 0
	}
	for i := 0; i < cardNum; i++ {
		compute(i, fheop.Of(fheop.PMult, 1<<(k+1), fheop.HAdd, 1<<(k+1)))
		ladder := fheop.Counts{}
		for j := 0; j <= k; j++ {
			ladder = ladder.Add(fheop.Of(fheop.CMult, 1<<(k-j), fheop.HAdd, 1<<(k-j)))
		}
		compute(i, ladder)
	}

	// Phase 3: tree aggregation to card 0 — the upper half multiplies its
	// partial by the appropriate power and sends; the mirror adds.
	active := cardNum
	for active > 1 {
		half := active / 2
		for i := 0; i < half; i++ {
			u := i + half
			compute(u, fheop.Of(fheop.CMult, 1)) // multiply_and_send
			recvs := c.B.Send(c.Cards[u], latest[u], []int{c.Cards[i]}, bytes, label)
			pendingRecv[i] = recvs[0]
			compute(i, fheop.Of(fheop.HAdd, 1)) // receive_and_add
		}
		active = half
	}
	return nil
}

// PolyEvalCounts returns the operation counts of a single-card tree
// evaluation of a degree-d polynomial (used when whole evaluations stay
// local because the layer has more ciphertexts than there are cards).
func PolyEvalCounts(degree int) fheop.Counts {
	if degree < 1 {
		return fheop.Counts{}
	}
	polyDepth := log2int(degree + 1)
	// Binary powers x^2 … x^(2^(polyDepth-1)).
	ops := fheop.Of(fheop.CMult, polyDepth-1)
	if polyDepth < 2 {
		ops = fheop.Counts{}
	}
	// Leaf blocks: one PMult+HAdd per odd block of coefficients, then the
	// pairwise combine ladder: deg/2^j CMult+HAdd at each tree level.
	blocks := (degree + 1 + 1) / 2
	ops = ops.Add(fheop.Of(fheop.PMult, blocks, fheop.HAdd, blocks))
	for sz := 2; sz <= blocks; sz <<= 1 {
		ops = ops.Add(fheop.Of(fheop.CMult, blocks/sz, fheop.HAdd, blocks/sz))
	}
	return ops
}

// NonLinear maps a non-linear layer with `units` parallel polynomial
// evaluations of degree `degree` (the Table I parallelism), producing
// outputCts packed activation ciphertexts that are redistributed for the
// next layer. With at least as many units as cards, evaluations stay local;
// otherwise each evaluation is split across a card group via Algorithm 1.
func (c *Context) NonLinear(units, degree, outputCts int, label string) error {
	if units <= 0 {
		return fmt.Errorf("mapping: %s: unit count must be positive", label)
	}
	nc := len(c.Cards)
	if units >= nc {
		return c.DistributeLocal(units, PolyEvalCounts(degree), outputCts, label)
	}
	// Split each evaluation across a group of nc/units cards (power-of-two
	// groups keep the card tree balanced).
	cts := units
	group := 1
	for group*2*cts <= nc {
		group *= 2
	}
	c.B.Step(label)
	var firstErr error
	for i := 0; i < cts; i++ {
		sub := c.WithCards(c.Cards[i*group : (i+1)*group])
		if err := sub.emitPolyEval(degree, label); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
