// Package mapping implements the task decomposition and mapping strategies
// of Section III of the paper: the ring-broadcast convolution mapping
// (Figs. 1-2), the BSGS matrix-vector mapping shared by FC layers and the
// bootstrapping DFT (Fig. 3(d), Eq. 1), the multi-card polynomial-evaluation
// mapping of Algorithm 1, the embarrassingly parallel PCMM/CCMM mapping, and
// the full bootstrapping pipeline (C2S → EvaExp → DAF → S2C). Each strategy
// appends task-queue programs to a task.Builder; the simulator executes them.
package mapping

import (
	"fmt"

	"hydra/internal/fheop"
	"hydra/internal/hw"
	"hydra/internal/task"
)

// Recipes of one parallel unit per procedure, from Table I of the paper.
var (
	// ConvBNUnit: 8 Rotations, 2 PMults, 7 HAdds per kernel-group subtask.
	ConvBNUnit = fheop.Of(fheop.Rotation, 8, fheop.PMult, 2, fheop.HAdd, 7)
	// PoolUnit: 2 Rotations, 1 PMult per channel.
	PoolUnit = fheop.Of(fheop.Rotation, 2, fheop.PMult, 1)
	// FCUnit: 1 Rotation, 1 PMult per weight diagonal.
	FCUnit = fheop.Of(fheop.Rotation, 1, fheop.PMult, 1)
	// PCMMUnit: 1 Rotation, 1 PMult per plaintext-ciphertext product task.
	PCMMUnit = fheop.Of(fheop.Rotation, 1, fheop.PMult, 1)
	// CCMMUnit: 7 Rotations, 1 CMult, 1 PMult, 6 HAdds.
	CCMMUnit = fheop.Of(fheop.Rotation, 7, fheop.CMult, 1, fheop.PMult, 1, fheop.HAdd, 6)
	// NonlinearUnit: 8 CMults, 15 HAdds per polynomial-evaluation unit.
	NonlinearUnit = fheop.Of(fheop.CMult, 8, fheop.HAdd, 15)
)

// Context carries the shared state of a mapping session.
type Context struct {
	B      *task.Builder
	Scheme hw.SchemeParams
	Cards  []int // participating card IDs (global numbering)
	Limbs  int   // limb count ops are charged at (0 = scheme effective limb)
}

// NewContext builds a context over cards 0..cards-1.
func NewContext(b *task.Builder, scheme hw.SchemeParams, cards int) *Context {
	ids := make([]int, cards)
	for i := range ids {
		ids[i] = i
	}
	return &Context{B: b, Scheme: scheme, Cards: ids}
}

// WithCards returns a copy of the context restricted to the given card set
// (used when a procedure is split across a subset of the machine).
func (c *Context) WithCards(cards []int) *Context {
	out := *c
	out.Cards = cards
	return &out
}

func (c *Context) limbs() int {
	if c.Limbs > 0 {
		return c.Limbs
	}
	return c.Scheme.EffectiveLimb
}

// CtBytes returns the wire size of one ciphertext at the context limb count.
func (c *Context) CtBytes() float64 {
	return float64(c.Scheme.CiphertextBytes(c.limbs()))
}

func (c *Context) others(self int) []int {
	out := make([]int, 0, len(c.Cards)-1)
	for _, id := range c.Cards {
		if id != self {
			out = append(out, id)
		}
	}
	return out
}

// maxBatchesPerCard caps the number of (compute, broadcast) pipeline slots
// emitted per card per layer. The paper broadcasts every subtask result
// (Fig. 2); batching consecutive subtasks preserves the overlap structure at
// coarser granularity while keeping million-unit layers simulable.
const maxBatchesPerCard = 16

// DistributeBroadcast implements the convolution-layer mapping of Figs. 1-2:
// the layer's n parallel units (kernel-group subtasks) are split evenly over
// the cards, and the layer's packed output ciphertexts — outputCts of them,
// the "Ciphertext" row of Table I, far fewer than the unit count thanks to
// multiplexed packing — are broadcast to the other cards as the subtasks
// producing them finish, so transmission hides behind the next subtasks'
// computation. All cards hold the full layer output when the step completes.
func (c *Context) DistributeBroadcast(units int, recipe fheop.Counts, outputCts int, label string) error {
	if units <= 0 || outputCts <= 0 {
		return fmt.Errorf("mapping: %s: units (%d) and outputCts (%d) must be positive", label, units, outputCts)
	}
	nc := len(c.Cards)
	c.B.Step(label)
	perCard := (units + nc - 1) / nc
	batch := (perCard + maxBatchesPerCard - 1) / maxBatchesPerCard
	for ci, card := range c.Cards {
		assigned := perCardShare(units, nc, ci)
		if assigned == 0 {
			continue
		}
		ctsShare := perCardShare(outputCts, nc, ci)
		batches := (assigned + batch - 1) / batch
		bytesPerBatch := float64(ctsShare) * c.CtBytes() / float64(batches)
		for done, bi := 0, 0; done < assigned; done, bi = done+batch, bi+1 {
			sz := batch
			if done+sz > assigned {
				sz = assigned - done
			}
			h := c.B.Compute(card, recipe.Scale(sz), c.limbs(), label)
			if nc > 1 && bytesPerBatch > 0 {
				c.B.Send(card, h, c.others(card), bytesPerBatch, label)
			}
		}
	}
	return nil
}

// DistributeGather is the ablation counterpart of DistributeBroadcast: all
// output ciphertexts funnel to the first card after the whole layer
// computes, and the first card re-broadcasts the full layer output. This is
// the naive aggregation (no pipelining, double volume through one card) the
// paper's sequential broadcast avoids.
func (c *Context) DistributeGather(units int, recipe fheop.Counts, outputCts int, label string) error {
	if units <= 0 || outputCts <= 0 {
		return fmt.Errorf("mapping: %s: units (%d) and outputCts (%d) must be positive", label, units, outputCts)
	}
	nc := len(c.Cards)
	c.B.Step(label)
	root := c.Cards[0]
	lastRecv := -1
	for ci, card := range c.Cards {
		assigned := perCardShare(units, nc, ci)
		if assigned == 0 {
			continue
		}
		h := c.B.Compute(card, recipe.Scale(assigned), c.limbs(), label)
		if card != root {
			ctsShare := perCardShare(outputCts, nc, ci)
			if ctsShare > 0 {
				recvs := c.B.Send(card, h, []int{root}, float64(ctsShare)*c.CtBytes(), label)
				lastRecv = recvs[0]
			}
		}
	}
	if nc > 1 && lastRecv >= 0 {
		// Root re-broadcasts the aggregate after the last arrival.
		gate := c.B.ComputeAfterRecv(root, lastRecv, fheop.Of(fheop.HAdd, nc-1), c.limbs(), label)
		c.B.Send(root, gate, c.others(root), float64(outputCts)*c.CtBytes(), label)
	}
	return nil
}

// DistributeLocal maps an embarrassingly parallel procedure (PCMM, CCMM, and
// whole-ciphertext non-linear evaluations): units are computed entirely
// locally and each card broadcasts only its share of the layer's output
// ciphertexts for the next procedure ("we only need to distribute these tasks
// evenly across multiple computing nodes", Section III-A). Like the
// convolution mapping, output shares stream out batch by batch so the
// transfers hide behind the remaining computation; with outputCts = 0 no
// redistribution is emitted.
func (c *Context) DistributeLocal(units int, recipe fheop.Counts, outputCts int, label string) error {
	if outputCts <= 0 {
		if units <= 0 {
			return fmt.Errorf("mapping: %s: unit count must be positive, got %d", label, units)
		}
		nc := len(c.Cards)
		c.B.Step(label)
		for ci, card := range c.Cards {
			if assigned := perCardShare(units, nc, ci); assigned > 0 {
				c.B.Compute(card, recipe.Scale(assigned), c.limbs(), label)
			}
		}
		return nil
	}
	return c.DistributeBroadcast(units, recipe, outputCts, label)
}

// perCardShare splits units over nc cards, giving the remainder to the
// lowest-numbered cards.
func perCardShare(units, nc, idx int) int {
	base := units / nc
	if idx < units%nc {
		return base + 1
	}
	return base
}

func log2int(n int) int {
	l := 0
	for 1<<l < n {
		l++
	}
	return l
}

func isPow2(n int) bool { return n > 0 && n&(n-1) == 0 }
