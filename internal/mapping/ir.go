package mapping

import (
	"fmt"

	"hydra/internal/fhir"
)

// This file is the IR-backed front door of the mapping layer: instead of
// hand-counting the fheop recipe of a procedure (MatVec, FC, PolyEval) and
// emitting it directly, these variants write the procedure's *mathematics*
// as an internal/fhir program, run the optimizing pass pipeline
// (CSE → rescale placement → lazy relinearization → rotation hoisting), and
// lower the optimized DAG onto the task queues via fhir.LowerTask. The
// hand-written emitters in matvec.go and poly.go remain the pinned baselines
// of the paper-figure experiments; the IR route produces the same schedule
// shape (uniform parallel units, tree aggregation) with the operation counts
// the compiler actually achieves — fewer keyswitches per transform, since
// baby-step rotations are shared and folded through one decomposition.

// BSGSProgram writes the baby-step/giant-step linear transform as an IR
// program over one input "x": gs giant steps, each an inner fold of bs
// plaintext-multiplied baby rotations, rotated by g·bs and accumulated. The
// diag generator names the plaintext diagonal for (giant g, baby j); keys
// make equal diagonals CSE-mergeable.
func BSGSProgram(slots, bs, gs int, diag func(g, j int) (key string, vals []complex128)) (*fhir.Program, error) {
	if bs <= 0 || gs <= 0 {
		return nil, fmt.Errorf("mapping: bs and gs must be positive (bs=%d gs=%d)", bs, gs)
	}
	b := fhir.NewBuilder(slots)
	x := b.Input("x")
	var acc *fhir.Value
	for g := 0; g < gs; g++ {
		var inner *fhir.Value
		for j := 0; j < bs; j++ {
			key, vals := diag(g, j)
			term := b.MulPlain(b.Rotate(x, j), b.PlainVec(key, vals))
			if inner == nil {
				inner = term
			} else {
				inner = b.Add(inner, term)
			}
		}
		rotated := b.Rotate(inner, g*bs)
		if acc == nil {
			acc = rotated
		} else {
			acc = b.Add(acc, rotated)
		}
	}
	b.Output(acc)
	return b.Build()
}

// PolyProgram writes the Horner evaluation of Σ coeffs[i]·x^i as an IR
// program over one input "x" (coeffs[0] is the constant term).
func PolyProgram(slots int, coeffs []float64) (*fhir.Program, error) {
	if len(coeffs) < 2 {
		return nil, fmt.Errorf("mapping: polynomial needs degree >= 1, got %d coefficients", len(coeffs))
	}
	b := fhir.NewBuilder(slots)
	x := b.Input("x")
	deg := len(coeffs) - 1
	acc := b.AddConst(b.MulConst(x, coeffs[deg]), coeffs[deg-1])
	for i := deg - 2; i >= 0; i-- {
		acc = b.AddConst(b.Mul(acc, x), coeffs[i])
	}
	b.Output(acc)
	return b.Build()
}

// onesDiag is the placeholder diagonal generator used when only the schedule
// shape matters (the simulator executes op counts, not residues).
func onesDiag(slots int) func(g, j int) (string, []complex128) {
	return func(g, j int) (string, []complex128) {
		vals := make([]complex128, slots)
		for i := range vals {
			vals[i] = 1
		}
		return fmt.Sprintf("bsgs:%d:%d", g, j), vals
	}
}

// MatVecIR emits the BSGS matrix-vector product through the IR pipeline:
// compile BSGSProgram with the full pass stack, then lower onto this
// context's cards. levels is the compile depth budget (a BSGS transform
// consumes one). Compare with MatVec, the hand-counted Fig. 3(d) emitter.
func (c *Context) MatVecIR(opts MatVecOptions, slots, levels int, label string) error {
	prog, err := BSGSProgram(slots, opts.BS, opts.GS, onesDiag(slots))
	if err != nil {
		return err
	}
	compiled, err := fhir.Compile(prog, fhir.Options{Levels: levels})
	if err != nil {
		return fmt.Errorf("mapping: %s: compile: %w", label, err)
	}
	c.B.Step(label)
	return fhir.LowerTask(compiled, c.B, c.Scheme, c.Cards, label)
}

// FCIR is the IR route for a fully connected layer with the given number of
// weight diagonals (the FC emitter's BS=1 specialization).
func (c *Context) FCIR(diagonals, slots, levels int, label string) error {
	return c.MatVecIR(MatVecOptions{BS: 1, GS: diagonals}, slots, levels, label)
}

// PolyEvalIR emits a polynomial evaluation through the IR pipeline. The lazy
// relinearization and rescale placement of the pass stack replace the
// hand-scheduled Algorithm 1 recipe; the card partition comes from
// fhir.LowerTask. levels must be at least the Horner depth plus one.
func (c *Context) PolyEvalIR(coeffs []float64, slots, levels int, label string) error {
	prog, err := PolyProgram(slots, coeffs)
	if err != nil {
		return err
	}
	compiled, err := fhir.Compile(prog, fhir.Options{Levels: levels})
	if err != nil {
		return fmt.Errorf("mapping: %s: compile: %w", label, err)
	}
	c.B.Step(label)
	return fhir.LowerTask(compiled, c.B, c.Scheme, c.Cards, label)
}
