package mapping

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"hydra/internal/fheop"
	"hydra/internal/hw"
	"hydra/internal/sim"
	"hydra/internal/task"
)

func newCtx(cards int) (*Context, *task.Builder) {
	b := task.NewBuilder(cards, 8)
	return NewContext(b, hw.PaperScheme(), cards), b
}

func runOn(t *testing.T, b *task.Builder, cfg sim.Config) *sim.Result {
	t.Helper()
	res, err := sim.Run(b.Build(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestDistributeBroadcastOpConservation(t *testing.T) {
	for _, cards := range []int{1, 4, 8} {
		ctx, b := newCtx(cards)
		if err := ctx.DistributeBroadcast(100, ConvBNUnit, 8, "ConvBN"); err != nil {
			t.Fatal(err)
		}
		ops := b.Build().TotalOps()
		if got, want := ops.Get(fheop.Rotation), 800; got != want {
			t.Fatalf("cards=%d: rotations %d, want %d", cards, got, want)
		}
		if got, want := ops.Get(fheop.PMult), 200; got != want {
			t.Fatalf("cards=%d: pmults %d, want %d", cards, got, want)
		}
	}
}

func TestDistributeBroadcastScales(t *testing.T) {
	times := map[int]float64{}
	for _, cards := range []int{1, 8, 64} {
		ctx, b := newCtx(cards)
		if err := ctx.DistributeBroadcast(1024, ConvBNUnit, 32, "ConvBN"); err != nil {
			t.Fatal(err)
		}
		times[cards] = runOn(t, b, sim.HydraConfig()).Makespan
	}
	s8 := times[1] / times[8]
	s64 := times[1] / times[64]
	// Fig. 6: ConvBN speedups over 7× on 8 cards and over 50× on 64 cards.
	if s8 < 6.0 || s8 > 8.5 {
		t.Fatalf("8-card ConvBN speedup %.2f outside [6,8.5]", s8)
	}
	if s64 < 28 || s64 > 66 {
		t.Fatalf("64-card ConvBN speedup %.2f outside [28,66]", s64)
	}
}

func TestBroadcastBeatsGather(t *testing.T) {
	mk := func(gather bool) float64 {
		ctx, b := newCtx(8)
		var err error
		if gather {
			err = ctx.DistributeGather(256, ConvBNUnit, 8, "ConvBN")
		} else {
			err = ctx.DistributeBroadcast(256, ConvBNUnit, 8, "ConvBN")
		}
		if err != nil {
			t.Fatal(err)
		}
		return runOn(t, b, sim.HydraConfig()).Makespan
	}
	if bc, ga := mk(false), mk(true); bc >= ga {
		t.Fatalf("ring broadcast (%g) should beat gather-rebroadcast (%g)", bc, ga)
	}
}

func TestDistributeLocalCommVolume(t *testing.T) {
	ctx, b := newCtx(8)
	if err := ctx.DistributeLocal(4096, PCMMUnit, 12, "PCMM"); err != nil {
		t.Fatal(err)
	}
	p := b.Build()
	// Each of the 12 output ciphertexts is broadcast once to 7 peers.
	want := 12.0 * 7 * ctx.CtBytes()
	if math.Abs(p.TotalBytes()-want)/want > 1e-9 {
		t.Fatalf("bytes %g, want %g", p.TotalBytes(), want)
	}
}

func TestMatVecOpConservation(t *testing.T) {
	for _, cards := range []int{1, 4, 16} {
		ctx, b := newCtx(cards)
		if err := ctx.MatVec(MatVecOptions{BS: 4, GS: 8}, "FC"); err != nil {
			t.Fatal(err)
		}
		ops := b.Build().TotalOps()
		// Giant-step PMults are conserved: bs·gs total.
		if got := ops.Get(fheop.PMult); got != 32 {
			t.Fatalf("cards=%d: pmults %d, want 32", cards, got)
		}
		// Baby steps replicate on every card (uniform-bs design).
		if got := ops.Get(fheop.Rotation); got != 4*cards+8 {
			t.Fatalf("cards=%d: rotations %d, want %d", cards, got, 4*cards+8)
		}
	}
}

func TestMatVecTreeBeatsStar(t *testing.T) {
	mk := func(star bool) float64 {
		ctx, b := newCtx(16)
		if err := ctx.MatVec(MatVecOptions{BS: 2, GS: 64, StarAggregation: star}, "DFT"); err != nil {
			t.Fatal(err)
		}
		return runOn(t, b, sim.HydraConfig()).Makespan
	}
	if tree, star := mk(false), mk(true); tree >= star {
		t.Fatalf("tree aggregation (%g) should beat star (%g)", tree, star)
	}
}

func TestMatVecUniformBSBeatsDistributed(t *testing.T) {
	mk := func(dist bool) float64 {
		ctx, b := newCtx(8)
		if err := ctx.MatVec(MatVecOptions{BS: 8, GS: 32, DistributedBS: dist}, "DFT"); err != nil {
			t.Fatal(err)
		}
		return runOn(t, b, sim.HydraConfig()).Makespan
	}
	if uni, dist := mk(false), mk(true); uni >= dist {
		t.Fatalf("uniform bs (%g) should beat distributed bs (%g)", uni, dist)
	}
}

func TestMatVecRejectsBadInput(t *testing.T) {
	ctx, _ := newCtx(8)
	if err := ctx.MatVec(MatVecOptions{BS: 0, GS: 4}, "x"); err == nil {
		t.Fatal("expected error for bs=0")
	}
	ctx3 := ctx.WithCards([]int{0, 1, 2})
	if err := ctx3.MatVec(MatVecOptions{BS: 2, GS: 4}, "x"); err == nil {
		t.Fatal("expected error for non power-of-two card set")
	}
}

func TestFCMapping(t *testing.T) {
	ctx, b := newCtx(8)
	if err := ctx.FC(1511, "FC"); err != nil {
		t.Fatal(err)
	}
	ops := b.Build().TotalOps()
	// bs = 64 (64² ≥ 1511), gs = ceil(1511/64) = 24, PMults = bs·gs ≥ 1511.
	if got := ops.Get(fheop.PMult); got < 1511 {
		t.Fatalf("FC pmults %d should cover all 1511 diagonals", got)
	}
}

func TestPolyEvalStructure(t *testing.T) {
	for _, cards := range []int{1, 2, 8} {
		ctx, b := newCtx(cards)
		if err := ctx.PolyEval(59, "ReLU"); err != nil {
			t.Fatal(err)
		}
		p := b.Build()
		ops := p.TotalOps()
		if ops.Get(fheop.CMult) == 0 {
			t.Fatalf("cards=%d: no CMults in polynomial evaluation", cards)
		}
		if cards == 1 && p.TotalBytes() != 0 {
			t.Fatalf("single card should not communicate, sent %g bytes", p.TotalBytes())
		}
		if cards > 1 && p.TotalBytes() == 0 {
			t.Fatalf("cards=%d: expected power forwarding traffic", cards)
		}
		if _, err := sim.Run(p, sim.HydraConfig()); err != nil {
			t.Fatalf("cards=%d: %v", cards, err)
		}
	}
}

func TestPolyEvalSpeedsUp(t *testing.T) {
	mk := func(cards int) float64 {
		ctx, b := newCtx(cards)
		if err := ctx.PolyEval(59, "ReLU"); err != nil {
			t.Fatal(err)
		}
		return runOn(t, b, sim.HydraConfig()).Makespan
	}
	if t1, t2 := mk(1), mk(2); t2 >= t1 {
		t.Fatalf("2-card PolyEval (%g) should beat 1-card (%g)", t2, t1)
	}
}

func TestNonLinearWholeCiphertexts(t *testing.T) {
	ctx, b := newCtx(8)
	if err := ctx.NonLinear(128, 59, 32, "ReLU"); err != nil {
		t.Fatal(err)
	}
	res := runOn(t, b, sim.HydraConfig())
	if res.OpTotals.Get(fheop.CMult) < 128 {
		t.Fatalf("expected at least one CMult per ciphertext, got %d", res.OpTotals.Get(fheop.CMult))
	}
}

func TestNonLinearSplitAcrossGroups(t *testing.T) {
	ctx, b := newCtx(16)
	if err := ctx.NonLinear(4, 59, 4, "GeLU"); err != nil {
		t.Fatal(err)
	}
	p := b.Build()
	if len(p.Steps) != 1 {
		t.Fatalf("grouped non-linear should emit one step, got %d", len(p.Steps))
	}
	if _, err := sim.Run(p, sim.HydraConfig()); err != nil {
		t.Fatal(err)
	}
}

func TestDFTLevelTimeMatchesHandModel(t *testing.T) {
	tt := OpTimes{Rot: 10, PMult: 1, HAdd: 0.5, Com: 2}
	// r=16, bs=4 → gs=8; 4 cards → gs_s=2.
	got := DFTLevelTime(16, 4, 4, tt)
	want := 4*10.0 + (4*1+3*0.5+10)*2 + (2-1)*0.5 + (2+1)*2.0
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("DFTLevelTime = %g, want %g", got, want)
	}
	// Single card: no communication term.
	got1 := DFTLevelTime(16, 4, 1, tt)
	want1 := 4*10.0 + (4*1+3*0.5+10)*8 + 7*0.5
	if math.Abs(got1-want1) > 1e-12 {
		t.Fatalf("single-card DFTLevelTime = %g, want %g", got1, want1)
	}
}

func TestOptimizeDFTShrinksBSWithCards(t *testing.T) {
	// Table V: multi-card prototypes choose smaller bs than the single card,
	// because only giant steps parallelize.
	card := hw.HydraCard()
	s := hw.PaperScheme()
	com := hw.HydraNetwork().IntraServer.Transfer(float64(s.CiphertextBytes(24)))
	for _, logSlots := range []int{12, 13, 14, 15} {
		tS := OpTimesFor(card, s, 24, 0)
		tM := OpTimesFor(card, s, 24, com)
		pS, _, err := OptimizeDFT(logSlots, 3, 1, tS)
		if err != nil {
			t.Fatal(err)
		}
		pM, _, err := OptimizeDFT(logSlots, 3, 8, tM)
		if err != nil {
			t.Fatal(err)
		}
		pL, _, err := OptimizeDFT(logSlots, 3, 64, tM)
		if err != nil {
			t.Fatal(err)
		}
		sum := func(xs []int) int {
			s := 0
			for _, x := range xs {
				s += x
			}
			return s
		}
		if sum(pM.BS) > sum(pS.BS) {
			t.Fatalf("logSlots=%d: 8-card bs %v should not exceed single-card bs %v", logSlots, pM.BS, pS.BS)
		}
		if sum(pL.BS) > sum(pM.BS) {
			t.Fatalf("logSlots=%d: 64-card bs %v should not exceed 8-card bs %v", logSlots, pL.BS, pM.BS)
		}
		for _, p := range []DFTParams{pS, pM, pL} {
			if err := p.Validate(logSlots); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func TestOptimizeDFTErrors(t *testing.T) {
	tt := OpTimes{Rot: 1, PMult: 1, HAdd: 1, Com: 1}
	if _, _, err := OptimizeDFT(3, 3, 1, tt); err == nil {
		t.Fatal("expected error for too few slot bits")
	}
	if _, _, err := OptimizeDFT(30, 3, 1, tt); err == nil {
		t.Fatal("expected error for slots exceeding the radix range")
	}
}

func TestBootstrapEmission(t *testing.T) {
	for _, cards := range []int{1, 8} {
		ctx, b := newCtx(cards)
		com := 0.0
		if cards > 1 {
			com = hw.HydraNetwork().IntraServer.Transfer(ctx.CtBytes())
		}
		opts := DefaultBootstrapOptions(ctx.Scheme, cards, OpTimesFor(hw.HydraCard(), ctx.Scheme, 25, com))
		if err := ctx.Bootstrap(opts, "Boot"); err != nil {
			t.Fatal(err)
		}
		res := runOn(t, b, sim.HydraConfig())
		if res.Makespan <= 0 {
			t.Fatalf("cards=%d: empty bootstrap", cards)
		}
		if res.OpTotals.Get(fheop.Rotation) == 0 || res.OpTotals.Get(fheop.CMult) == 0 {
			t.Fatalf("cards=%d: bootstrap missing rotations or CMults: %v", cards, res.OpTotals)
		}
	}
}

func TestBootstrapBatchModes(t *testing.T) {
	scheme := hw.PaperScheme()
	opts := DefaultBootstrapOptions(scheme, 1, OpTimesFor(hw.HydraCard(), scheme, 25, 0))

	// Many ciphertexts, few cards: whole bootstraps stay local.
	ctx, b := newCtx(8)
	if err := ctx.BootstrapBatch(32, opts, OpTimesFor(hw.HydraCard(), scheme, 25, 0), "Boot"); err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(b.Build(), sim.HydraConfig()); err != nil {
		t.Fatal(err)
	}

	// Few ciphertexts, many cards: split bootstraps.
	ctx2, b2 := newCtx(16)
	if err := ctx2.BootstrapBatch(2, opts, OpTimesFor(hw.HydraCard(), scheme, 25, 0), "Boot"); err != nil {
		t.Fatal(err)
	}
	p := b2.Build()
	if _, err := sim.Run(p, sim.HydraConfig()); err != nil {
		t.Fatal(err)
	}
	if p.TotalBytes() == 0 {
		t.Fatal("split bootstraps should communicate")
	}
}

func TestBootstrapScalesWithCards(t *testing.T) {
	scheme := hw.PaperScheme()
	mk := func(cards, cts int) float64 {
		ctx, b := newCtx(cards)
		com := 0.0
		if cards > 1 {
			com = hw.HydraNetwork().IntraServer.Transfer(float64(scheme.CiphertextBytes(25)))
		}
		opts := DefaultBootstrapOptions(scheme, cards, OpTimesFor(hw.HydraCard(), scheme, 25, com))
		if err := ctx.BootstrapBatch(cts, opts, OpTimesFor(hw.HydraCard(), scheme, 25, com), "Boot"); err != nil {
			t.Fatal(err)
		}
		return runOn(t, b, sim.HydraConfig()).Makespan
	}
	t1 := mk(1, 16)
	t8 := mk(8, 16)
	if speedup := t1 / t8; speedup < 5 || speedup > 8.5 {
		t.Fatalf("8-card bootstrap speedup %.2f outside [5,8.5] (Fig. 6: Boot > 5×)", speedup)
	}
}

func TestBootstrapCountsConsistency(t *testing.T) {
	scheme := hw.PaperScheme()
	opts := DefaultBootstrapOptions(scheme, 1, OpTimesFor(hw.HydraCard(), scheme, 25, 0))
	counts := BootstrapCounts(opts)

	// The analytic counts should match the emitted single-card program.
	ctx, b := newCtx(1)
	if err := ctx.Bootstrap(opts, "Boot"); err != nil {
		t.Fatal(err)
	}
	emitted := b.Build().TotalOps()
	for _, op := range []fheop.Op{fheop.Rotation, fheop.PMult, fheop.CMult} {
		a, e := counts.Get(op), emitted.Get(op)
		diff := math.Abs(float64(a - e))
		if diff > 0.25*math.Max(float64(a), float64(e)) {
			t.Fatalf("%v: analytic %d vs emitted %d differ by more than 25%%", op, a, e)
		}
	}
}

func TestPerCardShare(t *testing.T) {
	total := 0
	for i := 0; i < 8; i++ {
		total += perCardShare(100, 8, i)
	}
	if total != 100 {
		t.Fatalf("shares sum to %d", total)
	}
	if perCardShare(3, 8, 0) != 1 || perCardShare(3, 8, 7) != 0 {
		t.Fatal("remainder should go to the lowest cards")
	}
}

func TestMappingOpConservationProperty(t *testing.T) {
	// Unit counts are conserved across card counts for every distribution
	// strategy, and programs always simulate without deadlock.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		units := 1 + rng.Intn(500)
		cts := 1 + rng.Intn(32)
		cards := 1 << rng.Intn(5)
		ctx, b := newCtx(cards)
		var err error
		switch rng.Intn(3) {
		case 0:
			err = ctx.DistributeBroadcast(units, ConvBNUnit, cts, "x")
		case 1:
			err = ctx.DistributeGather(units, PoolUnit, cts, "x")
		default:
			err = ctx.DistributeLocal(units, PCMMUnit, cts, "x")
		}
		if err != nil {
			return false
		}
		p := b.Build()
		if _, err := sim.Run(p, sim.HydraConfig()); err != nil {
			return false
		}
		// Rotations come only from the per-unit recipes, so the total is an
		// exact multiple of the unit count on every card-count split.
		return p.TotalOps().Get(fheop.Rotation)%units == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
