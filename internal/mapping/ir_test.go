package mapping

import (
	"math"
	"testing"

	"hydra/internal/fheop"
	"hydra/internal/hw"
	"hydra/internal/sim"
	"hydra/internal/task"
)

func sumOps(p *task.Program) fheop.Counts {
	var c fheop.Counts
	for _, st := range p.Steps {
		for _, q := range st.Compute {
			for _, t := range q {
				c = c.Add(t.Ops)
			}
		}
	}
	return c
}

func keyswitches(c fheop.Counts) int {
	return c[fheop.Rotation] + c[fheop.KeySwitch] + c[fheop.CMult] + c[fheop.Conjugate]
}

// TestMatVecIRReducesKeySwitches compares the IR-compiled BSGS emission
// against the hand-counted legacy emitter. The schedules differ by design:
// the legacy path charges every baby step on every card, rotation-by-zero
// included; the IR path hoists the shared baby rotations into one
// extended-basis basket per card and drops identity rotations at build time.
// The IR emission must therefore need strictly fewer keyswitches.
func TestMatVecIRReducesKeySwitches(t *testing.T) {
	const bs, gs, slots, cards = 4, 4, 16, 4
	scheme := hw.PaperScheme()

	legacy := task.NewBuilder(cards, 2)
	if err := NewContext(legacy, scheme, cards).MatVec(MatVecOptions{BS: bs, GS: gs}, "legacy"); err != nil {
		t.Fatal(err)
	}
	ir := task.NewBuilder(cards, 2)
	if err := NewContext(ir, scheme, cards).MatVecIR(MatVecOptions{BS: bs, GS: gs}, slots, 3, "ir"); err != nil {
		t.Fatal(err)
	}
	lp, ip := legacy.Build(), ir.Build()
	if err := ip.Validate(); err != nil {
		t.Fatal(err)
	}
	lk, ik := keyswitches(sumOps(lp)), keyswitches(sumOps(ip))
	if ik >= lk {
		t.Errorf("IR emission uses %d keyswitches, legacy %d; hoisting should reduce them", ik, lk)
	}
}

func TestMatVecIRSchedules(t *testing.T) {
	b := task.NewBuilder(4, 2)
	if err := NewContext(b, hw.PaperScheme(), 4).MatVecIR(MatVecOptions{BS: 4, GS: 4}, 16, 3, "ir"); err != nil {
		t.Fatal(err)
	}
	p := b.Build()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(p, sim.HydraConfig())
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(res.Makespan) || math.IsInf(res.Makespan, 0) || res.Makespan <= 0 {
		t.Fatalf("makespan %v", res.Makespan)
	}
}

func TestPolyEvalIRSchedules(t *testing.T) {
	b := task.NewBuilder(2, 2)
	coeffs := []float64{0.5, -1, 0.25, 0.125, -0.5, 1, 0.0625, -0.25}
	if err := NewContext(b, hw.PaperScheme(), 2).PolyEvalIR(coeffs, 16, 8, "poly"); err != nil {
		t.Fatal(err)
	}
	p := b.Build()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	ops := sumOps(p)
	// Horner on a degree-7 polynomial: six ciphertext products, each fused
	// with its relinearization into a CMult.
	if ops[fheop.CMult] != 6 {
		t.Errorf("CMult count %d, want 6 (Horner depth)", ops[fheop.CMult])
	}
	res, err := sim.Run(p, sim.HydraConfig())
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(res.Makespan) || math.IsInf(res.Makespan, 0) || res.Makespan <= 0 {
		t.Fatalf("makespan %v", res.Makespan)
	}
}

// TestBSGSProgramMatchesLegacyShape pins the structural relationship between
// the two routes: the IR program's rotation set equals the legacy BSGS
// rotation set (babies 1..bs-1 and giants bs, 2bs, ...) — the rotation-by-zero
// the legacy emitter charges is identity-folded by the builder.
func TestBSGSProgramMatchesLegacyShape(t *testing.T) {
	const bs, gs, slots = 4, 4, 16
	prog, err := BSGSProgram(slots, bs, gs, onesDiag(slots))
	if err != nil {
		t.Fatal(err)
	}
	rots, conj := prog.Rotations()
	if conj {
		t.Error("BSGS should not need conjugation keys")
	}
	want := map[int]bool{1: true, 2: true, 3: true, 4: true, 8: true, 12: true}
	if len(rots) != len(want) {
		t.Fatalf("rotations %v, want %v", rots, want)
	}
	for _, r := range rots {
		if !want[r] {
			t.Fatalf("unexpected rotation %d in %v", r, rots)
		}
	}
}
