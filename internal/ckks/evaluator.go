package ckks

import (
	"fmt"
	"math"

	"hydra/internal/ring"
)

// Evaluator performs homomorphic operations on ciphertexts. It corresponds to
// the FHE operation set that the Hydra accelerator implements in hardware:
// HAdd, PMult, CMult (+ relinearization), Rescale, KeySwitch, and Rotation.
type Evaluator struct {
	params *Parameters
	rlk    *RelinearizationKey
	rtks   *RotationKeySet

	pInvModQi   []uint64 // P^-1 mod q_i
	pModQi      []uint64 // P mod q_i (lifts c0 into the extended basis)
	pModQiShoup []uint64
}

// NewEvaluator builds an evaluator. rlk and rtks may be nil if multiplication
// or rotations respectively are never used.
func NewEvaluator(params *Parameters, rlk *RelinearizationKey, rtks *RotationKeySet) *Evaluator {
	r := params.RingQP()
	ev := &Evaluator{params: params, rlk: rlk, rtks: rtks}
	nq := len(params.Q())
	ev.pInvModQi = make([]uint64, nq)
	ev.pModQi = make([]uint64, nq)
	ev.pModQiShoup = make([]uint64, nq)
	for i := 0; i < nq; i++ {
		pq := ring.Reduce(params.P(), r.Moduli[i])
		ev.pInvModQi[i] = ring.InvMod(pq, r.Moduli[i])
		ev.pModQi[i] = pq
		ev.pModQiShoup[i] = ring.ShoupPrecomp(pq, r.Moduli[i])
	}
	return ev
}

// Params returns the evaluator's parameter set.
func (ev *Evaluator) Params() *Parameters { return ev.params }

func sameScale(a, b float64) bool {
	return math.Abs(a-b) <= 1e-6*math.Max(a, b)
}

// alignLevels drops levels so both ciphertexts share the lower level,
// returning copies when truncation is needed.
func alignLevels(a, b *Ciphertext) (*Ciphertext, *Ciphertext) {
	switch {
	case a.Level() > b.Level():
		a2 := a.CopyNew()
		a2.DropLevel(a.Level() - b.Level())
		return a2, b
	case b.Level() > a.Level():
		b2 := b.CopyNew()
		b2.DropLevel(b.Level() - a.Level())
		return a, b2
	default:
		return a, b
	}
}

// Add returns a + b. Scales must match.
func (ev *Evaluator) Add(a, b *Ciphertext) *Ciphertext {
	if !sameScale(a.Scale, b.Scale) {
		panic(fmt.Sprintf("ckks: scale mismatch in Add: %g vs %g", a.Scale, b.Scale))
	}
	a, b = alignLevels(a, b)
	r := ev.params.RingQP()
	out := &Ciphertext{C0: r.NewPoly(a.Level()), C1: r.NewPoly(a.Level()), Scale: a.Scale}
	r.Add(a.C0, b.C0, out.C0)
	r.Add(a.C1, b.C1, out.C1)
	return out
}

// Sub returns a - b. Scales must match.
func (ev *Evaluator) Sub(a, b *Ciphertext) *Ciphertext {
	if !sameScale(a.Scale, b.Scale) {
		panic(fmt.Sprintf("ckks: scale mismatch in Sub: %g vs %g", a.Scale, b.Scale))
	}
	a, b = alignLevels(a, b)
	r := ev.params.RingQP()
	out := &Ciphertext{C0: r.NewPoly(a.Level()), C1: r.NewPoly(a.Level()), Scale: a.Scale}
	r.Sub(a.C0, b.C0, out.C0)
	r.Sub(a.C1, b.C1, out.C1)
	return out
}

// Neg returns -ct (free: no level or scale cost).
func (ev *Evaluator) Neg(ct *Ciphertext) *Ciphertext {
	r := ev.params.RingQP()
	out := &Ciphertext{C0: r.NewPoly(ct.Level()), C1: r.NewPoly(ct.Level()), Scale: ct.Scale}
	r.Neg(ct.C0, out.C0)
	r.Neg(ct.C1, out.C1)
	return out
}

// RaiseModulus re-expresses a level-0 ciphertext at the top level without
// changing its coefficients (the ModRaise step of bootstrapping): the result
// decrypts to m + q0·I(X) for a small integer polynomial I, which the
// EvaExp/DAF stage of bootstrapping removes homomorphically.
func (ev *Evaluator) RaiseModulus(ct *Ciphertext) *Ciphertext {
	if ct.Level() != 0 {
		panic("ckks: RaiseModulus expects a level-0 ciphertext")
	}
	r := ev.params.RingQP()
	top := len(ev.params.Q()) - 1
	out := &Ciphertext{C0: r.NewPoly(top), C1: r.NewPoly(top), Scale: ct.Scale}
	q0 := r.Moduli[0]
	for _, pair := range [][2]*ring.Poly{{ct.C0, out.C0}, {ct.C1, out.C1}} {
		src := r.GetScratch(0)
		src.Copy(pair[0])
		r.INTT(src)
		coeffs := src.Coeffs[0]
		dst := pair[1]
		ring.ForEachLimb(top+1, func(i int) {
			qi := r.Moduli[i]
			row := dst.Coeffs[i]
			for j, c := range coeffs {
				row[j] = ring.CenteredMod(c, q0, qi)
			}
		})
		r.PutScratch(src)
		dst.IsNTT = false
		r.NTT(dst)
	}
	return out
}

// AddPlain returns ct + pt. Scales must match.
func (ev *Evaluator) AddPlain(ct *Ciphertext, pt *Plaintext) *Ciphertext {
	if !sameScale(ct.Scale, pt.Scale) {
		panic(fmt.Sprintf("ckks: scale mismatch in AddPlain: %g vs %g", ct.Scale, pt.Scale))
	}
	lvl := ct.Level()
	if pt.Level() < lvl {
		lvl = pt.Level()
	}
	r := ev.params.RingQP()
	out := &Ciphertext{C0: r.NewPoly(lvl), C1: r.NewPoly(lvl), Scale: ct.Scale}
	r.Add(atLevel(ct.C0, lvl), atLevel(pt.Value, lvl), out.C0)
	out.C1.Copy(atLevel(ct.C1, lvl))
	return out
}

// AddConst returns ct + c where c is a scalar applied to every slot. The
// constant is encoded at the ciphertext's scale, so the result keeps it.
func (ev *Evaluator) AddConst(ct *Ciphertext, c float64) *Ciphertext {
	r := ev.params.RingQP()
	out := ct.CopyNew()
	// A constant polynomial k has NTT image k in every position.
	neg := c < 0
	k := uint64(math.Round(math.Abs(c) * ct.Scale))
	ring.ForEachLimb(out.Level()+1, func(i int) {
		q := r.Moduli[i]
		kq := ring.Reduce(k, q)
		if neg {
			kq = ring.NegMod(kq, q)
		}
		row := out.C0.Coeffs[i]
		for j := range row {
			row[j] = ring.AddMod(row[j], kq, q)
		}
	})
	return out
}

// MulPlain returns ct ⊙ pt. The result's scale is the product of scales; call
// Rescale to bring it back down.
func (ev *Evaluator) MulPlain(ct *Ciphertext, pt *Plaintext) *Ciphertext {
	lvl := ct.Level()
	if pt.Level() < lvl {
		lvl = pt.Level()
	}
	r := ev.params.RingQP()
	out := &Ciphertext{C0: r.NewPoly(lvl), C1: r.NewPoly(lvl), Scale: ct.Scale * pt.Scale}
	r.MulCoeffs(atLevel(ct.C0, lvl), atLevel(pt.Value, lvl), out.C0)
	r.MulCoeffs(atLevel(ct.C1, lvl), atLevel(pt.Value, lvl), out.C1)
	return out
}

// MulPlainAcc accumulates ct ⊙ pt into acc in place (acc += ct ⊙ pt) using
// the ring's fused multiply-accumulate kernel, avoiding the temporary
// ciphertext and extra coefficient pass that MulPlain followed by Add would
// cost. acc's scale must already equal ct.Scale·pt.Scale; acc is truncated
// in place when ct or pt sits at a lower level. The result is bit-identical
// to Add(acc, MulPlain(ct, pt)).
func (ev *Evaluator) MulPlainAcc(ct *Ciphertext, pt *Plaintext, acc *Ciphertext) {
	if !sameScale(acc.Scale, ct.Scale*pt.Scale) {
		panic(fmt.Sprintf("ckks: scale mismatch in MulPlainAcc: %g vs %g", acc.Scale, ct.Scale*pt.Scale))
	}
	lvl := ct.Level()
	if pt.Level() < lvl {
		lvl = pt.Level()
	}
	if acc.Level() > lvl {
		acc.DropLevel(acc.Level() - lvl)
	}
	r := ev.params.RingQP()
	r.MulCoeffsAdd(atLevel(ct.C0, acc.Level()), atLevel(pt.Value, acc.Level()), acc.C0)
	r.MulCoeffsAdd(atLevel(ct.C1, acc.Level()), atLevel(pt.Value, acc.Level()), acc.C1)
}

// AddAcc adds b into acc in place (acc += b), sparing the fresh allocation
// of Add. Scales must match; acc is truncated in place when b sits at a
// lower level.
func (ev *Evaluator) AddAcc(b *Ciphertext, acc *Ciphertext) {
	if !sameScale(acc.Scale, b.Scale) {
		panic(fmt.Sprintf("ckks: scale mismatch in AddAcc: %g vs %g", acc.Scale, b.Scale))
	}
	if acc.Level() > b.Level() {
		acc.DropLevel(acc.Level() - b.Level())
	}
	r := ev.params.RingQP()
	r.Add(acc.C0, atLevel(b.C0, acc.Level()), acc.C0)
	r.Add(acc.C1, atLevel(b.C1, acc.Level()), acc.C1)
}

// MulByConst multiplies every slot by scalar c, encoding c at the default
// scale. The result's scale is ct.Scale · DefaultScale; Rescale afterwards.
func (ev *Evaluator) MulByConst(ct *Ciphertext, c float64) *Ciphertext {
	return ev.MulByConstWithScale(ct, c, ev.params.DefaultScale())
}

// MulByConstWithScale multiplies every slot by scalar c encoded at the given
// scale. The result's scale is ct.Scale · round(|c|·scale)/|c| when c ≠ 0
// (i.e. the exact integer multiplier is accounted for), ct.Scale · scale when
// c is 0. Choosing scale = q_level · target / ct.Scale followed by Rescale
// lands the ciphertext exactly on a target scale, which the tree polynomial
// evaluator uses to align branches of different depth.
func (ev *Evaluator) MulByConstWithScale(ct *Ciphertext, c, scale float64) *Ciphertext {
	r := ev.params.RingQP()
	neg := c < 0
	k := uint64(math.Round(math.Abs(c) * scale))
	outScale := ct.Scale * scale
	if c != 0 && k != 0 {
		// Track the scale actually applied by the rounded integer multiplier.
		outScale = ct.Scale * float64(k) / math.Abs(c)
	}
	out := &Ciphertext{C0: r.NewPoly(ct.Level()), C1: r.NewPoly(ct.Level()), Scale: outScale}
	ring.ForEachLimb(ct.Level()+1, func(i int) {
		q := r.Moduli[i]
		kq := ring.Reduce(k, q)
		if neg {
			kq = ring.NegMod(kq, q)
		}
		ks := ring.ShoupPrecomp(kq, q)
		src0, src1 := ct.C0.Coeffs[i], ct.C1.Coeffs[i]
		dst0, dst1 := out.C0.Coeffs[i], out.C1.Coeffs[i]
		for j := range src0 {
			dst0[j] = ring.MulModShoup(src0[j], kq, ks, q)
			dst1[j] = ring.MulModShoup(src1[j], kq, ks, q)
		}
	})
	out.C0.IsNTT = true
	out.C1.IsNTT = true
	return out
}

// MulRelin returns a·b, relinearized back to degree 1 with the evaluator's
// relinearization key. The result's scale is the product; Rescale afterwards.
func (ev *Evaluator) MulRelin(a, b *Ciphertext) *Ciphertext {
	if ev.rlk == nil {
		panic("ckks: evaluator has no relinearization key")
	}
	a, b = alignLevels(a, b)
	r := ev.params.RingQP()
	lvl := a.Level()

	d0 := r.NewPoly(lvl)
	d1 := r.NewPoly(lvl)
	d2 := r.GetScratch(lvl)
	tmp := r.GetScratch(lvl)
	r.MulCoeffs(a.C0, b.C0, d0)
	r.MulCoeffs(a.C0, b.C1, d1)
	r.MulCoeffs(a.C1, b.C0, tmp)
	r.Add(d1, tmp, d1)
	r.MulCoeffs(a.C1, b.C1, d2)
	r.PutScratch(tmp)

	ks0, ks1 := ev.keySwitch(d2, ev.rlk.Key)
	r.PutScratch(d2)
	r.Add(d0, ks0, d0)
	r.Add(d1, ks1, d1)
	return &Ciphertext{C0: d0, C1: d1, Scale: a.Scale * b.Scale}
}

// Rescale divides the ciphertext by its top modulus (rounding), dropping one
// level and dividing the scale by that modulus.
func (ev *Evaluator) Rescale(ct *Ciphertext) *Ciphertext {
	lvl := ct.Level()
	if lvl == 0 {
		panic("ckks: cannot rescale at level 0")
	}
	r := ev.params.RingQP()
	qLast := r.Moduli[lvl]
	out := &Ciphertext{
		C0:    ev.divRoundByModulus(ct.C0, lvl),
		C1:    ev.divRoundByModulus(ct.C1, lvl),
		Scale: ct.Scale / float64(qLast),
	}
	return out
}

// divRoundByModulus computes round(p / q_top) over the remaining residues.
// p is NTT-domain at level top; the result is NTT-domain at level top-1.
func (ev *Evaluator) divRoundByModulus(p *ring.Poly, top int) *ring.Poly {
	r := ev.params.RingQP()
	qLast := r.Moduli[top]
	qLastInv := func(qj uint64) uint64 { return ring.InvMod(ring.Reduce(qLast, qj), qj) }

	work := r.GetScratch(top)
	work.Copy(p)
	r.INTT(work)
	out := r.NewPoly(top - 1)
	ring.ForEachLimb(top, func(j int) {
		qj := r.Moduli[j]
		inv := qLastInv(qj)
		invShoup := ring.ShoupPrecomp(inv, qj)
		src := work.Coeffs[j]
		rem := work.Coeffs[top]
		dst := out.Coeffs[j]
		for t := range dst {
			// Centered remainder of the dropped residue.
			rr := ring.CenteredMod(rem[t], qLast, qj)
			dst[t] = ring.MulModShoup(ring.SubMod(src[t], rr, qj), inv, invShoup, qj)
		}
	})
	r.PutScratch(work)
	r.NTT(out)
	return out
}

// Rotate rotates slots left by rot positions using the evaluator's rotation
// keys. Rotate(ct, r) places old slot j+r in new slot j.
func (ev *Evaluator) Rotate(ct *Ciphertext, rot int) *Ciphertext {
	k := ring.GaloisElementForRotation(ev.params.N(), rot)
	return ev.automorphism(ct, k)
}

// Conjugate applies complex conjugation to every slot.
func (ev *Evaluator) Conjugate(ct *Ciphertext) *Ciphertext {
	k := ring.GaloisElementConjugate(ev.params.N())
	return ev.automorphism(ct, k)
}

func (ev *Evaluator) automorphism(ct *Ciphertext, k uint64) *Ciphertext {
	if k == 1 {
		return ct.CopyNew()
	}
	if ev.rtks == nil {
		panic("ckks: evaluator has no rotation keys")
	}
	swk, ok := ev.rtks.Keys[k]
	if !ok {
		panic(fmt.Sprintf("ckks: missing rotation key for Galois element %d", k))
	}
	r := ev.params.RingQP()
	lvl := ct.Level()
	perm := ring.AutomorphismNTTIndex(r.N, k)

	// The automorphism is fused into the keyswitch MAC as an index gather
	// (decomposition commutes with the coefficient permutation), so τ_k(c1)
	// is never materialized.
	h := ev.decomposeExt(ct.C1)
	ks0, ks1 := ev.ksFromDecomp(h, perm, swk)
	h.release(r)

	rc0 := r.NewPoly(lvl)
	r.AutomorphismNTT(ct.C0, perm, rc0)
	r.Add(rc0, ks0, rc0)
	return &Ciphertext{C0: rc0, C1: ks1, Scale: ct.Scale}
}

// hoistedDecomp holds the digit decomposition of a polynomial, extended to
// the active moduli plus P and transformed to the NTT domain — the expensive
// prefix of a key switch, reusable across many rotations of one ciphertext
// (the hoisting optimization BSGS baby steps exploit).
type hoistedDecomp struct {
	lvl    int
	modIdx []int        // accumulator row -> ring table index
	digits [][][]uint64 // [digit][row][coefficient], NTT domain
}

// decomposeExt computes the hoisted decomposition of d (NTT domain). The
// digit rows come from the ring's row pool; callers release them with
// h.release once the decomposition is consumed.
func (ev *Evaluator) decomposeExt(d *ring.Poly) *hoistedDecomp {
	r := ev.params.RingQP()
	lvl := d.Level()
	n := r.N
	pIdx := ev.params.SpecialIndex()

	dCoeff := r.GetScratch(lvl)
	dCoeff.Copy(d)
	r.INTT(dCoeff)

	h := &hoistedDecomp{lvl: lvl, modIdx: make([]int, lvl+2)}
	for j := 0; j <= lvl; j++ {
		h.modIdx[j] = j
	}
	h.modIdx[lvl+1] = pIdx

	// Extension pass: lift every digit to every extended modulus. The NTTs
	// are deferred so they can be regrouped per table below.
	h.digits = make([][][]uint64, lvl+1)
	ring.ForEachLimb(lvl+1, func(i int) {
		digit := dCoeff.Coeffs[i]
		rows := make([][]uint64, lvl+2)
		for jj, tblIdx := range h.modIdx {
			m := r.Tables[tblIdx].Mod
			ext := r.GetRow()
			if tblIdx == i {
				copy(ext, digit)
			} else {
				for t := 0; t < n; t++ {
					ext[t] = m.Reduce64(digit[t])
				}
			}
			//lint:allow poolleak digit rows transfer ownership to hoistedDecomp; h.release returns them to the pool
			rows[jj] = ext
		}
		h.digits[i] = rows
	})
	// Transform pass, regrouped per extended modulus: all lvl+1 digits' rows
	// for one table go through that table's ForwardBatch, loading its twiddle
	// tables and scratch row once and streaming them across the digits,
	// instead of interleaving tables digit by digit.
	ring.ForEachLimb(lvl+2, func(jj int) {
		rows := make([][]uint64, lvl+1)
		for i := 0; i <= lvl; i++ {
			rows[i] = h.digits[i][jj]
		}
		r.Tables[h.modIdx[jj]].ForwardBatch(rows)
	})
	r.PutScratch(dCoeff)
	return h
}

// release returns every digit row to the ring's row pool. The decomposition
// must not be used afterwards.
func (h *hoistedDecomp) release(r *ring.Ring) {
	for _, rows := range h.digits {
		for _, row := range rows {
			r.PutRow(row)
		}
	}
	h.digits = nil
}

// ksAccum multiply-accumulates a hoisted decomposition against a switching
// key in the extended basis, returning canonical accumulator rows from the
// ring's row pool (callers release them, typically via ModDownExt or after
// modDownP). When perm is non-nil it is an NTT-domain automorphism index
// permutation fused into the MAC (acc[t] += digit[perm[t]]·key[t]), which is
// how hoisted rotations apply τ_k to every digit without materializing the
// permuted decomposition.
func (ev *Evaluator) ksAccum(h *hoistedDecomp, perm []int, swk *SwitchingKey) (acc0, acc1 [][]uint64) {
	r := ev.params.RingQP()
	acc0 = make([][]uint64, h.lvl+2)
	acc1 = make([][]uint64, h.lvl+2)
	// Each accumulator row jj is independent: it folds every digit i over
	// the same modulus, so the digit order (and hence the bit pattern) is
	// preserved while rows run on parallel lanes.
	ring.ForEachLimb(h.lvl+2, func(jj int) {
		tblIdx := h.modIdx[jj]
		qj := r.Moduli[tblIdx]
		m := r.Tables[tblIdx].Mod
		a0 := r.GetRow()
		a1 := r.GetRow()
		for i := 0; i <= h.lvl; i++ {
			ext := h.digits[i][jj]
			kb := swk.DigitsB[i].Coeffs[tblIdx]
			ka := swk.DigitsA[i].Coeffs[tblIdx]
			// Lazy fused MAC: rows stay in [0, 2q) across the whole digit
			// fold, deferring the canonicalizing subtraction to one sweep
			// per row instead of one per multiply.
			if perm == nil {
				m.MulAddRowLazy(a0, ext, kb)
				m.MulAddRowLazy(a1, ext, ka)
			} else {
				m.MulAddRowLazyGather(a0, ext, kb, perm)
				m.MulAddRowLazyGather(a1, ext, ka, perm)
			}
		}
		ring.ReduceFinalVec(a0, qj)
		ring.ReduceFinalVec(a1, qj)
		//lint:allow poolleak accumulator rows transfer ownership to the caller, which releases them after the deferred ModDown consumes them
		acc0[jj], acc1[jj] = a0, a1
	})
	return acc0, acc1
}

// ksFromDecomp multiply-accumulates a hoisted decomposition against a
// switching key (optionally fusing an automorphism gather, see ksAccum) and
// performs the ModDown immediately — the classic single-hoisted keyswitch.
// The double-hoisted path instead keeps the ksAccum output in the extended
// basis (ExtCiphertext) and defers the ModDown across many operations.
func (ev *Evaluator) ksFromDecomp(h *hoistedDecomp, perm []int, swk *SwitchingKey) (out0, out1 *ring.Poly) {
	r := ev.params.RingQP()
	acc0, acc1 := ev.ksAccum(h, perm, swk)
	out0 = ev.modDownP(acc0, h.modIdx, h.lvl)
	out1 = ev.modDownP(acc1, h.modIdx, h.lvl)
	for jj := range acc0 {
		r.PutRow(acc0[jj])
		r.PutRow(acc1[jj])
	}
	return out0, out1
}

// keySwitch applies swk to the degree-1 part d (NTT domain, level l),
// returning the pair to fold into a ciphertext: (out0, out1) such that
// out0 + out1·sOut ≈ d·sIn.
//
// This is the RNS digit-decomposition key switch with one special modulus:
// each residue of d is a digit; digits are extended to all active moduli plus
// P, multiplied against the key, accumulated, and the result divided by P.
func (ev *Evaluator) keySwitch(d *ring.Poly, swk *SwitchingKey) (out0, out1 *ring.Poly) {
	h := ev.decomposeExt(d)
	out0, out1 = ev.ksFromDecomp(h, nil, swk)
	h.release(ev.params.RingQP())
	return out0, out1
}

// RotateHoisted rotates ct by every index in rots, decomposing the
// ciphertext once and reusing the extended digits for each rotation — the
// hoisting optimization that makes BSGS baby steps cheap. Results decrypt
// identically to per-index Rotate calls (the digit lift differs, the values
// do not).
func (ev *Evaluator) RotateHoisted(ct *Ciphertext, rots []int) map[int]*Ciphertext {
	if ev.rtks == nil {
		panic("ckks: evaluator has no rotation keys")
	}
	r := ev.params.RingQP()
	lvl := ct.Level()
	out := make(map[int]*Ciphertext, len(rots))
	var h *hoistedDecomp
	for _, rot := range rots {
		if _, done := out[rot]; done {
			continue
		}
		k := ring.GaloisElementForRotation(ev.params.N(), rot)
		if k == 1 {
			out[rot] = ct.CopyNew()
			continue
		}
		swk, ok := ev.rtks.Keys[k]
		if !ok {
			panic(fmt.Sprintf("ckks: missing rotation key for Galois element %d", k))
		}
		if h == nil {
			h = ev.decomposeExt(ct.C1)
		}
		perm := ring.AutomorphismNTTIndex(r.N, k)
		ks0, ks1 := ev.ksFromDecomp(h, perm, swk)
		rc0 := r.NewPoly(lvl)
		r.AutomorphismNTT(ct.C0, perm, rc0)
		r.Add(rc0, ks0, rc0)
		out[rot] = &Ciphertext{C0: rc0, C1: ks1, Scale: ct.Scale}
	}
	if h != nil {
		h.release(r)
	}
	return out
}

// modDownP divides the accumulated extended polynomial by P with rounding,
// returning an NTT-domain polynomial at level lvl.
func (ev *Evaluator) modDownP(acc [][]uint64, modIdx []int, lvl int) *ring.Poly {
	r := ev.params.RingQP()
	p := ev.params.P()

	// Bring all rows to the coefficient domain.
	ring.ForEachLimb(len(modIdx), func(j int) {
		r.Tables[modIdx[j]].Inverse(acc[j])
	})
	rem := acc[lvl+1] // residue mod P

	out := r.NewPoly(lvl)
	ring.ForEachLimb(lvl+1, func(j int) {
		qj := r.Moduli[j]
		inv := ev.pInvModQi[j]
		invShoup := ring.ShoupPrecomp(inv, qj)
		src := acc[j]
		dst := out.Coeffs[j]
		for t := range dst {
			rr := ring.CenteredMod(rem[t], p, qj)
			dst[t] = ring.MulModShoup(ring.SubMod(src[t], rr, qj), inv, invShoup, qj)
		}
	})
	r.NTT(out)
	return out
}
