package ckks

import (
	"fmt"

	"hydra/internal/ring"
)

// ExtCiphertext is a degree-1 ciphertext held in the extended basis Q_l·P —
// the double-hoisting accumulator. Its components carry P times the
// underlying Q-basis ciphertext (the keyswitch inner product naturally
// produces P·m + e, and fresh ciphertexts are lifted by multiplying with P),
// so decryption is defined only after ModDownExt divides by P. Rows are
// NTT-domain lazy residues in [0, 2q): MulPlainExtAcc and AddExtAcc keep the
// window open and ModDownExt closes it with one ReduceFinalVec sweep per row.
//
// The point of the type is ModDown deferral: a BSGS giant step folds many
// rotated-and-scaled terms with row adds in this basis and pays a single
// ModDown for the whole group, where the single-hoisted path pays one per
// rotation.
//
// Rows come from the ring's row pool; ModDownExt (or ReleaseExt) returns
// them. Scale tracks the logical message scale — the P factor is implicit.
type ExtCiphertext struct {
	Lvl    int
	ModIdx []int // accumulator row -> ring table index
	C0, C1 [][]uint64
	Scale  float64
}

// extModIdx returns the accumulator row -> ring table index map for level
// lvl: rows 0..lvl are q_0..q_lvl and row lvl+1 is the special modulus P.
func (ev *Evaluator) extModIdx(lvl int) []int {
	idx := make([]int, lvl+2)
	for j := 0; j <= lvl; j++ {
		idx[j] = j
	}
	idx[lvl+1] = ev.params.SpecialIndex()
	return idx
}

// NewExtAccumulator returns a zeroed extended-basis accumulator at level lvl
// with the given scale, backed by pooled rows.
func (ev *Evaluator) NewExtAccumulator(lvl int, scale float64) *ExtCiphertext {
	r := ev.params.RingQP()
	n := lvl + 2
	c0 := make([][]uint64, n)
	c1 := make([][]uint64, n)
	for jj := 0; jj < n; jj++ {
		row0, row1 := r.GetRow(), r.GetRow()
		//lint:allow poolleak accumulator rows transfer ownership to the ExtCiphertext; ModDownExt/ReleaseExt return them to the pool
		c0[jj], c1[jj] = row0, row1
	}
	return &ExtCiphertext{Lvl: lvl, ModIdx: ev.extModIdx(lvl), C0: c0, C1: c1, Scale: scale}
}

// ReleaseExt returns the accumulator's rows to the ring's row pool. The
// accumulator must not be used afterwards. ModDownExt releases implicitly;
// call this only when an extended ciphertext is discarded without folding.
func (ev *Evaluator) ReleaseExt(e *ExtCiphertext) {
	r := ev.params.RingQP()
	for jj := range e.C0 {
		r.PutRow(e.C0[jj])
		r.PutRow(e.C1[jj])
	}
	e.C0, e.C1 = nil, nil
}

// liftExt lifts ct into the extended basis by multiplying both components by
// P over the active moduli (the residues mod P are P·c ≡ 0, so the P-rows
// stay zero). The result is the identity-rotation element of
// RotateHoistedExt: ModDownExt(liftExt(ct)) decrypts exactly as ct.
func (ev *Evaluator) liftExt(ct *Ciphertext) *ExtCiphertext {
	r := ev.params.RingQP()
	lvl := ct.Level()
	e := ev.NewExtAccumulator(lvl, ct.Scale)
	ring.ForEachLimb(lvl+1, func(j int) {
		m := r.Tables[j].Mod
		m.MulAddShoupRowLazy(e.C0[j], ct.C0.Coeffs[j], ev.pModQi[j], ev.pModQiShoup[j])
		m.MulAddShoupRowLazy(e.C1[j], ct.C1.Coeffs[j], ev.pModQi[j], ev.pModQiShoup[j])
	})
	return e
}

// RotateHoistedExt rotates ct by every index in rots, decomposing the
// ciphertext once and leaving every result in the extended basis with its
// ModDown deferred — the double-hoisting optimization. The caller folds the
// results (MulPlainExtAcc / AddExtAcc) and pays one ModDownExt for the whole
// group instead of one ModDown pair per rotation.
func (ev *Evaluator) RotateHoistedExt(ct *Ciphertext, rots []int) map[int]*ExtCiphertext {
	r := ev.params.RingQP()
	lvl := ct.Level()
	out := make(map[int]*ExtCiphertext, len(rots))
	var h *hoistedDecomp
	for _, rot := range rots {
		if _, done := out[rot]; done {
			continue
		}
		k := ring.GaloisElementForRotation(ev.params.N(), rot)
		if k == 1 {
			out[rot] = ev.liftExt(ct)
			continue
		}
		if ev.rtks == nil {
			panic("ckks: evaluator has no rotation keys")
		}
		swk, ok := ev.rtks.Keys[k]
		if !ok {
			panic(fmt.Sprintf("ckks: missing rotation key for Galois element %d", k))
		}
		if h == nil {
			h = ev.decomposeExt(ct.C1)
		}
		perm := ring.AutomorphismNTTIndex(r.N, k)
		acc0, acc1 := ev.ksAccum(h, perm, swk)
		// Fold P·τ_k(c0) into the Q rows of the c0 accumulator (its P-row
		// contribution is zero), fusing the output automorphism into the
		// same gather form as the keyswitch MAC.
		ring.ForEachLimb(lvl+1, func(j int) {
			m := r.Tables[j].Mod
			m.MulAddShoupRowLazyGather(acc0[j], ct.C0.Coeffs[j], ev.pModQi[j], ev.pModQiShoup[j], perm)
		})
		out[rot] = &ExtCiphertext{Lvl: lvl, ModIdx: ev.extModIdx(lvl), C0: acc0, C1: acc1, Scale: ct.Scale}
	}
	if h != nil {
		h.release(r)
	}
	return out
}

// RotateExt is the single-rotation form of RotateHoistedExt.
func (ev *Evaluator) RotateExt(ct *Ciphertext, rot int) *ExtCiphertext {
	return ev.RotateHoistedExt(ct, []int{rot})[rot]
}

// MulPlainExtAcc accumulates x ⊙ pt into acc in place over the extended
// basis: acc += x ⊙ pt row-wise, including the P-row, with every row staying
// lazy in [0, 2q). Levels must match between x and acc; pt must be encoded at
// x's level or above. acc's scale must already equal x.Scale·pt.Scale.
func (ev *Evaluator) MulPlainExtAcc(x *ExtCiphertext, pt *ExtPlaintext, acc *ExtCiphertext) {
	if x.Lvl != acc.Lvl {
		panic(fmt.Sprintf("ckks: level mismatch in MulPlainExtAcc: %d vs %d", x.Lvl, acc.Lvl))
	}
	if pt.Lvl < x.Lvl {
		panic(fmt.Sprintf("ckks: plaintext level %d below ciphertext level %d in MulPlainExtAcc", pt.Lvl, x.Lvl))
	}
	if !sameScale(acc.Scale, x.Scale*pt.Scale) {
		panic(fmt.Sprintf("ckks: scale mismatch in MulPlainExtAcc: %g vs %g", acc.Scale, x.Scale*pt.Scale))
	}
	r := ev.params.RingQP()
	special := ev.params.SpecialIndex()
	ring.ForEachLimb(x.Lvl+2, func(jj int) {
		tblIdx := x.ModIdx[jj]
		m := r.Tables[tblIdx].Mod
		prow := pt.row(tblIdx, special)
		// Lazy row MAC: x rows < 2q times canonical pt rows < q keeps the
		// 128-bit product within the q·2^64 Barrett budget.
		m.MulAddRowLazy(acc.C0[jj], x.C0[jj], prow)
		m.MulAddRowLazy(acc.C1[jj], x.C1[jj], prow)
	})
}

// MulPlainExtAccBatch folds a whole sequence of (x, pt) products into acc in
// one pass: acc += Σ xs[ti] ⊙ pts[ti], row-wise over the extended basis. Per
// accumulator row, every term of the sequence streams through while that row
// stays resident — a BSGS giant step folds all its diagonals in one sweep of
// the accumulator instead of re-walking it per diagonal. The per-pair
// contracts of MulPlainExtAcc apply; results are bit-identical to the
// sequential per-pair calls.
func (ev *Evaluator) MulPlainExtAccBatch(xs []*ExtCiphertext, pts []*ExtPlaintext, acc *ExtCiphertext) {
	if len(xs) != len(pts) {
		panic("ckks: MulPlainExtAccBatch length mismatch")
	}
	for ti, x := range xs {
		if x.Lvl != acc.Lvl {
			panic(fmt.Sprintf("ckks: level mismatch in MulPlainExtAcc: %d vs %d", x.Lvl, acc.Lvl))
		}
		if pts[ti].Lvl < x.Lvl {
			panic(fmt.Sprintf("ckks: plaintext level %d below ciphertext level %d in MulPlainExtAcc", pts[ti].Lvl, x.Lvl))
		}
		if !sameScale(acc.Scale, x.Scale*pts[ti].Scale) {
			panic(fmt.Sprintf("ckks: scale mismatch in MulPlainExtAcc: %g vs %g", acc.Scale, x.Scale*pts[ti].Scale))
		}
	}
	r := ev.params.RingQP()
	special := ev.params.SpecialIndex()
	ring.ForEachLimb(acc.Lvl+2, func(jj int) {
		tblIdx := acc.ModIdx[jj]
		m := r.Tables[tblIdx].Mod
		for ti, x := range xs {
			prow := pts[ti].row(tblIdx, special)
			m.MulAddRowLazy(acc.C0[jj], x.C0[jj], prow)
			m.MulAddRowLazy(acc.C1[jj], x.C1[jj], prow)
		}
	})
}

// AddExtAcc adds x into acc in place over the extended basis (acc += x),
// both staying lazy in [0, 2q). Levels and scales must match.
func (ev *Evaluator) AddExtAcc(x *ExtCiphertext, acc *ExtCiphertext) {
	if x.Lvl != acc.Lvl {
		panic(fmt.Sprintf("ckks: level mismatch in AddExtAcc: %d vs %d", x.Lvl, acc.Lvl))
	}
	if !sameScale(acc.Scale, x.Scale) {
		panic(fmt.Sprintf("ckks: scale mismatch in AddExtAcc: %g vs %g", acc.Scale, x.Scale))
	}
	r := ev.params.RingQP()
	ring.ForEachLimb(x.Lvl+2, func(jj int) {
		m := r.Tables[x.ModIdx[jj]].Mod
		m.AddRowLazy(acc.C0[jj], x.C0[jj])
		m.AddRowLazy(acc.C1[jj], x.C1[jj])
	})
}

// ModDownExt closes the deferred-ModDown window: it sweeps every row back to
// canonical residues, divides both components by P, and returns the ordinary
// Q-basis ciphertext. The extended ciphertext is consumed (its rows return
// to the pool).
func (ev *Evaluator) ModDownExt(e *ExtCiphertext) *Ciphertext {
	r := ev.params.RingQP()
	ring.ForEachLimb(e.Lvl+2, func(jj int) {
		q := r.Moduli[e.ModIdx[jj]]
		ring.ReduceFinalVec(e.C0[jj], q)
		ring.ReduceFinalVec(e.C1[jj], q)
	})
	c0 := ev.modDownP(e.C0, e.ModIdx, e.Lvl)
	c1 := ev.modDownP(e.C1, e.ModIdx, e.Lvl)
	ct := &Ciphertext{C0: c0, C1: c1, Scale: e.Scale}
	ev.ReleaseExt(e)
	return ct
}
