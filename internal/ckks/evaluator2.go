package ckks

import (
	"fmt"

	"hydra/internal/ring"
)

// Ciphertext2 is a degree-2 RLWE ciphertext (c0, c1, c2) in the NTT domain —
// the un-relinearized tensor product of two degree-1 ciphertexts. Decryption
// computes c0 + c1·s + c2·s². Degree-2 ciphertexts exist to make
// relinearization deferrable: sums of products can be folded in this form and
// pay a single keyswitch, instead of one per product.
type Ciphertext2 struct {
	C0, C1, C2 *ring.Poly
	Scale      float64
}

// Level returns the ciphertext level.
func (ct *Ciphertext2) Level() int { return ct.C0.Level() }

// CopyNew returns a deep copy.
func (ct *Ciphertext2) CopyNew() *Ciphertext2 {
	return &Ciphertext2{C0: ct.C0.CopyNew(), C1: ct.C1.CopyNew(), C2: ct.C2.CopyNew(), Scale: ct.Scale}
}

// DropLevel discards the top n moduli of all three components (no rounding;
// the scale is unchanged).
func (ct *Ciphertext2) DropLevel(n int) {
	for i := 0; i < n; i++ {
		ct.C0.DropLevel()
		ct.C1.DropLevel()
		ct.C2.DropLevel()
	}
}

// alignLevels2 drops levels so both degree-2 ciphertexts share the lower
// level, returning copies when truncation is needed.
func alignLevels2(a, b *Ciphertext2) (*Ciphertext2, *Ciphertext2) {
	switch {
	case a.Level() > b.Level():
		a2 := a.CopyNew()
		a2.DropLevel(a.Level() - b.Level())
		return a2, b
	case b.Level() > a.Level():
		b2 := b.CopyNew()
		b2.DropLevel(b.Level() - a.Level())
		return a, b2
	default:
		return a, b
	}
}

// MulNoRelin returns the degree-2 tensor product a·b without relinearizing:
// (a0b0, a0b1 + a1b0, a1b1). The result's scale is the product. Relinearize
// (or a chain of Add2 folds followed by one Relinearize) brings it back to
// degree 1.
func (ev *Evaluator) MulNoRelin(a, b *Ciphertext) *Ciphertext2 {
	a, b = alignLevels(a, b)
	r := ev.params.RingQP()
	lvl := a.Level()

	d0 := r.NewPoly(lvl)
	d1 := r.NewPoly(lvl)
	d2 := r.NewPoly(lvl)
	tmp := r.GetScratch(lvl)
	r.MulCoeffs(a.C0, b.C0, d0)
	r.MulCoeffs(a.C0, b.C1, d1)
	r.MulCoeffs(a.C1, b.C0, tmp)
	r.Add(d1, tmp, d1)
	r.MulCoeffs(a.C1, b.C1, d2)
	r.PutScratch(tmp)

	return &Ciphertext2{C0: d0, C1: d1, C2: d2, Scale: a.Scale * b.Scale}
}

// Add2 returns a + b over degree-2 ciphertexts. Scales must match; levels are
// aligned by truncation. This is the fold step of lazy relinearization:
// relinearization is linear, so Relinearize(Add2(x, y)) agrees with
// Add(Relinearize(x), Relinearize(y)) up to keyswitch noise while paying one
// keyswitch instead of two.
func (ev *Evaluator) Add2(a, b *Ciphertext2) *Ciphertext2 {
	if !sameScale(a.Scale, b.Scale) {
		panic(fmt.Sprintf("ckks: scale mismatch in Add2: %g vs %g", a.Scale, b.Scale))
	}
	a, b = alignLevels2(a, b)
	r := ev.params.RingQP()
	lvl := a.Level()
	out := &Ciphertext2{C0: r.NewPoly(lvl), C1: r.NewPoly(lvl), C2: r.NewPoly(lvl), Scale: a.Scale}
	r.Add(a.C0, b.C0, out.C0)
	r.Add(a.C1, b.C1, out.C1)
	r.Add(a.C2, b.C2, out.C2)
	return out
}

// Relinearize switches the degree-2 component onto the key basis, returning
// the degree-1 ciphertext (c0 + ks0, c1 + ks1) with the same scale. This is
// the keyswitch MulRelin fuses into the tensor product, exposed separately so
// deferred (lazily accumulated) products pay it once.
func (ev *Evaluator) Relinearize(ct *Ciphertext2) *Ciphertext {
	if ev.rlk == nil {
		panic("ckks: evaluator has no relinearization key")
	}
	r := ev.params.RingQP()
	ks0, ks1 := ev.keySwitch(ct.C2, ev.rlk.Key)
	r.Add(ks0, ct.C0, ks0)
	r.Add(ks1, ct.C1, ks1)
	return &Ciphertext{C0: ks0, C1: ks1, Scale: ct.Scale}
}
