package ckks

import (
	"math"
	"math/cmplx"
	"testing"
)

type testContext struct {
	params *Parameters
	enc    *Encoder
	kg     *KeyGenerator
	sk     *SecretKey
	pk     *PublicKey
	encr   *Encryptor
	decr   *Decryptor
	eval   *Evaluator
}

func newTestContext(t testing.TB, logN, levels int, rotations []int) *testContext {
	t.Helper()
	params := TestParameters(logN, levels)
	kg := NewKeyGenerator(params, 1)
	sk := kg.GenSecretKey()
	pk := kg.GenPublicKey(sk)
	rlk := kg.GenRelinearizationKey(sk)
	rtks := kg.GenRotationKeys(sk, rotations, true)
	return &testContext{
		params: params,
		enc:    NewEncoder(params),
		kg:     kg,
		sk:     sk,
		pk:     pk,
		encr:   NewEncryptor(params, pk, 2),
		decr:   NewDecryptor(params, sk),
		eval:   NewEvaluator(params, rlk, rtks),
	}
}

func randomComplex(n int, seed int64) []complex128 {
	vals := make([]complex128, n)
	s := uint64(seed)*6364136223846793005 + 1442695040888963407
	next := func() float64 {
		s = s*6364136223846793005 + 1442695040888963407
		return float64(s>>11)/float64(1<<53)*2 - 1
	}
	for i := range vals {
		vals[i] = complex(next(), next())
	}
	return vals
}

func maxErr(got, want []complex128) float64 {
	m := 0.0
	for i := range want {
		if e := cmplx.Abs(got[i] - want[i]); e > m {
			m = e
		}
	}
	return m
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	params := TestParameters(10, 2)
	enc := NewEncoder(params)
	vals := randomComplex(params.Slots(), 7)
	pt, err := enc.Encode(vals)
	if err != nil {
		t.Fatal(err)
	}
	got := enc.Decode(pt)
	if e := maxErr(got, vals); e > 1e-8 {
		t.Fatalf("encode/decode error %g too large", e)
	}
}

func TestEncodeRejectsTooManyValues(t *testing.T) {
	params := TestParameters(6, 1)
	enc := NewEncoder(params)
	if _, err := enc.Encode(make([]complex128, params.Slots()+1)); err == nil {
		t.Fatal("expected error for too many values")
	}
}

func TestEncryptDecrypt(t *testing.T) {
	tc := newTestContext(t, 10, 2, nil)
	vals := randomComplex(tc.params.Slots(), 8)
	pt, _ := tc.enc.Encode(vals)
	ct := tc.encr.Encrypt(pt)
	got := tc.enc.Decode(tc.decr.Decrypt(ct))
	if e := maxErr(got, vals); e > 1e-6 {
		t.Fatalf("encrypt/decrypt error %g too large", e)
	}
}

func TestHomomorphicAddSub(t *testing.T) {
	tc := newTestContext(t, 10, 2, nil)
	a := randomComplex(tc.params.Slots(), 9)
	b := randomComplex(tc.params.Slots(), 10)
	pa, _ := tc.enc.Encode(a)
	pb, _ := tc.enc.Encode(b)
	ca := tc.encr.Encrypt(pa)
	cb := tc.encr.Encrypt(pb)

	sum := tc.eval.Add(ca, cb)
	diff := tc.eval.Sub(ca, cb)
	wantSum := make([]complex128, len(a))
	wantDiff := make([]complex128, len(a))
	for i := range a {
		wantSum[i] = a[i] + b[i]
		wantDiff[i] = a[i] - b[i]
	}
	if e := maxErr(tc.enc.Decode(tc.decr.Decrypt(sum)), wantSum); e > 1e-6 {
		t.Fatalf("add error %g", e)
	}
	if e := maxErr(tc.enc.Decode(tc.decr.Decrypt(diff)), wantDiff); e > 1e-6 {
		t.Fatalf("sub error %g", e)
	}
}

func TestAddPlainAndAddConst(t *testing.T) {
	tc := newTestContext(t, 10, 2, nil)
	a := randomComplex(tc.params.Slots(), 11)
	b := randomComplex(tc.params.Slots(), 12)
	pa, _ := tc.enc.Encode(a)
	pb, _ := tc.enc.Encode(b)
	ct := tc.encr.Encrypt(pa)

	sum := tc.eval.AddPlain(ct, pb)
	want := make([]complex128, len(a))
	for i := range a {
		want[i] = a[i] + b[i]
	}
	if e := maxErr(tc.enc.Decode(tc.decr.Decrypt(sum)), want); e > 1e-6 {
		t.Fatalf("AddPlain error %g", e)
	}

	shifted := tc.eval.AddConst(ct, 0.5)
	for i := range a {
		want[i] = a[i] + 0.5
	}
	if e := maxErr(tc.enc.Decode(tc.decr.Decrypt(shifted)), want); e > 1e-6 {
		t.Fatalf("AddConst error %g", e)
	}
	neg := tc.eval.AddConst(ct, -0.25)
	for i := range a {
		want[i] = a[i] - 0.25
	}
	if e := maxErr(tc.enc.Decode(tc.decr.Decrypt(neg)), want); e > 1e-6 {
		t.Fatalf("AddConst negative error %g", e)
	}
}

func TestMulPlainRescale(t *testing.T) {
	tc := newTestContext(t, 10, 3, nil)
	a := randomComplex(tc.params.Slots(), 13)
	b := randomComplex(tc.params.Slots(), 14)
	pa, _ := tc.enc.Encode(a)
	pb, _ := tc.enc.Encode(b)
	ct := tc.encr.Encrypt(pa)

	prod := tc.eval.MulPlain(ct, pb)
	prod = tc.eval.Rescale(prod)
	if prod.Level() != tc.params.MaxLevel()-1 {
		t.Fatalf("level after rescale = %d", prod.Level())
	}
	want := make([]complex128, len(a))
	for i := range a {
		want[i] = a[i] * b[i]
	}
	if e := maxErr(tc.enc.Decode(tc.decr.Decrypt(prod)), want); e > 1e-4 {
		t.Fatalf("MulPlain error %g", e)
	}
}

func TestMulByConst(t *testing.T) {
	tc := newTestContext(t, 10, 3, nil)
	a := randomComplex(tc.params.Slots(), 15)
	pa, _ := tc.enc.Encode(a)
	ct := tc.encr.Encrypt(pa)
	out := tc.eval.Rescale(tc.eval.MulByConst(ct, -1.5))
	want := make([]complex128, len(a))
	for i := range a {
		want[i] = a[i] * -1.5
	}
	if e := maxErr(tc.enc.Decode(tc.decr.Decrypt(out)), want); e > 1e-4 {
		t.Fatalf("MulByConst error %g", e)
	}
}

func TestMulRelinRescale(t *testing.T) {
	tc := newTestContext(t, 11, 3, nil)
	a := randomComplex(tc.params.Slots(), 16)
	b := randomComplex(tc.params.Slots(), 17)
	pa, _ := tc.enc.Encode(a)
	pb, _ := tc.enc.Encode(b)
	ca := tc.encr.Encrypt(pa)
	cb := tc.encr.Encrypt(pb)

	prod := tc.eval.Rescale(tc.eval.MulRelin(ca, cb))
	want := make([]complex128, len(a))
	for i := range a {
		want[i] = a[i] * b[i]
	}
	if e := maxErr(tc.enc.Decode(tc.decr.Decrypt(prod)), want); e > 1e-3 {
		t.Fatalf("MulRelin error %g", e)
	}
}

func TestMulDepthTwo(t *testing.T) {
	tc := newTestContext(t, 11, 4, nil)
	a := randomComplex(tc.params.Slots(), 18)
	pa, _ := tc.enc.Encode(a)
	ct := tc.encr.Encrypt(pa)

	sq := tc.eval.Rescale(tc.eval.MulRelin(ct, ct))
	quad := tc.eval.Rescale(tc.eval.MulRelin(sq, sq))
	want := make([]complex128, len(a))
	for i := range a {
		want[i] = a[i] * a[i] * a[i] * a[i]
	}
	if e := maxErr(tc.enc.Decode(tc.decr.Decrypt(quad)), want); e > 1e-2 {
		t.Fatalf("depth-2 error %g", e)
	}
}

func TestRotate(t *testing.T) {
	tc := newTestContext(t, 10, 2, []int{1, 3, -2})
	slots := tc.params.Slots()
	vals := make([]complex128, slots)
	for i := range vals {
		vals[i] = complex(float64(i), 0)
	}
	pt, _ := tc.enc.Encode(vals)
	ct := tc.encr.Encrypt(pt)

	for _, rot := range []int{1, 3, -2} {
		got := tc.enc.Decode(tc.decr.Decrypt(tc.eval.Rotate(ct, rot)))
		want := make([]complex128, slots)
		for j := range want {
			want[j] = vals[((j+rot)%slots+slots)%slots]
		}
		if e := maxErr(got, want); e > 1e-5 {
			t.Fatalf("rotation by %d: error %g (got[0]=%v want[0]=%v)", rot, e, got[0], want[0])
		}
	}
}

func TestConjugate(t *testing.T) {
	tc := newTestContext(t, 10, 2, nil)
	vals := randomComplex(tc.params.Slots(), 19)
	pt, _ := tc.enc.Encode(vals)
	ct := tc.encr.Encrypt(pt)
	got := tc.enc.Decode(tc.decr.Decrypt(tc.eval.Conjugate(ct)))
	want := make([]complex128, len(vals))
	for i := range vals {
		want[i] = cmplx.Conj(vals[i])
	}
	if e := maxErr(got, want); e > 1e-5 {
		t.Fatalf("conjugate error %g", e)
	}
}

func TestRotateZeroIsIdentity(t *testing.T) {
	tc := newTestContext(t, 9, 2, []int{1})
	vals := randomComplex(tc.params.Slots(), 20)
	pt, _ := tc.enc.Encode(vals)
	ct := tc.encr.Encrypt(pt)
	got := tc.enc.Decode(tc.decr.Decrypt(tc.eval.Rotate(ct, 0)))
	if e := maxErr(got, vals); e > 1e-6 {
		t.Fatalf("rotate-0 error %g", e)
	}
}

func TestParameterValidation(t *testing.T) {
	cases := []ParametersLiteral{
		{LogN: 2, LogQ: []int{45}, LogP: 45},
		{LogN: 10, LogQ: nil, LogP: 45},
		{LogN: 10, LogQ: []int{45}},
		{LogN: 10, LogSlots: 10, LogQ: []int{45}, LogP: 45},
	}
	for i, lit := range cases {
		if _, err := NewParameters(lit); err == nil {
			t.Fatalf("case %d: expected error", i)
		}
	}
	p, err := NewParameters(ParametersLiteral{LogN: 10, LogQ: []int{50, 45, 45}, LogP: 50})
	if err != nil {
		t.Fatal(err)
	}
	if p.MaxLevel() != 2 || p.Slots() != 512 || p.N() != 1024 {
		t.Fatalf("unexpected derived parameters: %+v", p)
	}
	if p.DefaultScale() != math.Pow(2, 40) {
		t.Fatalf("default scale = %g", p.DefaultScale())
	}
}

func TestScaleMismatchPanics(t *testing.T) {
	tc := newTestContext(t, 9, 2, nil)
	vals := randomComplex(tc.params.Slots(), 21)
	pt1, _ := tc.enc.EncodeAtLevel(vals, 1<<40, tc.params.MaxLevel())
	pt2, _ := tc.enc.EncodeAtLevel(vals, 1<<41, tc.params.MaxLevel())
	c1 := tc.encr.Encrypt(pt1)
	c2 := tc.encr.Encrypt(pt2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on scale mismatch")
		}
	}()
	tc.eval.Add(c1, c2)
}

func TestLevelAlignment(t *testing.T) {
	tc := newTestContext(t, 10, 3, nil)
	a := randomComplex(tc.params.Slots(), 22)
	pa, _ := tc.enc.Encode(a)
	ca := tc.encr.Encrypt(pa)
	cb := ca.CopyNew()
	cb.DropLevel(1)
	sum := tc.eval.Add(ca, cb)
	if sum.Level() != ca.Level()-1 {
		t.Fatalf("sum level = %d", sum.Level())
	}
	want := make([]complex128, len(a))
	for i := range a {
		want[i] = 2 * a[i]
	}
	if e := maxErr(tc.enc.Decode(tc.decr.Decrypt(sum)), want); e > 1e-6 {
		t.Fatalf("aligned add error %g", e)
	}
}

func TestRotateHoistedMatchesRotate(t *testing.T) {
	tc := newTestContext(t, 10, 3, []int{1, 2, 5, 7})
	vals := randomComplex(tc.params.Slots(), 23)
	pt, _ := tc.enc.Encode(vals)
	ct := tc.encr.Encrypt(pt)
	rots := []int{0, 1, 2, 5, 7}
	hoisted := tc.eval.RotateHoisted(ct, rots)
	slots := tc.params.Slots()
	for _, rot := range rots {
		h := hoisted[rot]
		if h == nil {
			t.Fatalf("missing hoisted rotation %d", rot)
		}
		// Hoisting uses a different (equally valid) digit lift than the
		// direct path, so compare decrypted values, not bits.
		got := tc.enc.Decode(tc.decr.Decrypt(h))
		want := make([]complex128, slots)
		for j := range want {
			want[j] = vals[(j+rot)%slots]
		}
		if e := maxErr(got, want); e > 1e-5 {
			t.Fatalf("hoisted rotation %d: error %g", rot, e)
		}
		direct := tc.enc.Decode(tc.decr.Decrypt(tc.eval.Rotate(ct, rot)))
		if e := maxErr(got, direct); e > 1e-7 {
			t.Fatalf("hoisted rotation %d diverges from direct by %g", rot, e)
		}
	}
}

func TestRotateHoistedDuplicatesAndIdentity(t *testing.T) {
	tc := newTestContext(t, 9, 2, []int{3})
	vals := randomComplex(tc.params.Slots(), 24)
	pt, _ := tc.enc.Encode(vals)
	ct := tc.encr.Encrypt(pt)
	out := tc.eval.RotateHoisted(ct, []int{3, 3, 0})
	if len(out) != 2 {
		t.Fatalf("expected 2 distinct results, got %d", len(out))
	}
	got := tc.enc.Decode(tc.decr.Decrypt(out[0]))
	if e := maxErr(got, vals); e > 1e-6 {
		t.Fatalf("identity rotation error %g", e)
	}
}
