package ckks

import (
	"math"
	"math/cmplx"
)

// Noise accounting: heuristic error bounds for the CKKS operations and a
// measured-noise probe. The bounds are the standard central-limit heuristics
// (fresh encryption noise ≈ σ·√(4N/3 + N), additive composition in
// quadrature, key-switch noise ≈ √(digits)·q_digit·σ·√N / P) with a safety
// factor; the tests check that measured noise stays below them, which guards
// the parameter choices used across this repository.

// NoiseModel predicts error magnitudes (in coefficient units, i.e. already
// multiplied by the scale) for ciphertexts under a parameter set.
type NoiseModel struct {
	params *Parameters
	// Safety multiplies every bound (heuristics are ~standard-deviation
	// estimates; 8 standard deviations make violations vanishingly rare).
	Safety float64
}

// NewNoiseModel builds a model for the parameters.
func NewNoiseModel(params *Parameters) *NoiseModel {
	return &NoiseModel{params: params, Safety: 8}
}

// Fresh bounds the slot-domain maximum error (× scale) of a public-key
// encryption: the coefficient error e0 + v·e_pk has per-coefficient standard
// deviation ≈ σ·√(4N/3 + N), and the canonical embedding amplifies the
// maximum over slots by ≈ √N.
func (nm *NoiseModel) Fresh() float64 {
	n := float64(nm.params.N())
	sigma := nm.params.Sigma()
	return nm.Safety * sigma * math.Sqrt(4*n/3+n+1) * math.Sqrt(n) / 2
}

// Add bounds the error of a sum given the operand errors (independent
// errors compose in quadrature).
func (nm *NoiseModel) Add(a, b float64) float64 {
	return math.Sqrt(a*a + b*b)
}

// MulPlain bounds the error after multiplying by a plaintext with slot
// values at most ptInfNorm encoded at ptScale: the incoming error scales by
// the plaintext, and the plaintext's own encoding rounding (≤ 0.5 per
// coefficient, ≈ √N/2 at the slot maximum) multiplies the message of
// magnitude msgNorm carried at ctScale.
func (nm *NoiseModel) MulPlain(errIn, ptInfNorm, ptScale, msgNorm, ctScale float64) float64 {
	n := float64(nm.params.N())
	return errIn*ptInfNorm*ptScale + nm.Safety*msgNorm*ctScale*math.Sqrt(n)/2
}

// KeySwitch bounds the additional error introduced by one key switch at the
// given level: each of the (level+1) single-limb digits contributes
// q_digit·σ·√N noise, divided by P after the ModDown, plus the ModDown
// rounding itself.
func (nm *NoiseModel) KeySwitch(level int) float64 {
	n := float64(nm.params.N())
	sigma := nm.params.Sigma()
	p := float64(nm.params.P())
	total := 0.0
	for i := 0; i <= level; i++ {
		qi := float64(nm.params.Q()[i])
		contrib := qi * sigma * math.Sqrt(n) / p
		total += contrib * contrib
	}
	// ModDown rounding adds ≤ (1+||s||₁)/2 per coefficient, with ||s||₁ ≈
	// 2N/3 for a dense ternary secret; the slot-domain maximum picks up
	// another ~√N.
	hs := 1 + 2*n/3
	return nm.Safety * (math.Sqrt(total)*math.Sqrt(n) + hs/2*math.Sqrt(n))
}

// Rescale bounds the error after dividing by q_top: the incoming error
// shrinks by q_top and the rounding adds ≤ (1+||s||₁)/2 per coefficient
// (||s||₁ ≈ 2N/3 for a dense ternary secret), amplified ~√N when read as a
// slot-domain maximum.
func (nm *NoiseModel) Rescale(errIn float64, level int) float64 {
	n := float64(nm.params.N())
	qTop := float64(nm.params.Q()[level])
	hs := 1 + 2*n/3
	return errIn/qTop + nm.Safety*hs/2*math.Sqrt(n)
}

// MeasureNoise returns the maximum slot-domain error of ct against the
// expected values, expressed in coefficient units (error × scale) so it is
// directly comparable with the model's bounds.
func MeasureNoise(dec *Decryptor, enc *Encoder, ct *Ciphertext, want []complex128) float64 {
	got := enc.Decode(dec.Decrypt(ct))
	maxE := 0.0
	for i := range want {
		if e := cmplx.Abs(got[i] - want[i]); e > maxE {
			maxE = e
		}
	}
	return maxE * ct.Scale
}
