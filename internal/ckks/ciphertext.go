package ckks

import "hydra/internal/ring"

// Ciphertext is a degree-1 RLWE ciphertext (c0, c1) in the NTT domain, with
// its current scale. Decryption computes c0 + c1·s.
type Ciphertext struct {
	C0, C1 *ring.Poly
	Scale  float64
}

// Level returns the ciphertext level.
func (ct *Ciphertext) Level() int { return ct.C0.Level() }

// CopyNew returns a deep copy.
func (ct *Ciphertext) CopyNew() *Ciphertext {
	return &Ciphertext{C0: ct.C0.CopyNew(), C1: ct.C1.CopyNew(), Scale: ct.Scale}
}

// Equal reports whether ct and other are bitwise identical: same scale and
// identical residues in both components. This is deliberately strict — it is
// the predicate differential tests use to pin optimized execution paths
// bit-exact against their reference counterparts.
func (ct *Ciphertext) Equal(other *Ciphertext) bool {
	if other == nil || ct.Scale != other.Scale {
		return false
	}
	return ct.C0.Equal(other.C0) && ct.C1.Equal(other.C1)
}

// DropLevel discards the top n moduli of the ciphertext (no rounding; the
// scale is unchanged). Used to align levels before binary operations.
func (ct *Ciphertext) DropLevel(n int) {
	for i := 0; i < n; i++ {
		ct.C0.DropLevel()
		ct.C1.DropLevel()
	}
}

// Encryptor encrypts plaintexts under a public key.
type Encryptor struct {
	params  *Parameters
	pk      *PublicKey
	sampler *ring.Sampler
}

// NewEncryptor returns an encryptor with deterministic randomness from seed.
func NewEncryptor(params *Parameters, pk *PublicKey, seed int64) *Encryptor {
	return &Encryptor{params: params, pk: pk, sampler: ring.NewSampler(params.RingQP(), seed)}
}

// atLevel returns a view of p restricted to the first level+1 residues.
func atLevel(p *ring.Poly, level int) *ring.Poly {
	return &ring.Poly{Coeffs: p.Coeffs[:level+1], IsNTT: p.IsNTT}
}

// Encrypt produces a fresh encryption of pt at the plaintext's level.
func (e *Encryptor) Encrypt(pt *Plaintext) *Ciphertext {
	r := e.params.RingQP()
	lvl := pt.Level()

	full := r.MaxLevel()
	v := r.NewPoly(full)
	e.sampler.Ternary(v)
	r.NTT(v)
	e0 := r.NewPoly(full)
	e.sampler.Gaussian(e0, e.params.Sigma())
	r.NTT(e0)
	e1 := r.NewPoly(full)
	e.sampler.Gaussian(e1, e.params.Sigma())
	r.NTT(e1)

	c0 := r.NewPoly(lvl)
	c1 := r.NewPoly(lvl)
	r.MulCoeffs(atLevel(v, lvl), atLevel(e.pk.B, lvl), c0)
	r.Add(c0, atLevel(e0, lvl), c0)
	r.Add(c0, pt.Value, c0)
	r.MulCoeffs(atLevel(v, lvl), atLevel(e.pk.A, lvl), c1)
	r.Add(c1, atLevel(e1, lvl), c1)
	return &Ciphertext{C0: c0, C1: c1, Scale: pt.Scale}
}

// Decryptor decrypts ciphertexts with the secret key.
type Decryptor struct {
	params *Parameters
	sk     *SecretKey
}

// NewDecryptor returns a decryptor for sk.
func NewDecryptor(params *Parameters, sk *SecretKey) *Decryptor {
	return &Decryptor{params: params, sk: sk}
}

// Decrypt returns the plaintext underlying ct (still scaled and noisy).
func (d *Decryptor) Decrypt(ct *Ciphertext) *Plaintext {
	r := d.params.RingQP()
	lvl := ct.Level()
	m := r.NewPoly(lvl)
	r.MulCoeffs(ct.C1, atLevel(d.sk.Value, lvl), m)
	r.Add(m, ct.C0, m)
	return &Plaintext{Value: m, Scale: ct.Scale}
}
