package ckks

import (
	"testing"
)

// TestMulNoRelinMatchesMulRelin pins the split tensor/relinearize path
// bit-identical to the fused MulRelin: the same tensor product followed by
// the same keyswitch must produce the same residues.
func TestMulNoRelinMatchesMulRelin(t *testing.T) {
	tc := newTestContext(t, 8, 3, nil)
	a := randomComplex(tc.params.Slots(), 3)
	b := randomComplex(tc.params.Slots(), 4)
	pa, err := tc.enc.Encode(a)
	if err != nil {
		t.Fatal(err)
	}
	pb, err := tc.enc.Encode(b)
	if err != nil {
		t.Fatal(err)
	}
	ca, cb := tc.encr.Encrypt(pa), tc.encr.Encrypt(pb)

	fused := tc.eval.MulRelin(ca, cb)
	split := tc.eval.Relinearize(tc.eval.MulNoRelin(ca, cb))
	if !fused.Equal(split) {
		t.Fatal("Relinearize(MulNoRelin(a,b)) is not bit-identical to MulRelin(a,b)")
	}
}

// TestLazyRelinearization checks the deferred form: folding two degree-2
// products with Add2 and relinearizing once agrees with relinearizing each
// product, within keyswitch noise.
func TestLazyRelinearization(t *testing.T) {
	tc := newTestContext(t, 8, 3, nil)
	slots := tc.params.Slots()
	vecs := make([][]complex128, 4)
	cts := make([]*Ciphertext, 4)
	for i := range vecs {
		vecs[i] = randomComplex(slots, int64(10+i))
		pt, err := tc.enc.Encode(vecs[i])
		if err != nil {
			t.Fatal(err)
		}
		cts[i] = tc.encr.Encrypt(pt)
	}

	// Eager: relinearize each product, then add.
	eager := tc.eval.Add(tc.eval.MulRelin(cts[0], cts[1]), tc.eval.MulRelin(cts[2], cts[3]))
	// Lazy: fold the degree-2 tensors, relinearize once.
	lazy := tc.eval.Relinearize(tc.eval.Add2(tc.eval.MulNoRelin(cts[0], cts[1]), tc.eval.MulNoRelin(cts[2], cts[3])))

	want := make([]complex128, slots)
	for i := range want {
		want[i] = vecs[0][i]*vecs[1][i] + vecs[2][i]*vecs[3][i]
	}
	gotEager := tc.enc.Decode(tc.decr.Decrypt(tc.eval.Rescale(eager)))
	gotLazy := tc.enc.Decode(tc.decr.Decrypt(tc.eval.Rescale(lazy)))
	if e := maxErr(gotEager, want); e > 1e-4 {
		t.Fatalf("eager relinearization error %g", e)
	}
	if e := maxErr(gotLazy, want); e > 1e-4 {
		t.Fatalf("lazy relinearization error %g", e)
	}
	if e := maxErr(gotLazy, gotEager); e > 1e-4 {
		t.Fatalf("lazy vs eager divergence %g", e)
	}
}

// TestAdd2LevelAlignment checks that Add2 truncates the deeper operand.
func TestAdd2LevelAlignment(t *testing.T) {
	tc := newTestContext(t, 8, 4, nil)
	slots := tc.params.Slots()
	va, vb := randomComplex(slots, 21), randomComplex(slots, 22)
	pa, _ := tc.enc.Encode(va)
	pb, _ := tc.enc.Encode(vb)
	ca, cb := tc.encr.Encrypt(pa), tc.encr.Encrypt(pb)

	hi := tc.eval.MulNoRelin(ca, cb)
	lowA, lowB := ca.CopyNew(), cb.CopyNew()
	lowA.DropLevel(1)
	lowB.DropLevel(1)
	lo := tc.eval.MulNoRelin(lowA, lowB)

	sum := tc.eval.Add2(hi, lo)
	if sum.Level() != lo.Level() {
		t.Fatalf("Add2 level = %d, want %d", sum.Level(), lo.Level())
	}
	want := make([]complex128, slots)
	for i := range want {
		want[i] = 2 * va[i] * vb[i]
	}
	got := tc.enc.Decode(tc.decr.Decrypt(tc.eval.Rescale(tc.eval.Relinearize(sum))))
	if e := maxErr(got, want); e > 1e-4 {
		t.Fatalf("aligned Add2 error %g", e)
	}
}
