package ckks

import (
	"fmt"

	"hydra/internal/ring"
)

// Batched ciphertext operations.
//
// The serving fleet hands the evaluator whole batches of ciphertexts that
// undergo the same operation — the scenario Hydra's lanes are sized for.
// These entry points re-partition that work over the ring's (limb ×
// batch-tile) scheduler and, for the keyswitch, stream every switching-key
// row once across the batch (ring.MulAddRowLazyBatch) instead of reloading
// it per ciphertext. Every batch operation is bit-identical to the
// sequential loop over its scalar counterpart; batch_test.go pins that.

// ksAccumBatch is ksAccum over a batch of hoisted decompositions sharing one
// switching key (and, when perm is non-nil, one fused automorphism gather).
// All decompositions must sit at the same level. The key row for each
// (digit, modulus) pair is loaded once and folded into every ciphertext's
// accumulator before the next is touched. Returned accumulator rows are
// canonical, pool-owned, and released by the caller.
func (ev *Evaluator) ksAccumBatch(hs []*hoistedDecomp, perm []int, swk *SwitchingKey) (accs0, accs1 [][][]uint64) {
	r := ev.params.RingQP()
	lvl := hs[0].lvl
	accs0 = make([][][]uint64, len(hs))
	accs1 = make([][][]uint64, len(hs))
	for b := range hs {
		if hs[b].lvl != lvl {
			panic("ckks: ksAccumBatch requires a level-uniform batch")
		}
		accs0[b] = make([][]uint64, lvl+2)
		accs1[b] = make([][]uint64, lvl+2)
	}
	ring.ForEachLimb(lvl+2, func(jj int) {
		tblIdx := hs[0].modIdx[jj]
		qj := r.Moduli[tblIdx]
		m := r.Tables[tblIdx].Mod
		a0s := make([][]uint64, len(hs))
		a1s := make([][]uint64, len(hs))
		xs := make([][]uint64, len(hs))
		for b := range hs {
			row0, row1 := r.GetRow(), r.GetRow()
			//lint:allow poolleak accumulator rows transfer ownership to the caller, which releases them after the ModDown consumes them
			a0s[b], a1s[b] = row0, row1
		}
		for i := 0; i <= lvl; i++ {
			kb := swk.DigitsB[i].Coeffs[tblIdx]
			ka := swk.DigitsA[i].Coeffs[tblIdx]
			for b := range hs {
				xs[b] = hs[b].digits[i][jj]
			}
			if perm == nil {
				m.MulAddRowLazyBatch(a0s, xs, kb)
				m.MulAddRowLazyBatch(a1s, xs, ka)
			} else {
				m.MulAddRowLazyGatherBatch(a0s, xs, kb, perm)
				m.MulAddRowLazyGatherBatch(a1s, xs, ka, perm)
			}
		}
		for b := range hs {
			ring.ReduceFinalVec(a0s[b], qj)
			ring.ReduceFinalVec(a1s[b], qj)
			accs0[b][jj], accs1[b][jj] = a0s[b], a1s[b]
		}
	})
	return accs0, accs1
}

// modDownPBatch is modDownP over a batch of accumulators: the inverse NTTs
// batch per extended modulus, the div-round runs on the (limb × tile) grid,
// and the closing forward NTTs batch across the whole output set.
func (ev *Evaluator) modDownPBatch(accs [][][]uint64, modIdx []int, lvl int) []*ring.Poly {
	r := ev.params.RingQP()
	p := ev.params.P()

	ring.ForEachLimb(len(modIdx), func(jj int) {
		rows := make([][]uint64, len(accs))
		for b := range accs {
			rows[b] = accs[b][jj]
		}
		r.Tables[modIdx[jj]].InverseBatch(rows)
	})

	outs := make([]*ring.Poly, len(accs))
	for b := range outs {
		outs[b] = r.NewPoly(lvl)
	}
	tiles := (len(accs) + 7) / 8
	ring.ForEachLimbTile(lvl+1, tiles, func(j, tile int) {
		qj := r.Moduli[j]
		inv := ev.pInvModQi[j]
		invShoup := ring.ShoupPrecomp(inv, qj)
		lo, hi := tile*8, (tile+1)*8
		if hi > len(accs) {
			hi = len(accs)
		}
		for b := lo; b < hi; b++ {
			src := accs[b][j]
			rem := accs[b][lvl+1]
			dst := outs[b].Coeffs[j]
			for t := range dst {
				rr := ring.CenteredMod(rem[t], p, qj)
				dst[t] = ring.MulModShoup(ring.SubMod(src[t], rr, qj), inv, invShoup, qj)
			}
		}
	})
	r.NTTBatch(outs...)
	return outs
}

// KeySwitchBatch applies one switching key to a batch of degree-1 parts
// (NTT domain, all at the same level), returning the per-ciphertext
// (out0, out1) pairs. The digit inner products stream every key row once
// across the batch; results are bit-identical to per-polynomial keySwitch
// calls.
func (ev *Evaluator) KeySwitchBatch(ds []*ring.Poly, swk *SwitchingKey) (outs0, outs1 []*ring.Poly) {
	r := ev.params.RingQP()
	lvl := ds[0].Level()
	hs := make([]*hoistedDecomp, len(ds))
	for b, d := range ds {
		if d.Level() != lvl {
			panic("ckks: KeySwitchBatch requires a level-uniform batch")
		}
		hs[b] = ev.decomposeExt(d)
	}
	accs0, accs1 := ev.ksAccumBatch(hs, nil, swk)
	for _, h := range hs {
		h.release(r)
	}
	outs0 = ev.modDownPBatch(accs0, hs[0].modIdx, lvl)
	outs1 = ev.modDownPBatch(accs1, hs[0].modIdx, lvl)
	for b := range accs0 {
		for jj := range accs0[b] {
			r.PutRow(accs0[b][jj])
			r.PutRow(accs1[b][jj])
		}
	}
	return outs0, outs1
}

// RotateBatch rotates every ciphertext by the same slot count — the fleet
// fan-out case — sharing the rotation key's row traffic and the automorphism
// index walk across the batch. Ciphertexts at mixed levels fall back to the
// per-ciphertext path. Results are bit-identical to per-ciphertext Rotate
// calls.
func (ev *Evaluator) RotateBatch(cts []*Ciphertext, rot int) []*Ciphertext {
	out := make([]*Ciphertext, len(cts))
	if len(cts) == 0 {
		return out
	}
	k := ring.GaloisElementForRotation(ev.params.N(), rot)
	if k == 1 {
		for b, ct := range cts {
			out[b] = ct.CopyNew()
		}
		return out
	}
	if ev.rtks == nil {
		panic("ckks: evaluator has no rotation keys")
	}
	swk, ok := ev.rtks.Keys[k]
	if !ok {
		panic(fmt.Sprintf("ckks: missing rotation key for Galois element %d", k))
	}
	uniform := true
	for _, ct := range cts[1:] {
		if ct.Level() != cts[0].Level() {
			uniform = false
			break
		}
	}
	if !uniform {
		for b, ct := range cts {
			out[b] = ev.automorphism(ct, k)
		}
		return out
	}

	r := ev.params.RingQP()
	lvl := cts[0].Level()
	perm := ring.AutomorphismNTTIndex(r.N, k)

	hs := make([]*hoistedDecomp, len(cts))
	for b, ct := range cts {
		hs[b] = ev.decomposeExt(ct.C1)
	}
	accs0, accs1 := ev.ksAccumBatch(hs, perm, swk)
	modIdx := hs[0].modIdx
	for _, h := range hs {
		h.release(r)
	}
	ks0s := ev.modDownPBatch(accs0, modIdx, lvl)
	ks1s := ev.modDownPBatch(accs1, modIdx, lvl)
	for b := range accs0 {
		for jj := range accs0[b] {
			r.PutRow(accs0[b][jj])
			r.PutRow(accs1[b][jj])
		}
	}

	c0s := make([]*ring.Poly, len(cts))
	rc0s := make([]*ring.Poly, len(cts))
	for b, ct := range cts {
		c0s[b] = ct.C0
		rc0s[b] = r.NewPoly(lvl)
	}
	r.AutomorphismNTTBatch(c0s, perm, rc0s)
	for b, ct := range cts {
		r.Add(rc0s[b], ks0s[b], rc0s[b])
		out[b] = &Ciphertext{C0: rc0s[b], C1: ks1s[b], Scale: ct.Scale}
	}
	return out
}

// RescaleBatch rescales every ciphertext in one dispatch: the 2·B component
// polynomials share batched inverse and forward NTTs and a (limb × tile)
// div-round sweep. Ciphertexts may sit at mixed levels. Results are
// bit-identical to per-ciphertext Rescale calls.
func (ev *Evaluator) RescaleBatch(cts []*Ciphertext) []*Ciphertext {
	r := ev.params.RingQP()
	works := make([]*ring.Poly, 2*len(cts))
	outs := make([]*ring.Poly, 2*len(cts))
	limbs := 0
	for b, ct := range cts {
		if ct.Level() == 0 {
			panic("ckks: cannot rescale at level 0")
		}
		lvl := ct.Level()
		if lvl > limbs {
			limbs = lvl // div-round writes limbs 0..lvl-1
		}
		for c, comp := range [2]*ring.Poly{ct.C0, ct.C1} {
			w := r.GetScratch(lvl)
			w.Copy(comp)
			//lint:allow poolleak scratch rows are gathered for the batched INTT and returned to the pool before RescaleBatch returns
			works[2*b+c] = w
			outs[2*b+c] = r.NewPoly(lvl - 1)
		}
	}
	r.INTTBatch(works...)
	tiles := (len(works) + 7) / 8
	ring.ForEachLimbTile(limbs, tiles, func(j, tile int) {
		lo, hi := tile*8, (tile+1)*8
		if hi > len(works) {
			hi = len(works)
		}
		for idx := lo; idx < hi; idx++ {
			top := works[idx].Level()
			if j >= top {
				continue
			}
			qj := r.Moduli[j]
			qLast := r.Moduli[top]
			inv := ring.InvMod(ring.Reduce(qLast, qj), qj)
			invShoup := ring.ShoupPrecomp(inv, qj)
			src := works[idx].Coeffs[j]
			rem := works[idx].Coeffs[top]
			dst := outs[idx].Coeffs[j]
			for t := range dst {
				rr := ring.CenteredMod(rem[t], qLast, qj)
				dst[t] = ring.MulModShoup(ring.SubMod(src[t], rr, qj), inv, invShoup, qj)
			}
		}
	})
	r.NTTBatch(outs...)
	res := make([]*Ciphertext, len(cts))
	for b, ct := range cts {
		qLast := r.Moduli[ct.Level()]
		res[b] = &Ciphertext{
			C0:    outs[2*b],
			C1:    outs[2*b+1],
			Scale: ct.Scale / float64(qLast),
		}
		r.PutScratch(works[2*b])
		r.PutScratch(works[2*b+1])
	}
	return res
}
