// Package ckks implements a functional RNS-CKKS homomorphic encryption
// scheme: approximate arithmetic over encrypted complex vectors with
// homomorphic addition, plaintext and ciphertext multiplication, rescaling,
// key switching, and slot rotations.
//
// This is the arithmetic substrate that the Hydra accelerator model executes:
// every operation the scheduler dispatches (HAdd, PMult, CMult, Rotation,
// Rescale, KeySwitch) has a real implementation here, so the task mappings in
// internal/mapping can be validated functionally at laptop-scale parameters
// while the performance model in internal/hw uses the paper's N = 2^16
// parameters.
package ckks

import (
	"fmt"

	"hydra/internal/ring"
)

// Parameters describes a CKKS parameter set.
type Parameters struct {
	logN     int
	logSlots int
	q        []uint64 // ciphertext modulus chain q_0 … q_L
	p        uint64   // special (key-switching) modulus
	scale    float64
	sigma    float64

	ringQP *ring.Ring // ring over q_0 … q_L, p
}

// ParametersLiteral is the user-facing description from which Parameters are
// built. LogQ lists the bit sizes of the ciphertext moduli; LogP the bit size
// of the single special modulus used for key switching.
type ParametersLiteral struct {
	LogN     int
	LogSlots int // defaults to LogN-1
	LogQ     []int
	LogP     int
	Scale    float64 // defaults to 2^40
	Sigma    float64 // defaults to 3.2
}

// NewParameters validates the literal and precomputes the ring.
func NewParameters(lit ParametersLiteral) (*Parameters, error) {
	if lit.LogN < 3 || lit.LogN > 17 {
		return nil, fmt.Errorf("ckks: LogN %d out of supported range [3,17]", lit.LogN)
	}
	if lit.LogSlots == 0 {
		lit.LogSlots = lit.LogN - 1
	}
	if lit.LogSlots < 0 || lit.LogSlots > lit.LogN-1 {
		return nil, fmt.Errorf("ckks: LogSlots %d out of range [0,%d]", lit.LogSlots, lit.LogN-1)
	}
	if len(lit.LogQ) == 0 {
		return nil, fmt.Errorf("ckks: need at least one ciphertext modulus")
	}
	if lit.LogP == 0 {
		return nil, fmt.Errorf("ckks: need a special modulus (LogP)")
	}
	if lit.Scale == 0 {
		lit.Scale = 1 << 40
	}
	if lit.Sigma == 0 {
		lit.Sigma = 3.2
	}
	n := 1 << lit.LogN

	// Group requested bit sizes so equal sizes draw distinct primes.
	counts := map[int]int{}
	for _, lq := range lit.LogQ {
		counts[lq]++
	}
	counts[lit.LogP]++
	pools := map[int][]uint64{}
	for sz, c := range counts {
		pools[sz] = ring.GenerateNTTPrimes(sz, n, c)
	}
	next := func(sz int) uint64 {
		v := pools[sz][0]
		pools[sz] = pools[sz][1:]
		return v
	}
	q := make([]uint64, len(lit.LogQ))
	for i, lq := range lit.LogQ {
		q[i] = next(lq)
	}
	p := next(lit.LogP)

	moduli := append(append([]uint64(nil), q...), p)
	rng, err := ring.NewRing(n, moduli)
	if err != nil {
		return nil, err
	}
	return &Parameters{
		logN:     lit.LogN,
		logSlots: lit.LogSlots,
		q:        q,
		p:        p,
		scale:    lit.Scale,
		sigma:    lit.Sigma,
		ringQP:   rng,
	}, nil
}

// TestParameters returns a small parameter set suitable for unit tests:
// N = 2^(logN), the given number of 45-bit levels plus a 50-bit base modulus
// and 50-bit special modulus, scale 2^45 (matching the level moduli so the
// scale stays stable across rescaling).
func TestParameters(logN, levels int) *Parameters {
	logQ := make([]int, levels+1)
	logQ[0] = 50
	for i := 1; i <= levels; i++ {
		logQ[i] = 45
	}
	p, err := NewParameters(ParametersLiteral{
		LogN:  logN,
		LogQ:  logQ,
		LogP:  50,
		Scale: 1 << 45,
	})
	if err != nil {
		panic(err)
	}
	return p
}

// LogN returns log2 of the ring degree.
func (p *Parameters) LogN() int { return p.logN }

// N returns the ring degree.
func (p *Parameters) N() int { return 1 << p.logN }

// LogSlots returns log2 of the number of plaintext slots.
func (p *Parameters) LogSlots() int { return p.logSlots }

// Slots returns the number of plaintext slots.
func (p *Parameters) Slots() int { return 1 << p.logSlots }

// MaxLevel returns the index of the highest ciphertext level.
func (p *Parameters) MaxLevel() int { return len(p.q) - 1 }

// Q returns the ciphertext modulus chain.
func (p *Parameters) Q() []uint64 { return p.q }

// P returns the special modulus.
func (p *Parameters) P() uint64 { return p.p }

// DefaultScale returns the default encoding scale Δ.
func (p *Parameters) DefaultScale() float64 { return p.scale }

// Sigma returns the error distribution's standard deviation.
func (p *Parameters) Sigma() float64 { return p.sigma }

// RingQP returns the ring over all moduli (ciphertext chain plus special).
func (p *Parameters) RingQP() *ring.Ring { return p.ringQP }

// SpecialIndex is the residue index of the special modulus in RingQP.
func (p *Parameters) SpecialIndex() int { return len(p.q) }
