package ckks

import (
	"testing"
)

func TestCiphertextRoundTrip(t *testing.T) {
	tc := newTestContext(t, 9, 3, nil)
	vals := randomComplex(tc.params.Slots(), 30)
	pt, _ := tc.enc.Encode(vals)
	ct := tc.encr.Encrypt(pt)

	data := MarshalCiphertext(ct)
	back, err := UnmarshalCiphertext(tc.params, data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Level() != ct.Level() || back.Scale != ct.Scale {
		t.Fatalf("metadata changed: level %d scale %g", back.Level(), back.Scale)
	}
	if !back.C0.Equal(ct.C0) || !back.C1.Equal(ct.C1) {
		t.Fatal("polynomials changed")
	}
	// The decoded ciphertext still decrypts.
	got := tc.enc.Decode(tc.decr.Decrypt(back))
	if e := maxErr(got, vals); e > 1e-6 {
		t.Fatalf("round-tripped ciphertext decrypts with error %g", e)
	}
}

func TestCiphertextWireSizeMatchesCostModel(t *testing.T) {
	// The serialized size should match 2·limbs·N·8 up to the small header —
	// the quantity the hw cost model charges the DTU for.
	tc := newTestContext(t, 9, 3, nil)
	pt, _ := tc.enc.Encode(make([]complex128, tc.params.Slots()))
	ct := tc.encr.Encrypt(pt)
	data := MarshalCiphertext(ct)
	payload := 2 * (ct.Level() + 1) * tc.params.N() * 8
	if len(data) < payload || len(data) > payload+64 {
		t.Fatalf("wire size %d, payload %d", len(data), payload)
	}
}

func TestPlaintextRoundTrip(t *testing.T) {
	tc := newTestContext(t, 8, 2, nil)
	vals := randomComplex(tc.params.Slots(), 31)
	pt, _ := tc.enc.Encode(vals)
	data := MarshalPlaintext(pt)
	back, err := UnmarshalPlaintext(tc.params, data)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Value.Equal(pt.Value) || back.Scale != pt.Scale {
		t.Fatal("plaintext changed")
	}
}

func TestUnmarshalRejectsCorruptData(t *testing.T) {
	tc := newTestContext(t, 8, 2, nil)
	pt, _ := tc.enc.Encode(make([]complex128, tc.params.Slots()))
	ct := tc.encr.Encrypt(pt)
	data := MarshalCiphertext(ct)

	cases := map[string][]byte{
		"empty":      nil,
		"bad magic":  append([]byte{'X'}, data[1:]...),
		"truncated":  data[:len(data)/3],
		"trailing":   append(append([]byte{}, data...), 1, 2, 3),
		"pt as ct":   MarshalPlaintext(pt),
		"wrong ring": nil,
	}
	for name, d := range cases {
		if name == "wrong ring" {
			other := TestParameters(9, 2)
			if _, err := UnmarshalCiphertext(other, data); err == nil {
				t.Fatal("wrong ring: expected error")
			}
			continue
		}
		if _, err := UnmarshalCiphertext(tc.params, d); err == nil {
			t.Fatalf("%s: expected error", name)
		}
	}
	// Corrupt the level field beyond the max.
	bad := append([]byte{}, data...)
	bad[8] = 200
	if _, err := UnmarshalCiphertext(tc.params, bad); err == nil {
		t.Fatal("expected level-range error")
	}
}
