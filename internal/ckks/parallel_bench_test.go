package ckks

import (
	"testing"

	"hydra/internal/ring"
)

// BenchmarkCMultParallel times ciphertext multiplication with relinearization
// at N = 2^14 in forced-serial and default-parallel pool modes. Run with
// -benchmem: the scratch pools should keep per-op allocations low in both
// arms, and the parallel arm should win wall-clock on multi-core machines.
func BenchmarkCMultParallel(b *testing.B) {
	tc := newTestContext(b, 14, 4, []int{1})
	vals := randomComplex(tc.params.Slots(), 11)
	pt, err := tc.enc.Encode(vals)
	if err != nil {
		b.Fatal(err)
	}
	ct := tc.encr.Encrypt(pt)
	for _, mode := range []struct {
		name   string
		serial bool
	}{{"serial", true}, {"parallel", false}} {
		b.Run(mode.name, func(b *testing.B) {
			ring.SetSerial(mode.serial)
			defer ring.SetSerial(false)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tc.eval.MulRelin(ct, ct)
			}
		})
	}
}
