package ckks

import (
	"hydra/internal/ring"
)

// SecretKey holds the secret polynomial s (ternary), stored in the NTT domain
// over the full modulus chain QP.
type SecretKey struct {
	Value *ring.Poly
}

// PublicKey is the standard RLWE pair (b, a) = (-a·s + e, a) over QP,
// NTT domain.
type PublicKey struct {
	B, A *ring.Poly
}

// SwitchingKey re-encrypts a polynomial decryptable under sIn so that it is
// decryptable under sOut. One digit per ciphertext modulus: Digits[i] is the
// pair (b_i, a_i) over QP with b_i = -a_i·sOut + e_i + P̃_i·sIn, where P̃_i is
// P at residue q_i and 0 elsewhere.
type SwitchingKey struct {
	DigitsB []*ring.Poly
	DigitsA []*ring.Poly
}

// RelinearizationKey switches s² → s after ciphertext multiplication.
type RelinearizationKey struct {
	Key *SwitchingKey
}

// RotationKeySet maps Galois elements to their switching keys.
type RotationKeySet struct {
	Keys map[uint64]*SwitchingKey
}

// KeyGenerator derives all key material from a secret key.
type KeyGenerator struct {
	params  *Parameters
	sampler *ring.Sampler
}

// NewKeyGenerator returns a key generator with deterministic randomness
// derived from seed.
func NewKeyGenerator(params *Parameters, seed int64) *KeyGenerator {
	return &KeyGenerator{
		params:  params,
		sampler: ring.NewSampler(params.RingQP(), seed),
	}
}

// GenSecretKey samples a fresh ternary secret key.
func (kg *KeyGenerator) GenSecretKey() *SecretKey {
	r := kg.params.RingQP()
	s := r.NewPoly(r.MaxLevel())
	kg.sampler.Ternary(s)
	r.NTT(s)
	return &SecretKey{Value: s}
}

// GenSecretKeySparse samples a ternary secret of exact Hamming weight h.
// Bootstrapping uses sparse secrets so the integer overflow polynomial I(X)
// introduced by the modulus raise stays small (|I| = O(√h) w.h.p.).
func (kg *KeyGenerator) GenSecretKeySparse(h int) *SecretKey {
	r := kg.params.RingQP()
	s := r.NewPoly(r.MaxLevel())
	kg.sampler.TernarySparse(s, h)
	r.NTT(s)
	return &SecretKey{Value: s}
}

// GenPublicKey derives the public encryption key from sk.
func (kg *KeyGenerator) GenPublicKey(sk *SecretKey) *PublicKey {
	r := kg.params.RingQP()
	lvl := r.MaxLevel()
	a := r.NewPoly(lvl)
	kg.sampler.Uniform(a)
	r.NTT(a)
	e := r.NewPoly(lvl)
	kg.sampler.Gaussian(e, kg.params.Sigma())
	r.NTT(e)

	b := r.NewPoly(lvl)
	r.MulCoeffs(a, sk.Value, b)
	r.Neg(b, b)
	r.Add(b, e, b)
	return &PublicKey{B: b, A: a}
}

// GenSwitchingKey builds a key switching sIn → sOut (both NTT, full level).
func (kg *KeyGenerator) GenSwitchingKey(sIn, sOut *ring.Poly) *SwitchingKey {
	r := kg.params.RingQP()
	lvl := r.MaxLevel()
	nQ := len(kg.params.Q())
	pModQi := make([]uint64, nQ)
	for i := 0; i < nQ; i++ {
		pModQi[i] = ring.Reduce(kg.params.P(), r.Moduli[i])
	}

	swk := &SwitchingKey{
		DigitsB: make([]*ring.Poly, nQ),
		DigitsA: make([]*ring.Poly, nQ),
	}
	for i := 0; i < nQ; i++ {
		a := r.NewPoly(lvl)
		kg.sampler.Uniform(a)
		r.NTT(a)
		e := r.NewPoly(lvl)
		kg.sampler.Gaussian(e, kg.params.Sigma())
		r.NTT(e)

		b := r.NewPoly(lvl)
		r.MulCoeffs(a, sOut, b)
		r.Neg(b, b)
		r.Add(b, e, b)
		// Add P̃_i·sIn: only residue q_i is non-zero, equal to (P mod q_i)·sIn.
		qi := r.Moduli[i]
		pi := pModQi[i]
		piShoup := ring.ShoupPrecomp(pi, qi)
		for j := 0; j < r.N; j++ {
			term := ring.MulModShoup(sIn.Coeffs[i][j], pi, piShoup, qi)
			b.Coeffs[i][j] = ring.AddMod(b.Coeffs[i][j], term, qi)
		}
		swk.DigitsB[i] = b
		swk.DigitsA[i] = a
	}
	return swk
}

// GenRelinearizationKey builds the s² → s key.
func (kg *KeyGenerator) GenRelinearizationKey(sk *SecretKey) *RelinearizationKey {
	r := kg.params.RingQP()
	s2 := r.NewPoly(r.MaxLevel())
	r.MulCoeffs(sk.Value, sk.Value, s2)
	return &RelinearizationKey{Key: kg.GenSwitchingKey(s2, sk.Value)}
}

// GenRotationKeys builds switching keys for the given slot rotations
// (positive = left rotation) and, if conjugate is set, for conjugation.
func (kg *KeyGenerator) GenRotationKeys(sk *SecretKey, rotations []int, conjugate bool) *RotationKeySet {
	set := &RotationKeySet{Keys: map[uint64]*SwitchingKey{}}
	n := kg.params.N()
	for _, rot := range rotations {
		k := ring.GaloisElementForRotation(n, rot)
		if _, ok := set.Keys[k]; ok {
			continue
		}
		set.Keys[k] = kg.genGaloisKey(sk, k)
	}
	if conjugate {
		k := ring.GaloisElementConjugate(n)
		set.Keys[k] = kg.genGaloisKey(sk, k)
	}
	return set
}

func (kg *KeyGenerator) genGaloisKey(sk *SecretKey, k uint64) *SwitchingKey {
	r := kg.params.RingQP()
	perm := ring.AutomorphismNTTIndex(r.N, k)
	sRot := r.NewPoly(r.MaxLevel())
	r.AutomorphismNTT(sk.Value, perm, sRot)
	return kg.GenSwitchingKey(sRot, sk.Value)
}
