package ckks

import "testing"

func TestFreshNoiseWithinBound(t *testing.T) {
	tc := newTestContext(t, 10, 2, nil)
	nm := NewNoiseModel(tc.params)
	vals := randomComplex(tc.params.Slots(), 40)
	pt, _ := tc.enc.Encode(vals)
	for trial := int64(0); trial < 5; trial++ {
		encr := NewEncryptor(tc.params, tc.pk, 100+trial)
		ct := encr.Encrypt(pt)
		measured := MeasureNoise(tc.decr, tc.enc, ct, vals)
		if bound := nm.Fresh(); measured > bound {
			t.Fatalf("trial %d: fresh noise %g exceeds bound %g", trial, measured, bound)
		}
	}
}

func TestAdditionNoiseComposes(t *testing.T) {
	tc := newTestContext(t, 10, 2, nil)
	nm := NewNoiseModel(tc.params)
	vals := randomComplex(tc.params.Slots(), 41)
	pt, _ := tc.enc.Encode(vals)

	// Sum of 16 independent encryptions: independent errors compose in
	// quadrature.
	acc := tc.encr.Encrypt(pt)
	want := make([]complex128, len(vals))
	copy(want, vals)
	bound := nm.Fresh()
	for i := int64(0); i < 15; i++ {
		fresh := NewEncryptor(tc.params, tc.pk, 200+i).Encrypt(pt)
		acc = tc.eval.Add(acc, fresh)
		for j := range want {
			want[j] += vals[j]
		}
		bound = nm.Add(bound, nm.Fresh())
	}
	measured := MeasureNoise(tc.decr, tc.enc, acc, want)
	if measured > bound {
		t.Fatalf("16-term sum noise %g exceeds bound %g", measured, bound)
	}
}

func TestRotationNoiseWithinBound(t *testing.T) {
	tc := newTestContext(t, 10, 2, []int{1})
	nm := NewNoiseModel(tc.params)
	slots := tc.params.Slots()
	vals := make([]complex128, slots)
	for i := range vals {
		vals[i] = complex(float64(i%9)/9, 0)
	}
	pt, _ := tc.enc.Encode(vals)
	ct := tc.encr.Encrypt(pt)

	// Eight chained rotations accumulate eight key-switch noises.
	bound := nm.Fresh()
	acc := ct
	for i := 0; i < 8; i++ {
		acc = tc.eval.Rotate(acc, 1)
		bound = nm.Add(bound, nm.KeySwitch(acc.Level()))
	}
	want := make([]complex128, slots)
	for j := range want {
		want[j] = vals[(j+8)%slots]
	}
	measured := MeasureNoise(tc.decr, tc.enc, acc, want)
	if measured > bound {
		t.Fatalf("rotation-chain noise %g exceeds bound %g", measured, bound)
	}
	// The bound should not be absurdly loose either (staying within a few
	// orders of magnitude keeps the model meaningful).
	if bound > measured*1e5 {
		t.Fatalf("bound %g is vacuous against measurement %g", bound, measured)
	}
}

func TestRescaleNoiseWithinBound(t *testing.T) {
	tc := newTestContext(t, 10, 3, nil)
	nm := NewNoiseModel(tc.params)
	vals := randomComplex(tc.params.Slots(), 42)
	pt, _ := tc.enc.Encode(vals)
	ct := tc.encr.Encrypt(pt)
	prod := tc.eval.MulPlain(ct, pt)
	bound := nm.MulPlain(nm.Fresh(), 1.5, tc.params.DefaultScale(), 1.5, tc.params.DefaultScale())
	res := tc.eval.Rescale(prod)
	bound = nm.Rescale(bound, prod.Level())

	want := make([]complex128, len(vals))
	for i := range vals {
		want[i] = vals[i] * vals[i]
	}
	measured := MeasureNoise(tc.decr, tc.enc, res, want)
	if measured > bound {
		t.Fatalf("rescale noise %g exceeds bound %g", measured, bound)
	}
}
