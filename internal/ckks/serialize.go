package ckks

import (
	"encoding/binary"
	"fmt"
	"math"

	"hydra/internal/ring"
)

// Wire format of ciphertexts and plaintexts — the payload the paper's DTU
// moves between cards (a level-l ciphertext is 2·(l+1)·N·8 bytes of limb
// data plus a small header, matching hw.SchemeParams.CiphertextBytes).

var (
	ctMagic = [4]byte{'H', 'C', 'T', '1'}
	ptMagic = [4]byte{'H', 'P', 'T', '1'}
)

// MarshalCiphertext encodes ct for transfer.
func MarshalCiphertext(ct *Ciphertext) []byte {
	buf := make([]byte, 0, 32+2*(ct.Level()+1)*len(ct.C0.Coeffs[0])*8)
	buf = append(buf, ctMagic[:]...)
	buf = appendHeader(buf, ct.C0, ct.Scale)
	buf = appendPoly(buf, ct.C0)
	buf = appendPoly(buf, ct.C1)
	return buf
}

// UnmarshalCiphertext decodes a ciphertext, validating its shape against the
// parameters.
func UnmarshalCiphertext(params *Parameters, data []byte) (*Ciphertext, error) {
	rest, level, isNTT, scale, err := readHeader(params, data, ctMagic)
	if err != nil {
		return nil, err
	}
	r := params.RingQP()
	c0 := r.NewPoly(level)
	c1 := r.NewPoly(level)
	if rest, err = readPoly(rest, c0, isNTT); err != nil {
		return nil, err
	}
	if rest, err = readPoly(rest, c1, isNTT); err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("ckks: %d trailing bytes in ciphertext", len(rest))
	}
	return &Ciphertext{C0: c0, C1: c1, Scale: scale}, nil
}

// MarshalPlaintext encodes pt.
func MarshalPlaintext(pt *Plaintext) []byte {
	buf := make([]byte, 0, 32+(pt.Level()+1)*len(pt.Value.Coeffs[0])*8)
	buf = append(buf, ptMagic[:]...)
	buf = appendHeader(buf, pt.Value, pt.Scale)
	buf = appendPoly(buf, pt.Value)
	return buf
}

// UnmarshalPlaintext decodes a plaintext.
func UnmarshalPlaintext(params *Parameters, data []byte) (*Plaintext, error) {
	rest, level, isNTT, scale, err := readHeader(params, data, ptMagic)
	if err != nil {
		return nil, err
	}
	v := params.RingQP().NewPoly(level)
	if rest, err = readPoly(rest, v, isNTT); err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("ckks: %d trailing bytes in plaintext", len(rest))
	}
	return &Plaintext{Value: v, Scale: scale}, nil
}

func appendHeader(buf []byte, p *ring.Poly, scale float64) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(p.Coeffs[0]))) // N
	buf = binary.LittleEndian.AppendUint32(buf, uint32(p.Level()))
	if p.IsNTT {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(scale))
	return buf
}

func readHeader(params *Parameters, data []byte, magic [4]byte) (rest []byte, level int, isNTT bool, scale float64, err error) {
	if len(data) < 4+4+4+1+8 {
		return nil, 0, false, 0, fmt.Errorf("ckks: truncated header")
	}
	for i := range magic {
		if data[i] != magic[i] {
			return nil, 0, false, 0, fmt.Errorf("ckks: bad magic")
		}
	}
	off := 4
	n := int(binary.LittleEndian.Uint32(data[off:]))
	off += 4
	level = int(binary.LittleEndian.Uint32(data[off:]))
	off += 4
	isNTT = data[off] == 1
	off++
	scale = math.Float64frombits(binary.LittleEndian.Uint64(data[off:]))
	off += 8
	if n != params.N() {
		return nil, 0, false, 0, fmt.Errorf("ckks: degree %d does not match parameters (N=%d)", n, params.N())
	}
	if level < 0 || level > params.MaxLevel() {
		return nil, 0, false, 0, fmt.Errorf("ckks: level %d out of range", level)
	}
	if scale <= 0 || math.IsNaN(scale) || math.IsInf(scale, 0) {
		return nil, 0, false, 0, fmt.Errorf("ckks: invalid scale %v", scale)
	}
	return data[off:], level, isNTT, scale, nil
}

func appendPoly(buf []byte, p *ring.Poly) []byte {
	for _, limb := range p.Coeffs {
		for _, c := range limb {
			buf = binary.LittleEndian.AppendUint64(buf, c)
		}
	}
	return buf
}

func readPoly(data []byte, p *ring.Poly, isNTT bool) ([]byte, error) {
	need := len(p.Coeffs) * len(p.Coeffs[0]) * 8
	if len(data) < need {
		return nil, fmt.Errorf("ckks: truncated polynomial (%d of %d bytes)", len(data), need)
	}
	off := 0
	for _, limb := range p.Coeffs {
		for j := range limb {
			limb[j] = binary.LittleEndian.Uint64(data[off:])
			off += 8
		}
	}
	p.IsNTT = isNTT
	return data[need:], nil
}
