package ckks

import (
	"fmt"
	"testing"

	"hydra/internal/ring"
)

// The deferred ModDown commutes exactly with the Q-basis fold:
// (P·τ(c0) + acc0 − rem)/P = τ(c0) + (acc0 − rem)/P, because the folded term
// is an exact multiple of P and leaves the P-row untouched. A single rotation
// through the extended basis must therefore be bit-identical to Rotate.
func TestRotateExtBitIdenticalToRotate(t *testing.T) {
	rots := []int{1, 2, 5, -1}
	tc := newTestContext(t, 6, 3, rots)
	vals := randomComplex(tc.params.Slots(), 11)
	pt, err := tc.enc.Encode(vals)
	if err != nil {
		t.Fatal(err)
	}
	ct := tc.encr.Encrypt(pt)

	for _, rot := range append([]int{0}, rots...) {
		got := tc.eval.ModDownExt(tc.eval.RotateExt(ct, rot))
		want := tc.eval.Rotate(ct, rot)
		if err := ctBitIdentical(got, want); err != nil {
			t.Errorf("rot %d: extended-basis path differs from Rotate: %v", rot, err)
		}
	}
}

// Multiplying a lifted ciphertext by an extended plaintext and folding back
// down is exact: the lift's P-row is zero, so the ModDown subtracts nothing
// and the result must be bit-identical to MulPlain. This also pins
// EncodeExtAtLevel's Q-rows to EncodeAtLevel's.
func TestMulPlainExtAccBitIdenticalToMulPlain(t *testing.T) {
	tc := newTestContext(t, 6, 3, []int{1})
	vals := randomComplex(tc.params.Slots(), 12)
	weights := randomComplex(tc.params.Slots(), 13)
	pt, err := tc.enc.Encode(vals)
	if err != nil {
		t.Fatal(err)
	}
	ct := tc.encr.Encrypt(pt)
	lvl := ct.Level()
	scale := tc.params.DefaultScale()

	wPlain, err := tc.enc.EncodeAtLevel(weights, scale, lvl)
	if err != nil {
		t.Fatal(err)
	}
	wExt, err := tc.enc.EncodeExtAtLevel(weights, scale, lvl)
	if err != nil {
		t.Fatal(err)
	}

	acc := tc.eval.NewExtAccumulator(lvl, ct.Scale*scale)
	lift := tc.eval.RotateExt(ct, 0)
	tc.eval.MulPlainExtAcc(lift, wExt, acc)
	tc.eval.ReleaseExt(lift)
	got := tc.eval.ModDownExt(acc)

	want := tc.eval.MulPlain(ct, wPlain)
	if err := ctBitIdentical(got, want); err != nil {
		t.Fatalf("extended-basis plaintext product differs from MulPlain: %v", err)
	}
}

// Folding several hoisted rotations in the extended basis with one closing
// ModDown must decrypt to the same value as summing per-rotation Rotate
// results; the single deferred rounding only shrinks the error.
func TestExtFoldedRotationsDecryptEqual(t *testing.T) {
	rots := []int{1, 2, 5, -1}
	tc := newTestContext(t, 6, 3, rots)
	vals := randomComplex(tc.params.Slots(), 14)
	pt, err := tc.enc.Encode(vals)
	if err != nil {
		t.Fatal(err)
	}
	ct := tc.encr.Encrypt(pt)

	exts := tc.eval.RotateHoistedExt(ct, rots)
	acc := exts[rots[0]]
	for _, rot := range rots[1:] {
		tc.eval.AddExtAcc(exts[rot], acc)
		tc.eval.ReleaseExt(exts[rot])
	}
	got := tc.eval.ModDownExt(acc)

	want := tc.eval.Rotate(ct, rots[0])
	for _, rot := range rots[1:] {
		tc.eval.AddAcc(tc.eval.Rotate(ct, rot), want)
	}

	gotVals := tc.enc.Decode(tc.decr.Decrypt(got))
	wantVals := tc.enc.Decode(tc.decr.Decrypt(want))
	if e := maxErr(gotVals, wantVals); e > 1e-6 {
		t.Fatalf("deferred-ModDown fold differs from per-rotation reference by %g", e)
	}
}

// Serial and parallel scheduling of the extended-basis path must agree
// bitwise, like every other evaluator operation.
func TestParallelSerialDifferentialExt(t *testing.T) {
	old := ring.MaxWorkers()
	ring.SetMaxWorkers(4)
	defer ring.SetMaxWorkers(old)
	defer ring.SetSerial(false)

	rots := []int{1, 2, 5, -1}
	for _, c := range []struct{ logN, levels int }{{4, 2}, {6, 3}} {
		t.Run(fmt.Sprintf("logN=%d", c.logN), func(t *testing.T) {
			tc := newTestContext(t, c.logN, c.levels, rots)
			vals := randomComplex(tc.params.Slots(), 15)
			pt, err := tc.enc.Encode(vals)
			if err != nil {
				t.Fatal(err)
			}
			ct := tc.encr.Encrypt(pt)
			wExt, err := tc.enc.EncodeExtAtLevel(vals, tc.params.DefaultScale(), ct.Level())
			if err != nil {
				t.Fatal(err)
			}

			fold := func() *Ciphertext {
				exts := tc.eval.RotateHoistedExt(ct, rots)
				acc := tc.eval.NewExtAccumulator(ct.Level(), ct.Scale*wExt.Scale)
				for _, rot := range rots {
					tc.eval.MulPlainExtAcc(exts[rot], wExt, acc)
					tc.eval.ReleaseExt(exts[rot])
				}
				return tc.eval.ModDownExt(acc)
			}
			diffOp(t, "ExtFold", fold)
		})
	}
}
