package ckks

import (
	"testing"

	"hydra/internal/ring"
)

// Batch-vs-per-ciphertext differential pins: RotateBatch, RescaleBatch and
// KeySwitchBatch must be bit-identical to the sequential loop over their
// scalar counterparts, across batch shapes that exercise partial, exact and
// ragged tiles. ci.sh runs this package under -race, so the batched
// (limb × tile) fan-out races here too.

var ctBatchShapes = []int{1, 3, 8}

func encryptBatch(tc *testContext, b int) []*Ciphertext {
	cts := make([]*Ciphertext, b)
	for i := range cts {
		vals := randomComplex(tc.params.Slots(), int64(1000+i))
		pt, err := tc.enc.Encode(vals)
		if err != nil {
			panic(err)
		}
		cts[i] = tc.encr.Encrypt(pt)
	}
	return cts
}

func TestRotateBatchMatchesPerCiphertext(t *testing.T) {
	tc := newTestContext(t, 11, 3, []int{1, 5})
	for _, b := range ctBatchShapes {
		for _, rot := range []int{1, 5} {
			cts := encryptBatch(tc, b)
			got := tc.eval.RotateBatch(cts, rot)
			for i, ct := range cts {
				want := tc.eval.Rotate(ct, rot)
				if !want.Equal(got[i]) {
					t.Fatalf("batch=%d rot=%d: ciphertext %d diverged from per-ct Rotate", b, rot, i)
				}
			}
		}
	}
}

// Mixed-level batches take the per-ciphertext fallback; results must still
// match the scalar path exactly.
func TestRotateBatchMixedLevels(t *testing.T) {
	tc := newTestContext(t, 11, 3, []int{1})
	cts := encryptBatch(tc, 3)
	cts[1] = tc.eval.Rescale(tc.eval.MulPlain(cts[1], mustEncodeOnes(tc, cts[1])))
	got := tc.eval.RotateBatch(cts, 1)
	for i, ct := range cts {
		want := tc.eval.Rotate(ct, 1)
		if !want.Equal(got[i]) {
			t.Fatalf("mixed levels: ciphertext %d diverged", i)
		}
	}
}

func mustEncodeOnes(tc *testContext, ct *Ciphertext) *Plaintext {
	vals := make([]complex128, tc.params.Slots())
	for i := range vals {
		vals[i] = 1
	}
	pt, err := tc.enc.EncodeAtLevel(vals, tc.params.DefaultScale(), ct.Level())
	if err != nil {
		panic(err)
	}
	return pt
}

func TestRescaleBatchMatchesPerCiphertext(t *testing.T) {
	tc := newTestContext(t, 11, 3, nil)
	for _, b := range ctBatchShapes {
		cts := encryptBatch(tc, b)
		for i, ct := range cts {
			cts[i] = tc.eval.MulPlain(ct, mustEncodeOnes(tc, ct))
		}
		// A mixed-level batch member exercises the per-work top handling.
		if b >= 3 {
			cts[2] = tc.eval.Rescale(cts[2])
			cts[2] = tc.eval.MulPlain(cts[2], mustEncodeOnes(tc, cts[2]))
		}
		got := tc.eval.RescaleBatch(cts)
		for i, ct := range cts {
			want := tc.eval.Rescale(ct)
			if !want.Equal(got[i]) {
				t.Fatalf("batch=%d: ciphertext %d diverged from per-ct Rescale", b, i)
			}
			if want.Scale != got[i].Scale {
				t.Fatalf("batch=%d: ciphertext %d scale diverged", b, i)
			}
		}
	}
}

func TestKeySwitchBatchMatchesPerPoly(t *testing.T) {
	tc := newTestContext(t, 11, 3, []int{1})
	k := ring.GaloisElementForRotation(tc.params.N(), 1)
	swk := tc.eval.rtks.Keys[k]
	for _, b := range ctBatchShapes {
		cts := encryptBatch(tc, b)
		ds := make([]*ring.Poly, b)
		for i, ct := range cts {
			ds[i] = ct.C1
		}
		outs0, outs1 := tc.eval.KeySwitchBatch(ds, swk)
		for i, ct := range cts {
			w0, w1 := tc.eval.keySwitch(ct.C1, swk)
			if !w0.Equal(outs0[i]) || !w1.Equal(outs1[i]) {
				t.Fatalf("batch=%d: keyswitch output %d diverged from per-poly path", b, i)
			}
		}
	}
}
