package ckks

import "testing"

func benchContext(b *testing.B) *testContext {
	b.Helper()
	return newTestContext(b, 12, 4, []int{1})
}

func BenchmarkEncrypt(b *testing.B) {
	tc := benchContext(b)
	vals := randomComplex(tc.params.Slots(), 1)
	pt, _ := tc.enc.Encode(vals)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tc.encr.Encrypt(pt)
	}
}

func BenchmarkDecrypt(b *testing.B) {
	tc := benchContext(b)
	vals := randomComplex(tc.params.Slots(), 2)
	pt, _ := tc.enc.Encode(vals)
	ct := tc.encr.Encrypt(pt)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tc.decr.Decrypt(ct)
	}
}

func BenchmarkHAdd(b *testing.B) {
	tc := benchContext(b)
	vals := randomComplex(tc.params.Slots(), 3)
	pt, _ := tc.enc.Encode(vals)
	ct := tc.encr.Encrypt(pt)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tc.eval.Add(ct, ct)
	}
}

func BenchmarkPMult(b *testing.B) {
	tc := benchContext(b)
	vals := randomComplex(tc.params.Slots(), 4)
	pt, _ := tc.enc.Encode(vals)
	ct := tc.encr.Encrypt(pt)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tc.eval.MulPlain(ct, pt)
	}
}

func BenchmarkCMultRelin(b *testing.B) {
	tc := benchContext(b)
	vals := randomComplex(tc.params.Slots(), 5)
	pt, _ := tc.enc.Encode(vals)
	ct := tc.encr.Encrypt(pt)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tc.eval.MulRelin(ct, ct)
	}
}

func BenchmarkRotation(b *testing.B) {
	tc := benchContext(b)
	vals := randomComplex(tc.params.Slots(), 6)
	pt, _ := tc.enc.Encode(vals)
	ct := tc.encr.Encrypt(pt)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tc.eval.Rotate(ct, 1)
	}
}

func BenchmarkRescale(b *testing.B) {
	tc := benchContext(b)
	vals := randomComplex(tc.params.Slots(), 7)
	pt, _ := tc.enc.Encode(vals)
	ct := tc.encr.Encrypt(pt)
	prod := tc.eval.MulPlain(ct, pt)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tc.eval.Rescale(prod)
	}
}

func BenchmarkEncode(b *testing.B) {
	tc := benchContext(b)
	vals := randomComplex(tc.params.Slots(), 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tc.enc.Encode(vals); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRotationsDirect vs BenchmarkRotationsHoisted: the hoisting
// ablation — 8 rotations of one ciphertext with and without sharing the
// digit decomposition.
func BenchmarkRotationsDirect(b *testing.B) {
	tc := newTestContext(b, 12, 4, []int{1, 2, 3, 4, 5, 6, 7, 8})
	vals := randomComplex(tc.params.Slots(), 9)
	pt, _ := tc.enc.Encode(vals)
	ct := tc.encr.Encrypt(pt)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for r := 1; r <= 8; r++ {
			tc.eval.Rotate(ct, r)
		}
	}
}

func BenchmarkRotationsHoisted(b *testing.B) {
	tc := newTestContext(b, 12, 4, []int{1, 2, 3, 4, 5, 6, 7, 8})
	vals := randomComplex(tc.params.Slots(), 10)
	pt, _ := tc.enc.Encode(vals)
	ct := tc.encr.Encrypt(pt)
	rots := []int{1, 2, 3, 4, 5, 6, 7, 8}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tc.eval.RotateHoisted(ct, rots)
	}
}

// BenchmarkRotationsHoistedExt is the double-hoisted variant of
// BenchmarkRotationsHoisted: the same 8 rotations stay in the extended
// Q·P basis and are folded into one accumulator, paying a single deferred
// ModDown instead of one per rotation.
func BenchmarkRotationsHoistedExt(b *testing.B) {
	tc := newTestContext(b, 12, 4, []int{1, 2, 3, 4, 5, 6, 7, 8})
	vals := randomComplex(tc.params.Slots(), 10)
	pt, _ := tc.enc.Encode(vals)
	ct := tc.encr.Encrypt(pt)
	rots := []int{1, 2, 3, 4, 5, 6, 7, 8}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		exts := tc.eval.RotateHoistedExt(ct, rots)
		acc := exts[rots[0]]
		for _, rot := range rots[1:] {
			tc.eval.AddExtAcc(exts[rot], acc)
			tc.eval.ReleaseExt(exts[rot])
		}
		tc.eval.ModDownExt(acc)
	}
}
